// LINT-PATH: src/core/bad_float_equality_confidence.cpp
// LINT-EXPECT: float-equality
// Exact comparison on recovery-pipeline doubles: per-cell confidences and
// letter-hypothesis costs are accumulated floats (weighted counts, DP
// sums); gating them with == breaks once any weight changes in the last
// bit.
struct Hypothesis {
  char letter = '\0';
  double cost = 0.0;
};

struct Cell {
  double confidence = 0.0;
};

bool isExactMatch(const Hypothesis& h) { return h.cost == 0.0; }

bool isCensored(const Cell& c, const Cell& floor_cell) {
  return c.confidence != floor_cell.confidence;
}
