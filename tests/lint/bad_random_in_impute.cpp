// LINT-PATH: src/reader/bad_random_in_impute.cpp
// LINT-EXPECT: no-random-device
// Unseeded randomness inside a gap-imputation path: synthetic reads must be
// a pure function of the input stream (recovery determinism contract,
// DESIGN.md §9), never of host entropy.
#include <random>
#include <vector>

struct Synthetic {
  double time_s = 0.0;
};

std::vector<Synthetic> jitteredBridge(double t0, double t1, int k) {
  std::random_device rd;
  std::mt19937 gen(rd());
  std::uniform_real_distribution<double> u(t0, t1);
  std::vector<Synthetic> out;
  for (int i = 0; i < k; ++i) out.push_back({u(gen)});
  return out;
}
