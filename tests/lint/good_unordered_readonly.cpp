// LINT-PATH: src/core/good_unordered_readonly.cpp
// LINT-EXPECT: clean
// Order-independent reduction over an unordered container is fine: a sum
// does not care about iteration order.  (Also: steady_clock is allowed —
// it measures durations, never wall-clock time.)
#include <chrono>
#include <string>
#include <unordered_map>

int total(const std::unordered_map<std::string, int>& counts) {
  const auto t0 = std::chrono::steady_clock::now();
  int sum = 0;
  for (const auto& kv : counts) {
    sum = sum + kv.second;
  }
  (void)t0;
  return sum;
}
