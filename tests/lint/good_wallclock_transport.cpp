// LINT-PATH: src/llrp/good_wallclock_transport.cpp
// LINT-EXPECT: clean
// The same constructs as bad_wallclock.cpp, but under src/llrp/ — the
// transport layer timestamps real I/O and backs off with real sleeps.
#include <chrono>
#include <thread>

double stampNow() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}
