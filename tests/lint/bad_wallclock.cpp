// LINT-PATH: src/sim/bad_wallclock.cpp
// LINT-EXPECT: no-wallclock
// Wall-clock timestamping outside src/llrp/ makes batch results depend on
// when they ran.
#include <chrono>
#include <ctime>

double stampNow() {
  const auto now = std::chrono::system_clock::now();
  (void)time(nullptr);
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}
