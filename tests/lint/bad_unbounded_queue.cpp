// LINT-PATH: src/service/bad_unbounded_queue.cpp
// LINT-EXPECT: no-unbounded-queue
// A producer/consumer queue declared with no stated bound: under ingest
// overload it grows until the process dies, and nothing in the declaration
// tells a reviewer what should have limited it.
#include <deque>
#include <vector>

struct Item {
  std::vector<int> payload;
};

class Ingest {
 public:
  void push(Item item) { queue_.push_back(static_cast<Item&&>(item)); }

 private:
  std::deque<Item> queue_;
};
