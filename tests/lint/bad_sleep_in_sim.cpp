// LINT-PATH: src/sim/bad_sleep_in_sim.cpp
// LINT-EXPECT: no-sleep
// Host sleeps in a simulation path couple results to scheduler timing.
#include <chrono>
#include <thread>

void settle() { std::this_thread::sleep_for(std::chrono::milliseconds(10)); }
