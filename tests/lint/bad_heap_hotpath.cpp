// LINT-PATH: src/rf/bad_heap_hotpath.cpp
// LINT-EXPECT: no-heap-hotpath
// Raw allocator traffic inside a hot-path module: one allocation per
// sample collapses the SoA kernels' throughput.
#include <cstdlib>

double* makeScratch(unsigned n) { return new double[n]; }

void* makeBuffer(unsigned n) { return malloc(n * sizeof(double)); }
