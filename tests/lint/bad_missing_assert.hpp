// LINT-PATH: src/core/bad_missing_assert.hpp
// LINT-EXPECT: missing-assert
// The doc comment promises preconditions, but nothing in the unit
// enforces them.
#pragma once

namespace rfipad::core {

/// Computes the frame index for a report time.
/// Requires: `time_s` must be non-negative and `frame_s` must be positive.
int frameIndex(double time_s, double frame_s);

}  // namespace rfipad::core
