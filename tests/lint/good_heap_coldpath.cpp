// LINT-PATH: src/llrp/good_heap_coldpath.cpp
// LINT-EXPECT: clean
// The same allocations are fine outside the hot-path modules: transport
// setup runs once per connection, not once per sample.
#include <cstdlib>

double* makeScratch(unsigned n) { return new double[n]; }

void* makeBuffer(unsigned n) { return malloc(n * sizeof(double)); }
