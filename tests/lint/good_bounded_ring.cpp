// LINT-PATH: src/service/good_bounded_ring.cpp
// LINT-EXPECT: clean
// The same ring with its sizing rule documented next to the declaration —
// the comment names the capacity source and what happens at the limit.
// (Text-only fixture: the linter never compiles these.)
#include "common/mpsc_ring.hpp"

struct Chunk {
  int session;
};

class Ingest {
 public:
  explicit Ingest(unsigned capacity) : ring_(capacity) {}
  bool push(Chunk c) { return ring_.tryEnqueue(c); }

 private:
  // Bounded by the constructor's capacity (power-of-two rounded): the
  // ring never grows, and push() reports rejection once it is full.
  rfipad::MpscRing<Chunk> ring_;
};
