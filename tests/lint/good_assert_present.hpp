// LINT-PATH: src/core/good_assert_present.hpp
// LINT-EXPECT: clean
// Same documented preconditions as bad_missing_assert.hpp, but the unit
// enforces them with a contract macro.
#pragma once

#include "common/contracts.hpp"

namespace rfipad::core {

/// Computes the frame index for a report time.
/// Requires: `time_s` must be non-negative and `frame_s` must be positive.
inline int frameIndex(double time_s, double frame_s) {
  RFIPAD_ASSERT(time_s >= 0.0 && frame_s > 0.0,
                "frameIndex requires a non-negative time and positive frame");
  return static_cast<int>(time_s / frame_s);
}

}  // namespace rfipad::core
