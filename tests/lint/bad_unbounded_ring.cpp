// LINT-PATH: src/service/bad_unbounded_ring.cpp
// LINT-EXPECT: no-unbounded-queue
// An MPSC ring member with no sizing comment: the ring is bounded by
// construction, but nothing tells a reviewer why this capacity is enough
// for the producers feeding it — under-sized, it silently rejects or
// evicts under load, which is the same operational failure an unbounded
// queue hides.  (Text-only fixture: the linter never compiles these, so
// the include and types are illustrative.)
#include "common/mpsc_ring.hpp"

struct Chunk {
  int session;
};

class Ingest {
 public:
  explicit Ingest(unsigned slots) : ring_(slots) {}
  bool push(Chunk c) { return ring_.tryEnqueue(c); }

 private:
  rfipad::MpscRing<Chunk> ring_;
};
