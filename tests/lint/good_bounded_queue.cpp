// LINT-PATH: src/service/good_bounded_queue.cpp
// LINT-EXPECT: clean
// The same queue with its bound documented next to the declaration — the
// comment names both the limit and the mechanism enforcing it.
#include <cstddef>
#include <deque>
#include <vector>

struct Item {
  std::vector<int> payload;
};

class Ingest {
 public:
  bool push(Item item) {
    if (queue_.size() >= capacity_) return false;
    queue_.push_back(static_cast<Item&&>(item));
    return true;
  }

 private:
  std::size_t capacity_ = 256;
  // Bounded by capacity_: push() rejects once the depth reaches it.
  std::deque<Item> queue_;
};
