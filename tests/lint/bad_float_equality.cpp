// LINT-PATH: src/core/bad_float_equality.cpp
// LINT-EXPECT: float-equality
// Exact comparison against a floating literal and between known-double
// fields; quantisation and fault injection both perturb these.
struct Report {
  double time_s = 0.0;
  double phase_rad = 0.0;
};

bool sameInstant(const Report& a, const Report& b) {
  return a.time_s == b.time_s;
}

bool isIdlePhase(const Report& r) { return r.phase_rad != 0.25; }
