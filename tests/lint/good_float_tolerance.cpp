// LINT-PATH: src/core/good_float_tolerance.cpp
// LINT-EXPECT: clean
// Tolerance-based comparison, integer equality, and relational float
// comparisons must all pass; a comment mentioning `x == 1.0` must not trip
// the rule either.
#include <cmath>

struct Report {
  double time_s = 0.0;
  int tag_index = 0;
};

bool closeInTime(const Report& a, const Report& b) {
  return a.tag_index == b.tag_index &&
         std::abs(a.time_s - b.time_s) < 1e-9 && a.time_s >= 0.0;
}
