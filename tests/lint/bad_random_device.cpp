// LINT-PATH: src/core/bad_random_device.cpp
// LINT-EXPECT: no-random-device, no-libc-rand
// Unseeded entropy in a simulation path: both the C++ and the libc form.
#include <random>

int sampleNoise() {
  std::random_device rd;
  return static_cast<int>(rd()) + rand() % 7;
}
