// LINT-PATH: src/core/bad_unordered_iteration.cpp
// LINT-EXPECT: unordered-iteration
// Hash-order iteration feeding a result vector: the output ordering
// changes across libstdc++ versions and hash seeds.
#include <string>
#include <unordered_map>
#include <vector>

std::vector<int> collect(const std::unordered_map<std::string, int>& counts) {
  std::vector<int> out;
  for (const auto& kv : counts) {
    out.push_back(kv.second);
  }
  return out;
}
