// ANALYZE-EXPECT: atomic-explicit-order
// ANALYZE-PATH: src/fixtures/atomic_operator_access.cpp
//
// Operator accesses on an atomic member (`++`, `+=`) are implicit seq_cst
// operations; the analyzer flags bare-name and this-> forms inside the
// declaring class.
#include <atomic>

namespace rfipad {

class Counter {
 public:
  void bump() { hits_++; }
  void bumpBy(unsigned n) { this->hits_ += n; }

 private:
  std::atomic<unsigned> hits_{0};
};

}  // namespace rfipad
