// ANALYZE-EXPECT: hotpath-function, hotpath-throw
// ANALYZE-PATH: src/fixtures/hotpath_function_throw.cpp
//
// Two distinct hot-path sins in one root: constructing a std::function
// (type-erased captures heap-allocate) and throwing (the unwinder
// allocates; hot paths report failure by return value).
#include <functional>
#include <stdexcept>

#include "common/contracts.hpp"

namespace rfipad {

RFIPAD_HOT_PATH int process(int v) {
  std::function<int(int)> shift = [](int x) { return x + 1; };
  if (v < 0) throw std::runtime_error("negative sample");
  return shift(v);
}

}  // namespace rfipad
