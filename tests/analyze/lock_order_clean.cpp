// ANALYZE-EXPECT: clean
// ANALYZE-PATH: src/fixtures/lock_order_clean.cpp
//
// Consistent hierarchy: every path that holds both mutexes acquires a_
// before b_ (directly or through a callee), so the acquired-after graph is
// acyclic.
#include "common/mutex.hpp"

namespace rfipad {

class Ledger {
 public:
  void post() {
    MutexLock la(a_);
    MutexLock lb(b_);
    ++posted_;
  }

  void reconcile() {
    MutexLock la(a_);
    settle();
  }

 private:
  void settle() {
    MutexLock lb(b_);
    ++settled_;
  }

  Mutex a_;
  Mutex b_;
  long posted_ = 0;
  long settled_ = 0;
};

}  // namespace rfipad
