// ANALYZE-EXPECT: hotpath-alloc
// ANALYZE-PATH: src/fixtures/hotpath_new.cpp
//
// Direct `new` under a hot root — the plain case the rule must always
// catch, including through a make_unique spelling.
#include <memory>

#include "common/contracts.hpp"

namespace rfipad {

struct Node {
  int value = 0;
};

RFIPAD_HOT_PATH int sample(int v) {
  Node* n = new Node();
  n->value = v;
  const int out = n->value;
  delete n;
  return out;
}

RFIPAD_HOT_PATH int sampleSmart(int v) {
  auto n = std::make_unique<Node>();
  n->value = v;
  return n->value;
}

}  // namespace rfipad
