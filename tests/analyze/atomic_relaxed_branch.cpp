// ANALYZE-EXPECT: atomic-relaxed-branch
// ANALYZE-PATH: src/fixtures/atomic_relaxed_branch.cpp
//
// A relaxed load feeding a branch condition: the classic missed-stop /
// lost-wakeup shape.  The stop flag is written relaxed too, so the pairing
// rule stays quiet and the branch rule is isolated.
#include <atomic>

namespace rfipad {

class Loop {
 public:
  void requestStop() { stop_.store(true, std::memory_order_relaxed); }

  void run() {
    while (!stop_.load(std::memory_order_relaxed)) {  // branch on relaxed
      ++iterations_;
    }
  }

 private:
  std::atomic<bool> stop_{false};
  unsigned long iterations_ = 0;
};

}  // namespace rfipad
