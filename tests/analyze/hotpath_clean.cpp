// ANALYZE-EXPECT: clean
// ANALYZE-PATH: src/fixtures/hotpath_clean.cpp
//
// A hot root that stays on the straight and narrow — index arithmetic,
// explicit-order atomics, a clean helper — next to a COLD function that
// allocates.  The cold allocation must NOT be flagged: the walk is rooted
// at RFIPAD_HOT_PATH definitions, not file-wide.
#include <atomic>
#include <cstddef>
#include <vector>

#include "common/contracts.hpp"

namespace rfipad {

class Ring {
 public:
  void coldSetup(std::size_t capacity) { slots_.resize(capacity); }

  RFIPAD_HOT_PATH bool tryPush(int v) {
    const std::size_t pos =
        head_.fetch_add(1, std::memory_order_relaxed) % slots_.size();
    slots_[pos] = transform(v);
    return true;
  }

 private:
  static int transform(int v) { return v * 2 + 1; }

  std::vector<int> slots_;
  std::atomic<std::size_t> head_{0};
};

}  // namespace rfipad
