// ANALYZE-EXPECT: lock-order-cycle
// ANALYZE-PATH: src/fixtures/lock_cycle_transitive.cpp
//
// The cycle only exists across the call graph: refresh() holds index_m_
// and calls loadEntry() (which takes cache_m_), while evict() holds
// cache_m_ and calls touchIndex() (which takes index_m_).  No single
// function nests both orders lexically.
#include "common/mutex.hpp"

namespace rfipad {

class Cache {
 public:
  void refresh() {
    MutexLock li(index_m_);
    loadEntry();
  }

  void evict() {
    MutexLock lc(cache_m_);
    touchIndex();
  }

 private:
  void loadEntry() {
    MutexLock lc(cache_m_);
    ++entries_;
  }

  void touchIndex() {
    MutexLock li(index_m_);
    ++touches_;
  }

  Mutex index_m_;
  Mutex cache_m_;
  long entries_ = 0;
  long touches_ = 0;
};

}  // namespace rfipad
