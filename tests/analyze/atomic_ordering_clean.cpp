// ANALYZE-EXPECT: clean
// ANALYZE-PATH: src/fixtures/atomic_ordering_clean.cpp
//
// The disciplined shape: every access names its order, the release store
// has a matching acquire load (which may feed a branch — acquire loads in
// conditions are fine), and the stats counter is relaxed on both sides.
#include <atomic>

namespace rfipad {

class Gate {
 public:
  void open() { open_.store(true, std::memory_order_release); }

  bool waitOpen() {
    while (!open_.load(std::memory_order_acquire)) {
      spins_.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }

  unsigned long spins() const {
    return spins_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> open_{false};
  std::atomic<unsigned long> spins_{0};
};

}  // namespace rfipad
