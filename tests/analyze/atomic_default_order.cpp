// ANALYZE-EXPECT: atomic-explicit-order
// ANALYZE-PATH: src/fixtures/atomic_default_order.cpp
//
// Method-form accesses that fall back to the defaulted seq_cst ordering.
// Both the store and the load must be flagged — writing the order down is
// what makes release/acquire pairing auditable.
#include <atomic>

namespace rfipad {

class Flag {
 public:
  void publish() { ready_.store(true); }       // defaulted seq_cst
  bool poll() const { return ready_.load(); }  // defaulted seq_cst

 private:
  std::atomic<bool> ready_{false};
};

}  // namespace rfipad
