// ANALYZE-EXPECT: hotpath-alloc
// ANALYZE-PATH: src/fixtures/hotpath_alloc_transitive.cpp
//
// The allocation hides one call below the hot root: ingest() itself is
// clean, but the record() helper it calls grows a vector.  The lexical
// no-heap rule cannot see this; the call-graph walk must.
#include <vector>

#include "common/contracts.hpp"

namespace rfipad {

class Pipeline {
 public:
  RFIPAD_HOT_PATH bool ingest(int v) {
    if (v < 0) return false;
    record(v);
    return true;
  }

 private:
  void record(int v) { log_.push_back(v); }

  std::vector<int> log_;
};

}  // namespace rfipad
