// ANALYZE-EXPECT: lock-order-cycle
// ANALYZE-PATH: src/fixtures/lock_cycle_two.cpp
//
// The direct two-mutex cycle: one method nests a_ then b_, another nests
// b_ then a_ — a deadlock under the right interleaving.
#include "common/mutex.hpp"

namespace rfipad {

class Transfer {
 public:
  void deposit() {
    MutexLock la(a_);
    MutexLock lb(b_);
    ++balance_a_;
    ++balance_b_;
  }

  void withdraw() {
    MutexLock lb(b_);
    MutexLock la(a_);
    --balance_b_;
    --balance_a_;
  }

 private:
  Mutex a_;
  Mutex b_;
  long balance_a_ = 0;
  long balance_b_ = 0;
};

}  // namespace rfipad
