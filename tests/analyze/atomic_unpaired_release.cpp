// ANALYZE-EXPECT: atomic-unpaired
// ANALYZE-PATH: src/fixtures/atomic_unpaired_release.cpp
//
// A release store whose field is only ever read relaxed: the release
// publishes nothing — either the reader needs acquire or the store can be
// relaxed.  (The relaxed load sits in a return, not a branch, so the
// branch rule stays quiet.)
#include <atomic>

namespace rfipad {

class Publisher {
 public:
  void publish(int v) { value_.store(v, std::memory_order_release); }
  int peek() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int> value_{0};
};

}  // namespace rfipad
