// FaultPlan unit contract: deterministic (same plan + salt → bit-identical
// degraded stream), a no-fault plan is a byte-exact passthrough, and every
// injector reports honest stats.
#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "llrp/bridge.hpp"

namespace rfipad::fault {
namespace {

reader::SampleStream syntheticStream(std::uint32_t tags, int reads,
                                     std::uint64_t seed) {
  Rng rng(seed);
  reader::SampleStream s(tags);
  double t = 0.0;
  for (int j = 0; j < reads; ++j) {
    for (std::uint32_t i = 0; i < tags; ++i) {
      reader::TagReport r;
      char buf[25];
      std::snprintf(buf, sizeof(buf), "AABBCCDDEEFF0011%08X", i);
      r.epc = buf;
      r.tag_index = i;
      r.time_s = t;
      r.phase_rad = rng.uniform(0.0, 6.28);
      r.rssi_dbm = -45.0 + rng.normal(0.0, 1.0);
      t += 0.002;
      s.push(r);
    }
  }
  return s;
}

bool identicalStreams(const reader::SampleStream& a,
                      const reader::SampleStream& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].tag_index != b[i].tag_index || a[i].time_s != b[i].time_s ||
        a[i].phase_rad != b[i].phase_rad || a[i].rssi_dbm != b[i].rssi_dbm)
      return false;
  }
  return true;
}

TEST(FaultPlan, EmptyPlanIsExactPassthrough) {
  const auto stream = syntheticStream(25, 40, 7);
  FaultPlan plan;
  EXPECT_FALSE(plan.anyStreamFaults());
  EXPECT_FALSE(plan.anyFrameFaults());
  FaultStats st;
  const auto out = plan.apply(stream, 3, &st);
  EXPECT_TRUE(identicalStreams(stream, out));
  EXPECT_EQ(st.input_reports, stream.size());
  EXPECT_EQ(st.output_reports, stream.size());
  EXPECT_EQ(st.droppedTotal(), 0u);
}

TEST(FaultPlan, DeterministicForSamePlanAndSalt) {
  const auto stream = syntheticStream(25, 60, 9);
  FaultPlan plan;
  plan.seed = 42;
  plan.death.dead_fraction = 0.12;
  plan.detune.detuned_fraction = 0.1;
  plan.missread.p_good_to_bad = 0.05;
  plan.glitch.prob = 0.02;
  plan.jitter = {0.05, 0.03, 0.0005};
  plan.disconnect.rate_hz = 0.5;
  plan.frame.truncate_prob = 0.1;
  plan.frame.bit_flip_prob = 0.1;

  const auto a = plan.apply(stream, 17);
  const auto b = plan.apply(stream, 17);
  EXPECT_TRUE(identicalStreams(a, b));

  // A different salt draws a different degradation.
  const auto c = plan.apply(stream, 18);
  EXPECT_FALSE(identicalStreams(a, c));
}

TEST(FaultPlan, DeadTagsGoCompletelySilent) {
  const auto stream = syntheticStream(25, 50, 3);
  FaultPlan plan;
  plan.death.dead_tags = {0, 7, 24};
  FaultStats st;
  const auto out = plan.apply(stream, 1, &st);
  EXPECT_EQ(out.countFor(0), 0u);
  EXPECT_EQ(out.countFor(7), 0u);
  EXPECT_EQ(out.countFor(24), 0u);
  EXPECT_EQ(out.countFor(1), 50u);
  EXPECT_EQ(st.dropped_dead, 150u);
  EXPECT_EQ(out.numTags(), 25u);
}

TEST(FaultPlan, DeadSetStableAcrossSalts) {
  FaultPlan plan;
  plan.death.dead_fraction = 0.2;
  const auto dead = plan.resolveDeadTags(25);
  EXPECT_EQ(dead.size(), 5u);
  // resolveDeadTags takes no salt: hardware faults persist across trials.
  EXPECT_EQ(plan.resolveDeadTags(25), dead);
  // Detuned set is disjoint from the dead set.
  plan.detune.detuned_fraction = 0.2;
  const auto detuned = plan.resolveDetunedTags(25);
  EXPECT_EQ(detuned.size(), 5u);
  for (auto t : detuned)
    EXPECT_TRUE(std::find(dead.begin(), dead.end(), t) == dead.end());
}

TEST(FaultPlan, MissReadsHitConfiguredLossRate) {
  const auto stream = syntheticStream(25, 400, 11);
  FaultPlan plan;
  // Stationary bad-state share = 0.1/(0.1+0.3) = 0.25; loss ≈ 0.25·0.8.
  plan.missread = {0.1, 0.3, 0.0, 0.8};
  FaultStats st;
  const auto out = plan.apply(stream, 5, &st);
  const double loss = static_cast<double>(st.dropped_missread) /
                      static_cast<double>(stream.size());
  EXPECT_NEAR(loss, 0.2, 0.05);
  EXPECT_EQ(out.size() + st.dropped_missread, stream.size());
}

TEST(FaultPlan, DisconnectWindowsDropEverythingInside) {
  const auto stream = syntheticStream(10, 200, 13);
  FaultPlan plan;
  plan.disconnect.rate_hz = 1.5;
  plan.disconnect.mean_outage_s = 0.3;
  FaultStats st;
  const auto out = plan.apply(stream, 2, &st);
  ASSERT_GT(st.outage_windows, 0u);
  EXPECT_GT(st.dropped_disconnect, 0u);
  const auto windows =
      plan.outageWindows(stream.startTime(), stream.endTime() + 1e-9, 2);
  for (const auto& r : out.reports()) {
    for (const auto& w : windows) EXPECT_FALSE(w.contains(r.time_s));
  }
}

TEST(FaultPlan, JitterProducesReordersAndDuplicates) {
  const auto stream = syntheticStream(10, 100, 17);
  FaultPlan plan;
  plan.jitter = {0.1, 0.1, 0.001};
  FaultStats st;
  const auto reports =
      plan.applyToReports(stream.reports(), stream.numTags(), 4, &st);
  EXPECT_GT(st.duplicated, 0u);
  EXPECT_GT(st.reordered, 0u);
  EXPECT_GT(st.time_jittered, 0u);
  EXPECT_EQ(reports.size(), stream.size() + st.duplicated);
  // Delivered out of order, but only by bounded (adjacent) swaps.
  bool any_backwards = false;
  for (std::size_t i = 1; i < reports.size(); ++i)
    any_backwards = any_backwards || reports[i].time_s < reports[i - 1].time_s;
  EXPECT_TRUE(any_backwards);
}

TEST(FaultPlan, FrameFaultsSurviveTheWireRoundTrip) {
  const auto stream = syntheticStream(25, 80, 19);
  FaultPlan plan;
  plan.frame.truncate_prob = 0.2;
  plan.frame.bit_flip_prob = 0.2;
  FaultStats st;
  const auto out = plan.apply(stream, 6, &st);
  EXPECT_GT(st.frames_in, 0u);
  EXPECT_GT(st.frames_truncated + st.frames_bitflipped, 0u);
  // Frames truncated to nothing never reach the decoder.
  EXPECT_GT(st.decode.frames, 0u);
  EXPECT_LE(st.decode.frames, st.frames_in);
  EXPECT_LT(out.size(), stream.size());
  // A flipped EPC bit must not inflate the tag space.
  EXPECT_EQ(out.numTags(), stream.numTags());
  for (const auto& r : out.reports()) EXPECT_LT(r.tag_index, 25u);
}

TEST(FaultPlan, GlitchesPreservePopulationButMovePhases) {
  const auto stream = syntheticStream(10, 100, 23);
  FaultPlan plan;
  plan.glitch.prob = 0.2;
  FaultStats st;
  const auto out = plan.apply(stream, 8, &st);
  EXPECT_EQ(out.size(), stream.size());
  EXPECT_GT(st.phase_glitches, 0u);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < out.size(); ++i)
    moved += out[i].phase_rad != stream[i].phase_rad ? 1u : 0u;
  EXPECT_EQ(moved, st.phase_glitches);
}

TEST(FaultPlan, StatsMergeAccumulates) {
  FaultStats a, b;
  a.dropped_dead = 3;
  a.frames_in = 2;
  b.dropped_dead = 4;
  b.phase_glitches = 5;
  b.decode.reports = 7;
  a.merge(b);
  EXPECT_EQ(a.dropped_dead, 7u);
  EXPECT_EQ(a.frames_in, 2u);
  EXPECT_EQ(a.phase_glitches, 5u);
  EXPECT_EQ(a.decode.reports, 7u);
}

}  // namespace
}  // namespace rfipad::fault
