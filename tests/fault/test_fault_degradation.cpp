// Graceful degradation under dead tags (ISSUE satellite): the Table-I
// motion battery with 1/3/5 dead tags must never crash, must flag the dead
// tags in the calibrated profile, and accuracy must fall monotonically as
// the array loses coverage.  Also pins the batch-determinism contract with
// a fault plan active: degraded trials are bit-identical at any thread
// count.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/harness.hpp"

namespace rfipad::bench {
namespace {

HarnessOptions baseOptions() {
  HarnessOptions opt;
  opt.scenario.seed = 1000;
  opt.scenario.doppler_probes = false;
  return opt;
}

std::vector<StrokeTask> battery(int reps = 1) {
  std::vector<StrokeTask> tasks;
  for (int r = 0; r < reps; ++r)
    for (const auto& s : allDirectedStrokes())
      tasks.push_back({s, sim::defaultUser(1 + r)});
  return tasks;
}

double accuracyWithDeadTags(const std::vector<std::uint32_t>& dead,
                            std::uint32_t* dead_count = nullptr) {
  HarnessOptions opt = baseOptions();
  if (!dead.empty()) {
    fault::FaultPlan plan;
    plan.death.dead_tags = dead;
    opt.fault_plan = plan;
  }
  Harness h(opt);
  if (dead_count != nullptr) *dead_count = h.profile().deadCount();
  const auto trials = h.runStrokeBatch(battery(3), {2, 0});
  return Harness::accuracy(trials);
}

TEST(FaultDegradation, DeadTagsDegradeAccuracyMonotonically) {
  // Nested dead sets: centre column first, then spreading outward.
  std::uint32_t d1 = 0, d3 = 0, d5 = 0;
  const double clean = accuracyWithDeadTags({});
  const double one = accuracyWithDeadTags({12}, &d1);
  const double three = accuracyWithDeadTags({12, 7, 17}, &d3);
  const double five = accuracyWithDeadTags({12, 7, 17, 11, 13}, &d5);

  EXPECT_EQ(d1, 1u);
  EXPECT_EQ(d3, 3u);
  EXPECT_EQ(d5, 5u);

  // Dead tags can only hurt.  The 39-trial battery quantises accuracy in
  // 1/39 steps, so each nested step tolerates one trial of jitter, while
  // the end-to-end drop must be genuinely monotone — and the pipeline must
  // survive all of it (the assertions above already prove no crash).
  const double one_trial = 1.0 / 39.0 + 1e-9;
  EXPECT_GE(clean + one_trial, one);
  EXPECT_GE(one + one_trial, three);
  EXPECT_GE(three + one_trial, five);
  EXPECT_GE(clean, five);
  // One dead tag out of 25 must not collapse recognition outright.
  EXPECT_GT(one, 0.0);
}

TEST(FaultDegradation, DeadTagsAreFlaggedAndUnweighted) {
  HarnessOptions opt = baseOptions();
  fault::FaultPlan plan;
  plan.death.dead_tags = {3, 21};
  opt.fault_plan = plan;
  Harness h(opt);

  EXPECT_TRUE(h.profile().isDead(3));
  EXPECT_TRUE(h.profile().isDead(21));
  EXPECT_EQ(h.profile().deadCount(), 2u);
  EXPECT_DOUBLE_EQ(h.profile().weight(3), 0.0);
  EXPECT_DOUBLE_EQ(h.profile().weight(21), 0.0);
  double sum = 0.0;
  for (std::uint32_t i = 0; i < 25; ++i) sum += h.profile().weight(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(FaultDegradation, FaultedBatchesDeterministicAcrossThreadCounts) {
  HarnessOptions opt = baseOptions();
  fault::FaultPlan plan;
  plan.death.dead_tags = {12};
  plan.missread = {0.05, 0.3, 0.0, 0.7};
  plan.jitter = {0.02, 0.02, 0.0003};
  plan.frame.truncate_prob = 0.05;
  plan.frame.bit_flip_prob = 0.05;
  opt.fault_plan = plan;
  Harness h(opt);

  const auto tasks = battery();
  const auto one = h.runStrokeBatch(tasks, {1, 0});
  const auto wide = h.runStrokeBatch(tasks, {4, 0});
  ASSERT_EQ(one.size(), tasks.size());
  EXPECT_TRUE(sameOutcomes(one, wide));
  // The plan must actually have bitten, or this determinism check is
  // vacuous.
  std::uint64_t dropped = 0;
  for (const auto& t : one) dropped += t.faulted_dropped;
  EXPECT_GT(dropped, 0u);
  // And re-running the same batch reproduces it exactly.
  EXPECT_TRUE(sameOutcomes(one, h.runStrokeBatch(tasks, {2, 0})));
}

TEST(FaultDegradation, HeavyLossStillDoesNotCrash) {
  // A brutal environment: most reads gone, link flapping, frames mangled.
  // Accuracy is allowed to crater; the pipeline is not allowed to throw.
  HarnessOptions opt = baseOptions();
  fault::FaultPlan plan;
  plan.death.dead_fraction = 0.2;
  plan.missread = {0.2, 0.2, 0.05, 0.9};
  plan.glitch.prob = 0.05;
  plan.jitter = {0.05, 0.05, 0.001};
  plan.disconnect.rate_hz = 0.4;
  plan.frame.truncate_prob = 0.1;
  plan.frame.bit_flip_prob = 0.1;
  opt.fault_plan = plan;
  Harness h(opt);
  const auto trials = h.runStrokeBatch(battery(), {2, 0});
  EXPECT_EQ(trials.size(), 13u);
  const double acc = Harness::accuracy(trials);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

}  // namespace
}  // namespace rfipad::bench
