#include "reader/reader.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "common/stats.hpp"
#include "rf/multipath.hpp"

namespace rfipad::reader {
namespace {

struct Fixture {
  Rng rng{11};
  tag::TagArray array{tag::ArrayConfig{}, rng};
  ReaderConfig config{};
  RfidReader reader;

  explicit Fixture(ReaderConfig cfg = {},
                   rf::MultipathEnvironment env = rf::anechoic())
      : config(cfg),
        reader(cfg,
               rf::ChannelModel(rf::CarrierConfig{922.38e6},
                                rf::DirectionalAntenna({0, 0, -0.32}, {0, 0, 1},
                                                       8.0),
                                std::move(env)),
               array, rng.fork(1)) {}
};

TEST(Reader, StaticCaptureReadsEveryTag) {
  Fixture f;
  const auto stream = f.reader.captureStatic(2.0);
  EXPECT_GT(stream.size(), 400u);
  for (std::uint32_t i = 0; i < 25; ++i) {
    EXPECT_GT(stream.countFor(i), 10u) << "tag " << i;
  }
}

TEST(Reader, PhaseQuantisedToPaperResolution) {
  // §III-A: reported phase has 0.0015 rad resolution (2π/4096).
  Fixture f;
  const auto stream = f.reader.captureStatic(0.5);
  const double step = kTwoPi / 4096.0;
  for (const auto& r : stream.reports()) {
    const double q = r.phase_rad / step;
    EXPECT_NEAR(q, std::round(q), 1e-6);
    EXPECT_GE(r.phase_rad, 0.0);
    EXPECT_LT(r.phase_rad, kTwoPi);
  }
}

TEST(Reader, RssiQuantisedToHalfDb) {
  Fixture f;
  const auto stream = f.reader.captureStatic(0.5);
  for (const auto& r : stream.reports()) {
    const double q = r.rssi_dbm / 0.5;
    EXPECT_NEAR(q, std::round(q), 1e-9);
  }
}

TEST(Reader, StaticPhaseStableButDiverse) {
  Fixture f;
  const auto stream = f.reader.captureStatic(3.0);
  std::vector<double> means;
  for (std::uint32_t i = 0; i < 25; ++i) {
    const auto s = stream.seriesFor(i);
    // Per-tag phase is stable over time (Fig. 2b, black line)...
    EXPECT_LT(circularStddev(s.phases), 0.5) << i;
    means.push_back(circularMean(s.phases));
  }
  // ...but spreads across tags due to θ_tag diversity (Fig. 4).
  double lo = means[0], hi = means[0];
  for (double m : means) {
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  EXPECT_GT(hi - lo, 1.0);
}

TEST(Reader, BackscatterPowerBallpark) {
  // At 32 cm / 30 dBm the backscatter reaches the reader tens of dB above
  // its sensitivity.
  Fixture f;
  const auto stream = f.reader.captureStatic(0.5);
  for (const auto& r : stream.reports()) {
    EXPECT_GT(r.rssi_dbm, -60.0);
    EXPECT_LT(r.rssi_dbm, 0.0);
  }
}

TEST(Reader, DopplerNoisyAroundZeroWhenStatic) {
  // Fig. 2(a): Doppler is indistinguishable from noise in the static case.
  Fixture f;
  const auto stream = f.reader.captureStatic(2.0);
  RunningStats ds;
  for (const auto& r : stream.reports()) ds.add(r.doppler_hz);
  EXPECT_NEAR(ds.mean(), 0.0, 0.3);
  EXPECT_GT(ds.stddev(), 0.2);
}

TEST(Reader, SceneBlockadeSuppressesReads) {
  // A strong absorber parked over a tag starves it of power (LOS antenna
  // side) or at least dents its RSS.
  Fixture f;
  const auto base = f.reader.captureStatic(1.0);

  rf::PointScatterer blocker;
  blocker.position = {0.0, 0.0, 0.035};
  blocker.rcs_m2 = 0.012;
  blocker.blocks_los = true;
  blocker.blockage_radius = 0.05;
  blocker.blockage_depth_db = 8.0;
  const SceneFn scene = [&](double) { return rf::ScattererList{blocker}; };
  const auto blocked = f.reader.capture(1.0, scene);

  const auto centre = f.array.indexOf(2, 2);
  const double base_rssi = mean(base.seriesFor(centre).rssi);
  const double blocked_rssi = mean(blocked.seriesFor(centre).rssi);
  EXPECT_LT(blocked_rssi, base_rssi - 3.0);
}

TEST(Reader, LowTxPowerReducesReadsOrSnr) {
  ReaderConfig weak;
  weak.tx_power_dbm = 10.0;
  Fixture strong;
  Fixture weak_f(weak);
  const auto s_strong = strong.reader.captureStatic(1.0);
  const auto s_weak = weak_f.reader.captureStatic(1.0);
  // Backscatter power is linear in TX power: 20 dB less TX → 20 dB less
  // received backscatter.
  RunningStats a, b;
  for (const auto& r : s_strong.reports()) a.add(r.rssi_dbm);
  for (const auto& r : s_weak.reports()) b.add(r.rssi_dbm);
  EXPECT_NEAR(a.mean() - b.mean(), 20.0, 3.0);
}

TEST(Reader, IncidentPowerQueriesScene) {
  Fixture f;
  const double dbm = f.reader.incidentDbm(12, 0.0, emptyScene);
  EXPECT_GT(dbm, -5.0);
  EXPECT_LT(dbm, 25.0);
}

TEST(Reader, ClockContinuesAcrossCaptures) {
  Fixture f;
  f.reader.captureStatic(0.5);
  const double t1 = f.reader.now();
  const auto stream = f.reader.captureStatic(0.5);
  EXPECT_GE(stream.startTime(), t1);
}

TEST(Reader, MeasureProducesConsistentReport) {
  Fixture f;
  const TagReport r = f.reader.measure(5, 1.0, emptyScene);
  EXPECT_EQ(r.tag_index, 5u);
  EXPECT_EQ(r.epc, f.array.at(5 / 5, 5 % 5).epc);
  EXPECT_DOUBLE_EQ(r.time_s, 1.0);
  EXPECT_NEAR(r.channel_mhz, 922.38, 1e-9);
}

}  // namespace
}  // namespace rfipad::reader
