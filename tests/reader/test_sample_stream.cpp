#include "reader/sample_stream.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rfipad::reader {
namespace {

TagReport report(std::uint32_t tag, double t, double phase = 1.0,
                 double rssi = -40.0) {
  TagReport r;
  r.tag_index = tag;
  r.time_s = t;
  r.phase_rad = phase;
  r.rssi_dbm = rssi;
  r.epc = "EPC";
  return r;
}

TEST(SampleStream, PushAndBasics) {
  SampleStream s(4);
  EXPECT_TRUE(s.empty());
  s.push(report(0, 0.1));
  s.push(report(3, 0.2));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.numTags(), 4u);
  EXPECT_DOUBLE_EQ(s.startTime(), 0.1);
  EXPECT_DOUBLE_EQ(s.endTime(), 0.2);
  EXPECT_DOUBLE_EQ(s.durationS(), 0.1);
}

TEST(SampleStream, RejectsTimeTravel) {
  SampleStream s(2);
  s.push(report(0, 1.0));
  EXPECT_THROW(s.push(report(1, 0.5)), std::invalid_argument);
}

TEST(SampleStream, GrowsNumTags) {
  SampleStream s;
  s.push(report(7, 0.0));
  EXPECT_EQ(s.numTags(), 8u);
}

TEST(SampleStream, SeriesExtraction) {
  SampleStream s(3);
  s.push(report(0, 0.0, 1.0, -40));
  s.push(report(1, 0.1, 2.0, -41));
  s.push(report(0, 0.2, 3.0, -42));
  const auto series = s.seriesFor(0);
  ASSERT_EQ(series.times.size(), 2u);
  EXPECT_DOUBLE_EQ(series.phases[0], 1.0);
  EXPECT_DOUBLE_EQ(series.phases[1], 3.0);
  EXPECT_DOUBLE_EQ(series.rssi[1], -42.0);
  EXPECT_TRUE(s.seriesFor(2).times.empty());
}

TEST(SampleStream, AllSeriesCoversEveryTag) {
  SampleStream s(3);
  s.push(report(1, 0.0));
  const auto all = s.allSeries();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[1].times.size(), 1u);
  EXPECT_TRUE(all[0].times.empty());
  EXPECT_EQ(all[2].tag_index, 2u);
}

TEST(SampleStream, CountAndRate) {
  SampleStream s(2);
  for (int i = 0; i < 10; ++i) s.push(report(i % 2, i * 0.1));
  EXPECT_EQ(s.countFor(0), 5u);
  EXPECT_NEAR(s.readRateHz(), 10.0 / 0.9, 1e-9);
}

TEST(SampleStream, SliceHalfOpen) {
  SampleStream s(1);
  for (int i = 0; i < 10; ++i) s.push(report(0, i * 0.1));
  const auto sub = s.slice(0.2, 0.5);
  ASSERT_EQ(sub.size(), 3u);  // 0.2, 0.3, 0.4
  EXPECT_DOUBLE_EQ(sub.startTime(), 0.2);
  EXPECT_LT(sub.endTime(), 0.5);
  EXPECT_EQ(sub.numTags(), 1u);
}

TEST(SampleStream, AppendPreservesOrder) {
  SampleStream a(1), b(1);
  a.push(report(0, 0.0));
  b.push(report(0, 1.0));
  a.append(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_THROW(b.append(a), std::invalid_argument);  // would go back in time
}

TEST(SampleStream, EmptyStreamDefaults) {
  const SampleStream s;
  EXPECT_DOUBLE_EQ(s.startTime(), 0.0);
  EXPECT_DOUBLE_EQ(s.durationS(), 0.0);
  EXPECT_DOUBLE_EQ(s.readRateHz(), 0.0);
}

}  // namespace
}  // namespace rfipad::reader
