#include "reader/sample_stream.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace rfipad::reader {
namespace {

TagReport report(std::uint32_t tag, double t, double phase = 1.0,
                 double rssi = -40.0) {
  TagReport r;
  r.tag_index = tag;
  r.time_s = t;
  r.phase_rad = phase;
  r.rssi_dbm = rssi;
  r.epc = "EPC";
  return r;
}

TEST(SampleStream, PushAndBasics) {
  SampleStream s(4);
  EXPECT_TRUE(s.empty());
  s.push(report(0, 0.1));
  s.push(report(3, 0.2));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.numTags(), 4u);
  EXPECT_DOUBLE_EQ(s.startTime(), 0.1);
  EXPECT_DOUBLE_EQ(s.endTime(), 0.2);
  EXPECT_DOUBLE_EQ(s.durationS(), 0.1);
}

TEST(SampleStream, ReinsertsTimeTravelAtItsTimestamp) {
  // An out-of-order arrival (transport reordering) is merged back at its
  // timestamp and counted, instead of throwing.
  SampleStream s(2);
  s.push(report(0, 1.0));
  EXPECT_EQ(s.push(report(1, 0.5)), PushOutcome::kReordered);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0].time_s, 0.5);
  EXPECT_DOUBLE_EQ(s[1].time_s, 1.0);
  EXPECT_EQ(s.reorderCount(), 1u);
}

TEST(SampleStream, InOrderPushesCountNoReorders) {
  SampleStream s(1);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(s.push(report(0, i * 0.1)), PushOutcome::kAppended);
  EXPECT_EQ(s.reorderCount(), 0u);
  EXPECT_EQ(s.duplicateCount(), 0u);
  EXPECT_EQ(s.invalidCount(), 0u);
}

TEST(SampleStream, DropsExactDuplicates) {
  SampleStream s(2);
  const auto r = report(0, 0.5, 2.0, -45.0);
  EXPECT_EQ(s.push(r), PushOutcome::kAppended);
  EXPECT_EQ(s.push(r), PushOutcome::kDuplicate);
  s.push(report(1, 0.7));
  // A late re-delivery of an older report is also recognised.
  EXPECT_EQ(s.push(r), PushOutcome::kDuplicate);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.duplicateCount(), 2u);
  // Same timestamp but different payload is a distinct read, kept.
  EXPECT_EQ(s.push(report(0, 0.5, 2.5, -45.0)), PushOutcome::kReordered);
  EXPECT_EQ(s.size(), 3u);
}

TEST(SampleStream, DropsNonFiniteTimestamps) {
  SampleStream s(1);
  EXPECT_EQ(s.push(report(0, std::numeric_limits<double>::quiet_NaN())),
            PushOutcome::kInvalid);
  EXPECT_EQ(s.push(report(0, std::numeric_limits<double>::infinity())),
            PushOutcome::kInvalid);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.invalidCount(), 2u);
}

TEST(SampleStream, GrowsNumTags) {
  SampleStream s;
  s.push(report(7, 0.0));
  EXPECT_EQ(s.numTags(), 8u);
}

TEST(SampleStream, SeriesExtraction) {
  SampleStream s(3);
  s.push(report(0, 0.0, 1.0, -40));
  s.push(report(1, 0.1, 2.0, -41));
  s.push(report(0, 0.2, 3.0, -42));
  const auto series = s.seriesFor(0);
  ASSERT_EQ(series.times.size(), 2u);
  EXPECT_DOUBLE_EQ(series.phases[0], 1.0);
  EXPECT_DOUBLE_EQ(series.phases[1], 3.0);
  EXPECT_DOUBLE_EQ(series.rssi[1], -42.0);
  EXPECT_TRUE(s.seriesFor(2).times.empty());
}

TEST(SampleStream, AllSeriesCoversEveryTag) {
  SampleStream s(3);
  s.push(report(1, 0.0));
  const auto all = s.allSeries();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[1].times.size(), 1u);
  EXPECT_TRUE(all[0].times.empty());
  EXPECT_EQ(all[2].tag_index, 2u);
}

TEST(SampleStream, CountAndRate) {
  SampleStream s(2);
  for (int i = 0; i < 10; ++i) s.push(report(i % 2, i * 0.1));
  EXPECT_EQ(s.countFor(0), 5u);
  EXPECT_NEAR(s.readRateHz(), 10.0 / 0.9, 1e-9);
}

TEST(SampleStream, SliceHalfOpen) {
  SampleStream s(1);
  for (int i = 0; i < 10; ++i) s.push(report(0, i * 0.1));
  const auto sub = s.slice(0.2, 0.5);
  ASSERT_EQ(sub.size(), 3u);  // 0.2, 0.3, 0.4
  EXPECT_DOUBLE_EQ(sub.startTime(), 0.2);
  EXPECT_LT(sub.endTime(), 0.5);
  EXPECT_EQ(sub.numTags(), 1u);
}

TEST(SampleStream, AppendMergesAtTimestamps) {
  SampleStream a(1), b(1);
  a.push(report(0, 0.0));
  b.push(report(0, 1.0));
  a.append(b);
  EXPECT_EQ(a.size(), 2u);
  // Appending the older stream merges its fresh report back in time order
  // (the shared report is recognised as a duplicate).
  b.append(a);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_DOUBLE_EQ(b[0].time_s, 0.0);
  EXPECT_DOUBLE_EQ(b[1].time_s, 1.0);
  EXPECT_EQ(b.reorderCount(), 1u);
  EXPECT_EQ(b.duplicateCount(), 1u);
}

TEST(SampleStream, EmptyStreamDefaults) {
  const SampleStream s;
  EXPECT_DOUBLE_EQ(s.startTime(), 0.0);
  EXPECT_DOUBLE_EQ(s.durationS(), 0.0);
  EXPECT_DOUBLE_EQ(s.readRateHz(), 0.0);
}

TEST(SampleStream, DropBeforeAdvancesWindow) {
  SampleStream s(2);
  for (int i = 0; i < 10; ++i) s.push(report(0, i * 0.1));
  s.dropBefore(0.45);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_DOUBLE_EQ(s.startTime(), 0.5);
  EXPECT_DOUBLE_EQ(s.endTime(), 0.9);
  ASSERT_EQ(s.reports().size(), 5u);
  EXPECT_DOUBLE_EQ(s.reports().front().time_s, 0.5);
  // A report exactly at the bound survives (drop is "time < t").
  s.dropBefore(0.7);
  EXPECT_DOUBLE_EQ(s.startTime(), 0.7);
  EXPECT_EQ(s.size(), 3u);
  // Dropping everything resets to an empty (but usable) stream.
  s.dropBefore(10.0);
  EXPECT_TRUE(s.empty());
  s.push(report(1, 11.0));
  EXPECT_DOUBLE_EQ(s.startTime(), 11.0);
  EXPECT_EQ(s.numTags(), 2u);
}

TEST(SampleStream, DropBeforeLeavesSeriesConsistent) {
  SampleStream s(2);
  for (int i = 0; i < 20; ++i)
    s.push(report(static_cast<std::uint32_t>(i % 2), i * 0.1, 1.0 + i));
  s.dropBefore(1.0);  // keep reports 10..19
  EXPECT_EQ(s.countFor(0), 5u);
  EXPECT_EQ(s.countFor(1), 5u);
  const auto series = s.seriesFor(1);
  ASSERT_EQ(series.times.size(), 5u);
  EXPECT_DOUBLE_EQ(series.times.front(), 1.1);
  const auto flat = s.flatSeries();
  EXPECT_EQ(flat.times.size(), s.size());
  // Push after the drop: appends stay in order relative to the window.
  s.push(report(0, 2.5));
  EXPECT_DOUBLE_EQ(s.endTime(), 2.5);
  EXPECT_EQ(s.reorderCount(), 0u);
}

TEST(SampleStream, DropBeforeNothingIsANoOp) {
  SampleStream s(1);
  for (int i = 0; i < 10; ++i) s.push(report(0, 1.0 + i * 0.1));
  const TagReport* base = s.reports().data();
  // A bound at (or before) the window start drops nothing and must not
  // touch the storage — the live-window pointer stays put.
  s.dropBefore(1.0);
  EXPECT_EQ(s.size(), 10u);
  EXPECT_EQ(s.reports().data(), base);
  s.dropBefore(0.0);
  EXPECT_EQ(s.size(), 10u);
  EXPECT_EQ(s.reports().data(), base);
  s.dropBefore(-5.0);
  EXPECT_EQ(s.size(), 10u);
  EXPECT_EQ(s.reports().data(), base);
}

TEST(SampleStream, RepeatedDropsAtTheSameWatermarkAreIdempotent) {
  SampleStream s(1);
  for (int i = 0; i < 20; ++i) s.push(report(0, i * 0.1));
  s.dropBefore(0.95);
  const std::size_t size_after_first = s.size();
  const double start_after_first = s.startTime();
  const TagReport* data_after_first = s.reports().data();
  ASSERT_EQ(size_after_first, 10u);
  // Re-issuing the same watermark (the segmenter does this every pass
  // while the window start is stationary) is a pure no-op: no size
  // change, no pointer movement, no compaction churn.
  for (int k = 0; k < 5; ++k) {
    s.dropBefore(0.95);
    EXPECT_EQ(s.size(), size_after_first);
    EXPECT_DOUBLE_EQ(s.startTime(), start_after_first);
    EXPECT_EQ(s.reports().data(), data_after_first);
  }
}

TEST(SampleStream, DropAllResetsStorageAndStreamStaysUsable) {
  SampleStream s(2);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i)
      s.push(report(static_cast<std::uint32_t>(i % 2),
                    round * 100.0 + i * 0.1));
    EXPECT_EQ(s.size(), 50u);
    // Drop-all clears the backing vector outright (front index back to 0)
    // rather than leaving a fully-dead prefix around.
    s.dropBefore(round * 100.0 + 10.0);
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.countFor(0), 0u);
    EXPECT_EQ(s.countFor(1), 0u);
    EXPECT_DOUBLE_EQ(s.startTime(), 0.0);
  }
}

TEST(SampleStream, CompactionTriggersOnlyWhenDeadPrefixDominates) {
  // Pin the amortised-O(1) contract: small drops advance the front index
  // inside the same allocation (pointer moves forward, no element moves);
  // only once the dead prefix is >= 64 AND >= half the storage does one
  // erase pay the whole prefix back.
  SampleStream s(1);
  for (int i = 0; i < 300; ++i) s.push(report(0, i * 0.1));
  const TagReport* base = s.reports().data();

  // front_ = 100: >= 64 but 200 < 300 → no compaction, window slides.
  s.dropBefore(10.0);
  EXPECT_EQ(s.size(), 200u);
  EXPECT_EQ(s.reports().data(), base + 100);

  // front_ = 160: 320 >= 300 → compacts back to the buffer start.
  s.dropBefore(16.0);
  EXPECT_EQ(s.size(), 140u);
  EXPECT_EQ(s.reports().data(), base);
  EXPECT_DOUBLE_EQ(s.startTime(), 16.0);

  // Below the 64-element floor nothing compacts even when the dead
  // prefix is more than half the storage (60 × 2 >= 100 but 60 < 64).
  SampleStream small(1);
  for (int i = 0; i < 100; ++i) small.push(report(0, i * 0.1));
  const TagReport* small_base = small.reports().data();
  small.dropBefore(6.0);
  EXPECT_EQ(small.size(), 40u);
  EXPECT_EQ(small.reports().data(), small_base + 60);
}

TEST(SampleStream, DropInterleavedWithFlatSeriesStaysConsistent) {
  SampleStream s(3);
  for (int i = 0; i < 120; ++i)
    s.push(report(static_cast<std::uint32_t>(i % 3), i * 0.05, 1.0 + i));
  FlatSeries reused;
  for (int k = 1; k <= 6; ++k) {
    s.dropBefore(k * 0.8);
    // The SoA extraction must always reflect exactly the live window —
    // same sample count, window-start time, and per-tag partitioning.
    const FlatSeries flat = s.flatSeries();
    ASSERT_EQ(flat.times.size(), s.size());
    s.flatSeriesInto(reused);
    ASSERT_EQ(reused.times.size(), flat.times.size());
    std::size_t total = 0;
    for (std::uint32_t tag = 0; tag < 3; ++tag) total += s.countFor(tag);
    EXPECT_EQ(total, s.size());
    if (!s.empty()) {
      EXPECT_GE(s.startTime(), k * 0.8);
      for (std::size_t i = 0; i < flat.times.size(); ++i) {
        EXPECT_EQ(flat.times[i], reused.times[i]);
        EXPECT_EQ(flat.phases[i], reused.phases[i]);
      }
    }
  }
  // Everything below the final watermark is gone for good; a fresh push
  // after heavy interleaving still lands cleanly in order.
  s.push(report(0, 100.0));
  EXPECT_DOUBLE_EQ(s.endTime(), 100.0);
  EXPECT_EQ(s.reorderCount(), 0u);
}

TEST(SampleStream, ManyIncrementalDropsMatchOneBigDrop) {
  // The compaction threshold must never change what the window contains:
  // trimming in 50 small steps and in a single step give identical views.
  SampleStream steps(1), once(1);
  for (int i = 0; i < 500; ++i) {
    steps.push(report(0, i * 0.01, 1.0 + i));
    once.push(report(0, i * 0.01, 1.0 + i));
  }
  for (int k = 1; k <= 50; ++k) steps.dropBefore(k * 0.06);
  once.dropBefore(50 * 0.06);
  ASSERT_EQ(steps.size(), once.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    EXPECT_DOUBLE_EQ(steps[i].time_s, once[i].time_s);
    EXPECT_DOUBLE_EQ(steps[i].phase_rad, once[i].phase_rad);
  }
}

}  // namespace
}  // namespace rfipad::reader
