// Allocation accounting for the sample hot path: after warm-up (capacity
// reserved), pushing reports into a SampleStream must not touch the heap.
// The old TagReport carried a std::string EPC — 24 hex chars, past the SSO
// buffer — so every simulated read heap-allocated at least once; the inline
// EpcHex plus the trivially-copyable TagReport make push() a plain memcpy.
//
// The counter instruments global operator new/delete for this test binary
// only.  gtest itself allocates (assertion bookkeeping), so each check
// measures the delta across the tight push loop alone and performs no
// EXPECT/ASSERT inside the measured region.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <type_traits>

#include "reader/sample_stream.hpp"
#include "reader/tag_report.hpp"

namespace {

std::atomic<std::size_t> g_live_allocs{0};

}  // namespace

void* operator new(std::size_t size) {
  g_live_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_live_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace rfipad::reader {
namespace {

// The structural property behind the zero-allocation guarantee: a report is
// a flat value, so vector growth and push-by-value never chase pointers.
static_assert(std::is_trivially_copyable_v<TagReport>,
              "TagReport must stay trivially copyable (inline EPC)");
static_assert(std::is_trivially_copyable_v<EpcHex>,
              "EpcHex must stay trivially copyable");

TagReport makeReport(std::uint32_t tag, double t) {
  TagReport r;
  r.epc = "3000AA00BB00CC0000000007";  // 24 hex chars — past std::string SSO
  r.tag_index = tag;
  r.time_s = t;
  r.phase_rad = 1.25;
  r.rssi_dbm = -58.5;
  return r;
}

TEST(StreamAlloc, SteadyStatePushIsAllocationFree) {
  constexpr std::size_t kWarmup = 1024;
  constexpr std::size_t kMeasured = 4096;

  SampleStream stream(8);
  stream.reserve(kWarmup + kMeasured);
  for (std::size_t i = 0; i < kWarmup; ++i) {
    stream.push(makeReport(static_cast<std::uint32_t>(i % 8),
                           static_cast<double>(i) * 1e-3));
  }

  const std::size_t before = g_live_allocs.load(std::memory_order_relaxed);
  for (std::size_t i = kWarmup; i < kWarmup + kMeasured; ++i) {
    stream.push(makeReport(static_cast<std::uint32_t>(i % 8),
                           static_cast<double>(i) * 1e-3));
  }
  const std::size_t after = g_live_allocs.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "steady-state push() must not allocate once capacity is reserved";
  EXPECT_EQ(stream.size(), kWarmup + kMeasured);
}

TEST(StreamAlloc, ReportConstructionIsAllocationFree) {
  const std::size_t before = g_live_allocs.load(std::memory_order_relaxed);
  double acc = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const TagReport r = makeReport(static_cast<std::uint32_t>(i), 0.5);
    acc += r.phase_rad;
  }
  const std::size_t after = g_live_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  EXPECT_GT(acc, 0.0);
}

TEST(StreamAlloc, EpcRoundTripsThroughInlineStorage) {
  TagReport r = makeReport(3, 0.0);
  EXPECT_EQ(r.epc, std::string("3000AA00BB00CC0000000007"));
  EXPECT_EQ(r.epc.size(), 24u);
  r.epc = "EPC";  // shorter re-assignment must not leave residue
  EXPECT_EQ(r.epc, std::string("EPC"));
  EXPECT_EQ(r.epc.size(), 3u);
  EXPECT_FALSE(r.epc == EpcHex("EPCX"));
}

}  // namespace
}  // namespace rfipad::reader
