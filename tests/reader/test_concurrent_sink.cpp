// ConcurrentStreamSink under real contention: N producer threads pushing
// interleaved, out-of-order reports must yield the same time-sorted merged
// stream a single-threaded merge would.  Labelled `san` so the whole file
// runs under TSan (`cmake --preset tsan && ctest -L san`).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "reader/sample_stream.hpp"

namespace rfipad::reader {
namespace {

TagReport makeReport(std::uint32_t tag, double t, double phase) {
  TagReport r;
  r.tag_index = tag;
  r.time_s = t;
  r.phase_rad = phase;
  r.rssi_dbm = -45.0;
  return r;
}

constexpr int kProducers = 4;
constexpr int kPerProducer = 250;

/// Producer p emits reports at times p*0.001 + i*0.01 — interleaved across
/// producers, strictly increasing within each.
TagReport producerReport(int p, int i) {
  return makeReport(static_cast<std::uint32_t>(p),
                    0.001 * p + 0.01 * i, 0.1 * p + 0.001 * i);
}

TEST(ConcurrentStreamSink, ParallelPushMatchesSequentialMerge) {
  ConcurrentStreamSink sink(kProducers);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&sink, p] {
      for (int i = 0; i < kPerProducer; ++i) sink.push(producerReport(p, i));
    });
  }
  for (auto& t : threads) t.join();

  SampleStream expected(kProducers);
  for (int p = 0; p < kProducers; ++p)
    for (int i = 0; i < kPerProducer; ++i) expected.push(producerReport(p, i));

  const SampleStream merged = sink.take();
  ASSERT_EQ(merged.size(), expected.size());
  ASSERT_EQ(merged.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].tag_index, expected[i].tag_index);
    EXPECT_DOUBLE_EQ(merged[i].time_s, expected[i].time_s);
    EXPECT_DOUBLE_EQ(merged[i].phase_rad, expected[i].phase_rad);
  }
}

TEST(ConcurrentStreamSink, ParallelAppendPreservesEveryReport) {
  // The bulk fan-in path: each producer accumulates privately, then merges
  // its whole stream under one lock acquisition.
  ConcurrentStreamSink sink(kProducers);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&sink, p] {
      SampleStream local(kProducers);
      for (int i = 0; i < kPerProducer; ++i) local.push(producerReport(p, i));
      sink.append(local);
    });
  }
  for (auto& t : threads) t.join();

  const SampleStream merged = sink.snapshot();
  EXPECT_EQ(merged.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].time_s, merged[i].time_s);
  }
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(merged.countFor(p), static_cast<std::size_t>(kPerProducer));
  }
}

TEST(ConcurrentStreamSink, SnapshotIsSafeWhileProducersRun) {
  ConcurrentStreamSink sink(1);
  std::thread producer([&sink] {
    for (int i = 0; i < 2000; ++i) sink.push(makeReport(0, 0.001 * i, 0.0));
  });
  std::size_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const SampleStream snap = sink.snapshot();
    EXPECT_GE(snap.size(), last);  // monotone: pushes only add
    last = snap.size();
  }
  producer.join();
  EXPECT_EQ(sink.size(), 2000u);
}

TEST(ConcurrentStreamSink, TakeLeavesAnEmptyUsableSink) {
  ConcurrentStreamSink sink(2);
  sink.push(makeReport(0, 0.0, 0.0));
  sink.push(makeReport(1, 1.0, 0.5));
  const SampleStream first = sink.take();
  EXPECT_EQ(first.size(), 2u);
  EXPECT_EQ(first.numTags(), 2u);
  EXPECT_EQ(sink.size(), 0u);
  // Still usable after the drain, with the tag count intact.
  sink.push(makeReport(1, 2.0, 0.25));
  const SampleStream second = sink.take();
  EXPECT_EQ(second.size(), 1u);
  EXPECT_EQ(second.numTags(), 2u);
}

}  // namespace
}  // namespace rfipad::reader
