// Temporal gap imputation (missing-data recovery stage 1): bridged bursts,
// refused jitter/outages/channel-hops/wide arcs, and byte-exact passthrough
// when disabled or when nothing qualifies.
#include "reader/sample_stream.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rfipad::reader {
namespace {

TagReport report(std::uint32_t tag, double t, double phase = 1.0,
                 double rssi = -40.0, double channel = 920.0) {
  TagReport r;
  r.tag_index = tag;
  r.time_s = t;
  r.phase_rad = phase;
  r.rssi_dbm = rssi;
  r.channel_mhz = channel;
  r.doppler_hz = 3.0;
  r.epc = "EPC";
  return r;
}

bool identicalStreams(const SampleStream& a, const SampleStream& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].tag_index != b[i].tag_index || a[i].time_s != b[i].time_s ||
        a[i].phase_rad != b[i].phase_rad || a[i].rssi_dbm != b[i].rssi_dbm ||
        a[i].imputed != b[i].imputed)
      return false;
  }
  return true;
}

/// 20 evenly spaced reads (dt = 10 ms), then a gap, then 20 more.
SampleStream streamWithGap(double gap_s, double phase_after = 1.1,
                           double channel_after = 920.0) {
  SampleStream s(1);
  const double dt = 0.01;
  double t = 0.0;
  for (int i = 0; i < 20; ++i, t += dt) s.push(report(0, t, 1.0));
  t += gap_s - dt;  // last pre-gap read sits at t - dt
  for (int i = 0; i < 20; ++i, t += dt)
    s.push(report(0, t, phase_after, -40.0, channel_after));
  return s;
}

TEST(ImputeGaps, DisabledIsByteExactPassthrough) {
  const auto in = streamWithGap(0.2);
  GapImputeOptions opt;  // enabled defaults to false
  GapImputeStats stats;
  const auto out = imputeGaps(in, opt, &stats);
  EXPECT_TRUE(identicalStreams(in, out));
  EXPECT_EQ(stats.gaps_bridged, 0u);
  EXPECT_EQ(stats.reports_inserted, 0u);
}

TEST(ImputeGaps, BridgesBurstGap) {
  // 0.1 s gap = 10× the 10 ms spacing: a burst of lost reads, bridged.
  const auto in = streamWithGap(0.1);
  GapImputeOptions opt;
  opt.enabled = true;
  GapImputeStats stats;
  const auto out = imputeGaps(in, opt, &stats);

  EXPECT_EQ(stats.gaps_bridged, 1u);
  EXPECT_GT(stats.reports_inserted, 0u);
  EXPECT_EQ(out.size(), in.size() + stats.reports_inserted);

  std::size_t imputed = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto& r = out[i];
    if (!r.imputed) continue;
    ++imputed;
    // Synthetic reads live strictly inside the gap, interpolate phase along
    // the short arc from 1.0 to 1.1, and carry no Doppler.
    EXPECT_GT(r.time_s, 0.19);
    EXPECT_LT(r.time_s, 0.29);
    EXPECT_GE(r.phase_rad, 1.0);
    EXPECT_LE(r.phase_rad, 1.1);
    EXPECT_DOUBLE_EQ(r.doppler_hz, 0.0);
    EXPECT_DOUBLE_EQ(r.rssi_dbm, -40.0);
    if (i > 0) {
      EXPECT_LE(out[i - 1].time_s, r.time_s);
    }
  }
  EXPECT_EQ(imputed, stats.reports_inserted);
}

TEST(ImputeGaps, GapBeyondMaxGapPassesThroughUntouched) {
  const auto in = streamWithGap(0.9);  // longer than max_gap_s = 0.5
  GapImputeOptions opt;
  opt.enabled = true;
  GapImputeStats stats;
  const auto out = imputeGaps(in, opt, &stats);
  EXPECT_TRUE(identicalStreams(in, out));
  EXPECT_EQ(stats.gaps_bridged, 0u);
  EXPECT_EQ(stats.gaps_too_long, 1u);
}

TEST(ImputeGaps, JitterGapNotBridged) {
  // 4× spacing is Gen2 back-off jitter, below the 6× min_gap_factor.
  const auto in = streamWithGap(0.04);
  GapImputeOptions opt;
  opt.enabled = true;
  GapImputeStats stats;
  const auto out = imputeGaps(in, opt, &stats);
  EXPECT_TRUE(identicalStreams(in, out));
  EXPECT_EQ(stats.gaps_bridged, 0u);
}

TEST(ImputeGaps, CrossChannelGapSkipped) {
  // Endpoints on different hop channels: phases not comparable, no bridge.
  const auto in = streamWithGap(0.1, 1.1, 924.25);
  GapImputeOptions opt;
  opt.enabled = true;
  GapImputeStats stats;
  const auto out = imputeGaps(in, opt, &stats);
  EXPECT_TRUE(identicalStreams(in, out));
  EXPECT_EQ(stats.gaps_cross_channel, 1u);
}

TEST(ImputeGaps, WideArcGapSkipped) {
  // Endpoint phases 2.5 rad apart (> π/2): the hand moved during the gap,
  // interpolation would fabricate the trajectory.
  const auto in = streamWithGap(0.1, 3.5);
  GapImputeOptions opt;
  opt.enabled = true;
  GapImputeStats stats;
  const auto out = imputeGaps(in, opt, &stats);
  EXPECT_TRUE(identicalStreams(in, out));
  EXPECT_EQ(stats.gaps_arc_too_wide, 1u);
  EXPECT_EQ(stats.gaps_bridged, 0u);
}

TEST(ImputeGaps, InsertionCapBoundsSyntheticReads) {
  const auto in = streamWithGap(0.3);  // 30 missing spacings
  GapImputeOptions opt;
  opt.enabled = true;
  opt.max_inserted_per_gap = 4;
  GapImputeStats stats;
  imputeGaps(in, opt, &stats);
  EXPECT_EQ(stats.reports_inserted, 4u);
}

TEST(ImputeGaps, IdempotentOnBridgedStream) {
  // Re-imputing an already-bridged stream inserts nothing: the bridge
  // restored nominal spacing.
  GapImputeOptions opt;
  opt.enabled = true;
  GapImputeStats stats;
  const auto once = imputeGaps(streamWithGap(0.1), opt, &stats);
  ASSERT_GT(stats.reports_inserted, 0u);
  const auto twice = imputeGaps(once, opt, &stats);
  EXPECT_EQ(stats.reports_inserted, 0u);
  EXPECT_TRUE(identicalStreams(once, twice));
}

TEST(ImputeGaps, DeterministicByteExactRerun) {
  GapImputeOptions opt;
  opt.enabled = true;
  const auto a = imputeGaps(streamWithGap(0.1), opt);
  const auto b = imputeGaps(streamWithGap(0.1), opt);
  EXPECT_TRUE(identicalStreams(a, b));
}

}  // namespace
}  // namespace rfipad::reader
