// Frequency hopping — what the paper avoids by fixing 922.38 MHz, but any
// FCC-band deployment must handle: every hop changes the carrier phase
// offsets, so calibration only transfers within a channel.
#include <gtest/gtest.h>

#include "common/angles.hpp"
#include "core/activation.hpp"
#include "core/static_profile.hpp"
#include "reader/reader.hpp"
#include "rf/multipath.hpp"
#include "tag/array.hpp"

namespace rfipad::reader {
namespace {

ReaderConfig hoppingConfig() {
  ReaderConfig cfg;
  // A small China-band hop set around the paper's fixed channel.
  cfg.hop_channels_mhz = {920.625, 921.375, 922.375, 923.125};
  cfg.hop_interval_s = 0.2;
  return cfg;
}

struct Fixture {
  Rng rng{77};
  tag::TagArray array{tag::ArrayConfig{}, rng};
  RfidReader reader;

  explicit Fixture(ReaderConfig cfg)
      : reader(cfg,
               rf::ChannelModel(rf::CarrierConfig{922.38e6},
                                rf::DirectionalAntenna({0, 0, -0.32},
                                                       {0, 0, 1}, 8.0),
                                rf::anechoic()),
               array, rng.fork(1)) {}
};

TEST(Hopping, FixedCarrierReportsOneChannel) {
  Fixture f{ReaderConfig{}};
  const auto stream = f.reader.captureStatic(1.0);
  EXPECT_EQ(stream.channels().size(), 1u);
  EXPECT_NEAR(stream.channels()[0], 922.38, 1e-6);
}

TEST(Hopping, PlanCyclesThroughChannels) {
  Fixture f{hoppingConfig()};
  EXPECT_EQ(f.reader.channelIndexAt(0.1), 0u);
  EXPECT_EQ(f.reader.channelIndexAt(0.3), 1u);
  EXPECT_EQ(f.reader.channelIndexAt(0.5), 2u);
  EXPECT_EQ(f.reader.channelIndexAt(0.7), 3u);
  EXPECT_EQ(f.reader.channelIndexAt(0.9), 0u);  // wraps
  EXPECT_NEAR(f.reader.channelMhzAt(0.3), 921.375, 1e-6);
}

TEST(Hopping, CaptureSpansAllChannels) {
  Fixture f{hoppingConfig()};
  const auto stream = f.reader.captureStatic(2.0);
  EXPECT_EQ(stream.channels().size(), 4u);
}

TEST(Hopping, RejectsBadInterval) {
  ReaderConfig bad = hoppingConfig();
  bad.hop_interval_s = 0.0;
  Rng rng{1};
  tag::TagArray array{tag::ArrayConfig{}, rng};
  EXPECT_THROW(
      RfidReader(bad,
                 rf::ChannelModel(rf::CarrierConfig{922.38e6},
                                  rf::DirectionalAntenna({0, 0, -0.32},
                                                         {0, 0, 1}, 8.0),
                                  rf::anechoic()),
                 array, rng.fork(1)),
      std::invalid_argument);
}

TEST(Hopping, PhaseOffsetsDifferAcrossChannels) {
  // The same static tag reads at different central phases per channel —
  // carrier wavelength and cable rotation both change.
  Fixture f{hoppingConfig()};
  const auto stream = f.reader.captureStatic(3.0);
  const auto chans = stream.channels();
  ASSERT_EQ(chans.size(), 4u);
  std::vector<double> means;
  for (double c : chans) {
    const auto sub = stream.filterChannel(c).seriesFor(12);
    ASSERT_GE(sub.phases.size(), 5u) << c;
    means.push_back(circularMean(sub.phases));
  }
  double max_gap = 0.0;
  for (std::size_t i = 1; i < means.size(); ++i) {
    max_gap = std::max(max_gap, std::abs(angleDiff(means[i], means[0])));
  }
  EXPECT_GT(max_gap, 0.3);
}

TEST(Hopping, NaiveCalibrationInflatesDeviationBias) {
  // Calibrating across all channels as if they were one makes every tag
  // look noisy; per-channel calibration restores the true (small) bias.
  Fixture f{hoppingConfig()};
  const auto stream = f.reader.captureStatic(4.0);

  const auto naive = core::StaticProfile::calibrate(stream, 25);
  const auto one_channel = core::StaticProfile::calibrate(
      stream.filterChannel(stream.channels().front()), 25);

  double naive_median = naive.medianBias();
  double clean_median = one_channel.medianBias();
  EXPECT_GT(naive_median, 3.0 * clean_median);
}

TEST(Hopping, PerChannelStreamsStayQuiet) {
  // Within one channel, the static phase is as stable as a fixed carrier.
  Fixture f{hoppingConfig()};
  const auto stream = f.reader.captureStatic(4.0);
  for (double c : stream.channels()) {
    const auto sub = stream.filterChannel(c);
    for (std::uint32_t i = 0; i < 25; i += 6) {
      const auto series = sub.seriesFor(i);
      if (series.phases.size() < 5) continue;
      EXPECT_LT(circularStddev(series.phases), 0.4)
          << "tag " << i << " channel " << c;
    }
  }
}

}  // namespace
}  // namespace rfipad::reader
