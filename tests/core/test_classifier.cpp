#include "core/stroke_classifier.hpp"

#include <gtest/gtest.h>

namespace rfipad::core {
namespace {

imgproc::BinaryMap mapOf(const std::vector<std::pair<int, int>>& cells) {
  imgproc::BinaryMap m(5, 5);
  for (auto [r, c] : cells) m.set(r, c, true);
  return m;
}

DirectionResult towards(Vec2 v) {
  DirectionResult d;
  d.valid = true;
  d.direction = v.normalized();
  d.confidence = 0.9;
  return d;
}

TEST(Classifier, EmptyMapInvalid) {
  const auto obs = classifyStrokeBinary(mapOf({}), {});
  EXPECT_FALSE(obs.valid);
}

TEST(Classifier, VerticalLine) {
  const auto obs = classifyStrokeBinary(
      mapOf({{0, 2}, {1, 2}, {2, 2}, {3, 2}, {4, 2}}), towards({0, -1}));
  ASSERT_TRUE(obs.valid);
  EXPECT_EQ(obs.stroke.kind, StrokeKind::kVLine);
  EXPECT_EQ(obs.stroke.dir, StrokeDir::kForward);  // ↓
}

TEST(Classifier, VerticalLineReverse) {
  const auto obs = classifyStrokeBinary(
      mapOf({{0, 2}, {1, 2}, {2, 2}, {3, 2}, {4, 2}}), towards({0, 1}));
  EXPECT_EQ(obs.stroke.dir, StrokeDir::kReverse);  // ↑
}

TEST(Classifier, HorizontalLineBothDirections) {
  const auto fwd = classifyStrokeBinary(
      mapOf({{2, 0}, {2, 1}, {2, 2}, {2, 3}, {2, 4}}), towards({1, 0}));
  EXPECT_EQ(fwd.stroke.kind, StrokeKind::kHLine);
  EXPECT_EQ(fwd.stroke.dir, StrokeDir::kForward);
  const auto rev = classifyStrokeBinary(
      mapOf({{2, 0}, {2, 1}, {2, 2}, {2, 3}, {2, 4}}), towards({-1, 0}));
  EXPECT_EQ(rev.stroke.dir, StrokeDir::kReverse);
}

TEST(Classifier, SlashAndBackslash) {
  const auto slash = classifyStrokeBinary(
      mapOf({{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}}), towards({1, 1}));
  EXPECT_EQ(slash.stroke.kind, StrokeKind::kSlash);
  const auto back = classifyStrokeBinary(
      mapOf({{4, 0}, {3, 1}, {2, 2}, {1, 3}, {0, 4}}), towards({1, -1}));
  EXPECT_EQ(back.stroke.kind, StrokeKind::kBackslash);
  EXPECT_EQ(back.stroke.dir, StrokeDir::kForward);
}

TEST(Classifier, ClickBlob) {
  const auto obs = classifyStrokeBinary(mapOf({{2, 2}, {2, 3}, {3, 2}}), {});
  ASSERT_TRUE(obs.valid);
  EXPECT_EQ(obs.stroke.kind, StrokeKind::kClick);
}

TEST(Classifier, LeftAndRightArcs) {
  const auto left = classifyStrokeBinary(
      mapOf({{4, 2}, {3, 1}, {2, 0}, {1, 1}, {0, 2}}), towards({0, -1}));
  ASSERT_TRUE(left.valid);
  EXPECT_EQ(left.stroke.kind, StrokeKind::kLeftArc);
  const auto right = classifyStrokeBinary(
      mapOf({{4, 2}, {3, 3}, {2, 4}, {1, 3}, {0, 2}}), towards({0, -1}));
  EXPECT_EQ(right.stroke.kind, StrokeKind::kRightArc);
}

TEST(Classifier, LargestComponentWins) {
  // A 5-cell column plus an isolated noise pixel.
  const auto obs = classifyStrokeBinary(
      mapOf({{0, 1}, {1, 1}, {2, 1}, {3, 1}, {4, 1}, {0, 4}}), towards({0, -1}));
  EXPECT_EQ(obs.stroke.kind, StrokeKind::kVLine);
  EXPECT_EQ(obs.cells.size(), 5u);
}

TEST(Classifier, StartEndFollowTravel) {
  const auto obs = classifyStrokeBinary(
      mapOf({{2, 0}, {2, 1}, {2, 2}, {2, 3}, {2, 4}}), towards({1, 0}));
  EXPECT_LT(obs.start_cell.x, obs.end_cell.x);
  const auto rev = classifyStrokeBinary(
      mapOf({{2, 0}, {2, 1}, {2, 2}, {2, 3}, {2, 4}}), towards({-1, 0}));
  EXPECT_GT(rev.start_cell.x, rev.end_cell.x);
}

TEST(Classifier, NoDirectionStillClassifiesShape) {
  const auto obs = classifyStrokeBinary(
      mapOf({{0, 2}, {1, 2}, {2, 2}, {3, 2}, {4, 2}}), {});
  ASSERT_TRUE(obs.valid);
  EXPECT_EQ(obs.stroke.kind, StrokeKind::kVLine);
  EXPECT_LT(obs.confidence, 0.5);  // degraded without RSS ordering
}

TEST(Classifier, ConfidenceHigherWithDirection) {
  const auto with = classifyStrokeBinary(
      mapOf({{2, 0}, {2, 1}, {2, 2}, {2, 3}, {2, 4}}), towards({1, 0}));
  const auto without = classifyStrokeBinary(
      mapOf({{2, 0}, {2, 1}, {2, 2}, {2, 3}, {2, 4}}), {});
  EXPECT_GT(with.confidence, without.confidence);
}

}  // namespace
}  // namespace rfipad::core
