#include "core/direction.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace rfipad::core {
namespace {

/// Builds a window where each listed tag's RSS dips (Gaussian trough) at a
/// given time; other tags stay flat.
reader::SampleStream troughStream(
    const std::vector<std::pair<std::uint32_t, double>>& troughs,
    std::uint32_t num_tags, double depth_db = 8.0, double noise = 0.2,
    std::uint64_t seed = 1) {
  Rng rng(seed);
  reader::SampleStream stream(num_tags);
  for (int j = 0; j < 60; ++j) {
    const double t = j * 0.05;
    for (std::uint32_t i = 0; i < num_tags; ++i) {
      reader::TagReport r;
      r.tag_index = i;
      r.time_s = t + i * 0.001;
      double rssi = -40.0 + rng.normal(0.0, noise);
      for (const auto& [tag, t0] : troughs) {
        if (tag == i) {
          rssi -= depth_db * std::exp(-std::pow((t - t0) / 0.25, 2));
        }
      }
      r.rssi_dbm = rssi;
      r.phase_rad = 1.0;
      stream.push(r);
    }
  }
  return stream;
}

std::vector<Vec2> rowOfTags(int n) {
  std::vector<Vec2> xy;
  for (int i = 0; i < n; ++i) xy.push_back({i * 0.06, 0.0});
  return xy;
}

TEST(Trough, DetectsCleanTrough) {
  const auto stream = troughStream({{0, 1.5}}, 1);
  const auto s = stream.seriesFor(0);
  TroughEstimate te;
  ASSERT_TRUE(estimateTrough(s.times, s.rssi, {}, &te));
  EXPECT_NEAR(te.time_s, 1.5, 0.15);
  EXPECT_GT(te.depth_db, 5.0);
}

TEST(Trough, RejectsFlatSeries) {
  const auto stream = troughStream({}, 1);
  const auto s = stream.seriesFor(0);
  TroughEstimate te;
  EXPECT_FALSE(estimateTrough(s.times, s.rssi, {}, &te));
}

TEST(Trough, RespectsMinSamples) {
  DirectionOptions opt;
  opt.min_samples = 100;
  const auto stream = troughStream({{0, 1.5}}, 1);
  const auto s = stream.seriesFor(0);
  TroughEstimate te;
  EXPECT_FALSE(estimateTrough(s.times, s.rssi, opt, &te));
}

TEST(Trough, SizeMismatchThrows) {
  TroughEstimate te;
  EXPECT_THROW(estimateTrough({1.0, 2.0}, {1.0}, {}, &te),
               std::invalid_argument);
}

TEST(Direction, LeftToRightSweep) {
  // Troughs appear on tags 0→4 in order: travel along +x.
  const auto stream = troughStream(
      {{0, 0.5}, {1, 1.0}, {2, 1.5}, {3, 2.0}, {4, 2.5}}, 5);
  const auto res = estimateDirection(stream, rowOfTags(5), {});
  ASSERT_TRUE(res.valid);
  EXPECT_GT(res.direction.x, 0.9);
  EXPECT_NEAR(res.direction.y, 0.0, 0.3);
  EXPECT_EQ(res.ordered.size(), 5u);
  EXPECT_EQ(res.ordered.front().tag_index, 0u);
  EXPECT_EQ(res.ordered.back().tag_index, 4u);
  EXPECT_GT(res.confidence, 0.9);
}

TEST(Direction, RightToLeftSweep) {
  const auto stream = troughStream(
      {{4, 0.5}, {3, 1.0}, {2, 1.5}, {1, 2.0}, {0, 2.5}}, 5);
  const auto res = estimateDirection(stream, rowOfTags(5), {});
  ASSERT_TRUE(res.valid);
  EXPECT_LT(res.direction.x, -0.9);
}

TEST(Direction, InvalidWithSingleTrough) {
  const auto stream = troughStream({{2, 1.0}}, 5);
  const auto res = estimateDirection(stream, rowOfTags(5), {});
  EXPECT_FALSE(res.valid);
}

TEST(Direction, CandidateRestrictionFiltersTags) {
  const auto stream = troughStream(
      {{0, 0.5}, {1, 1.0}, {2, 1.5}, {3, 2.0}, {4, 2.5}}, 5);
  const auto res = estimateDirection(stream, rowOfTags(5), {0, 1, 2});
  EXPECT_EQ(res.ordered.size(), 3u);
}

TEST(Direction, VerticalSweepAlongY) {
  std::vector<Vec2> col;
  for (int i = 0; i < 5; ++i) col.push_back({0.0, i * 0.06});
  // Troughs from high y to low y: travel −y.
  const auto stream = troughStream(
      {{4, 0.5}, {3, 1.0}, {2, 1.5}, {1, 2.0}, {0, 2.5}}, 5);
  const auto res = estimateDirection(stream, col, {});
  ASSERT_TRUE(res.valid);
  EXPECT_LT(res.direction.y, -0.9);
}

TEST(Direction, ShuffledTimesLowerConfidence) {
  // Troughs in scrambled spatial order → weak correlation.
  const auto stream = troughStream(
      {{2, 0.5}, {0, 1.0}, {4, 1.2}, {1, 2.0}, {3, 2.3}}, 5);
  const auto res = estimateDirection(stream, rowOfTags(5), {});
  const auto ordered_stream = troughStream(
      {{0, 0.5}, {1, 1.0}, {2, 1.5}, {3, 2.0}, {4, 2.5}}, 5);
  const auto ordered_res = estimateDirection(ordered_stream, rowOfTags(5), {});
  EXPECT_LT(res.confidence, ordered_res.confidence);
}

TEST(Direction, AllTroughsOnOneTagInvalid) {
  // Two tags at the same position cannot define an axis.
  const auto stream = troughStream({{0, 1.0}, {1, 2.0}}, 2);
  const std::vector<Vec2> same = {{0.0, 0.0}, {0.0, 0.0}};
  const auto res = estimateDirection(stream, same, {});
  EXPECT_FALSE(res.valid);
}

}  // namespace
}  // namespace rfipad::core
