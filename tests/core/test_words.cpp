#include "core/words.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rfipad::core {
namespace {

WordRecognizer kiosk() {
  return WordRecognizer(
      {"HELLO", "HELP", "EXIT", "PHARMACY", "RADIOLOGY", "LIBRARY", "GATE"});
}

TEST(Words, ExactMatchIsFree) {
  EXPECT_DOUBLE_EQ(WordRecognizer::wordCost("HELLO", "HELLO"), 0.0);
  EXPECT_EQ(kiosk().bestMatch("HELLO"), "HELLO");
}

TEST(Words, AmbiguousPairSubstitutionIsCheap) {
  // D/P, O/S, V/X share stroke sequences — the classic confusions.
  EXPECT_LT(letterConfusionCost('D', 'P'), 0.3);
  EXPECT_LT(letterConfusionCost('S', 'O'), 0.3);
  EXPECT_LT(letterConfusionCost('X', 'V'), 0.3);
  EXPECT_DOUBLE_EQ(letterConfusionCost('A', 'A'), 0.0);
  EXPECT_GE(letterConfusionCost('A', 'U'), 1.0);
}

TEST(Words, SimilarStrokeSequencesAreCheap) {
  // F = |−− is a prefix of E = |−−−.
  EXPECT_LT(letterConfusionCost('F', 'E'), 0.5);
}

TEST(Words, RecoversWordWithOneConfusion) {
  // "HELLS" — O misread as S.
  EXPECT_EQ(kiosk().bestMatch("HELLS"), "HELLO");
  // "EXIT" with V/X confusion.
  EXPECT_EQ(kiosk().bestMatch("EVIT"), "EXIT");
}

TEST(Words, HandlesAbstainedLetters) {
  EXPECT_EQ(kiosk().bestMatch("HE?LO"), "HELLO");
  EXPECT_EQ(kiosk().bestMatch("G?TE"), "GATE");
}

TEST(Words, HandlesMissingAndSpuriousLetters) {
  EXPECT_EQ(kiosk().bestMatch("HLLO"), "HELLO");    // one letter lost
  EXPECT_EQ(kiosk().bestMatch("HELLLO"), "HELLO");  // one spurious event
}

TEST(Words, RejectsGibberish) {
  EXPECT_EQ(kiosk().bestMatch("QQQQQQQ", 0.4), "");
}

TEST(Words, CaseInsensitive) {
  EXPECT_EQ(kiosk().bestMatch("hello"), "HELLO");
  const WordRecognizer lower({"hello"});
  EXPECT_EQ(lower.bestMatch("HELLO"), "HELLO");
}

TEST(Words, EmptyDictionaryThrows) {
  EXPECT_THROW(WordRecognizer({}), std::invalid_argument);
}

TEST(Words, PrefersCloserWord) {
  // "HELPO": HELLO needs one P→L substitution — P=|⊃ and L=|− share their
  // first stroke, so the grammar-aware cost (0.45) beats HELP's deletion
  // of the trailing O (0.7).
  EXPECT_EQ(kiosk().bestMatch("HELPO"), "HELLO");
  // With no shared-stroke affinity the deletion wins: "GATEQ" → GATE.
  EXPECT_EQ(kiosk().bestMatch("GATEQ"), "GATE");
}

}  // namespace
}  // namespace rfipad::core
