// Missing-data recovery stages 2–4 (core/recovery.hpp, DESIGN.md §9):
// observation-confidence plane, spatial inpainting, confidence-weighted
// Otsu / template matching (including cross-SIMD-tier bit identity), and
// the top-K letter / word-lattice decoders.
#include "core/recovery.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/simd_dispatch.hpp"
#include "core/grammar.hpp"
#include "core/templates.hpp"
#include "core/words.hpp"
#include "imgproc/binary_map.hpp"

namespace rfipad::core {
namespace {

constexpr int kRows = 5;
constexpr int kCols = 5;

StaticProfile profileWith(const std::vector<std::uint32_t>& dead,
                          const std::vector<std::uint32_t>& detuned = {}) {
  std::vector<TagProfile> tags(25);
  for (auto& t : tags) {
    t.mean_rssi = -45.0;
    t.samples = 40;
  }
  for (auto i : dead) tags[i].dead = true;
  for (auto i : detuned) tags[i].detuned = true;
  return StaticProfile(std::move(tags));
}

/// `reads_per_tag[i]` real reads for tag i, evenly spaced.
reader::SampleStream windowWithCounts(const std::vector<int>& reads_per_tag) {
  reader::SampleStream s(25);
  for (std::uint32_t tag = 0; tag < reads_per_tag.size(); ++tag) {
    for (int k = 0; k < reads_per_tag[tag]; ++k) {
      reader::TagReport r;
      r.tag_index = tag;
      r.time_s = 0.001 * static_cast<double>(k * 25 + tag);
      r.phase_rad = 1.0;
      r.rssi_dbm = -45.0;
      s.push(r);
    }
  }
  return s;
}

TEST(ObservationConfidence, DeadRowIsExactlyZeroLiveCellsPositive) {
  // Whole top row dead (tags 0..4).
  const auto profile = profileWith({0, 1, 2, 3, 4});
  std::vector<int> counts(25, 20);
  for (int i = 0; i < 5; ++i) counts[static_cast<std::size_t>(i)] = 0;
  const auto conf = observationConfidence(windowWithCounts(counts), profile,
                                          kRows, kCols, ConfidenceOptions{});
  for (int c = 0; c < kCols; ++c) EXPECT_EQ(conf.at(0, c), 0.0) << c;
  for (int r = 1; r < kRows; ++r) {
    for (int c = 0; c < kCols; ++c) {
      EXPECT_GT(conf.at(r, c), 0.0);
      EXPECT_LE(conf.at(r, c), 1.0);
    }
  }
}

TEST(ObservationConfidence, ScalesWithCountAndDiscountsDetuned) {
  ConfidenceOptions opt;
  // Tag 6 detuned, tag 7 starved (2 reads vs median 20).
  const auto profile = profileWith({}, {6});
  std::vector<int> counts(25, 20);
  counts[7] = 2;
  const auto conf = observationConfidence(windowWithCounts(counts), profile,
                                          kRows, kCols, opt);
  // full = max(0.5 * 20, 1) = 10: well-read cells saturate at 1.
  EXPECT_DOUBLE_EQ(conf.at(0, 0), 1.0);
  // Detuned cell: saturated count, then discounted.
  EXPECT_DOUBLE_EQ(conf.at(1, 1), opt.detuned_confidence);
  // Starved cell: 2/10, floored far above min_live_confidence.
  EXPECT_DOUBLE_EQ(conf.at(1, 2), 0.2);
}

TEST(InpaintLowConfidence, DeadColumnRebuiltFromNeighbours) {
  imgproc::GrayMap map(kRows, kCols, 0.0);
  imgproc::GrayMap conf(kRows, kCols, 1.0);
  // Column 2 dead; its cells hold garbage the inpaint must replace.
  for (int r = 0; r < kRows; ++r) {
    for (int c = 0; c < kCols; ++c) map.at(r, c) = (c < 2) ? 1.0 : 5.0;
    map.at(r, 2) = -99.0;
    conf.at(r, 2) = 0.0;
  }
  inpaintLowConfidence(map, conf, SpatialImputeOptions{});
  for (int r = 0; r < kRows; ++r) {
    // Reconstruction is a convex combination of confident neighbours, which
    // straddle the column with values 1 (left) and 5 (right).
    EXPECT_GT(map.at(r, 2), 1.0) << r;
    EXPECT_LT(map.at(r, 2), 5.0) << r;
    // Confident cells untouched.
    EXPECT_DOUBLE_EQ(map.at(r, 0), 1.0);
    EXPECT_DOUBLE_EQ(map.at(r, 4), 5.0);
  }
}

TEST(InpaintLowConfidence, NoConfidentNeighbourLeavesCellAlone) {
  imgproc::GrayMap map(kRows, kCols, 7.0);
  imgproc::GrayMap conf(kRows, kCols, 0.0);  // nobody is confident
  const auto before = map.values();
  inpaintLowConfidence(map, conf, SpatialImputeOptions{});
  EXPECT_EQ(map.values(), before);
}

TEST(WeightedOtsu, UniformWeightsReproduceUnweighted) {
  std::vector<double> values;
  for (int i = 0; i < 25; ++i)
    values.push_back(i < 10 ? 0.1 * i : 2.0 + 0.05 * i);
  const std::vector<double> uniform(values.size(), 0.7);
  EXPECT_DOUBLE_EQ(imgproc::otsuThresholdWeighted(values, uniform),
                   imgproc::otsuThreshold(values));
}

TEST(WeightedOtsu, ZeroWeightsFallBackToUnweighted) {
  const std::vector<double> values = {0.0, 0.1, 0.2, 3.0, 3.1, 3.2};
  const std::vector<double> zeros(values.size(), 0.0);
  EXPECT_DOUBLE_EQ(imgproc::otsuThresholdWeighted(values, zeros),
                   imgproc::otsuThreshold(values));
}

TEST(WeightedOtsu, DownweightedOutlierStopsDrivingTheThreshold) {
  // One huge value observed with near-zero confidence: weighted Otsu should
  // split the reliable mass instead of isolating the outlier.
  std::vector<double> values = {0.0, 0.1, 0.2, 1.0, 1.1, 1.2, 9.0};
  std::vector<double> weights(values.size(), 1.0);
  weights.back() = 1e-6;
  const double unweighted = imgproc::otsuThreshold(values);
  const double weighted = imgproc::otsuThresholdWeighted(values, weights);
  EXPECT_GT(unweighted, 1.2);  // outlier dominates the unweighted split
  EXPECT_LT(weighted, 1.0);    // weighted split separates the two clusters
}

/// A vertical-line activation blob in the given column.
imgproc::GrayMap lineMap(int col) {
  imgproc::GrayMap m(kRows, kCols, 0.05);
  for (int r = 0; r < kRows; ++r) {
    m.at(r, col) = 1.0;
    if (col > 0) m.at(r, col - 1) = 0.3;
    if (col + 1 < kCols) m.at(r, col + 1) = 0.3;
  }
  return m;
}

TEST(WeightedMatch, UniformConfidenceReproducesFusedMatch) {
  const auto& lib = TemplateLibrary::standard5x5();
  const auto act = lineMap(2);
  const imgproc::GrayMap troughs(kRows, kCols, 0.0);
  const imgproc::GrayMap ones(kRows, kCols, 1.0);
  const auto plain = matchTemplateFused(act, troughs, 0.5, lib);
  const auto weighted = matchTemplateFusedWeighted(act, troughs, 0.5, ones, lib);
  ASSERT_TRUE(plain.valid);
  ASSERT_TRUE(weighted.valid);
  EXPECT_EQ(weighted.shape->kind, plain.shape->kind);
  EXPECT_NEAR(weighted.score, plain.score, 1e-9);
  EXPECT_NEAR(weighted.margin, plain.margin, 1e-9);
}

TEST(WeightedMatch, BitIdenticalAcrossSimdTiers) {
  const auto& lib = TemplateLibrary::standard5x5();
  const auto act = lineMap(1);
  auto troughs = lineMap(1);
  imgproc::GrayMap conf(kRows, kCols, 1.0);
  for (int r = 0; r < kRows; ++r) conf.at(r, 3) = 0.1;  // uneven weights

  const auto native = matchTemplateFusedWeighted(act, troughs, 0.4, conf, lib);
  simd::setTierOverrideForTest(simd::Tier::kScalar);
  const auto scalar = matchTemplateFusedWeighted(act, troughs, 0.4, conf, lib);
  simd::clearTierOverrideForTest();

  ASSERT_TRUE(native.valid);
  ASSERT_TRUE(scalar.valid);
  EXPECT_EQ(native.shape, scalar.shape);
  // Bit identity, not approximate equality: the weighted NCC reductions all
  // run through the fixed-shape vk kernels.
  EXPECT_EQ(native.score, scalar.score);
  EXPECT_EQ(native.margin, scalar.margin);
}

TEST(TopKLetters, ExactMatchRanksFirstAndKBounds) {
  const auto& g = LetterGrammar::instance();
  std::vector<ObservedStroke> strokes;
  for (StrokeKind k : g.sequenceFor('T'))
    strokes.push_back(ObservedStroke{k, StrokeDir::kForward, {}, {}, {}});
  const std::vector<double> confident(strokes.size(), 1.0);
  const auto hyps = g.topKLetters(strokes, confident, 4);
  ASSERT_FALSE(hyps.empty());
  EXPECT_LE(hyps.size(), 4u);
  EXPECT_EQ(hyps.front().letter, 'T');
  EXPECT_DOUBLE_EQ(hyps.front().cost, 0.0);
  for (std::size_t i = 1; i < hyps.size(); ++i)
    EXPECT_GE(hyps[i].cost, hyps[i - 1].cost);
}

TEST(TopKLetters, EmptyInputsYieldNothing) {
  const auto& g = LetterGrammar::instance();
  EXPECT_TRUE(g.topKLetters({}, {}, 4).empty());
  std::vector<ObservedStroke> one = {
      ObservedStroke{StrokeKind::kVLine, StrokeDir::kForward, {}, {}, {}}};
  EXPECT_TRUE(g.topKLetters(one, {1.0}, 0).empty());
}

TEST(WordDecode, LatticeRunnerUpRecoversCorruptedLetter) {
  const WordRecognizer dict({"GATE", "GAZE", "HELP"});
  using H = LetterGrammar::LetterHypothesis;
  // Third letter misrecognised as 'Z' but 'T' survives as a runner-up.
  const std::vector<std::vector<H>> lattice = {
      {{'G', 0.0}}, {{'A', 0.0}}, {{'Z', 0.0}, {'T', 0.1}}, {{'E', 0.0}}};
  // A tie-ish lattice: the decoder weighs the small rank penalty of 'T'
  // against the confusion cost of 'Z' vs 'T'; either way a word must win.
  const auto word = dict.decode(lattice);
  EXPECT_TRUE(word == "GATE" || word == "GAZE");
  // With a bigger gap the corrupted reading loses outright.
  const std::vector<std::vector<H>> clear = {
      {{'G', 0.0}}, {{'A', 0.0}}, {{'T', 0.0}}, {{'E', 0.0}}};
  EXPECT_EQ(dict.decode(clear), "GATE");
}

TEST(WordDecode, EmptyPositionActsAsWildcard) {
  const WordRecognizer dict({"GATE", "HELP"});
  using H = LetterGrammar::LetterHypothesis;
  const std::vector<std::vector<H>> lattice = {
      {{'G', 0.0}}, {}, {{'T', 0.0}}, {{'E', 0.0}}};
  EXPECT_EQ(dict.decode(lattice), "GATE");
}

TEST(WordDecode, GarbageLatticeRejected) {
  const WordRecognizer dict({"GATE", "HELP"});
  using H = LetterGrammar::LetterHypothesis;
  // Two confident-but-wrong letters against four-letter words: at least two
  // insertions plus two confusions, far over the 0.8/letter budget.
  const std::vector<std::vector<H>> lattice = {{{'Q', 0.0}}, {{'Q', 0.0}}};
  EXPECT_EQ(dict.decode(lattice), "");
}

TEST(RecoveryConfig, DefaultOffFullOn) {
  EXPECT_FALSE(RecoveryConfig{}.any());
  const auto full = RecoveryConfig::full();
  EXPECT_TRUE(full.temporal.enabled);
  EXPECT_TRUE(full.confidence.enabled);
  EXPECT_TRUE(full.spatial.enabled);
  EXPECT_TRUE(full.decode.enabled);
  EXPECT_TRUE(full.any());
}

}  // namespace
}  // namespace rfipad::core
