#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rfipad::core {
namespace {

TEST(Confusion, AccuracyAndCounts) {
  ConfusionMatrix m(3);
  m.add(0, 0);
  m.add(0, 1);
  m.add(1, 1);
  m.add(2, -1);  // missed
  EXPECT_EQ(m.total(), 4);
  EXPECT_EQ(m.correct(), 2);
  EXPECT_EQ(m.misses(), 1);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.5);
  EXPECT_EQ(m.count(0, 1), 1);
  EXPECT_DOUBLE_EQ(m.classAccuracy(0), 0.5);
  EXPECT_DOUBLE_EQ(m.classAccuracy(1), 1.0);
  EXPECT_DOUBLE_EQ(m.classAccuracy(2), 0.0);
}

TEST(Confusion, Validation) {
  EXPECT_THROW(ConfusionMatrix(0), std::invalid_argument);
  ConfusionMatrix m(2);
  EXPECT_THROW(m.add(-1, 0), std::invalid_argument);
  EXPECT_THROW(m.add(0, 2), std::invalid_argument);
  EXPECT_THROW(m.count(0, -1), std::invalid_argument);
}

TEST(Confusion, EmptyAccuracyZero) {
  ConfusionMatrix m(2);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.0);
}

TEST(Match, PerfectAlignment) {
  const std::vector<Interval> truth = {{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<Interval> det = {{1.05, 1.95}, {3.1, 4.0}};
  std::vector<int> assign;
  const auto c = matchIntervals(truth, det, {}, &assign);
  EXPECT_EQ(c.matched, 2);
  EXPECT_EQ(c.missed, 0);
  EXPECT_EQ(c.false_positives, 0);
  EXPECT_EQ(assign[0], 0);
  EXPECT_EQ(assign[1], 1);
  EXPECT_DOUBLE_EQ(c.fnr(), 0.0);
  EXPECT_DOUBLE_EQ(c.fpr(), 0.0);
}

TEST(Match, MissedTruth) {
  const auto c = matchIntervals({{1.0, 2.0}, {5.0, 6.0}}, {{1.0, 2.0}});
  EXPECT_EQ(c.matched, 1);
  EXPECT_EQ(c.missed, 1);
  EXPECT_DOUBLE_EQ(c.fnr(), 0.5);
}

TEST(Match, FalsePositiveDetection) {
  const auto c = matchIntervals({{1.0, 2.0}}, {{1.0, 2.0}, {8.0, 9.0}});
  EXPECT_EQ(c.false_positives, 1);
  EXPECT_DOUBLE_EQ(c.fpr(), 0.5);
  EXPECT_DOUBLE_EQ(c.insertionRate(), 1.0);
}

TEST(Match, UnderfillDetection) {
  MatchOptions opt;
  opt.coverage_gate = 0.7;
  // Detection covers only half of the truth interval.
  const auto c = matchIntervals({{0.0, 2.0}}, {{0.0, 1.0}}, opt);
  EXPECT_EQ(c.matched, 1);
  EXPECT_EQ(c.underfilled, 1);
  EXPECT_DOUBLE_EQ(c.underfillRate(), 1.0);
}

TEST(Match, FullCoverageNotUnderfilled) {
  const auto c = matchIntervals({{0.0, 2.0}}, {{-0.2, 2.2}});
  EXPECT_EQ(c.underfilled, 0);
}

TEST(Match, OverlapGateRejectsGrazing) {
  MatchOptions opt;
  opt.min_overlap_frac = 0.5;
  // Only 10% of the shorter interval overlaps.
  const auto c = matchIntervals({{0.0, 1.0}}, {{0.9, 1.9}}, opt);
  EXPECT_EQ(c.matched, 0);
  EXPECT_EQ(c.missed, 1);
  EXPECT_EQ(c.false_positives, 1);
}

TEST(Match, EachDetectionUsedOnce) {
  // Two truths, one detection spanning both: only one can claim it.
  const auto c = matchIntervals({{0.0, 1.0}, {1.2, 2.2}}, {{0.0, 2.2}});
  EXPECT_EQ(c.matched, 1);
  EXPECT_EQ(c.missed, 1);
}

TEST(Match, AccumulateCounts) {
  DetectionCounts a;
  a.truths = 2;
  a.matched = 1;
  DetectionCounts b;
  b.truths = 3;
  b.matched = 3;
  a += b;
  EXPECT_EQ(a.truths, 5);
  EXPECT_EQ(a.matched, 4);
}

TEST(Match, EmptyInputs) {
  const auto c = matchIntervals({}, {});
  EXPECT_EQ(c.truths, 0);
  EXPECT_DOUBLE_EQ(c.fnr(), 0.0);
  EXPECT_DOUBLE_EQ(c.fpr(), 0.0);
  EXPECT_DOUBLE_EQ(c.underfillRate(), 0.0);
}

}  // namespace
}  // namespace rfipad::core
