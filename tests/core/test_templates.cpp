#include "core/templates.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rfipad::core {
namespace {

const TemplateLibrary& lib() { return TemplateLibrary::standard5x5(); }

/// Rasterise a synthetic activation image from a set of bright cells.
imgproc::GrayMap imageOf(const std::vector<std::pair<int, int>>& cells,
                         double bright = 1.0, double floor_val = 0.08) {
  imgproc::GrayMap g(5, 5, floor_val);
  for (auto [r, c] : cells) g.at(r, c) = bright;
  return g;
}

TEST(TemplateLibrary, CoversAllKinds) {
  bool seen[8] = {};
  for (const auto& t : lib().templates()) seen[static_cast<int>(t.kind)] = true;
  for (int k = 1; k <= 7; ++k) EXPECT_TRUE(seen[k]) << "kind " << k;
}

TEST(TemplateLibrary, TemplatesAreNormalised) {
  for (std::size_t i = 0; i < 20; ++i) {
    const auto& t = lib().templates()[i * 37 % lib().templates().size()];
    double mean = 0.0, norm2 = 0.0;
    for (double v : t.pixels) mean += v;
    for (double v : t.pixels) norm2 += v * v;
    EXPECT_NEAR(mean / static_cast<double>(t.pixels.size()), 0.0, 1e-9);
    EXPECT_NEAR(norm2, 1.0, 1e-9);
  }
}

TEST(Match, VerticalColumn) {
  const auto m = matchTemplate(
      imageOf({{0, 2}, {1, 2}, {2, 2}, {3, 2}, {4, 2}}), lib());
  ASSERT_TRUE(m.valid);
  EXPECT_EQ(m.shape->kind, StrokeKind::kVLine);
  EXPECT_GT(m.score, 0.7);
}

TEST(Match, HorizontalRow) {
  const auto m = matchTemplate(
      imageOf({{2, 0}, {2, 1}, {2, 2}, {2, 3}, {2, 4}}), lib());
  ASSERT_TRUE(m.valid);
  EXPECT_EQ(m.shape->kind, StrokeKind::kHLine);
}

TEST(Match, Diagonals) {
  const auto slash = matchTemplate(
      imageOf({{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}}), lib());
  EXPECT_EQ(slash.shape->kind, StrokeKind::kSlash);
  const auto back = matchTemplate(
      imageOf({{4, 0}, {3, 1}, {2, 2}, {1, 3}, {0, 4}}), lib());
  EXPECT_EQ(back.shape->kind, StrokeKind::kBackslash);
}

TEST(Match, Arcs) {
  // "⊂": bulges −x; chord on the right.
  const auto left = matchTemplate(
      imageOf({{4, 2}, {3, 1}, {2, 0}, {1, 1}, {0, 2}}), lib());
  EXPECT_EQ(left.shape->kind, StrokeKind::kLeftArc);
  const auto right = matchTemplate(
      imageOf({{4, 2}, {3, 3}, {2, 4}, {1, 3}, {0, 2}}), lib());
  EXPECT_EQ(right.shape->kind, StrokeKind::kRightArc);
}

TEST(Match, Click) {
  const auto m = matchTemplate(
      imageOf({{2, 2}}, 1.0, 0.05), lib());
  ASSERT_TRUE(m.valid);
  EXPECT_EQ(m.shape->kind, StrokeKind::kClick);
}

TEST(Match, OffCenterShapes) {
  // A short column on the left edge.
  const auto m = matchTemplate(imageOf({{1, 0}, {2, 0}, {3, 0}}), lib());
  EXPECT_EQ(m.shape->kind, StrokeKind::kVLine);
  EXPECT_NEAR(m.shape->start.x, 0.0, 0.6);
}

TEST(Match, FlatImageInvalid) {
  imgproc::GrayMap flat(5, 5, 0.3);
  const auto m = matchTemplate(flat, lib());
  EXPECT_FALSE(m.valid);
}

TEST(Match, SizeMismatchThrows) {
  imgproc::GrayMap g(3, 3, 0.0);
  EXPECT_THROW(matchTemplate(g, lib()), std::invalid_argument);
}

TEST(Match, MarginPositiveForCleanShapes) {
  const auto m = matchTemplate(
      imageOf({{0, 2}, {1, 2}, {2, 2}, {3, 2}, {4, 2}}), lib());
  EXPECT_GT(m.margin, 0.0);
}

TEST(MatchFused, TroughImageResolvesAmbiguity) {
  // Activation smeared over two columns; troughs clean on column 2 only.
  imgproc::GrayMap act(5, 5, 0.1);
  for (int r = 0; r < 5; ++r) {
    act.at(r, 2) = 0.8;
    act.at(r, 3) = 0.7;
  }
  imgproc::GrayMap troughs(5, 5, 0.0);
  for (int r = 0; r < 5; ++r) troughs.at(r, 2) = 8.0;
  const auto m = matchTemplateFused(act, troughs, 0.5, lib());
  ASSERT_TRUE(m.valid);
  EXPECT_EQ(m.shape->kind, StrokeKind::kVLine);
  EXPECT_NEAR(m.shape->start.x, 2.0, 0.6);
}

TEST(MatchFused, FallsBackWhenOneImageFlat) {
  imgproc::GrayMap act = imageOf({{2, 0}, {2, 1}, {2, 2}, {2, 3}, {2, 4}});
  imgproc::GrayMap flat(5, 5, 0.0);
  const auto m = matchTemplateFused(act, flat, 0.5, lib());
  ASSERT_TRUE(m.valid);
  EXPECT_EQ(m.shape->kind, StrokeKind::kHLine);
}

TEST(ResolveTravel, ForwardAndReverse) {
  // Use a full-height vertical template; canonical travel is top→bottom.
  const StrokeTemplate* vline = nullptr;
  for (const auto& t : lib().templates()) {
    if (t.kind == StrokeKind::kVLine && std::abs(t.start.x - 2.0) < 0.01 &&
        t.start.y == 4.0 && t.end.y == 0.0) {
      vline = &t;
      break;
    }
  }
  ASSERT_NE(vline, nullptr);

  // Troughs visiting rows 4→0 (tag index = row*5 + 2).
  std::vector<TroughEstimate> down = {{22, 0.5, 8}, {17, 1.0, 9},
                                      {12, 1.5, 8}, {7, 2.0, 9}, {2, 2.5, 8}};
  StrokeDir dir;
  const double conf = resolveTravel(*vline, down, 5, &dir);
  EXPECT_GT(conf, 0.9);
  EXPECT_EQ(dir, StrokeDir::kForward);

  std::vector<TroughEstimate> up = {{2, 0.5, 8}, {7, 1.0, 9},
                                    {12, 1.5, 8}, {17, 2.0, 9}, {22, 2.5, 8}};
  const double conf2 = resolveTravel(*vline, up, 5, &dir);
  EXPECT_GT(conf2, 0.9);
  EXPECT_EQ(dir, StrokeDir::kReverse);
}

TEST(ResolveTravel, ShallowOutliersIgnored) {
  const StrokeTemplate* hline = nullptr;
  for (const auto& t : lib().templates()) {
    if (t.kind == StrokeKind::kHLine && std::abs(t.start.y - 2.0) < 0.01 &&
        t.start.x == 0.0 && t.end.x == 4.0) {
      hline = &t;
      break;
    }
  }
  ASSERT_NE(hline, nullptr);
  // Deep troughs left→right plus shallow anti-ordered outliers.
  std::vector<TroughEstimate> troughs = {
      {10, 1.0, 10}, {11, 1.4, 11}, {12, 1.8, 10}, {13, 2.2, 11}, {14, 2.6, 12},
      {14, 0.5, 2.0}, {10, 3.0, 2.0}};  // outliers (shallow)
  StrokeDir dir;
  const double conf = resolveTravel(*hline, troughs, 5, &dir);
  EXPECT_EQ(dir, StrokeDir::kForward);
  EXPECT_GT(conf, 0.8);
}

TEST(ResolveTravel, TooFewTroughsNeutral) {
  const auto& t = lib().templates().front();
  StrokeDir dir = StrokeDir::kReverse;
  EXPECT_DOUBLE_EQ(resolveTravel(t, {}, 5, &dir), 0.0);
  EXPECT_EQ(dir, StrokeDir::kForward);
}

}  // namespace
}  // namespace rfipad::core
