#include "core/activation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/angles.hpp"
#include "common/rng.hpp"

namespace rfipad::core {
namespace {

/// Builds a stream where tag 0 carries a moving-phase signal and the rest
/// only noise; per-tag noise levels vary to exercise the weighting.
struct SyntheticWindow {
  reader::SampleStream stream{4};
  StaticProfile profile;

  explicit SyntheticWindow(double signal_amp = 1.2, std::uint64_t seed = 3) {
    Rng rng(seed);
    std::vector<TagProfile> tags(4);
    const double noise[4] = {0.03, 0.03, 0.09, 0.03};
    for (int i = 0; i < 4; ++i) {
      tags[i].mean_phase = 1.0 + i;
      tags[i].deviation_bias = noise[i];
      tags[i].samples = 100;
    }
    profile = StaticProfile(std::move(tags));
    for (int j = 0; j < 40; ++j) {
      const double t = j * 0.025;
      for (std::uint32_t i = 0; i < 4; ++i) {
        reader::TagReport r;
        r.tag_index = i;
        r.time_s = t + i * 0.004;
        double phase = 1.0 + i + rng.normal(0.0, noise[i]);
        if (i == 0) phase += signal_amp * std::sin(kTwoPi * 1.2 * t);
        r.phase_rad = wrapTwoPi(phase);
        r.rssi_dbm = -40.0;
        stream.push(r);
      }
    }
  }
};

TEST(Activation, SignalTagDominates) {
  SyntheticWindow w;
  const auto act = activationMap(w.stream, w.profile);
  EXPECT_GT(act[0], act[1]);
  EXPECT_GT(act[0], act[2]);
  EXPECT_GT(act[0], act[3]);
}

TEST(Activation, SuppressionFlattensNoisyTag) {
  SyntheticWindow w;
  ActivationOptions with;
  ActivationOptions without;
  without.diversity_suppression = false;
  const auto a = activationMap(w.stream, w.profile, with);
  const auto b = activationMap(w.stream, w.profile, without);
  // Tag 2 is 3× noisier than tags 1/3; suppression knocks its activation
  // down (noise-floor subtraction + bias weighting) while the true signal
  // tag keeps a healthy margin over it.
  EXPECT_LT(a[2], b[2]);
  EXPECT_GT(a[0], 1.5 * a[2]);
}

TEST(Activation, UnwrapPreventsSeamArtifacts) {
  // A tag whose static centre sits right at the 0/2π seam.
  Rng rng(5);
  reader::SampleStream stream(1);
  std::vector<TagProfile> tags(1);
  tags[0].mean_phase = 0.0;
  tags[0].deviation_bias = 0.02;
  StaticProfile profile(std::move(tags));
  for (int j = 0; j < 50; ++j) {
    reader::TagReport r;
    r.tag_index = 0;
    r.time_s = j * 0.02;
    r.phase_rad = wrapTwoPi(rng.normal(0.0, 0.02));
    stream.push(r);
  }
  ActivationOptions opt;
  const auto act = activationMap(stream, profile, opt);
  // Near-constant phase at the seam → tiny activation, not 2π jumps.
  EXPECT_LT(act[0], 0.3);
}

TEST(Activation, MinSamplesGate) {
  SyntheticWindow w;
  ActivationOptions opt;
  opt.min_samples = 1000;  // nobody qualifies
  const auto act = activationMap(w.stream, w.profile, opt);
  for (double a : act) EXPECT_DOUBLE_EQ(a, 0.0);
}

TEST(Activation, ImageShapeMatchesGrid) {
  SyntheticWindow w;
  const auto img = activationImage(w.stream, w.profile, 2, 2);
  EXPECT_EQ(img.rows(), 2);
  EXPECT_EQ(img.cols(), 2);
  EXPECT_THROW(activationImage(w.stream, w.profile, 3, 3),
               std::invalid_argument);
}

TEST(Activation, SqrtCompressionShrinksRatios) {
  SyntheticWindow w;
  ActivationOptions plain;
  plain.sqrt_compress = false;
  ActivationOptions compressed;
  compressed.sqrt_compress = true;
  const auto a = activationMap(w.stream, w.profile, plain);
  const auto b = activationMap(w.stream, w.profile, compressed);
  EXPECT_NEAR(b[0], std::sqrt(a[0]), 1e-9);
}

TEST(Activation, EdgeTaperReducesEdgeContribution) {
  // A burst confined to the window edge contributes less when tapered.
  Rng rng(9);
  reader::SampleStream stream(1);
  std::vector<TagProfile> tags(1);
  tags[0].mean_phase = 0.0;
  tags[0].deviation_bias = 0.01;
  StaticProfile profile(std::move(tags));
  for (int j = 0; j < 60; ++j) {
    reader::TagReport r;
    r.tag_index = 0;
    r.time_s = j * 0.02;
    // Big swings only in the first 15% of the window.
    r.phase_rad = wrapTwoPi(j < 9 ? rng.uniform(0.0, 2.0) : 0.5);
    stream.push(r);
  }
  ActivationOptions no_taper;
  no_taper.edge_taper = 0.0;
  ActivationOptions taper;
  taper.edge_taper = 0.3;
  const auto a = activationMap(stream, profile, no_taper);
  const auto b = activationMap(stream, profile, taper);
  EXPECT_LT(b[0], a[0]);
}

TEST(Activation, CalibratedPhasesCentredOnZero) {
  const std::vector<double> phases = {1.1, 1.2, 1.0, 1.15};
  const auto theta = calibratedPhases(phases, 1.1, true);
  for (double t : theta) EXPECT_LT(std::abs(t), 0.2);
}

TEST(Activation, RejectsEmptyProfile) {
  reader::SampleStream s;
  StaticProfile empty;
  EXPECT_THROW(activationMap(s, empty), std::invalid_argument);
}

}  // namespace
}  // namespace rfipad::core
