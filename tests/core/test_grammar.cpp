#include "core/grammar.hpp"

#include <gtest/gtest.h>

#include "sim/letters.hpp"

namespace rfipad::core {
namespace {

const LetterGrammar& grammar() { return LetterGrammar::instance(); }

ObservedStroke obs(StrokeKind kind, Vec2 start = {}, Vec2 end = {},
                   Vec2 centroid = {}) {
  return ObservedStroke{kind, StrokeDir::kForward, start, end, centroid};
}

TEST(Grammar, SequencesMatchSimulatorPlans) {
  // The recogniser's grammar and the workload generator's letter table must
  // agree stroke-for-stroke.
  for (char c = 'A'; c <= 'Z'; ++c) {
    EXPECT_EQ(grammar().sequenceFor(c), sim::letterStrokeKinds(c)) << c;
  }
}

TEST(Grammar, GroupSizesMatchPaper) {
  // Fig. 23 groups: 2 / 9 / 12 / 3 letters with 1..4 strokes.
  int counts[5] = {};
  for (char c = 'A'; c <= 'Z'; ++c) {
    counts[grammar().sequenceFor(c).size()]++;
  }
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 9);
  EXPECT_EQ(counts[3], 12);
  EXPECT_EQ(counts[4], 3);
}

TEST(Grammar, UnambiguousLettersRecognized) {
  // Letters whose stroke sequence is unique resolve directly.
  for (char c : {'H', 'L', 'T', 'Z', 'E', 'C', 'I', 'M', 'W', 'K'}) {
    std::vector<ObservedStroke> strokes;
    for (StrokeKind k : grammar().sequenceFor(c)) strokes.push_back(obs(k));
    EXPECT_EQ(grammar().recognize(strokes), c) << c;
  }
}

TEST(Grammar, CandidatesForAmbiguousPairs) {
  EXPECT_EQ(grammar().candidates({StrokeKind::kVLine, StrokeKind::kRightArc}),
            (std::vector<char>{'D', 'P'}));
  EXPECT_EQ(grammar().candidates({StrokeKind::kLeftArc, StrokeKind::kRightArc}),
            (std::vector<char>{'O', 'S'}));
  EXPECT_EQ(grammar().candidates({StrokeKind::kBackslash, StrokeKind::kSlash}),
            (std::vector<char>{'V', 'X'}));
}

TEST(Grammar, NoCandidatesForGibberish) {
  EXPECT_TRUE(grammar().candidates({StrokeKind::kClick}).empty());
  EXPECT_EQ(grammar().recognize({obs(StrokeKind::kClick)}), '\0');
}

TEST(Grammar, DisambiguatesDvsP) {
  // D: the bowl's lower end meets the bar's bottom.
  std::vector<ObservedStroke> d = {
      obs(StrokeKind::kVLine, {0, 4}, {0, 0}),
      obs(StrokeKind::kRightArc, {0, 4}, {0, 0}, {1, 2})};
  EXPECT_EQ(grammar().recognize(d), 'D');
  // P: the bowl ends mid-height.
  std::vector<ObservedStroke> p = {
      obs(StrokeKind::kVLine, {0, 4}, {0, 0}),
      obs(StrokeKind::kRightArc, {0, 4}, {0, 2}, {1, 3})};
  EXPECT_EQ(grammar().recognize(p), 'P');
}

TEST(Grammar, DisambiguatesOvsS) {
  // O: both arcs span the same rows (centroids at the same height).
  std::vector<ObservedStroke> o = {
      obs(StrokeKind::kLeftArc, {2, 4}, {2, 0}, {1, 2}),
      obs(StrokeKind::kRightArc, {2, 4}, {2, 0}, {3, 2})};
  EXPECT_EQ(grammar().recognize(o), 'O');
  // S: "⊂" on top, "⊃" below.
  std::vector<ObservedStroke> s = {
      obs(StrokeKind::kLeftArc, {3, 4}, {3, 2}, {2, 3}),
      obs(StrokeKind::kRightArc, {1, 2}, {1, 0}, {2, 1})};
  EXPECT_EQ(grammar().recognize(s), 'S');
}

TEST(Grammar, DisambiguatesVvsX) {
  // V: strokes meet at the bottom (no interior crossing).
  std::vector<ObservedStroke> v = {
      obs(StrokeKind::kBackslash, {0, 4}, {2, 0}),
      obs(StrokeKind::kSlash, {2, 0}, {4, 4})};
  EXPECT_EQ(grammar().recognize(v), 'V');
  // X: strokes cross at the centre.
  std::vector<ObservedStroke> x = {
      obs(StrokeKind::kBackslash, {0, 4}, {4, 0}),
      obs(StrokeKind::kSlash, {0, 0}, {4, 4})};
  EXPECT_EQ(grammar().recognize(x), 'X');
}

TEST(Grammar, VvsXDirectionAgnostic) {
  // Same X with the second stroke's endpoints swapped (flipped travel
  // estimate) still crosses → still X.
  std::vector<ObservedStroke> x = {
      obs(StrokeKind::kBackslash, {0, 4}, {4, 0}),
      obs(StrokeKind::kSlash, {4, 4}, {0, 0})};
  EXPECT_EQ(grammar().recognize(x), 'X');
}

TEST(Grammar, AlphabetComplete) {
  EXPECT_EQ(LetterGrammar::alphabet().size(), 26u);
  EXPECT_THROW(grammar().sequenceFor('a'), std::invalid_argument);
  EXPECT_THROW(grammar().sequenceFor('1'), std::invalid_argument);
}

TEST(Grammar, EveryLetterReachableFromItsOwnSequence) {
  // With neutral positions, every letter resolves to itself or, for the
  // three ambiguous pairs, to a member of the pair.
  for (char c = 'A'; c <= 'Z'; ++c) {
    std::vector<ObservedStroke> strokes;
    for (StrokeKind k : grammar().sequenceFor(c)) strokes.push_back(obs(k));
    const char got = grammar().recognize(strokes);
    if (c == 'D' || c == 'P') {
      EXPECT_TRUE(got == 'D' || got == 'P') << c;
    } else if (c == 'O' || c == 'S') {
      EXPECT_TRUE(got == 'O' || got == 'S') << c;
    } else if (c == 'V' || c == 'X') {
      EXPECT_TRUE(got == 'V' || got == 'X') << c;
    } else {
      EXPECT_EQ(got, c) << c;
    }
  }
}

TEST(GrammarRobust, ExactSequenceZeroCost) {
  std::vector<ObservedStroke> h;
  for (StrokeKind k : grammar().sequenceFor('H')) h.push_back(obs(k));
  EXPECT_DOUBLE_EQ(
      grammar().alignmentCost(h, std::vector<double>(h.size(), 1.0), 'H'),
      0.0);
}

TEST(GrammarRobust, ToleratesOneSubstitution) {
  // K = | / \ observed with the "/" degraded into "|" (steep leg).
  std::vector<ObservedStroke> k = {obs(StrokeKind::kVLine),
                                   obs(StrokeKind::kVLine),
                                   obs(StrokeKind::kBackslash)};
  const char c = grammar().recognizeRobust(k, {0.9, 0.3, 0.9});
  EXPECT_EQ(c, 'K');
}

TEST(GrammarRobust, ToleratesSpuriousStroke) {
  // H with an extra low-confidence click between strokes.
  std::vector<ObservedStroke> h = {obs(StrokeKind::kVLine),
                                   obs(StrokeKind::kClick),
                                   obs(StrokeKind::kHLine),
                                   obs(StrokeKind::kVLine)};
  EXPECT_EQ(grammar().recognizeRobust(h, {0.9, 0.1, 0.9, 0.9}), 'H');
}

TEST(GrammarRobust, ToleratesMissingStroke) {
  // E = |−−− with one "−" lost by segmentation.
  std::vector<ObservedStroke> e = {obs(StrokeKind::kVLine),
                                   obs(StrokeKind::kHLine),
                                   obs(StrokeKind::kHLine)};
  // With exact-match priority this is F (a real letter); that is the
  // intended behaviour — prefixes resolve to their own letter.
  EXPECT_EQ(grammar().recognizeRobust(e, {0.9, 0.9, 0.9}), 'F');
}

TEST(GrammarRobust, RejectsHopelessInput) {
  std::vector<ObservedStroke> junk(8, obs(StrokeKind::kClick));
  EXPECT_EQ(grammar().recognizeRobust(junk, std::vector<double>(8, 1.0), 0.5),
            '\0');
}

TEST(GrammarRobust, CostLowerForCloserLetter) {
  std::vector<ObservedStroke> almost_h = {obs(StrokeKind::kVLine),
                                          obs(StrokeKind::kHLine),
                                          obs(StrokeKind::kSlash)};
  const std::vector<double> conf = {0.9, 0.9, 0.4};
  EXPECT_LT(grammar().alignmentCost(almost_h, conf, 'H'),
            grammar().alignmentCost(almost_h, conf, 'O'));
}

}  // namespace
}  // namespace rfipad::core
