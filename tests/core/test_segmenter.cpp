#include "core/segmenter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/angles.hpp"
#include "common/rng.hpp"

namespace rfipad::core {
namespace {

/// Stream with quiet noise except during [burst0, burst1] windows, where
/// one tag swings hard (as when the hand writes over it).
reader::SampleStream syntheticStream(
    const std::vector<std::pair<double, double>>& bursts, double duration,
    std::uint64_t seed = 1, int tags = 9) {
  Rng rng(seed);
  reader::SampleStream stream(static_cast<std::uint32_t>(tags));
  // ~25 reads/s per tag, matching a Gen2 reader sharing its slots.
  const double dt = 0.04;
  for (double t = 0.0; t < duration; t += dt) {
    for (int i = 0; i < tags; ++i) {
      reader::TagReport r;
      r.tag_index = static_cast<std::uint32_t>(i);
      r.time_s = t + i * dt / tags;
      double phase = 1.0 + 0.3 * i + rng.normal(0.0, 0.03);
      for (const auto& [b0, b1] : bursts) {
        if (t >= b0 && t <= b1 && (i == 4 || i == 5)) {
          phase += 2.5 * std::sin(kTwoPi * 2.0 * (t - b0) + 0.7 * i);
        }
      }
      r.phase_rad = wrapTwoPi(phase);
      r.rssi_dbm = -40.0;
      stream.push(r);
    }
  }
  return stream;
}

StaticProfile neutralProfile(int tags = 9) {
  std::vector<TagProfile> p(tags);
  for (int i = 0; i < tags; ++i) {
    p[static_cast<std::size_t>(i)].mean_phase = 1.0 + 0.3 * i;
    p[static_cast<std::size_t>(i)].deviation_bias = 0.03;
    p[static_cast<std::size_t>(i)].samples = 100;
  }
  return StaticProfile(std::move(p));
}

TEST(Segmenter, QuietStreamYieldsNothing) {
  const Segmenter seg(neutralProfile(), {});
  const auto ivs = seg.segment(syntheticStream({}, 4.0));
  EXPECT_TRUE(ivs.empty());
}

TEST(Segmenter, SingleBurstDetected) {
  const Segmenter seg(neutralProfile(), {});
  const auto ivs = seg.segment(syntheticStream({{1.5, 2.5}}, 4.0));
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_NEAR(ivs[0].t0, 1.5, 0.4);
  EXPECT_NEAR(ivs[0].t1, 2.5, 0.5);
}

TEST(Segmenter, TwoBurstsSeparated) {
  const Segmenter seg(neutralProfile(), {});
  const auto ivs = seg.segment(syntheticStream({{1.0, 1.8}, {3.0, 3.8}}, 5.0));
  ASSERT_EQ(ivs.size(), 2u);
  EXPECT_LT(ivs[0].t1, ivs[1].t0);
}

TEST(Segmenter, ShortBlipFilteredByMinStroke) {
  SegmenterOptions opt;
  opt.min_stroke_s = 1.5;  // longer than any blip-induced interval
  const Segmenter seg(neutralProfile(), opt);
  const auto ivs = seg.segment(syntheticStream({{2.0, 2.25}}, 4.0));
  EXPECT_TRUE(ivs.empty());
}

TEST(Segmenter, TraceShapesConsistent) {
  const Segmenter seg(neutralProfile(), {});
  const auto tr = seg.trace(syntheticStream({{1.0, 2.0}}, 3.0));
  EXPECT_EQ(tr.frame_times.size(), tr.frame_rms.size());
  EXPECT_EQ(tr.window_times.size(), tr.window_std.size());
  EXPECT_EQ(tr.window_times.size(), tr.window_peak.size());
  EXPECT_GT(tr.threshold_used, 0.0);
  // Window count = frames − window_frames + 1.
  EXPECT_EQ(tr.window_times.size(),
            tr.frame_times.size() - 5 + 1);
}

TEST(Segmenter, StdHigherDuringBurst) {
  const Segmenter seg(neutralProfile(), {});
  const auto tr = seg.trace(syntheticStream({{1.0, 2.0}}, 3.0));
  double in_burst = 0.0, quiet = 0.0;
  int n_in = 0, n_q = 0;
  for (std::size_t i = 0; i < tr.window_std.size(); ++i) {
    if (tr.window_times[i] > 1.1 && tr.window_times[i] < 1.9) {
      in_burst += tr.window_std[i];
      ++n_in;
    } else if (tr.window_times[i] < 0.7 || tr.window_times[i] > 2.4) {
      quiet += tr.window_std[i];
      ++n_q;
    }
  }
  EXPECT_GT(in_burst / n_in, 3.0 * quiet / std::max(n_q, 1));
}

TEST(Segmenter, EmptyStreamSafe) {
  const Segmenter seg(neutralProfile(), {});
  EXPECT_TRUE(seg.segment(reader::SampleStream{}).empty());
  const auto tr = seg.trace(reader::SampleStream{});
  EXPECT_TRUE(tr.frame_rms.empty());
}

TEST(Segmenter, Validation) {
  SegmenterOptions bad;
  bad.frame_s = 0.0;
  EXPECT_THROW(Segmenter(neutralProfile(), bad), std::invalid_argument);
  bad = SegmenterOptions{};
  bad.window_frames = 1;
  EXPECT_THROW(Segmenter(neutralProfile(), bad), std::invalid_argument);
}

TEST(Segmenter, AdaptiveThresholdOnQuietCapture) {
  SegmenterOptions opt;
  opt.threshold = -1.0;  // adaptive
  const Segmenter seg(neutralProfile(), opt);
  const auto tr = seg.trace(syntheticStream({}, 4.0));
  EXPECT_GE(tr.threshold_used, opt.adaptive_floor);
}

TEST(Segmenter, MergeGapJoinsAdjacentBursts) {
  SegmenterOptions opt;
  opt.merge_gap_s = 1.0;  // aggressive merging
  const Segmenter seg(neutralProfile(), opt);
  const auto ivs = seg.segment(syntheticStream({{1.0, 1.6}, {2.2, 2.8}}, 4.0));
  EXPECT_EQ(ivs.size(), 1u);
}

TEST(Segmenter, IntervalDurationHelper) {
  const Interval iv{1.5, 2.75};
  EXPECT_DOUBLE_EQ(iv.duration(), 1.25);
}

TEST(Segmenter, ScratchVariantsMatchConvenienceApi) {
  // segmentWith()/traceInto() with one reused scratch must be bit-identical
  // to segment()/trace(), including when the scratch hops between streams
  // of different shapes (as it does across co-resident serving sessions).
  const Segmenter seg(neutralProfile(), {});
  const auto one = syntheticStream({{1.0, 1.8}}, 4.0);
  const auto two = syntheticStream({{0.5, 1.2}, {2.2, 3.0}}, 5.0, 2);
  const auto quiet = syntheticStream({}, 2.0, 3);

  SegmentScratch scratch;
  for (const auto* stream : {&one, &two, &quiet, &one}) {
    const auto expected = seg.segment(*stream);
    const auto& got = seg.segmentWith(*stream, scratch);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_DOUBLE_EQ(got[i].t0, expected[i].t0);
      EXPECT_DOUBLE_EQ(got[i].t1, expected[i].t1);
    }
    const auto expected_trace = seg.trace(*stream);
    const auto& got_trace = seg.traceInto(*stream, scratch);
    EXPECT_EQ(got_trace.frame_times, expected_trace.frame_times);
    EXPECT_EQ(got_trace.frame_rms, expected_trace.frame_rms);
    EXPECT_EQ(got_trace.window_times, expected_trace.window_times);
    EXPECT_EQ(got_trace.window_std, expected_trace.window_std);
    EXPECT_EQ(got_trace.window_peak, expected_trace.window_peak);
    EXPECT_DOUBLE_EQ(got_trace.threshold_used, expected_trace.threshold_used);
  }
}

}  // namespace
}  // namespace rfipad::core
