#include "core/online.hpp"

#include <gtest/gtest.h>

#include "sim/letters.hpp"
#include "sim/scenario.hpp"

namespace rfipad::core {
namespace {

struct Rig {
  sim::Scenario scenario;
  StaticProfile profile;
  OnlineOptions options;

  explicit Rig(std::uint64_t seed = 51)
      : scenario([&] {
          sim::ScenarioConfig cfg;
          cfg.seed = seed;
          return cfg;
        }()),
        profile(StaticProfile::calibrate(scenario.captureStatic(5.0), 25)) {
    options.engine.rows = 5;
    options.engine.cols = 5;
    for (const auto& t : scenario.array().tags())
      options.engine.tag_xy.push_back({t.position.x, t.position.y});
  }

  sim::Capture write(const std::vector<sim::StrokePlan>& plans) {
    sim::TrajectoryBuilder b(sim::defaultUser(1), scenario.forkRng(3));
    b.hold(0.5);
    for (const auto& p : plans) b.stroke(p);
    b.retract().hold(0.6);
    return scenario.capture(b.build(), sim::defaultUser(1));
  }
};

TEST(Online, EmitsStrokeShortlyAfterItEnds) {
  Rig rig;
  OnlineRecognizer rec(rig.profile, rig.options);
  std::vector<double> emit_times;
  rec.onStroke([&](const StrokeEvent& ev) {
    emit_times.push_back(ev.interval.t1);
  });

  const auto cap = rig.write(
      {sim::canonicalPlan({StrokeKind::kVLine, StrokeDir::kForward}, 0.1)});
  double last_pushed = 0.0;
  double emitted_at_push_time = -1.0;
  for (const auto& r : cap.stream.reports()) {
    rec.push(r);
    last_pushed = r.time_s;
    if (!emit_times.empty() && emitted_at_push_time < 0.0) {
      emitted_at_push_time = last_pushed;
    }
  }
  rec.flush();
  ASSERT_FALSE(emit_times.empty());
  // The stroke was reported online — before the input stream ended, within
  // ~1 s of the window closing (the paper's online property).
  if (emitted_at_push_time > 0.0) {
    EXPECT_LT(emitted_at_push_time - emit_times.front(), 1.2);
  }
}

TEST(Online, MatchesBatchRecognitionForSingleStroke) {
  Rig rig;
  const auto cap = rig.write(
      {sim::canonicalPlan({StrokeKind::kHLine, StrokeDir::kForward}, 0.1)});

  OnlineRecognizer rec(rig.profile, rig.options);
  for (const auto& r : cap.stream.reports()) rec.push(r);
  rec.flush();
  ASSERT_EQ(rec.strokes().size(), 1u);
  EXPECT_EQ(rec.strokes()[0].observation.stroke.kind, StrokeKind::kHLine);

  const RecognitionEngine batch(rig.profile, rig.options.engine);
  const auto batch_events = batch.detectStrokes(cap.stream);
  ASSERT_EQ(batch_events.size(), 1u);
  EXPECT_EQ(batch_events[0].observation.stroke.kind,
            rec.strokes()[0].observation.stroke.kind);
}

TEST(Online, ComposesLetterAfterQuietGap) {
  Rig rig(57);
  OnlineRecognizer rec(rig.profile, rig.options);
  char letter = '\0';
  std::size_t letter_strokes = 0;
  rec.onLetter([&](char c, const std::vector<StrokeEvent>& evs) {
    letter = c;
    letter_strokes = evs.size();
  });

  const auto cap = rig.write(sim::letterPlans('L', 0.12, 0.114));
  for (const auto& r : cap.stream.reports()) rec.push(r);
  rec.flush();
  EXPECT_EQ(letter, 'L');
  // Two real strokes; an occasional transition residue may ride along (the
  // robust decoder discounts it).
  EXPECT_GE(letter_strokes, 2u);
  EXPECT_LE(letter_strokes, 3u);
}

TEST(Online, QuietStreamEmitsNothing) {
  Rig rig(58);
  OnlineRecognizer rec(rig.profile, rig.options);
  int strokes = 0, letters = 0;
  rec.onStroke([&](const StrokeEvent&) { ++strokes; });
  rec.onLetter([&](char, const std::vector<StrokeEvent>&) { ++letters; });
  const auto quiet = rig.scenario.captureStatic(3.0);
  for (const auto& r : quiet.reports()) rec.push(r);
  rec.flush();
  EXPECT_EQ(strokes, 0);
  EXPECT_EQ(letters, 0);
}

TEST(Online, NoDuplicateEmission) {
  Rig rig(59);
  OnlineRecognizer rec(rig.profile, rig.options);
  const auto cap = rig.write(
      {sim::canonicalPlan({StrokeKind::kSlash, StrokeDir::kForward}, 0.1)});
  for (const auto& r : cap.stream.reports()) rec.push(r);
  rec.flush();
  rec.flush();  // idempotent
  EXPECT_EQ(rec.strokes().size(), 1u);
}

TEST(Online, TwoStrokesTwoEvents) {
  Rig rig(60);
  OnlineRecognizer rec(rig.profile, rig.options);
  const auto cap = rig.write(
      {sim::canonicalPlan({StrokeKind::kVLine, StrokeDir::kForward}, 0.09),
       sim::canonicalPlan({StrokeKind::kHLine, StrokeDir::kForward}, 0.09)});
  for (const auto& r : cap.stream.reports()) rec.push(r);
  rec.flush();
  EXPECT_EQ(rec.strokes().size(), 2u);
}

}  // namespace
}  // namespace rfipad::core
