#include "core/online.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "sim/letters.hpp"
#include "sim/scenario.hpp"

namespace rfipad::core {
namespace {

struct Rig {
  sim::Scenario scenario;
  StaticProfile profile;
  OnlineOptions options;

  explicit Rig(std::uint64_t seed = 51)
      : scenario([&] {
          sim::ScenarioConfig cfg;
          cfg.seed = seed;
          return cfg;
        }()),
        profile(StaticProfile::calibrate(scenario.captureStatic(5.0), 25)) {
    options.engine.rows = 5;
    options.engine.cols = 5;
    for (const auto& t : scenario.array().tags())
      options.engine.tag_xy.push_back({t.position.x, t.position.y});
  }

  sim::Capture write(const std::vector<sim::StrokePlan>& plans) {
    sim::TrajectoryBuilder b(sim::defaultUser(1), scenario.forkRng(3));
    b.hold(0.5);
    for (const auto& p : plans) b.stroke(p);
    b.retract().hold(0.6);
    return scenario.capture(b.build(), sim::defaultUser(1));
  }
};

TEST(Online, EmitsStrokeShortlyAfterItEnds) {
  Rig rig;
  OnlineRecognizer rec(rig.profile, rig.options);
  std::vector<double> emit_times;
  rec.onStroke([&](const StrokeEvent& ev) {
    emit_times.push_back(ev.interval.t1);
  });

  const auto cap = rig.write(
      {sim::canonicalPlan({StrokeKind::kVLine, StrokeDir::kForward}, 0.1)});
  double last_pushed = 0.0;
  double emitted_at_push_time = -1.0;
  for (const auto& r : cap.stream.reports()) {
    rec.push(r);
    last_pushed = r.time_s;
    if (!emit_times.empty() && emitted_at_push_time < 0.0) {
      emitted_at_push_time = last_pushed;
    }
  }
  rec.flush();
  ASSERT_FALSE(emit_times.empty());
  // The stroke was reported online — before the input stream ended, within
  // ~1 s of the window closing (the paper's online property).
  if (emitted_at_push_time > 0.0) {
    EXPECT_LT(emitted_at_push_time - emit_times.front(), 1.2);
  }
}

TEST(Online, MatchesBatchRecognitionForSingleStroke) {
  Rig rig;
  const auto cap = rig.write(
      {sim::canonicalPlan({StrokeKind::kHLine, StrokeDir::kForward}, 0.1)});

  OnlineRecognizer rec(rig.profile, rig.options);
  for (const auto& r : cap.stream.reports()) rec.push(r);
  rec.flush();
  ASSERT_EQ(rec.strokes().size(), 1u);
  EXPECT_EQ(rec.strokes()[0].observation.stroke.kind, StrokeKind::kHLine);

  const RecognitionEngine batch(rig.profile, rig.options.engine);
  const auto batch_events = batch.detectStrokes(cap.stream);
  ASSERT_EQ(batch_events.size(), 1u);
  EXPECT_EQ(batch_events[0].observation.stroke.kind,
            rec.strokes()[0].observation.stroke.kind);
}

TEST(Online, ComposesLetterAfterQuietGap) {
  Rig rig(57);
  OnlineRecognizer rec(rig.profile, rig.options);
  char letter = '\0';
  std::size_t letter_strokes = 0;
  rec.onLetter([&](char c, const std::vector<StrokeEvent>& evs) {
    letter = c;
    letter_strokes = evs.size();
  });

  const auto cap = rig.write(sim::letterPlans('L', 0.12, 0.114));
  for (const auto& r : cap.stream.reports()) rec.push(r);
  rec.flush();
  EXPECT_EQ(letter, 'L');
  // Two real strokes; an occasional transition residue may ride along (the
  // robust decoder discounts it).
  EXPECT_GE(letter_strokes, 2u);
  EXPECT_LE(letter_strokes, 3u);
}

TEST(Online, QuietStreamEmitsNothing) {
  Rig rig(58);
  OnlineRecognizer rec(rig.profile, rig.options);
  int strokes = 0, letters = 0;
  rec.onStroke([&](const StrokeEvent&) { ++strokes; });
  rec.onLetter([&](char, const std::vector<StrokeEvent>&) { ++letters; });
  const auto quiet = rig.scenario.captureStatic(3.0);
  for (const auto& r : quiet.reports()) rec.push(r);
  rec.flush();
  EXPECT_EQ(strokes, 0);
  EXPECT_EQ(letters, 0);
}

TEST(Online, NoDuplicateEmission) {
  Rig rig(59);
  OnlineRecognizer rec(rig.profile, rig.options);
  const auto cap = rig.write(
      {sim::canonicalPlan({StrokeKind::kSlash, StrokeDir::kForward}, 0.1)});
  for (const auto& r : cap.stream.reports()) rec.push(r);
  rec.flush();
  rec.flush();  // idempotent
  EXPECT_EQ(rec.strokes().size(), 1u);
}

TEST(Online, TwoStrokesTwoEvents) {
  Rig rig(60);
  OnlineRecognizer rec(rig.profile, rig.options);
  const auto cap = rig.write(
      {sim::canonicalPlan({StrokeKind::kVLine, StrokeDir::kForward}, 0.09),
       sim::canonicalPlan({StrokeKind::kHLine, StrokeDir::kForward}, 0.09)});
  for (const auto& r : cap.stream.reports()) rec.push(r);
  rec.flush();
  EXPECT_EQ(rec.strokes().size(), 2u);
}

TEST(Online, RejectsInvalidReportsWithCountedDrop) {
  Rig rig(61);
  OnlineRecognizer rec(rig.profile, rig.options);

  reader::TagReport r;
  r.tag_index = 3;
  r.time_s = std::numeric_limits<double>::quiet_NaN();
  r.phase_rad = 1.0;
  r.rssi_dbm = -40.0;
  rec.push(r);
  r.time_s = -0.5;
  rec.push(r);
  r.time_s = 0.5;
  r.phase_rad = std::numeric_limits<double>::infinity();
  rec.push(r);
  r.phase_rad = 1.0;
  r.rssi_dbm = std::numeric_limits<double>::quiet_NaN();
  rec.push(r);
  EXPECT_EQ(rec.stats().dropped_invalid, 4u);
  EXPECT_EQ(rec.stats().accepted, 0u);

  // An out-of-range tag index (corrupted EPC) is dropped, not allocated.
  r.rssi_dbm = -40.0;
  r.tag_index = 1u << 20;
  rec.push(r);
  EXPECT_EQ(rec.stats().dropped_unknown_tag, 1u);

  rec.flush();
  EXPECT_TRUE(rec.strokes().empty());
}

TEST(Online, ToleratesReorderAndDuplicateDelivery) {
  // Same capture, once delivered cleanly and once with transport disorder
  // (adjacent swaps + duplicates): the recognised stroke must match.
  Rig rig(62);
  const auto cap = rig.write(
      {sim::canonicalPlan({StrokeKind::kHLine, StrokeDir::kForward}, 0.1)});

  OnlineRecognizer clean(rig.profile, rig.options);
  for (const auto& r : cap.stream.reports()) clean.push(r);
  clean.flush();

  OnlineRecognizer messy(rig.profile, rig.options);
  const auto& reports = cap.stream.reports();
  for (std::size_t i = 0; i + 1 < reports.size(); i += 2) {
    messy.push(reports[i + 1]);  // swapped pair
    messy.push(reports[i]);
    if (i % 10 == 0) messy.push(reports[i]);  // occasional re-delivery
  }
  if (reports.size() % 2 == 1) messy.push(reports.back());
  messy.flush();

  EXPECT_GT(messy.stats().reordered, 0u);
  EXPECT_GT(messy.stats().duplicates, 0u);
  ASSERT_EQ(messy.strokes().size(), clean.strokes().size());
  for (std::size_t i = 0; i < messy.strokes().size(); ++i) {
    EXPECT_EQ(messy.strokes()[i].observation.stroke.kind,
              clean.strokes()[i].observation.stroke.kind);
  }
}

TEST(Online, LateReportsBehindConsumedFrontierAreDropped) {
  Rig rig(63);
  OnlineRecognizer rec(rig.profile, rig.options);
  const auto cap = rig.write(
      {sim::canonicalPlan({StrokeKind::kVLine, StrokeDir::kForward}, 0.1)});
  for (const auto& r : cap.stream.reports()) rec.push(r);
  rec.flush();
  ASSERT_FALSE(rec.strokes().empty());

  // Replay a report from deep inside the consumed window: it must be
  // dropped (counted), not re-open recognition.
  const std::size_t emitted = rec.strokes().size();
  rec.push(cap.stream.reports().front());
  EXPECT_EQ(rec.stats().dropped_late, 1u);
  rec.flush();
  EXPECT_EQ(rec.strokes().size(), emitted);
}

TEST(Online, IsolatedFutureTimestampCannotStallTheClock) {
  // A bit-flipped wire clock yields a finite but absurd timestamp.  If it
  // dragged the watermark forward, the recogniser clock would never advance
  // again and every later stroke would be lost.  An isolated jump past the
  // buffer horizon must be dropped (counted), with recognition unaffected.
  Rig rig(64);
  const auto cap = rig.write(
      {sim::canonicalPlan({StrokeKind::kHLine, StrokeDir::kForward}, 0.1)});

  OnlineRecognizer clean(rig.profile, rig.options);
  for (const auto& r : cap.stream.reports()) clean.push(r);
  clean.flush();

  OnlineRecognizer glitched(rig.profile, rig.options);
  const auto& reports = cap.stream.reports();
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i == reports.size() / 3) {
      reader::TagReport bad = reports[i];
      bad.time_s = 9.2e12;  // 2^63 microseconds, as decoded from the wire
      glitched.push(bad);
    }
    glitched.push(reports[i]);
  }
  glitched.flush();

  EXPECT_EQ(glitched.stats().dropped_future, 1u);
  ASSERT_EQ(glitched.strokes().size(), clean.strokes().size());
  for (std::size_t i = 0; i < glitched.strokes().size(); ++i) {
    EXPECT_EQ(glitched.strokes()[i].observation.stroke.kind,
              clean.strokes()[i].observation.stroke.kind);
  }
}

TEST(Online, CorroboratedClockJumpIsAccepted) {
  // A genuine far-future jump (reader resumed after a long gap) delivers
  // *consecutive* reports at the new time; the second one corroborates the
  // first and the stream continues at the jumped clock.
  Rig rig(65);
  OnlineRecognizer rec(rig.profile, rig.options);
  reader::TagReport r;
  r.tag_index = 3;
  r.phase_rad = 1.0;
  r.rssi_dbm = -40.0;
  for (int i = 0; i < 10; ++i) {
    r.time_s = 0.1 * i;
    rec.push(r);
    r.phase_rad += 0.01;  // avoid the duplicate filter
  }
  const double jump = 500.0;
  for (int i = 0; i < 10; ++i) {
    r.time_s = jump + 0.1 * i;
    rec.push(r);
    r.phase_rad += 0.01;
  }
  // Only the first post-jump report is held for corroboration.
  EXPECT_EQ(rec.stats().dropped_future, 1u);
  EXPECT_EQ(rec.stats().accepted, 19u);
}

TEST(Online, OfferProcessDueWithSharedScratchMatchesPush) {
  // The split API (offer + processDue with an external scratch) is how the
  // serving layer drives recognisers while sharing one scratch across the
  // sessions of a shard.  It must reproduce push() exactly — including when
  // two recognisers interleave on the same scratch.
  Rig rig;
  const auto cap = rig.write(sim::letterPlans('L', 0.12, 0.114));

  OnlineRecognizer reference(rig.profile, rig.options);
  OnlineRecognizer split_a(rig.profile, rig.options);
  OnlineRecognizer split_b(rig.profile, rig.options);
  std::string ref_letters, a_letters, b_letters;
  reference.onLetter(
      [&](char c, const std::vector<StrokeEvent>&) { ref_letters += c; });
  split_a.onLetter(
      [&](char c, const std::vector<StrokeEvent>&) { a_letters += c; });
  split_b.onLetter(
      [&](char c, const std::vector<StrokeEvent>&) { b_letters += c; });

  SegmentScratch scratch;
  for (const auto& r : cap.stream.reports()) {
    reference.push(r);
    if (split_a.offer(r)) split_a.processDue(scratch);
    if (split_b.offer(r)) split_b.processDue(scratch);
  }
  reference.flush();
  split_a.flushWith(scratch);
  split_b.flushWith(scratch);

  EXPECT_EQ(a_letters, ref_letters);
  EXPECT_EQ(b_letters, ref_letters);
  ASSERT_EQ(split_a.strokes().size(), reference.strokes().size());
  for (std::size_t i = 0; i < reference.strokes().size(); ++i) {
    EXPECT_DOUBLE_EQ(split_a.strokes()[i].interval.t0,
                     reference.strokes()[i].interval.t0);
    EXPECT_DOUBLE_EQ(split_a.strokes()[i].interval.t1,
                     reference.strokes()[i].interval.t1);
    EXPECT_EQ(split_a.strokes()[i].observation.stroke.kind,
              reference.strokes()[i].observation.stroke.kind);
  }
  EXPECT_EQ(split_a.stats().accepted, reference.stats().accepted);
  EXPECT_EQ(split_b.stats().accepted, reference.stats().accepted);
}

}  // namespace
}  // namespace rfipad::core
