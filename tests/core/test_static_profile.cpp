#include "core/static_profile.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/angles.hpp"
#include "common/rng.hpp"

namespace rfipad::core {
namespace {

reader::SampleStream syntheticStatic(int tags, int reads_per_tag,
                                     double noise_std, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> centre(tags);
  for (int i = 0; i < tags; ++i) centre[i] = rng.uniform(0.0, kTwoPi);
  reader::SampleStream stream(static_cast<std::uint32_t>(tags));
  for (int j = 0; j < reads_per_tag; ++j) {
    for (int i = 0; i < tags; ++i) {
      reader::TagReport r;
      r.tag_index = static_cast<std::uint32_t>(i);
      r.time_s = j * 0.05 + i * 0.001;
      r.phase_rad = wrapTwoPi(centre[i] + rng.normal(0.0, noise_std * (1 + i % 3)));
      r.rssi_dbm = -40.0;
      stream.push(r);
    }
  }
  return stream;
}

TEST(StaticProfile, RecoversCentralPhases) {
  const auto stream = syntheticStatic(5, 200, 0.02, 7);
  const auto profile = StaticProfile::calibrate(stream, 5);
  for (std::uint32_t i = 0; i < 5; ++i) {
    const auto series = stream.seriesFor(i);
    EXPECT_NEAR(angleDiff(profile.tag(i).mean_phase, circularMean(series.phases)),
                0.0, 1e-9);
    EXPECT_EQ(profile.tag(i).samples, series.phases.size());
  }
}

TEST(StaticProfile, BiasTracksNoiseLevel) {
  const auto stream = syntheticStatic(6, 300, 0.03, 9);
  const auto profile = StaticProfile::calibrate(stream, 6);
  // Tags 2,5 were generated with 3× noise of tags 0,3.
  EXPECT_GT(profile.tag(2).deviation_bias, profile.tag(0).deviation_bias);
  EXPECT_GT(profile.tag(5).deviation_bias, profile.tag(3).deviation_bias);
}

TEST(StaticProfile, WeightsNormalised) {
  const auto stream = syntheticStatic(8, 100, 0.05, 3);
  const auto profile = StaticProfile::calibrate(stream, 8);
  double sum = 0.0;
  for (std::uint32_t i = 0; i < 8; ++i) sum += profile.weight(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(StaticProfile, HighBiasTagsGetHighWeight) {
  // Eq. 9: w_i ∝ E(b_i).
  const auto stream = syntheticStatic(6, 300, 0.03, 5);
  const auto profile = StaticProfile::calibrate(stream, 6);
  EXPECT_GT(profile.weight(2), profile.weight(0));
}

TEST(StaticProfile, UnseenTagGetsMedianBias) {
  auto stream = syntheticStatic(4, 100, 0.02, 1);
  // Calibrate declaring 6 tags although only 4 were observed.
  const auto profile = StaticProfile::calibrate(stream, 6);
  EXPECT_EQ(profile.tag(5).samples, 0u);
  EXPECT_GT(profile.tag(5).deviation_bias, 0.0);
  EXPECT_NEAR(profile.tag(5).deviation_bias, profile.medianBias(), 0.05);
}

TEST(StaticProfile, BiasFlooredAboveZero) {
  // Constant phases would give zero bias → infinite weight in Eq. 10;
  // the profile floors it at one quantisation step.
  reader::SampleStream stream(2);
  for (int j = 0; j < 50; ++j) {
    for (std::uint32_t i = 0; i < 2; ++i) {
      reader::TagReport r;
      r.tag_index = i;
      r.time_s = j * 0.01 + i * 0.001;
      r.phase_rad = 1.0;
      stream.push(r);
    }
  }
  const auto profile = StaticProfile::calibrate(stream, 2);
  EXPECT_GT(profile.tag(0).deviation_bias, 0.0);
}

TEST(StaticProfile, SeamStraddlingPhasesHandled) {
  // Phases around 0/2π must not produce a huge fake bias.
  Rng rng(11);
  reader::SampleStream stream(1);
  for (int j = 0; j < 200; ++j) {
    reader::TagReport r;
    r.tag_index = 0;
    r.time_s = j * 0.01;
    r.phase_rad = wrapTwoPi(rng.normal(0.0, 0.05));
    stream.push(r);
  }
  const auto profile = StaticProfile::calibrate(stream, 1);
  EXPECT_LT(profile.tag(0).deviation_bias, 0.15);
}

TEST(StaticProfile, RejectsZeroTags) {
  reader::SampleStream s;
  EXPECT_THROW(StaticProfile::calibrate(s, 0), std::invalid_argument);
}

TEST(StaticProfile, MeanRssiRecorded) {
  const auto stream = syntheticStatic(3, 50, 0.02, 2);
  const auto profile = StaticProfile::calibrate(stream, 3);
  EXPECT_NEAR(profile.tag(0).mean_rssi, -40.0, 1e-9);
}

}  // namespace
}  // namespace rfipad::core
