#include "gen2/timing.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rfipad::gen2 {
namespace {

TEST(Timing, SlotOrdering) {
  // empty < collision < success, for every profile.
  for (const auto& p : {denseReaderM4(), hybridM2(), maxThroughputFm0()}) {
    const Gen2Timing t(p);
    EXPECT_LT(t.emptySlotS(), t.collisionSlotS()) << p.name;
    EXPECT_LT(t.collisionSlotS(), t.successSlotS()) << p.name;
    EXPECT_GT(t.emptySlotS(), 0.0);
  }
}

TEST(Timing, FasterProfilesShorterSlots) {
  const Gen2Timing dense(denseReaderM4());
  const Gen2Timing hybrid(hybridM2());
  const Gen2Timing fast(maxThroughputFm0());
  EXPECT_GT(dense.successSlotS(), hybrid.successSlotS());
  EXPECT_GT(hybrid.successSlotS(), fast.successSlotS());
}

TEST(Timing, RealisticReadRates) {
  // Commercial readers singulate a few hundred tags/s in robust modes and
  // up to ~1000/s in fast modes.
  EXPECT_GT(Gen2Timing(denseReaderM4()).maxReadRateHz(), 150.0);
  EXPECT_LT(Gen2Timing(denseReaderM4()).maxReadRateHz(), 600.0);
  EXPECT_GT(Gen2Timing(maxThroughputFm0()).maxReadRateHz(), 800.0);
}

TEST(Timing, EpcReplyLongerThanRn16) {
  const Gen2Timing t(hybridM2());
  // The EPC reply carries PC+EPC+CRC (128 bits) vs the RN16's 16.
  EXPECT_GT(t.epcReplyS(), 3.0 * t.rn16S());
}

TEST(Timing, CommandDurationsOrdered) {
  const Gen2Timing t(denseReaderM4());
  // QueryRep (4 bits) < QueryAdjust (9) < ACK (18) < Query (22 + preamble).
  EXPECT_LT(t.queryRepS(), t.queryAdjustS());
  EXPECT_LT(t.queryAdjustS(), t.ackS());
  EXPECT_LT(t.ackS(), t.queryS());
}

TEST(Timing, MillerSlowerThanFm0) {
  LinkProfile fm0 = maxThroughputFm0();
  LinkProfile m4 = fm0;
  m4.encoding = TagEncoding::kMiller4;
  EXPECT_GT(Gen2Timing(m4).rn16S(), Gen2Timing(fm0).rn16S());
}

TEST(Timing, TrextLengthensTagPreamble) {
  LinkProfile with = hybridM2();
  with.trext = true;
  LinkProfile without = hybridM2();
  without.trext = false;
  EXPECT_GT(Gen2Timing(with).rn16S(), Gen2Timing(without).rn16S());
}

TEST(Timing, Validation) {
  LinkProfile bad = hybridM2();
  bad.tari_s = 1e-6;
  EXPECT_THROW(Gen2Timing{bad}, std::invalid_argument);
  bad = hybridM2();
  bad.blf_hz = 1e6;
  EXPECT_THROW(Gen2Timing{bad}, std::invalid_argument);
}

TEST(Timing, T1AtLeastRtcal) {
  const Gen2Timing t(denseReaderM4());
  EXPECT_GE(t.t1S(), 2.75 * denseReaderM4().tari_s - 1e-12);
}

}  // namespace
}  // namespace rfipad::gen2
