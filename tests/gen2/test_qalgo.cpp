#include "gen2/q_algorithm.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rfipad::gen2 {
namespace {

TEST(QAlgorithm, InitialState) {
  QAlgorithm q;
  EXPECT_EQ(q.roundQ(), 4);
  EXPECT_EQ(q.frameSize(), 16);
}

TEST(QAlgorithm, CollisionsRaiseQ) {
  QAlgorithm q;
  for (int i = 0; i < 10; ++i) q.onCollisionSlot();
  EXPECT_GT(q.roundQ(), 4);
}

TEST(QAlgorithm, EmptiesLowerQ) {
  QAlgorithm q;
  for (int i = 0; i < 40; ++i) q.onEmptySlot();
  EXPECT_LT(q.roundQ(), 4);
}

TEST(QAlgorithm, SuccessIsNeutral) {
  QAlgorithm q;
  const double before = q.qfp();
  for (int i = 0; i < 100; ++i) q.onSuccessSlot();
  EXPECT_DOUBLE_EQ(q.qfp(), before);
}

TEST(QAlgorithm, ClampsAtBounds) {
  QConfig cfg;
  cfg.min_q = 2;
  cfg.max_q = 6;
  cfg.initial_q = 4;
  QAlgorithm q(cfg);
  for (int i = 0; i < 1000; ++i) q.onEmptySlot();
  EXPECT_EQ(q.roundQ(), 2);
  for (int i = 0; i < 1000; ++i) q.onCollisionSlot();
  EXPECT_EQ(q.roundQ(), 6);
}

TEST(QAlgorithm, ResetRestoresInitial) {
  QAlgorithm q;
  for (int i = 0; i < 10; ++i) q.onCollisionSlot();
  q.reset();
  EXPECT_EQ(q.roundQ(), 4);
}

TEST(QAlgorithm, FrameSizeIsPowerOfTwo) {
  QAlgorithm q;
  for (int i = 0; i < 30; ++i) {
    q.onCollisionSlot();
    const int f = q.frameSize();
    EXPECT_EQ(f & (f - 1), 0) << f;
  }
}

TEST(QAlgorithm, Validation) {
  QConfig bad;
  bad.min_q = -1;
  EXPECT_THROW(QAlgorithm{bad}, std::invalid_argument);
  bad = QConfig{};
  bad.max_q = 20;
  EXPECT_THROW(QAlgorithm{bad}, std::invalid_argument);
  bad = QConfig{};
  bad.initial_q = 99;
  EXPECT_THROW(QAlgorithm{bad}, std::invalid_argument);
  bad = QConfig{};
  bad.c_empty = 0.0;
  EXPECT_THROW(QAlgorithm{bad}, std::invalid_argument);
}

TEST(QAlgorithm, EquilibriumTracksPopulation) {
  // Alternating collision-heavy and empty-heavy feedback settles between
  // the extremes (rough behavioural check of the Annex-D loop).
  QAlgorithm q;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 3; ++i) q.onCollisionSlot();
    for (int i = 0; i < 7; ++i) q.onEmptySlot();
  }
  EXPECT_GE(q.roundQ(), 2);
  EXPECT_LE(q.roundQ(), 7);
}

}  // namespace
}  // namespace rfipad::gen2
