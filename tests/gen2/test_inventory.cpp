#include "gen2/inventory.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

namespace rfipad::gen2 {
namespace {

InventorySimulator makeSim(std::uint32_t tags, std::uint64_t seed = 1) {
  return InventorySimulator(Gen2Timing(hybridM2()), QConfig{}, tags, Rng(seed));
}

TEST(Inventory, RejectsZeroTags) {
  EXPECT_THROW(makeSim(0), std::invalid_argument);
}

TEST(Inventory, AllTagsGetRead) {
  auto sim = makeSim(25);
  std::set<std::uint32_t> seen;
  sim.run(1.0, [&](const Singulation& s) { seen.insert(s.tag_index); });
  EXPECT_EQ(seen.size(), 25u);
}

TEST(Inventory, TimeAdvancesMonotonically) {
  auto sim = makeSim(10);
  double prev = -1.0;
  sim.run(0.5, [&](const Singulation& s) {
    EXPECT_GT(s.time_s, prev);
    prev = s.time_s;
  });
  EXPECT_GE(sim.now(), 0.5);
}

TEST(Inventory, ReadRateRealisticFor25Tags) {
  auto sim = makeSim(25);
  int reads = 0;
  sim.run(5.0, [&](const Singulation&) { ++reads; });
  const double rate = reads / 5.0;
  // Commercial hybrid mode: a few hundred reads/s aggregate.
  EXPECT_GT(rate, 200.0);
  EXPECT_LT(rate, 800.0);
}

TEST(Inventory, PerTagRateRoughlyFair) {
  auto sim = makeSim(25);
  std::vector<int> counts(25, 0);
  sim.run(5.0, [&](const Singulation& s) { ++counts[s.tag_index]; });
  int lo = counts[0], hi = counts[0];
  for (int c : counts) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_GT(lo, 0);
  EXPECT_LT(hi, 3 * lo);  // no starvation in session-S0 operation
}

TEST(Inventory, CollisionsOccurWithManyTags) {
  auto sim = makeSim(50);
  sim.run(2.0, [](const Singulation&) {});
  EXPECT_GT(sim.stats().collisions, 0u);
  EXPECT_GT(sim.stats().empties, 0u);
  EXPECT_GT(sim.stats().successes, 0u);
}

TEST(Inventory, SlotEfficiencyReasonable) {
  auto sim = makeSim(25);
  sim.run(5.0, [](const Singulation&) {});
  const double eff = sim.stats().slotEfficiency();
  // Framed-slotted ALOHA with Q adaptation lands in the 0.2–0.7 band.
  EXPECT_GT(eff, 0.2);
  EXPECT_LT(eff, 0.75);
}

TEST(Inventory, DeterministicForSeed) {
  auto a = makeSim(10, 42);
  auto b = makeSim(10, 42);
  std::vector<std::pair<std::uint32_t, double>> ra, rb;
  a.run(1.0, [&](const Singulation& s) { ra.push_back({s.tag_index, s.time_s}); });
  b.run(1.0, [&](const Singulation& s) { rb.push_back({s.tag_index, s.time_s}); });
  EXPECT_EQ(ra, rb);
}

TEST(Inventory, UnpoweredTagsNeverRead) {
  auto sim = makeSim(10);
  sim.setPoweredPredicate(
      [](std::uint32_t tag, double) { return tag % 2 == 0; });
  std::set<std::uint32_t> seen;
  sim.run(2.0, [&](const Singulation& s) { seen.insert(s.tag_index); });
  for (std::uint32_t t : seen) EXPECT_EQ(t % 2, 0u);
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Inventory, UndecodableRepliesAreLost) {
  auto sim = makeSim(5);
  sim.setDecodablePredicate([](std::uint32_t, double) { return false; });
  int reads = 0;
  sim.run(1.0, [&](const Singulation&) { ++reads; });
  EXPECT_EQ(reads, 0);
  EXPECT_GT(sim.stats().lost_replies, 0u);
}

TEST(Inventory, PowerLossMidCaptureStopsReads) {
  auto sim = makeSim(8);
  sim.setPoweredPredicate([](std::uint32_t, double t) { return t < 0.5; });
  double last_read = 0.0;
  sim.run(2.0, [&](const Singulation& s) { last_read = s.time_s; });
  EXPECT_LT(last_read, 0.55);
}

TEST(Inventory, RunIsResumable) {
  auto sim = makeSim(10);
  int first = 0, second = 0;
  sim.run(0.5, [&](const Singulation&) { ++first; });
  const double mid = sim.now();
  sim.run(1.0, [&](const Singulation&) { ++second; });
  EXPECT_GE(mid, 0.5);
  EXPECT_GT(first, 0);
  EXPECT_GT(second, 0);
  EXPECT_GE(sim.now(), 1.0);
}

TEST(Inventory, SingleTagNeverCollides) {
  auto sim = makeSim(1);
  sim.run(1.0, [](const Singulation&) {});
  EXPECT_EQ(sim.stats().collisions, 0u);
  EXPECT_GT(sim.stats().successes, 100u);
}

class PopulationSweep : public ::testing::TestWithParam<int> {};
TEST_P(PopulationSweep, ThroughputScalesGracefully) {
  auto sim = makeSim(static_cast<std::uint32_t>(GetParam()), 3);
  int reads = 0;
  sim.run(2.0, [&](const Singulation&) { ++reads; });
  EXPECT_GT(reads, 100);  // the MAC keeps working across populations
}
INSTANTIATE_TEST_SUITE_P(Gen2, PopulationSweep,
                         ::testing::Values(1, 4, 9, 25, 64, 128));

}  // namespace
}  // namespace rfipad::gen2
