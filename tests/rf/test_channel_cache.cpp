// Regression tests for the per-tag static-channel memo inside
// ChannelModel::evaluate (satellite of the perf PR): repeated evaluation
// of the same tag must not redo the reflector scan, copies start cold,
// and setEnvironment() invalidates the memo.
#include "rf/channel.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

namespace rfipad::rf {
namespace {

ChannelModel modelWith(MultipathEnvironment env) {
  return ChannelModel(CarrierConfig{922.38e6},
                      DirectionalAntenna({0, 0, -0.32}, {0, 0, 1}, 8.0),
                      std::move(env));
}

PointScatterer handAt(Vec3 pos) {
  PointScatterer s;
  s.position = pos;
  s.rcs_m2 = 0.012;
  s.reflection_phase = 3.14159;
  s.blocks_los = true;
  s.blockage_radius = 0.05;
  s.blockage_depth_db = 8.0;
  return s;
}

MultipathEnvironment denseEnv(int reflectors) {
  MultipathEnvironment env = labLocation(1);
  const PointScatterer proto = env.reflectors.at(0);
  env.reflectors.clear();
  for (int i = 0; i < reflectors; ++i) {
    PointScatterer r = proto;
    r.position.x += 0.05 * i;
    r.position.y -= 0.03 * i;
    env.reflectors.push_back(r);
  }
  return env;
}

TEST(ChannelCache, EvaluateMemoisesPerTag) {
  const auto model = modelWith(labLocation(3));
  const TagEndpoint tag{{0.06, 0.06, 0.0}, 1.64, 0.5};
  const ScattererList dyn = {handAt({0.05, 0.0, 0.04})};

  EXPECT_EQ(model.precomputeCount(), 0u);
  const auto first = model.evaluate(tag, dyn);
  EXPECT_EQ(model.precomputeCount(), 1u);
  for (int i = 0; i < 50; ++i) model.evaluate(tag, dyn);
  EXPECT_EQ(model.precomputeCount(), 1u) << "repeat evaluations must hit memo";
  const auto last = model.evaluate(tag, dyn);
  EXPECT_EQ(first.forward, last.forward);
  EXPECT_EQ(first.detune, last.detune);
}

TEST(ChannelCache, DistinctTagsGetDistinctEntries) {
  const auto model = modelWith(labLocation(2));
  const ScattererList dyn;
  for (int i = 0; i < 4; ++i) {
    const TagEndpoint tag{{0.05 * i, -0.05 * i, 0.0}, 1.64, 0.5};
    model.evaluate(tag, dyn);
    model.evaluate(tag, dyn);
  }
  EXPECT_EQ(model.precomputeCount(), 4u);
}

TEST(ChannelCache, MemoisedMatchesExplicitPrecompute) {
  const auto model = modelWith(labLocation(4));
  const TagEndpoint tag{{-0.09, 0.03, 0.0}, 1.64, 0.5};
  const ScattererList dyn = {handAt({0.0, 0.0, 0.05}),
                             handAt({0.1, 0.05, 0.12})};
  const auto cache = model.precompute(tag);
  const auto via_memo = model.evaluate(tag, dyn);
  const auto via_cache = model.evaluateCached(tag, cache, dyn);
  EXPECT_EQ(via_memo.forward, via_cache.forward);
  EXPECT_EQ(via_memo.detune, via_cache.detune);
}

TEST(ChannelCache, SetEnvironmentInvalidates) {
  auto model = modelWith(labLocation(1));
  const TagEndpoint tag{{0.0, 0.0, 0.0}, 1.64, 0.5};
  const auto before = model.evaluate(tag, {});
  EXPECT_EQ(model.precomputeCount(), 1u);

  model.setEnvironment(labLocation(4));
  const auto after = model.evaluate(tag, {});
  EXPECT_EQ(model.precomputeCount(), 2u) << "stale memo served after env swap";
  EXPECT_GT(std::abs(before.forward - after.forward), 1e-9);

  // The refreshed memo must match a fresh model of the same environment.
  const auto fresh = modelWith(labLocation(4)).evaluate(tag, {});
  EXPECT_EQ(after.forward, fresh.forward);
}

TEST(ChannelCache, CopiesStartCold) {
  const auto model = modelWith(labLocation(2));
  const TagEndpoint tag{{0.02, 0.04, 0.0}, 1.64, 0.5};
  model.evaluate(tag, {});
  EXPECT_EQ(model.precomputeCount(), 1u);

  const ChannelModel copy = model;
  EXPECT_EQ(copy.precomputeCount(), 0u);
  const auto a = model.evaluate(tag, {});
  const auto b = copy.evaluate(tag, {});
  EXPECT_EQ(copy.precomputeCount(), 1u);
  EXPECT_EQ(a.forward, b.forward);
}

TEST(ChannelCache, PerCallCostNoLongerScalesWithReflectorCount) {
  // Pre-fix, every evaluate() rescanned all reflectors; with the memo the
  // per-call cost is the dynamic part only.  Compare a 1-reflector model
  // with a 100-reflector model on the same warmed tag and insist the dense
  // model is within a generous constant factor (it was ~100x before).
  const auto sparse = modelWith(denseEnv(1));
  const auto dense = modelWith(denseEnv(100));
  const TagEndpoint tag{{0.0, 0.0, 0.0}, 1.64, 0.5};
  const ScattererList dyn = {handAt({0.03, 0.0, 0.05})};
  sparse.evaluate(tag, dyn);  // warm the memos
  dense.evaluate(tag, dyn);

  constexpr int kIters = 4000;
  auto timeOne = [&](const ChannelModel& m) {
    Complex acc = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) acc += m.evaluate(tag, dyn).forward;
    const auto t1 = std::chrono::steady_clock::now();
    // Keep `acc` observable so the loop cannot be optimised away.
    EXPECT_TRUE(std::isfinite(acc.real()));
    return std::chrono::duration<double>(t1 - t0).count();
  };
  timeOne(sparse);  // warm-up pass for both, steadier timings
  timeOne(dense);
  const double t_sparse = timeOne(sparse);
  const double t_dense = timeOne(dense);
  // Generous margin: the dynamic hand still touches the per-reflector
  // parasitic terms, so dense is legitimately somewhat slower — but far
  // from the ~100x of a full rescan.
  EXPECT_LT(t_dense, t_sparse * 25.0 + 1e-3)
      << "evaluate() appears to rescan reflectors per call again";
  EXPECT_EQ(dense.precomputeCount(), 1u);
}

}  // namespace
}  // namespace rfipad::rf
