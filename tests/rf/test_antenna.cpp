#include "rf/antenna.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/angles.hpp"
#include "common/units.hpp"

namespace rfipad::rf {
namespace {

TEST(Antenna, BeamwidthMatchesPaperEq14) {
  // The paper: an 8 dBi antenna has θ_beam = sqrt(4π/G) ≈ 72°.
  const DirectionalAntenna ant({0, 0, 0}, {0, 0, 1}, 8.0);
  EXPECT_NEAR(ant.beamwidthDeg(), 81.0, 10.0);
  EXPECT_GT(ant.beamwidthDeg(), 70.0);
}

TEST(Antenna, HigherGainNarrowerBeam) {
  const DirectionalAntenna a({0, 0, 0}, {0, 0, 1}, 6.0);
  const DirectionalAntenna b({0, 0, 0}, {0, 0, 1}, 12.0);
  EXPECT_GT(a.beamwidthDeg(), b.beamwidthDeg());
}

TEST(Antenna, PeakGainOnBoresight) {
  const DirectionalAntenna ant({0, 0, 0}, {0, 0, 1}, 8.0);
  EXPECT_NEAR(ant.gainToward({0, 0, 2.0}), dbToLinear(8.0), 1e-9);
}

TEST(Antenna, GainMonotoneOffAxis) {
  const DirectionalAntenna ant({0, 0, 0}, {0, 0, 1}, 8.0);
  double prev = ant.gainAtAngle(0.0);
  for (double a = 0.1; a < 1.5; a += 0.1) {
    const double g = ant.gainAtAngle(a);
    EXPECT_LE(g, prev + 1e-12);
    prev = g;
  }
}

TEST(Antenna, HalfPowerAtHalfBeamwidth) {
  const DirectionalAntenna ant({0, 0, 0}, {0, 0, 1}, 8.0);
  const double half = ant.beamwidthDeg() / 2.0 * kPi / 180.0;
  EXPECT_NEAR(ant.gainAtAngle(half) / ant.peakGainLinear(), 0.5, 0.02);
}

TEST(Antenna, SidelobeFloorNeverZero) {
  const DirectionalAntenna ant({0, 0, 0}, {0, 0, 1}, 8.0);
  // Even behind the antenna some energy leaks (sidelobe floor).
  EXPECT_GT(ant.gainToward({0, 0, -1.0}), 0.0);
  EXPECT_LT(ant.gainToward({0, 0, -1.0}), ant.peakGainLinear() * 0.05);
}

TEST(Antenna, BoresightNormalised) {
  const DirectionalAntenna ant({0, 0, 0}, {0, 0, 10.0}, 8.0);
  EXPECT_NEAR(ant.boresight().norm(), 1.0, 1e-12);
}

TEST(Antenna, RejectsZeroBoresight) {
  EXPECT_THROW(DirectionalAntenna({0, 0, 0}, {0, 0, 0}, 8.0),
               std::invalid_argument);
}

TEST(Antenna, OffAxisAngleGeometry) {
  const DirectionalAntenna ant({0, 0, 0}, {0, 0, 1}, 8.0);
  EXPECT_NEAR(ant.offAxisAngle({0, 0, 5}), 0.0, 1e-12);
  EXPECT_NEAR(ant.offAxisAngle({1, 0, 0}), kPi / 2.0, 1e-12);
  EXPECT_NEAR(ant.offAxisAngle({0, 0, -3}), kPi, 1e-12);
}

}  // namespace
}  // namespace rfipad::rf
