// Property tests for the SoA channel kernels: SIMD-vs-scalar bitwise
// equality (the determinism contract), batch-vs-single-tag bitwise
// equality (the predicates mix both), and agreement with the exact
// ChannelModel reference within the polynomial-math tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/simd_dispatch.hpp"
#include "rf/channel.hpp"
#include "rf/channel_batch.hpp"
#include "rf/multipath.hpp"
#include "rf/tag_batch.hpp"

namespace rfipad::rf {
namespace {

struct Fixture {
  ChannelModel model;
  std::vector<TagEndpoint> endpoints;
  std::vector<std::vector<ChannelModel::StaticTagChannel>> caches;
  TagBatch batch;

  Fixture(std::size_t num_tags, const MultipathEnvironment& env,
          std::uint64_t seed)
      : model(CarrierConfig{922.38e6},
              DirectionalAntenna({0.05, -0.4, 1.2}, {0.0, 0.3, -1.0}, 8.0),
              env) {
    Rng rng(seed);
    for (std::size_t i = 0; i < num_tags; ++i) {
      TagEndpoint e;
      e.position = {rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3),
                    rng.uniform(-0.02, 0.02)};
      endpoints.push_back(e);
    }
    auto& cache = caches.emplace_back();
    for (const auto& e : endpoints) cache.push_back(model.precompute(e));
    batch.build(endpoints, model.antenna().peakGainLinear(), caches);
  }
};

ScattererList randomScene(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  ScattererList scene;
  for (std::size_t j = 0; j < n; ++j) {
    PointScatterer s;
    s.position = {rng.uniform(-0.4, 0.4), rng.uniform(-0.4, 0.4),
                  rng.uniform(0.02, 0.4)};
    s.rcs_m2 = rng.uniform(0.002, 0.03);
    s.reflection_phase = rng.uniform(0.0, 6.28);
    s.blocks_los = (j % 3) != 2;  // mix blocking and non-blocking
    s.blockage_radius = rng.uniform(0.03, 0.08);
    s.blockage_depth_db = rng.uniform(2.0, 9.0);
    scene.push_back(s);
  }
  return scene;
}

// Tag counts straddling the 4-lane blocks, scenes from empty to 3-body.
const std::size_t kTagCounts[] = {1, 2, 3, 5, 7, 9, 25, 33};
const std::size_t kSceneSizes[] = {0, 1, 2, 3};

TEST(ChannelBatch, BoundsMatchReferenceModel) {
  for (std::size_t nt : kTagCounts) {
    Fixture fx(nt, labLocation(1), 100 + nt);
    for (std::size_t ns : kSceneSizes) {
      const auto scene = randomScene(ns, 500 + ns);
      const auto geom = fx.model.precomputeScene(scene);
      FlatScene fs;
      fs.build(fx.model, scene);
      std::vector<double> amp_lo(fx.batch.stride), detune(fx.batch.stride);
      BoundsArgs args{&fx.batch, &fs, 0, fx.model.carrier().wavelengthM(),
                      amp_lo.data(), detune.data()};
      computeBoundsTier(simd::Tier::kScalar, args, 0, nt);
      for (std::size_t i = 0; i < nt; ++i) {
        const double ref = fx.model.forwardAmpLowerBound(
            fx.endpoints[i], fx.caches[0][i], scene, geom);
        EXPECT_NEAR(amp_lo[i], ref, std::abs(ref) * 1e-9 + 1e-12)
            << "amp_lo tag " << i << " tags=" << nt << " scene=" << ns;
        const double dref = fx.model.detuneFactor(fx.endpoints[i], scene);
        EXPECT_NEAR(detune[i], dref, std::abs(dref) * 1e-9 + 1e-12)
            << "detune tag " << i;
      }
    }
  }
}

TEST(ChannelBatch, SimdTierMatchesScalarBitwise) {
  if (simd::detectTier() == simd::Tier::kScalar)
    GTEST_SKIP() << "no vector tier on this CPU";
  const simd::Tier vec = simd::detectTier();
  for (std::size_t nt : kTagCounts) {
    Fixture fx(nt, labLocation(4), 200 + nt);
    for (std::size_t ns : kSceneSizes) {
      const auto scene = randomScene(ns, 700 + ns);
      FlatScene fs;
      fs.build(fx.model, scene);
      std::vector<double> as(fx.batch.stride), ds(fx.batch.stride);
      std::vector<double> av(fx.batch.stride), dv(fx.batch.stride);
      BoundsArgs sargs{&fx.batch, &fs, 0, fx.model.carrier().wavelengthM(),
                       as.data(), ds.data()};
      BoundsArgs vargs{&fx.batch, &fs, 0, fx.model.carrier().wavelengthM(),
                       av.data(), dv.data()};
      computeBoundsTier(simd::Tier::kScalar, sargs, 0, nt);
      computeBoundsTier(vec, vargs, 0, nt);
      for (std::size_t i = 0; i < nt; ++i) {
        EXPECT_EQ(as[i], av[i]) << "amp_lo tag " << i << "/" << nt
                                << " scene=" << ns;
        EXPECT_EQ(ds[i], dv[i]) << "detune tag " << i << "/" << nt;
      }
    }
  }
}

TEST(ChannelBatch, SingleTagRangeMatchesBatchBitwise) {
  Fixture fx(25, labLocation(1), 42);
  const auto scene = randomScene(3, 43);
  FlatScene fs;
  fs.build(fx.model, scene);
  std::vector<double> ab(fx.batch.stride), db(fx.batch.stride);
  std::vector<double> a1(fx.batch.stride), d1(fx.batch.stride);
  BoundsArgs bargs{&fx.batch, &fs, 0, fx.model.carrier().wavelengthM(),
                   ab.data(), db.data()};
  computeBounds(bargs, 0, 25);
  BoundsArgs sargs{&fx.batch, &fs, 0, fx.model.carrier().wavelengthM(),
                   a1.data(), d1.data()};
  for (std::size_t i = 0; i < 25; ++i) computeBounds(sargs, i, i + 1);
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(ab[i], a1[i]) << "amp_lo tag " << i;
    EXPECT_EQ(db[i], d1[i]) << "detune tag " << i;
  }
}

TEST(ChannelBatch, BoundStaysBelowExactForwardAmplitude) {
  Fixture fx(25, labLocation(4), 7);
  for (std::size_t ns : kSceneSizes) {
    const auto scene = randomScene(ns, 900 + ns);
    FlatScene fs;
    fs.build(fx.model, scene);
    std::vector<double> amp_lo(fx.batch.stride), detune(fx.batch.stride);
    BoundsArgs args{&fx.batch, &fs, 0, fx.model.carrier().wavelengthM(),
                    amp_lo.data(), detune.data()};
    computeBounds(args, 0, 25);
    for (std::size_t i = 0; i < 25; ++i) {
      const auto snap =
          fx.model.evaluateCached(fx.endpoints[i], fx.caches[0][i], scene);
      // Soundness up to the ~1e-12 polynomial drift.
      EXPECT_LE(amp_lo[i], std::abs(snap.forward) * (1.0 + 1e-9) + 1e-12)
          << "tag " << i << " scene=" << ns;
    }
  }
}

TEST(ChannelBatch, FastEvaluationMatchesReferenceModel) {
  for (const auto& env : {anechoic(), labLocation(1), labLocation(4)}) {
    Fixture fx(25, env, 11);
    for (std::size_t ns : kSceneSizes) {
      const auto scene = randomScene(ns, 1100 + ns);
      FlatScene fs;
      fs.build(fx.model, scene);
      const double lambda = fx.model.carrier().wavelengthM();
      const double k = fx.model.carrier().waveNumber();
      for (std::size_t i = 0; i < 25; ++i) {
        const auto fast = evaluateTagFast(fx.batch, 0, i, fs, lambda, k);
        const auto ref =
            fx.model.evaluateCached(fx.endpoints[i], fx.caches[0][i], scene);
        const double scale = std::abs(ref.forward) + 1e-12;
        EXPECT_NEAR(fast.forward.real(), ref.forward.real(), scale * 1e-9)
            << "re tag " << i << " scene=" << ns;
        EXPECT_NEAR(fast.forward.imag(), ref.forward.imag(), scale * 1e-9)
            << "im tag " << i << " scene=" << ns;
        EXPECT_NEAR(fast.detune, ref.detune, 1e-11) << "detune tag " << i;
      }
    }
  }
}

TEST(ChannelBatch, EmptySceneReproducesStaticChannelExactly) {
  Fixture fx(9, labLocation(1), 3);
  FlatScene fs;
  fs.build(fx.model, {});
  const double lambda = fx.model.carrier().wavelengthM();
  const double k = fx.model.carrier().waveNumber();
  for (std::size_t i = 0; i < 9; ++i) {
    const auto fast = evaluateTagFast(fx.batch, 0, i, fs, lambda, k);
    const Complex expect = fx.caches[0][i].los + fx.caches[0][i].reflections;
    // With no dynamic terms the fast path is pure loads and one exact
    // sqrt(1.0) multiply: bit-identical to the cached static channel.
    EXPECT_EQ(fast.forward.real(), expect.real()) << "tag " << i;
    EXPECT_EQ(fast.forward.imag(), expect.imag()) << "tag " << i;
    EXPECT_EQ(fast.detune, 1.0);
  }
}

}  // namespace
}  // namespace rfipad::rf
