#include "rf/noise.hpp"

#include <gtest/gtest.h>

namespace rfipad::rf {
namespace {

TEST(Noise, PhaseStdDecreasesWithRxPower) {
  const NoiseModel model;
  const double weak = model.phaseStd(-75.0, 1.0, 1.0);
  const double strong = model.phaseStd(-30.0, 1.0, 1.0);
  EXPECT_GT(weak, strong);
}

TEST(Noise, PhaseStdIncreasesWithTagFlicker) {
  const NoiseModel model;
  EXPECT_GT(model.phaseStd(-40.0, 2.0, 1.0), model.phaseStd(-40.0, 0.5, 1.0));
}

TEST(Noise, PhaseStdIncreasesWithEnvFlicker) {
  const NoiseModel model;
  EXPECT_GT(model.phaseStd(-40.0, 1.0, 2.4), model.phaseStd(-40.0, 1.0, 1.0));
}

TEST(Noise, HighSnrFloorIsFlicker) {
  // At very strong rx power, thermal vanishes and flicker dominates.
  const NoiseModel model;
  const double s = model.phaseStd(0.0, 1.0, 1.0);
  EXPECT_NEAR(s, model.params().base_flicker_rad, 0.01);
}

TEST(Noise, RssStdBehaviour) {
  const NoiseModel model;
  EXPECT_GT(model.rssStdDb(-75.0, 1.0, 1.0), model.rssStdDb(-30.0, 1.0, 1.0));
  EXPECT_GT(model.rssStdDb(-40.0, 3.0, 1.0), model.rssStdDb(-40.0, 1.0, 1.0));
}

TEST(Noise, SnrClampPreventsBlowup) {
  const NoiseModel model;
  // Even absurdly weak reads stay bounded (clamped SNR).
  EXPECT_LT(model.phaseStd(-200.0, 1.0, 1.0), 3.0);
  EXPECT_GT(model.phaseStd(-200.0, 1.0, 1.0), 0.0);
}

TEST(Noise, DopplerStdFromParams) {
  NoiseParams p;
  p.doppler_noise_hz = 1.5;
  const NoiseModel model(p);
  EXPECT_DOUBLE_EQ(model.dopplerStdHz(), 1.5);
}

// Property: noise std is strictly positive across the operating envelope.
class NoiseSweep : public ::testing::TestWithParam<double> {};
TEST_P(NoiseSweep, PositiveFinite) {
  const NoiseModel model;
  const double p = GetParam();
  EXPECT_GT(model.phaseStd(p, 1.0, 1.0), 0.0);
  EXPECT_LT(model.phaseStd(p, 1.0, 1.0), 10.0);
  EXPECT_GT(model.rssStdDb(p, 1.0, 1.0), 0.0);
}
INSTANTIATE_TEST_SUITE_P(Rf, NoiseSweep,
                         ::testing::Values(-90.0, -70.0, -50.0, -30.0, -10.0));

}  // namespace
}  // namespace rfipad::rf
