#include "rf/propagation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/angles.hpp"
#include "common/units.hpp"

namespace rfipad::rf {
namespace {

const CarrierConfig kCarrier{922.38e6};

TEST(Carrier, WavelengthAt922MHz) {
  EXPECT_NEAR(kCarrier.wavelengthM(), 0.325, 0.001);
}

TEST(FreeSpace, AmplitudeFollowsInverseDistance) {
  const Complex h1 = freeSpaceFactor(1.0, kCarrier);
  const Complex h2 = freeSpaceFactor(2.0, kCarrier);
  EXPECT_NEAR(std::abs(h1) / std::abs(h2), 2.0, 1e-9);
}

TEST(FreeSpace, PhaseIsMinusKd) {
  const double d = 0.5;
  const Complex h = freeSpaceFactor(d, kCarrier);
  EXPECT_NEAR(wrapPi(std::arg(h) + kCarrier.waveNumber() * d), 0.0, 1e-9);
}

TEST(FreeSpace, FriisPowerBudget) {
  // Friis: P_r/P_t = G_t·G_r·(λ/4πd)².  Verify for isotropic endpoints.
  const double d = 2.0;
  const Complex h = freeSpaceFactor(d, kCarrier);
  const double path_loss_db = -linearToDb(std::norm(h));
  // λ = 0.325 m, d = 2 m → 20·log10(4πd/λ) ≈ 37.7 dB.
  EXPECT_NEAR(path_loss_db, 37.7, 0.2);
}

TEST(FreeSpace, NearFieldClamped) {
  // Distances below 1 cm clamp rather than blow up.
  EXPECT_EQ(std::abs(freeSpaceFactor(0.0, kCarrier)),
            std::abs(freeSpaceFactor(0.01, kCarrier)));
}

TEST(LosGain, IncludesGainsAndPolarisation) {
  const DirectionalAntenna ant({0, 0, 0}, {0, 0, 1}, 8.0);
  const Vec3 rx{0, 0, 2.0};
  const Complex h = losGain(ant, rx, 1.64, 0.5, kCarrier);
  const double expected =
      std::sqrt(dbToLinear(8.0) * 1.64 * 0.5) * std::abs(freeSpaceFactor(2.0, kCarrier));
  EXPECT_NEAR(std::abs(h), expected, 1e-12);
}

TEST(LosGain, PaperLinkBudgetAtTwoMetres) {
  // §IV-B1: a tag 2 m from the reader antenna shows ≈ −41 dBm backscatter
  // at 30 dBm TX.  One-way: P_inc = P_t·|h|²; round trip with modulation
  // efficiency ~0.1 gives ≈ −41 dBm.
  const DirectionalAntenna ant({0, 0, 0}, {0, 0, 1}, 8.0);
  const Complex h = losGain(ant, {0, 0, 2.0}, 1.64, 0.5, kCarrier);
  const double tx_w = dbmToWatts(30.0);
  const double fwd2 = std::norm(h);
  const double backscatter_dbm = wattsToDbm(tx_w * fwd2 * fwd2 * 0.1);
  EXPECT_NEAR(backscatter_dbm, -41.0, 3.0);
}

TEST(LosGain, RejectsNegativeGain) {
  const DirectionalAntenna ant({0, 0, 0}, {0, 0, 1}, 8.0);
  EXPECT_THROW(losGain(ant, {0, 0, 1}, -1.0, 0.5, kCarrier),
               std::invalid_argument);
}

TEST(ScatteredGain, DecaysWithBothLegs) {
  const DirectionalAntenna ant({0, 0, -0.32}, {0, 0, 1}, 8.0);
  const Vec3 tag{0, 0, 0};
  const Complex near = scatteredGain(ant, {0, 0, 0.04}, 0.01, 0.0, tag, 1.64,
                                     0.5, kCarrier);
  const Complex far = scatteredGain(ant, {0.2, 0, 0.04}, 0.01, 0.0, tag, 1.64,
                                    0.5, kCarrier);
  EXPECT_GT(std::abs(near), std::abs(far));
}

TEST(ScatteredGain, ScalesWithSqrtRcs) {
  const DirectionalAntenna ant({0, 0, -0.32}, {0, 0, 1}, 8.0);
  const Vec3 tag{0, 0, 0};
  const Vec3 s{0.05, 0, 0.05};
  const Complex a = scatteredGain(ant, s, 0.01, 0.0, tag, 1.64, 0.5, kCarrier);
  const Complex b = scatteredGain(ant, s, 0.04, 0.0, tag, 1.64, 0.5, kCarrier);
  EXPECT_NEAR(std::abs(b) / std::abs(a), 2.0, 1e-9);
}

TEST(ScatteredGain, PhaseIncludesBothLegsAndReflection) {
  const DirectionalAntenna ant({0, 0, -1.0}, {0, 0, 1}, 8.0);
  const Vec3 tag{0, 0, 0};
  const Vec3 s{0, 0, 0.5};
  const double d1 = 1.5, d2 = 0.5;
  const Complex h = scatteredGain(ant, s, 0.01, 0.7, tag, 1.64, 0.5, kCarrier);
  const double expected = -kCarrier.waveNumber() * (d1 + d2) + 0.7;
  EXPECT_NEAR(wrapPi(std::arg(h) - expected), 0.0, 1e-9);
}

TEST(ScatteredGain, RejectsNegativeRcs) {
  const DirectionalAntenna ant({0, 0, 0}, {0, 0, 1}, 8.0);
  EXPECT_THROW(scatteredGain(ant, {0, 0, 1}, -0.1, 0.0, {1, 0, 0}, 1.0, 0.5,
                             kCarrier),
               std::invalid_argument);
}

// Property: the scattered path is always weaker than a LOS path of the same
// total length for realistic RCS (< 0.1 m²).
class ScatterWeaker : public ::testing::TestWithParam<double> {};
TEST_P(ScatterWeaker, ScatterBelowLos) {
  const DirectionalAntenna ant({0, 0, -0.32}, {0, 0, 1}, 8.0);
  const Vec3 tag{0, 0, 0};
  const Vec3 s{GetParam(), 0, 0.04};
  const Complex sc = scatteredGain(ant, s, 0.02, 0.0, tag, 1.64, 0.5, kCarrier);
  const Complex los = losGain(ant, tag, 1.64, 0.5, kCarrier);
  EXPECT_LT(std::abs(sc), 2.5 * std::abs(los));
}
INSTANTIATE_TEST_SUITE_P(Rf, ScatterWeaker,
                         ::testing::Values(0.02, 0.06, 0.12, 0.2, 0.3));

}  // namespace
}  // namespace rfipad::rf
