#include "rf/scatterer.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace rfipad::rf {
namespace {

PointScatterer hand(Vec3 pos) {
  PointScatterer s;
  s.position = pos;
  s.rcs_m2 = 0.01;
  s.blocks_los = true;
  s.blockage_radius = 0.05;
  s.blockage_depth_db = 8.0;
  return s;
}

TEST(Blockage, FullDepthOnlyNearReceiver) {
  // Mid-path obstruction is mild at UHF (Fresnel-zone argument)...
  const auto mid = hand({0.5, 0, 0});
  const double f_mid = blockageFactor(mid, {0, 0, 0}, {1, 0, 0});
  EXPECT_GT(f_mid, dbToLinear(-3.0));
  EXPECT_LT(f_mid, dbToLinear(-1.0));
  // ...while a hand right at the tag shadows it with the full depth.
  const auto near_rx = hand({0.99, 0, 0});
  const double f_rx = blockageFactor(near_rx, {0, 0, 0}, {1, 0, 0});
  EXPECT_NEAR(f_rx, dbToLinear(-8.0), 0.05);
}

TEST(Blockage, NegligibleFarFromSegment) {
  const auto s = hand({0.5, 0.5, 0});  // 10 blockage radii away
  const double f = blockageFactor(s, {0, 0, 0}, {1, 0, 0});
  EXPECT_GT(f, 0.999);
}

TEST(Blockage, MonotoneInClearance) {
  double prev = 0.0;
  for (double y : {0.0, 0.02, 0.04, 0.08, 0.15}) {
    const auto s = hand({0.5, y, 0});
    const double f = blockageFactor(s, {0, 0, 0}, {1, 0, 0});
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(Blockage, NonBlockingScattererIsTransparent) {
  auto s = hand({0.5, 0, 0});
  s.blocks_los = false;
  EXPECT_DOUBLE_EQ(blockageFactor(s, {0, 0, 0}, {1, 0, 0}), 1.0);
}

TEST(Blockage, ZeroDepthIsTransparent) {
  auto s = hand({0.5, 0, 0});
  s.blockage_depth_db = 0.0;
  EXPECT_DOUBLE_EQ(blockageFactor(s, {0, 0, 0}, {1, 0, 0}), 1.0);
}

TEST(Blockage, CombinedMultipliesScreens) {
  const auto a = hand({0.3, 0, 0});
  const auto b = hand({0.7, 0, 0});
  const double fa = blockageFactor(a, {0, 0, 0}, {1, 0, 0});
  const double fb = blockageFactor(b, {0, 0, 0}, {1, 0, 0});
  const double fc = combinedBlockage({a, b}, {0, 0, 0}, {1, 0, 0});
  EXPECT_NEAR(fc, fa * fb, 1e-12);
}

TEST(Blockage, EmptyListTransparent) {
  EXPECT_DOUBLE_EQ(combinedBlockage({}, {0, 0, 0}, {1, 0, 0}), 1.0);
}

}  // namespace
}  // namespace rfipad::rf
