#include "rf/coupling.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rfipad::rf {
namespace {

const CouplingParams kRef{0.005};

TEST(PairShadow, StrongInNearField) {
  // Two tags 3 cm apart, same facing: significant suppression (Fig. 11(b)).
  EXPECT_LT(pairShadowDb(0.03, TagFacing::kSame, kRef), -6.0);
}

TEST(PairShadow, NegligibleBeyondTwelveCm) {
  // §IV-B1: beyond ~12 cm (2λ/2π) the interference is nearly negligible.
  EXPECT_GT(pairShadowDb(0.13, TagFacing::kSame, kRef), -1.0);
}

TEST(PairShadow, OppositeFacingMitigates) {
  // Fig. 11(c): opposite antennas decouple the pair.
  const double same = pairShadowDb(0.03, TagFacing::kSame, kRef);
  const double opp = pairShadowDb(0.03, TagFacing::kOpposite, kRef);
  EXPECT_GT(opp, same);
  EXPECT_GT(opp, -2.0);
}

TEST(PairShadow, MonotoneInDistance) {
  double prev = -1e9;
  for (double d : {0.02, 0.04, 0.06, 0.09, 0.12, 0.2}) {
    const double s = pairShadowDb(d, TagFacing::kSame, kRef);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(PairShadow, ScalesWithRcs) {
  // §IV-B2: larger unmodulated RCS → more interference injected.
  const double small = pairShadowDb(0.06, TagFacing::kSame, {0.0012});
  const double big = pairShadowDb(0.06, TagFacing::kSame, {0.014});
  EXPECT_LT(big, small);
}

TEST(PairShadow, Validation) {
  EXPECT_THROW(pairShadowDb(-0.1, TagFacing::kSame, kRef),
               std::invalid_argument);
  EXPECT_THROW(pairShadowDb(0.1, TagFacing::kSame, {0.0}),
               std::invalid_argument);
}

TEST(ArrayShadow, GrowsWithRows) {
  // Fig. 12: more tags in the column → larger shadow.
  double prev = 1.0;
  for (int rows = 1; rows <= 5; ++rows) {
    const double s = arrayShadowDb(rows, 1, 0.06, TagFacing::kSame, kRef);
    EXPECT_LT(s, prev);
    prev = s;
  }
}

TEST(ArrayShadow, GrowsWithColumns) {
  double prev = 1.0;
  for (int cols = 1; cols <= 3; ++cols) {
    const double s = arrayShadowDb(5, cols, 0.06, TagFacing::kSame, kRef);
    EXPECT_LT(s, prev);
    prev = s;
  }
}

TEST(ArrayShadow, TagDWorstTagBBest) {
  // Fig. 12: 3 columns of Tag D drop ≈20 dB; Tag B only ≈2 dB.
  const double tag_b = arrayShadowDb(5, 3, 0.06, TagFacing::kSame, {0.0012});
  const double tag_d = arrayShadowDb(5, 3, 0.06, TagFacing::kSame, {0.014});
  EXPECT_LT(tag_d, -12.0);
  EXPECT_GT(tag_b, -4.0);
}

TEST(ArrayShadow, EmptyArrayIsZero) {
  EXPECT_DOUBLE_EQ(arrayShadowDb(0, 0, 0.06, TagFacing::kSame, kRef), 0.0);
  EXPECT_DOUBLE_EQ(arrayShadowDb(5, 0, 0.06, TagFacing::kSame, kRef), 0.0);
}

TEST(ArrayShadow, Validation) {
  EXPECT_THROW(arrayShadowDb(-1, 1, 0.06, TagFacing::kSame, kRef),
               std::invalid_argument);
  EXPECT_THROW(arrayShadowDb(1, 1, 0.0, TagFacing::kSame, kRef),
               std::invalid_argument);
}

// Parameterised sanity sweep: shadows are always ≤ 0 and finite.
class ShadowSweep
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};
TEST_P(ShadowSweep, BoundedNonPositive) {
  const auto [rows, cols, rcs] = GetParam();
  const double s = arrayShadowDb(rows, cols, 0.06, TagFacing::kSame, {rcs});
  EXPECT_LE(s, 0.0);
  EXPECT_GT(s, -60.0);
}
INSTANTIATE_TEST_SUITE_P(
    Rf, ShadowSweep,
    ::testing::Combine(::testing::Values(1, 3, 5), ::testing::Values(1, 2, 3),
                       ::testing::Values(0.0012, 0.006, 0.014)));

}  // namespace
}  // namespace rfipad::rf
