#include "rf/multipath.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rfipad::rf {
namespace {

TEST(Multipath, AnechoicHasNoReflectors) {
  const auto env = anechoic();
  EXPECT_TRUE(env.reflectors.empty());
  EXPECT_DOUBLE_EQ(env.parasitic_scale, 0.0);
  EXPECT_LT(env.flicker_scale, 1.0);
}

TEST(Multipath, FourLocationsExist) {
  for (int loc = 1; loc <= 4; ++loc) {
    const auto env = labLocation(loc);
    EXPECT_FALSE(env.name.empty());
    EXPECT_FALSE(env.reflectors.empty());
  }
}

TEST(Multipath, RejectsUnknownLocation) {
  EXPECT_THROW(labLocation(0), std::invalid_argument);
  EXPECT_THROW(labLocation(5), std::invalid_argument);
}

TEST(Multipath, Location4IsRichest) {
  // Fig. 15/16: the corner location experiences the strongest multipath.
  const auto l1 = labLocation(1);
  const auto l4 = labLocation(4);
  EXPECT_GT(l4.flicker_scale, l1.flicker_scale);
  EXPECT_GT(l4.parasitic_scale, l1.parasitic_scale);
  EXPECT_GT(l4.reflectors.size(), l1.reflectors.size());
}

TEST(Multipath, FlickerMonotoneAcrossLocations) {
  double prev = 0.0;
  for (int loc = 1; loc <= 4; ++loc) {
    const double f = labLocation(loc).flicker_scale;
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(Multipath, ReflectorsDontBlockLos) {
  // Wall images are specular contributors, not shadowing screens.
  for (int loc = 1; loc <= 4; ++loc) {
    for (const auto& r : labLocation(loc).reflectors) {
      EXPECT_FALSE(r.blocks_los);
      EXPECT_GT(r.rcs_m2, 0.0);
    }
  }
}

}  // namespace
}  // namespace rfipad::rf
