#include "rf/channel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"

namespace rfipad::rf {
namespace {

ChannelModel nlosModel(MultipathEnvironment env = anechoic()) {
  return ChannelModel(CarrierConfig{922.38e6},
                      DirectionalAntenna({0, 0, -0.32}, {0, 0, 1}, 8.0),
                      std::move(env));
}

PointScatterer handAt(Vec3 pos, double rcs = 0.012) {
  PointScatterer s;
  s.position = pos;
  s.rcs_m2 = rcs;
  s.reflection_phase = 3.14159;
  s.blocks_los = true;
  s.blockage_radius = 0.05;
  s.blockage_depth_db = 8.0;
  return s;
}

TEST(Channel, StaticChannelIsDeterministic) {
  const auto model = nlosModel();
  const TagEndpoint tag{{0.03, -0.03, 0.0}, 1.64, 0.5};
  const auto a = model.evaluate(tag, {});
  const auto b = model.evaluate(tag, {});
  EXPECT_EQ(a.forward, b.forward);
  EXPECT_DOUBLE_EQ(a.detune, 1.0);
}

TEST(Channel, CachedEvaluationMatchesDirect) {
  const auto model = nlosModel(labLocation(3));
  const TagEndpoint tag{{0.06, 0.06, 0.0}, 1.64, 0.5};
  const auto cache = model.precompute(tag);
  const ScattererList dyn = {handAt({0.05, 0.0, 0.04})};
  const auto a = model.evaluate(tag, dyn);
  const auto b = model.evaluateCached(tag, cache, dyn);
  EXPECT_NEAR(std::abs(a.forward - b.forward), 0.0, 1e-15);
  EXPECT_DOUBLE_EQ(a.detune, b.detune);
}

TEST(Channel, HandPerturbsPhase) {
  const auto model = nlosModel();
  const TagEndpoint tag{{0.0, 0.0, 0.0}, 1.64, 0.5};
  const auto quiet = model.evaluate(tag, {});
  const auto disturbed = model.evaluate(tag, {handAt({0.0, 0.0, 0.04})});
  EXPECT_GT(std::abs(std::arg(disturbed.forward) - std::arg(quiet.forward)),
            0.01);
}

TEST(Channel, HandInfluenceDecaysWithDistance) {
  const auto model = nlosModel();
  const TagEndpoint tag{{0.0, 0.0, 0.0}, 1.64, 0.5};
  const auto quiet = model.evaluate(tag, {});
  double prev = 1e9;
  for (double dx : {0.0, 0.06, 0.12, 0.24}) {
    auto h = handAt({dx, 0.0, 0.04});
    h.blockage_depth_db = 0.0;  // isolate the scattering term
    const auto snap = model.evaluate(tag, {h});
    const double delta = std::abs(snap.forward - quiet.forward);
    EXPECT_LT(delta, prev);
    prev = delta;
  }
}

TEST(Channel, DetuneTroughWhenHandOverTag) {
  const auto model = nlosModel();
  const TagEndpoint tag{{0.0, 0.0, 0.0}, 1.64, 0.5};
  const auto over = model.evaluate(tag, {handAt({0.0, 0.0, 0.035})});
  const auto beside = model.evaluate(tag, {handAt({0.12, 0.0, 0.035})});
  EXPECT_LT(over.detune, 0.8);
  EXPECT_GT(beside.detune, 0.95);
  // Detuning also rotates the reflection phase.
  EXPECT_GT(over.detunePhase(), beside.detunePhase());
}

TEST(Channel, IncidentPowerScalesWithTxPower) {
  const auto model = nlosModel();
  const TagEndpoint tag{{0.0, 0.0, 0.0}, 1.64, 0.5};
  const auto snap = model.evaluate(tag, {});
  const double p1 = model.incidentPowerW(snap, 1.0);
  const double p2 = model.incidentPowerW(snap, 2.0);
  EXPECT_NEAR(p2 / p1, 2.0, 1e-12);
}

TEST(Channel, IncidentPowerRealistic) {
  // 30 dBm, 8 dBi, 32 cm: the tag IC sees roughly +10..+20 dBm — far above
  // a −18 dBm sensitivity (forward-link margin).
  const auto model = nlosModel();
  const TagEndpoint tag{{0.0, 0.0, 0.0}, 1.64, 0.5};
  const auto snap = model.evaluate(tag, {});
  const double dbm = wattsToDbm(model.incidentPowerW(snap, dbmToWatts(30.0)));
  EXPECT_GT(dbm, 0.0);
  EXPECT_LT(dbm, 25.0);
}

TEST(Channel, BackscatterIsRoundTrip) {
  const auto model = nlosModel();
  const TagEndpoint tag{{0.0, 0.0, 0.0}, 1.64, 0.5};
  const auto snap = model.evaluate(tag, {});
  const double fwd2 = std::norm(snap.forward);
  EXPECT_NEAR(model.backscatterPowerW(snap, 1.0, 0.1), fwd2 * fwd2 * 0.1,
              1e-15);
}

TEST(Channel, StaticReflectorsShiftChannel) {
  const TagEndpoint tag{{0.0, 0.0, 0.0}, 1.64, 0.5};
  const auto quiet = nlosModel().evaluate(tag, {});
  const auto rich = nlosModel(labLocation(4)).evaluate(tag, {});
  EXPECT_GT(std::abs(quiet.forward - rich.forward), 1e-6);
}

TEST(Channel, ParasiticPathsSpreadHandInfluence) {
  // With reflectors present, a hand far from the tag leaks extra energy via
  // hand → wall → tag double bounces.  Compare two environments identical
  // except for the parasitic scale: the dynamic part of the channel must
  // differ by exactly those double-bounce terms.
  const TagEndpoint tag{{-0.12, 0.12, 0.0}, 1.64, 0.5};
  auto env_on = labLocation(4);
  auto env_off = env_on;
  env_off.parasitic_scale = 0.0;
  const auto on = nlosModel(env_on);
  const auto off = nlosModel(env_off);
  auto far_hand = handAt({0.12, -0.12, 0.3});
  far_hand.blockage_depth_db = 0.0;
  // Statics agree...
  EXPECT_LT(std::abs(on.evaluate(tag, {}).forward -
                     off.evaluate(tag, {}).forward), 1e-15);
  // ...but the hand-present channels differ by the parasitic contribution.
  EXPECT_GT(std::abs(on.evaluate(tag, {far_hand}).forward -
                     off.evaluate(tag, {far_hand}).forward), 1e-9);
}

}  // namespace
}  // namespace rfipad::rf
