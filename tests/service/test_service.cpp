// Session serving layer: command API, backpressure policies, determinism
// across pump thread counts, fault-salt reproducibility.
#include "service/session_manager.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "sim/letters.hpp"
#include "sim/scenario.hpp"

namespace rfipad::service {
namespace {

struct Rig {
  sim::Scenario scenario;
  core::StaticProfile profile;
  core::OnlineOptions online;

  explicit Rig(std::uint64_t seed = 81)
      : scenario([&] {
          sim::ScenarioConfig cfg;
          cfg.seed = seed;
          return cfg;
        }()),
        profile(core::StaticProfile::calibrate(scenario.captureStatic(5.0),
                                               25)) {
    online.engine.rows = 5;
    online.engine.cols = 5;
    for (const auto& t : scenario.array().tags())
      online.engine.tag_xy.push_back({t.position.x, t.position.y});
  }

  /// One letter capture with enough trailing quiet to close the letter.
  sim::Capture writeLetter(char letter) {
    const double hw = 0.12, hh = 0.114;
    sim::TrajectoryBuilder b(sim::defaultUser(1), scenario.forkRng(7));
    b.hold(0.4);
    for (const auto& p : sim::letterPlans(letter, hw, hh)) b.stroke(p);
    b.retract().hold(2.4);
    return scenario.capture(b.build(), sim::defaultUser(1));
  }

  SessionConfig config() const {
    SessionConfig cfg;
    cfg.profile = profile;
    cfg.online = online;
    return cfg;
  }
};

/// Cut a capture into fixed-span chunks of reports re-zeroed to t = 0.
std::vector<std::vector<reader::TagReport>> chunked(
    const sim::Capture& cap, double tick_s = 0.25) {
  const double t0 = cap.stream.startTime();
  const double dur = cap.stream.endTime() - t0;
  const std::size_t n = static_cast<std::size_t>(dur / tick_s) + 1;
  std::vector<std::vector<reader::TagReport>> chunks(n);
  for (const reader::TagReport& r : cap.stream.reports()) {
    reader::TagReport shifted = r;
    shifted.time_s = r.time_s - t0;
    const std::size_t c = std::min(
        n - 1, static_cast<std::size_t>(shifted.time_s / tick_s));
    chunks[c].push_back(shifted);
  }
  return chunks;
}

std::vector<reader::TagReport> chunkAt(double t) {
  reader::TagReport r;
  r.time_s = t;
  return {r};
}

std::string lettersOf(const std::vector<LetterEvent>& events) {
  std::string out;
  for (const auto& ev : events) out.push_back(ev.letter);
  return out;
}

/// Ground truth for the serving path: a plain OnlineRecognizer fed the very
/// same chunk sequence.  The service must add no distortion of its own
/// (classifier accuracy itself is test_online/test_classifier territory).
std::string directLetters(
    const Rig& rig, const std::vector<std::vector<reader::TagReport>>& chunks) {
  core::OnlineRecognizer rec(rig.profile, rig.online);
  std::string letters;
  rec.onLetter([&](char c, const std::vector<core::StrokeEvent>&) {
    letters.push_back(c);
  });
  for (const auto& chunk : chunks)
    for (const auto& r : chunk) rec.push(r);
  rec.flush();
  return letters;
}

TEST(Service, AttachIngestPumpEmitsLetter) {
  Rig rig;
  SessionManager manager({/*num_shards=*/4});
  const SessionId id = manager.attach(rig.config());
  ASSERT_NE(id, kNoSession);
  EXPECT_EQ(manager.sessionCount(), 1u);

  const auto chunks = chunked(rig.writeLetter('C'));
  const std::string expected = directLetters(rig, chunks);
  ASSERT_EQ(expected.size(), 1u);  // one letter was written, one comes out
  std::string letters;
  for (const auto& chunk : chunks) {
    ASSERT_TRUE(manager.ingest(id, chunk));
    manager.pump();
    letters += lettersOf(manager.poll(id));
  }
  bool found = false;
  letters += lettersOf(manager.detach(id, &found));
  EXPECT_TRUE(found);
  EXPECT_EQ(letters, expected);
  EXPECT_EQ(manager.sessionCount(), 0u);
}

TEST(Service, PerSessionLettersIdenticalAcrossPumpThreadCounts) {
  Rig rig;
  const auto cap_c = rig.writeLetter('C');
  const auto cap_l = rig.writeLetter('L');
  const std::vector<std::vector<std::vector<reader::TagReport>>> feeds = {
      chunked(cap_c), chunked(cap_l)};

  auto run = [&](int threads) {
    SessionManager manager({/*num_shards=*/4, /*queue_capacity=*/256,
                            OverflowPolicy::kRejectNew, threads});
    std::vector<SessionId> ids;
    for (int s = 0; s < 12; ++s) ids.push_back(manager.attach(rig.config()));
    std::vector<std::string> letters(ids.size());
    std::size_t rounds = 0;
    for (const auto& feed : feeds) rounds = std::max(rounds, feed.size());
    for (std::size_t r = 0; r < rounds; ++r) {
      for (std::size_t s = 0; s < ids.size(); ++s) {
        const auto& feed = feeds[s % feeds.size()];
        if (r < feed.size()) {
          EXPECT_TRUE(manager.ingest(ids[s], feed[r]));
        }
      }
      manager.pump();
      for (std::size_t s = 0; s < ids.size(); ++s)
        letters[s] += lettersOf(manager.poll(ids[s]));
    }
    for (std::size_t s = 0; s < ids.size(); ++s)
      letters[s] += lettersOf(manager.detach(ids[s]));
    return letters;
  };

  const auto one = run(1);
  const auto eight = run(8);
  EXPECT_EQ(one, eight);
  const std::vector<std::string> expected = {directLetters(rig, feeds[0]),
                                             directLetters(rig, feeds[1])};
  ASSERT_EQ(expected[0].size(), 1u);
  ASSERT_EQ(expected[1].size(), 1u);
  for (std::size_t s = 0; s < one.size(); ++s) {
    EXPECT_EQ(one[s], expected[s % 2]) << "session " << s;
  }
}

TEST(Service, RejectNewPolicyRefusesWhenFull) {
  Rig rig;
  SessionManager manager({/*num_shards=*/1, /*queue_capacity=*/2,
                          OverflowPolicy::kRejectNew});
  const SessionId id = manager.attach(rig.config());
  const std::vector<reader::TagReport> chunk = chunkAt(0.1);

  EXPECT_TRUE(manager.ingest(id, chunk));
  EXPECT_TRUE(manager.ingest(id, chunk));
  EXPECT_FALSE(manager.ingest(id, chunk));  // full → rejected

  ServiceStats stats;
  ASSERT_TRUE(manager.stats(kNoSession, stats));
  EXPECT_EQ(stats.queue.enqueued, 2u);
  EXPECT_EQ(stats.queue.rejected_full, 1u);
  EXPECT_EQ(stats.queue.dropped_oldest, 0u);
  EXPECT_EQ(stats.queue.high_watermark, 2u);

  manager.pump();
  ASSERT_TRUE(manager.stats(kNoSession, stats));
  EXPECT_EQ(stats.queue.chunks_processed, 2u);
  // The queue drained; new chunks are admitted again.
  EXPECT_TRUE(manager.ingest(id, chunk));
}

TEST(Service, DropOldestPolicyEvictsButAdmits) {
  Rig rig;
  SessionManager manager({/*num_shards=*/1, /*queue_capacity=*/2,
                          OverflowPolicy::kDropOldest});
  const SessionId id = manager.attach(rig.config());

  EXPECT_TRUE(manager.ingest(id, chunkAt(0.1)));
  EXPECT_TRUE(manager.ingest(id, chunkAt(0.2)));
  EXPECT_TRUE(manager.ingest(id, chunkAt(0.3)));  // evicts the 0.1 chunk

  ServiceStats stats;
  ASSERT_TRUE(manager.stats(kNoSession, stats));
  EXPECT_EQ(stats.queue.enqueued, 3u);
  EXPECT_EQ(stats.queue.dropped_oldest, 1u);
  EXPECT_EQ(stats.queue.rejected_full, 0u);

  manager.pump();
  ASSERT_TRUE(manager.stats(kNoSession, stats));
  EXPECT_EQ(stats.queue.chunks_processed, 2u);
  EXPECT_EQ(stats.queue.reports_processed, 2u);
}

TEST(Service, IngestToUnknownSessionIsCountedAtPump) {
  Rig rig;
  SessionManager manager({/*num_shards=*/1});
  (void)manager.attach(rig.config());
  // Enqueue under an id that was never attached: admitted to the queue
  // (existence is a shard-state question), counted when the pump cannot
  // route it.
  EXPECT_TRUE(manager.ingest(12345, chunkAt(0.1)));
  manager.pump();
  ServiceStats stats;
  ASSERT_TRUE(manager.stats(kNoSession, stats));
  EXPECT_EQ(stats.queue.rejected_unknown_session, 1u);
  EXPECT_EQ(stats.queue.chunks_processed, 0u);
}

TEST(Service, CommandApiRoutesAndReportsErrors) {
  Rig rig;
  SessionManager manager({/*num_shards=*/2});

  CommandResult attach = manager.execute(AttachCmd{rig.config()});
  ASSERT_TRUE(attach.ok);
  ASSERT_NE(attach.session, kNoSession);

  fault::FaultPlan plan;
  plan.missread.p_good_to_bad = 0.05;
  EXPECT_TRUE(manager.execute(ConfigureCmd{attach.session, plan, 9}).ok);
  EXPECT_TRUE(manager.execute(SubscribeCmd{attach.session, false}).ok);

  CommandResult stats = manager.execute(StatsCmd{kNoSession});
  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(stats.stats.sessions_active, 1u);
  EXPECT_EQ(stats.stats.sessions_attached, 1u);

  CommandResult bad = manager.execute(DetachCmd{777});
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());

  CommandResult detach = manager.execute(DetachCmd{attach.session});
  EXPECT_TRUE(detach.ok);
  EXPECT_EQ(manager.execute(StatsCmd{kNoSession}).stats.sessions_active, 0u);
}

TEST(Service, SubscribeOffDropsEventsButCountsLetters) {
  Rig rig;
  SessionManager manager({/*num_shards=*/1});
  const SessionId id = manager.attach(rig.config());
  ASSERT_TRUE(manager.subscribe(id, false));

  for (const auto& chunk : chunked(rig.writeLetter('C'))) {
    ASSERT_TRUE(manager.ingest(id, chunk));
    manager.pump();
  }
  EXPECT_TRUE(manager.poll(id).empty());
  ServiceStats stats;
  ASSERT_TRUE(manager.stats(id, stats));
  EXPECT_EQ(stats.letters_emitted, 1u);
}

TEST(Service, FaultSaltGivesReproducibleDegradation) {
  Rig rig;
  fault::FaultPlan plan;
  plan.missread.p_good_to_bad = 0.02;
  plan.missread.drop_prob_bad = 0.9;

  const auto chunks = chunked(rig.writeLetter('L'));
  auto run = [&](std::uint64_t salt) {
    SessionManager manager({/*num_shards=*/1});
    SessionConfig cfg = rig.config();
    cfg.fault = plan;
    cfg.fault_salt = salt;
    const SessionId id = manager.attach(std::move(cfg));
    for (const auto& chunk : chunks) {
      EXPECT_TRUE(manager.ingest(id, chunk));
      manager.pump();
    }
    ServiceStats stats;
    EXPECT_TRUE(manager.stats(id, stats));
    manager.detach(id);
    return stats.online.accepted;
  };

  const auto a1 = run(17);
  const auto a2 = run(17);
  const auto b = run(18);
  EXPECT_EQ(a1, a2);  // same salt → bit-identical degradation
  EXPECT_NE(a1, b);   // different salt → a different loss realisation
  // Degradation really removed reports vs the clean feed.
  std::size_t clean = 0;
  for (const auto& chunk : chunks) clean += chunk.size();
  EXPECT_LT(a1, clean);
}

TEST(Service, ServingNeverConstructsTransientPools) {
  Rig rig;
  const auto chunks = chunked(rig.writeLetter('C'));
  SessionManager manager({/*num_shards=*/4, /*queue_capacity=*/256,
                          OverflowPolicy::kRejectNew, /*threads=*/8});
  const SessionId id = manager.attach(rig.config());
  parallelFor(8, 2, [](std::size_t) {});  // warm the shared pool
  const std::uint64_t before = ThreadPool::constructedCount();
  for (const auto& chunk : chunks) {
    ASSERT_TRUE(manager.ingest(id, chunk));
    manager.pump();
  }
  manager.flushAll();
  EXPECT_EQ(ThreadPool::constructedCount(), before);
}

}  // namespace
}  // namespace rfipad::service
