// Persistent pump runtime (service/pump_runtime.hpp): fixed disjoint
// shard ownership, park/wake handshake, letters bit-identical to the
// caller-driven pump at any worker count, and coherent stats snapshots
// while producers hammer ingest — all under the sanitizer presets via the
// `san` label (under tsan the real check is that no race is reported).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "service/pump_runtime.hpp"
#include "service/session_manager.hpp"
#include "sim/letters.hpp"
#include "sim/scenario.hpp"

namespace rfipad::service {
namespace {

struct Rig {
  sim::Scenario scenario;
  core::StaticProfile profile;
  core::OnlineOptions online;

  explicit Rig(std::uint64_t seed = 83)
      : scenario([&] {
          sim::ScenarioConfig cfg;
          cfg.seed = seed;
          return cfg;
        }()),
        profile(core::StaticProfile::calibrate(scenario.captureStatic(5.0),
                                               25)) {
    online.engine.rows = 5;
    online.engine.cols = 5;
    for (const auto& t : scenario.array().tags())
      online.engine.tag_xy.push_back({t.position.x, t.position.y});
  }

  sim::Capture writeLetter(char letter) {
    const double hw = 0.75 * scenario.padHalfExtent();
    const double hh = 0.95 * scenario.padHalfExtent();
    sim::TrajectoryBuilder b(sim::defaultUser(1), scenario.forkRng(7));
    b.hold(0.4);
    for (const auto& p : sim::letterPlans(letter, hw, hh)) b.stroke(p);
    b.retract().hold(2.4);
    return scenario.capture(b.build(), sim::defaultUser(1));
  }

  SessionConfig config() const {
    SessionConfig cfg;
    cfg.profile = profile;
    cfg.online = online;
    return cfg;
  }
};

std::vector<std::vector<reader::TagReport>> chunked(
    const reader::SampleStream& stream, double tick_s = 0.25) {
  const double t0 = stream.startTime();
  const double dur = stream.endTime() - t0;
  const std::size_t n = static_cast<std::size_t>(dur / tick_s) + 1;
  std::vector<std::vector<reader::TagReport>> chunks(n);
  for (const reader::TagReport& r : stream.reports()) {
    reader::TagReport shifted = r;
    shifted.time_s = r.time_s - t0;
    const std::size_t c = std::min(
        n - 1, static_cast<std::size_t>(shifted.time_s / tick_s));
    chunks[c].push_back(shifted);
  }
  return chunks;
}

std::string lettersOf(const std::vector<LetterEvent>& events) {
  std::string out;
  for (const auto& ev : events) out.push_back(ev.letter);
  return out;
}

PumpRuntimeOptions fastLadder(int workers) {
  PumpRuntimeOptions opts;
  opts.workers = workers;
  opts.spin_passes = 2;
  opts.yield_passes = 2;
  return opts;
}

TEST(PumpRuntime, OwnershipIsFixedDisjointAndDerivedFromShardId) {
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<Shard*> raw;
  for (int i = 0; i < 8; ++i) {
    shards.push_back(std::make_unique<Shard>(ShardOptions{}));
    raw.push_back(shards.back().get());
  }
  PumpRuntime runtime(raw, fastLadder(3));
  ASSERT_EQ(runtime.workerCount(), 3u);
  for (std::size_t s = 0; s < raw.size(); ++s)
    EXPECT_EQ(runtime.ownerOf(s), s % 3u);
}

TEST(PumpRuntime, WorkerCountIsCappedAtShardCount) {
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<Shard*> raw;
  for (int i = 0; i < 2; ++i) {
    shards.push_back(std::make_unique<Shard>(ShardOptions{}));
    raw.push_back(shards.back().get());
  }
  PumpRuntime runtime(raw, fastLadder(16));
  EXPECT_EQ(runtime.workerCount(), 2u);
}

TEST(PumpRuntime, IdleWorkersParkAndNotifyWakesThem) {
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<Shard*> raw;
  for (int i = 0; i < 2; ++i) {
    shards.push_back(std::make_unique<Shard>(ShardOptions{}));
    raw.push_back(shards.back().get());
  }
  PumpRuntime runtime(raw, fastLadder(2));

  // With nothing enqueued the workers exhaust the ladder and park.
  while (runtime.parkedWorkers() < 2) std::this_thread::yield();
  EXPECT_GE(runtime.stats().parks, 2u);

  // A chunk for an unknown session still exercises the full drain path
  // (counted as rejected_unknown_session → processedChunks moves).
  ASSERT_TRUE(raw[1]->enqueue(SessionId{42}, {}));
  runtime.notify(1);
  while (raw[1]->processedChunks() < 1) std::this_thread::yield();
  EXPECT_GE(runtime.stats().wakeups, 1u);

  // The woken worker drains dry and eventually parks again.
  while (runtime.parkedWorkers() < 2) std::this_thread::yield();
  runtime.stop();
  EXPECT_EQ(runtime.parkedWorkers(), 0u);

  ServiceStats s;
  ASSERT_TRUE(raw[1]->stats(kNoSession, s));
  EXPECT_EQ(s.queue.enqueued, 1u);
  EXPECT_EQ(s.queue.rejected_unknown_session, 1u);
}

TEST(PumpRuntime, StopIsIdempotentAndConstructionIsCounted) {
  std::vector<std::unique_ptr<Shard>> shards;
  shards.push_back(std::make_unique<Shard>(ShardOptions{}));
  const std::uint64_t before = PumpRuntime::constructedCount();
  PumpRuntime runtime({shards[0].get()}, fastLadder(1));
  EXPECT_EQ(PumpRuntime::constructedCount(), before + 1);
  runtime.stop();
  runtime.stop();
  EXPECT_EQ(PumpRuntime::constructedCount(), before + 1);
}

// The tentpole determinism claim: per-session letters are bit-identical
// whether shards are drained by the caller-driven pump() or by the
// runtime at any worker count — ownership is per shard, FIFO per ring.
TEST(PumpRuntime, LettersMatchCallerDrivenPumpAtAnyWorkerCount) {
  Rig rig;
  constexpr int kSessions = 6;
  std::vector<std::vector<std::vector<reader::TagReport>>> traffic;
  for (int s = 0; s < kSessions; ++s)
    traffic.push_back(chunked(rig.writeLetter("ABCHLU"[s]).stream));

  const auto serve = [&](int pump_workers) -> std::vector<std::string> {
    SessionManager manager({/*num_shards=*/4, /*queue_capacity=*/1024,
                            OverflowPolicy::kRejectNew, /*threads=*/1});
    std::vector<SessionId> ids;
    for (int s = 0; s < kSessions; ++s) ids.push_back(manager.attach(rig.config()));
    if (pump_workers > 0) manager.startPumping(pump_workers);
    std::vector<std::uint64_t> targets(manager.numShards(), 0);
    for (int s = 0; s < kSessions; ++s) {
      const SessionId id = ids[static_cast<std::size_t>(s)];
      for (const auto& chunk : traffic[static_cast<std::size_t>(s)]) {
        EXPECT_TRUE(manager.ingest(id, chunk));
        ++targets[manager.shardOf(id)];
      }
    }
    if (pump_workers > 0) {
      for (std::size_t g = 0; g < manager.numShards(); ++g)
        while (manager.processedChunks(g) < targets[g])
          std::this_thread::yield();
      const core::PumpStats ps = manager.pumpStats();
      EXPECT_EQ(ps.workers,
                std::min<std::uint64_t>(static_cast<std::uint64_t>(pump_workers),
                                        manager.numShards()));
      manager.stopPumping();
    } else {
      manager.pump();
    }
    std::vector<std::string> letters;
    for (int s = 0; s < kSessions; ++s)
      letters.push_back(lettersOf(
          manager.detach(ids[static_cast<std::size_t>(s)])));
    return letters;
  };

  const std::vector<std::string> caller_driven = serve(0);
  for (int s = 0; s < kSessions; ++s)
    EXPECT_FALSE(caller_driven[static_cast<std::size_t>(s)].empty())
        << "session " << s << " recognised nothing";
  for (const int workers : {1, 2, 3}) {
    EXPECT_EQ(serve(workers), caller_driven) << "workers=" << workers;
  }
}

// Satellite: stats() snapshots taken while producers and the runtime race
// must stay internally coherent — the consumer tallies are read under the
// shard lock and the ring counters after, so every snapshot satisfies
// processed + unknown <= enqueued (the old two-lock read could tear).
TEST(PumpRuntime, StatsSnapshotsStayCoherentUnderIngestHammer) {
  Rig rig;
  const auto chunks = chunked(rig.writeLetter('C').stream);
  constexpr int kProducers = 4;
  constexpr int kRounds = 6;

  SessionManager manager({/*num_shards=*/4, /*queue_capacity=*/2048,
                          OverflowPolicy::kRejectNew, /*threads=*/1});
  std::vector<SessionId> ids;
  for (int p = 0; p < kProducers; ++p) ids.push_back(manager.attach(rig.config()));
  manager.startPumping(2);

  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const SessionId id = ids[static_cast<std::size_t>(p)];
      for (int round = 0; round < kRounds; ++round)
        for (const auto& chunk : chunks)
          EXPECT_TRUE(manager.ingest(id, chunk));
    });
  }
  std::thread reader([&] {
    std::uint64_t snapshots = 0;
    while (!done.load(std::memory_order_acquire) || snapshots < 100) {
      ServiceStats stats;
      ASSERT_TRUE(manager.stats(kNoSession, stats));
      ASSERT_LE(stats.queue.chunks_processed +
                    stats.queue.rejected_unknown_session,
                stats.queue.enqueued);
      ASSERT_EQ(stats.queue.rejected_full, 0u);
      ASSERT_EQ(stats.queue.dropped_oldest, 0u);
      ++snapshots;
    }
  });
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  // Quiesce: wait for every admitted chunk to be accounted, then the
  // identity is exact.
  const std::uint64_t total =
      static_cast<std::uint64_t>(kProducers) * kRounds * chunks.size();
  std::vector<std::uint64_t> targets(manager.numShards(), 0);
  for (int p = 0; p < kProducers; ++p)
    targets[manager.shardOf(ids[static_cast<std::size_t>(p)])] +=
        static_cast<std::uint64_t>(kRounds) * chunks.size();
  for (std::size_t g = 0; g < manager.numShards(); ++g)
    while (manager.processedChunks(g) < targets[g]) std::this_thread::yield();
  manager.stopPumping();

  ServiceStats stats;
  ASSERT_TRUE(manager.stats(kNoSession, stats));
  EXPECT_EQ(stats.queue.enqueued, total);
  EXPECT_EQ(stats.queue.chunks_processed, total);
}

}  // namespace
}  // namespace rfipad::service
