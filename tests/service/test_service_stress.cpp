// Sanitizer stress for the serving layer's concurrency seams (run under
// the tsan preset via the `san` label): many producer threads fan chunks
// into the sharded SessionManager while concurrent pumps and attach/detach
// churn run against the same shards, plus the multi-reader
// ConcurrentStreamSink fan-in feeding a served session.
//
// Assertions are deliberately about *accounting identities* and per-session
// determinism — under tsan the real check is that no data race is reported.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "reader/sample_stream.hpp"
#include "service/session_manager.hpp"
#include "sim/letters.hpp"
#include "sim/scenario.hpp"

namespace rfipad::service {
namespace {

struct Rig {
  sim::Scenario scenario;
  core::StaticProfile profile;
  core::OnlineOptions online;

  explicit Rig(std::uint64_t seed = 83)
      : scenario([&] {
          sim::ScenarioConfig cfg;
          cfg.seed = seed;
          return cfg;
        }()),
        profile(core::StaticProfile::calibrate(scenario.captureStatic(5.0),
                                               25)) {
    online.engine.rows = 5;
    online.engine.cols = 5;
    for (const auto& t : scenario.array().tags())
      online.engine.tag_xy.push_back({t.position.x, t.position.y});
  }

  sim::Capture writeLetter(char letter) {
    const double hw = 0.75 * scenario.padHalfExtent();
    const double hh = 0.95 * scenario.padHalfExtent();
    sim::TrajectoryBuilder b(sim::defaultUser(1), scenario.forkRng(7));
    b.hold(0.4);
    for (const auto& p : sim::letterPlans(letter, hw, hh)) b.stroke(p);
    b.retract().hold(2.4);
    return scenario.capture(b.build(), sim::defaultUser(1));
  }

  SessionConfig config() const {
    SessionConfig cfg;
    cfg.profile = profile;
    cfg.online = online;
    return cfg;
  }
};

std::vector<std::vector<reader::TagReport>> chunked(
    const reader::SampleStream& stream, double tick_s = 0.25) {
  const double t0 = stream.startTime();
  const double dur = stream.endTime() - t0;
  const std::size_t n = static_cast<std::size_t>(dur / tick_s) + 1;
  std::vector<std::vector<reader::TagReport>> chunks(n);
  for (const reader::TagReport& r : stream.reports()) {
    reader::TagReport shifted = r;
    shifted.time_s = r.time_s - t0;
    const std::size_t c = std::min(
        n - 1, static_cast<std::size_t>(shifted.time_s / tick_s));
    chunks[c].push_back(shifted);
  }
  return chunks;
}

std::string lettersOf(const std::vector<LetterEvent>& events) {
  std::string out;
  for (const auto& ev : events) out.push_back(ev.letter);
  return out;
}

/// What a plain OnlineRecognizer makes of the same chunk sequence — the
/// serving path must reproduce it exactly, concurrency notwithstanding.
std::string directLetters(
    const Rig& rig, const std::vector<std::vector<reader::TagReport>>& chunks) {
  core::OnlineRecognizer rec(rig.profile, rig.online);
  std::string letters;
  rec.onLetter([&](char c, const std::vector<core::StrokeEvent>&) {
    letters.push_back(c);
  });
  for (const auto& chunk : chunks)
    for (const auto& r : chunk) rec.push(r);
  rec.flush();
  return letters;
}

TEST(ServiceStress, ProducersPumpsAndChurnInterleave) {
  constexpr int kProducers = 8;
  constexpr int kPumpers = 2;
  constexpr int kChurners = 2;
  constexpr int kChurnRounds = 20;

  Rig rig;
  const auto chunks = chunked(rig.writeLetter('C').stream);

  SessionManager manager({/*num_shards=*/4, /*queue_capacity=*/4096,
                          OverflowPolicy::kDropOldest, /*threads=*/2});
  std::vector<SessionId> ids;
  for (int p = 0; p < kProducers; ++p) ids.push_back(manager.attach(rig.config()));

  std::atomic<bool> done{false};
  std::vector<std::thread> threads;

  // Producers: each owns one stable session and streams the letter into it
  // (single producer per session → per-session FIFO is preserved no matter
  // how pumps interleave).
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      const SessionId id = ids[static_cast<std::size_t>(p)];
      for (const auto& chunk : chunks) {
        EXPECT_TRUE(manager.ingest(id, chunk));
        if (p % 2 == 0) manager.pumpShard(manager.shardOf(id));
      }
    });
  }
  // Pumpers: sweep every shard until the producers are done.
  for (int q = 0; q < kPumpers; ++q) {
    threads.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        manager.pump();
        std::this_thread::yield();
      }
    });
  }
  // Churners: transient sessions attach, ingest, pump, detach — hammering
  // the shard state maps concurrently with the stable traffic.
  for (int c = 0; c < kChurners; ++c) {
    threads.emplace_back([&, c] {
      for (int round = 0; round < kChurnRounds; ++round) {
        const SessionId id = manager.attach(rig.config());
        EXPECT_NE(id, kNoSession);
        EXPECT_TRUE(manager.ingest(
            id,
            chunks[static_cast<std::size_t>(c + round) % chunks.size()]));
        manager.pump();
        ServiceStats stats;
        EXPECT_TRUE(manager.stats(id, stats));
        manager.detach(id);
      }
    });
  }

  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  done.store(true, std::memory_order_release);
  for (std::size_t t = kProducers; t < threads.size(); ++t) threads[t].join();
  manager.pump();

  // Accounting identity: every admitted chunk was either processed, evicted
  // (counted), or arrived for a session already detached (counted).
  ServiceStats stats;
  ASSERT_TRUE(manager.stats(kNoSession, stats));
  EXPECT_EQ(stats.queue.enqueued,
            stats.queue.chunks_processed + stats.queue.dropped_oldest +
                stats.queue.rejected_unknown_session);
  EXPECT_EQ(stats.queue.rejected_full, 0u);
  // Capacity 4096 never filled → stable sessions lost nothing, so each
  // recognises exactly its letter despite the concurrent churn.
  EXPECT_EQ(stats.queue.dropped_oldest, 0u);
  const std::string expected = directLetters(rig, chunks);
  for (SessionId id : ids) {
    const std::string letters = lettersOf(manager.detach(id));
    EXPECT_EQ(letters, expected) << "session " << id;
  }
  EXPECT_EQ(manager.sessionCount(), 0u);
}

TEST(ServiceStress, ConcurrentSinkFanInFeedsAServedSession) {
  constexpr int kProducers = 8;

  Rig rig;
  const sim::Capture cap = rig.writeLetter('C');
  const auto reports = cap.stream.reports();

  // Multi-reader fan-in: 8 pump threads push interleaved slices of the
  // capture into one sink; the merged stream must come out time-sorted.
  reader::ConcurrentStreamSink sink(cap.stream.numTags());
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = static_cast<std::size_t>(p); i < reports.size();
           i += kProducers)
        sink.push(reports[i]);
    });
  }
  for (auto& t : producers) t.join();

  const reader::SampleStream merged = sink.take();
  ASSERT_EQ(merged.size(), reports.size());
  double prev = merged.startTime();
  for (const reader::TagReport& r : merged.reports()) {
    EXPECT_GE(r.time_s, prev);
    prev = r.time_s;
  }

  // The merged capture drives a served session end to end.
  SessionManager manager({/*num_shards=*/2});
  const SessionId id = manager.attach(rig.config());
  const auto merged_chunks = chunked(merged);
  const std::string expected = directLetters(rig, merged_chunks);
  EXPECT_FALSE(expected.empty());
  std::string letters;
  for (const auto& chunk : merged_chunks) {
    ASSERT_TRUE(manager.ingest(id, chunk));
    manager.pump();
    letters += lettersOf(manager.poll(id));
  }
  letters += lettersOf(manager.detach(id));
  EXPECT_EQ(letters, expected);
}

}  // namespace
}  // namespace rfipad::service
