#include "tag/array.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "common/angles.hpp"
#include "common/stats.hpp"

namespace rfipad::tag {
namespace {

TagArray makeDefault(std::uint64_t seed = 1) {
  Rng rng(seed);
  return TagArray(ArrayConfig{}, rng);
}

TEST(TagArray, DefaultIsPaperPrototype) {
  const auto arr = makeDefault();
  EXPECT_EQ(arr.rows(), 5);
  EXPECT_EQ(arr.cols(), 5);
  EXPECT_EQ(arr.size(), 25u);
  EXPECT_DOUBLE_EQ(arr.spacing(), 0.06);
}

TEST(TagArray, GridCenteredAtOrigin) {
  const auto arr = makeDefault();
  Vec3 sum{};
  for (const auto& t : arr.tags()) sum = sum + t.position;
  EXPECT_NEAR(sum.x, 0.0, 1e-12);
  EXPECT_NEAR(sum.y, 0.0, 1e-12);
  EXPECT_NEAR(sum.z, 0.0, 1e-12);
  // Corner tag at (−0.12, −0.12).
  EXPECT_NEAR(arr.at(0, 0).position.x, -0.12, 1e-12);
  EXPECT_NEAR(arr.at(0, 0).position.y, -0.12, 1e-12);
  EXPECT_NEAR(arr.at(4, 4).position.x, 0.12, 1e-12);
}

TEST(TagArray, RowMajorIndexing) {
  const auto arr = makeDefault();
  EXPECT_EQ(arr.indexOf(0, 0), 0u);
  EXPECT_EQ(arr.indexOf(0, 4), 4u);
  EXPECT_EQ(arr.indexOf(1, 0), 5u);
  EXPECT_EQ(arr.indexOf(4, 4), 24u);
  EXPECT_EQ(arr.at(2, 3).index, arr.indexOf(2, 3));
  EXPECT_THROW(arr.indexOf(5, 0), std::out_of_range);
  EXPECT_THROW(arr.indexOf(0, -1), std::out_of_range);
}

TEST(TagArray, UniqueEpcs) {
  const auto arr = makeDefault();
  std::set<std::string> epcs;
  for (const auto& t : arr.tags()) EXPECT_TRUE(epcs.insert(t.epc).second);
}

TEST(TagArray, AlternatingFacingCheckerboard) {
  const auto arr = makeDefault();
  for (const auto& t : arr.tags()) {
    const Facing expect =
        (t.row + t.col) % 2 == 1 ? Facing::kReverse : Facing::kForward;
    EXPECT_EQ(t.facing, expect);
  }
}

TEST(TagArray, UniformFacingWhenDisabled) {
  ArrayConfig cfg;
  cfg.alternate_facing = false;
  Rng rng(1);
  const TagArray arr(cfg, rng);
  for (const auto& t : arr.tags()) EXPECT_EQ(t.facing, Facing::kForward);
}

TEST(TagArray, PhaseDiversitySpreadsOverCircle) {
  // Fig. 4: static phases distribute irregularly within [0, 2π).
  const auto arr = makeDefault();
  double min_theta = 10.0, max_theta = -1.0;
  for (const auto& t : arr.tags()) {
    EXPECT_GE(t.theta_tag, 0.0);
    EXPECT_LT(t.theta_tag, kTwoPi);
    min_theta = std::min(min_theta, t.theta_tag);
    max_theta = std::max(max_theta, t.theta_tag);
  }
  EXPECT_GT(max_theta - min_theta, kPi);  // spread over most of the circle
}

TEST(TagArray, DiversityCanBeDisabled) {
  ArrayConfig cfg;
  cfg.tag_phase_diversity = false;
  cfg.flicker_bias_sigma = 0.0;
  Rng rng(1);
  const TagArray arr(cfg, rng);
  for (const auto& t : arr.tags()) {
    EXPECT_DOUBLE_EQ(t.theta_tag, 0.0);
    EXPECT_DOUBLE_EQ(t.flicker_bias, 1.0);
  }
}

TEST(TagArray, FlickerBiasVariesAcrossTags) {
  // Fig. 5: deviation bias differs significantly between tags.
  const auto arr = makeDefault();
  std::vector<double> biases;
  for (const auto& t : arr.tags()) biases.push_back(t.flicker_bias);
  EXPECT_GT(stddev(biases), 0.15);
  for (double b : biases) EXPECT_GT(b, 0.0);
}

TEST(TagArray, NearestTagSnapsToGrid) {
  const auto arr = makeDefault();
  EXPECT_EQ(arr.nearestTag({0.0, 0.0, 0.05}), arr.indexOf(2, 2));
  EXPECT_EQ(arr.nearestTag({-0.13, -0.11, 0.0}), arr.indexOf(0, 0));
  EXPECT_EQ(arr.nearestTag({0.125, 0.125, 0.2}), arr.indexOf(4, 4));
}

TEST(TagArray, PlateExtentMatchesPaper) {
  // §IV-B3: l ≈ 46 cm for 5 tags at 6 cm plus the 4.4 cm antenna.
  const auto arr = makeDefault();
  EXPECT_NEAR(arr.plateExtentM(), 0.284, 0.01);
}

TEST(TagArray, CouplingPenaltyNegativeAndBounded) {
  const auto arr = makeDefault();
  for (const auto& t : arr.tags()) {
    EXPECT_LE(t.coupling_penalty_db, 0.0);
    EXPECT_GT(t.coupling_penalty_db, -15.0);
  }
}

TEST(TagArray, CenterTagsMoreCoupledThanCorners) {
  const auto arr = makeDefault();
  // The centre tag has 8 neighbours; a corner only 3.
  EXPECT_LT(arr.at(2, 2).coupling_penalty_db, arr.at(0, 0).coupling_penalty_db);
}

TEST(TagArray, SameFacingArraysCoupleMore) {
  ArrayConfig alt;
  ArrayConfig same;
  same.alternate_facing = false;
  Rng r1(1), r2(1);
  const TagArray a(alt, r1);
  const TagArray b(same, r2);
  EXPECT_LT(b.at(2, 2).coupling_penalty_db, a.at(2, 2).coupling_penalty_db);
}

TEST(TagArray, Validation) {
  Rng rng(1);
  ArrayConfig bad;
  bad.rows = 0;
  EXPECT_THROW(TagArray(bad, rng), std::invalid_argument);
  bad = ArrayConfig{};
  bad.spacing_m = -0.1;
  EXPECT_THROW(TagArray(bad, rng), std::invalid_argument);
}

class GridShape : public ::testing::TestWithParam<std::pair<int, int>> {};
TEST_P(GridShape, ArbitraryDimensions) {
  const auto [rows, cols] = GetParam();
  ArrayConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  Rng rng(5);
  const TagArray arr(cfg, rng);
  EXPECT_EQ(arr.size(), static_cast<std::size_t>(rows) * cols);
  EXPECT_EQ(arr.at(rows - 1, cols - 1).index, arr.size() - 1);
}
INSTANTIATE_TEST_SUITE_P(Tag, GridShape,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 5},
                                           std::pair{5, 1}, std::pair{3, 7},
                                           std::pair{10, 10}));

}  // namespace
}  // namespace rfipad::tag
