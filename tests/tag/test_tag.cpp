#include "tag/tag.hpp"
#include "tag/tag_type.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rfipad::tag {
namespace {

TEST(TagType, AllFourModelsDistinct) {
  std::set<double> rcs;
  for (TagModel m : {TagModel::kA, TagModel::kB, TagModel::kC, TagModel::kD}) {
    const auto p = tagType(m);
    EXPECT_FALSE(p.name.empty());
    EXPECT_GT(p.rcs_m2, 0.0);
    EXPECT_TRUE(rcs.insert(p.rcs_m2).second) << "duplicate RCS";
  }
}

TEST(TagType, TagBHasSmallestRcs) {
  // §IV-B2: "Tag B (Impinj AZ-E53) is the best choice" — smallest RCS.
  const double b = tagType(TagModel::kB).rcs_m2;
  for (TagModel m : {TagModel::kA, TagModel::kC, TagModel::kD}) {
    EXPECT_LT(b, tagType(m).rcs_m2);
  }
}

TEST(TagType, TagDHasLargestRcs) {
  const double d = tagType(TagModel::kD).rcs_m2;
  for (TagModel m : {TagModel::kA, TagModel::kB, TagModel::kC}) {
    EXPECT_GT(d, tagType(m).rcs_m2);
  }
}

TEST(TagType, SensitivityInRealisticRange) {
  for (TagModel m : {TagModel::kA, TagModel::kB, TagModel::kC, TagModel::kD}) {
    const auto p = tagType(m);
    EXPECT_LT(p.ic_sensitivity_dbm, -10.0);
    EXPECT_GT(p.ic_sensitivity_dbm, -25.0);
    EXPECT_GT(p.modulation_efficiency, 0.0);
    EXPECT_LE(p.modulation_efficiency, 1.0);
  }
}

TEST(TagType, CouplingParamsForwardRcs) {
  const auto p = tagType(TagModel::kC);
  EXPECT_DOUBLE_EQ(p.couplingParams().rcs_m2, p.rcs_m2);
}

TEST(TagType, ModelNames) {
  EXPECT_STREQ(tagModelName(TagModel::kA), "Tag A");
  EXPECT_STREQ(tagModelName(TagModel::kD), "Tag D");
}

TEST(Epc, FormatIs96BitHex) {
  const std::string epc = makeEpc(7);
  EXPECT_EQ(epc.size(), 24u);  // 96 bits = 24 hex chars
  for (char c : epc) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'A' && c <= 'F')) << c;
  }
}

TEST(Epc, UniquePerIndex) {
  std::set<std::string> seen;
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(seen.insert(makeEpc(i)).second);
  }
}

TEST(Tag, EndpointReflectsTypeAndPosition) {
  Tag t;
  t.position = {0.1, -0.2, 0.0};
  t.type = tagType(TagModel::kB);
  const auto ep = t.endpoint();
  EXPECT_DOUBLE_EQ(ep.position.x, 0.1);
  EXPECT_DOUBLE_EQ(ep.gain_linear, t.type.antenna_gain);
  EXPECT_DOUBLE_EQ(ep.polarization_loss, 0.5);
}

}  // namespace
}  // namespace rfipad::tag
