// Property tests for the dispatched vector kernels: the vector tiers must
// reproduce the scalar tier bit-for-bit (the determinism contract of the
// SoA rewrite), and both must track libm within tight tolerances.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/simd_dispatch.hpp"
#include "common/vkernels.hpp"

namespace rfipad {
namespace {

// Sizes straddling the 4-lane block: empty, sub-block, exact blocks, and
// non-multiple-of-lane-width tails.
const std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 25, 33, 64, 1003};

std::vector<double> randomBatch(std::size_t n, std::uint64_t seed,
                                double lo, double hi) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

bool haveVectorTier() {
  return simd::detectTier() != simd::Tier::kScalar;
}

simd::Tier vectorTier() { return simd::detectTier(); }

TEST(VKernels, ReductionsMatchScalarTierBitwise) {
  if (!haveVectorTier()) GTEST_SKIP() << "no vector tier on this CPU";
  const simd::Tier vec = vectorTier();
  for (std::size_t n : kSizes) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      const auto x = randomBatch(n, seed * 7919 + n, -50.0, 50.0);
      EXPECT_EQ(vk::sumTier(simd::Tier::kScalar, x.data(), n),
                vk::sumTier(vec, x.data(), n))
          << "sum n=" << n << " seed=" << seed;
      EXPECT_EQ(vk::sumSquaresTier(simd::Tier::kScalar, x.data(), n),
                vk::sumSquaresTier(vec, x.data(), n))
          << "sumSquares n=" << n;
      EXPECT_EQ(vk::sumSquaredDevTier(simd::Tier::kScalar, x.data(), n, 1.25),
                vk::sumSquaredDevTier(vec, x.data(), n, 1.25))
          << "sumSquaredDev n=" << n;
      EXPECT_EQ(vk::sumSquaredDiffsTier(simd::Tier::kScalar, x.data(), n),
                vk::sumSquaredDiffsTier(vec, x.data(), n))
          << "sumSquaredDiffs n=" << n;
    }
  }
}

TEST(VKernels, SincosMatchesScalarTierBitwiseIncludingTails) {
  if (!haveVectorTier()) GTEST_SKIP() << "no vector tier on this CPU";
  const simd::Tier vec = vectorTier();
  for (std::size_t n : kSizes) {
    // Round-trip phases land in roughly ±250 rad; stress a wider range.
    const auto x = randomBatch(n, 0xabc0 + n, -1000.0, 1000.0);
    std::vector<double> ss(n), cs(n), sv(n), cv(n);
    vk::sincosArrayTier(simd::Tier::kScalar, x.data(), ss.data(), cs.data(), n);
    vk::sincosArrayTier(vec, x.data(), sv.data(), cv.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(ss[i], sv[i]) << "sin lane " << i << " of " << n;
      EXPECT_EQ(cs[i], cv[i]) << "cos lane " << i << " of " << n;
    }
  }
}

TEST(VKernels, ExpMatchesScalarTierBitwise) {
  if (!haveVectorTier()) GTEST_SKIP() << "no vector tier on this CPU";
  const simd::Tier vec = vectorTier();
  for (std::size_t n : kSizes) {
    const auto x = randomBatch(n, 0xe1 + n, -750.0, 40.0);
    std::vector<double> es(n), ev(n);
    vk::expArrayTier(simd::Tier::kScalar, x.data(), es.data(), n);
    vk::expArrayTier(vec, x.data(), ev.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(es[i], ev[i]) << "exp lane " << i << " of " << n;
  }
}

TEST(VKernels, SincosTracksLibm) {
  const auto x = randomBatch(2000, 42, -1000.0, 1000.0);
  std::vector<double> s(x.size()), c(x.size());
  vk::sincosArray(x.data(), s.data(), c.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(s[i], std::sin(x[i]), 1e-13) << "x=" << x[i];
    EXPECT_NEAR(c[i], std::cos(x[i]), 1e-13) << "x=" << x[i];
  }
}

TEST(VKernels, ExpTracksLibmRelative) {
  const auto x = randomBatch(2000, 43, -30.0, 30.0);
  std::vector<double> e(x.size());
  vk::expArray(x.data(), e.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double ref = std::exp(x[i]);
    EXPECT_NEAR(e[i], ref, std::abs(ref) * 1e-14) << "x=" << x[i];
  }
}

TEST(VKernels, ExpEdgeCases) {
  const double in[] = {0.0, -0.0, -708.5, -1000.0, 1.0};
  double out[5];
  vk::expArray(in, out, 5);
  EXPECT_EQ(out[0], 1.0);
  EXPECT_EQ(out[1], 1.0);
  EXPECT_EQ(out[2], 0.0);  // flushed below the underflow cutoff
  EXPECT_EQ(out[3], 0.0);
  EXPECT_NEAR(out[4], std::exp(1.0), 1e-15);
}

TEST(VKernels, ReductionsMatchNaiveAccumulation) {
  const auto x = randomBatch(257, 44, -5.0, 5.0);
  double s = 0.0, s2 = 0.0;
  for (double v : x) {
    s += v;
    s2 += v * v;
  }
  EXPECT_NEAR(vk::sum(x.data(), x.size()), s, 1e-10);
  EXPECT_NEAR(vk::sumSquares(x.data(), x.size()), s2, 1e-10);
  double sd = 0.0;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    const double d = x[i + 1] - x[i];
    sd += d * d;
  }
  EXPECT_NEAR(vk::sumSquaredDiffs(x.data(), x.size()), sd, 1e-10);
}

TEST(SimdDispatch, OverridePinsTier) {
  simd::setTierOverrideForTest(simd::Tier::kScalar);
  EXPECT_EQ(simd::activeTier(), simd::Tier::kScalar);
  simd::clearTierOverrideForTest();
  EXPECT_EQ(simd::activeTier(), simd::activeTier());  // stable
  EXPECT_TRUE(simd::tierCompiled(simd::Tier::kScalar));
  EXPECT_STREQ(simd::tierName(simd::Tier::kScalar), "scalar");
  EXPECT_STREQ(simd::tierName(simd::Tier::kAvx2), "avx2");
  EXPECT_STREQ(simd::tierName(simd::Tier::kNeon), "neon");
}

TEST(SimdDispatch, DetectedTierIsCompiledIn) {
  EXPECT_TRUE(simd::tierCompiled(simd::detectTier()));
}

}  // namespace
}  // namespace rfipad
