#include "common/units.hpp"

#include <gtest/gtest.h>

namespace rfipad {
namespace {

TEST(Units, DbLinearRoundTrip) {
  for (double db : {-30.0, -3.0, 0.0, 3.0, 10.0, 20.0}) {
    EXPECT_NEAR(linearToDb(dbToLinear(db)), db, 1e-9);
  }
  EXPECT_DOUBLE_EQ(dbToLinear(0.0), 1.0);
  EXPECT_NEAR(dbToLinear(3.0), 2.0, 0.01);
  EXPECT_DOUBLE_EQ(dbToLinear(10.0), 10.0);
}

TEST(Units, DbmWattsRoundTrip) {
  EXPECT_DOUBLE_EQ(dbmToWatts(0.0), 1e-3);
  EXPECT_DOUBLE_EQ(dbmToWatts(30.0), 1.0);
  EXPECT_NEAR(wattsToDbm(dbmToWatts(-41.0)), -41.0, 1e-9);
}

TEST(Units, WavelengthAtUhf) {
  // The paper's 922.38 MHz carrier: λ ≈ 32.5 cm.
  EXPECT_NEAR(wavelength(922.38e6), 0.325, 0.001);
  // And the near-field boundary it quotes: λ/2π ≈ 5.2 cm.
  EXPECT_NEAR(wavelength(922.38e6) / (2.0 * 3.14159265), 0.052, 0.001);
}

}  // namespace
}  // namespace rfipad
