#include "common/strokes.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace rfipad {
namespace {

TEST(Strokes, ThirteenDirectedMotions) {
  const auto& all = allDirectedStrokes();
  EXPECT_EQ(all.size(), 13u);  // click + 6 strokes × 2 directions
  EXPECT_EQ(all.front().kind, StrokeKind::kClick);
}

TEST(Strokes, DirectedStrokesUnique) {
  std::set<std::pair<int, int>> seen;
  for (const auto& s : allDirectedStrokes()) {
    EXPECT_TRUE(seen.insert({static_cast<int>(s.kind),
                             static_cast<int>(s.dir)}).second);
  }
}

TEST(Strokes, IndexRoundTrip) {
  const auto& all = allDirectedStrokes();
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(directedStrokeIndex(all[i]), static_cast<int>(i));
  }
}

TEST(Strokes, ClassPredicates) {
  EXPECT_TRUE(isArc(StrokeKind::kLeftArc));
  EXPECT_TRUE(isArc(StrokeKind::kRightArc));
  EXPECT_FALSE(isArc(StrokeKind::kVLine));
  EXPECT_FALSE(isArc(StrokeKind::kClick));
  EXPECT_TRUE(isLine(StrokeKind::kHLine));
  EXPECT_TRUE(isLine(StrokeKind::kSlash));
  EXPECT_FALSE(isLine(StrokeKind::kClick));
  EXPECT_FALSE(isLine(StrokeKind::kLeftArc));
}

TEST(Strokes, NamesNonEmptyAndDistinctPerDirection) {
  for (const auto& s : allDirectedStrokes()) {
    EXPECT_FALSE(directedStrokeName(s).empty());
  }
  const DirectedStroke fwd{StrokeKind::kHLine, StrokeDir::kForward};
  const DirectedStroke rev{StrokeKind::kHLine, StrokeDir::kReverse};
  EXPECT_NE(directedStrokeName(fwd), directedStrokeName(rev));
}

}  // namespace
}  // namespace rfipad
