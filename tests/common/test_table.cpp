#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace rfipad {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addRow({"b", "22"});
  const std::string s = t.toString();
  // Header first, separator second.
  std::istringstream is(s);
  std::string line;
  std::getline(is, line);
  EXPECT_NE(line.find("name"), std::string::npos);
  EXPECT_NE(line.find("value"), std::string::npos);
  std::getline(is, line);
  EXPECT_EQ(line.find_first_not_of('-'), std::string::npos);
  // Columns align: "alpha" and "b" rows put values at the same offset.
  std::string r1, r2;
  std::getline(is, r1);
  std::getline(is, r2);
  EXPECT_EQ(r1.find('1'), r2.find("22"));
}

TEST(Table, NumericRowFormatting) {
  Table t({"label", "x", "y"});
  t.addRow("row", {1.23456, 2.0}, 2);
  const std::string s = t.toString();
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("2.00"), std::string::npos);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(1.0, 0), "1");
}

}  // namespace
}  // namespace rfipad
