#include "common/rng.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace rfipad {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniformInt(0, 1000000) == b.uniformInt(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  RunningStats rs;
  for (int i = 0; i < 20000; ++i) rs.add(r.normal(5.0, 2.0));
  EXPECT_NEAR(rs.mean(), 5.0, 0.1);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.1);
}

TEST(Rng, ChanceEdgesAndRate) {
  Rng r(13);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng r(17);
  RunningStats rs;
  for (int i = 0; i < 20000; ++i) rs.add(r.exponential(3.0));
  EXPECT_NEAR(rs.mean(), 3.0, 0.15);
}

TEST(Rng, ForkedStreamsDecorrelated) {
  Rng parent(21);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniformInt(0, 1 << 30) == b.uniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace rfipad
