// Cross-tier property tests over the *composed* hot-path surfaces: the
// dispatched kernels must produce bit-identical results whichever tier the
// dispatcher lands on.  test_vkernels.cpp checks the raw reductions and
// transcendentals per tier; here the same contract is asserted one level
// up — segmenter stats, channel-gain planes, and the Otsu threshold —
// across randomized seeded batches whose lengths deliberately straddle the
// 4-lane block width (1..n, never only multiples of 4).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/simd_dispatch.hpp"
#include "common/stats.hpp"
#include "imgproc/binary_map.hpp"
#include "imgproc/graymap.hpp"
#include "rf/channel.hpp"
#include "rf/channel_batch.hpp"
#include "rf/multipath.hpp"

namespace rfipad {
namespace {

bool haveVectorTier() {
  return simd::detectTier() != simd::Tier::kScalar;
}

/// Pins the dispatcher to a tier for one scope; restores auto-detection.
class TierGuard {
 public:
  explicit TierGuard(simd::Tier t) { simd::setTierOverrideForTest(t); }
  ~TierGuard() { simd::clearTierOverrideForTest(); }
  TierGuard(const TierGuard&) = delete;
  TierGuard& operator=(const TierGuard&) = delete;
};

// Lengths straddling the 4-lane blocks: every residue mod 4, plus longer
// runs where the lane loop dominates.
const std::size_t kLengths[] = {1, 2, 3, 4, 5, 6, 7, 9, 15, 16,
                                17, 31, 33, 63, 101, 256};

TEST(SimdProperties, SegmenterStatsInvariantUnderTier) {
  if (!haveVectorTier()) GTEST_SKIP() << "no vector tier on this CPU";
  for (std::size_t n : kLengths) {
    Rng rng(9000 + n);
    std::vector<double> xs(n);
    for (auto& x : xs) x = rng.uniform(-3.0, 3.0);

    double m_s, v_s, sd_s, rms_s;
    {
      TierGuard g(simd::Tier::kScalar);
      m_s = mean(xs.data(), n);
      v_s = variance(xs.data(), n);
      sd_s = stddev(xs.data(), n);
      rms_s = rms(xs.data(), n);
    }
    double m_v, v_v, sd_v, rms_v;
    {
      TierGuard g(simd::detectTier());
      m_v = mean(xs.data(), n);
      v_v = variance(xs.data(), n);
      sd_v = stddev(xs.data(), n);
      rms_v = rms(xs.data(), n);
    }
    EXPECT_EQ(m_s, m_v) << "mean n=" << n;
    EXPECT_EQ(v_s, v_v) << "variance n=" << n;
    EXPECT_EQ(sd_s, sd_v) << "stddev n=" << n;
    EXPECT_EQ(rms_s, rms_v) << "rms n=" << n;
  }
}

TEST(SimdProperties, ChannelGainPlanesInvariantUnderTier) {
  if (!haveVectorTier()) GTEST_SKIP() << "no vector tier on this CPU";
  rf::ChannelModel model(
      rf::CarrierConfig{922.38e6},
      rf::DirectionalAntenna({0.05, -0.4, 1.2}, {0.0, 0.3, -1.0}, 8.0),
      rf::labLocation(2));
  // Scene sizes hit the empty, single, and multi-scatterer paths.
  for (std::size_t ns : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                         std::size_t{3}, std::size_t{5}}) {
    Rng rng(4000 + ns);
    rf::ScattererList scene;
    for (std::size_t j = 0; j < ns; ++j) {
      rf::PointScatterer s;
      s.position = {rng.uniform(-0.4, 0.4), rng.uniform(-0.4, 0.4),
                    rng.uniform(0.02, 0.4)};
      s.rcs_m2 = rng.uniform(0.002, 0.03);
      s.reflection_phase = rng.uniform(0.0, 6.28);
      s.blocks_los = (j % 2) == 0;
      s.blockage_radius = rng.uniform(0.03, 0.08);
      s.blockage_depth_db = rng.uniform(2.0, 9.0);
      scene.push_back(s);
    }
    rf::FlatScene fs_scalar, fs_vec;
    {
      TierGuard g(simd::Tier::kScalar);
      fs_scalar.build(model, scene);
    }
    {
      TierGuard g(simd::detectTier());
      fs_vec.build(model, scene);
    }
    ASSERT_EQ(fs_scalar.count, fs_vec.count);
    for (std::size_t s = 0; s < fs_scalar.count; ++s) {
      EXPECT_EQ(fs_scalar.gain_toward[s], fs_vec.gain_toward[s])
          << "gain_toward scatterer " << s << " scene=" << ns;
      EXPECT_EQ(fs_scalar.base[s], fs_vec.base[s])
          << "base scatterer " << s << " scene=" << ns;
    }
    ASSERT_EQ(fs_scalar.refl_weight.size(), fs_vec.refl_weight.size());
    for (std::size_t r = 0; r < fs_scalar.refl_weight.size(); ++r)
      EXPECT_EQ(fs_scalar.refl_weight[r], fs_vec.refl_weight[r])
          << "refl_weight " << r << " scene=" << ns;
  }
}

TEST(SimdProperties, OtsuThresholdInvariantUnderTier) {
  if (!haveVectorTier()) GTEST_SKIP() << "no vector tier on this CPU";
  for (std::size_t n : kLengths) {
    if (n < 2) continue;  // otsuThreshold requires at least 2 values
    Rng rng(7000 + n);
    std::vector<double> values(n);
    for (auto& v : values) v = rng.uniform(0.0, 1.0);

    double th_s, th_v;
    {
      TierGuard g(simd::Tier::kScalar);
      th_s = imgproc::otsuThreshold(values);
    }
    {
      TierGuard g(simd::detectTier());
      th_v = imgproc::otsuThreshold(values);
    }
    EXPECT_EQ(th_s, th_v) << "otsu threshold n=" << n;
  }
}

TEST(SimdProperties, GrayMapBinarizationInvariantUnderTier) {
  if (!haveVectorTier()) GTEST_SKIP() << "no vector tier on this CPU";
  // The paper's 5×5 grid plus shapes that are not lane multiples.
  const std::pair<int, int> kShapes[] = {{5, 5}, {3, 7}, {1, 9}, {6, 6}};
  for (const auto& [rows, cols] : kShapes) {
    Rng rng(1234 + static_cast<std::uint64_t>(rows * 100 + cols));
    std::vector<double> values(static_cast<std::size_t>(rows) * cols);
    for (auto& v : values) v = rng.uniform(-2.0, 5.0);
    const imgproc::GrayMap map(rows, cols, values);

    auto run = [&](simd::Tier t) {
      TierGuard g(t);
      const imgproc::GrayMap norm = map.normalized();
      const imgproc::BinaryMap bin = imgproc::otsuBinarize(norm);
      return std::pair<std::vector<double>, std::vector<imgproc::Cell>>(
          norm.values(), bin.foreground());
    };
    const auto [norm_s, fg_s] = run(simd::Tier::kScalar);
    const auto [norm_v, fg_v] = run(simd::detectTier());
    EXPECT_EQ(norm_s, norm_v) << rows << "x" << cols;
    EXPECT_EQ(fg_s, fg_v) << rows << "x" << cols;
  }
}

}  // namespace
}  // namespace rfipad
