#include "common/vec.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rfipad {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -4.0};
  EXPECT_DOUBLE_EQ((a + b).x, 4.0);
  EXPECT_DOUBLE_EQ((a + b).y, -2.0);
  EXPECT_DOUBLE_EQ((a - b).x, -2.0);
  EXPECT_DOUBLE_EQ((a * 2.0).y, 4.0);
  EXPECT_DOUBLE_EQ((2.0 * a).y, 4.0);
  EXPECT_DOUBLE_EQ((b / 2.0).x, 1.5);
}

TEST(Vec2, DotAndCross) {
  const Vec2 x{1.0, 0.0};
  const Vec2 y{0.0, 1.0};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  EXPECT_DOUBLE_EQ(x.cross(y), 1.0);
  EXPECT_DOUBLE_EQ(y.cross(x), -1.0);
  EXPECT_DOUBLE_EQ(x.dot(x), 1.0);
}

TEST(Vec2, NormAndNormalized) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  const Vec2 n = v.normalized();
  EXPECT_NEAR(n.norm(), 1.0, 1e-12);
  EXPECT_NEAR(n.x, 0.6, 1e-12);
  // Zero vector normalises to zero, not NaN.
  const Vec2 z = Vec2{}.normalized();
  EXPECT_DOUBLE_EQ(z.x, 0.0);
  EXPECT_DOUBLE_EQ(z.y, 0.0);
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-1.0, 0.5, 2.0};
  EXPECT_DOUBLE_EQ((a + b).z, 5.0);
  EXPECT_DOUBLE_EQ((a - b).x, 2.0);
  EXPECT_DOUBLE_EQ((a * 3.0).y, 6.0);
}

TEST(Vec3, CrossProduct) {
  const Vec3 x{1, 0, 0};
  const Vec3 y{0, 1, 0};
  const Vec3 z = x.cross(y);
  EXPECT_DOUBLE_EQ(z.x, 0.0);
  EXPECT_DOUBLE_EQ(z.y, 0.0);
  EXPECT_DOUBLE_EQ(z.z, 1.0);
  // Anti-commutative.
  const Vec3 mz = y.cross(x);
  EXPECT_DOUBLE_EQ(mz.z, -1.0);
}

TEST(Vec3, XyProjection) {
  const Vec3 v{1.5, -2.5, 9.0};
  EXPECT_DOUBLE_EQ(v.xy().x, 1.5);
  EXPECT_DOUBLE_EQ(v.xy().y, -2.5);
}

TEST(Vec3, DistanceSymmetry) {
  const Vec3 a{0, 0, 0};
  const Vec3 b{1, 2, 2};
  EXPECT_DOUBLE_EQ(distance(a, b), 3.0);
  EXPECT_DOUBLE_EQ(distance(b, a), 3.0);
}

TEST(Lerp, EndpointsAndMidpoint) {
  const Vec3 a{0, 0, 0};
  const Vec3 b{2, 4, 6};
  EXPECT_DOUBLE_EQ(lerp(a, b, 0.0).x, 0.0);
  EXPECT_DOUBLE_EQ(lerp(a, b, 1.0).z, 6.0);
  EXPECT_DOUBLE_EQ(lerp(a, b, 0.5).y, 2.0);
}

TEST(PointSegmentDistance, PerpendicularFoot) {
  // Point above the middle of a horizontal segment.
  const double d = pointSegmentDistance({0.5, 1.0, 0.0}, {0, 0, 0}, {1, 0, 0});
  EXPECT_DOUBLE_EQ(d, 1.0);
}

TEST(PointSegmentDistance, ClampsToEndpoints) {
  const double d = pointSegmentDistance({-3.0, 4.0, 0.0}, {0, 0, 0}, {1, 0, 0});
  EXPECT_DOUBLE_EQ(d, 5.0);  // distance to the (0,0,0) endpoint
  const double d2 = pointSegmentDistance({4.0, 4.0, 0.0}, {0, 0, 0}, {1, 0, 0});
  EXPECT_DOUBLE_EQ(d2, 5.0);
}

TEST(PointSegmentDistance, DegenerateSegment) {
  const double d = pointSegmentDistance({3.0, 4.0, 0.0}, {0, 0, 0}, {0, 0, 0});
  EXPECT_DOUBLE_EQ(d, 5.0);
}

TEST(PointSegmentDistance, PointOnSegmentIsZero) {
  const double d = pointSegmentDistance({0.25, 0.0, 0.0}, {0, 0, 0}, {1, 0, 0});
  EXPECT_DOUBLE_EQ(d, 0.0);
}

}  // namespace
}  // namespace rfipad
