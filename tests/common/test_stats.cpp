#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace rfipad {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats rs;
  EXPECT_TRUE(rs.empty());
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats rs;
  rs.add(42.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

TEST(RunningStats, MergeEquivalentToCombined) {
  RunningStats a, b, all;
  const std::vector<double> xs = {1.0, 5.0, -3.0, 2.5, 7.0, 0.0, 4.0};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < 3 ? a : b).add(xs[i]);
    all.add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(FreeFunctions, MeanVarianceStddev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(variance(xs), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({1.0}), 0.0);
}

TEST(Rms, MatchesDefinition) {
  EXPECT_DOUBLE_EQ(rms({3.0, 4.0}), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(rms({}), 0.0);
  EXPECT_DOUBLE_EQ(rms({-2.0}), 2.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Percentile, Throws) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(EmpiricalCdf, MonotoneAndComplete) {
  const auto cdf = empiricalCdf({3.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].first, 1.0);
  EXPECT_NEAR(cdf[0].second, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].first, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].second, 1.0);
}

TEST(MovingAverage, SmoothsAndPreservesLength) {
  const std::vector<double> xs = {0, 0, 9, 0, 0};
  const auto out = movingAverage(xs, 3);
  ASSERT_EQ(out.size(), xs.size());
  EXPECT_DOUBLE_EQ(out[2], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
  // Edges use a shrunken window.
  EXPECT_DOUBLE_EQ(out[0], 0.0);
}

TEST(MovingAverage, RejectsBadWindows) {
  EXPECT_THROW(movingAverage({1.0}, 0), std::invalid_argument);
  EXPECT_THROW(movingAverage({1.0}, 2), std::invalid_argument);
}

TEST(EmaFilter, ConvergesToConstant) {
  const auto out = emaFilter({1, 1, 1, 1}, 0.5);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_THROW(emaFilter({1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(emaFilter({1.0}, 1.5), std::invalid_argument);
}

TEST(Diff, FirstDifferences) {
  const auto d = diff({1.0, 4.0, 2.0});
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[1], -2.0);
  EXPECT_TRUE(diff({1.0}).empty());
}

TEST(TotalVariation, SumsAbsoluteSteps) {
  EXPECT_DOUBLE_EQ(totalVariation({0.0, 1.0, -1.0}), 3.0);
  EXPECT_DOUBLE_EQ(totalVariation({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(totalVariation({}), 0.0);
}

// Property: TV is invariant under constant offsets (this is why the Eq. 8
// mean subtraction does not change the accumulated difference itself).
class TvOffset : public ::testing::TestWithParam<double> {};
TEST_P(TvOffset, OffsetInvariant) {
  const std::vector<double> xs = {0.2, -0.4, 1.0, 0.3, -0.9};
  std::vector<double> shifted;
  for (double x : xs) shifted.push_back(x + GetParam());
  EXPECT_NEAR(totalVariation(xs), totalVariation(shifted), 1e-12);
}
INSTANTIATE_TEST_SUITE_P(Stats, TvOffset,
                         ::testing::Values(-10.0, -1.0, 0.0, 2.5, 100.0));

}  // namespace
}  // namespace rfipad
