#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace rfipad {
namespace {

TEST(ResolveThreadCount, NonPositiveMeansHardwareConcurrency) {
  EXPECT_GE(resolveThreadCount(0), 1);
  EXPECT_GE(resolveThreadCount(-3), 1);
  EXPECT_EQ(resolveThreadCount(1), 1);
  EXPECT_EQ(resolveThreadCount(7), 7);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    parallelFor(threads, hits.size(),
                [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, EmptyBatchIsANoop) {
  int calls = 0;
  parallelFor(4, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SingleElementRunsInline) {
  bool on_worker = true;
  parallelFor(8, 1, [&](std::size_t) { on_worker = ThreadPool::onWorkerThread(); });
  EXPECT_FALSE(on_worker);  // caller thread, not a pool worker
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallelFor(4, 64,
                  [](std::size_t i) {
                    if (i == 13) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // Pool must still be usable after an exception drained the sweep.
  std::atomic<int> count{0};
  parallelFor(4, 32, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock) {
  std::atomic<int> inner_total{0};
  parallelFor(4, 8, [&](std::size_t) {
    // A nested parallelFor from a worker thread must degrade to inline
    // execution instead of waiting on the (occupied) pool.
    parallelFor(4, 16, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ParallelMap, PreservesOrder) {
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  const auto squares =
      parallelMap(4, items, [](const int& v) { return v * v; });
  ASSERT_EQ(squares.size(), items.size());
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], static_cast<int>(i) * static_cast<int>(i));
  }
}

TEST(SharedPool, OneShotSweepsReuseOnePool) {
  // Repeated one-shot parallelFor calls must route through the shared pool
  // instead of constructing (and tearing down) a pool per call — the
  // serving layer's pump() sits on this path.
  std::atomic<int> sink{0};
  parallelFor(3, 8, [&](std::size_t) { sink.fetch_add(1); });  // warm-up
  const std::uint64_t before = ThreadPool::constructedCount();
  for (int round = 0; round < 20; ++round) {
    parallelFor(3, 8, [&](std::size_t) { sink.fetch_add(1); });
  }
  EXPECT_EQ(ThreadPool::constructedCount(), before);
  EXPECT_EQ(sink.load(), 21 * 8);
  // Same resolved count → the very same pool object.
  EXPECT_EQ(&sharedPool(3), &sharedPool(3));
}

TEST(SharedPool, InlinePathsConstructNothing) {
  const std::uint64_t before = ThreadPool::constructedCount();
  std::atomic<int> sink{0};
  // count <= 1 and single-element sweeps run inline with no pool at all.
  parallelFor(1, 64, [&](std::size_t) { sink.fetch_add(1); });
  parallelFor(8, 1, [&](std::size_t) { sink.fetch_add(1); });
  EXPECT_EQ(ThreadPool::constructedCount(), before);
  EXPECT_EQ(sink.load(), 65);
}

TEST(ThreadPoolTest, ReusableAcrossSweeps) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<long> sum{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallelFor(50, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(sum.load(), 5 * (49L * 50 / 2));
}

}  // namespace
}  // namespace rfipad
