// Bounded MPSC ring (common/mpsc_ring.hpp): single-thread semantics
// (FIFO, capacity, eviction, counters) plus multi-producer stress that
// runs under the sanitizer presets via the `san` label — under tsan the
// real check is that no data race is reported — and a stalled-consumer
// test pinning the lock-free invariant: producers are never blocked by a
// consumer that is not draining.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/mpsc_ring.hpp"

namespace rfipad {
namespace {

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(MpscRing<int>(256).capacity(), 256u);
  EXPECT_EQ(MpscRing<int>(257).capacity(), 512u);
}

TEST(MpscRing, FifoOrderAndCounters) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) {
    int v = i;
    ASSERT_TRUE(ring.tryEnqueue(v));
  }
  EXPECT_EQ(ring.sizeApprox(), 8u);
  for (int i = 0; i < 8; ++i) {
    int v = -1;
    ASSERT_TRUE(ring.tryDequeue(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_TRUE(ring.emptyApprox());
  const MpscRingCounters c = ring.counters();
  EXPECT_EQ(c.enqueued, 8u);
  EXPECT_EQ(c.dequeued, 8u);
  EXPECT_EQ(c.high_watermark, 8u);
}

TEST(MpscRing, FullRejectsAndLeavesItemIntact) {
  MpscRing<std::vector<int>> ring(2);
  std::vector<int> a{1, 2, 3};
  std::vector<int> b{4};
  ASSERT_TRUE(ring.tryEnqueue(a));
  ASSERT_TRUE(ring.tryEnqueue(b));
  std::vector<int> c{7, 8, 9, 10};
  EXPECT_FALSE(ring.tryEnqueue(c));
  // A failed enqueue must not consume the payload — callers retry or
  // evict with the same item.
  EXPECT_EQ(c, (std::vector<int>{7, 8, 9, 10}));
  EXPECT_EQ(ring.counters().enqueued, 2u);
}

TEST(MpscRing, EmptyDequeueFails) {
  MpscRing<int> ring(4);
  int v = 0;
  EXPECT_FALSE(ring.tryDequeue(v));
  v = 5;
  ASSERT_TRUE(ring.tryEnqueue(v));
  ASSERT_TRUE(ring.tryDequeue(v));
  EXPECT_FALSE(ring.tryDequeue(v));
}

TEST(MpscRing, ProducerSideEvictionFreesASlot) {
  // The kDropOldest policy: a producer facing a full ring dequeues the
  // head itself (the ring is MPMC-capable) and retries.
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    ASSERT_TRUE(ring.tryEnqueue(v));
  }
  int incoming = 99;
  EXPECT_FALSE(ring.tryEnqueue(incoming));
  int evicted = -1;
  ASSERT_TRUE(ring.tryDequeue(evicted));
  EXPECT_EQ(evicted, 0);  // oldest
  ASSERT_TRUE(ring.tryEnqueue(incoming));
  // Remaining order: 1, 2, 3, 99.
  for (const int want : {1, 2, 3, 99}) {
    int v = -1;
    ASSERT_TRUE(ring.tryDequeue(v));
    EXPECT_EQ(v, want);
  }
}

TEST(MpscRing, WrapsAcrossManyLaps) {
  MpscRing<std::uint64_t> ring(4);
  std::uint64_t next_out = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    std::uint64_t v = i;
    ASSERT_TRUE(ring.tryEnqueue(v));
    if (i % 3 == 2) {
      // Drain in bursts so the cursors wrap at misaligned offsets.
      std::uint64_t out = 0;
      while (ring.tryDequeue(out)) EXPECT_EQ(out, next_out++);
    }
  }
  std::uint64_t out = 0;
  while (ring.tryDequeue(out)) EXPECT_EQ(out, next_out++);
  EXPECT_EQ(next_out, 1000u);
  EXPECT_EQ(ring.counters().enqueued, 1000u);
  EXPECT_EQ(ring.counters().dequeued, 1000u);
}

// Multi-producer / single-consumer stress: every item is delivered exactly
// once and each producer's items arrive in its own send order.
TEST(MpscRing, MultiProducerDeliversAllItemsInPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  MpscRing<std::uint64_t> ring(64);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        std::uint64_t tagged = (static_cast<std::uint64_t>(p) << 32) | i;
        while (!ring.tryEnqueue(tagged)) std::this_thread::yield();
      }
    });
  }

  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    std::uint64_t v = 0;
    if (!ring.tryDequeue(v)) {
      std::this_thread::yield();
      continue;
    }
    const auto p = static_cast<int>(v >> 32);
    const std::uint64_t seq = v & 0xffffffffu;
    ASSERT_LT(p, kProducers);
    // FIFO per producer: sequence numbers arrive strictly in order.
    ASSERT_EQ(seq, next_seq[static_cast<std::size_t>(p)]);
    ++next_seq[static_cast<std::size_t>(p)];
    ++received;
  }
  for (auto& t : producers) t.join();

  const MpscRingCounters c = ring.counters();
  EXPECT_EQ(c.enqueued, kProducers * kPerProducer);
  EXPECT_EQ(c.dequeued, kProducers * kPerProducer);
  EXPECT_LE(c.high_watermark, ring.capacity());
}

// Lock-free invariant: with the consumer stalled and the ring full, every
// producer's tryEnqueue returns (false) instead of blocking — there is no
// mutex a slow consumer could hold across a producer's path.
TEST(MpscRing, ProducersNeverBlockOnAStalledConsumer) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) {
    int v = i;
    ASSERT_TRUE(ring.tryEnqueue(v));
  }
  constexpr int kProducers = 4;
  constexpr int kAttempts = 10000;
  std::atomic<int> completed{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kAttempts; ++i) {
        int v = i;
        EXPECT_FALSE(ring.tryEnqueue(v));  // full, consumer never drains
      }
      completed.fetch_add(1);
    });
  }
  for (auto& t : producers) t.join();
  // Every producer finished all attempts against the full ring.
  EXPECT_EQ(completed.load(), kProducers);
  EXPECT_EQ(ring.counters().enqueued, 8u);
}

// Counter snapshot invariant from any thread: dequeued <= enqueued in
// every snapshot, even while producers and a consumer race.
TEST(MpscRing, CounterSnapshotsNeverShowDequeuedAheadOfEnqueued) {
  MpscRing<std::uint64_t> ring(16);
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::uint64_t v = i;
      if (ring.tryEnqueue(v)) ++i;
    }
  });
  std::thread consumer([&] {
    std::uint64_t v = 0;
    while (!stop.load(std::memory_order_relaxed)) ring.tryDequeue(v);
  });
  for (int i = 0; i < 20000; ++i) {
    const MpscRingCounters c = ring.counters();
    ASSERT_LE(c.dequeued, c.enqueued);
  }
  stop.store(true);
  producer.join();
  consumer.join();
}

}  // namespace
}  // namespace rfipad
