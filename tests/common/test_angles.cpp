#include "common/angles.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace rfipad {
namespace {

TEST(WrapTwoPi, CanonicalRange) {
  EXPECT_NEAR(wrapTwoPi(0.0), 0.0, 1e-12);
  EXPECT_NEAR(wrapTwoPi(kTwoPi), 0.0, 1e-12);
  EXPECT_NEAR(wrapTwoPi(-0.1), kTwoPi - 0.1, 1e-12);
  EXPECT_NEAR(wrapTwoPi(3.0 * kTwoPi + 1.0), 1.0, 1e-12);
}

TEST(WrapPi, CanonicalRange) {
  EXPECT_NEAR(wrapPi(0.0), 0.0, 1e-12);
  EXPECT_NEAR(wrapPi(kPi + 0.1), -kPi + 0.1, 1e-12);
  EXPECT_NEAR(wrapPi(-kPi - 0.1), kPi - 0.1, 1e-12);
  // π maps to +π (half-open on the negative side).
  EXPECT_NEAR(wrapPi(kPi), kPi, 1e-12);
}

class WrapSweep : public ::testing::TestWithParam<double> {};

TEST_P(WrapSweep, TwoPiInvariant) {
  const double theta = GetParam();
  const double w = wrapTwoPi(theta);
  EXPECT_GE(w, 0.0);
  EXPECT_LT(w, kTwoPi);
  // Wrapping is idempotent and preserves the angle modulo 2π.
  EXPECT_NEAR(wrapTwoPi(w), w, 1e-9);
  EXPECT_NEAR(std::remainder(theta - w, kTwoPi), 0.0, 1e-9);
}

TEST_P(WrapSweep, PiInvariant) {
  const double theta = GetParam();
  const double w = wrapPi(theta);
  EXPECT_GT(w, -kPi - 1e-12);
  EXPECT_LE(w, kPi + 1e-12);
  EXPECT_NEAR(std::remainder(theta - w, kTwoPi), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Angles, WrapSweep,
                         ::testing::Values(-100.0, -7.3, -3.2, -0.001, 0.0,
                                           0.5, 3.15, 6.2, 6.4, 55.5, 1e4));

TEST(AngleDiff, ShortestPath) {
  EXPECT_NEAR(angleDiff(0.1, kTwoPi - 0.1), 0.2, 1e-12);
  EXPECT_NEAR(angleDiff(kTwoPi - 0.1, 0.1), -0.2, 1e-12);
  EXPECT_NEAR(angleDiff(1.0, 1.0), 0.0, 1e-12);
}

TEST(Unwrap, RemovesSingleWrap) {
  // Phase climbing through the 2π seam.
  std::vector<double> phases = {6.0, 6.2, 0.2, 0.4};
  unwrapInPlace(phases);
  EXPECT_NEAR(phases[2], 0.2 + kTwoPi, 1e-12);
  EXPECT_NEAR(phases[3], 0.4 + kTwoPi, 1e-12);
  // Continuity: all successive steps now < π.
  for (std::size_t i = 1; i < phases.size(); ++i) {
    EXPECT_LT(std::abs(phases[i] - phases[i - 1]), kPi);
  }
}

TEST(Unwrap, RemovesDownwardWrap) {
  std::vector<double> phases = {0.3, 0.1, 6.1, 5.9};
  unwrapInPlace(phases);
  EXPECT_NEAR(phases[2], 6.1 - kTwoPi, 1e-12);
}

TEST(Unwrap, HandlesMultipleWraps) {
  // A tone climbing 4π: samples at π/2 steps wrapped into [0, 2π).
  std::vector<double> truth;
  std::vector<double> wrapped;
  for (int i = 0; i <= 16; ++i) {
    const double theta = i * kPi / 4.0;
    truth.push_back(theta);
    wrapped.push_back(wrapTwoPi(theta));
  }
  unwrapInPlace(wrapped);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(wrapped[i] - wrapped[0], truth[i] - truth[0], 1e-9) << i;
  }
}

TEST(Unwrap, EmptyAndSingle) {
  std::vector<double> empty;
  unwrapInPlace(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<double> one = {1.0};
  unwrapInPlace(one);
  EXPECT_DOUBLE_EQ(one[0], 1.0);
}

TEST(Unwrapped, NonMutating) {
  const std::vector<double> phases = {6.0, 0.1};
  const auto out = unwrapped(phases);
  EXPECT_NEAR(out[1], 0.1 + kTwoPi, 1e-12);
  EXPECT_DOUBLE_EQ(phases[1], 0.1);
}

TEST(CircularMean, SimpleCluster) {
  EXPECT_NEAR(circularMean({1.0, 1.2, 0.8}), 1.0, 1e-9);
}

TEST(CircularMean, AcrossSeam) {
  // Samples straddling 0/2π: the arithmetic mean would be ~π (wrong);
  // the circular mean is ~0.
  const double m = circularMean({0.1, kTwoPi - 0.1});
  EXPECT_TRUE(m < 0.05 || m > kTwoPi - 0.05) << m;
}

TEST(CircularMean, Empty) { EXPECT_DOUBLE_EQ(circularMean({}), 0.0); }

TEST(CircularStddev, ZeroForConstant) {
  EXPECT_NEAR(circularStddev({2.0, 2.0, 2.0}), 0.0, 1e-9);
}

TEST(CircularStddev, MatchesLinearForSmallSpread) {
  // For small dispersion the circular std ≈ ordinary std.
  std::vector<double> xs = {1.0, 1.02, 0.98, 1.01, 0.99};
  const double c = circularStddev(xs);
  EXPECT_NEAR(c, 0.0149, 2e-3);
}

TEST(CircularStddev, SeamInvariant) {
  // The same small cluster shifted to straddle the seam: same dispersion.
  std::vector<double> a = {1.0, 1.1, 0.9};
  std::vector<double> b;
  for (double x : a) b.push_back(wrapTwoPi(x - 1.0));  // near 0/2π
  EXPECT_NEAR(circularStddev(a), circularStddev(b), 1e-9);
}

}  // namespace
}  // namespace rfipad
