#include "llrp/buffer.hpp"

#include <gtest/gtest.h>

namespace rfipad::llrp {
namespace {

TEST(Buffer, RoundTripScalars) {
  BufferWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.s8(-5);
  w.s16(-1000);
  BufferReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.s8(), -5);
  EXPECT_EQ(r.s16(), -1000);
  EXPECT_TRUE(r.atEnd());
}

TEST(Buffer, BigEndianLayout) {
  BufferWriter w;
  w.u16(0x0102);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[1], 0x02);
}

TEST(Buffer, TruncationThrows) {
  BufferWriter w;
  w.u16(7);
  BufferReader r(w.bytes());
  r.u8();
  EXPECT_THROW(r.u16(), DecodeError);
}

TEST(Buffer, LengthPatching16) {
  BufferWriter w;
  w.u16(0x1111);                    // some prefix
  const std::size_t start = w.size();
  const std::size_t slot = w.reserveLength16();
  w.u32(0);                         // 4 bytes of payload
  w.patchLength16(slot, start);
  BufferReader r(w.bytes());
  r.u16();
  EXPECT_EQ(r.u16(), 6u);           // length slot (2) + payload (4)
}

TEST(Buffer, LengthPatching32) {
  BufferWriter w;
  const std::size_t slot = w.reserveLength32();
  w.u16(0);
  w.patchLength32(slot, 0);
  BufferReader r(w.bytes());
  EXPECT_EQ(r.u32(), 6u);
}

TEST(Buffer, PeekDoesNotConsume) {
  BufferWriter w;
  w.u16(0x4242);
  BufferReader r(w.bytes());
  EXPECT_EQ(r.peek16(), 0x4242);
  EXPECT_EQ(r.offset(), 0u);
  EXPECT_EQ(r.u16(), 0x4242);
}

TEST(Buffer, SubReaderIsolatesRange) {
  BufferWriter w;
  w.u16(1);
  w.u16(2);
  w.u16(3);
  BufferReader r(w.bytes());
  r.u16();
  BufferReader sub = r.sub(2);
  EXPECT_EQ(sub.u16(), 2u);
  EXPECT_TRUE(sub.atEnd());
  EXPECT_THROW(sub.u8(), DecodeError);
  EXPECT_EQ(r.u16(), 3u);  // parent continues after the sub-range
}

TEST(Buffer, RawBytes) {
  BufferWriter w;
  w.raw({1, 2, 3});
  BufferReader r(w.bytes());
  EXPECT_EQ(r.raw(3), (Bytes{1, 2, 3}));
}

}  // namespace
}  // namespace rfipad::llrp
