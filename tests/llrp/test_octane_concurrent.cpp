// Concurrent fan-in into one OctaneClient: the multi-antenna deployment
// runs one pump thread per Speedway, all feeding a single host-side
// client.  Before the client's stream and message-id counter were
// mutex-guarded, TSan flagged concurrent pumps racing on `stream_` and its
// reorder/duplicate counters — these tests (labelled `san`) keep that
// fixed under `cmake --preset tsan && ctest -L san`.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "llrp/octane.hpp"
#include "rf/multipath.hpp"
#include "tag/array.hpp"

namespace rfipad::llrp {
namespace {

/// One simulated Speedway: seeded hardware + protocol emulator.
struct Reader {
  explicit Reader(std::uint64_t seed)
      : rng(seed),
        array(tag::ArrayConfig{}, rng),
        hw(reader::ReaderConfig{},
           rf::ChannelModel(rf::CarrierConfig{922.38e6},
                            rf::DirectionalAntenna({0, 0, -0.32}, {0, 0, 1},
                                                   8.0),
                            rf::anechoic()),
           array, rng.fork(1)),
        emu(hw) {}

  Rng rng;
  tag::TagArray array;
  reader::RfidReader hw;
  OctaneEmulator emu;
};

/// Pump `readers` concurrently (one thread each) into `client` for
/// `duration_s` of reader time apiece.  A deque because Reader's internals
/// hold references to sibling members: elements must never relocate.
void pumpAll(OctaneClient& client, std::deque<Reader>& readers,
             double duration_s) {
  std::vector<std::thread> threads;
  threads.reserve(readers.size());
  for (auto& r : readers) {
    threads.emplace_back([&client, &r, duration_s] {
      client.pump(r.emu, duration_s, reader::emptyScene);
    });
  }
  for (auto& t : threads) t.join();
}

TEST(OctaneConcurrent, TwoReadersFanInWithoutLosingReports) {
  std::deque<Reader> readers;
  readers.emplace_back(101);
  readers.emplace_back(202);

  OctaneClient client;
  std::atomic<int> callbacks{0};
  client.onReport([&](const reader::TagReport& r) {
    EXPECT_LT(r.tag_index, 25u);
    callbacks.fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& r : readers) client.connect(r.emu);

  pumpAll(client, readers, 0.5);

  const auto stream = client.snapshotStream();
  EXPECT_GT(stream.size(), 0u);
  EXPECT_EQ(stream.size(), static_cast<std::size_t>(callbacks.load()));
  // The merged stream is time-sorted regardless of arrival interleaving.
  for (std::size_t i = 1; i < stream.size(); ++i) {
    EXPECT_LE(stream[i - 1].time_s, stream[i].time_s);
  }
}

/// Copy a stream's reports with equal-time runs put into a canonical
/// order.  The fan-in contract is "same multiset of reports, time-sorted";
/// the relative order of reports carrying the *exact same* timestamp (two
/// emulators share slot boundaries) legitimately depends on arrival
/// interleaving, so comparisons must not pin it.
std::vector<reader::TagReport> canonicalized(
    const reader::SampleStream& stream) {
  std::vector<reader::TagReport> out(stream.reports().begin(),
                                     stream.reports().end());
  std::sort(out.begin(), out.end(),
            [](const reader::TagReport& x, const reader::TagReport& y) {
              if (x.time_s != y.time_s) return x.time_s < y.time_s;
              if (x.tag_index != y.tag_index) return x.tag_index < y.tag_index;
              if (x.phase_rad != y.phase_rad) return x.phase_rad < y.phase_rad;
              return x.rssi_dbm < y.rssi_dbm;
            });
  return out;
}

TEST(OctaneConcurrent, FanInMatchesSequentialMerge) {
  // Concurrent fan-in must produce exactly the stream a sequential merge
  // of the same two readers would: the time-sorted insert makes arrival
  // order irrelevant up to equal-timestamp ties, so after canonicalizing
  // those ties the comparison is exact, not statistical.
  std::deque<Reader> concurrent_readers, sequential_readers;
  for (std::uint64_t seed : {11u, 22u}) {
    concurrent_readers.emplace_back(seed);
    sequential_readers.emplace_back(seed);
  }

  OctaneClient concurrent_client;
  for (auto& r : concurrent_readers) concurrent_client.connect(r.emu);
  pumpAll(concurrent_client, concurrent_readers, 0.4);

  OctaneClient sequential_client;
  for (auto& r : sequential_readers) {
    sequential_client.connect(r.emu);
    sequential_client.pump(r.emu, 0.4, reader::emptyScene);
  }

  const auto a = canonicalized(concurrent_client.snapshotStream());
  const auto b = canonicalized(sequential_client.snapshotStream());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tag_index, b[i].tag_index);
    EXPECT_DOUBLE_EQ(a[i].time_s, b[i].time_s);
    EXPECT_DOUBLE_EQ(a[i].phase_rad, b[i].phase_rad);
    EXPECT_DOUBLE_EQ(a[i].rssi_dbm, b[i].rssi_dbm);
  }
}

TEST(OctaneConcurrent, ReconnectPumpsFanInThroughOutages) {
  // The resilient pump path shares the same delivery lock; outages on one
  // reader must not corrupt the other's stream.
  std::deque<Reader> readers;
  readers.emplace_back(303);
  readers.emplace_back(404);
  readers[0].emu.setOutages({{0.1, 0.2}});

  OctaneClient client;
  for (auto& r : readers) client.connect(r.emu);

  std::vector<std::thread> threads;
  std::vector<PumpStats> stats(readers.size());
  for (std::size_t i = 0; i < readers.size(); ++i) {
    threads.emplace_back([&client, &readers, &stats, i] {
      stats[i] = client.pumpWithReconnect(readers[i].emu, 0.5,
                                          reader::emptyScene);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(stats[0].disconnects, 1u);
  EXPECT_EQ(stats[1].disconnects, 0u);
  const auto stream = client.snapshotStream();
  EXPECT_EQ(stream.size(), stats[0].reports + stats[1].reports);
}

TEST(OctaneConcurrent, TakeStreamDrainsAtomically) {
  std::deque<Reader> readers;
  readers.emplace_back(505);
  OctaneClient client;
  client.connect(readers[0].emu);
  pumpAll(client, readers, 0.3);

  const auto before = client.snapshotStream();
  const auto taken = client.takeStream();
  EXPECT_EQ(taken.size(), before.size());
  EXPECT_EQ(client.snapshotStream().size(), 0u);
}

}  // namespace
}  // namespace rfipad::llrp
