// Malformed-LLRP corpus (ISSUE satellite): decodeFrames must never throw or
// read out of bounds, whatever bytes arrive — truncated headers, lying
// length fields, wrong message types, flipped EPC bits, random bit soup.
// Built to run under ASan/UBSan (label `san`), where any OOB read aborts.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "llrp/bridge.hpp"
#include "llrp/messages.hpp"

namespace rfipad::llrp {
namespace {

/// EPC hex in the tag::makeEpc shape: index in the last 8 hex digits.
std::string epcForIndex(std::uint32_t index) {
  char buf[25];
  std::snprintf(buf, sizeof(buf), "AABBCCDDEEFF0011%08X", index);
  return buf;
}

reader::TagReport cleanReport(std::uint32_t tag, double t) {
  reader::TagReport r;
  r.epc = epcForIndex(tag);
  r.tag_index = tag;
  r.antenna_id = 1;
  r.time_s = t;
  r.phase_rad = 1.25;
  r.rssi_dbm = -47.5;
  return r;
}

std::vector<Bytes> cleanFrames(int tags = 4, int reads = 8) {
  reader::SampleStream s(static_cast<std::uint32_t>(tags));
  for (int j = 0; j < reads; ++j)
    for (int i = 0; i < tags; ++i)
      s.push(cleanReport(static_cast<std::uint32_t>(i), j * 0.1 + i * 0.01));
  return encodeStream(s);
}

TEST(MalformedLlrp, CleanFramesRoundTripWithoutLoss) {
  const auto frames = cleanFrames();
  DecodeStats st;
  const auto stream = decodeFrames(frames, {}, &st);
  EXPECT_EQ(st.frames, frames.size());
  EXPECT_EQ(st.frames_malformed, 0u);
  EXPECT_EQ(st.reports_malformed, 0u);
  EXPECT_EQ(st.reports_bad_index, 0u);
  EXPECT_EQ(stream.size(), 32u);
  // And identical to the stats-free decode (the clean path).
  const auto plain = decodeFrames(frames);
  EXPECT_EQ(plain.size(), stream.size());
}

TEST(MalformedLlrp, TruncatedHeaderSkippedAndCounted) {
  auto frames = cleanFrames();
  frames[0].resize(6);  // header needs 10 bytes
  frames[1].resize(0);  // empty frame
  DecodeStats st;
  const auto stream = decodeFrames(frames, {}, &st);
  EXPECT_EQ(st.frames_malformed, 2u);
  EXPECT_EQ(stream.size(), 32u - 2u * 16u);
}

TEST(MalformedLlrp, TruncatedMidParameterKeepsEarlierReports) {
  auto frames = cleanFrames();
  // Chop the frame inside the second TagReportData: the first report must
  // survive, the rest of the frame is counted malformed.
  const std::size_t keep = frames[0].size() / 2;
  frames[0].resize(keep);
  DecodeStats st;
  const auto stream = decodeFrames(frames, {}, &st);
  EXPECT_GT(st.reports_malformed, 0u);
  EXPECT_GT(stream.size(), 0u);
  EXPECT_LT(stream.size(), 32u);
}

TEST(MalformedLlrp, BadLengthFieldDoesNotOverread) {
  auto frames = cleanFrames();
  // The first TagReportData TLV begins right after the 10-byte header; its
  // 16-bit length lives at offset 12.  Claim far more bytes than exist.
  frames[0][12] = 0xFF;
  frames[0][13] = 0xFF;
  DecodeStats st;
  const auto stream = decodeFrames(frames, {}, &st);
  EXPECT_GE(st.reports_malformed, 1u);
  EXPECT_LT(stream.size(), 32u);

  // A length below the 4-byte TLV header is equally invalid.
  auto frames2 = cleanFrames();
  frames2[0][12] = 0x00;
  frames2[0][13] = 0x02;
  DecodeStats st2;
  const auto stream2 = decodeFrames(frames2, {}, &st2);
  EXPECT_GE(st2.reports_malformed, 1u);
  EXPECT_LT(stream2.size(), 32u);
}

TEST(MalformedLlrp, UnknownMessageTypeSkipsWholeFrame) {
  auto frames = cleanFrames();
  frames.insert(frames.begin(), encodeKeepalive(9));
  frames.push_back(encodeReaderEventNotification(10, 123456));
  DecodeStats st;
  const auto stream = decodeFrames(frames, {}, &st);
  EXPECT_EQ(st.frames_malformed, 2u);
  EXPECT_EQ(stream.size(), 32u);
}

TEST(MalformedLlrp, FlippedEpcBitsCannotInflateTagIndex) {
  // Corrupt the EPC index suffix so it decodes to a huge tag index: with a
  // max_tag_index cap the report is dropped and counted instead of blowing
  // up downstream per-tag allocations.
  RoAccessReport report;
  auto t = toWire(cleanReport(0, 0.5));
  t.epc = TagReportData::epcFromHex("AABBCCDDEEFF0011FFFFFFFF");
  report.reports.push_back(t);
  const std::vector<Bytes> frames = {encodeRoAccessReport(1, report)};

  DecodeStats st;
  const auto stream = decodeFrames(frames, {}, &st, /*max_tag_index=*/24);
  EXPECT_EQ(stream.size(), 0u);
  EXPECT_EQ(st.reports_bad_index, 1u);
  EXPECT_LE(stream.numTags(), 25u);
}

TEST(MalformedLlrp, StrictDecodeStillThrows) {
  // The historical contract survives: with no stats object a malformed
  // frame throws instead of being skipped.
  auto frames = cleanFrames();
  frames[0][12] = 0xFF;
  frames[0][13] = 0xFF;
  EXPECT_THROW(decodeRoAccessReport(frames[0]), DecodeError);
  ReportDecodeStats rstats;
  EXPECT_NO_THROW(decodeRoAccessReport(frames[0], &rstats));
}

TEST(MalformedLlrp, BitFlipFuzzNeverThrows) {
  // Seeded fuzz: flip 1–8 random bits per frame across many rounds.  The
  // lenient decoder must survive every mutation without throwing; under
  // ASan/UBSan this also proves no out-of-bounds access.
  Rng rng(0xFBADF00D);
  for (int round = 0; round < 300; ++round) {
    auto frames = cleanFrames(3, 6);
    for (auto& f : frames) {
      const int flips = static_cast<int>(rng.uniformInt(1, 8));
      for (int k = 0; k < flips; ++k) {
        const auto byte = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(f.size()) - 1));
        f[byte] ^= static_cast<std::uint8_t>(1u << rng.uniformInt(0, 7));
      }
    }
    DecodeStats st;
    const auto stream = decodeFrames(frames, {}, &st, /*max_tag_index=*/8);
    EXPECT_EQ(st.frames, frames.size());
    for (const auto& r : stream.reports()) EXPECT_LE(r.tag_index, 8u);
  }
}

TEST(MalformedLlrp, TruncationFuzzNeverThrows) {
  Rng rng(0x7A11);
  for (int round = 0; round < 200; ++round) {
    auto frames = cleanFrames(3, 6);
    for (auto& f : frames) {
      if (!rng.chance(0.7)) continue;
      f.resize(static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(f.size()) - 1)));
    }
    DecodeStats st;
    EXPECT_NO_THROW(decodeFrames(frames, {}, &st, 8));
  }
}

}  // namespace
}  // namespace rfipad::llrp
