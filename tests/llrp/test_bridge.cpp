#include "llrp/bridge.hpp"

#include <gtest/gtest.h>

#include "common/angles.hpp"
#include "llrp/octane.hpp"
#include "rf/multipath.hpp"
#include "tag/array.hpp"

namespace rfipad::llrp {
namespace {

reader::TagReport sampleReport(std::uint32_t index, double t) {
  reader::TagReport r;
  r.epc = tag::makeEpc(index);
  r.tag_index = index;
  r.antenna_id = 1;
  r.time_s = t;
  r.phase_rad = wrapTwoPi(1.0 + 0.1 * index);
  // Quantise like the reader does (2π/4096 phase, 0.5 dB RSSI) so the wire
  // round trip is lossless.
  const double step = kTwoPi / 4096.0;
  r.phase_rad = std::round(r.phase_rad / step) * step;
  r.rssi_dbm = -40.5;
  r.doppler_hz = 1.25;
  return r;
}

TEST(Bridge, SingleReportRoundTrip) {
  const auto in = sampleReport(7, 1.25);
  const auto out = fromWire(toWire(in));
  EXPECT_EQ(out.epc, in.epc);
  EXPECT_EQ(out.tag_index, 7u);
  EXPECT_NEAR(out.time_s, in.time_s, 2e-6);
  EXPECT_NEAR(out.phase_rad, in.phase_rad, 1e-9);
  EXPECT_NEAR(out.rssi_dbm, in.rssi_dbm, 1e-9);
  EXPECT_NEAR(out.doppler_hz, in.doppler_hz, 1.0 / 16.0);
}

TEST(Bridge, StreamRoundTripPreservesEverything) {
  reader::SampleStream in(25);
  for (int i = 0; i < 100; ++i) {
    in.push(sampleReport(static_cast<std::uint32_t>(i % 25), i * 0.01));
  }
  const auto frames = encodeStream(in, 16);
  EXPECT_EQ(frames.size(), 7u);  // ceil(100/16)
  const auto out = decodeFrames(frames);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].tag_index, in[i].tag_index);
    EXPECT_NEAR(out[i].phase_rad, in[i].phase_rad, 1e-9);
    EXPECT_NEAR(out[i].rssi_dbm, in[i].rssi_dbm, 1e-9);
  }
}

TEST(Bridge, CustomEpcResolver) {
  const auto wire = toWire(sampleReport(3, 0.5));
  const auto out = fromWire(wire, [](const std::string&) { return 99u; });
  EXPECT_EQ(out.tag_index, 99u);
}

TEST(Bridge, RejectsZeroBatch) {
  reader::SampleStream s;
  EXPECT_THROW(encodeStream(s, 0), std::invalid_argument);
}

struct OctaneFixture {
  Rng rng{31};
  tag::TagArray array{tag::ArrayConfig{}, rng};
  reader::RfidReader hw{reader::ReaderConfig{},
                        rf::ChannelModel(rf::CarrierConfig{922.38e6},
                                         rf::DirectionalAntenna({0, 0, -0.32},
                                                                {0, 0, 1}, 8.0),
                                         rf::anechoic()),
                        array, rng.fork(1)};
  OctaneEmulator emu{hw};
  OctaneClient client;
};

TEST(Octane, HandshakeStateMachine) {
  OctaneFixture f;
  EXPECT_FALSE(f.emu.started());
  EXPECT_THROW(f.emu.poll(0.1, reader::emptyScene), std::logic_error);
  f.client.connect(f.emu);
  EXPECT_TRUE(f.emu.installed());
  EXPECT_TRUE(f.emu.enabled());
  EXPECT_TRUE(f.emu.started());
}

TEST(Octane, StartBeforeEnableFails) {
  OctaneFixture f;
  // START without ADD/ENABLE → error status → client throws.
  EXPECT_THROW(
      {
        auto resp = f.emu.handleControl(encodeStartRospec(1, 1));
        BufferReader r(resp);
        std::uint32_t len = 0;
        decodeHeader(r, &len);
        r.skip(4);  // param header
        if (r.u16() != 0) throw std::runtime_error("failed");
      },
      std::runtime_error);
}

TEST(Octane, ReportsFlowThroughWireFormat) {
  OctaneFixture f;
  f.client.connect(f.emu);
  int callbacks = 0;
  f.client.onReport([&](const reader::TagReport& r) {
    EXPECT_LT(r.tag_index, 25u);
    ++callbacks;
  });
  f.client.pump(f.emu, 1.0, reader::emptyScene);
  EXPECT_GT(callbacks, 200);
  EXPECT_EQ(f.client.stream().size(), static_cast<std::size_t>(callbacks));
  // All 25 tags present after a second of inventory.
  for (std::uint32_t i = 0; i < 25; ++i) {
    EXPECT_GT(f.client.stream().countFor(i), 0u) << i;
  }
}

TEST(Octane, KeepaliveAcked) {
  OctaneFixture f;
  const Bytes resp = f.emu.handleControl(encodeKeepalive(5));
  BufferReader r(resp);
  std::uint32_t len = 0;
  const MessageHeader h = decodeHeader(r, &len);
  EXPECT_EQ(h.type, MessageType::kKeepaliveAck);
  EXPECT_EQ(h.id, 5u);
}

TEST(Octane, ReconnectPumpMatchesPlainPumpOnCleanLink) {
  // Same seeded hardware twice: the resilient pump on a fault-free link
  // must deliver exactly what the strict pump does, chunking and all.
  OctaneFixture plain, resilient;
  plain.client.connect(plain.emu);
  resilient.client.connect(resilient.emu);

  plain.client.pump(plain.emu, 1.0, reader::emptyScene);
  const auto st = resilient.client.pumpWithReconnect(resilient.emu, 1.0,
                                                     reader::emptyScene);
  EXPECT_EQ(st.disconnects, 0u);
  EXPECT_EQ(st.reconnect_attempts, 0u);
  EXPECT_EQ(st.rehandshakes, 0u);
  EXPECT_DOUBLE_EQ(st.offline_s, 0.0);
  EXPECT_EQ(st.decode.frames_malformed, 0u);
  EXPECT_EQ(st.decode.reports_malformed, 0u);

  const auto& a = plain.client.stream();
  const auto& b = resilient.client.stream();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tag_index, b[i].tag_index);
    EXPECT_DOUBLE_EQ(a[i].time_s, b[i].time_s);
    EXPECT_DOUBLE_EQ(a[i].phase_rad, b[i].phase_rad);
  }
}

TEST(Octane, SurvivesOutageAndResumesSession) {
  OctaneFixture f;
  f.client.connect(f.emu);
  f.emu.setOutages({{0.3, 0.5}});

  const auto st = f.client.pumpWithReconnect(f.emu, 1.2, reader::emptyScene);
  EXPECT_EQ(st.disconnects, 1u);
  EXPECT_GE(st.reconnect_attempts, 1u);
  // A TCP hiccup, not a reboot: the ROSpec survives, no re-handshake.
  EXPECT_EQ(st.rehandshakes, 0u);
  EXPECT_GT(st.offline_s, 0.0);

  // Nothing was delivered from inside the outage (a slot may straddle the
  // boundary, hence the small guard band), and reporting resumed after it.
  bool any_after = false;
  for (const auto& r : f.client.stream().reports()) {
    EXPECT_FALSE(r.time_s > 0.31 && r.time_s < 0.49) << r.time_s;
    any_after = any_after || r.time_s > 0.6;
  }
  EXPECT_TRUE(any_after);
}

TEST(Octane, ReaderRebootForcesRehandshake) {
  OctaneFixture f;
  f.client.connect(f.emu);
  f.emu.setClearRospecOnDisconnect(true);
  f.emu.setOutages({{0.2, 0.3}});

  const auto st = f.client.pumpWithReconnect(f.emu, 1.0, reader::emptyScene);
  EXPECT_EQ(st.disconnects, 1u);
  EXPECT_EQ(st.rehandshakes, 1u);
  EXPECT_TRUE(f.emu.started());
  bool any_after = false;
  for (const auto& r : f.client.stream().reports())
    any_after = any_after || r.time_s > 0.5;
  EXPECT_TRUE(any_after);
}

TEST(Octane, CorruptedFramesAreSkippedAndCounted) {
  OctaneFixture f;
  f.client.connect(f.emu);
  // Mangle the wire: truncate every third frame, flip a byte in the rest.
  f.emu.setFrameTap([n = 0](std::vector<Bytes> frames) mutable {
    for (auto& fr : frames) {
      if (fr.empty()) continue;
      if (++n % 3 == 0) {
        fr.resize(fr.size() / 2);
      } else {
        fr[10 + (fr.size() % 40)] ^= 0x40;
      }
    }
    return frames;
  });

  const auto st = f.client.pumpWithReconnect(f.emu, 1.0, reader::emptyScene);
  EXPECT_GT(st.frames, 0u);
  EXPECT_GT(st.decode.frames_malformed + st.decode.reports_malformed, 0u);
  // Degraded, not dead: most reports still make it through.
  EXPECT_GT(st.reports, 0u);
  EXPECT_EQ(f.client.stream().size(), st.reports);
}

TEST(Octane, GivesUpAfterExhaustingBackoffSchedule) {
  OctaneFixture f;
  f.client.connect(f.emu);
  f.emu.setOutages({{0.1, 50.0}});
  ReconnectPolicy policy;
  policy.initial_backoff_s = 0.01;
  policy.max_backoff_s = 0.02;
  policy.max_attempts_per_outage = 3;
  policy.poll_chunk_s = 0.1;
  EXPECT_THROW(
      f.client.pumpWithReconnect(f.emu, 2.0, reader::emptyScene, policy),
      std::runtime_error);
}

}  // namespace
}  // namespace rfipad::llrp
