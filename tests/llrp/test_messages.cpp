#include "llrp/messages.hpp"

#include <gtest/gtest.h>

namespace rfipad::llrp {
namespace {

TagReportData sampleReport() {
  TagReportData t;
  t.epc = TagReportData::epcFromHex("3000AA00BB00CC0000000007");
  t.antenna_id = 2;
  t.peak_rssi_dbm = -41;
  t.first_seen_utc_us = 1234567890123ull;
  t.impinj_phase_angle = 2048;
  t.impinj_doppler_16hz = -24;
  t.impinj_rssi_centidbm = -4150;
  return t;
}

TEST(Messages, EpcHexRoundTrip) {
  const std::string hex = "3000AA00BB00CC0000000007";
  EXPECT_EQ(TagReportData::epcFromHex(hex).size(), 12u);
  TagReportData t;
  t.epc = TagReportData::epcFromHex(hex);
  EXPECT_EQ(t.epcHex(), hex);
  EXPECT_THROW(TagReportData::epcFromHex("1234"), std::invalid_argument);
}

TEST(Messages, RoAccessReportRoundTrip) {
  RoAccessReport in;
  in.reports.push_back(sampleReport());
  in.reports.push_back(sampleReport());
  in.reports[1].impinj_phase_angle.reset();  // optional param omitted

  const Bytes frame = encodeRoAccessReport(77, in);
  const RoAccessReport out = decodeRoAccessReport(frame);
  ASSERT_EQ(out.reports.size(), 2u);
  const auto& a = out.reports[0];
  EXPECT_EQ(a.epcHex(), "3000AA00BB00CC0000000007");
  EXPECT_EQ(a.antenna_id, 2);
  EXPECT_EQ(a.peak_rssi_dbm, -41);
  EXPECT_EQ(a.first_seen_utc_us, 1234567890123ull);
  ASSERT_TRUE(a.impinj_phase_angle.has_value());
  EXPECT_EQ(*a.impinj_phase_angle, 2048);
  ASSERT_TRUE(a.impinj_doppler_16hz.has_value());
  EXPECT_EQ(*a.impinj_doppler_16hz, -24);
  ASSERT_TRUE(a.impinj_rssi_centidbm.has_value());
  EXPECT_EQ(*a.impinj_rssi_centidbm, -4150);
  EXPECT_FALSE(out.reports[1].impinj_phase_angle.has_value());
}

TEST(Messages, HeaderRoundTrip) {
  const Bytes frame = encodeKeepalive(42);
  BufferReader r(frame);
  std::uint32_t len = 0;
  const MessageHeader h = decodeHeader(r, &len);
  EXPECT_EQ(h.type, MessageType::kKeepalive);
  EXPECT_EQ(h.id, 42u);
  EXPECT_EQ(len, frame.size());
}

TEST(Messages, AddRospecRoundTrip) {
  Rospec in;
  in.rospec_id = 7;
  in.priority = 3;
  in.start.type = 1;
  in.stop.type = 2;
  in.antenna_ids = {1, 2, 4};
  std::uint32_t mid = 0;
  const Rospec out = decodeAddRospec(encodeAddRospec(9, in), &mid);
  EXPECT_EQ(mid, 9u);
  EXPECT_EQ(out.rospec_id, 7u);
  EXPECT_EQ(out.priority, 3);
  EXPECT_EQ(out.start.type, 1);
  EXPECT_EQ(out.stop.type, 2);
  EXPECT_EQ(out.antenna_ids, (std::vector<std::uint16_t>{1, 2, 4}));
}

TEST(Messages, EnableStartRospecIds) {
  EXPECT_EQ(decodeRospecIdMessage(encodeEnableRospec(1, 55)), 55u);
  EXPECT_EQ(decodeRospecIdMessage(encodeStartRospec(2, 66)), 66u);
  EXPECT_THROW(decodeRospecIdMessage(encodeKeepalive(3)), DecodeError);
}

TEST(Messages, WrongTypeRejected) {
  EXPECT_THROW(decodeRoAccessReport(encodeKeepalive(1)), DecodeError);
  EXPECT_THROW(decodeAddRospec(encodeKeepalive(1)), DecodeError);
}

TEST(Messages, TruncatedFrameRejected) {
  Bytes frame = encodeRoAccessReport(1, {{sampleReport()}});
  frame.resize(frame.size() - 5);
  EXPECT_THROW(decodeRoAccessReport(frame), DecodeError);
}

TEST(Messages, SplitFramesHandlesPartials) {
  const Bytes a = encodeKeepalive(1);
  const Bytes b = encodeRoAccessReport(2, {{sampleReport()}});
  Bytes stream;
  stream.insert(stream.end(), a.begin(), a.end());
  stream.insert(stream.end(), b.begin(), b.end());
  // Append half of another message.
  const Bytes c = encodeKeepalive(3);
  stream.insert(stream.end(), c.begin(), c.begin() + 4);

  auto frames = splitFrames(stream);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], a);
  EXPECT_EQ(frames[1], b);
  EXPECT_EQ(stream.size(), 4u);  // the partial remains buffered

  // Completing the partial yields the third frame.
  stream.insert(stream.end(), c.begin() + 4, c.end());
  frames = splitFrames(stream);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], c);
  EXPECT_TRUE(stream.empty());
}

TEST(Messages, ReaderEventNotificationEncodes) {
  const Bytes frame = encodeReaderEventNotification(5, 999999);
  BufferReader r(frame);
  std::uint32_t len = 0;
  const MessageHeader h = decodeHeader(r, &len);
  EXPECT_EQ(h.type, MessageType::kReaderEventNotification);
  EXPECT_EQ(len, frame.size());
}

}  // namespace
}  // namespace rfipad::llrp
