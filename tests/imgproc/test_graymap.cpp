#include "imgproc/graymap.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rfipad::imgproc {
namespace {

TEST(GrayMap, ConstructionAndAccess) {
  GrayMap m(3, 4, 0.5);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_DOUBLE_EQ(m.at(2, 3), 0.5);
  m.at(1, 2) = 2.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 2.0);
}

TEST(GrayMap, FromValuesRowMajor) {
  GrayMap m(2, 2, std::vector<double>{1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
}

TEST(GrayMap, Validation) {
  EXPECT_THROW(GrayMap(0, 3), std::invalid_argument);
  EXPECT_THROW(GrayMap(2, 2, std::vector<double>{1.0}), std::invalid_argument);
  GrayMap m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, -1), std::out_of_range);
}

TEST(GrayMap, MinMax) {
  GrayMap m(2, 2, std::vector<double>{-1, 5, 2, 0});
  EXPECT_DOUBLE_EQ(m.minValue(), -1.0);
  EXPECT_DOUBLE_EQ(m.maxValue(), 5.0);
}

TEST(GrayMap, NormalizedRange) {
  GrayMap m(1, 3, std::vector<double>{2, 4, 6});
  const GrayMap n = m.normalized();
  EXPECT_DOUBLE_EQ(n.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(n.at(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(n.at(0, 2), 1.0);
}

TEST(GrayMap, NormalizedFlatMapIsZero) {
  GrayMap m(2, 2, 7.0);
  const GrayMap n = m.normalized();
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(n.at(r, c), 0.0);
}

TEST(GrayMap, AsciiRendersBrightnessLevels) {
  GrayMap m(1, 2, std::vector<double>{0.0, 1.0});
  const std::string s = m.ascii();
  EXPECT_NE(s.find('.'), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(GrayMap, AsciiHasOneLinePerRow) {
  GrayMap m(4, 3);
  const std::string s = m.ascii();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

}  // namespace
}  // namespace rfipad::imgproc
