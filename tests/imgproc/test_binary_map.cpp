#include "imgproc/binary_map.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rfipad::imgproc {
namespace {

TEST(BinaryMap, SetAndCount) {
  BinaryMap m(3, 3);
  EXPECT_EQ(m.count(), 0);
  m.set(1, 1, true);
  m.set(0, 2, true);
  EXPECT_EQ(m.count(), 2);
  EXPECT_TRUE(m.at(1, 1));
  EXPECT_FALSE(m.at(0, 0));
  m.set(1, 1, false);
  EXPECT_EQ(m.count(), 1);
}

TEST(BinaryMap, Validation) {
  EXPECT_THROW(BinaryMap(0, 1), std::invalid_argument);
  BinaryMap m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.set(0, 2, true), std::out_of_range);
}

TEST(BinaryMap, ForegroundRowMajor) {
  BinaryMap m(2, 2);
  m.set(0, 1, true);
  m.set(1, 0, true);
  const auto fg = m.foreground();
  ASSERT_EQ(fg.size(), 2u);
  EXPECT_EQ(fg[0], (Cell{0, 1}));
  EXPECT_EQ(fg[1], (Cell{1, 0}));
}

TEST(BinaryMap, ComponentsEightConnectivity) {
  BinaryMap m(3, 3);
  m.set(0, 0, true);
  m.set(1, 1, true);  // diagonal neighbour → same component
  m.set(2, 2, true);
  const auto comps = m.components();
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].size(), 3u);
}

TEST(BinaryMap, SeparateComponentsSortedBySize) {
  BinaryMap m(5, 5);
  // Big component: a 3-cell row at the top.
  m.set(4, 0, true);
  m.set(4, 1, true);
  m.set(4, 2, true);
  // Small isolated pixel far away.
  m.set(0, 4, true);
  const auto comps = m.components();
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0].size(), 3u);
  EXPECT_EQ(comps[1].size(), 1u);
}

TEST(BinaryMap, LargestComponentFilter) {
  BinaryMap m(5, 5);
  m.set(0, 0, true);
  m.set(0, 1, true);
  m.set(4, 4, true);
  const auto big = m.largestComponent();
  EXPECT_EQ(big.count(), 2);
  EXPECT_TRUE(big.at(0, 0));
  EXPECT_FALSE(big.at(4, 4));
}

TEST(BinaryMap, LargestComponentOfEmptyMap) {
  BinaryMap m(2, 2);
  EXPECT_EQ(m.largestComponent().count(), 0);
}

TEST(Otsu, SeparatesBimodalData) {
  // Background ≈ 0.1, foreground ≈ 0.9 → threshold in between.
  const std::vector<double> v = {0.1, 0.12, 0.09, 0.11, 0.9, 0.88, 0.92};
  const double t = otsuThreshold(v);
  EXPECT_GT(t, 0.12);
  EXPECT_LT(t, 0.88);
}

TEST(Otsu, ThrowsOnDegenerateInput) {
  EXPECT_THROW(otsuThreshold({1.0}), std::invalid_argument);
}

TEST(Otsu, ShiftInvariantSplit) {
  const std::vector<double> v = {0.0, 0.05, 1.0, 1.05};
  std::vector<double> shifted;
  for (double x : v) shifted.push_back(x + 3.0);
  EXPECT_NEAR(otsuThreshold(shifted) - otsuThreshold(v), 3.0, 1e-9);
}

TEST(Otsu, BinarizeMarksUpperClass) {
  GrayMap g(1, 4, std::vector<double>{0.0, 0.1, 0.9, 1.0});
  const auto b = otsuBinarize(g);
  EXPECT_FALSE(b.at(0, 0));
  EXPECT_FALSE(b.at(0, 1));
  EXPECT_TRUE(b.at(0, 2));
  EXPECT_TRUE(b.at(0, 3));
}

TEST(Otsu, FixedThresholdBinarize) {
  GrayMap g(1, 3, std::vector<double>{0.2, 0.5, 0.8});
  const auto b = binarize(g, 0.5);
  EXPECT_FALSE(b.at(0, 0));
  EXPECT_FALSE(b.at(0, 1));  // strictly greater
  EXPECT_TRUE(b.at(0, 2));
}

TEST(Otsu, PaperColumnScenario) {
  // A 5×5 activation map with one bright column (the hand's path, Fig. 7):
  // Otsu must recover exactly that column.
  GrayMap g(5, 5, 0.1);
  for (int r = 0; r < 5; ++r) g.at(r, 2) = 0.8 + 0.05 * r;
  const auto b = otsuBinarize(g);
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 5; ++c) {
      EXPECT_EQ(b.at(r, c), c == 2) << r << "," << c;
    }
  }
}

TEST(BinaryMap, AsciiRender) {
  BinaryMap m(2, 2);
  m.set(0, 0, true);
  const std::string s = m.ascii();
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find('.'), std::string::npos);
}

}  // namespace
}  // namespace rfipad::imgproc
