#include "imgproc/moments.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace rfipad::imgproc {
namespace {

constexpr double kDeg = 180.0 / 3.14159265358979323846;

TEST(Moments, Centroid) {
  const auto m = computeMoments({{0, 0}, {0, 2}, {2, 0}, {2, 2}});
  EXPECT_DOUBLE_EQ(m.centroid_row, 1.0);
  EXPECT_DOUBLE_EQ(m.centroid_col, 1.0);
  EXPECT_EQ(m.count, 4);
}

TEST(Moments, ThrowsOnEmpty) {
  EXPECT_THROW(computeMoments(std::vector<Cell>{}), std::invalid_argument);
}

TEST(Moments, HorizontalLineAxis) {
  const auto m = computeMoments({{2, 0}, {2, 1}, {2, 2}, {2, 3}, {2, 4}});
  EXPECT_NEAR(m.axis_angle * kDeg, 0.0, 1.0);
  EXPECT_GT(m.elongation, 10.0);
  EXPECT_EQ(m.bboxWidth(), 5);
  EXPECT_EQ(m.bboxHeight(), 1);
}

TEST(Moments, VerticalLineAxis) {
  const auto m = computeMoments({{0, 2}, {1, 2}, {2, 2}, {3, 2}, {4, 2}});
  EXPECT_NEAR(std::abs(m.axis_angle) * kDeg, 90.0, 1.0);
  EXPECT_GT(m.elongation, 10.0);
}

TEST(Moments, DiagonalAxes) {
  // "/" in (col=x, row=y): y grows with x → +45°.
  const auto slash = computeMoments({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  EXPECT_NEAR(slash.axis_angle * kDeg, 45.0, 1.0);
  // "\": y falls with x → −45°.
  const auto back = computeMoments({{3, 0}, {2, 1}, {1, 2}, {0, 3}});
  EXPECT_NEAR(back.axis_angle * kDeg, -45.0, 1.0);
}

TEST(Moments, CompactBlobLowElongation) {
  const auto m = computeMoments({{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  EXPECT_NEAR(m.elongation, 1.0, 1e-9);
}

TEST(Moments, WeightedMomentsFollowBrightCells) {
  GrayMap g(3, 3, 0.0);
  g.at(0, 0) = 1.0;
  g.at(2, 2) = 3.0;
  const auto m = computeWeightedMoments(g);
  EXPECT_EQ(m.count, 2);
  EXPECT_NEAR(m.centroid_row, 1.5, 1e-12);
  EXPECT_NEAR(m.centroid_col, 1.5, 1e-12);
}

TEST(Moments, FromBinaryMapMatchesCellList) {
  BinaryMap b(3, 3);
  b.set(0, 0, true);
  b.set(1, 1, true);
  b.set(2, 2, true);
  const auto m1 = computeMoments(b);
  const auto m2 = computeMoments(std::vector<Cell>{{0, 0}, {1, 1}, {2, 2}});
  EXPECT_DOUBLE_EQ(m1.axis_angle, m2.axis_angle);
  EXPECT_DOUBLE_EQ(m1.centroid_row, m2.centroid_row);
}

TEST(ArcBow, StraightLineNearZero) {
  EXPECT_NEAR(arcBowSigned({{0, 0}, {1, 1}, {2, 2}, {3, 3}}), 0.0, 1e-9);
}

TEST(ArcBow, LeftArcNegativeForDownwardTravel) {
  // "⊂" drawn top→bottom: cells bow toward −x.  Travel direction (0,−1);
  // apex at col 0 left of the chord col 2 → cross(chord, offset) sign.
  const std::vector<Cell> arc = {{4, 2}, {3, 1}, {2, 0}, {1, 1}, {0, 2}};
  const double bow = arcBowSigned(arc);
  EXPECT_GT(std::abs(bow), 1.0);
}

TEST(ArcBow, OppositeArcsOppositeSigns) {
  const std::vector<Cell> left = {{4, 2}, {3, 1}, {2, 0}, {1, 1}, {0, 2}};
  const std::vector<Cell> right = {{4, 2}, {3, 3}, {2, 4}, {1, 3}, {0, 2}};
  EXPECT_LT(arcBowSigned(left) * arcBowSigned(right), 0.0);
}

TEST(ArcBow, TooFewCellsIsZero) {
  EXPECT_DOUBLE_EQ(arcBowSigned({{0, 0}, {1, 1}}), 0.0);
  EXPECT_DOUBLE_EQ(arcBowSigned({}), 0.0);
}

TEST(ArcBow, DegenerateChordIsZero) {
  EXPECT_DOUBLE_EQ(arcBowSigned({{1, 1}, {2, 2}, {1, 1}}), 0.0);
}

}  // namespace
}  // namespace rfipad::imgproc
