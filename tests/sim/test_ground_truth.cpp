#include "sim/ground_truth.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rfipad::sim {
namespace {

Trajectory vlineTrajectory() {
  UserProfile u;
  u.jitter_std_m = 0.0;
  TrajectoryBuilder b(u, Rng(5));
  b.hold(0.3).stroke({StrokeKind::kVLine, StrokeDir::kForward}, 0.1).retract();
  return b.build();
}

TEST(Kinect, SamplesAtFrameRate) {
  const auto traj = vlineTrajectory();
  Rng rng(1);
  const auto track = kinectTrack(traj, {30.0, 0.0}, rng);
  ASSERT_GT(track.size(), 10u);
  // ~30 fps spacing.
  EXPECT_NEAR(track[1].t - track[0].t, 1.0 / 30.0, 1e-9);
  EXPECT_NEAR(static_cast<double>(track.size()) / traj.durationS(), 30.0, 1.5);
}

TEST(Kinect, NoiselessTrackFollowsTrajectory) {
  const auto traj = vlineTrajectory();
  Rng rng(1);
  const auto track = kinectTrack(traj, {30.0, 0.0}, rng);
  for (const auto& s : track) {
    EXPECT_NEAR(distance(s.hand, traj.positionAt(s.t)), 0.0, 1e-9);
  }
}

TEST(Kinect, NoiseBounded) {
  const auto traj = vlineTrajectory();
  Rng rng(2);
  const auto track = kinectTrack(traj, {30.0, 0.01}, rng);
  double worst = 0.0;
  for (const auto& s : track) {
    worst = std::max(worst, distance(s.hand, traj.positionAt(s.t)));
  }
  EXPECT_GT(worst, 0.001);
  EXPECT_LT(worst, 0.08);
}

TEST(Kinect, RejectsBadFps) {
  const auto traj = vlineTrajectory();
  Rng rng(1);
  EXPECT_THROW(kinectTrack(traj, {0.0, 0.01}, rng), std::invalid_argument);
}

TEST(Rasterize, ColumnTrackLightsColumn) {
  Rng rng(3);
  tag::TagArray array(tag::ArrayConfig{}, rng);
  const auto traj = vlineTrajectory();
  Rng krng(4);
  const auto track = kinectTrack(traj, {60.0, 0.0}, krng);
  const auto map = rasterizeTrack(track, array, 0.08);
  // The centre column (x = 0) accumulates more than edge columns.
  double centre = 0.0, edge = 0.0;
  for (int r = 0; r < 5; ++r) {
    centre += map.at(r, 2);
    edge += map.at(r, 0) + map.at(r, 4);
  }
  EXPECT_GT(centre, edge);
}

TEST(Rasterize, HighSamplesExcluded) {
  Rng rng(3);
  tag::TagArray array(tag::ArrayConfig{}, rng);
  // A track hovering far above the pad contributes nothing.
  std::vector<SkeletalSample> track = {{0.0, {0.0, 0.0, 0.5}},
                                       {0.1, {0.0, 0.0, 0.4}}};
  const auto map = rasterizeTrack(track, array, 0.08);
  EXPECT_DOUBLE_EQ(map.maxValue(), 0.0);
}

TEST(Correlation, IdenticalMapsPerfect) {
  imgproc::GrayMap a(3, 3, std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_NEAR(mapCorrelation(a, a), 1.0, 1e-12);
}

TEST(Correlation, AntiCorrelatedMaps) {
  imgproc::GrayMap a(1, 3, std::vector<double>{1, 2, 3});
  imgproc::GrayMap b(1, 3, std::vector<double>{3, 2, 1});
  EXPECT_NEAR(mapCorrelation(a, b), -1.0, 1e-12);
}

TEST(Correlation, FlatMapGivesZero) {
  imgproc::GrayMap a(2, 2, 1.0);
  imgproc::GrayMap b(2, 2, std::vector<double>{1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(mapCorrelation(a, b), 0.0);
}

TEST(Correlation, SizeMismatchThrows) {
  imgproc::GrayMap a(2, 2);
  imgproc::GrayMap b(3, 3);
  EXPECT_THROW(mapCorrelation(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace rfipad::sim
