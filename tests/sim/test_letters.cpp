#include "sim/letters.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

namespace rfipad::sim {
namespace {

TEST(Letters, GroupSizesMatchFig23) {
  EXPECT_EQ(lettersWithStrokeCount(1).size(), 2u);
  EXPECT_EQ(lettersWithStrokeCount(2).size(), 9u);
  EXPECT_EQ(lettersWithStrokeCount(3).size(), 12u);
  EXPECT_EQ(lettersWithStrokeCount(4).size(), 3u);
  EXPECT_THROW(lettersWithStrokeCount(0), std::invalid_argument);
  EXPECT_THROW(lettersWithStrokeCount(5), std::invalid_argument);
}

TEST(Letters, GroupsPartitionAlphabet) {
  std::set<char> all;
  for (int g = 1; g <= 4; ++g) {
    for (char c : lettersWithStrokeCount(g)) {
      EXPECT_TRUE(all.insert(c).second) << c;
      EXPECT_EQ(letterStrokeCount(c), g) << c;
    }
  }
  EXPECT_EQ(all.size(), 26u);
}

TEST(Letters, PaperGroupMembership) {
  // §V-C: Group #1 = {C, I}; Group #4 = {E, M, W}.
  const auto& g1 = lettersWithStrokeCount(1);
  EXPECT_NE(std::find(g1.begin(), g1.end(), 'C'), g1.end());
  EXPECT_NE(std::find(g1.begin(), g1.end(), 'I'), g1.end());
  const auto& g4 = lettersWithStrokeCount(4);
  for (char c : {'E', 'M', 'W'}) {
    EXPECT_NE(std::find(g4.begin(), g4.end(), c), g4.end()) << c;
  }
}

TEST(Letters, PlansStayInsideBox) {
  const double hw = 0.1, hh = 0.12;
  for (char c = 'A'; c <= 'Z'; ++c) {
    for (const auto& plan : letterPlans(c, hw, hh)) {
      for (double u = 0.0; u <= 1.0; u += 0.05) {
        const Vec2 p = strokePoint(plan, u);
        EXPECT_LE(std::abs(p.x), hw * 1.6) << c;
        EXPECT_LE(std::abs(p.y), hh * 1.6) << c;
      }
    }
  }
}

TEST(Letters, KindsMatchPlans) {
  for (char c = 'A'; c <= 'Z'; ++c) {
    const auto plans = letterPlans(c, 0.1, 0.1);
    const auto kinds = letterStrokeKinds(c);
    ASSERT_EQ(plans.size(), kinds.size()) << c;
    for (std::size_t i = 0; i < plans.size(); ++i) {
      EXPECT_EQ(plans[i].stroke.kind, kinds[i]) << c << " stroke " << i;
    }
  }
}

TEST(Letters, AmbiguousPairsShareSequences) {
  EXPECT_EQ(letterStrokeKinds('D'), letterStrokeKinds('P'));
  EXPECT_EQ(letterStrokeKinds('O'), letterStrokeKinds('S'));
  EXPECT_EQ(letterStrokeKinds('V'), letterStrokeKinds('X'));
}

TEST(Letters, DBowlReachesBarBottomButPDoesNot) {
  // The positional fact the paper uses to split D from P.
  const auto d = letterPlans('D', 0.1, 0.1);
  const auto p = letterPlans('P', 0.1, 0.1);
  const double d_bar_bottom = std::min(d[0].from.y, d[0].to.y);
  const double d_bowl_end = std::min(d[1].from.y, d[1].to.y);
  EXPECT_NEAR(d_bowl_end, d_bar_bottom, 0.02);
  const double p_bar_bottom = std::min(p[0].from.y, p[0].to.y);
  const double p_bowl_end = std::min(p[1].from.y, p[1].to.y);
  EXPECT_GT(p_bowl_end, p_bar_bottom + 0.05);
}

TEST(Letters, XCrossesVDoesNot) {
  auto segs = [](char c) {
    const auto plans = letterPlans(c, 0.1, 0.1);
    return std::pair{plans[0], plans[1]};
  };
  // X: midpoints of both strokes nearly coincide (they cross).
  const auto [x1, x2] = segs('X');
  const Vec2 xm1 = lerp(x1.from, x1.to, 0.5);
  const Vec2 xm2 = lerp(x2.from, x2.to, 0.5);
  EXPECT_LT(distance(xm1, xm2), 0.03);
  // V: stroke 1 ends where stroke 2 begins.
  const auto [v1, v2] = segs('V');
  EXPECT_LT(distance(v1.to, v2.from), 0.01);
}

TEST(Letters, RejectsBadInput) {
  EXPECT_THROW(letterPlans('a', 0.1, 0.1), std::invalid_argument);
  EXPECT_THROW(letterPlans('A', 0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(letterStrokeKinds('@'), std::invalid_argument);
}

TEST(Letters, ScalingIsLinear) {
  const auto small = letterPlans('H', 0.05, 0.05);
  const auto big = letterPlans('H', 0.1, 0.1);
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_NEAR(big[i].from.x, 2.0 * small[i].from.x, 1e-12);
    EXPECT_NEAR(big[i].to.y, 2.0 * small[i].to.y, 1e-12);
  }
}

}  // namespace
}  // namespace rfipad::sim
