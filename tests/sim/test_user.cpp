#include "sim/user.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rfipad::sim {
namespace {

TEST(Users, TenVolunteers) {
  EXPECT_EQ(defaultUsers().size(), 10u);
}

TEST(Users, FastUsersAreSixAndNine) {
  // Fig. 20: volunteers #6 and #9 move relatively fast.
  const auto& users = defaultUsers();
  double max_speed = 0.0;
  for (const auto& u : users) max_speed = std::max(max_speed, u.speed_scale);
  EXPECT_DOUBLE_EQ(
      std::max(defaultUser(6).speed_scale, defaultUser(9).speed_scale),
      max_speed);
  EXPECT_GT(defaultUser(6).speed_scale, 1.2);
  EXPECT_GT(defaultUser(9).speed_scale, 1.2);
  for (int i : {1, 2, 3, 4, 5, 7, 8, 10}) {
    EXPECT_LT(defaultUser(i).speed_scale, 1.2) << i;
  }
}

TEST(Users, PhysiologyInPaperRanges) {
  for (const auto& u : defaultUsers()) {
    EXPECT_GT(u.hover_height_m, 0.0);
    EXPECT_LE(u.hover_height_m, 0.05);  // §VI: within 5 cm of the plane
    EXPECT_GT(u.lift_height_m, u.hover_height_m);
    EXPECT_GE(u.arm_length_m, 0.56);    // §V-B6: 56–70 cm arm lengths
    EXPECT_LE(u.arm_length_m, 0.70);
    EXPECT_GT(u.hand_rcs_m2, 0.0);
    EXPECT_GT(u.jitter_std_m, 0.0);
  }
}

TEST(Users, OneBasedAccessor) {
  EXPECT_EQ(defaultUser(1).name, "user-1");
  EXPECT_EQ(defaultUser(10).name, "user-10");
  EXPECT_THROW(defaultUser(0), std::invalid_argument);
  EXPECT_THROW(defaultUser(11), std::invalid_argument);
}

TEST(Users, ArmRcsGrowsWithArmLength) {
  const auto& users = defaultUsers();
  const UserProfile* longest = &users[0];
  const UserProfile* shortest = &users[0];
  for (const auto& u : users) {
    if (u.arm_length_m > longest->arm_length_m) longest = &u;
    if (u.arm_length_m < shortest->arm_length_m) shortest = &u;
  }
  EXPECT_GT(longest->arm_rcs_m2, shortest->arm_rcs_m2);
}

}  // namespace
}  // namespace rfipad::sim
