#include "sim/trajectory.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rfipad::sim {
namespace {

UserProfile calmUser() {
  UserProfile u;
  u.jitter_std_m = 0.0;  // deterministic paths for geometric assertions
  return u;
}

Trajectory strokeTraj(const DirectedStroke& s, UserProfile u = calmUser()) {
  TrajectoryBuilder b(u, Rng(3));
  b.hold(0.3).stroke(s, 0.1).retract();
  return b.build();
}

TEST(Trajectory, StartsAtRest) {
  const auto traj = strokeTraj({StrokeKind::kVLine, StrokeDir::kForward});
  const Vec3 p0 = traj.positionAt(traj.startTime());
  EXPECT_NEAR(distance(p0, TrajectoryBuilder::restPosition()), 0.0, 1e-9);
}

TEST(Trajectory, EndsAtRestAfterRetract) {
  const auto traj = strokeTraj({StrokeKind::kHLine, StrokeDir::kForward});
  const Vec3 pe = traj.positionAt(traj.endTime());
  EXPECT_NEAR(distance(pe, TrajectoryBuilder::restPosition()), 0.0, 1e-9);
}

TEST(Trajectory, RecordsStrokeInterval) {
  const auto traj = strokeTraj({StrokeKind::kVLine, StrokeDir::kForward});
  ASSERT_EQ(traj.strokes().size(), 1u);
  const auto& si = traj.strokes().front();
  EXPECT_GT(si.t1, si.t0);
  EXPECT_GT(si.t0, 0.3);  // after the initial hold
  EXPECT_LT(si.t1, traj.endTime());
}

TEST(Trajectory, WritesAtHoverHeight) {
  UserProfile u = calmUser();
  const auto traj = strokeTraj({StrokeKind::kHLine, StrokeDir::kForward}, u);
  const auto& si = traj.strokes().front();
  for (double t = si.t0 + 0.01; t < si.t1; t += 0.05) {
    EXPECT_NEAR(traj.positionAt(t).z, u.hover_height_m, 1e-9);
  }
}

TEST(Trajectory, FollowsStrokePath) {
  const auto traj = strokeTraj({StrokeKind::kHLine, StrokeDir::kForward});
  const auto& si = traj.strokes().front();
  const Vec3 start = traj.positionAt(si.t0);
  const Vec3 end = traj.positionAt(si.t1);
  EXPECT_NEAR(start.x, -0.1, 1e-6);
  EXPECT_NEAR(end.x, 0.1, 1e-6);
}

TEST(Trajectory, ContinuousEverywhere) {
  UserProfile u;  // with jitter
  TrajectoryBuilder b(u, Rng(7));
  b.hold(0.2)
      .stroke({StrokeKind::kLeftArc, StrokeDir::kForward}, 0.1)
      .stroke({StrokeKind::kClick, StrokeDir::kForward}, 0.1)
      .retract();
  const auto traj = b.build();
  Vec3 prev = traj.positionAt(traj.startTime());
  for (double t = traj.startTime(); t <= traj.endTime(); t += 0.005) {
    const Vec3 p = traj.positionAt(t);
    EXPECT_LT(distance(p, prev), 0.02) << "jump at t=" << t;
    prev = p;
  }
}

TEST(Trajectory, ClampedOutsideSpan) {
  const auto traj = strokeTraj({StrokeKind::kVLine, StrokeDir::kForward});
  const Vec3 before = traj.positionAt(traj.startTime() - 5.0);
  const Vec3 after = traj.positionAt(traj.endTime() + 5.0);
  EXPECT_NEAR(distance(before, traj.positionAt(traj.startTime())), 0.0, 1e-9);
  EXPECT_NEAR(distance(after, traj.positionAt(traj.endTime())), 0.0, 1e-9);
}

TEST(Trajectory, ClickDipsTowardPlane) {
  const auto traj = strokeTraj({StrokeKind::kClick, StrokeDir::kForward});
  const auto& si = traj.strokes().front();
  double min_z = 1.0;
  for (double t = si.t0; t <= si.t1; t += 0.01) {
    min_z = std::min(min_z, traj.positionAt(t).z);
  }
  EXPECT_LT(min_z, 0.03);
  EXPECT_GT(min_z, 0.0);
}

TEST(Trajectory, FasterUserFinishesSooner) {
  UserProfile slow = calmUser();
  slow.speed_scale = 0.8;
  UserProfile fast = calmUser();
  fast.speed_scale = 1.6;
  const auto a = strokeTraj({StrokeKind::kHLine, StrokeDir::kForward}, slow);
  const auto b = strokeTraj({StrokeKind::kHLine, StrokeDir::kForward}, fast);
  EXPECT_GT(a.strokes().front().t1 - a.strokes().front().t0,
            b.strokes().front().t1 - b.strokes().front().t0);
}

TEST(Trajectory, VelocityFiniteAndReasonable) {
  const auto traj = strokeTraj({StrokeKind::kSlash, StrokeDir::kForward});
  for (double t = traj.startTime(); t <= traj.endTime(); t += 0.05) {
    const double v = traj.velocityAt(t).norm();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 3.0);  // human hands stay under a few m/s
  }
}

TEST(Trajectory, MultiStrokeIntervalsOrdered) {
  TrajectoryBuilder b(calmUser(), Rng(5));
  b.hold(0.3);
  for (int i = 0; i < 3; ++i)
    b.stroke({StrokeKind::kVLine, StrokeDir::kForward}, 0.08);
  const auto traj = b.build();
  ASSERT_EQ(traj.strokes().size(), 3u);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_GT(traj.strokes()[i].t0, traj.strokes()[i - 1].t1);
  }
}

TEST(Trajectory, AdjustmentsHappenAtLiftHeight) {
  UserProfile u = calmUser();
  TrajectoryBuilder b(u, Rng(5));
  b.hold(0.2)
      .stroke({StrokeKind::kVLine, StrokeDir::kForward}, 0.08)
      .stroke({StrokeKind::kHLine, StrokeDir::kForward}, 0.08);
  const auto traj = b.build();
  // Midpoint between the strokes: the hand is raised.
  const double gap_mid =
      (traj.strokes()[0].t1 + traj.strokes()[1].t0) / 2.0;
  EXPECT_GT(traj.positionAt(gap_mid).z, u.hover_height_m * 2.0);
}

TEST(Trajectory, EmptyBuilderStillValid) {
  TrajectoryBuilder b(calmUser(), Rng(1));
  const auto traj = b.build();
  EXPECT_GT(traj.durationS(), 0.0);
  EXPECT_TRUE(traj.strokes().empty());
}

TEST(Trajectory, JitterBoundedByProfile) {
  UserProfile u = calmUser();
  u.jitter_std_m = 0.004;
  TrajectoryBuilder b(u, Rng(9));
  b.hold(5.0);
  const auto traj = b.build();
  const Vec3 anchor = TrajectoryBuilder::restPosition();
  for (double t = 0.0; t < 5.0; t += 0.05) {
    EXPECT_LT(distance(traj.positionAt(t), anchor), 0.03);
  }
}

}  // namespace
}  // namespace rfipad::sim
