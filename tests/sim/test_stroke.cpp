#include "sim/stroke.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace rfipad::sim {
namespace {

TEST(StrokePlan, CanonicalLineEndpoints) {
  const auto h = canonicalPlan({StrokeKind::kHLine, StrokeDir::kForward}, 0.1);
  EXPECT_DOUBLE_EQ(h.from.x, -0.1);
  EXPECT_DOUBLE_EQ(h.to.x, 0.1);
  EXPECT_DOUBLE_EQ(h.from.y, 0.0);

  const auto v = canonicalPlan({StrokeKind::kVLine, StrokeDir::kForward}, 0.1);
  EXPECT_DOUBLE_EQ(v.from.y, 0.1);   // top
  EXPECT_DOUBLE_EQ(v.to.y, -0.1);    // bottom (kForward = ↓)
}

TEST(StrokePlan, ReverseSwapsEndpoints) {
  const auto fwd = canonicalPlan({StrokeKind::kSlash, StrokeDir::kForward}, 0.1);
  const auto rev = canonicalPlan({StrokeKind::kSlash, StrokeDir::kReverse}, 0.1);
  EXPECT_DOUBLE_EQ(fwd.from.x, rev.to.x);
  EXPECT_DOUBLE_EQ(fwd.to.y, rev.from.y);
}

TEST(StrokePlan, ClickIsAPoint) {
  const auto c = canonicalPlan({StrokeKind::kClick, StrokeDir::kForward}, 0.1);
  EXPECT_DOUBLE_EQ(c.from.x, c.to.x);
  EXPECT_DOUBLE_EQ(c.from.y, c.to.y);
}

TEST(StrokePlan, RejectsNonPositiveExtent) {
  EXPECT_THROW(canonicalPlan({StrokeKind::kHLine, StrokeDir::kForward}, 0.0),
               std::invalid_argument);
}

TEST(StrokePoint, LineInterpolation) {
  const auto plan = canonicalPlan({StrokeKind::kHLine, StrokeDir::kForward}, 0.1);
  EXPECT_DOUBLE_EQ(strokePoint(plan, 0.0).x, -0.1);
  EXPECT_DOUBLE_EQ(strokePoint(plan, 1.0).x, 0.1);
  EXPECT_DOUBLE_EQ(strokePoint(plan, 0.5).x, 0.0);
  // Clamped outside [0,1].
  EXPECT_DOUBLE_EQ(strokePoint(plan, -1.0).x, -0.1);
  EXPECT_DOUBLE_EQ(strokePoint(plan, 2.0).x, 0.1);
}

TEST(StrokePoint, LeftArcBulgesLeft) {
  const auto plan =
      canonicalPlan({StrokeKind::kLeftArc, StrokeDir::kForward}, 0.1);
  const Vec2 apex = strokePoint(plan, 0.5);
  // "⊂" bulges toward −x of its chord.
  EXPECT_LT(apex.x, plan.from.x - 0.05);
  // Endpoints honoured.
  EXPECT_NEAR(distance(strokePoint(plan, 0.0), plan.from), 0.0, 1e-12);
  EXPECT_NEAR(distance(strokePoint(plan, 1.0), plan.to), 0.0, 1e-12);
}

TEST(StrokePoint, RightArcBulgesRight) {
  const auto plan =
      canonicalPlan({StrokeKind::kRightArc, StrokeDir::kForward}, 0.1);
  EXPECT_GT(strokePoint(plan, 0.5).x, plan.from.x + 0.05);
}

TEST(StrokePoint, ArcBulgeInvariantToDirection) {
  // The shape is a property of the stroke kind, not travel direction.
  const auto fwd =
      canonicalPlan({StrokeKind::kLeftArc, StrokeDir::kForward}, 0.1);
  const auto rev =
      canonicalPlan({StrokeKind::kLeftArc, StrokeDir::kReverse}, 0.1);
  EXPECT_NEAR(strokePoint(fwd, 0.5).x, strokePoint(rev, 0.5).x, 1e-9);
}

TEST(StrokePoint, HorizontalChordArcBowsDown) {
  // Letter hooks (J, U): a "⊂" with a horizontal chord bows toward −y.
  StrokePlan plan;
  plan.stroke = {StrokeKind::kLeftArc, StrokeDir::kForward};
  plan.from = {-0.05, 0.0};
  plan.to = {0.05, 0.0};
  EXPECT_LT(strokePoint(plan, 0.5).y, -0.03);
}

TEST(StrokePoint, ArcStaysOnCircle) {
  const auto plan =
      canonicalPlan({StrokeKind::kRightArc, StrokeDir::kForward}, 0.1);
  const Vec2 center = (plan.from + plan.to) * 0.5;
  const double radius = (plan.from - center).norm();
  for (double u = 0.0; u <= 1.0; u += 0.1) {
    EXPECT_NEAR((strokePoint(plan, u) - center).norm(), radius, 1e-9) << u;
  }
}

TEST(StrokeLength, LinesAndArcs) {
  const auto h = canonicalPlan({StrokeKind::kHLine, StrokeDir::kForward}, 0.1);
  EXPECT_NEAR(strokeLength(h), 0.2, 1e-12);
  const auto d = canonicalPlan({StrokeKind::kSlash, StrokeDir::kForward}, 0.1);
  EXPECT_NEAR(strokeLength(d), 0.2 * std::sqrt(2.0), 1e-12);
  const auto arc =
      canonicalPlan({StrokeKind::kLeftArc, StrokeDir::kForward}, 0.1);
  EXPECT_NEAR(strokeLength(arc), 3.14159 * 0.1, 1e-3);  // π·chord/2
  const auto click =
      canonicalPlan({StrokeKind::kClick, StrokeDir::kForward}, 0.1);
  EXPECT_GT(strokeLength(click), 0.0);
}

class AllStrokesSweep : public ::testing::TestWithParam<int> {};
TEST_P(AllStrokesSweep, PathContinuous) {
  const auto& s = allDirectedStrokes()[static_cast<std::size_t>(GetParam())];
  const auto plan = canonicalPlan(s, 0.1);
  Vec2 prev = strokePoint(plan, 0.0);
  for (double u = 0.02; u <= 1.0; u += 0.02) {
    const Vec2 p = strokePoint(plan, u);
    EXPECT_LT(distance(p, prev), 0.02) << directedStrokeName(s) << " u=" << u;
    prev = p;
  }
}
INSTANTIATE_TEST_SUITE_P(Sim, AllStrokesSweep, ::testing::Range(0, 13));

}  // namespace
}  // namespace rfipad::sim
