#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace rfipad::sim {
namespace {

TEST(Scenario, DefaultMatchesPaperPrototype) {
  Scenario s(ScenarioConfig{});
  EXPECT_EQ(s.array().rows(), 5);
  EXPECT_EQ(s.array().cols(), 5);
  EXPECT_NEAR(s.padHalfExtent(), 0.12, 1e-9);
  // NLOS: antenna behind the plane at 32 cm.
  EXPECT_NEAR(s.antenna().position().z, -0.32, 1e-9);
  EXPECT_NEAR(s.antenna().boresight().z, 1.0, 1e-9);
}

TEST(Scenario, LosPutsAntennaInFront) {
  ScenarioConfig cfg;
  cfg.placement = AntennaPlacement::kLOS;
  Scenario s(cfg);
  EXPECT_GT(s.antenna().position().z, 0.0);
  // Boresight points back toward the pad.
  EXPECT_LT(s.antenna().boresight().z, 0.0);
}

TEST(Scenario, TiltRotatesBoresight) {
  ScenarioConfig straight;
  ScenarioConfig tilted;
  tilted.antenna_tilt_deg = 45.0;
  Scenario a(straight);
  Scenario b(tilted);
  EXPECT_NEAR(a.antenna().boresight().x, 0.0, 1e-9);
  EXPECT_NEAR(b.antenna().boresight().x, std::sin(45.0 * 3.14159 / 180.0),
              1e-3);
}

TEST(Scenario, RejectsBadDistance) {
  ScenarioConfig cfg;
  cfg.reader_distance_m = 0.0;
  EXPECT_THROW(Scenario{cfg}, std::invalid_argument);
}

TEST(Scenario, StaticCaptureProducesReads) {
  Scenario s(ScenarioConfig{});
  const auto stream = s.captureStatic(1.0);
  EXPECT_GT(stream.size(), 200u);
  EXPECT_EQ(stream.numTags(), 25u);
}

TEST(Scenario, SceneContainsHandAndArm) {
  Scenario s(ScenarioConfig{});
  TrajectoryBuilder b(defaultUser(1), s.forkRng(1));
  b.hold(1.0);
  const auto traj = b.build();
  const auto scene = s.sceneFor(traj, defaultUser(1), 0.0);
  const auto scatterers = scene(0.5);
  ASSERT_EQ(scatterers.size(), 3u);  // hand + two forearm lumps
  // The hand leads; arm lumps sit between hand and body anchor.
  EXPECT_NEAR(scatterers[0].rcs_m2, defaultUser(1).hand_rcs_m2, 1e-12);
  EXPECT_GT(scatterers[1].position.z, scatterers[0].position.z);
  EXPECT_GT(scatterers[2].position.z, scatterers[1].position.z);
}

TEST(Scenario, CaptureShiftsTruthToReaderClock) {
  Scenario s(ScenarioConfig{});
  s.captureStatic(2.0);  // advance the clock
  TrajectoryBuilder b(defaultUser(1), s.forkRng(2));
  b.hold(0.3).stroke({StrokeKind::kVLine, StrokeDir::kForward}, 0.1).retract();
  const auto cap = s.capture(b.build(), defaultUser(1));
  ASSERT_EQ(cap.truth.size(), 1u);
  EXPECT_GT(cap.truth.front().t0, 2.0);  // on the reader clock
  EXPECT_GE(cap.stream.startTime(), 2.0);
  EXPECT_LE(cap.truth.front().t1, cap.stream.endTime() + 0.5);
}

TEST(Scenario, MotionDisturbsPhases) {
  Scenario s(ScenarioConfig{});
  const auto quiet = s.captureStatic(1.5);
  TrajectoryBuilder b(defaultUser(1), s.forkRng(3));
  b.hold(0.2).stroke({StrokeKind::kVLine, StrokeDir::kForward}, 0.1).retract();
  const auto cap = s.capture(b.build(), defaultUser(1));
  // Compare phase spread of the centre tag between quiet and motion.
  const auto centre = s.array().indexOf(2, 2);
  auto spread = [&](const reader::SampleStream& st) {
    const auto series = st.seriesFor(centre);
    double lo = 1e9, hi = -1e9;
    for (double p : series.phases) {
      lo = std::min(lo, p);
      hi = std::max(hi, p);
    }
    return hi - lo;
  };
  EXPECT_GT(spread(cap.stream), spread(quiet));
}

TEST(Scenario, AnechoicLocationZero) {
  ScenarioConfig cfg;
  cfg.location = 0;
  Scenario s(cfg);
  EXPECT_TRUE(s.reader().channel().environment().reflectors.empty());
}

TEST(Scenario, SeedsReproduceCaptures) {
  auto run = [](std::uint64_t seed) {
    ScenarioConfig cfg;
    cfg.seed = seed;
    Scenario s(cfg);
    return s.captureStatic(0.5).size();
  };
  EXPECT_EQ(run(99), run(99));
}

TEST(Scenario, BodyAnchorBehindHand) {
  const Vec3 anchor = bodyAnchor();
  EXPECT_GT(anchor.z, 0.3);  // well away from the plane
  EXPECT_LT(anchor.y, 0.0);  // below the pad centre
}

}  // namespace
}  // namespace rfipad::sim
