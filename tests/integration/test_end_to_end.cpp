// End-to-end integration: simulated testbed → calibration → recognition
// engine.  These mirror the paper's headline behaviours at small scale (the
// full sweeps live in bench/).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "sim/letters.hpp"
#include "sim/scenario.hpp"

namespace rfipad {
namespace {

struct Rig {
  sim::Scenario scenario;
  core::StaticProfile profile;
  core::RecognitionEngine engine;

  static sim::ScenarioConfig config(std::uint64_t seed) {
    sim::ScenarioConfig cfg;
    cfg.seed = seed;
    return cfg;
  }

  static core::EngineOptions engineOptions(const sim::Scenario& s) {
    core::EngineOptions eo;
    eo.rows = s.array().rows();
    eo.cols = s.array().cols();
    for (const auto& t : s.array().tags())
      eo.tag_xy.push_back({t.position.x, t.position.y});
    return eo;
  }

  explicit Rig(std::uint64_t seed = 42)
      : scenario(config(seed)),
        profile(core::StaticProfile::calibrate(scenario.captureStatic(5.0),
                                               25)),
        engine(profile, engineOptions(scenario)) {}

  sim::Capture write(const DirectedStroke& s, int user = 1,
                     std::uint64_t salt = 7) {
    sim::TrajectoryBuilder b(sim::defaultUser(user), scenario.forkRng(salt));
    b.hold(0.4).stroke(s, 0.9 * scenario.padHalfExtent()).retract().hold(0.3);
    return scenario.capture(b.build(), sim::defaultUser(user));
  }

  sim::Capture writeLetter(char c, int user = 1, std::uint64_t salt = 9) {
    const auto plans = sim::letterPlans(c, scenario.padHalfExtent(),
                                        0.95 * scenario.padHalfExtent());
    sim::TrajectoryBuilder b(sim::defaultUser(user), scenario.forkRng(salt));
    b.hold(0.4);
    for (const auto& p : plans) b.stroke(p);
    b.retract().hold(0.3);
    return scenario.capture(b.build(), sim::defaultUser(user));
  }
};

TEST(EndToEnd, CalibrationSeesAllTags) {
  Rig rig(1);
  for (std::uint32_t i = 0; i < 25; ++i) {
    EXPECT_GT(rig.profile.tag(i).samples, 20u) << i;
    EXPECT_GT(rig.profile.tag(i).deviation_bias, 0.0);
  }
}

TEST(EndToEnd, RecognisesVerticalStroke) {
  Rig rig(42);
  const DirectedStroke truth{StrokeKind::kVLine, StrokeDir::kForward};
  const auto cap = rig.write(truth);
  const auto events = rig.engine.detectStrokes(cap.stream);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().observation.stroke.kind, StrokeKind::kVLine);
}

TEST(EndToEnd, MotionBatteryAccuracyAboveEightyPercent) {
  // Full 13-motion battery, default NLOS setup: the paper reports ≈94%;
  // our simulator should land comfortably above 80% on a small sample.
  Rig rig(7);
  int correct = 0, total = 0;
  std::uint64_t salt = 100;
  for (int rep = 0; rep < 2; ++rep) {
    for (const auto& s : allDirectedStrokes()) {
      const auto cap = rig.write(s, 1 + (total % 4), salt++);
      const auto events = rig.engine.detectStrokes(cap.stream);
      ++total;
      for (const auto& ev : events) {
        const double ov = std::min(ev.interval.t1, cap.truth[0].t1) -
                          std::max(ev.interval.t0, cap.truth[0].t0);
        if (ov <= 0.2) continue;
        const bool kind_ok = ev.observation.stroke.kind == s.kind;
        const bool dir_ok = s.kind == StrokeKind::kClick ||
                            ev.observation.stroke.dir == s.dir;
        if (kind_ok && dir_ok) ++correct;
        break;
      }
    }
  }
  EXPECT_GE(correct, total * 4 / 5) << correct << "/" << total;
}

TEST(EndToEnd, RecognisesLetterH) {
  Rig rig(21);
  const auto cap = rig.writeLetter('H');
  EXPECT_EQ(rig.engine.recognizeLetter(cap.stream), 'H');
}

TEST(EndToEnd, RecognisesSingleStrokeLetters) {
  Rig rig(22);
  EXPECT_EQ(rig.engine.recognizeLetter(rig.writeLetter('I', 1, 31).stream),
            'I');
  // 'C' is a single arc; accept a couple of attempts (the arc/line margin
  // is genuinely thin on a 5x5 grid).
  int c_ok = 0;
  for (std::uint64_t salt : {32u, 33u, 34u}) {
    if (rig.engine.recognizeLetter(rig.writeLetter('C', 1, salt).stream) == 'C')
      ++c_ok;
  }
  EXPECT_GE(c_ok, 2);
}

TEST(EndToEnd, SegmentationFindsEachStrokeOfL) {
  Rig rig(23);
  const auto cap = rig.writeLetter('L');
  const auto events = rig.engine.detectStrokes(cap.stream);
  EXPECT_GE(events.size(), 2u);
  EXPECT_LE(events.size(), 3u);
}

TEST(EndToEnd, ProcessingTimeIsInteractive) {
  // Fig. 24: response times well under 0.4 s even on modest hardware.
  Rig rig(25);
  const auto cap = rig.write({StrokeKind::kHLine, StrokeDir::kForward});
  const auto events = rig.engine.detectStrokes(cap.stream);
  ASSERT_FALSE(events.empty());
  EXPECT_LT(events.front().processing_time_s, 0.4);
}

TEST(EndToEnd, QuietCaptureYieldsNoStrokes) {
  Rig rig(26);
  const auto stream = rig.scenario.captureStatic(3.0);
  EXPECT_TRUE(rig.engine.detectStrokes(stream).empty());
}

TEST(EndToEnd, GraymapBrightAlongStrokePath) {
  Rig rig(27);
  const auto cap = rig.write({StrokeKind::kVLine, StrokeDir::kForward});
  const auto events = rig.engine.detectStrokes(cap.stream);
  ASSERT_FALSE(events.empty());
  const auto& g = events.front().graymap;
  double col2 = 0.0, col0 = 0.0;
  for (int r = 0; r < 5; ++r) {
    col2 += g.at(r, 2);
    col0 += g.at(r, 0);
  }
  EXPECT_GT(col2, col0);
}

TEST(EndToEnd, DirectionDistinguishesUpDown) {
  Rig rig(28);
  int ok = 0;
  for (std::uint64_t salt = 50; salt < 54; ++salt) {
    const DirectedStroke down{StrokeKind::kVLine, StrokeDir::kForward};
    const auto cap = rig.write(down, 1, salt);
    const auto events = rig.engine.detectStrokes(cap.stream);
    if (!events.empty() &&
        events.front().observation.stroke.kind == StrokeKind::kVLine &&
        events.front().observation.stroke.dir == StrokeDir::kForward) {
      ++ok;
    }
  }
  EXPECT_GE(ok, 3);
}

}  // namespace
}  // namespace rfipad
