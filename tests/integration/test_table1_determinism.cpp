// Byte-level determinism regression for the Table-I motion battery: the
// batch runner promises results that are bit-identical at any thread
// count, so the *serialized* trial vectors — hex-float doubles included —
// must match across `--threads 1` and `--threads 8`, and across repeated
// runs at the same thread count.  sameOutcome()-style field comparison
// would hide a drifting double that still compares equal after rounding;
// serializing closes that hole.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/harness.hpp"

namespace rfipad::bench {
namespace {

// Hex floats are exact: every bit of the mantissa lands in the string.
std::string hex(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

// Every deterministic field of a trial; the wall-clock measurements
// (recognition_span_s, processing_s) are excluded by design — they are
// the only fields allowed to differ between runs.
std::string serialize(const std::vector<StrokeTrial>& trials) {
  std::string out;
  for (const auto& t : trials) {
    out += std::to_string(static_cast<int>(t.truth.kind)) + "," +
           std::to_string(static_cast<int>(t.truth.dir)) + "," +
           std::to_string(t.detected) + "," +
           std::to_string(t.kind_correct) + "," +
           std::to_string(t.directed_correct) + "," +
           std::to_string(t.spurious) + "," + std::to_string(t.samples) +
           "," + std::to_string(t.faulted_dropped) + "\n";
  }
  return out;
}

TEST(Table1Determinism, SerializedBatteryIdenticalAcrossThreadsAndRuns) {
  HarnessOptions opt;
  opt.scenario.seed = 1000;
  opt.scenario.doppler_probes = false;
  Harness harness(opt);
  const auto& user = sim::defaultUser(1);

  const auto one_a = serialize(harness.runMotionBattery(1, user, {1, 0}));
  const auto one_b = serialize(harness.runMotionBattery(1, user, {1, 0}));
  const auto eight_a = serialize(harness.runMotionBattery(1, user, {8, 0}));
  const auto eight_b = serialize(harness.runMotionBattery(1, user, {8, 0}));

  EXPECT_FALSE(one_a.empty());
  EXPECT_EQ(one_a, one_b) << "1-thread battery is not rerunnable";
  EXPECT_EQ(eight_a, eight_b) << "8-thread battery is not rerunnable";
  EXPECT_EQ(one_a, eight_a) << "thread count leaked into trial results";
}

TEST(Table1Determinism, HexFloatSerializationIsExact) {
  // The serializer itself must be able to distinguish a 1-ulp drift,
  // otherwise the regression above proves nothing.
  const double v = 0.1;
  const double drifted = std::nextafter(v, 1.0);
  EXPECT_NE(hex(v), hex(drifted));
}

}  // namespace
}  // namespace rfipad::bench
