// Missing-data recovery pipeline: determinism and off-path contracts
// (DESIGN.md §9).  With every stage disabled the engine must reproduce the
// pre-recovery pipeline bit-for-bit regardless of how the other recovery
// knobs are set; with every stage enabled the batch runner must stay
// bit-identical at any thread count, under faults and on clean captures.
#include <gtest/gtest.h>

#include <vector>

#include "harness/harness.hpp"

namespace rfipad::bench {
namespace {

HarnessOptions baseOptions() {
  HarnessOptions opt;
  opt.scenario.seed = 1000;
  opt.scenario.doppler_probes = false;
  return opt;
}

std::vector<StrokeTask> strokeBattery() {
  std::vector<StrokeTask> tasks;
  for (const auto& s : allDirectedStrokes())
    tasks.push_back({s, sim::defaultUser(2)});
  return tasks;
}

std::vector<LetterTask> letterBattery() {
  std::vector<LetterTask> tasks;
  for (char c : {'C', 'L', 'T', 'U'}) tasks.push_back({c, sim::defaultUser(2)});
  return tasks;
}

fault::FaultPlan burstyLossPlan() {
  fault::FaultPlan plan;
  plan.missread.drop_prob_bad = 0.9;
  plan.missread.p_bad_to_good = 0.25;
  plan.missread.p_good_to_bad = 0.2;
  return plan;
}

TEST(RecoveryDeterminism, DisabledStagesAreByteExactPassthrough) {
  // Crank every recovery knob while leaving every `enabled` false: the
  // off-path must not read any of them.
  HarnessOptions tweaked = baseOptions();
  auto& rec = tweaked.engine.recovery;
  rec.temporal.max_gap_s = 0.01;
  rec.temporal.min_gap_factor = 1.0;
  rec.confidence.detuned_confidence = 0.0;
  rec.confidence.min_live_confidence = 0.9;
  rec.spatial.confidence_threshold = 0.99;
  rec.decode.top_k = 1;
  ASSERT_FALSE(rec.any());

  Harness baseline(baseOptions());
  Harness with_knobs(tweaked);
  const auto tasks = strokeBattery();
  EXPECT_TRUE(sameOutcomes(baseline.runStrokeBatch(tasks, {2, 0}),
                           with_knobs.runStrokeBatch(tasks, {2, 0})));
  const auto letters = letterBattery();
  EXPECT_TRUE(sameOutcomes(baseline.runLetterBatch(letters, {2, 0}),
                           with_knobs.runLetterBatch(letters, {2, 0})));
}

TEST(RecoveryDeterminism, RecoveryOnBitIdenticalAcrossThreadCounts) {
  HarnessOptions opt = baseOptions();
  opt.fault_plan = burstyLossPlan();
  opt.engine.recovery = core::RecoveryConfig::full();
  Harness h(opt);

  const auto tasks = strokeBattery();
  const auto one = h.runStrokeBatch(tasks, {1, 0});
  const auto wide = h.runStrokeBatch(tasks, {4, 0});
  ASSERT_EQ(one.size(), tasks.size());
  EXPECT_TRUE(sameOutcomes(one, wide));
  // The plan must have bitten, or the check is vacuous.
  std::uint64_t dropped = 0;
  for (const auto& t : one) dropped += t.faulted_dropped;
  EXPECT_GT(dropped, 0u);

  const auto letters = letterBattery();
  const auto lone = h.runLetterBatch(letters, {1, 0});
  const auto lwide = h.runLetterBatch(letters, {4, 0});
  EXPECT_TRUE(sameOutcomes(lone, lwide));
  // And re-running reproduces both exactly.
  EXPECT_TRUE(sameOutcomes(one, h.runStrokeBatch(tasks, {2, 0})));
  EXPECT_TRUE(sameOutcomes(lone, h.runLetterBatch(letters, {2, 0})));
}

TEST(RecoveryDeterminism, CleanCaptureWithRecoveryOnStaysAccurate) {
  // No faults: the recovery gates (burst-sized gap factor, arc cut, spatial
  // threshold) are tuned so an intact capture is, at worst, one trial off
  // the baseline — recovery must never wreck the clean path.
  Harness off(baseOptions());
  HarnessOptions on_opt = baseOptions();
  on_opt.engine.recovery = core::RecoveryConfig::full();
  Harness on(on_opt);

  const auto tasks = strokeBattery();
  const double acc_off = Harness::accuracy(off.runStrokeBatch(tasks, {2, 0}));
  const double acc_on = Harness::accuracy(on.runStrokeBatch(tasks, {2, 0}));
  EXPECT_GE(acc_on + 1.0 / static_cast<double>(tasks.size()) + 1e-9, acc_off);

  // Determinism also holds with recovery on and no plan.
  EXPECT_TRUE(sameOutcomes(on.runStrokeBatch(tasks, {1, 0}),
                           on.runStrokeBatch(tasks, {4, 0})));
}

}  // namespace
}  // namespace rfipad::bench
