// Determinism contract of the parallel batch runners: a batch executed on
// one thread and the same batch executed on many threads must produce
// bit-identical trial outcomes (modulo the wall-clock processing-time
// fields, which sameOutcome() deliberately ignores).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "harness/harness.hpp"

namespace rfipad::bench {
namespace {

int wideThreads() {
  return std::max(4, static_cast<int>(std::thread::hardware_concurrency()));
}

class BatchDeterminism : public ::testing::Test {
 protected:
  BatchDeterminism() {
    HarnessOptions opt;
    opt.scenario.seed = 4242;
    harness_ = std::make_unique<Harness>(opt);
  }
  std::unique_ptr<Harness> harness_;
};

TEST_F(BatchDeterminism, StrokeBatchIdenticalAcrossThreadCounts) {
  std::vector<StrokeTask> tasks;
  int u = 0;
  for (const auto& s : allDirectedStrokes())
    tasks.push_back({s, sim::defaultUser(1 + (u++ % 10))});

  const auto one = harness_->runStrokeBatch(tasks, {1, 0});
  const auto wide = harness_->runStrokeBatch(tasks, {wideThreads(), 0});
  ASSERT_EQ(one.size(), tasks.size());
  ASSERT_EQ(wide.size(), tasks.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_TRUE(sameOutcome(one[i], wide[i])) << "trial " << i;
  }
  EXPECT_TRUE(sameOutcomes(one, wide));

  // At least one trial must actually register a stroke, otherwise the
  // comparison is vacuous.
  int detected = 0;
  for (const auto& t : one) detected += t.detected ? 1 : 0;
  EXPECT_GT(detected, 0);
}

TEST_F(BatchDeterminism, StrokeBatchIsRerunnable) {
  // The batch path must not depend on harness mutable state: running the
  // same batch twice gives the same outcomes.
  std::vector<StrokeTask> tasks;
  for (const auto& s : allDirectedStrokes()) tasks.push_back({s, sim::defaultUser(2)});
  const auto a = harness_->runStrokeBatch(tasks, {2, 0});
  const auto b = harness_->runStrokeBatch(tasks, {2, 0});
  EXPECT_TRUE(sameOutcomes(a, b));
}

TEST_F(BatchDeterminism, BaseSeedSelectsTheEnsemble) {
  std::vector<StrokeTask> tasks;
  for (const auto& s : allDirectedStrokes()) tasks.push_back({s, sim::defaultUser(1)});
  const auto a = harness_->runStrokeBatch(tasks, {1, 7});
  const auto b = harness_->runStrokeBatch(tasks, {1, 7});
  const auto c = harness_->runStrokeBatch(tasks, {1, 8});
  EXPECT_TRUE(sameOutcomes(a, b));
  // A different base seed draws different noise/MAC streams; at least one
  // per-trial sample count should differ across a 13-trial battery.
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    any_diff = any_diff || !sameOutcome(a[i], c[i]);
  EXPECT_TRUE(any_diff);
}

TEST_F(BatchDeterminism, LetterBatchIdenticalAcrossThreadCounts) {
  std::vector<LetterTask> tasks;
  for (char letter : {'A', 'C', 'I', 'L', 'T', 'W'})
    tasks.push_back({letter, sim::defaultUser(3)});

  const auto one = harness_->runLetterBatch(tasks, {1, 0});
  const auto wide = harness_->runLetterBatch(tasks, {wideThreads(), 0});
  ASSERT_EQ(one.size(), tasks.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_TRUE(sameOutcome(one[i], wide[i]))
        << "letter " << tasks[i].letter;
  }
  EXPECT_TRUE(sameOutcomes(one, wide));
}

TEST_F(BatchDeterminism, MotionBatteryMatchesExplicitTaskList) {
  const auto user = sim::defaultUser(1);
  const auto battery = harness_->runMotionBattery(2, user, {1, 0});
  std::vector<StrokeTask> tasks;
  for (int r = 0; r < 2; ++r)
    for (const auto& s : allDirectedStrokes()) tasks.push_back({s, user});
  const auto batch = harness_->runStrokeBatch(tasks, {1, 0});
  EXPECT_TRUE(sameOutcomes(battery, batch));
}

}  // namespace
}  // namespace rfipad::bench
