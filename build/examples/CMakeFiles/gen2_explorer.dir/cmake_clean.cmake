file(REMOVE_RECURSE
  "CMakeFiles/gen2_explorer.dir/gen2_explorer.cpp.o"
  "CMakeFiles/gen2_explorer.dir/gen2_explorer.cpp.o.d"
  "gen2_explorer"
  "gen2_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen2_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
