# Empty compiler generated dependencies file for gen2_explorer.
# This may be replaced when dependencies are built.
