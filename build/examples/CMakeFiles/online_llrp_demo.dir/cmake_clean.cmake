file(REMOVE_RECURSE
  "CMakeFiles/online_llrp_demo.dir/online_llrp_demo.cpp.o"
  "CMakeFiles/online_llrp_demo.dir/online_llrp_demo.cpp.o.d"
  "online_llrp_demo"
  "online_llrp_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_llrp_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
