# Empty dependencies file for online_llrp_demo.
# This may be replaced when dependencies are built.
