# Empty compiler generated dependencies file for airwriting_demo.
# This may be replaced when dependencies are built.
