file(REMOVE_RECURSE
  "CMakeFiles/airwriting_demo.dir/airwriting_demo.cpp.o"
  "CMakeFiles/airwriting_demo.dir/airwriting_demo.cpp.o.d"
  "airwriting_demo"
  "airwriting_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airwriting_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
