file(REMOVE_RECURSE
  "CMakeFiles/touchscreen_kiosk.dir/touchscreen_kiosk.cpp.o"
  "CMakeFiles/touchscreen_kiosk.dir/touchscreen_kiosk.cpp.o.d"
  "touchscreen_kiosk"
  "touchscreen_kiosk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/touchscreen_kiosk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
