# Empty compiler generated dependencies file for touchscreen_kiosk.
# This may be replaced when dependencies are built.
