file(REMOVE_RECURSE
  "CMakeFiles/test_multipath.dir/rf/test_multipath.cpp.o"
  "CMakeFiles/test_multipath.dir/rf/test_multipath.cpp.o.d"
  "test_multipath"
  "test_multipath.pdb"
  "test_multipath[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
