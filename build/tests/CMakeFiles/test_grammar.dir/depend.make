# Empty dependencies file for test_grammar.
# This may be replaced when dependencies are built.
