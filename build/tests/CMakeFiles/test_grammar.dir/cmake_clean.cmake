file(REMOVE_RECURSE
  "CMakeFiles/test_grammar.dir/core/test_grammar.cpp.o"
  "CMakeFiles/test_grammar.dir/core/test_grammar.cpp.o.d"
  "test_grammar"
  "test_grammar.pdb"
  "test_grammar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grammar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
