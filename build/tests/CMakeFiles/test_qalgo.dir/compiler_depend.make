# Empty compiler generated dependencies file for test_qalgo.
# This may be replaced when dependencies are built.
