file(REMOVE_RECURSE
  "CMakeFiles/test_qalgo.dir/gen2/test_qalgo.cpp.o"
  "CMakeFiles/test_qalgo.dir/gen2/test_qalgo.cpp.o.d"
  "test_qalgo"
  "test_qalgo.pdb"
  "test_qalgo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qalgo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
