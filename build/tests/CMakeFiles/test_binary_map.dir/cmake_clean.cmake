file(REMOVE_RECURSE
  "CMakeFiles/test_binary_map.dir/imgproc/test_binary_map.cpp.o"
  "CMakeFiles/test_binary_map.dir/imgproc/test_binary_map.cpp.o.d"
  "test_binary_map"
  "test_binary_map.pdb"
  "test_binary_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_binary_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
