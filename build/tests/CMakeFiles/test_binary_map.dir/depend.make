# Empty dependencies file for test_binary_map.
# This may be replaced when dependencies are built.
