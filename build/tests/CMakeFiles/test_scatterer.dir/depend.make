# Empty dependencies file for test_scatterer.
# This may be replaced when dependencies are built.
