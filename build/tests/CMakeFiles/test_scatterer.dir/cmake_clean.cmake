file(REMOVE_RECURSE
  "CMakeFiles/test_scatterer.dir/rf/test_scatterer.cpp.o"
  "CMakeFiles/test_scatterer.dir/rf/test_scatterer.cpp.o.d"
  "test_scatterer"
  "test_scatterer.pdb"
  "test_scatterer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scatterer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
