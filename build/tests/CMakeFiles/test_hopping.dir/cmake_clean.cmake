file(REMOVE_RECURSE
  "CMakeFiles/test_hopping.dir/reader/test_hopping.cpp.o"
  "CMakeFiles/test_hopping.dir/reader/test_hopping.cpp.o.d"
  "test_hopping"
  "test_hopping.pdb"
  "test_hopping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
