file(REMOVE_RECURSE
  "CMakeFiles/test_static_profile.dir/core/test_static_profile.cpp.o"
  "CMakeFiles/test_static_profile.dir/core/test_static_profile.cpp.o.d"
  "test_static_profile"
  "test_static_profile.pdb"
  "test_static_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
