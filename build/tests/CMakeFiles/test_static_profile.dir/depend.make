# Empty dependencies file for test_static_profile.
# This may be replaced when dependencies are built.
