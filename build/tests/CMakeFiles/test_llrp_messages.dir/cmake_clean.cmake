file(REMOVE_RECURSE
  "CMakeFiles/test_llrp_messages.dir/llrp/test_messages.cpp.o"
  "CMakeFiles/test_llrp_messages.dir/llrp/test_messages.cpp.o.d"
  "test_llrp_messages"
  "test_llrp_messages.pdb"
  "test_llrp_messages[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_llrp_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
