# Empty dependencies file for test_llrp_messages.
# This may be replaced when dependencies are built.
