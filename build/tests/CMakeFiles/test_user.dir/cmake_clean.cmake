file(REMOVE_RECURSE
  "CMakeFiles/test_user.dir/sim/test_user.cpp.o"
  "CMakeFiles/test_user.dir/sim/test_user.cpp.o.d"
  "test_user"
  "test_user.pdb"
  "test_user[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_user.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
