# Empty compiler generated dependencies file for test_user.
# This may be replaced when dependencies are built.
