file(REMOVE_RECURSE
  "CMakeFiles/test_letters.dir/sim/test_letters.cpp.o"
  "CMakeFiles/test_letters.dir/sim/test_letters.cpp.o.d"
  "test_letters"
  "test_letters.pdb"
  "test_letters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_letters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
