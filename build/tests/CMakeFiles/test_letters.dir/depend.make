# Empty dependencies file for test_letters.
# This may be replaced when dependencies are built.
