# Empty dependencies file for test_graymap.
# This may be replaced when dependencies are built.
