file(REMOVE_RECURSE
  "CMakeFiles/test_graymap.dir/imgproc/test_graymap.cpp.o"
  "CMakeFiles/test_graymap.dir/imgproc/test_graymap.cpp.o.d"
  "test_graymap"
  "test_graymap.pdb"
  "test_graymap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graymap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
