file(REMOVE_RECURSE
  "CMakeFiles/test_strokes.dir/common/test_strokes.cpp.o"
  "CMakeFiles/test_strokes.dir/common/test_strokes.cpp.o.d"
  "test_strokes"
  "test_strokes.pdb"
  "test_strokes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strokes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
