# Empty dependencies file for test_strokes.
# This may be replaced when dependencies are built.
