# Empty compiler generated dependencies file for test_gen2_timing.
# This may be replaced when dependencies are built.
