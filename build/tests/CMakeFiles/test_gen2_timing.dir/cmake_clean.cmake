file(REMOVE_RECURSE
  "CMakeFiles/test_gen2_timing.dir/gen2/test_timing.cpp.o"
  "CMakeFiles/test_gen2_timing.dir/gen2/test_timing.cpp.o.d"
  "test_gen2_timing"
  "test_gen2_timing.pdb"
  "test_gen2_timing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gen2_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
