# Empty dependencies file for test_llrp_buffer.
# This may be replaced when dependencies are built.
