file(REMOVE_RECURSE
  "CMakeFiles/test_llrp_buffer.dir/llrp/test_buffer.cpp.o"
  "CMakeFiles/test_llrp_buffer.dir/llrp/test_buffer.cpp.o.d"
  "test_llrp_buffer"
  "test_llrp_buffer.pdb"
  "test_llrp_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_llrp_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
