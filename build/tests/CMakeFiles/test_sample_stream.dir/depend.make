# Empty dependencies file for test_sample_stream.
# This may be replaced when dependencies are built.
