file(REMOVE_RECURSE
  "CMakeFiles/test_sample_stream.dir/reader/test_sample_stream.cpp.o"
  "CMakeFiles/test_sample_stream.dir/reader/test_sample_stream.cpp.o.d"
  "test_sample_stream"
  "test_sample_stream.pdb"
  "test_sample_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sample_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
