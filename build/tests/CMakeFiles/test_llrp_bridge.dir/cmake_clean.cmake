file(REMOVE_RECURSE
  "CMakeFiles/test_llrp_bridge.dir/llrp/test_bridge.cpp.o"
  "CMakeFiles/test_llrp_bridge.dir/llrp/test_bridge.cpp.o.d"
  "test_llrp_bridge"
  "test_llrp_bridge.pdb"
  "test_llrp_bridge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_llrp_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
