# Empty dependencies file for test_llrp_bridge.
# This may be replaced when dependencies are built.
