file(REMOVE_RECURSE
  "CMakeFiles/test_sim_stroke.dir/sim/test_stroke.cpp.o"
  "CMakeFiles/test_sim_stroke.dir/sim/test_stroke.cpp.o.d"
  "test_sim_stroke"
  "test_sim_stroke.pdb"
  "test_sim_stroke[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_stroke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
