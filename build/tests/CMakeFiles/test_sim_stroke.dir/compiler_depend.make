# Empty compiler generated dependencies file for test_sim_stroke.
# This may be replaced when dependencies are built.
