file(REMOVE_RECURSE
  "CMakeFiles/test_activation.dir/core/test_activation.cpp.o"
  "CMakeFiles/test_activation.dir/core/test_activation.cpp.o.d"
  "test_activation"
  "test_activation.pdb"
  "test_activation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_activation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
