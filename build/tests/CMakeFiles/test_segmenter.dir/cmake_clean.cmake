file(REMOVE_RECURSE
  "CMakeFiles/test_segmenter.dir/core/test_segmenter.cpp.o"
  "CMakeFiles/test_segmenter.dir/core/test_segmenter.cpp.o.d"
  "test_segmenter"
  "test_segmenter.pdb"
  "test_segmenter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_segmenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
