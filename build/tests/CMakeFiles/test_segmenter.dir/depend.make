# Empty dependencies file for test_segmenter.
# This may be replaced when dependencies are built.
