# Empty compiler generated dependencies file for bench_fig22_letter_segmentation.
# This may be replaced when dependencies are built.
