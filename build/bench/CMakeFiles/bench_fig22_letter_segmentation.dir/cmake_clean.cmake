file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_letter_segmentation.dir/bench_fig22_letter_segmentation.cpp.o"
  "CMakeFiles/bench_fig22_letter_segmentation.dir/bench_fig22_letter_segmentation.cpp.o.d"
  "bench_fig22_letter_segmentation"
  "bench_fig22_letter_segmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_letter_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
