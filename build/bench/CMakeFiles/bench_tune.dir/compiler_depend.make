# Empty compiler generated dependencies file for bench_tune.
# This may be replaced when dependencies are built.
