file(REMOVE_RECURSE
  "CMakeFiles/bench_tune.dir/bench_tune.cpp.o"
  "CMakeFiles/bench_tune.dir/bench_tune.cpp.o.d"
  "bench_tune"
  "bench_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
