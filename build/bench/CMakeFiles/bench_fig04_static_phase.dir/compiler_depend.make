# Empty compiler generated dependencies file for bench_fig04_static_phase.
# This may be replaced when dependencies are built.
