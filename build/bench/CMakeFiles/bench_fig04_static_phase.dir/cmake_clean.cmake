file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_static_phase.dir/bench_fig04_static_phase.cpp.o"
  "CMakeFiles/bench_fig04_static_phase.dir/bench_fig04_static_phase.cpp.o.d"
  "bench_fig04_static_phase"
  "bench_fig04_static_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_static_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
