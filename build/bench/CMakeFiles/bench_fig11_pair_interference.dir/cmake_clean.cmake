file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_pair_interference.dir/bench_fig11_pair_interference.cpp.o"
  "CMakeFiles/bench_fig11_pair_interference.dir/bench_fig11_pair_interference.cpp.o.d"
  "bench_fig11_pair_interference"
  "bench_fig11_pair_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_pair_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
