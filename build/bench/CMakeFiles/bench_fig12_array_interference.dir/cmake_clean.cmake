file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_array_interference.dir/bench_fig12_array_interference.cpp.o"
  "CMakeFiles/bench_fig12_array_interference.dir/bench_fig12_array_interference.cpp.o.d"
  "bench_fig12_array_interference"
  "bench_fig12_array_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_array_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
