# Empty compiler generated dependencies file for bench_fig12_array_interference.
# This may be replaced when dependencies are built.
