# Empty dependencies file for bench_fig08_symmetry.
# This may be replaced when dependencies are built.
