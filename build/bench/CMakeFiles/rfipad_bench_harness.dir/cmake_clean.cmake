file(REMOVE_RECURSE
  "CMakeFiles/rfipad_bench_harness.dir/harness/harness.cpp.o"
  "CMakeFiles/rfipad_bench_harness.dir/harness/harness.cpp.o.d"
  "librfipad_bench_harness.a"
  "librfipad_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfipad_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
