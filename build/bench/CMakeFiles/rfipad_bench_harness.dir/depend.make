# Empty dependencies file for rfipad_bench_harness.
# This may be replaced when dependencies are built.
