file(REMOVE_RECURSE
  "librfipad_bench_harness.a"
)
