# Empty dependencies file for bench_fig05_deviation_bias.
# This may be replaced when dependencies are built.
