file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_deviation_bias.dir/bench_fig05_deviation_bias.cpp.o"
  "CMakeFiles/bench_fig05_deviation_bias.dir/bench_fig05_deviation_bias.cpp.o.d"
  "bench_fig05_deviation_bias"
  "bench_fig05_deviation_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_deviation_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
