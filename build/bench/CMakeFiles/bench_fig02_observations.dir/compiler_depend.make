# Empty compiler generated dependencies file for bench_fig02_observations.
# This may be replaced when dependencies are built.
