file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_observations.dir/bench_fig02_observations.cpp.o"
  "CMakeFiles/bench_fig02_observations.dir/bench_fig02_observations.cpp.o.d"
  "bench_fig02_observations"
  "bench_fig02_observations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_observations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
