file(REMOVE_RECURSE
  "CMakeFiles/bench_tune_letters.dir/bench_tune_letters.cpp.o"
  "CMakeFiles/bench_tune_letters.dir/bench_tune_letters.cpp.o.d"
  "bench_tune_letters"
  "bench_tune_letters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tune_letters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
