# Empty dependencies file for bench_tune_letters.
# This may be replaced when dependencies are built.
