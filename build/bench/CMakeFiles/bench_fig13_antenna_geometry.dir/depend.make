# Empty dependencies file for bench_fig13_antenna_geometry.
# This may be replaced when dependencies are built.
