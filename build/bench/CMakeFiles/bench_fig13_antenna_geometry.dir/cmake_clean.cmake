file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_antenna_geometry.dir/bench_fig13_antenna_geometry.cpp.o"
  "CMakeFiles/bench_fig13_antenna_geometry.dir/bench_fig13_antenna_geometry.cpp.o.d"
  "bench_fig13_antenna_geometry"
  "bench_fig13_antenna_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_antenna_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
