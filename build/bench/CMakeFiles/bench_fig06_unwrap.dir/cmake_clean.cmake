file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_unwrap.dir/bench_fig06_unwrap.cpp.o"
  "CMakeFiles/bench_fig06_unwrap.dir/bench_fig06_unwrap.cpp.o.d"
  "bench_fig06_unwrap"
  "bench_fig06_unwrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_unwrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
