# Empty dependencies file for bench_fig06_unwrap.
# This may be replaced when dependencies are built.
