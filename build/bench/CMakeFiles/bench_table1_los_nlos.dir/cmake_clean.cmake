file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_los_nlos.dir/bench_table1_los_nlos.cpp.o"
  "CMakeFiles/bench_table1_los_nlos.dir/bench_table1_los_nlos.cpp.o.d"
  "bench_table1_los_nlos"
  "bench_table1_los_nlos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_los_nlos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
