# Empty dependencies file for bench_table1_los_nlos.
# This may be replaced when dependencies are built.
