file(REMOVE_RECURSE
  "CMakeFiles/bench_fig25_trajectory.dir/bench_fig25_trajectory.cpp.o"
  "CMakeFiles/bench_fig25_trajectory.dir/bench_fig25_trajectory.cpp.o.d"
  "bench_fig25_trajectory"
  "bench_fig25_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
