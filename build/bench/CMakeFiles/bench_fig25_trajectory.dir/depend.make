# Empty dependencies file for bench_fig25_trajectory.
# This may be replaced when dependencies are built.
