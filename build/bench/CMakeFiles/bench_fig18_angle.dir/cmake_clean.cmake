file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_angle.dir/bench_fig18_angle.cpp.o"
  "CMakeFiles/bench_fig18_angle.dir/bench_fig18_angle.cpp.o.d"
  "bench_fig18_angle"
  "bench_fig18_angle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_angle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
