file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_graymap.dir/bench_fig07_graymap.cpp.o"
  "CMakeFiles/bench_fig07_graymap.dir/bench_fig07_graymap.cpp.o.d"
  "bench_fig07_graymap"
  "bench_fig07_graymap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_graymap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
