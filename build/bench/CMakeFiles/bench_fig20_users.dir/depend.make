# Empty dependencies file for bench_fig20_users.
# This may be replaced when dependencies are built.
