file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_users.dir/bench_fig20_users.cpp.o"
  "CMakeFiles/bench_fig20_users.dir/bench_fig20_users.cpp.o.d"
  "bench_fig20_users"
  "bench_fig20_users.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
