# Empty compiler generated dependencies file for bench_fig21_speed_cdf.
# This may be replaced when dependencies are built.
