# Empty dependencies file for bench_fig16_environments.
# This may be replaced when dependencies are built.
