
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig16_environments.cpp" "bench/CMakeFiles/bench_fig16_environments.dir/bench_fig16_environments.cpp.o" "gcc" "bench/CMakeFiles/bench_fig16_environments.dir/bench_fig16_environments.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/rfipad_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rfipad_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rfipad_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/reader/CMakeFiles/rfipad_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/imgproc/CMakeFiles/rfipad_imgproc.dir/DependInfo.cmake"
  "/root/repo/build/src/tag/CMakeFiles/rfipad_tag.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/rfipad_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/gen2/CMakeFiles/rfipad_gen2.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rfipad_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
