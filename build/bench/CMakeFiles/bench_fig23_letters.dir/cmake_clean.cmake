file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_letters.dir/bench_fig23_letters.cpp.o"
  "CMakeFiles/bench_fig23_letters.dir/bench_fig23_letters.cpp.o.d"
  "bench_fig23_letters"
  "bench_fig23_letters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_letters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
