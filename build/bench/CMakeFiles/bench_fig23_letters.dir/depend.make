# Empty dependencies file for bench_fig23_letters.
# This may be replaced when dependencies are built.
