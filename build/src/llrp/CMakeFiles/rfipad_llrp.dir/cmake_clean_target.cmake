file(REMOVE_RECURSE
  "librfipad_llrp.a"
)
