# Empty dependencies file for rfipad_llrp.
# This may be replaced when dependencies are built.
