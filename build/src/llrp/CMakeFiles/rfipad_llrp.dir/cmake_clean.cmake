file(REMOVE_RECURSE
  "CMakeFiles/rfipad_llrp.dir/bridge.cpp.o"
  "CMakeFiles/rfipad_llrp.dir/bridge.cpp.o.d"
  "CMakeFiles/rfipad_llrp.dir/buffer.cpp.o"
  "CMakeFiles/rfipad_llrp.dir/buffer.cpp.o.d"
  "CMakeFiles/rfipad_llrp.dir/messages.cpp.o"
  "CMakeFiles/rfipad_llrp.dir/messages.cpp.o.d"
  "CMakeFiles/rfipad_llrp.dir/octane.cpp.o"
  "CMakeFiles/rfipad_llrp.dir/octane.cpp.o.d"
  "librfipad_llrp.a"
  "librfipad_llrp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfipad_llrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
