# Empty dependencies file for rfipad_gen2.
# This may be replaced when dependencies are built.
