file(REMOVE_RECURSE
  "librfipad_gen2.a"
)
