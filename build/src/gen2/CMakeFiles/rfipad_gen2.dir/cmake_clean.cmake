file(REMOVE_RECURSE
  "CMakeFiles/rfipad_gen2.dir/inventory.cpp.o"
  "CMakeFiles/rfipad_gen2.dir/inventory.cpp.o.d"
  "CMakeFiles/rfipad_gen2.dir/q_algorithm.cpp.o"
  "CMakeFiles/rfipad_gen2.dir/q_algorithm.cpp.o.d"
  "CMakeFiles/rfipad_gen2.dir/timing.cpp.o"
  "CMakeFiles/rfipad_gen2.dir/timing.cpp.o.d"
  "librfipad_gen2.a"
  "librfipad_gen2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfipad_gen2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
