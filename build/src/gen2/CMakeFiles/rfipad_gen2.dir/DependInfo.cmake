
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen2/inventory.cpp" "src/gen2/CMakeFiles/rfipad_gen2.dir/inventory.cpp.o" "gcc" "src/gen2/CMakeFiles/rfipad_gen2.dir/inventory.cpp.o.d"
  "/root/repo/src/gen2/q_algorithm.cpp" "src/gen2/CMakeFiles/rfipad_gen2.dir/q_algorithm.cpp.o" "gcc" "src/gen2/CMakeFiles/rfipad_gen2.dir/q_algorithm.cpp.o.d"
  "/root/repo/src/gen2/timing.cpp" "src/gen2/CMakeFiles/rfipad_gen2.dir/timing.cpp.o" "gcc" "src/gen2/CMakeFiles/rfipad_gen2.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rfipad_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
