# Empty compiler generated dependencies file for rfipad_rf.
# This may be replaced when dependencies are built.
