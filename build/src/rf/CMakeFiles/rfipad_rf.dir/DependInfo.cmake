
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rf/antenna.cpp" "src/rf/CMakeFiles/rfipad_rf.dir/antenna.cpp.o" "gcc" "src/rf/CMakeFiles/rfipad_rf.dir/antenna.cpp.o.d"
  "/root/repo/src/rf/channel.cpp" "src/rf/CMakeFiles/rfipad_rf.dir/channel.cpp.o" "gcc" "src/rf/CMakeFiles/rfipad_rf.dir/channel.cpp.o.d"
  "/root/repo/src/rf/coupling.cpp" "src/rf/CMakeFiles/rfipad_rf.dir/coupling.cpp.o" "gcc" "src/rf/CMakeFiles/rfipad_rf.dir/coupling.cpp.o.d"
  "/root/repo/src/rf/multipath.cpp" "src/rf/CMakeFiles/rfipad_rf.dir/multipath.cpp.o" "gcc" "src/rf/CMakeFiles/rfipad_rf.dir/multipath.cpp.o.d"
  "/root/repo/src/rf/noise.cpp" "src/rf/CMakeFiles/rfipad_rf.dir/noise.cpp.o" "gcc" "src/rf/CMakeFiles/rfipad_rf.dir/noise.cpp.o.d"
  "/root/repo/src/rf/propagation.cpp" "src/rf/CMakeFiles/rfipad_rf.dir/propagation.cpp.o" "gcc" "src/rf/CMakeFiles/rfipad_rf.dir/propagation.cpp.o.d"
  "/root/repo/src/rf/scatterer.cpp" "src/rf/CMakeFiles/rfipad_rf.dir/scatterer.cpp.o" "gcc" "src/rf/CMakeFiles/rfipad_rf.dir/scatterer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rfipad_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
