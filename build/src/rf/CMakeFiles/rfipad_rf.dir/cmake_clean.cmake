file(REMOVE_RECURSE
  "CMakeFiles/rfipad_rf.dir/antenna.cpp.o"
  "CMakeFiles/rfipad_rf.dir/antenna.cpp.o.d"
  "CMakeFiles/rfipad_rf.dir/channel.cpp.o"
  "CMakeFiles/rfipad_rf.dir/channel.cpp.o.d"
  "CMakeFiles/rfipad_rf.dir/coupling.cpp.o"
  "CMakeFiles/rfipad_rf.dir/coupling.cpp.o.d"
  "CMakeFiles/rfipad_rf.dir/multipath.cpp.o"
  "CMakeFiles/rfipad_rf.dir/multipath.cpp.o.d"
  "CMakeFiles/rfipad_rf.dir/noise.cpp.o"
  "CMakeFiles/rfipad_rf.dir/noise.cpp.o.d"
  "CMakeFiles/rfipad_rf.dir/propagation.cpp.o"
  "CMakeFiles/rfipad_rf.dir/propagation.cpp.o.d"
  "CMakeFiles/rfipad_rf.dir/scatterer.cpp.o"
  "CMakeFiles/rfipad_rf.dir/scatterer.cpp.o.d"
  "librfipad_rf.a"
  "librfipad_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfipad_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
