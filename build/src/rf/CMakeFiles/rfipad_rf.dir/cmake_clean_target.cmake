file(REMOVE_RECURSE
  "librfipad_rf.a"
)
