file(REMOVE_RECURSE
  "CMakeFiles/rfipad_common.dir/angles.cpp.o"
  "CMakeFiles/rfipad_common.dir/angles.cpp.o.d"
  "CMakeFiles/rfipad_common.dir/stats.cpp.o"
  "CMakeFiles/rfipad_common.dir/stats.cpp.o.d"
  "CMakeFiles/rfipad_common.dir/strokes.cpp.o"
  "CMakeFiles/rfipad_common.dir/strokes.cpp.o.d"
  "CMakeFiles/rfipad_common.dir/table.cpp.o"
  "CMakeFiles/rfipad_common.dir/table.cpp.o.d"
  "CMakeFiles/rfipad_common.dir/vec.cpp.o"
  "CMakeFiles/rfipad_common.dir/vec.cpp.o.d"
  "librfipad_common.a"
  "librfipad_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfipad_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
