file(REMOVE_RECURSE
  "librfipad_common.a"
)
