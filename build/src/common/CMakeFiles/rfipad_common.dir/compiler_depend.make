# Empty compiler generated dependencies file for rfipad_common.
# This may be replaced when dependencies are built.
