file(REMOVE_RECURSE
  "CMakeFiles/rfipad_reader.dir/reader.cpp.o"
  "CMakeFiles/rfipad_reader.dir/reader.cpp.o.d"
  "CMakeFiles/rfipad_reader.dir/sample_stream.cpp.o"
  "CMakeFiles/rfipad_reader.dir/sample_stream.cpp.o.d"
  "librfipad_reader.a"
  "librfipad_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfipad_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
