# Empty compiler generated dependencies file for rfipad_reader.
# This may be replaced when dependencies are built.
