file(REMOVE_RECURSE
  "librfipad_reader.a"
)
