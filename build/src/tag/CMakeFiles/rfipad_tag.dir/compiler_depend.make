# Empty compiler generated dependencies file for rfipad_tag.
# This may be replaced when dependencies are built.
