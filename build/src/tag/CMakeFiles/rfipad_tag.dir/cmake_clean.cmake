file(REMOVE_RECURSE
  "CMakeFiles/rfipad_tag.dir/array.cpp.o"
  "CMakeFiles/rfipad_tag.dir/array.cpp.o.d"
  "CMakeFiles/rfipad_tag.dir/tag.cpp.o"
  "CMakeFiles/rfipad_tag.dir/tag.cpp.o.d"
  "CMakeFiles/rfipad_tag.dir/tag_type.cpp.o"
  "CMakeFiles/rfipad_tag.dir/tag_type.cpp.o.d"
  "librfipad_tag.a"
  "librfipad_tag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfipad_tag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
