file(REMOVE_RECURSE
  "librfipad_tag.a"
)
