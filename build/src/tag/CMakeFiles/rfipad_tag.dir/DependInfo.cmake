
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tag/array.cpp" "src/tag/CMakeFiles/rfipad_tag.dir/array.cpp.o" "gcc" "src/tag/CMakeFiles/rfipad_tag.dir/array.cpp.o.d"
  "/root/repo/src/tag/tag.cpp" "src/tag/CMakeFiles/rfipad_tag.dir/tag.cpp.o" "gcc" "src/tag/CMakeFiles/rfipad_tag.dir/tag.cpp.o.d"
  "/root/repo/src/tag/tag_type.cpp" "src/tag/CMakeFiles/rfipad_tag.dir/tag_type.cpp.o" "gcc" "src/tag/CMakeFiles/rfipad_tag.dir/tag_type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rfipad_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/rfipad_rf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
