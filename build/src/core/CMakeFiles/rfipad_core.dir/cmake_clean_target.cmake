file(REMOVE_RECURSE
  "librfipad_core.a"
)
