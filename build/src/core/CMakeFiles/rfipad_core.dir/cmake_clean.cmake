file(REMOVE_RECURSE
  "CMakeFiles/rfipad_core.dir/activation.cpp.o"
  "CMakeFiles/rfipad_core.dir/activation.cpp.o.d"
  "CMakeFiles/rfipad_core.dir/direction.cpp.o"
  "CMakeFiles/rfipad_core.dir/direction.cpp.o.d"
  "CMakeFiles/rfipad_core.dir/engine.cpp.o"
  "CMakeFiles/rfipad_core.dir/engine.cpp.o.d"
  "CMakeFiles/rfipad_core.dir/grammar.cpp.o"
  "CMakeFiles/rfipad_core.dir/grammar.cpp.o.d"
  "CMakeFiles/rfipad_core.dir/metrics.cpp.o"
  "CMakeFiles/rfipad_core.dir/metrics.cpp.o.d"
  "CMakeFiles/rfipad_core.dir/online.cpp.o"
  "CMakeFiles/rfipad_core.dir/online.cpp.o.d"
  "CMakeFiles/rfipad_core.dir/segmenter.cpp.o"
  "CMakeFiles/rfipad_core.dir/segmenter.cpp.o.d"
  "CMakeFiles/rfipad_core.dir/static_profile.cpp.o"
  "CMakeFiles/rfipad_core.dir/static_profile.cpp.o.d"
  "CMakeFiles/rfipad_core.dir/stroke_classifier.cpp.o"
  "CMakeFiles/rfipad_core.dir/stroke_classifier.cpp.o.d"
  "CMakeFiles/rfipad_core.dir/templates.cpp.o"
  "CMakeFiles/rfipad_core.dir/templates.cpp.o.d"
  "CMakeFiles/rfipad_core.dir/words.cpp.o"
  "CMakeFiles/rfipad_core.dir/words.cpp.o.d"
  "librfipad_core.a"
  "librfipad_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfipad_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
