# Empty compiler generated dependencies file for rfipad_core.
# This may be replaced when dependencies are built.
