
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/activation.cpp" "src/core/CMakeFiles/rfipad_core.dir/activation.cpp.o" "gcc" "src/core/CMakeFiles/rfipad_core.dir/activation.cpp.o.d"
  "/root/repo/src/core/direction.cpp" "src/core/CMakeFiles/rfipad_core.dir/direction.cpp.o" "gcc" "src/core/CMakeFiles/rfipad_core.dir/direction.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/rfipad_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/rfipad_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/grammar.cpp" "src/core/CMakeFiles/rfipad_core.dir/grammar.cpp.o" "gcc" "src/core/CMakeFiles/rfipad_core.dir/grammar.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/rfipad_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/rfipad_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/core/CMakeFiles/rfipad_core.dir/online.cpp.o" "gcc" "src/core/CMakeFiles/rfipad_core.dir/online.cpp.o.d"
  "/root/repo/src/core/segmenter.cpp" "src/core/CMakeFiles/rfipad_core.dir/segmenter.cpp.o" "gcc" "src/core/CMakeFiles/rfipad_core.dir/segmenter.cpp.o.d"
  "/root/repo/src/core/static_profile.cpp" "src/core/CMakeFiles/rfipad_core.dir/static_profile.cpp.o" "gcc" "src/core/CMakeFiles/rfipad_core.dir/static_profile.cpp.o.d"
  "/root/repo/src/core/stroke_classifier.cpp" "src/core/CMakeFiles/rfipad_core.dir/stroke_classifier.cpp.o" "gcc" "src/core/CMakeFiles/rfipad_core.dir/stroke_classifier.cpp.o.d"
  "/root/repo/src/core/templates.cpp" "src/core/CMakeFiles/rfipad_core.dir/templates.cpp.o" "gcc" "src/core/CMakeFiles/rfipad_core.dir/templates.cpp.o.d"
  "/root/repo/src/core/words.cpp" "src/core/CMakeFiles/rfipad_core.dir/words.cpp.o" "gcc" "src/core/CMakeFiles/rfipad_core.dir/words.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rfipad_common.dir/DependInfo.cmake"
  "/root/repo/build/src/reader/CMakeFiles/rfipad_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/imgproc/CMakeFiles/rfipad_imgproc.dir/DependInfo.cmake"
  "/root/repo/build/src/tag/CMakeFiles/rfipad_tag.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/rfipad_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/gen2/CMakeFiles/rfipad_gen2.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
