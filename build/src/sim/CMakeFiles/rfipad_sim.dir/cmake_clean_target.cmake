file(REMOVE_RECURSE
  "librfipad_sim.a"
)
