# Empty dependencies file for rfipad_sim.
# This may be replaced when dependencies are built.
