file(REMOVE_RECURSE
  "CMakeFiles/rfipad_sim.dir/ground_truth.cpp.o"
  "CMakeFiles/rfipad_sim.dir/ground_truth.cpp.o.d"
  "CMakeFiles/rfipad_sim.dir/letters.cpp.o"
  "CMakeFiles/rfipad_sim.dir/letters.cpp.o.d"
  "CMakeFiles/rfipad_sim.dir/scenario.cpp.o"
  "CMakeFiles/rfipad_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/rfipad_sim.dir/stroke.cpp.o"
  "CMakeFiles/rfipad_sim.dir/stroke.cpp.o.d"
  "CMakeFiles/rfipad_sim.dir/trajectory.cpp.o"
  "CMakeFiles/rfipad_sim.dir/trajectory.cpp.o.d"
  "CMakeFiles/rfipad_sim.dir/user.cpp.o"
  "CMakeFiles/rfipad_sim.dir/user.cpp.o.d"
  "librfipad_sim.a"
  "librfipad_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfipad_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
