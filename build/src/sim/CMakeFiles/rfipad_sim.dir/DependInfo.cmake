
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/ground_truth.cpp" "src/sim/CMakeFiles/rfipad_sim.dir/ground_truth.cpp.o" "gcc" "src/sim/CMakeFiles/rfipad_sim.dir/ground_truth.cpp.o.d"
  "/root/repo/src/sim/letters.cpp" "src/sim/CMakeFiles/rfipad_sim.dir/letters.cpp.o" "gcc" "src/sim/CMakeFiles/rfipad_sim.dir/letters.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/rfipad_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/rfipad_sim.dir/scenario.cpp.o.d"
  "/root/repo/src/sim/stroke.cpp" "src/sim/CMakeFiles/rfipad_sim.dir/stroke.cpp.o" "gcc" "src/sim/CMakeFiles/rfipad_sim.dir/stroke.cpp.o.d"
  "/root/repo/src/sim/trajectory.cpp" "src/sim/CMakeFiles/rfipad_sim.dir/trajectory.cpp.o" "gcc" "src/sim/CMakeFiles/rfipad_sim.dir/trajectory.cpp.o.d"
  "/root/repo/src/sim/user.cpp" "src/sim/CMakeFiles/rfipad_sim.dir/user.cpp.o" "gcc" "src/sim/CMakeFiles/rfipad_sim.dir/user.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rfipad_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/rfipad_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/tag/CMakeFiles/rfipad_tag.dir/DependInfo.cmake"
  "/root/repo/build/src/gen2/CMakeFiles/rfipad_gen2.dir/DependInfo.cmake"
  "/root/repo/build/src/reader/CMakeFiles/rfipad_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/imgproc/CMakeFiles/rfipad_imgproc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
