file(REMOVE_RECURSE
  "librfipad_imgproc.a"
)
