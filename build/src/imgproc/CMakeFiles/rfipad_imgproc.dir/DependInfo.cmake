
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imgproc/binary_map.cpp" "src/imgproc/CMakeFiles/rfipad_imgproc.dir/binary_map.cpp.o" "gcc" "src/imgproc/CMakeFiles/rfipad_imgproc.dir/binary_map.cpp.o.d"
  "/root/repo/src/imgproc/graymap.cpp" "src/imgproc/CMakeFiles/rfipad_imgproc.dir/graymap.cpp.o" "gcc" "src/imgproc/CMakeFiles/rfipad_imgproc.dir/graymap.cpp.o.d"
  "/root/repo/src/imgproc/moments.cpp" "src/imgproc/CMakeFiles/rfipad_imgproc.dir/moments.cpp.o" "gcc" "src/imgproc/CMakeFiles/rfipad_imgproc.dir/moments.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rfipad_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
