file(REMOVE_RECURSE
  "CMakeFiles/rfipad_imgproc.dir/binary_map.cpp.o"
  "CMakeFiles/rfipad_imgproc.dir/binary_map.cpp.o.d"
  "CMakeFiles/rfipad_imgproc.dir/graymap.cpp.o"
  "CMakeFiles/rfipad_imgproc.dir/graymap.cpp.o.d"
  "CMakeFiles/rfipad_imgproc.dir/moments.cpp.o"
  "CMakeFiles/rfipad_imgproc.dir/moments.cpp.o.d"
  "librfipad_imgproc.a"
  "librfipad_imgproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfipad_imgproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
