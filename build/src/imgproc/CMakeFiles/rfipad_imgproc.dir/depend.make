# Empty dependencies file for rfipad_imgproc.
# This may be replaced when dependencies are built.
