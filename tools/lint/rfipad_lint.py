#!/usr/bin/env python3
"""rfipad determinism & invariants linter.

The repo's core contract — bit-identical batch results at any ``--threads``
— only survives if no code path sneaks in unseeded randomness, wall-clock
reads, or iteration order that depends on hash seeds.  This linter walks
``src/`` and ``bench/`` and rejects the constructs that have historically
broken RF-sensing reproductions:

  no-random-device     std::random_device (unseeded entropy; use rfipad::Rng
                       with an explicit seed / Rng::deriveSeed)
  no-libc-rand         rand()/srand() (global hidden state, not
                       thread-count stable)
  no-wallclock         time()/localtime()/mktime()/std::chrono::system_clock
                       outside src/llrp (transport code may timestamp real
                       I/O; simulation and analysis must use the reader
                       clock).  steady_clock is allowed — it measures
                       durations, and the harness excludes measured times
                       from determinism comparisons.
  no-sleep             std::this_thread::sleep_for/sleep_until, usleep,
                       nanosleep outside src/llrp (simulated time must
                       advance via the scenario clock, never the host's)
  unordered-iteration  range-for over a std::unordered_{map,set} whose body
                       appends to another container: the iteration order is
                       hash-seed dependent, so the result ordering is not
                       reproducible.  Iterate a sorted copy instead.
  float-equality       ==/!= against a floating literal or between
                       known-double fields (time_s, phase_rad, ...).  Use a
                       tolerance, or allowlist audited exact-match cases
                       (duplicate detection, memo keys).
  missing-assert       a header documents preconditions ("Requires ...",
                       "must be ...", "must not ...") but neither the
                       header nor its .cpp enforces anything (no
                       RFIPAD_ASSERT/RFIPAD_INVARIANT, no validating throw)
  no-heap-hotpath      raw `new` / `malloc`/`calloc`/`realloc` inside the
                       per-sample hot-path modules (src/rf, src/gen2,
                       src/reader, src/imgproc, src/core, src/common).
                       The SoA kernels are allocation-free by design —
                       use a reused std::vector scratch, inline storage,
                       or pre-sized arena owned by the caller.
  no-unbounded-queue   a std::deque/queue/priority_queue or rfipad::MpscRing
                       declaration with no stated bound.  Producer/consumer
                       queues (ingest fan-in, task queues, memo tables) grow
                       without limit under load unless something rejects or
                       evicts — and a ring, while bounded by construction,
                       drops or rejects once full, so its capacity choice is
                       part of the same contract.  The declaration must
                       carry a comment within the previous few lines saying
                       "bounded"/"capacity" and naming the mechanism (or
                       sizing rule) that enforces it.

Audited exceptions live in ``tools/lint/lint_allowlist.txt`` (max
%(max_allow)d entries — beyond that, fix the code instead).  Exit code 0
means clean, 1 means findings, 2 means bad invocation or config.

Self-test mode (``--self-test DIR``) lints every fixture under DIR and
compares the produced rule set against the fixture's ``LINT-EXPECT``
header; see tests/lint/README.md.
"""

import argparse
import os
import re
import sys

MAX_ALLOWLIST_ENTRIES = 10

# Directories linted in --root mode, relative to the repo root.
LINT_DIRS = ("src", "bench")

# Paths (prefix match, repo-relative, '/'-separated) where wall-clock and
# sleep calls are legitimate: the LLRP transport talks to real hardware.
TRANSPORT_PREFIXES = ("src/llrp/",)

# Modules on the per-sample hot path: one heap allocation per sample or per
# slot wrecks the SoA kernels' throughput, so raw new/malloc is banned here
# (containers that amortise via reserve/resize are fine — the rule targets
# the raw allocator calls only).
HOTPATH_PREFIXES = ("src/rf/", "src/gen2/", "src/reader/", "src/imgproc/",
                    "src/core/", "src/common/")

FLOAT_LIT = r"(?<![\w.])(?:\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+)[fF]?"

# Struct fields that are double-typed throughout the repo; comparing them
# with == is almost always a bug (quantisation, jitter, fault injection all
# perturb them).  The second group covers the missing-data recovery pipeline
# (core/recovery.hpp, reader::GapImputeOptions, letter-hypothesis costs):
# confidences and alignment costs are accumulated floats, so exact
# comparison silently breaks the recovery ablation contract.
DOUBLE_FIELDS = (
    "time_s|phase_rad|rssi_dbm|channel_mhz|doppler_hz|gain_linear|"
    "polarization_loss|x|y|z|"
    "confidence|cost|max_cost|max_gap_s|target_dt_s|spacing_quantile|"
    "min_gap_factor|max_arc_rad|detuned_confidence|full_count_frac|"
    "imputed_read_weight|min_live_confidence|confidence_threshold|"
    "neighbor_sigma"
)

PRECONDITION_MARKERS = re.compile(r"\b(?:Requires|must be|must not)\b")
ENFORCEMENT_TOKENS = re.compile(
    r"RFIPAD_ASSERT|RFIPAD_INVARIANT|throw\s+(?:std::|Decode|rfipad)"
)

WRITE_CALLS = re.compile(r"\.(?:push_back|emplace_back|insert|emplace)\s*\(|\+=")

# Queue-like container declarations must justify their bound nearby.
# rfipad::MpscRing is bounded by construction, but the *choice* of
# capacity is a sizing decision the declaration must still justify — an
# undocumented ring either silently drops or spuriously rejects under
# load, which is exactly the failure mode this rule exists to surface.
QUEUE_DECL = re.compile(
    r"\bstd\s*::\s*(?:deque|queue|priority_queue)\s*<|\bMpscRing\s*<")
BOUND_WORDS = re.compile(r"bounded|capacity", re.IGNORECASE)
# How many raw lines above the declaration may hold the justification.
QUEUE_COMMENT_WINDOW = 6


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving newlines so
    line numbers stay valid."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                mode = c
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif mode == "line":
            if c == "\n":
                mode = None
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
        else:  # inside a string/char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == mode:
                mode = None
            out.append("\n" if c == "\n" else " ")
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def is_transport(relpath):
    return relpath.startswith(TRANSPORT_PREFIXES)


def is_hotpath(relpath):
    return relpath.startswith(HOTPATH_PREFIXES)


def find_matching_brace(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def check_banned_constructs(relpath, code, findings):
    rules = [
        ("no-random-device", re.compile(r"std\s*::\s*random_device"),
         "std::random_device is unseeded entropy; use rfipad::Rng"),
        ("no-libc-rand", re.compile(r"\bs?rand\s*\("),
         "rand()/srand() use hidden global state; use rfipad::Rng"),
    ]
    if not is_transport(relpath):
        rules += [
            ("no-wallclock",
             re.compile(r"std\s*::\s*chrono\s*::\s*system_clock|"
                        r"\b(?:time|localtime|gmtime|mktime)\s*\("),
             "wall-clock read outside transport code; use the reader clock"),
            ("no-sleep",
             re.compile(r"\bsleep_(?:for|until)\b|\busleep\s*\(|\bnanosleep\s*\("),
             "host sleeps outside transport code; advance simulated time instead"),
        ]
    if is_hotpath(relpath):
        rules += [
            ("no-heap-hotpath",
             re.compile(r"\bnew\b(?!\s*\()|\b(?:malloc|calloc|realloc)\s*\("),
             "raw heap allocation in a hot-path module; use reused "
             "scratch, inline storage, or a caller-owned arena"),
        ]
    for rule, pattern, message in rules:
        for m in pattern.finditer(code):
            findings.append(Finding(relpath, line_of(code, m.start()), rule,
                                    message))


def check_unordered_iteration(relpath, code, findings):
    # Variables declared with an unordered container type anywhere in the
    # file (cheap approximation of scope).
    unordered_vars = set(
        m.group(1)
        for m in re.finditer(
            r"unordered_(?:map|set)\s*<[^;{]*?>[&*\s]+(\w+)\s*[;={(),]", code)
    )
    for m in re.finditer(r"for\s*\(([^;(){}]*?):([^(){}]*?)\)\s*(\{?)", code):
        range_expr = m.group(2)
        uses_unordered = "unordered_" in range_expr or any(
            re.search(rf"\b{re.escape(v)}\b", range_expr)
            for v in unordered_vars)
        if not uses_unordered:
            continue
        if m.group(3) == "{":
            open_pos = m.end() - 1
            body = code[open_pos:find_matching_brace(code, open_pos) + 1]
        else:  # single-statement body
            body = code[m.end():code.find(";", m.end()) + 1]
        if WRITE_CALLS.search(body):
            findings.append(Finding(
                relpath, line_of(code, m.start()), "unordered-iteration",
                "range-for over an unordered container feeds a result "
                "container; the ordering is hash-seed dependent — iterate "
                "a sorted copy"))


def check_float_equality(relpath, code, findings):
    patterns = [
        re.compile(rf"{FLOAT_LIT}\s*(?:==|!=)"),
        re.compile(rf"(?:==|!=)\s*[-+]?\s*{FLOAT_LIT}"),
        re.compile(rf"\.(?:{DOUBLE_FIELDS})\b\s*(?:==|!=)(?!=)"),
    ]
    seen_lines = set()
    for pattern in patterns:
        for m in pattern.finditer(code):
            line = line_of(code, m.start())
            if line in seen_lines:
                continue
            seen_lines.add(line)
            findings.append(Finding(
                relpath, line, "float-equality",
                "exact floating-point comparison; use a tolerance or "
                "allowlist the audited exact-match"))


def check_unbounded_queue(relpath, raw, code, findings):
    """Every queue-like declaration needs a nearby "bounded ..."/
    "capacity ..." comment naming what limits its depth.  Matching runs on
    the stripped code (so strings and commented-out code don't trigger),
    but the justification is searched in the raw text — it lives in
    comments."""
    raw_lines = raw.split("\n")
    for m in QUEUE_DECL.finditer(code):
        line = line_of(code, m.start())
        lo = max(0, line - 1 - QUEUE_COMMENT_WINDOW)
        context = "\n".join(raw_lines[lo:line])
        if BOUND_WORDS.search(context):
            continue
        findings.append(Finding(
            relpath, line, "no-unbounded-queue",
            "queue-like container with no stated bound; document within "
            f"{QUEUE_COMMENT_WINDOW} lines above what bounds its depth "
            "(\"bounded by ...\" / \"capacity ...\") and enforce it"))


def check_missing_assert(relpath, raw, code, sibling_texts, findings):
    """Header documents preconditions but nothing in the unit enforces any
    contract.  `sibling_texts` are the stripped texts of same-stem files."""
    if not relpath.endswith((".hpp", ".h")):
        return
    marker = None
    for m in re.finditer(r"//[^\n]*", raw):
        if PRECONDITION_MARKERS.search(m.group(0)):
            marker = m
            break
    if marker is None:
        return
    unit = [code] + list(sibling_texts)
    if any(ENFORCEMENT_TOKENS.search(t) for t in unit):
        return
    findings.append(Finding(
        relpath, line_of(raw, marker.start()), "missing-assert",
        "header documents preconditions but neither it nor its .cpp "
        "enforces any (add RFIPAD_ASSERT / a validating throw)"))


def lint_file(relpath, raw, sibling_raw=()):
    code = strip_comments_and_strings(raw)
    findings = []
    check_banned_constructs(relpath, code, findings)
    check_unordered_iteration(relpath, code, findings)
    check_float_equality(relpath, code, findings)
    check_unbounded_queue(relpath, raw, code, findings)
    check_missing_assert(relpath, raw, code,
                         [strip_comments_and_strings(s) for s in sibling_raw],
                         findings)
    return findings


# ---------------------------------------------------------------------------
# Allowlist
# ---------------------------------------------------------------------------

def load_allowlist(path):
    """Entries: `relpath:rule` or `relpath:rule:substring`, one per line.
    A substring entry only suppresses findings whose source line contains
    the substring."""
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(":", 2)
            if len(parts) < 2:
                raise SystemExit(
                    f"allowlist {path}:{lineno}: malformed entry {line!r}")
            entries.append({
                "path": parts[0],
                "rule": parts[1],
                "substr": parts[2] if len(parts) > 2 else None,
                "used": False,
                "lineno": lineno,
            })
    if len(entries) > MAX_ALLOWLIST_ENTRIES:
        raise SystemExit(
            f"allowlist {path} has {len(entries)} entries; the audited "
            f"budget is {MAX_ALLOWLIST_ENTRIES} — fix code instead of "
            f"allowlisting")
    return entries


def apply_allowlist(findings, entries, file_lines):
    kept = []
    for f in findings:
        suppressed = False
        for e in entries:
            if e["path"] != f.path or e["rule"] != f.rule:
                continue
            if e["substr"] is not None:
                lines = file_lines.get(f.path, [])
                text = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
                if e["substr"] not in text:
                    continue
            e["used"] = True
            suppressed = True
            break
        if not suppressed:
            kept.append(f)
    return kept


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------

def collect_sources(root):
    for top in LINT_DIRS:
        base = os.path.join(root, top)
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith((".cpp", ".hpp", ".h")):
                    full = os.path.join(dirpath, name)
                    yield os.path.relpath(full, root).replace(os.sep, "/")


def run_root(root, allowlist_path):
    entries = load_allowlist(allowlist_path)
    sources = list(collect_sources(root))
    raw_by_path = {}
    for rel in sources:
        with open(os.path.join(root, rel), encoding="utf-8") as fh:
            raw_by_path[rel] = fh.read()

    def siblings(rel):
        stem = rel.rsplit(".", 1)[0]
        return [raw_by_path[p] for p in sources
                if p != rel and p.rsplit(".", 1)[0] == stem]

    findings = []
    for rel in sources:
        findings.extend(lint_file(rel, raw_by_path[rel], siblings(rel)))

    file_lines = {p: t.split("\n") for p, t in raw_by_path.items()}
    findings = apply_allowlist(findings, entries, file_lines)

    # An entry nothing suppresses means the underlying finding was fixed
    # (or the entry was always wrong): hard error, so the allowlist can
    # only shrink along with the code it excuses.
    unused = [e for e in entries if not e["used"]]
    for e in unused:
        print(f"error: unused allowlist entry "
              f"{e['path']}:{e['rule']} (line {e['lineno']}) — stale "
              f"entries are a hard error; delete it", file=sys.stderr)

    for f in findings:
        print(f)
    print(f"rfipad_lint: {len(sources)} files, {len(findings)} finding(s), "
          f"{sum(e['used'] for e in entries)}/{len(entries)} allowlist "
          f"entries used")
    return 1 if (findings or unused) else 0


def run_self_test(fixture_dir):
    """Each fixture declares its expectations in its first lines:
         // LINT-PATH: src/core/fixture.cpp     (optional virtual path)
         // LINT-EXPECT: rule-a, rule-b          (or: clean)
    The linter must produce exactly the expected rule set."""
    fixtures = sorted(
        f for f in os.listdir(fixture_dir) if f.endswith((".cpp", ".hpp")))
    if not fixtures:
        print(f"self-test: no fixtures under {fixture_dir}", file=sys.stderr)
        return 2
    failures = 0
    for name in fixtures:
        path = os.path.join(fixture_dir, name)
        with open(path, encoding="utf-8") as fh:
            raw = fh.read()
        m = re.search(r"//\s*LINT-EXPECT:\s*([^\n]*)", raw)
        if not m:
            print(f"FAIL {name}: fixture lacks a LINT-EXPECT header")
            failures += 1
            continue
        expected = set()
        if m.group(1).strip() != "clean":
            expected = {r.strip() for r in m.group(1).split(",") if r.strip()}
        pm = re.search(r"//\s*LINT-PATH:\s*(\S+)", raw)
        virtual_path = pm.group(1) if pm else f"src/fixtures/{name}"
        got = {f.rule for f in lint_file(virtual_path, raw)}
        if got == expected:
            print(f"ok   {name}: {sorted(got) or ['clean']}")
        else:
            print(f"FAIL {name}: expected {sorted(expected)}, got {sorted(got)}")
            failures += 1
    print(f"self-test: {len(fixtures)} fixtures, {failures} failure(s)")
    return 1 if failures else 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__ % {"max_allow": MAX_ALLOWLIST_ENTRIES},
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root; lints src/ and bench/ beneath it")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: "
                             "tools/lint/lint_allowlist.txt under --root)")
    parser.add_argument("--self-test", default=None, metavar="DIR",
                        help="run the fixture self-test against DIR")
    args = parser.parse_args(argv)

    if args.self_test:
        return run_self_test(args.self_test)
    root = args.root or os.getcwd()
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"error: {root} does not look like the repo root "
              f"(no src/)", file=sys.stderr)
        return 2
    allowlist = args.allowlist or os.path.join(root, "tools", "lint",
                                               "lint_allowlist.txt")
    return run_root(root, allowlist)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
