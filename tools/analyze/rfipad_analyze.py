#!/usr/bin/env python3
"""rfipad semantic AST analyzer: memory ordering, lock order, hot-path allocation.

The regex linter (tools/lint/rfipad_lint.py) is lexical: it can ban a token,
but it cannot see that a release store has no matching acquire load, that two
translation units acquire the same mutexes in opposite orders, or that a
function four calls below an ingest entry point grows a vector.  This tool
closes that gap with a deterministic semantic model of the C++ tree — a
tokenizer, a scope tree (namespaces / classes / function bodies), registries
of every `std::atomic` and `rfipad::Mutex` declaration, and a cross-TU call
graph — and enforces three rule families over it:

  atomic-explicit-order   every access to a `std::atomic` in src/ must pass
                          an explicit `std::memory_order` argument; the
                          defaulted seq_cst is never what a hot path wants,
                          and writing the order down is what makes the
                          pairing auditable.  Operator accesses (`++`, `+=`,
                          plain assignment) are implicit seq_cst and are
                          flagged too.
  atomic-relaxed-branch   a relaxed load may not sit in a branch condition
                          (`if`/`while`/`for`) — a control decision taken on
                          a relaxed read is the classic lost-wakeup /
                          missed-stop bug.  Audited spin/stats sites go in
                          the allowlist with a justification.
  atomic-unpaired         release/acquire pairing per field: a field with a
                          release-side write (store(release), RMW acq_rel,
                          explicit seq_cst) must have an acquire-side read
                          somewhere in the tree, and vice versa — an
                          unpaired half is either a missing fence or a
                          stronger order than the algorithm needs.
  lock-order-cycle        the directed graph of nested `MutexLock`
                          acquisitions (lexical nesting plus lock-sets
                          propagated through the call graph) must be acyclic
                          — a cycle is a deadlock waiting for the right
                          interleaving.
  hotpath-alloc           no `new` / `malloc` / `make_unique` / growing
                          container op (`push_back`, `insert`, `resize`,
                          `reserve`, ...) reachable from a function marked
                          RFIPAD_HOT_PATH (common/contracts.hpp).  The walk
                          follows the call graph, so the check survives
                          refactors that move the allocation into a helper.
  hotpath-function        no `std::function` construction/capture reachable
                          from a hot-path root (type-erased callables heap-
                          allocate their captures).
  hotpath-throw           no `throw` reachable from a hot-path root (the
                          unwinder allocates; hot paths report failure by
                          return value, contract aborts cover bugs).

The analyzed tree is defined by the `compile_commands.json` the `lint`
preset exports (every TU under src/, plus all src/ headers); without a
compile database the tool falls back to walking src/ directly so the check
runs anywhere Python runs.  The frontend is embedded rather than libclang:
the toolchain image carries no libclang Python bindings, and a dependency-
free frontend keeps the gate un-skippable (same posture as rfipad_lint.py).
The RFIPAD_HOT_PATH macro also expands to a Clang `annotate` attribute, so
a libclang- or plugin-based backend can adopt the same annotations later.

Resolution is deliberately conservative and deterministic: member names are
resolved to declarations by (enclosing class, then same file, then unique
name in tree); calls resolve to every function of that name when the
receiver type is unknown.  Unresolvable accesses are skipped rather than
guessed.

Audited exceptions live in ``tools/analyze/analyze_allowlist.txt`` (max
%(max_allow)d entries, unused entries are a hard error).  Exit code 0 means
clean, 1 means findings, 2 means bad invocation or config.

Self-test mode (``--self-test DIR``) analyzes every fixture under DIR as an
isolated tree and compares the produced rule set against the fixture's
``ANALYZE-EXPECT`` header; see tests/analyze/README.md.
"""

import argparse
import json
import os
import re
import sys
from collections import defaultdict

MAX_ALLOWLIST_ENTRIES = 12

ANALYZE_DIRS = ("src",)

ATOMIC_LOAD_METHODS = {"load"}
ATOMIC_STORE_METHODS = {"store"}
ATOMIC_RMW_METHODS = {
    "exchange", "fetch_add", "fetch_sub", "fetch_and", "fetch_or",
    "fetch_xor", "compare_exchange_weak", "compare_exchange_strong",
}
ATOMIC_METHODS = ATOMIC_LOAD_METHODS | ATOMIC_STORE_METHODS | ATOMIC_RMW_METHODS

# Methods never treated as call-graph edges: std container/atomic/thread
# vocabulary.  A repo function deliberately reusing one of these names would
# be invisible to the walk — keep repo API names out of this set.
STD_METHOD_IGNORE = {
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong", "push_back", "emplace_back", "pop_back",
    "pop_front", "insert", "emplace", "erase", "resize", "reserve", "clear",
    "size", "empty", "begin", "end", "rbegin", "rend", "front", "back",
    "data", "c_str", "str", "find", "count", "at", "get", "reset",
    "release", "swap", "lock", "unlock", "try_lock", "join", "joinable",
    "detach", "wait", "notify_one", "notify_all", "native_handle",
    "capacity", "shrink_to_fit", "substr", "append", "assign", "compare",
    "length", "first", "second", "value", "has_value", "emplace_front",
}

CPP_KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default",
    "break", "continue", "return", "goto", "try", "catch", "throw",
    "new", "delete", "sizeof", "alignof", "alignas", "decltype", "typeid",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "class", "struct", "union", "enum", "namespace", "template",
    "typename", "using", "typedef", "public", "private", "protected",
    "virtual", "override", "final", "const", "constexpr", "consteval",
    "constinit", "mutable", "volatile", "static", "extern", "inline",
    "friend", "explicit", "operator", "noexcept", "this", "nullptr",
    "true", "false", "auto", "void", "bool", "char", "int", "long",
    "short", "float", "double", "unsigned", "signed", "and", "or", "not",
    "co_await", "co_return", "co_yield", "requires", "concept", "export",
}

# Growing-container member calls rejected on the hot path.  `reserve` is
# included: it is exactly one allocation, which is one too many per sample.
GROWTH_METHODS = {
    "push_back", "emplace_back", "insert", "emplace", "resize", "reserve",
    "append", "push_front", "emplace_front", "assign", "shrink_to_fit",
}

ALLOC_CALLS = {"malloc", "calloc", "realloc", "strdup", "aligned_alloc",
               "make_unique", "make_shared"}

MEMORY_ORDERS = {
    "memory_order_relaxed", "memory_order_consume", "memory_order_acquire",
    "memory_order_release", "memory_order_acq_rel", "memory_order_seq_cst",
}
RELEASE_SIDE = {"memory_order_release", "memory_order_acq_rel",
                "memory_order_seq_cst"}
ACQUIRE_SIDE = {"memory_order_acquire", "memory_order_acq_rel",
                "memory_order_seq_cst", "memory_order_consume"}

HOT_PATH_MACRO = "RFIPAD_HOT_PATH"


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def sort_key(self):
        return (self.path, self.line, self.rule, self.message)

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving newlines."""
    out = []
    i, n = 0, len(text)
    mode = None
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                mode = c
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif mode == "line":
            if c == "\n":
                mode = None
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
        else:
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == mode:
                mode = None
            out.append("\n" if c == "\n" else " ")
            i += 1
    return "".join(out)


TOKEN_RE = re.compile(
    r"[A-Za-z_][A-Za-z0-9_]*"          # identifier / keyword
    r"|\d[\dA-Za-z_.+\-']*"            # numeric literal (pp-number, loose)
    r"|::|->\*?|\+\+|--|<<=|>>=|<=>|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/="
    r"|%=|&=|\|=|\^=|\.\.\.|."         # operators / punctuation
)


class Tok:
    __slots__ = ("text", "line", "is_ident")

    def __init__(self, text, line, is_ident):
        self.text = text
        self.line = line
        self.is_ident = is_ident

    def __repr__(self):
        return f"Tok({self.text!r}@{self.line})"


def tokenize(code):
    toks = []
    line = 1
    pos = 0
    for m in TOKEN_RE.finditer(code):
        text = m.group(0)
        line += code.count("\n", pos, m.start())
        pos = m.start()
        if text.isspace():
            continue
        first = text[0]
        is_ident = first.isalpha() or first == "_"
        toks.append(Tok(text, line, is_ident))
    return toks


# ---------------------------------------------------------------------------
# Scope tree: namespaces, classes, function bodies
# ---------------------------------------------------------------------------

class Scope:
    """One braced region: kind in {'namespace','class','function','other'}."""
    __slots__ = ("kind", "name", "start", "end", "parent", "children", "line")

    def __init__(self, kind, name, start, parent, line):
        self.kind = kind
        self.name = name
        self.start = start          # index of '{' token
        self.end = None             # index of matching '}' token
        self.parent = parent
        self.children = []
        self.line = line

    def class_path(self):
        """Enclosing class names, outermost first (namespaces excluded)."""
        parts = []
        s = self
        while s is not None:
            if s.kind == "class" and s.name:
                parts.append(s.name)
            s = s.parent
        return list(reversed(parts))


def _is_macro_name(text):
    return bool(re.fullmatch(r"[A-Z][A-Z0-9_]*", text)) and "_" in text


def _match_back_paren(toks, close_idx):
    """Index of the '(' matching toks[close_idx] == ')'."""
    depth = 0
    i = close_idx
    while i >= 0:
        t = toks[i].text
        if t == ")":
            depth += 1
        elif t == "(":
            depth -= 1
            if depth == 0:
                return i
        i -= 1
    return -1


QUALIFIER_TOKENS = {"const", "noexcept", "override", "final", "mutable",
                    "volatile", "&", "&&", "try", "->"}


def classify_brace(toks, brace_idx, enclosing):
    """Classify the '{' at brace_idx.  Returns (kind, name)."""
    i = brace_idx - 1
    if i < 0:
        return ("other", None)
    t = toks[i].text
    # namespace NAME { / namespace {
    if t == "namespace":
        return ("namespace", None)
    if toks[i].is_ident and i >= 1 and toks[i - 1].text == "namespace":
        return ("namespace", toks[i].text)
    # enum [class] NAME [: base] { — treat as plain block, never a class
    j = i
    while j >= 0 and (toks[j].is_ident or toks[j].text in (":", "::")):
        if toks[j].text == "enum":
            return ("other", None)
        if toks[j].text in ("class", "struct", "union"):
            # class/struct NAME [final] [: bases] {
            k = j + 1
            name = None
            while k < brace_idx:
                if toks[k].is_ident and toks[k].text not in ("final",):
                    name = toks[k].text
                    break
                k += 1
            return ("class", name)
        j -= 1
    # Walk back through qualifiers / macro annotations / ctor-init-lists to
    # find `name ( params )` — a function definition.
    i = brace_idx - 1
    steps = 0
    while i >= 0 and steps < 400:
        steps += 1
        t = toks[i]
        if t.text in QUALIFIER_TOKENS:
            i -= 1
            continue
        if t.text == ")":
            open_idx = _match_back_paren(toks, i)
            if open_idx <= 0:
                return ("other", None)
            prev = toks[open_idx - 1]
            if prev.is_ident and _is_macro_name(prev.text):
                # annotation macro: RFIPAD_EXCLUDES(...), RFIPAD_ACQUIRE(...)
                i = open_idx - 2
                continue
            if prev.is_ident and prev.text == "noexcept":
                i = open_idx - 2
                continue
            if prev.is_ident and prev.text not in CPP_KEYWORDS:
                # candidate `name(...)`.  Could be a ctor-init-list entry:
                # `: member(...) {` or `, member(...) {` — keep walking.
                before = toks[open_idx - 2] if open_idx >= 2 else None
                if before is not None and before.text in (":", ","):
                    i = open_idx - 2
                    continue
                return ("function", prev.text)
            if prev.is_ident and prev.text in CPP_KEYWORDS:
                # if/while/for/switch/catch (...) { — control block
                return ("other", None)
            # `](...)` lambda, `>(...)` template ctor, ...
            return ("other", None)
        if t.is_ident and _is_macro_name(t.text):
            i -= 1
            continue
        if t.text in (";", "}", "{", ":", ",", "=", "]"):
            return ("other", None)
        i -= 1
    return ("other", None)


def build_scopes(toks):
    """Parse the token stream into a scope tree; returns the root scope."""
    root = Scope("root", None, -1, None, 0)
    cur = root
    for idx, tok in enumerate(toks):
        if tok.text == "{":
            kind, name = classify_brace(toks, idx, cur)
            child = Scope(kind, name, idx, cur, tok.line)
            cur.children.append(child)
            cur = child
        elif tok.text == "}":
            if cur is not root:
                cur.end = idx
                cur = cur.parent
    # Unterminated scopes (parse slip): close at EOF.
    s = cur
    while s is not None and s is not root:
        if s.end is None:
            s.end = len(toks) - 1
        s = s.parent
    return root


def iter_scopes(scope):
    yield scope
    for c in scope.children:
        yield from iter_scopes(c)


def innermost_class(scope):
    s = scope
    while s is not None:
        if s.kind == "class":
            return s
        s = s.parent
    return None


# ---------------------------------------------------------------------------
# Declarations: atomics, mutexes, functions
# ---------------------------------------------------------------------------

class Decl:
    __slots__ = ("name", "owner", "path", "line", "scope")

    def __init__(self, name, owner, path, line, scope):
        self.name = name      # member/variable name
        self.owner = owner    # "Class::Nested" / "func:Qualified" / "" (file)
        self.path = path
        self.line = line
        self.scope = scope

    @property
    def key(self):
        return f"{self.owner}::{self.name}" if self.owner else self.name


class FuncDef:
    __slots__ = ("name", "qual", "path", "line", "scope", "hot_path",
                 "body_range")

    def __init__(self, name, qual, path, line, scope, hot_path, body_range):
        self.name = name              # simple name
        self.qual = qual              # "Class::name" or "name"
        self.path = path
        self.line = line
        self.scope = scope
        self.hot_path = hot_path
        self.body_range = body_range  # (start_idx, end_idx) token indices


class FileModel:
    def __init__(self, path, raw):
        self.path = path
        self.raw = raw
        self.code = strip_comments_and_strings(raw)
        self.toks = tokenize(self.code)
        self.root = build_scopes(self.toks)
        self.functions = []
        self.func_scope_class = {}  # id(scope) -> class prefix ("" if free)
        self.scope_of_tok = self._index_scopes()

    def _index_scopes(self):
        """Map token index -> innermost scope containing it."""
        owner = [self.root] * len(self.toks)
        for s in iter_scopes(self.root):
            if s.kind == "root" or s.start < 0:
                continue
            end = s.end if s.end is not None else len(self.toks) - 1
            for i in range(s.start, end + 1):
                owner[i] = s if owner[i].start <= s.start else owner[i]
        return owner


def scope_owner_name(scope):
    """Key for the declaring context: class path or enclosing function."""
    cls = innermost_class(scope)
    if cls is not None:
        return "::".join(cls.class_path())
    # function-local declaration (e.g. a local struct's members resolve via
    # their own class scope; a plain local atomic resolves via its function)
    s = scope
    while s is not None:
        if s.kind == "function":
            return f"func:{s.name}"
        s = s.parent
    return ""


def qual_for_function(fdef_scope, name):
    cls = innermost_class(fdef_scope.parent) if fdef_scope.parent else None
    if cls is not None:
        return "::".join(cls.class_path() + [name])
    return name


def find_function_annotations(toks, brace_idx):
    """True if RFIPAD_HOT_PATH appears in the tokens of this signature
    (between the previous ';'/'}'/'{' and the body brace)."""
    i = brace_idx - 1
    steps = 0
    while i >= 0 and steps < 600:
        t = toks[i].text
        if t in (";", "}", "{"):
            return False
        if t == HOT_PATH_MACRO:
            return True
        i -= 1
        steps += 1
    return False


def collect_functions(model):
    out_of_line_class = {}
    for s in iter_scopes(model.root):
        if s.kind != "function":
            continue
        name = s.name
        # Out-of-line `Ret Class::name(...)`: look back from the name's
        # opening paren for `Class ::` immediately before the name.
        qual = qual_for_function(s, name)
        if "::" not in qual:
            # find the token index of the function name before s.start
            i = s.start - 1
            while i >= 0 and model.toks[i].text != "(":
                i -= 1
            # toks[i] == '(' of params?  Not reliable for init-lists; scan
            # back from the brace for `name` token instead.
            j = s.start - 1
            name_idx = None
            depth = 0
            while j >= 0:
                t = model.toks[j].text
                if t == ")":
                    depth += 1
                elif t == "(":
                    depth -= 1
                    if depth < 0:
                        break
                elif depth == 0 and model.toks[j].is_ident and t == name:
                    name_idx = j
                    break
                j -= 1
            if name_idx is not None and name_idx >= 2 and \
                    model.toks[name_idx - 1].text == "::" and \
                    model.toks[name_idx - 2].is_ident:
                parts = [model.toks[name_idx - 2].text]
                k = name_idx - 3
                while k >= 1 and model.toks[k].text == "::" and \
                        model.toks[k - 1].is_ident:
                    parts.insert(0, model.toks[k - 1].text)
                    k -= 2
                # drop namespace-ish leading parts we can't distinguish;
                # keep the last component as the class
                qual = f"{parts[-1]}::{name}"
        hot = find_function_annotations(model.toks, s.start)
        end = s.end if s.end is not None else len(model.toks) - 1
        fdef = FuncDef(name, qual, model.path, s.line, s, hot,
                       (s.start, end))
        model.functions.append(fdef)
        out_of_line_class[id(s)] = qual
        model.func_scope_class[id(s)] = \
            qual.rsplit("::", 1)[0] if "::" in qual else ""
    return model.functions


def enclosing_class_prefix(model, scope):
    """Class context of a use site: the lexical class path when inside a
    class body, else the class part of an out-of-line method's qualifier
    (`Shard::enqueue` defined in the .cpp still resolves `Shard` members)."""
    cls = innermost_class(scope)
    if cls is not None:
        return "::".join(cls.class_path())
    s = scope
    while s is not None:
        if s.kind == "function":
            return model.func_scope_class.get(id(s), "")
        s = s.parent
    return ""


def decl_matches_context(decl, prefix, use_scope, use_path):
    """True when `decl` belongs to the use site's own class (including
    nested classes either way) or is local to its enclosing function."""
    if decl.owner and prefix:
        if decl.owner == prefix or \
                decl.owner.startswith(prefix + "::") or \
                prefix.startswith(decl.owner + "::"):
            return True
    s = use_scope
    while s is not None:
        if s.kind == "function" and decl.scope is not None and \
                decl.path == use_path and _scope_within(decl.scope, s):
            return True
        s = s.parent
    return False


def collect_atomic_decls(model, decls):
    """`std::atomic<...>` (optionally `&`/`*`) followed by a declarator
    name.  Covers members, locals, and reference parameters."""
    toks = model.toks
    i = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.text == "atomic" and i + 1 < n and toks[i + 1].text == "<":
            # skip template args
            depth = 0
            j = i + 1
            while j < n:
                if toks[j].text == "<":
                    depth += 1
                elif toks[j].text == ">":
                    depth -= 1
                    if depth == 0:
                        break
                elif toks[j].text == ">>":
                    depth -= 2
                    if depth <= 0:
                        break
                elif toks[j].text in (";", "{", "}"):
                    break
                j += 1
            j += 1
            while j < n and toks[j].text in ("&", "*", "const"):
                j += 1
            if j < n and toks[j].is_ident and \
                    toks[j].text not in CPP_KEYWORDS:
                scope = model.scope_of_tok[min(j, n - 1)]
                owner = scope_owner_name(scope)
                decls.append(Decl(toks[j].text, owner, model.path,
                                  toks[j].line, scope))
            i = j
        i += 1


def collect_mutex_decls(model, decls):
    """`Mutex name;` (rfipad::Mutex) — member, local, or file-scope."""
    toks = model.toks
    n = len(toks)
    for i, t in enumerate(toks):
        if t.text != "Mutex" or i + 1 >= n:
            continue
        # skip `class Mutex`, `Mutex&` parameters keep their name too
        if i >= 1 and toks[i - 1].text in ("class", "struct", "::"):
            # `rfipad::Mutex name` reaches here with prev '::'; allow it
            if toks[i - 1].text != "::":
                continue
        j = i + 1
        while j < n and toks[j].text in ("&", "*", "const"):
            j += 1
        if j < n and toks[j].is_ident and toks[j].text not in CPP_KEYWORDS \
                and toks[j].text != "Mutex":
            nxt = toks[j + 1].text if j + 1 < n else ""
            if nxt in (";", "=", "{", ")", ","):
                scope = model.scope_of_tok[j]
                owner = scope_owner_name(scope)
                decls.append(Decl(toks[j].text, owner, model.path,
                                  toks[j].line, scope))


# ---------------------------------------------------------------------------
# Resolution
# ---------------------------------------------------------------------------

class Registry:
    def __init__(self):
        self.by_name = defaultdict(list)

    def add(self, decl):
        self.by_name[decl.name].append(decl)

    def resolve(self, name, use_scope, use_path):
        """Resolve an access to a declaration: enclosing-class preference,
        then enclosing-function locals, then same file, then unique."""
        cands = self.by_name.get(name)
        if not cands:
            return None
        if len(cands) == 1:
            return cands[0]
        cls = innermost_class(use_scope)
        if cls is not None:
            prefix = "::".join(cls.class_path())
            scoped = [d for d in cands
                      if d.owner == prefix or d.owner.startswith(prefix + "::")]
            if len(scoped) >= 1:
                return scoped[0]
        # function-local decls (including members of function-local structs)
        s = use_scope
        while s is not None:
            if s.kind == "function":
                local = [d for d in cands
                         if d.path == use_path and d.scope is not None and
                         _scope_within(d.scope, s)]
                if local:
                    return local[0]
            s = s.parent
        same_file = [d for d in cands if d.path == use_path]
        if len(same_file) == 1:
            return same_file[0]
        return None


def _scope_within(inner, outer):
    s = inner
    while s is not None:
        if s is outer:
            return True
        s = s.parent
    return False


# ---------------------------------------------------------------------------
# Pass 1: atomic ordering discipline
# ---------------------------------------------------------------------------

def _paren_span(toks, open_idx):
    depth = 0
    for i in range(open_idx, len(toks)):
        if toks[i].text == "(":
            depth += 1
        elif toks[i].text == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(toks) - 1


def _collect_condition_ranges(toks):
    """Token ranges of if/while/for conditions (inclusive)."""
    ranges = []
    for i, t in enumerate(toks):
        if t.is_ident and t.text in ("if", "while", "for") and \
                i + 1 < len(toks) and toks[i + 1].text == "(":
            close = _paren_span(toks, i + 1)
            ranges.append((i + 1, close))
    return ranges


class AtomicAccess:
    __slots__ = ("decl", "method", "orders", "line", "path", "explicit")

    def __init__(self, decl, method, orders, line, path, explicit):
        self.decl = decl
        self.method = method
        self.orders = orders
        self.line = line
        self.path = path
        self.explicit = explicit


def scan_atomic_accesses(model, atomics, findings):
    toks = model.toks
    n = len(toks)
    cond_ranges = _collect_condition_ranges(toks)
    accesses = []

    def in_condition(idx):
        return any(lo <= idx <= hi for lo, hi in cond_ranges)

    for i, t in enumerate(toks):
        if not t.is_ident or t.text not in ATOMIC_METHODS:
            continue
        if i < 2 or toks[i - 1].text not in (".", "->"):
            continue
        recv = toks[i - 2]
        if not recv.is_ident:
            continue
        decl = atomics.resolve(recv.text, model.scope_of_tok[i], model.path)
        if decl is None:
            continue
        if i + 1 >= n or toks[i + 1].text != "(":
            continue
        close = _paren_span(toks, i + 1)
        arg_tokens = toks[i + 2:close]
        orders = {a.text for a in arg_tokens if a.text in MEMORY_ORDERS}
        explicit = bool(orders)
        accesses.append(AtomicAccess(decl, t.text, orders, t.line,
                                     model.path, explicit))
        if not explicit:
            findings.append(Finding(
                model.path, t.line, "atomic-explicit-order",
                f"`{recv.text}.{t.text}(...)` uses the defaulted "
                f"seq_cst ordering; state the memory_order explicitly "
                f"(and prefer the weakest order the algorithm admits)"))
        if t.text in ATOMIC_LOAD_METHODS and \
                orders == {"memory_order_relaxed"} and in_condition(i):
            findings.append(Finding(
                model.path, t.line, "atomic-relaxed-branch",
                f"relaxed load of `{recv.text}` feeds a branch condition; "
                f"a control decision on a relaxed read risks lost wakeups "
                f"— use acquire, or allowlist an audited spin/stats site"))

    # Operator accesses: implicit seq_cst (`x++`, `x += k`, `x = v`).
    # Without type information this pass is deliberately strict about when
    # a name *is* the atomic: bare names (or `this->name`) resolving inside
    # the declaring class or enclosing function only.  `other.name` through
    # an arbitrary receiver is skipped — plain structs routinely reuse
    # counter names (PumpStats mirrors Worker's atomics field-for-field).
    for i, t in enumerate(toks):
        if not t.is_ident or t.text in CPP_KEYWORDS:
            continue
        nxt = toks[i + 1].text if i + 1 < n else ""
        prev = toks[i - 1].text if i >= 1 else ""
        is_write = nxt in ("++", "--", "+=", "-=", "&=", "|=", "^=") or \
            (nxt == "=" and (i + 2 >= n or toks[i + 2].text != "=")
             and prev not in ("=", "==", "!=", "<", ">", "<=", ">="))
        is_prefix = prev in ("++", "--") and nxt not in (".", "->", "::")
        if not (is_write or is_prefix):
            continue
        if prev in (".", "->"):
            # member form: only `this->name` is unambiguous
            if not (i >= 2 and toks[i - 2].text == "this"):
                continue
        elif prev == "::":
            continue
        elif toks[i - 1].is_ident if i >= 1 else False:
            continue  # `Type name = ...` — a declaration, not an access
        elif prev in ("&", "*", ">", ">>", "]"):
            continue  # declarator tail (`auto& seq = ...`, `T* p = ...`)
        scope = model.scope_of_tok[i]
        decl = atomics.resolve(t.text, scope, model.path)
        if decl is None:
            continue
        if not decl_matches_context(
                decl, enclosing_class_prefix(model, scope), scope,
                model.path):
            continue
        # skip the declaration itself (`std::atomic<int> x = ...`)
        if decl.path == model.path and decl.line == t.line:
            continue
        accesses.append(AtomicAccess(decl, "operator", set(), t.line,
                                     model.path, False))
        findings.append(Finding(
            model.path, t.line, "atomic-explicit-order",
            f"operator access to atomic `{t.text}` is an implicit "
            f"seq_cst operation; use load/store/fetch_* with an "
            f"explicit memory_order"))
    return accesses


def check_atomic_pairing(all_accesses, findings):
    """Per resolved field: release-side writes need an acquire-side read
    somewhere in the tree, and vice versa."""
    by_key = defaultdict(list)
    for a in all_accesses:
        by_key[a.decl.key].append(a)
    for key in sorted(by_key):
        accs = by_key[key]
        release_writes = [a for a in accs
                          if (a.method in ATOMIC_STORE_METHODS or
                              a.method in ATOMIC_RMW_METHODS)
                          and a.orders & RELEASE_SIDE]
        acquire_reads = [a for a in accs
                         if (a.method in ATOMIC_LOAD_METHODS or
                             a.method in ATOMIC_RMW_METHODS)
                         and a.orders & ACQUIRE_SIDE]
        if release_writes and not acquire_reads:
            w = release_writes[0]
            findings.append(Finding(
                w.path, w.line, "atomic-unpaired",
                f"`{key}` has release-ordered writes but no acquire-ordered "
                f"read anywhere in the tree — the release publishes nothing; "
                f"add the acquire load or relax the store"))
        if acquire_reads and not release_writes:
            r = acquire_reads[0]
            findings.append(Finding(
                r.path, r.line, "atomic-unpaired",
                f"`{key}` has acquire-ordered reads but no release-ordered "
                f"write anywhere in the tree — the acquire synchronises "
                f"with nothing; add the release store or relax the load"))


# ---------------------------------------------------------------------------
# Pass 2: call graph + lock order
# ---------------------------------------------------------------------------

class CallSite:
    __slots__ = ("callee_name", "qualifier", "is_member", "line", "tok_idx",
                 "receiver")

    def __init__(self, callee_name, qualifier, is_member, line, tok_idx,
                 receiver=None):
        self.callee_name = callee_name
        self.qualifier = qualifier
        self.is_member = is_member
        self.line = line
        self.tok_idx = tok_idx
        self.receiver = receiver  # identifier before `.`/`->`, if simple


STD_TYPE_WRAPPERS = {
    "vector", "unique_ptr", "shared_ptr", "optional", "array", "deque",
    "map", "unordered_map", "span", "atomic", "reference_wrapper", "pair",
}


def collect_var_types(model, var_types):
    """Lexical declarator scan: `Type [<...>] [&*] name (;|=|{|,|))` records
    name -> candidate type names.  For wrapped declarations
    (`vector<Shard*>`, `unique_ptr<Worker>`) the template-argument
    identifiers are recorded too — a member call through `v[i]->` or
    `p->` dispatches on the element type, not the wrapper.  The map is a
    *hint* for receiver-type resolution; lookups that miss fall back to
    every same-name candidate, so noise here costs precision, never
    soundness."""
    toks = model.toks
    n = len(toks)
    for i, t in enumerate(toks):
        if not t.is_ident or t.text in CPP_KEYWORDS:
            continue
        nxt = toks[i + 1].text if i + 1 < n else ""
        if nxt not in (";", "=", "{", ")", ","):
            continue
        names = set()
        j = i - 1
        while j >= 0 and toks[j].text in ("&", "*", "const"):
            j -= 1
        if j >= 0 and toks[j].text in (">", ">>"):
            depth = 0
            while j >= 0:
                tx = toks[j].text
                if tx in (">", ">>"):
                    depth += 2 if tx == ">>" else 1
                elif tx == "<":
                    depth -= 1
                    if depth <= 0:
                        j -= 1
                        break
                elif toks[j].is_ident and tx not in CPP_KEYWORDS and \
                        tx != "std" and not _is_macro_name(tx):
                    names.add(tx)
                j -= 1
        if j < 0 or not toks[j].is_ident or toks[j].text in CPP_KEYWORDS \
                or _is_macro_name(toks[j].text):
            continue
        outer = toks[j].text
        if outer != "std":
            names.add(outer)
        names -= STD_TYPE_WRAPPERS
        if names:
            var_types[t.text].update(names)


class LockSite:
    __slots__ = ("decl", "line", "tok_idx", "scope_end")

    def __init__(self, decl, line, tok_idx, scope_end):
        self.decl = decl
        self.line = line
        self.tok_idx = tok_idx
        self.scope_end = scope_end  # token index where the guard dies


def _enclosing_block_end(model, tok_idx):
    """Token index of the '}' closing the innermost block containing
    tok_idx (the lifetime of a scoped lock declared there)."""
    s = model.scope_of_tok[tok_idx]
    end = s.end if s.end is not None else len(model.toks) - 1
    return end


def scan_calls_and_locks(model, mutexes):
    """For every function definition: its callsites and MutexLock sites."""
    toks = model.toks
    n = len(toks)
    for f in model.functions:
        lo, hi = f.body_range
        calls = []
        locks = []
        i = lo
        while i <= hi:
            t = toks[i]
            if t.is_ident and t.text == "MutexLock" and i + 2 <= hi and \
                    toks[i + 1].is_ident and toks[i + 2].text == "(":
                close = _paren_span(toks, i + 2)
                # lock identity: last identifier inside the parens
                name = None
                for k in range(close - 1, i + 2, -1):
                    if toks[k].is_ident:
                        name = toks[k]
                        break
                if name is not None:
                    decl = mutexes.resolve(name.text, model.scope_of_tok[i],
                                           model.path)
                    if decl is not None:
                        locks.append(LockSite(
                            decl, name.line, i,
                            _enclosing_block_end(model, i)))
                i = close + 1
                continue
            if t.is_ident and t.text not in CPP_KEYWORDS and \
                    not _is_macro_name(t.text) and i + 1 <= hi and \
                    toks[i + 1].text == "(":
                prev = toks[i - 1].text if i >= 1 else ""
                is_member = prev in (".", "->")
                qualifier = None
                if prev == "::" and i >= 2 and toks[i - 2].is_ident:
                    qualifier = toks[i - 2].text
                if is_member and t.text in STD_METHOD_IGNORE:
                    i += 1
                    continue
                if not is_member and prev not in ("::",) and i >= 1 and \
                        (toks[i - 1].is_ident or toks[i - 1].text in
                         (">", "&", "*")):
                    # `Type name(...)` declaration, not a call
                    i += 1
                    continue
                if qualifier == "std" or (qualifier is None and prev == "::"):
                    i += 1
                    continue
                receiver = None
                if is_member and i >= 2 and toks[i - 2].is_ident:
                    receiver = toks[i - 2].text
                calls.append(CallSite(t.text, qualifier, is_member,
                                      t.line, i, receiver))
            elif t.is_ident and t.text in ("make_unique", "make_shared") \
                    and i + 1 <= hi and toks[i + 1].text == "<":
                # make_unique<Type>(...): record Type's constructor
                close = i + 1
                depth = 0
                ctor = None
                while close <= hi:
                    if toks[close].text == "<":
                        depth += 1
                    elif toks[close].text in (">", ">>"):
                        depth -= 2 if toks[close].text == ">>" else 1
                        if depth <= 0:
                            break
                    elif depth == 1 and toks[close].is_ident and ctor is None:
                        ctor = toks[close]
                    close += 1
                if ctor is not None:
                    calls.append(CallSite(ctor.text, None, False,
                                          ctor.line, i))
            i += 1
        f_calls_key = (f.path, f.qual, f.line)
        yield f, calls, locks


def _qual_matches_type(qual, type_name, callee_name):
    """`Worker` matches both `Worker::wake` and `PumpRuntime::Worker::wake`."""
    return qual == f"{type_name}::{callee_name}" or \
        qual.endswith(f"::{type_name}::{callee_name}")


def resolve_callees(site, func_table, caller, var_types):
    """Candidate FuncDefs for one callsite.  Resolution order: explicit
    `Class::fn` qualifier, then the receiver's declared type (when the
    declarator scan captured it), then the caller's own class for bare
    calls, then — conservatively — every same-name function."""
    cands = func_table.get(site.callee_name, [])
    if not cands:
        return []
    if site.qualifier is not None:
        scoped = [g for g in cands
                  if g.qual == f"{site.qualifier}::{site.callee_name}"]
        if scoped:
            return scoped
    if site.is_member and site.receiver:
        types = var_types.get(site.receiver)
        if types:
            typed = [g for g in cands
                     if any(_qual_matches_type(g.qual, tn, site.callee_name)
                            for tn in types)]
            if typed:
                return typed
    if not site.is_member:
        # prefer a method of the caller's own class for bare calls
        if "::" in caller.qual:
            cls = caller.qual.rsplit("::", 1)[0]
            own = [g for g in cands if g.qual == f"{cls}::{site.callee_name}"]
            if own:
                return own
    return cands


def build_call_graph(models, func_table):
    """func id -> list of (callee FuncDef, callsite) and lock info."""
    graph = {}
    fn_locks = {}
    mutex_reg = build_mutex_registry(models)
    var_types = defaultdict(set)
    for model in models:
        collect_var_types(model, var_types)
    for model in models:
        for f, calls, locks in scan_calls_and_locks(model, mutex_reg):
            edges = []
            for site in calls:
                for callee in resolve_callees(site, func_table, f,
                                              var_types):
                    if callee is f:
                        continue
                    edges.append((callee, site))
            graph[id(f)] = (f, edges)
            fn_locks[id(f)] = locks
    return graph, fn_locks


def build_mutex_registry(models):
    reg = Registry()
    for model in models:
        decls = []
        collect_mutex_decls(model, decls)
        for d in decls:
            reg.add(d)
    return reg


def check_lock_order(models, graph, fn_locks, findings):
    # 1. locks transitively acquired by each function (fixpoint)
    trans = {fid: {ls.decl.key for ls in locks}
             for fid, locks in fn_locks.items()}
    changed = True
    iters = 0
    while changed and iters < 50:
        changed = False
        iters += 1
        for fid, (f, edges) in graph.items():
            cur = trans[fid]
            before = len(cur)
            for callee, _site in edges:
                cur |= trans.get(id(callee), set())
            if len(cur) != before:
                changed = True

    # 2. edges: lock A held (lexically active) when lock B acquired or when
    #    a callee that transitively acquires B is called.
    edge_sites = {}
    for fid, (f, edges) in graph.items():
        locks = fn_locks[fid]
        for ls in locks:
            for other in locks:
                if other is ls:
                    continue
                if ls.tok_idx < other.tok_idx <= ls.scope_end:
                    a, b = ls.decl.key, other.decl.key
                    if a != b:
                        edge_sites.setdefault((a, b), (f.path, other.line))
        for callee, site in edges:
            callee_locks = trans.get(id(callee), set())
            if not callee_locks:
                continue
            for ls in locks:
                if ls.tok_idx < site.tok_idx <= ls.scope_end:
                    for b in sorted(callee_locks):
                        if ls.decl.key != b:
                            edge_sites.setdefault(
                                (ls.decl.key, b), (f.path, site.line))

    # 3. cycle detection over the acquired-after graph
    adj = defaultdict(set)
    for (a, b) in edge_sites:
        adj[a].add(b)
    seen_cycles = set()
    state = {}

    def dfs(node, stack):
        state[node] = 1
        stack.append(node)
        for nxt in sorted(adj[node]):
            if state.get(nxt, 0) == 0:
                dfs(nxt, stack)
            elif state.get(nxt) == 1:
                cyc = stack[stack.index(nxt):] + [nxt]
                lo = min(range(len(cyc) - 1), key=lambda k: cyc[k])
                canon = tuple(cyc[lo:-1] + cyc[:lo])
                if canon not in seen_cycles:
                    seen_cycles.add(canon)
                    first_edge = (cyc[0], cyc[1])
                    path, line = edge_sites.get(
                        first_edge, edge_sites.get((cyc[-2], cyc[-1])))
                    findings.append(Finding(
                        path, line, "lock-order-cycle",
                        "inconsistent lock acquisition order: " +
                        " -> ".join(cyc) +
                        " (deadlock under the right interleaving); pick one "
                        "hierarchy and release before acquiring against it"))
        stack.pop()
        state[node] = 2

    for node in sorted(adj):
        if state.get(node, 0) == 0:
            dfs(node, [])


# ---------------------------------------------------------------------------
# Pass 3: hot-path allocation, call-graph aware
# ---------------------------------------------------------------------------

def check_hot_paths(models, graph, findings):
    roots = [f for fid, (f, _e) in graph.items() if f.hot_path]
    if not roots:
        return
    # BFS with first-reaching chain for diagnostics
    reach = {}
    queue = []
    for r in sorted(roots, key=lambda f: (f.path, f.line)):
        reach[id(r)] = [r.qual]
        queue.append(r)
    while queue:
        f = queue.pop(0)
        chain = reach[id(f)]
        if len(chain) > 12:
            continue
        _f, edges = graph[id(f)]
        for callee, _site in sorted(
                edges, key=lambda e: (e[0].path, e[0].line)):
            if id(callee) not in reach:
                reach[id(callee)] = chain + [callee.qual]
                queue.append(callee)

    model_by_path = {}
    for m in models:
        model_by_path.setdefault(m.path, m)

    for fid, chain in sorted(reach.items(),
                             key=lambda kv: (kv[1], )):
        f = graph[fid][0]
        model = model_by_path[f.path]
        via = " -> ".join(chain)
        scan_hotpath_body(model, f, via, findings)


def scan_hotpath_body(model, f, via, findings):
    toks = model.toks
    lo, hi = f.body_range
    i = lo
    n = len(toks)
    while i <= hi:
        t = toks[i]
        nxt = toks[i + 1].text if i + 1 < n else ""
        prev = toks[i - 1].text if i >= 1 else ""
        if t.is_ident and t.text == "new" and prev != "delete":
            findings.append(Finding(
                model.path, t.line, "hotpath-alloc",
                f"`new` reachable from hot path ({via}); use reused "
                f"scratch, inline storage, or a caller-owned arena"))
        elif t.is_ident and t.text in ALLOC_CALLS and nxt in ("(", "<"):
            findings.append(Finding(
                model.path, t.line, "hotpath-alloc",
                f"`{t.text}` reachable from hot path ({via}); allocation "
                f"belongs on the cold setup path"))
        elif t.is_ident and t.text in GROWTH_METHODS and \
                prev in (".", "->") and nxt == "(":
            findings.append(Finding(
                model.path, t.line, "hotpath-alloc",
                f"growing-container call `.{t.text}(...)` reachable from "
                f"hot path ({via}); growth may reallocate — pre-size on "
                f"the cold path or use fixed-capacity storage"))
        elif t.is_ident and t.text == "function" and prev == "::" and \
                i >= 2 and toks[i - 2].text == "std":
            findings.append(Finding(
                model.path, t.line, "hotpath-function",
                f"std::function reachable from hot path ({via}); "
                f"type-erased callables heap-allocate captures — use a "
                f"template parameter or function pointer"))
        elif t.is_ident and t.text == "throw":
            findings.append(Finding(
                model.path, t.line, "hotpath-throw",
                f"`throw` reachable from hot path ({via}); hot paths "
                f"report failure by return value (contract aborts cover "
                f"programming errors)"))
        i += 1


# ---------------------------------------------------------------------------
# Allowlist
# ---------------------------------------------------------------------------

def load_allowlist(path):
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(":", 2)
            if len(parts) < 2:
                raise SystemExit(
                    f"allowlist {path}:{lineno}: malformed entry {line!r}")
            entries.append({
                "path": parts[0],
                "rule": parts[1],
                "substr": parts[2] if len(parts) > 2 else None,
                "used": False,
                "lineno": lineno,
            })
    if len(entries) > MAX_ALLOWLIST_ENTRIES:
        raise SystemExit(
            f"allowlist {path} has {len(entries)} entries; the audited "
            f"budget is {MAX_ALLOWLIST_ENTRIES} — fix code instead of "
            f"allowlisting")
    return entries


def apply_allowlist(findings, entries, file_lines):
    kept = []
    for f in findings:
        suppressed = False
        for e in entries:
            if e["path"] != f.path or e["rule"] != f.rule:
                continue
            if e["substr"] is not None:
                lines = file_lines.get(f.path, [])
                text = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
                if e["substr"] not in text:
                    continue
            e["used"] = True
            suppressed = True
            break
        if not suppressed:
            kept.append(f)
    return kept


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------

def sources_from_compile_db(db_path, root):
    """Repo-relative src/ sources named by compile_commands.json."""
    with open(db_path, encoding="utf-8") as fh:
        db = json.load(fh)
    out = set()
    root_abs = os.path.abspath(root)
    for entry in db:
        f = entry.get("file", "")
        if not os.path.isabs(f):
            f = os.path.join(entry.get("directory", ""), f)
        f = os.path.abspath(f)
        try:
            rel = os.path.relpath(f, root_abs).replace(os.sep, "/")
        except ValueError:
            continue
        if rel.startswith("src/") and rel.endswith(
                (".cpp", ".cc", ".cxx")):
            out.add(rel)
    return sorted(out)


def collect_sources(root, compile_db):
    """TU list from the compile DB (when available) plus every header under
    the analyzed dirs — ordering-pass pairing needs headers regardless of
    how the build slices them into TUs."""
    found = set()
    db_note = None
    if compile_db and os.path.exists(compile_db):
        found.update(sources_from_compile_db(compile_db, root))
        db_note = f"compile db: {len(found)} TU(s) from {compile_db}"
    for top in ANALYZE_DIRS:
        base = os.path.join(root, top)
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if compile_db and os.path.exists(compile_db):
                    want = name.endswith((".hpp", ".h"))
                else:
                    want = name.endswith((".cpp", ".hpp", ".h"))
                if want:
                    full = os.path.join(dirpath, name)
                    found.add(os.path.relpath(full, root).replace(os.sep, "/"))
    return sorted(found), db_note


def analyze_tree(rel_paths, raw_by_path):
    """Run every pass over the given file set.  Returns raw findings."""
    models = []
    for rel in rel_paths:
        model = FileModel(rel, raw_by_path[rel])
        collect_functions(model)
        models.append(model)

    findings = []

    # Registries
    atomics = Registry()
    for model in models:
        decls = []
        collect_atomic_decls(model, decls)
        for d in decls:
            atomics.add(d)

    func_table = defaultdict(list)
    for model in models:
        for f in model.functions:
            func_table[f.name].append(f)

    # Pass 1
    all_accesses = []
    for model in models:
        all_accesses.extend(scan_atomic_accesses(model, atomics, findings))
    check_atomic_pairing(all_accesses, findings)

    # Pass 2 + 3 share the call graph
    graph, fn_locks = build_call_graph(models, func_table)
    check_lock_order(models, graph, fn_locks, findings)
    check_hot_paths(models, graph, findings)

    findings.sort(key=Finding.sort_key)
    return findings


def run_root(root, allowlist_path, compile_db):
    entries = load_allowlist(allowlist_path)
    rel_paths, db_note = collect_sources(root, compile_db)
    if db_note:
        print(db_note)
    elif compile_db:
        print(f"note: {compile_db} not found — analyzing src/ directly "
              f"(configure the `lint` preset to export it)", file=sys.stderr)
    raw_by_path = {}
    for rel in rel_paths:
        with open(os.path.join(root, rel), encoding="utf-8") as fh:
            raw_by_path[rel] = fh.read()

    findings = analyze_tree(rel_paths, raw_by_path)
    file_lines = {p: t.split("\n") for p, t in raw_by_path.items()}
    findings = apply_allowlist(findings, entries, file_lines)

    unused = [e for e in entries if not e["used"]]
    for e in unused:
        print(f"error: unused allowlist entry {e['path']}:{e['rule']} "
              f"(line {e['lineno']}) — stale entries are a hard error; "
              f"delete it", file=sys.stderr)

    for f in findings:
        print(f)
    print(f"rfipad_analyze: {len(rel_paths)} files, {len(findings)} "
          f"finding(s), {sum(e['used'] for e in entries)}/{len(entries)} "
          f"allowlist entries used")
    return 1 if (findings or unused) else 0


def run_self_test(fixture_dir):
    """Each fixture declares its expectations in its first lines:
         // ANALYZE-PATH: src/core/fixture.cpp   (optional virtual path)
         // ANALYZE-EXPECT: rule-a, rule-b        (or: clean)
    The analyzer must produce exactly the expected rule set, treating the
    fixture as a complete tree of its own."""
    fixtures = sorted(
        f for f in os.listdir(fixture_dir) if f.endswith((".cpp", ".hpp")))
    if not fixtures:
        print(f"self-test: no fixtures under {fixture_dir}", file=sys.stderr)
        return 2
    failures = 0
    for name in fixtures:
        path = os.path.join(fixture_dir, name)
        with open(path, encoding="utf-8") as fh:
            raw = fh.read()
        m = re.search(r"//\s*ANALYZE-EXPECT:\s*([^\n]*)", raw)
        if not m:
            print(f"FAIL {name}: fixture lacks an ANALYZE-EXPECT header")
            failures += 1
            continue
        expected = set()
        if m.group(1).strip() != "clean":
            expected = {r.strip() for r in m.group(1).split(",") if r.strip()}
        pm = re.search(r"//\s*ANALYZE-PATH:\s*(\S+)", raw)
        virtual_path = pm.group(1) if pm else f"src/fixtures/{name}"
        got = {f.rule
               for f in analyze_tree([virtual_path], {virtual_path: raw})}
        if got == expected:
            print(f"ok   {name}: {sorted(got) or ['clean']}")
        else:
            print(f"FAIL {name}: expected {sorted(expected)}, "
                  f"got {sorted(got)}")
            failures += 1
    print(f"self-test: {len(fixtures)} fixtures, {failures} failure(s)")
    return 1 if failures else 0


def default_compile_db(root):
    for cand in ("build-lint", "build", "build-native"):
        p = os.path.join(root, cand, "compile_commands.json")
        if os.path.exists(p):
            return p
    return os.path.join(root, "build-lint", "compile_commands.json")


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__ % {"max_allow": MAX_ALLOWLIST_ENTRIES},
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root; analyzes src/ beneath it")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json (default: "
                             "build-lint/ or build/ under --root)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: "
                             "tools/analyze/analyze_allowlist.txt)")
    parser.add_argument("--self-test", default=None, metavar="DIR",
                        help="run the fixture self-test against DIR")
    args = parser.parse_args(argv)

    if args.self_test:
        return run_self_test(args.self_test)
    root = args.root or os.getcwd()
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"error: {root} does not look like the repo root (no src/)",
              file=sys.stderr)
        return 2
    allowlist = args.allowlist or os.path.join(root, "tools", "analyze",
                                               "analyze_allowlist.txt")
    compile_db = args.compile_commands or default_compile_db(root)
    return run_root(root, allowlist, compile_db)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
