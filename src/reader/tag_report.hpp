// Per-read report record, mirroring the LLRP TagReportData fields an Impinj
// Speedway exposes once low-level data reporting is enabled (the paper
// "modified the Octane SDK to enable the phase reporting", §IV-A).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <ostream>
#include <string>
#include <string_view>

#include "common/contracts.hpp"

namespace rfipad::reader {

/// EPC hex digits stored inline — a 24-character EPC-96 overflows
/// std::string's 15-byte SSO buffer, so the old `std::string epc` heap-
/// allocated once per simulated read.  Inline storage makes TagReport
/// trivially copyable: SampleStream::push and vector growth become plain
/// memcpy with zero steady-state allocations (tests/reader/
/// test_stream_alloc.cpp pins this down).
class EpcHex {
 public:
  /// Fits EPC-96 (24 hex chars) with headroom for longer test labels.
  static constexpr std::size_t kCapacity = 31;

  EpcHex() = default;
  EpcHex(const char* s) { assign(std::string_view(s)); }
  EpcHex(std::string_view s) { assign(s); }

  EpcHex& operator=(const char* s) {
    assign(std::string_view(s));
    return *this;
  }
  EpcHex& operator=(std::string_view s) {
    assign(s);
    return *this;
  }
  EpcHex& operator=(const std::string& s) {
    assign(std::string_view(s));
    return *this;
  }

  const char* c_str() const { return buf_; }
  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  std::string_view view() const { return std::string_view(buf_, len_); }
  std::string str() const { return std::string(buf_, len_); }

  bool operator==(const EpcHex& other) const {
    return len_ == other.len_ && std::memcmp(buf_, other.buf_, len_) == 0;
  }
  bool operator==(std::string_view s) const { return view() == s; }

 private:
  void assign(std::string_view s) {
    RFIPAD_ASSERT(s.size() <= kCapacity, "EpcHex: EPC longer than capacity");
    // Zero the whole buffer (not just a terminator) so equality of the
    // value never depends on a previous, longer assignment's residue.
    std::memset(buf_, 0, sizeof(buf_));
    std::memcpy(buf_, s.data(), s.size());
    len_ = static_cast<std::uint8_t>(s.size());
  }

  char buf_[kCapacity + 1] = {};
  std::uint8_t len_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, const EpcHex& epc) {
  return os << epc.view();
}

struct TagReport {
  /// EPC-96 as upper-case hex.
  EpcHex epc;
  /// Dense array index (convenience; real deployments map EPC → index).
  std::uint32_t tag_index = 0;
  /// Reader antenna port (1-based, as in LLRP).
  std::uint16_t antenna_id = 1;
  /// Read timestamp, seconds from capture start (LLRP reports µs UTC).
  double time_s = 0.0;
  /// RF phase angle in [0, 2π), quantised to 2π/4096 — the 0.0015 rad
  /// resolution the paper quotes in §III-A.
  double phase_rad = 0.0;
  /// Peak RSSI in dBm, quantised to 0.5 dB.
  double rssi_dbm = 0.0;
  /// RF Doppler frequency estimate, Hz (noisy; Fig. 2(a)).
  double doppler_hz = 0.0;
  /// Carrier channel, MHz.
  double channel_mhz = 922.38;
  /// Synthetic read inserted by gap imputation (reader::imputeGaps), never
  /// produced by a reader.  Downstream confidence accounting discounts
  /// imputed reads; the wire codecs ignore the flag.
  bool imputed = false;
};

}  // namespace rfipad::reader
