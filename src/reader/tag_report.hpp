// Per-read report record, mirroring the LLRP TagReportData fields an Impinj
// Speedway exposes once low-level data reporting is enabled (the paper
// "modified the Octane SDK to enable the phase reporting", §IV-A).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rfipad::reader {

struct TagReport {
  /// EPC-96 as upper-case hex.
  std::string epc;
  /// Dense array index (convenience; real deployments map EPC → index).
  std::uint32_t tag_index = 0;
  /// Reader antenna port (1-based, as in LLRP).
  std::uint16_t antenna_id = 1;
  /// Read timestamp, seconds from capture start (LLRP reports µs UTC).
  double time_s = 0.0;
  /// RF phase angle in [0, 2π), quantised to 2π/4096 — the 0.0015 rad
  /// resolution the paper quotes in §III-A.
  double phase_rad = 0.0;
  /// Peak RSSI in dBm, quantised to 0.5 dB.
  double rssi_dbm = 0.0;
  /// RF Doppler frequency estimate, Hz (noisy; Fig. 2(a)).
  double doppler_hz = 0.0;
  /// Carrier channel, MHz.
  double channel_mhz = 922.38;
};

}  // namespace rfipad::reader
