#include "reader/sample_stream.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"

namespace rfipad::reader {

namespace {

bool sameRead(const TagReport& a, const TagReport& b) {
  return a.tag_index == b.tag_index && a.time_s == b.time_s &&
         a.phase_rad == b.phase_rad && a.rssi_dbm == b.rssi_dbm;
}

}  // namespace

PushOutcome SampleStream::push(TagReport report) {
  if (!std::isfinite(report.time_s)) {
    ++invalid_count_;
    return PushOutcome::kInvalid;
  }
  if (report.tag_index >= num_tags_) num_tags_ = report.tag_index + 1;
  if (reports_.empty() || report.time_s >= reports_.back().time_s) {
    // Fast path: in time order.  An exact re-delivery of the newest report
    // (duplication after a link hiccup) is dropped here.
    if (!reports_.empty() && sameRead(report, reports_.back())) {
      ++duplicate_count_;
      return PushOutcome::kDuplicate;
    }
    reports_.push_back(std::move(report));
    return PushOutcome::kAppended;
  }
  // Out-of-order arrival: insert at its timestamp so the time-sorted
  // invariant (slice(), series extraction) survives transport disorder.
  const auto it = std::upper_bound(
      reports_.begin(), reports_.end(), report.time_s,
      [](double t, const TagReport& r) { return t < r.time_s; });
  for (auto back = it; back != reports_.begin();) {
    --back;
    if (back->time_s != report.time_s) break;
    if (sameRead(report, *back)) {
      ++duplicate_count_;
      return PushOutcome::kDuplicate;
    }
  }
  ++reorder_count_;
  reports_.insert(it, std::move(report));
  return PushOutcome::kReordered;
}

TagSeries SampleStream::seriesFor(std::uint32_t tagIndex) const {
  TagSeries s;
  s.tag_index = tagIndex;
  const std::size_t n = countFor(tagIndex);
  s.times.reserve(n);
  s.phases.reserve(n);
  s.rssi.reserve(n);
  for (const auto& r : reports_) {
    if (r.tag_index != tagIndex) continue;
    s.times.push_back(r.time_s);
    s.phases.push_back(r.phase_rad);
    s.rssi.push_back(r.rssi_dbm);
  }
  return s;
}

std::vector<TagSeries> SampleStream::allSeries() const {
  std::vector<TagSeries> all(num_tags_);
  std::vector<std::size_t> counts(num_tags_, 0);
  for (const auto& r : reports_) {
    // push() maintains num_tags_ > every stored index; a violation here
    // means the stream was deserialised or spliced by hand incorrectly.
    RFIPAD_INVARIANT(r.tag_index < num_tags_,
                     "stored report index outside the declared tag count");
    ++counts[r.tag_index];
  }
  for (std::uint32_t i = 0; i < num_tags_; ++i) {
    all[i].tag_index = i;
    all[i].times.reserve(counts[i]);
    all[i].phases.reserve(counts[i]);
    all[i].rssi.reserve(counts[i]);
  }
  for (const auto& r : reports_) {
    auto& s = all[r.tag_index];
    s.times.push_back(r.time_s);
    s.phases.push_back(r.phase_rad);
    s.rssi.push_back(r.rssi_dbm);
  }
  return all;
}

FlatSeries SampleStream::flatSeries() const {
  FlatSeries fs;
  fs.num_tags = num_tags_;
  fs.offsets.assign(static_cast<std::size_t>(num_tags_) + 1, 0);
  for (const auto& r : reports_) {
    RFIPAD_INVARIANT(r.tag_index < num_tags_,
                     "stored report index outside the declared tag count");
    ++fs.offsets[r.tag_index + 1];
  }
  for (std::size_t i = 1; i <= num_tags_; ++i) fs.offsets[i] += fs.offsets[i - 1];
  fs.times.resize(reports_.size());
  fs.phases.resize(reports_.size());
  fs.rssi.resize(reports_.size());
  // Scatter pass: reports are time-sorted, so writing each at its tag's
  // running cursor keeps time order within every tag slice.
  std::vector<std::size_t> cursor(fs.offsets.begin(), fs.offsets.end() - 1);
  for (const auto& r : reports_) {
    const std::size_t k = cursor[r.tag_index]++;
    fs.times[k] = r.time_s;
    fs.phases[k] = r.phase_rad;
    fs.rssi[k] = r.rssi_dbm;
  }
  return fs;
}

std::size_t SampleStream::countFor(std::uint32_t tagIndex) const {
  return static_cast<std::size_t>(
      std::count_if(reports_.begin(), reports_.end(),
                    [&](const TagReport& r) { return r.tag_index == tagIndex; }));
}

double SampleStream::readRateHz() const {
  const double d = durationS();
  return d > 0.0 ? static_cast<double>(reports_.size()) / d : 0.0;
}

SampleStream SampleStream::slice(double t0, double t1) const {
  RFIPAD_ASSERT(!std::isnan(t0) && !std::isnan(t1),
                "slice bounds must not be NaN");
  if (t1 < t0) return SampleStream(num_tags_);  // inverted window == empty
  // Reports are time-ordered (push() enforces it), so the window is a
  // contiguous range — binary-search the bounds instead of scanning and
  // re-pushing one report at a time.
  const auto lo = std::lower_bound(
      reports_.begin(), reports_.end(), t0,
      [](const TagReport& r, double t) { return r.time_s < t; });
  const auto hi = std::lower_bound(
      lo, reports_.end(), t1,
      [](const TagReport& r, double t) { return r.time_s < t; });
  SampleStream out(num_tags_);
  out.reports_.assign(lo, hi);
  return out;
}

SampleStream SampleStream::filterChannel(double channel_mhz) const {
  SampleStream out(num_tags_);
  for (const auto& r : reports_) {
    if (std::abs(r.channel_mhz - channel_mhz) < 1e-3) out.push(r);
  }
  return out;
}

std::vector<double> SampleStream::channels() const {
  std::vector<double> out;
  for (const auto& r : reports_) {
    bool seen = false;
    for (double c : out) {
      if (std::abs(c - r.channel_mhz) < 1e-3) seen = true;
    }
    if (!seen) out.push_back(r.channel_mhz);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void SampleStream::append(const SampleStream& other) {
  reports_.reserve(reports_.size() + other.size());
  for (const auto& r : other.reports()) push(r);
}

}  // namespace rfipad::reader
