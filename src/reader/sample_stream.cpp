#include "reader/sample_stream.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>

#include "common/angles.hpp"
#include "common/contracts.hpp"
#include "common/stats.hpp"

namespace rfipad::reader {

namespace {

bool sameRead(const TagReport& a, const TagReport& b) {
  return a.tag_index == b.tag_index && a.time_s == b.time_s &&
         a.phase_rad == b.phase_rad && a.rssi_dbm == b.rssi_dbm;
}

}  // namespace

RFIPAD_HOT_PATH
PushOutcome SampleStream::push(TagReport report) {
  if (!std::isfinite(report.time_s)) {
    ++invalid_count_;
    return PushOutcome::kInvalid;
  }
  if (report.tag_index >= num_tags_) num_tags_ = report.tag_index + 1;
  if (empty() || report.time_s >= reports_.back().time_s) {
    // Fast path: in time order.  An exact re-delivery of the newest report
    // (duplication after a link hiccup) is dropped here.
    if (!empty() && sameRead(report, reports_.back())) {
      ++duplicate_count_;
      return PushOutcome::kDuplicate;
    }
    reports_.push_back(std::move(report));
    return PushOutcome::kAppended;
  }
  // Out-of-order arrival: insert at its timestamp so the time-sorted
  // invariant (slice(), series extraction) survives transport disorder.
  // The insertion never lands before the dropBefore() frontier: at worst
  // it sits at the front of the live window.
  const auto live_begin =
      reports_.begin() + static_cast<std::ptrdiff_t>(front_);
  const auto it = std::upper_bound(
      live_begin, reports_.end(), report.time_s,
      [](double t, const TagReport& r) { return t < r.time_s; });
  for (auto back = it; back != live_begin;) {
    --back;
    if (back->time_s != report.time_s) break;
    if (sameRead(report, *back)) {
      ++duplicate_count_;
      return PushOutcome::kDuplicate;
    }
  }
  ++reorder_count_;
  reports_.insert(it, std::move(report));
  return PushOutcome::kReordered;
}

void SampleStream::dropBefore(double t) {
  RFIPAD_ASSERT(!std::isnan(t), "dropBefore bound must not be NaN");
  const auto live_begin =
      reports_.begin() + static_cast<std::ptrdiff_t>(front_);
  const auto keep = std::lower_bound(
      live_begin, reports_.end(), t,
      [](const TagReport& r, double bound) { return r.time_s < bound; });
  front_ = static_cast<std::size_t>(keep - reports_.begin());
  if (front_ == reports_.size()) {
    reports_.clear();
    front_ = 0;
    return;
  }
  // Compact only once the dead prefix dominates the storage: each erased
  // report then pays for at most two elements moved, keeping the per-drop
  // cost amortised O(1) while the high-water allocation stays bounded by
  // 2× the live window.
  if (front_ >= 64 && front_ * 2 >= reports_.size()) {
    reports_.erase(reports_.begin(),
                   reports_.begin() + static_cast<std::ptrdiff_t>(front_));
    front_ = 0;
  }
}

TagSeries SampleStream::seriesFor(std::uint32_t tagIndex) const {
  TagSeries s;
  s.tag_index = tagIndex;
  const std::size_t n = countFor(tagIndex);
  s.times.reserve(n);
  s.phases.reserve(n);
  s.rssi.reserve(n);
  for (const auto& r : reports()) {
    if (r.tag_index != tagIndex) continue;
    s.times.push_back(r.time_s);
    s.phases.push_back(r.phase_rad);
    s.rssi.push_back(r.rssi_dbm);
  }
  return s;
}

std::vector<TagSeries> SampleStream::allSeries() const {
  std::vector<TagSeries> all(num_tags_);
  std::vector<std::size_t> counts(num_tags_, 0);
  for (const auto& r : reports()) {
    // push() maintains num_tags_ > every stored index; a violation here
    // means the stream was deserialised or spliced by hand incorrectly.
    RFIPAD_INVARIANT(r.tag_index < num_tags_,
                     "stored report index outside the declared tag count");
    ++counts[r.tag_index];
  }
  for (std::uint32_t i = 0; i < num_tags_; ++i) {
    all[i].tag_index = i;
    all[i].times.reserve(counts[i]);
    all[i].phases.reserve(counts[i]);
    all[i].rssi.reserve(counts[i]);
  }
  for (const auto& r : reports()) {
    auto& s = all[r.tag_index];
    s.times.push_back(r.time_s);
    s.phases.push_back(r.phase_rad);
    s.rssi.push_back(r.rssi_dbm);
  }
  return all;
}

FlatSeries SampleStream::flatSeries() const {
  FlatSeries fs;
  flatSeriesInto(fs);
  return fs;
}

void SampleStream::flatSeriesInto(FlatSeries& out) const {
  const std::span<const TagReport> live = reports();
  out.num_tags = num_tags_;
  out.offsets.assign(static_cast<std::size_t>(num_tags_) + 1, 0);
  for (const auto& r : live) {
    RFIPAD_INVARIANT(r.tag_index < num_tags_,
                     "stored report index outside the declared tag count");
    ++out.offsets[r.tag_index + 1];
  }
  for (std::size_t i = 1; i <= num_tags_; ++i) out.offsets[i] += out.offsets[i - 1];
  out.times.resize(live.size());
  out.phases.resize(live.size());
  out.rssi.resize(live.size());
  // Scatter pass: reports are time-sorted, so writing each at its tag's
  // running cursor keeps time order within every tag slice.
  out.scatter_cursor.assign(out.offsets.begin(), out.offsets.end() - 1);
  for (const auto& r : live) {
    const std::size_t k = out.scatter_cursor[r.tag_index]++;
    out.times[k] = r.time_s;
    out.phases[k] = r.phase_rad;
    out.rssi[k] = r.rssi_dbm;
  }
}

std::size_t SampleStream::countFor(std::uint32_t tagIndex) const {
  const std::span<const TagReport> live = reports();
  return static_cast<std::size_t>(
      std::count_if(live.begin(), live.end(),
                    [&](const TagReport& r) { return r.tag_index == tagIndex; }));
}

double SampleStream::readRateHz() const {
  const double d = durationS();
  return d > 0.0 ? static_cast<double>(size()) / d : 0.0;
}

SampleStream SampleStream::slice(double t0, double t1) const {
  RFIPAD_ASSERT(!std::isnan(t0) && !std::isnan(t1),
                "slice bounds must not be NaN");
  if (t1 < t0) return SampleStream(num_tags_);  // inverted window == empty
  // Reports are time-ordered (push() enforces it), so the window is a
  // contiguous range — binary-search the bounds instead of scanning and
  // re-pushing one report at a time.
  const std::span<const TagReport> live = reports();
  const auto lo = std::lower_bound(
      live.begin(), live.end(), t0,
      [](const TagReport& r, double t) { return r.time_s < t; });
  const auto hi = std::lower_bound(
      lo, live.end(), t1,
      [](const TagReport& r, double t) { return r.time_s < t; });
  SampleStream out(num_tags_);
  out.reports_.assign(lo, hi);
  return out;
}

SampleStream SampleStream::filterChannel(double channel_mhz) const {
  SampleStream out(num_tags_);
  for (const auto& r : reports()) {
    if (std::abs(r.channel_mhz - channel_mhz) < 1e-3) out.push(r);
  }
  return out;
}

std::vector<double> SampleStream::channels() const {
  std::vector<double> out;
  for (const auto& r : reports()) {
    bool seen = false;
    for (double c : out) {
      if (std::abs(c - r.channel_mhz) < 1e-3) seen = true;
    }
    if (!seen) out.push_back(r.channel_mhz);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void SampleStream::append(const SampleStream& other) {
  reserve(size() + other.size());
  for (const auto& r : other.reports()) push(r);
}

SampleStream imputeGaps(const SampleStream& in, const GapImputeOptions& options,
                        GapImputeStats* stats) {
  if (stats != nullptr) *stats = GapImputeStats{};
  if (!options.enabled || in.size() < 2 || in.numTags() == 0) return in;
  RFIPAD_ASSERT(std::isfinite(options.max_gap_s) && options.max_gap_s >= 0.0,
                "imputeGaps: max_gap_s must be finite and non-negative");

  // Group report indices by tag — the counting-sort pass of flatSeries(),
  // but over indices so each gap's endpoint TagReports can be copied whole
  // (EPC, antenna, channel) into the synthetic reads.
  const std::span<const TagReport> reports = in.reports();
  const std::uint32_t num_tags = in.numTags();
  std::vector<std::size_t> offsets(static_cast<std::size_t>(num_tags) + 1, 0);
  for (const auto& r : reports) {
    RFIPAD_INVARIANT(r.tag_index < num_tags,
                     "stored report index outside the declared tag count");
    ++offsets[r.tag_index + 1];
  }
  for (std::size_t i = 1; i <= num_tags; ++i) offsets[i] += offsets[i - 1];
  std::vector<std::size_t> index(reports.size());
  {
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t k = 0; k < reports.size(); ++k) {
      index[cursor[reports[k].tag_index]++] = k;
    }
  }

  std::vector<TagReport> synthetic;
  std::vector<double> spacings;  // per-tag scratch
  for (std::uint32_t tag = 0; tag < num_tags; ++tag) {
    const std::size_t begin = offsets[tag];
    const std::size_t end = offsets[tag + 1];
    if (end - begin < 2) continue;
    double dt = options.target_dt_s;
    if (!(dt > 0.0)) {
      spacings.clear();
      for (std::size_t j = begin + 1; j < end; ++j) {
        spacings.push_back(reports[index[j]].time_s -
                           reports[index[j - 1]].time_s);
      }
      // Low-quantile spacing ≈ the clean read rate even under heavy loss:
      // bursty loss widens the upper spacings but leaves runs of
      // back-to-back clean reads at the nominal rate.
      const double q = std::clamp(options.spacing_quantile, 0.0, 1.0);
      const auto pos = static_cast<std::size_t>(
          q * static_cast<double>(spacings.size() - 1));
      std::nth_element(spacings.begin(),
                       spacings.begin() + static_cast<std::ptrdiff_t>(pos),
                       spacings.end());
      dt = spacings[pos];
    }
    if (!(dt > 0.0) || !std::isfinite(dt)) continue;
    for (std::size_t j = begin + 1; j < end; ++j) {
      const TagReport& a = reports[index[j - 1]];
      const TagReport& b = reports[index[j]];
      const double gap = b.time_s - a.time_s;
      // A gap only modestly above the nominal spacing is Gen2 scheduling
      // jitter, not a missed read; require burst-sized headroom before
      // inventing samples (see GapImputeOptions::min_gap_factor).
      if (gap <= options.min_gap_factor * dt) continue;
      if (gap > options.max_gap_s) {
        if (stats != nullptr) ++stats->gaps_too_long;
        continue;
      }
      if (std::abs(a.channel_mhz - b.channel_mhz) > 1e-3) {
        if (stats != nullptr) ++stats->gaps_cross_channel;
        continue;
      }
      const auto want = static_cast<std::size_t>(gap / dt + 0.5);
      const std::size_t k =
          std::min(want > 0 ? want - 1 : std::size_t{0},
                   options.max_inserted_per_gap);
      if (k == 0) continue;
      // Phase travels along the shortest circular arc between the endpoint
      // reads; a real quarter-wavelength of motion inside the gap is lost,
      // which is why max_gap_s must stay short and wide arcs are refused.
      const double arc = angleDiff(b.phase_rad, a.phase_rad);
      if (std::abs(arc) > options.max_arc_rad) {
        if (stats != nullptr) ++stats->gaps_arc_too_wide;
        continue;
      }
      if (stats != nullptr) {
        ++stats->gaps_bridged;
        stats->reports_inserted += k;
      }
      for (std::size_t g = 1; g <= k; ++g) {
        const double u =
            static_cast<double>(g) / static_cast<double>(k + 1);
        TagReport r = a;  // copies EPC / antenna / channel from the earlier end
        r.time_s = a.time_s + u * gap;
        r.phase_rad = wrapTwoPi(a.phase_rad + u * arc);
        r.rssi_dbm = a.rssi_dbm + u * (b.rssi_dbm - a.rssi_dbm);
        r.doppler_hz = 0.0;
        r.imputed = true;
        synthetic.push_back(r);
      }
    }
  }
  if (synthetic.empty()) return in;

  // Deterministic merge: synthetics ordered by (time, tag); std::merge takes
  // from the original range first when neither compares less, so real reads
  // precede synthetic ones at equal timestamps.
  std::sort(synthetic.begin(), synthetic.end(),
            [](const TagReport& x, const TagReport& y) {
              if (x.time_s < y.time_s) return true;
              if (y.time_s < x.time_s) return false;
              return x.tag_index < y.tag_index;
            });
  std::vector<TagReport> merged;
  merged.reserve(reports.size() + synthetic.size());
  std::merge(reports.begin(), reports.end(), synthetic.begin(),
             synthetic.end(), std::back_inserter(merged),
             [](const TagReport& x, const TagReport& y) {
               return x.time_s < y.time_s;
             });
  SampleStream out(num_tags);
  out.reserve(merged.size());
  for (auto& r : merged) out.push(std::move(r));
  return out;
}

}  // namespace rfipad::reader
