// A time-ordered capture of tag reports plus per-tag slicing utilities.
// This is the only data structure the RFIPad recognition pipeline consumes —
// the same information a real deployment would pull from the reader SDK.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "reader/tag_report.hpp"

namespace rfipad::reader {

/// One tag's time series extracted from a stream.
struct TagSeries {
  std::uint32_t tag_index = 0;
  std::vector<double> times;
  std::vector<double> phases;
  std::vector<double> rssi;
};

/// Every tag's series in one flat structure-of-arrays block: samples are
/// grouped by tag (time order preserved within each tag), with
/// offsets[i]..offsets[i+1] delimiting tag i's slice of each array.  Built
/// by one counting-sort pass over the reports — four allocations total,
/// versus 3·num_tags vectors for allSeries() — and the per-(tag, frame)
/// buckets the segmenter needs become contiguous sub-slices.
struct FlatSeries {
  std::uint32_t num_tags = 0;
  std::vector<std::size_t> offsets;  ///< size num_tags + 1
  std::vector<double> times;
  std::vector<double> phases;
  std::vector<double> rssi;
  /// Counting-sort scatter cursor, kept here so flatSeriesInto() refills
  /// reuse its capacity too (zero steady-state allocation).
  std::vector<std::size_t> scatter_cursor;

  std::size_t countFor(std::uint32_t tag) const {
    return offsets[tag + 1] - offsets[tag];
  }
};

/// What push() did with a report (callers may ignore it; the stream also
/// keeps aggregate counters).
enum class PushOutcome : std::uint8_t {
  kAppended,   ///< in time order, appended (the fast path)
  kReordered,  ///< arrived out of order, inserted at its timestamp
  kDuplicate,  ///< exact duplicate of a stored report, dropped
  kInvalid,    ///< non-finite timestamp, dropped
};

/// Thread-compatible value type: distinct SampleStream objects may be used
/// from distinct threads freely, but one object must not be mutated
/// concurrently — wrap shared accumulation in a ConcurrentStreamSink
/// (below) or hold an external lock (llrp::OctaneClient does the latter).
class SampleStream {
 public:
  SampleStream() = default;
  explicit SampleStream(std::uint32_t numTags) : num_tags_(numTags) {}

  /// Add one report.  Reports normally arrive in time order (the fast
  /// append path); an out-of-order report is inserted at its timestamp and
  /// counted in reorderCount() so callers can observe transport disorder
  /// instead of silently mis-ordering or crashing.  Exact duplicates
  /// (re-delivery after a link hiccup) and non-finite timestamps are
  /// dropped and counted.
  PushOutcome push(TagReport report);
  void reserve(std::size_t n) { reports_.reserve(front_ + n); }

  /// Advance the stream's window: logically discard every report with
  /// time < t.  Amortised O(1) per discarded report — the front index
  /// advances by binary search and the physical prefix is compacted only
  /// once the discarded region reaches half the storage, so a streaming
  /// consumer trimming against a horizon (OnlineRecognizer) never pays a
  /// linear erase per tick.  Counters and numTags() are unaffected.
  void dropBefore(double t);

  /// Reports accepted out of time order since construction.
  std::uint64_t reorderCount() const { return reorder_count_; }
  /// Exact duplicates dropped.
  std::uint64_t duplicateCount() const { return duplicate_count_; }
  /// Reports dropped for a non-finite timestamp.
  std::uint64_t invalidCount() const { return invalid_count_; }

  std::size_t size() const { return reports_.size() - front_; }
  bool empty() const { return size() == 0; }
  /// The live window (everything pushed and not dropBefore()-discarded),
  /// in time order.  A view into the stream's storage: invalidated by any
  /// mutation, like a vector reference would be.
  std::span<const TagReport> reports() const {
    return {reports_.data() + front_, size()};
  }
  const TagReport& operator[](std::size_t i) const {
    return reports_[front_ + i];
  }

  std::uint32_t numTags() const { return num_tags_; }
  void setNumTags(std::uint32_t n) { num_tags_ = n; }

  double startTime() const { return empty() ? 0.0 : reports_[front_].time_s; }
  double endTime() const { return empty() ? 0.0 : reports_.back().time_s; }
  double durationS() const { return endTime() - startTime(); }

  /// Reads belonging to one tag, in time order.
  TagSeries seriesFor(std::uint32_t tagIndex) const;
  /// All per-tag series (index == tag index; absent tags give empty series).
  std::vector<TagSeries> allSeries() const;
  /// All per-tag series as one flat SoA block (the hot-path variant).
  FlatSeries flatSeries() const;
  /// In-place variant: refills `out`, reusing every plane's capacity, so a
  /// scratch FlatSeries shared across re-segmentation rounds (and across
  /// co-resident serving sessions) performs no steady-state allocation.
  /// Bit-identical to flatSeries().
  void flatSeriesInto(FlatSeries& out) const;

  std::size_t countFor(std::uint32_t tagIndex) const;
  /// Aggregate read rate over the capture, reads/second.
  double readRateHz() const;

  /// Sub-stream restricted to [t0, t1).  Bounds must not be NaN; an
  /// inverted window (t1 < t0) yields an empty stream.
  SampleStream slice(double t0, double t1) const;

  /// Sub-stream of reports taken on one hop channel (±1 kHz tolerance).
  /// Under frequency hopping, phase offsets differ per channel, so
  /// calibration and recognition must be run per channel.
  SampleStream filterChannel(double channel_mhz) const;

  /// Distinct hop channels present in the capture, ascending MHz.
  std::vector<double> channels() const;

  /// Append another stream (reports landing before this stream's end are
  /// merged at their timestamps and counted as reordered).
  void append(const SampleStream& other);

 private:
  std::vector<TagReport> reports_;
  /// Index of the first live report: dropBefore() advances this instead of
  /// erasing, so the storage is a deque-like window over a plain vector.
  std::size_t front_ = 0;
  std::uint32_t num_tags_ = 0;
  std::uint64_t reorder_count_ = 0;
  std::uint64_t duplicate_count_ = 0;
  std::uint64_t invalid_count_ = 0;
};

/// Temporal gap imputation (missing-data recovery, stage 1 of the pipeline
/// in DESIGN.md §9).  Bursty miss-reads leave per-tag holes in the capture;
/// short holes are bridged by linear interpolation so the downstream
/// activation/segmentation stages see a steady series again.
struct GapImputeOptions {
  bool enabled = false;
  /// Longest per-tag read gap bridged, seconds.  Gaps longer than this are
  /// genuine outages and must pass through untouched — inventing a second
  /// of motion would be worse than the hole.
  double max_gap_s = 0.50;
  /// Target spacing of synthetic reads inside a bridged gap; 0 derives each
  /// tag's nominal inter-read spacing from the stream itself using
  /// `spacing_quantile` (below).
  double target_dt_s = 0.0;
  /// Quantile of a tag's observed inter-read spacings taken as its nominal
  /// spacing.  A low quantile stays anchored to the clean read rate even
  /// when heavy loss has inflated the median: bursty loss leaves runs of
  /// back-to-back clean reads, and those short spacings dominate the lower
  /// quantiles.
  double spacing_quantile = 0.25;
  /// Only gaps wider than this multiple of the nominal spacing are bridged.
  /// Gen2 inventory spacing is bursty even on a clean link (Q-algorithm
  /// back-off), and interpolating across a gap the tag was merely slow to
  /// answer smooths real motion out of the phase series — so demand a gap
  /// that only a dropped-read burst can produce.  Tuned (with the quantile
  /// and arc gates above/below) by bench_fault_sweep: at these settings the
  /// bridge is a no-op on clean captures and recovers accuracy under
  /// 25–60% bursty loss.
  double min_gap_factor = 6.0;
  /// Skip gaps whose endpoint phases differ by more than this (radians,
  /// shortest arc).  A wide arc means the hand moved substantially inside
  /// the gap; linear interpolation would invent a trajectory the tag never
  /// saw and flatten the very activity the gray-map measures.
  double max_arc_rad = 1.5707963267948966;
  /// Cap on synthetic reads per gap (bounds memory if target_dt_s is
  /// misconfigured far below the real read rate).
  std::size_t max_inserted_per_gap = 8;
};

struct GapImputeStats {
  std::uint64_t gaps_bridged = 0;
  std::uint64_t reports_inserted = 0;
  /// Gaps wider than max_gap_s, passed through untouched.
  std::uint64_t gaps_too_long = 0;
  /// Gaps whose endpoints sit on different hop channels (phase offsets are
  /// not comparable across channels, so no interpolation).
  std::uint64_t gaps_cross_channel = 0;
  /// Gaps whose endpoint phases differ by more than max_arc_rad — the hand
  /// moved during the gap, so interpolation would fabricate the trajectory.
  std::uint64_t gaps_arc_too_wide = 0;
};

/// Bridge per-tag read gaps by linear interpolation over the flatSeries()
/// planes: phase along the shortest circular arc between the endpoint
/// reads, RSSI linearly, timestamps evenly spaced.  Synthetic reports carry
/// `imputed = true` and copy EPC/antenna/channel from the earlier endpoint.
/// Pure function of (stream, options): no randomness, bit-identical output
/// for identical input.  With `enabled == false` the input stream is
/// returned byte-exactly.
SampleStream imputeGaps(const SampleStream& in, const GapImputeOptions& options,
                        GapImputeStats* stats = nullptr);

/// Mutex-guarded fan-in point for multi-reader capture: several pump
/// threads (one per antenna / Speedway) push into one sink, and the
/// merged, time-sorted stream is taken out once the pumps have joined.
/// push() relies on SampleStream's out-of-order insertion, so interleaved
/// arrival order across producers does not disturb the time-sorted
/// invariant.  Lock discipline is annotated for -Wthread-safety.
class ConcurrentStreamSink {
 public:
  ConcurrentStreamSink() = default;
  explicit ConcurrentStreamSink(std::uint32_t numTags) : stream_(numTags) {}

  PushOutcome push(const TagReport& report) RFIPAD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return stream_.push(report);
  }

  /// Merge a whole per-producer stream under one lock acquisition.
  void append(const SampleStream& other) RFIPAD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    stream_.append(other);
  }

  std::size_t size() const RFIPAD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return stream_.size();
  }

  /// Copy of the merged stream (safe while producers are still pushing).
  SampleStream snapshot() const RFIPAD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return stream_;
  }

  /// Move the merged stream out; the sink is left empty.  Call after the
  /// producer threads have joined.
  SampleStream take() RFIPAD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    SampleStream out = std::move(stream_);
    stream_ = SampleStream(out.numTags());
    return out;
  }

 private:
  mutable Mutex mutex_;
  SampleStream stream_ RFIPAD_GUARDED_BY(mutex_);
};

}  // namespace rfipad::reader
