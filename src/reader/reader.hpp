// Emulation of an Impinj Speedway-class UHF reader.
//
// Combines the Gen2 MAC simulator (when each tag gets singulated), the RF
// channel model (what the backscatter looks like at that instant) and the
// noise/quantisation model (what the SDK finally reports).  The output is a
// SampleStream of LLRP-style TagReports — phase quantised to 2π/4096
// (0.0015 rad), RSSI to 0.5 dB — which is exactly the interface the paper's
// C# software consumed through the modified Octane SDK.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "gen2/inventory.hpp"
#include "reader/sample_stream.hpp"
#include "rf/channel.hpp"
#include "rf/channel_batch.hpp"
#include "rf/noise.hpp"
#include "rf/tag_batch.hpp"
#include "tag/array.hpp"

namespace rfipad::reader {

struct ReaderConfig {
  /// Conducted transmit power, dBm (regulatory ceiling 32.5 dBm, §V-B3).
  double tx_power_dbm = 30.0;
  /// Receive sensitivity for decoding tag backscatter, dBm.
  double rx_sensitivity_dbm = -84.0;
  gen2::LinkProfile link = gen2::hybridM2();
  gen2::QConfig qconfig{};
  std::uint16_t antenna_id = 1;
  rf::NoiseParams noise{};
  /// Phase report resolution: 2π / 2^phase_bits (12 → the paper's 0.0015 rad).
  int phase_bits = 12;
  double rssi_step_db = 0.5;
  /// Frequency-hopping plan, MHz.  Empty = fixed carrier (the paper's
  /// 922.38 MHz China-band deployment).  Regulated bands (e.g. FCC
  /// 902–928) force hopping, which shifts every tag's phase offset at each
  /// hop — see tests/reader/test_hopping.cpp for the calibration
  /// consequences.
  std::vector<double> hop_channels_mhz{};
  /// Dwell time per channel, s (FCC: ≤ 0.4 s).
  double hop_interval_s = 0.2;
  /// Emulate the reader's Doppler estimate (a central difference of the
  /// round-trip phase, two extra channel evaluations per read).  The
  /// recognition pipeline never consumes doppler_hz, so throughput-bound
  /// batch runs disable the probes: every other report field — and every
  /// RNG draw, so the noise streams stay aligned — is bit-identical, and
  /// doppler_hz degrades to its noise floor around zero.
  bool doppler_probes = true;
};

/// The dynamic scene (hand + arm scatterers) at a given time.
using SceneFn = std::function<rf::ScattererList(double)>;

/// Allocation-free variant for hot loops: refill `out` in place for time t
/// (clear + push_back reuses capacity, so steady-state captures perform no
/// per-instant heap traffic).  A SceneFn can always be adapted; see the
/// capture() overloads.
using SceneFillFn = std::function<void(double, rf::ScattererList&)>;

/// An always-empty scene (static environment).
rf::ScattererList emptyScene(double t);

class RfidReader {
 public:
  /// The reader snapshots the array's tags at construction.
  RfidReader(ReaderConfig config, rf::ChannelModel channel,
             const tag::TagArray& array, Rng rng);

  const ReaderConfig& config() const { return config_; }
  const rf::ChannelModel& channel() const { return channels_.front(); }
  double now() const { return inventory_.now(); }
  const gen2::InventoryStats& macStats() const { return inventory_.stats(); }

  /// Run continuous inventory for `duration_s` of air time, with the dynamic
  /// scene given by `scene`.  Successive calls continue the same clock, so a
  /// static calibration capture can be followed by motion captures.
  SampleStream capture(double duration_s, const SceneFn& scene);

  /// Same, with an in-place scene refill (the alloc-free hot path; the
  /// SceneFn overload adapts and forwards here).  `scene` must overwrite the
  /// list it is handed — the reader reuses one list across all instants.
  SampleStream capture(double duration_s, const SceneFillFn& scene);

  /// Convenience: capture with no moving objects.
  SampleStream captureStatic(double duration_s);

  /// Reset the stochastic streams (measurement noise + MAC slot draws) to a
  /// deterministic seed.  The clock, calibrated cable phases and static
  /// channel caches are untouched, so a reseeded copy of a calibrated
  /// reader replays an independent trial against the same configuration.
  void reseed(std::uint64_t seed);

  /// Synthesise the measurement for one singulation (exposed for tests).
  TagReport measure(std::uint32_t tagIndex, double t, const SceneFn& scene);

  /// Incident power (dBm) at a tag IC under the given scene — the quantity
  /// compared against the tag sensitivity for the forward-link limit.
  double incidentDbm(std::uint32_t tagIndex, double t, const SceneFn& scene) const;

  /// Backscatter power (dBm) received back at the reader from a tag.
  double backscatterDbm(std::uint32_t tagIndex, double t, const SceneFn& scene) const;

  /// Index into the hop plan active at time t (0 when not hopping).
  std::size_t channelIndexAt(double t) const;
  /// Carrier frequency in use at time t, MHz.
  double channelMhzAt(double t) const;

 private:
  /// Per-capture evaluation memo.  The MAC predicates and the measurement
  /// for one singulation probe the channel at a handful of identical
  /// (tag, time) points — the Query check, the decodability check, and the
  /// report synthesis all land on the same instants — so the scene list is
  /// cached per distinct time and the latest snapshot per tag.  Strictly
  /// sequential use (one capture at a time per reader).
  class EvalContext {
   public:
    EvalContext(const RfidReader& reader, const SceneFillFn& scene);
    const rf::ScattererList& sceneAt(double t);
    /// Tag-independent geometry of the scene at t, for the exact scalar
    /// path (doppler probes, oversized scenes).  Computed lazily — the SoA
    /// fast paths never need it.
    const rf::ChannelModel::SceneGeometry& geometryAt(double t);
    const rf::ChannelSnapshot& snapshotAt(std::uint32_t tag, double t);

    /// Forward-amplitude lower bound / detune factor for one tag at t, from
    /// the SoA bounds kernel.  Results are memoised per instant, and a
    /// single-tag fill is bit-identical to its slice of a whole-batch fill,
    /// so per-tag and batch queries mix freely.
    double ampBoundAt(std::uint32_t tag, double t);
    double detuneBoundAt(std::uint32_t tag, double t);
    /// Fill the bounds memo for every tag at t in one tiered kernel pass
    /// (the Gen2 Query batch predicate).
    void boundsAllAt(double t);

   private:
    const rf::FlatScene& flatAt(double t);
    rf::BoundsArgs boundsArgs(double t);
    void refreshBounds(double t);

    const RfidReader& reader_;
    const SceneFillFn& scene_;
    bool scene_valid_ = false;
    double scene_t_ = 0.0;
    rf::ScattererList scene_list_;
    bool geom_valid_ = false;
    double geom_t_ = 0.0;
    rf::ChannelModel::SceneGeometry scene_geometry_;
    bool flat_valid_ = false;
    double flat_t_ = 0.0;
    rf::FlatScene flat_;
    /// Bounds memo: outputs of the SoA kernel at bounds_t_, with a per-tag
    /// validity map (single-tag fills) and an all-filled flag (batch fill).
    double bounds_t_ = 0.0;
    bool bounds_all_ = false;
    std::vector<double> amp_lo_;
    std::vector<double> detune_;
    std::vector<std::uint8_t> bound_valid_;
    struct TagSnap {
      bool valid = false;
      double t = 0.0;
      rf::ChannelSnapshot snap;
    };
    std::vector<TagSnap> snaps_;
  };

  TagReport measure(std::uint32_t tagIndex, double t, EvalContext& ctx);
  double incidentDbmFrom(const rf::ChannelSnapshot& snap,
                         const rf::ChannelModel& model) const;
  double backscatterDbmFrom(std::uint32_t tagIndex,
                            const rf::ChannelSnapshot& snap,
                            const rf::ChannelModel& model) const;
  double rawRoundTripPhase(std::uint32_t tagIndex,
                           const rf::ChannelSnapshot& snap,
                           std::size_t channel) const;
  double quantizePhase(double phase) const;
  double quantizeRssi(double dbm) const;
  const rf::ChannelModel& modelAt(double t) const;
  const rf::ChannelModel::StaticTagChannel& cacheAt(double t,
                                                    std::uint32_t tag) const;

  ReaderConfig config_;
  /// One channel model (and static cache) per hop channel; a single entry
  /// when the carrier is fixed.
  std::vector<rf::ChannelModel> channels_;
  std::vector<std::vector<rf::ChannelModel::StaticTagChannel>> static_caches_;
  std::vector<tag::Tag> tags_;
  /// SoA transpose of tags_ + static_caches_, feeding the batched kernels.
  rf::TagBatch tag_batch_;
  Rng rng_;
  gen2::InventorySimulator inventory_;
  /// Combined TX+RX circuit phase rotation θ_T + θ_R (Eq. 6) per channel —
  /// cable electrical length differs with frequency, which is what breaks
  /// single-profile calibration under hopping.
  std::vector<double> cable_phases_;
};

}  // namespace rfipad::reader
