#include "reader/reader.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/angles.hpp"
#include "common/units.hpp"

namespace rfipad::reader {

rf::ScattererList emptyScene(double) { return {}; }

RfidReader::RfidReader(ReaderConfig config, rf::ChannelModel channel,
                       const tag::TagArray& array, Rng rng)
    : config_(config),
      tags_(array.tags()),
      rng_(std::move(rng)),
      inventory_(gen2::Gen2Timing(config.link), config.qconfig,
                 static_cast<std::uint32_t>(array.size()),
                 rng_.fork(0x6e21)) {
  // One channel model per hop channel (a single one for a fixed carrier);
  // each gets its own static cache and cable phase rotation.
  if (config_.hop_channels_mhz.empty()) {
    channels_.push_back(std::move(channel));
  } else {
    if (config_.hop_interval_s <= 0.0)
      throw std::invalid_argument("RfidReader: non-positive hop interval");
    for (double mhz : config_.hop_channels_mhz) {
      channels_.emplace_back(rf::CarrierConfig{mhz * 1e6}, channel.antenna(),
                             channel.environment());
    }
  }
  for (const auto& model : channels_) {
    auto& cache = static_caches_.emplace_back();
    cache.reserve(tags_.size());
    for (const auto& t : tags_) cache.push_back(model.precompute(t.endpoint()));
    cable_phases_.push_back(rng_.uniform(0.0, kTwoPi));
  }
}

void RfidReader::reseed(std::uint64_t seed) {
  rng_ = Rng(seed);
  inventory_.reseed(rng_.fork(0x6e21));
}

std::size_t RfidReader::channelIndexAt(double t) const {
  if (channels_.size() == 1) return 0;
  const auto hop = static_cast<long long>(std::floor(t / config_.hop_interval_s));
  return static_cast<std::size_t>(hop % static_cast<long long>(channels_.size()));
}

double RfidReader::channelMhzAt(double t) const {
  return channels_[channelIndexAt(t)].carrier().freq_hz / 1e6;
}

const rf::ChannelModel& RfidReader::modelAt(double t) const {
  return channels_[channelIndexAt(t)];
}

const rf::ChannelModel::StaticTagChannel& RfidReader::cacheAt(
    double t, std::uint32_t tag) const {
  return static_caches_[channelIndexAt(t)][tag];
}

RfidReader::EvalContext::EvalContext(const RfidReader& reader,
                                     const SceneFn& scene)
    : reader_(reader), scene_(scene), snaps_(reader.tags_.size()) {}

const rf::ScattererList& RfidReader::EvalContext::sceneAt(double t) {
  if (!scene_valid_ || scene_t_ != t) {
    scene_list_ = scene_(t);
    // The geometry is antenna/environment-only, so any hop channel's model
    // produces the same values; use the first.
    reader_.channels_.front().precomputeScene(scene_list_, scene_geometry_);
    scene_t_ = t;
    scene_valid_ = true;
  }
  return scene_list_;
}

const rf::ChannelModel::SceneGeometry& RfidReader::EvalContext::geometryAt(
    double t) {
  sceneAt(t);
  return scene_geometry_;
}

const rf::ChannelSnapshot& RfidReader::EvalContext::snapshotAt(
    std::uint32_t tag, double t) {
  TagSnap& entry = snaps_.at(tag);
  if (!entry.valid || entry.t != t) {
    const auto& model = reader_.modelAt(t);
    const auto& scene = sceneAt(t);
    entry.snap = model.evaluateCached(reader_.tags_[tag].endpoint(),
                                      reader_.cacheAt(t, tag), scene,
                                      scene_geometry_);
    entry.t = t;
    entry.valid = true;
  }
  return entry.snap;
}

double RfidReader::incidentDbmFrom(const rf::ChannelSnapshot& snap,
                                   const rf::ChannelModel& model) const {
  const double w = model.incidentPowerW(snap, dbmToWatts(config_.tx_power_dbm));
  return wattsToDbm(std::max(w, 1e-30));
}

double RfidReader::backscatterDbmFrom(std::uint32_t tagIndex,
                                      const rf::ChannelSnapshot& snap,
                                      const rf::ChannelModel& model) const {
  const auto& tag = tags_[tagIndex];
  const double mod_eff =
      tag.type.modulation_efficiency * dbToLinear(tag.coupling_penalty_db);
  const double w = model.backscatterPowerW(
      snap, dbmToWatts(config_.tx_power_dbm), mod_eff);
  return wattsToDbm(std::max(w, 1e-30));
}

double RfidReader::incidentDbm(std::uint32_t tagIndex, double t,
                               const SceneFn& scene) const {
  const auto& tag = tags_.at(tagIndex);
  const auto& model = modelAt(t);
  const auto snap =
      model.evaluateCached(tag.endpoint(), cacheAt(t, tagIndex), scene(t));
  return incidentDbmFrom(snap, model);
}

double RfidReader::backscatterDbm(std::uint32_t tagIndex, double t,
                                  const SceneFn& scene) const {
  const auto& tag = tags_.at(tagIndex);
  const auto& model = modelAt(t);
  const auto snap =
      model.evaluateCached(tag.endpoint(), cacheAt(t, tagIndex), scene(t));
  return backscatterDbmFrom(tagIndex, snap, model);
}

double RfidReader::rawRoundTripPhase(std::uint32_t tagIndex,
                                     const rf::ChannelSnapshot& snap,
                                     std::size_t channel) const {
  // Round-trip phase is twice the one-way propagation phase (the 4πd/λ term
  // of Eq. 6/7) plus the tag's reflection characteristic (including any
  // near-field detuning rotation) and the reader's TX/RX circuit rotations.
  const double prop = -2.0 * std::arg(snap.forward);
  return prop + tags_[tagIndex].theta_tag + snap.detunePhase() +
         cable_phases_[channel];
}

double RfidReader::quantizePhase(double phase) const {
  const double step = kTwoPi / static_cast<double>(1 << config_.phase_bits);
  return wrapTwoPi(std::round(wrapTwoPi(phase) / step) * step);
}

double RfidReader::quantizeRssi(double dbm) const {
  return std::round(dbm / config_.rssi_step_db) * config_.rssi_step_db;
}

TagReport RfidReader::measure(std::uint32_t tagIndex, double t,
                              const SceneFn& scene) {
  EvalContext ctx(*this, scene);
  return measure(tagIndex, t, ctx);
}

TagReport RfidReader::measure(std::uint32_t tagIndex, double t,
                              EvalContext& ctx) {
  const auto& tag = tags_.at(tagIndex);
  const std::size_t ch = channelIndexAt(t);
  const auto& model = channels_[ch];
  // One channel evaluation serves the report phase, the received power and
  // the forward-link margin (the seed recomputed it for each quantity).
  const rf::ChannelSnapshot& snap = ctx.snapshotAt(tagIndex, t);

  const double rx_dbm = backscatterDbmFrom(tagIndex, snap, model);
  const rf::NoiseModel noise(config_.noise);
  const double env_flicker = model.environment().flicker_scale;
  // Forward-link margin above the IC threshold: responses get noisier as
  // the tag starves (drives the power/angle/distance sensitivity of
  // Figs. 17-19).
  const double margin_db =
      incidentDbmFrom(snap, model) - tag.type.ic_sensitivity_dbm;
  const double margin_std = noise.tagMarginStd(margin_db);
  const double phase_std =
      std::hypot(noise.phaseStd(rx_dbm, tag.flicker_bias, env_flicker),
                 margin_std);
  const double rss_std =
      std::hypot(noise.rssStdDb(rx_dbm, tag.flicker_bias, env_flicker),
                 8.0 * margin_std);

  TagReport r;
  r.epc = tag.epc;
  r.tag_index = tagIndex;
  r.antenna_id = config_.antenna_id;
  r.time_s = t;
  r.phase_rad = quantizePhase(rawRoundTripPhase(tagIndex, snap, ch) +
                              rng_.normal(0.0, phase_std));
  r.rssi_dbm = quantizeRssi(rx_dbm + rng_.normal(0.0, rss_std));

  // Doppler: the reader estimates carrier shift from the phase slope across
  // the read; emulate with a central difference of the round-trip phase
  // (always within one dwell, so a single channel applies).  Evaluated
  // directly (not via snapshotAt) so the memoised snapshot at t survives.
  const double dt = 1e-3;
  double dphi = 0.0;
  if (config_.doppler_probes) {
    const auto snap_m =
        model.evaluateCached(tag.endpoint(), static_caches_[ch][tagIndex],
                             ctx.sceneAt(t - dt), ctx.geometryAt(t - dt));
    const auto snap_p =
        model.evaluateCached(tag.endpoint(), static_caches_[ch][tagIndex],
                             ctx.sceneAt(t + dt), ctx.geometryAt(t + dt));
    dphi = angleDiff(rawRoundTripPhase(tagIndex, snap_p, ch),
                     rawRoundTripPhase(tagIndex, snap_m, ch));
  }
  // The noise draw happens in both modes so the RNG stream — and therefore
  // every later phase/RSSI sample — is identical with probes on or off.
  r.doppler_hz =
      dphi / (kTwoPi * 2.0 * dt) + rng_.normal(0.0, noise.dopplerStdHz());
  r.channel_mhz = model.carrier().freq_hz / 1e6;
  return r;
}

SampleStream RfidReader::capture(double duration_s, const SceneFn& scene) {
  SampleStream stream(static_cast<std::uint32_t>(tags_.size()));
  // Upper bound on reads: every slot a success.
  const double slot_s = std::max(inventory_.timing().successSlotS(), 1e-6);
  stream.reserve(std::min<std::size_t>(
      static_cast<std::size_t>(duration_s / slot_s) + 16, 1u << 20));

  EvalContext ctx(*this, scene);
  const double tx_w = dbmToWatts(config_.tx_power_dbm);
  auto powered = [this, &ctx, tx_w](std::uint32_t i, double t) {
    // Fast path: if even the pessimistic forward-amplitude bound clears the
    // IC sensitivity, the tag is certainly powered — skip the full channel
    // evaluation.  This is the Gen2 round-start hot loop (every tag, every
    // Query), and tags sit tens of dB above sensitivity, so the bound
    // decides almost every call without changing any outcome.
    const auto& model = modelAt(t);
    const auto& scene_now = ctx.sceneAt(t);
    const double amp_lo = model.forwardAmpLowerBound(
        tags_[i].endpoint(), cacheAt(t, i), scene_now, ctx.geometryAt(t));
    if (amp_lo > 0.0 &&
        tx_w * amp_lo * amp_lo >= dbmToWatts(tags_[i].type.ic_sensitivity_dbm))
      return true;
    return incidentDbmFrom(ctx.snapshotAt(i, t), model) >=
           tags_[i].type.ic_sensitivity_dbm;
  };
  // Per-tag modulation efficiency and the receive threshold in watts, for
  // the decodability fast path below.
  std::vector<double> mod_eff(tags_.size());
  for (std::size_t i = 0; i < tags_.size(); ++i)
    mod_eff[i] = tags_[i].type.modulation_efficiency *
                 dbToLinear(tags_[i].coupling_penalty_db);
  const double rx_sens_w = dbmToWatts(config_.rx_sensitivity_dbm);
  auto decodable = [this, &ctx, tx_w, &mod_eff,
                    rx_sens_w](std::uint32_t i, double t) {
    // Fast path, mirroring the powered predicate: the detune factor is
    // exact and cheap, so tx·amp_lo⁴·mod_eff·detune⁴ is a sound lower
    // bound on the backscatter power.  If even that clears the receive
    // sensitivity the response certainly decodes — skip the evaluation.
    const auto& model = modelAt(t);
    const auto& scene_now = ctx.sceneAt(t);
    const double amp_lo = model.forwardAmpLowerBound(
        tags_[i].endpoint(), cacheAt(t, i), scene_now, ctx.geometryAt(t));
    if (amp_lo > 0.0) {
      const double det = model.detuneFactor(tags_[i].endpoint(), scene_now);
      const double f2 = amp_lo * amp_lo;
      const double det2 = det * det;
      if (tx_w * f2 * f2 * mod_eff[i] * det2 * det2 >= rx_sens_w) return true;
    }
    return backscatterDbmFrom(i, ctx.snapshotAt(i, t), model) >=
           config_.rx_sensitivity_dbm;
  };
  inventory_.setPoweredPredicate(powered);
  inventory_.setDecodablePredicate(decodable);

  const double until = inventory_.now() + duration_s;
  inventory_.run(until, [&](const gen2::Singulation& s) {
    stream.push(measure(s.tag_index, s.time_s, ctx));
  });

  // The predicates capture this capture's EvalContext by reference; reset
  // them so copies of the reader (the batch runner clones calibrated
  // readers per trial) never hold dangling captures.
  inventory_.setPoweredPredicate([](std::uint32_t, double) { return true; });
  inventory_.setDecodablePredicate([](std::uint32_t, double) { return true; });
  return stream;
}

SampleStream RfidReader::captureStatic(double duration_s) {
  return capture(duration_s, emptyScene);
}

}  // namespace rfipad::reader
