#include "reader/reader.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/angles.hpp"
#include "common/units.hpp"
#include "common/vkernels.hpp"

namespace rfipad::reader {

rf::ScattererList emptyScene(double) { return {}; }

RfidReader::RfidReader(ReaderConfig config, rf::ChannelModel channel,
                       const tag::TagArray& array, Rng rng)
    : config_(config),
      tags_(array.tags()),
      rng_(std::move(rng)),
      inventory_(gen2::Gen2Timing(config.link), config.qconfig,
                 static_cast<std::uint32_t>(array.size()),
                 rng_.fork(0x6e21)) {
  // One channel model per hop channel (a single one for a fixed carrier);
  // each gets its own static cache and cable phase rotation.
  if (config_.hop_channels_mhz.empty()) {
    channels_.push_back(std::move(channel));
  } else {
    if (config_.hop_interval_s <= 0.0)
      throw std::invalid_argument("RfidReader: non-positive hop interval");
    for (double mhz : config_.hop_channels_mhz) {
      channels_.emplace_back(rf::CarrierConfig{mhz * 1e6}, channel.antenna(),
                             channel.environment());
    }
  }
  for (const auto& model : channels_) {
    auto& cache = static_caches_.emplace_back();
    cache.reserve(tags_.size());
    for (const auto& t : tags_) cache.push_back(model.precompute(t.endpoint()));
    cable_phases_.push_back(rng_.uniform(0.0, kTwoPi));
  }
  std::vector<rf::TagEndpoint> endpoints;
  endpoints.reserve(tags_.size());
  for (const auto& t : tags_) endpoints.push_back(t.endpoint());
  tag_batch_.build(endpoints, channels_.front().antenna().peakGainLinear(),
                   static_caches_);
}

void RfidReader::reseed(std::uint64_t seed) {
  rng_ = Rng(seed);
  inventory_.reseed(rng_.fork(0x6e21));
}

std::size_t RfidReader::channelIndexAt(double t) const {
  if (channels_.size() == 1) return 0;
  const auto hop = static_cast<long long>(std::floor(t / config_.hop_interval_s));
  return static_cast<std::size_t>(hop % static_cast<long long>(channels_.size()));
}

double RfidReader::channelMhzAt(double t) const {
  return channels_[channelIndexAt(t)].carrier().freq_hz / 1e6;
}

const rf::ChannelModel& RfidReader::modelAt(double t) const {
  return channels_[channelIndexAt(t)];
}

const rf::ChannelModel::StaticTagChannel& RfidReader::cacheAt(
    double t, std::uint32_t tag) const {
  return static_caches_[channelIndexAt(t)][tag];
}

RfidReader::EvalContext::EvalContext(const RfidReader& reader,
                                     const SceneFillFn& scene)
    : reader_(reader), scene_(scene), snaps_(reader.tags_.size()) {}

const rf::ScattererList& RfidReader::EvalContext::sceneAt(double t) {
  if (!scene_valid_ || scene_t_ != t) {
    scene_(t, scene_list_);
    scene_t_ = t;
    scene_valid_ = true;
  }
  return scene_list_;
}

const rf::ChannelModel::SceneGeometry& RfidReader::EvalContext::geometryAt(
    double t) {
  sceneAt(t);
  if (!geom_valid_ || geom_t_ != t) {
    // The geometry is antenna/environment-only, so any hop channel's model
    // produces the same values; use the first.
    reader_.channels_.front().precomputeScene(scene_list_, scene_geometry_);
    geom_t_ = t;
    geom_valid_ = true;
  }
  return scene_geometry_;
}

const rf::FlatScene& RfidReader::EvalContext::flatAt(double t) {
  sceneAt(t);
  if (!flat_valid_ || flat_t_ != t) {
    // Geometry only: the bounds kernel (the per-slot hot consumer) never
    // reads the gain plane, so the acos/exp gain fill is deferred until a
    // snapshot actually needs it (snapshotAt below).
    flat_.buildGeometry(reader_.channels_.front(), scene_list_);
    flat_t_ = t;
    flat_valid_ = true;
  }
  return flat_;
}

void RfidReader::EvalContext::refreshBounds(double t) {
  if (amp_lo_.empty()) {
    amp_lo_.resize(reader_.tag_batch_.stride);
    detune_.resize(reader_.tag_batch_.stride);
    bound_valid_.assign(reader_.tags_.size(), 0);
    bounds_t_ = t;
    return;
  }
  if (bounds_t_ != t) {
    std::fill(bound_valid_.begin(), bound_valid_.end(), std::uint8_t{0});
    bounds_all_ = false;
    bounds_t_ = t;
  }
}

rf::BoundsArgs RfidReader::EvalContext::boundsArgs(double t) {
  const std::size_t ch = reader_.channelIndexAt(t);
  return rf::BoundsArgs{&reader_.tag_batch_, &flatAt(t), ch,
                        reader_.channels_[ch].carrier().wavelengthM(),
                        amp_lo_.data(), detune_.data()};
}

double RfidReader::EvalContext::ampBoundAt(std::uint32_t tag, double t) {
  refreshBounds(t);
  if (!bound_valid_[tag]) {
    rf::computeBounds(boundsArgs(t), tag, tag + 1);
    bound_valid_[tag] = 1;
  }
  return amp_lo_[tag];
}

double RfidReader::EvalContext::detuneBoundAt(std::uint32_t tag, double t) {
  refreshBounds(t);
  if (!bound_valid_[tag]) {
    rf::computeBounds(boundsArgs(t), tag, tag + 1);
    bound_valid_[tag] = 1;
  }
  return detune_[tag];
}

void RfidReader::EvalContext::boundsAllAt(double t) {
  refreshBounds(t);
  if (!bounds_all_) {
    rf::computeBounds(boundsArgs(t), 0, reader_.tags_.size());
    std::fill(bound_valid_.begin(), bound_valid_.end(), std::uint8_t{1});
    bounds_all_ = true;
  }
}

const rf::ChannelSnapshot& RfidReader::EvalContext::snapshotAt(
    std::uint32_t tag, double t) {
  TagSnap& entry = snaps_.at(tag);
  if (!entry.valid || entry.t != t) {
    const std::size_t ch = reader_.channelIndexAt(t);
    const auto& model = reader_.channels_[ch];
    const rf::FlatScene& fs = flatAt(t);
    if (!fs.gains_valid) flat_.fillGains(reader_.channels_.front());
    if (fs.count * (1 + fs.num_reflectors) <= rf::kMaxFastTerms) {
      // SoA fast path: batched sincos + FMA accumulate over the flattened
      // scene.  Matches evaluateCached to ~1e-12 relative, and is exactly
      // the cached static channel when the scene is empty.
      entry.snap =
          rf::evaluateTagFast(reader_.tag_batch_, ch, tag, fs,
                              model.carrier().wavelengthM(),
                              model.carrier().waveNumber());
    } else {
      entry.snap = model.evaluateCached(reader_.tags_[tag].endpoint(),
                                        reader_.cacheAt(t, tag), sceneAt(t),
                                        geometryAt(t));
    }
    entry.t = t;
    entry.valid = true;
  }
  return entry.snap;
}

// These two run per singulation (and in predicate fallbacks), so the dB
// conversions go through the dispatched polynomial kernels instead of libm
// pow/log10 — ≤1 ulp from the units.hpp forms, far below the reader's 0.5 dB
// RSSI quantisation.
double RfidReader::incidentDbmFrom(const rf::ChannelSnapshot& snap,
                                   const rf::ChannelModel& model) const {
  const double tx_w = 1e-3 * vk::exp10(config_.tx_power_dbm / 10.0);
  const double w = model.incidentPowerW(snap, tx_w);
  return 10.0 * vk::log10(std::max(w, 1e-30) * 1e3);
}

double RfidReader::backscatterDbmFrom(std::uint32_t tagIndex,
                                      const rf::ChannelSnapshot& snap,
                                      const rf::ChannelModel& model) const {
  const auto& tag = tags_[tagIndex];
  const double mod_eff = tag.type.modulation_efficiency *
                         vk::exp10(tag.coupling_penalty_db / 10.0);
  const double tx_w = 1e-3 * vk::exp10(config_.tx_power_dbm / 10.0);
  const double w = model.backscatterPowerW(snap, tx_w, mod_eff);
  return 10.0 * vk::log10(std::max(w, 1e-30) * 1e3);
}

double RfidReader::incidentDbm(std::uint32_t tagIndex, double t,
                               const SceneFn& scene) const {
  const auto& tag = tags_.at(tagIndex);
  const auto& model = modelAt(t);
  const auto snap =
      model.evaluateCached(tag.endpoint(), cacheAt(t, tagIndex), scene(t));
  return incidentDbmFrom(snap, model);
}

double RfidReader::backscatterDbm(std::uint32_t tagIndex, double t,
                                  const SceneFn& scene) const {
  const auto& tag = tags_.at(tagIndex);
  const auto& model = modelAt(t);
  const auto snap =
      model.evaluateCached(tag.endpoint(), cacheAt(t, tagIndex), scene(t));
  return backscatterDbmFrom(tagIndex, snap, model);
}

double RfidReader::rawRoundTripPhase(std::uint32_t tagIndex,
                                     const rf::ChannelSnapshot& snap,
                                     std::size_t channel) const {
  // Round-trip phase is twice the one-way propagation phase (the 4πd/λ term
  // of Eq. 6/7) plus the tag's reflection characteristic (including any
  // near-field detuning rotation) and the reader's TX/RX circuit rotations.
  const double prop = -2.0 * std::arg(snap.forward);
  return prop + tags_[tagIndex].theta_tag + snap.detunePhase() +
         cable_phases_[channel];
}

double RfidReader::quantizePhase(double phase) const {
  const double step = kTwoPi / static_cast<double>(1 << config_.phase_bits);
  return wrapTwoPi(std::round(wrapTwoPi(phase) / step) * step);
}

double RfidReader::quantizeRssi(double dbm) const {
  return std::round(dbm / config_.rssi_step_db) * config_.rssi_step_db;
}

TagReport RfidReader::measure(std::uint32_t tagIndex, double t,
                              const SceneFn& scene) {
  const SceneFillFn fill = [&scene](double tt, rf::ScattererList& out) {
    out = scene(tt);
  };
  EvalContext ctx(*this, fill);
  return measure(tagIndex, t, ctx);
}

TagReport RfidReader::measure(std::uint32_t tagIndex, double t,
                              EvalContext& ctx) {
  const auto& tag = tags_.at(tagIndex);
  const std::size_t ch = channelIndexAt(t);
  const auto& model = channels_[ch];
  // One channel evaluation serves the report phase, the received power and
  // the forward-link margin (the seed recomputed it for each quantity).
  const rf::ChannelSnapshot& snap = ctx.snapshotAt(tagIndex, t);

  const double rx_dbm = backscatterDbmFrom(tagIndex, snap, model);
  const rf::NoiseModel noise(config_.noise);
  const double env_flicker = model.environment().flicker_scale;
  // Forward-link margin above the IC threshold: responses get noisier as
  // the tag starves (drives the power/angle/distance sensitivity of
  // Figs. 17-19).
  const double margin_db =
      incidentDbmFrom(snap, model) - tag.type.ic_sensitivity_dbm;
  const double margin_std = noise.tagMarginStd(margin_db);
  const double phase_std =
      std::hypot(noise.phaseStd(rx_dbm, tag.flicker_bias, env_flicker),
                 margin_std);
  const double rss_std =
      std::hypot(noise.rssStdDb(rx_dbm, tag.flicker_bias, env_flicker),
                 8.0 * margin_std);

  TagReport r;
  r.epc = tag.epc;
  r.tag_index = tagIndex;
  r.antenna_id = config_.antenna_id;
  r.time_s = t;
  r.phase_rad = quantizePhase(rawRoundTripPhase(tagIndex, snap, ch) +
                              rng_.normal(0.0, phase_std));
  r.rssi_dbm = quantizeRssi(rx_dbm + rng_.normal(0.0, rss_std));

  // Doppler: the reader estimates carrier shift from the phase slope across
  // the read; emulate with a central difference of the round-trip phase
  // (always within one dwell, so a single channel applies).  Evaluated
  // directly (not via snapshotAt) so the memoised snapshot at t survives.
  const double dt = 1e-3;
  double dphi = 0.0;
  if (config_.doppler_probes) {
    const auto snap_m =
        model.evaluateCached(tag.endpoint(), static_caches_[ch][tagIndex],
                             ctx.sceneAt(t - dt), ctx.geometryAt(t - dt));
    const auto snap_p =
        model.evaluateCached(tag.endpoint(), static_caches_[ch][tagIndex],
                             ctx.sceneAt(t + dt), ctx.geometryAt(t + dt));
    dphi = angleDiff(rawRoundTripPhase(tagIndex, snap_p, ch),
                     rawRoundTripPhase(tagIndex, snap_m, ch));
  }
  // The noise draw happens in both modes so the RNG stream — and therefore
  // every later phase/RSSI sample — is identical with probes on or off.
  r.doppler_hz =
      dphi / (kTwoPi * 2.0 * dt) + rng_.normal(0.0, noise.dopplerStdHz());
  r.channel_mhz = model.carrier().freq_hz / 1e6;
  return r;
}

SampleStream RfidReader::capture(double duration_s, const SceneFn& scene) {
  const SceneFillFn fill = [&scene](double t, rf::ScattererList& out) {
    out = scene(t);
  };
  return capture(duration_s, fill);
}

SampleStream RfidReader::capture(double duration_s, const SceneFillFn& scene) {
  SampleStream stream(static_cast<std::uint32_t>(tags_.size()));
  // Upper bound on reads: every slot a success.
  const double slot_s = std::max(inventory_.timing().successSlotS(), 1e-6);
  stream.reserve(std::min<std::size_t>(
      static_cast<std::size_t>(duration_s / slot_s) + 16, 1u << 20));

  EvalContext ctx(*this, scene);
  const double tx_w = dbmToWatts(config_.tx_power_dbm);
  // Per-tag thresholds hoisted out of the per-call predicates: IC
  // sensitivity (dBm and watts) and modulation efficiency.
  std::vector<double> sens_dbm(tags_.size()), sens_w(tags_.size());
  std::vector<double> mod_eff(tags_.size());
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    sens_dbm[i] = tags_[i].type.ic_sensitivity_dbm;
    sens_w[i] = dbmToWatts(sens_dbm[i]);
    mod_eff[i] = tags_[i].type.modulation_efficiency *
                 dbToLinear(tags_[i].coupling_penalty_db);
  }
  auto powered = [this, &ctx, tx_w, &sens_w,
                  &sens_dbm](std::uint32_t i, double t) {
    // Fast path: if even the pessimistic forward-amplitude bound clears the
    // IC sensitivity, the tag is certainly powered — skip the full channel
    // evaluation.  Tags sit tens of dB above sensitivity, so the bound
    // decides almost every call without changing any outcome.
    const double amp_lo = ctx.ampBoundAt(i, t);
    if (amp_lo > 0.0 && tx_w * amp_lo * amp_lo >= sens_w[i]) return true;
    return incidentDbmFrom(ctx.snapshotAt(i, t), modelAt(t)) >= sens_dbm[i];
  };
  // The Gen2 round-start hot loop (every tag, every Query) goes through the
  // batched form: one tiered SoA kernel pass fills the bounds for the whole
  // array, then each tag resolves against its threshold.
  auto powered_batch = [this, &ctx, tx_w, &sens_w, &sens_dbm](
                           double t, std::uint8_t* out, std::uint32_t n) {
    ctx.boundsAllAt(t);
    const auto& model = modelAt(t);
    for (std::uint32_t i = 0; i < n; ++i) {
      const double amp_lo = ctx.ampBoundAt(i, t);
      out[i] = (amp_lo > 0.0 && tx_w * amp_lo * amp_lo >= sens_w[i]) ||
               incidentDbmFrom(ctx.snapshotAt(i, t), model) >= sens_dbm[i];
    }
  };
  const double rx_sens_w = dbmToWatts(config_.rx_sensitivity_dbm);
  auto decodable = [this, &ctx, tx_w, &mod_eff,
                    rx_sens_w](std::uint32_t i, double t) {
    // Fast path, mirroring the powered predicate: the detune factor is
    // exact and cheap, so tx·amp_lo⁴·mod_eff·detune⁴ is a sound lower
    // bound on the backscatter power.  If even that clears the receive
    // sensitivity the response certainly decodes — skip the evaluation.
    const double amp_lo = ctx.ampBoundAt(i, t);
    if (amp_lo > 0.0) {
      const double det = ctx.detuneBoundAt(i, t);
      const double f2 = amp_lo * amp_lo;
      const double det2 = det * det;
      if (tx_w * f2 * f2 * mod_eff[i] * det2 * det2 >= rx_sens_w) return true;
    }
    return backscatterDbmFrom(i, ctx.snapshotAt(i, t), modelAt(t)) >=
           config_.rx_sensitivity_dbm;
  };
  inventory_.setPoweredPredicate(powered);
  inventory_.setPoweredBatchPredicate(powered_batch);
  inventory_.setDecodablePredicate(decodable);

  const double until = inventory_.now() + duration_s;
  inventory_.run(until, [&](const gen2::Singulation& s) {
    stream.push(measure(s.tag_index, s.time_s, ctx));
  });

  // The predicates capture this capture's EvalContext by reference; reset
  // them so copies of the reader (the batch runner clones calibrated
  // readers per trial) never hold dangling captures.
  inventory_.setPoweredPredicate([](std::uint32_t, double) { return true; });
  inventory_.setPoweredBatchPredicate({});
  inventory_.setDecodablePredicate([](std::uint32_t, double) { return true; });
  return stream;
}

SampleStream RfidReader::captureStatic(double duration_s) {
  return capture(duration_s, emptyScene);
}

}  // namespace rfipad::reader
