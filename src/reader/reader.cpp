#include "reader/reader.hpp"

#include <cmath>
#include <stdexcept>

#include "common/angles.hpp"
#include "common/units.hpp"

namespace rfipad::reader {

rf::ScattererList emptyScene(double) { return {}; }

RfidReader::RfidReader(ReaderConfig config, rf::ChannelModel channel,
                       const tag::TagArray& array, Rng rng)
    : config_(config),
      tags_(array.tags()),
      rng_(std::move(rng)),
      inventory_(gen2::Gen2Timing(config.link), config.qconfig,
                 static_cast<std::uint32_t>(array.size()),
                 rng_.fork(0x6e21)) {
  // One channel model per hop channel (a single one for a fixed carrier);
  // each gets its own static cache and cable phase rotation.
  if (config_.hop_channels_mhz.empty()) {
    channels_.push_back(std::move(channel));
  } else {
    if (config_.hop_interval_s <= 0.0)
      throw std::invalid_argument("RfidReader: non-positive hop interval");
    for (double mhz : config_.hop_channels_mhz) {
      channels_.emplace_back(rf::CarrierConfig{mhz * 1e6}, channel.antenna(),
                             channel.environment());
    }
  }
  for (const auto& model : channels_) {
    auto& cache = static_caches_.emplace_back();
    cache.reserve(tags_.size());
    for (const auto& t : tags_) cache.push_back(model.precompute(t.endpoint()));
    cable_phases_.push_back(rng_.uniform(0.0, kTwoPi));
  }
}

std::size_t RfidReader::channelIndexAt(double t) const {
  if (channels_.size() == 1) return 0;
  const auto hop = static_cast<long long>(std::floor(t / config_.hop_interval_s));
  return static_cast<std::size_t>(hop % static_cast<long long>(channels_.size()));
}

double RfidReader::channelMhzAt(double t) const {
  return channels_[channelIndexAt(t)].carrier().freq_hz / 1e6;
}

const rf::ChannelModel& RfidReader::modelAt(double t) const {
  return channels_[channelIndexAt(t)];
}

const rf::ChannelModel::StaticTagChannel& RfidReader::cacheAt(
    double t, std::uint32_t tag) const {
  return static_caches_[channelIndexAt(t)][tag];
}

double RfidReader::incidentDbm(std::uint32_t tagIndex, double t,
                               const SceneFn& scene) const {
  const auto& tag = tags_.at(tagIndex);
  const auto& model = modelAt(t);
  const auto snap =
      model.evaluateCached(tag.endpoint(), cacheAt(t, tagIndex), scene(t));
  const double w = model.incidentPowerW(snap, dbmToWatts(config_.tx_power_dbm));
  return wattsToDbm(std::max(w, 1e-30));
}

double RfidReader::backscatterDbm(std::uint32_t tagIndex, double t,
                                  const SceneFn& scene) const {
  const auto& tag = tags_.at(tagIndex);
  const auto& model = modelAt(t);
  const auto snap =
      model.evaluateCached(tag.endpoint(), cacheAt(t, tagIndex), scene(t));
  const double mod_eff =
      tag.type.modulation_efficiency * dbToLinear(tag.coupling_penalty_db);
  const double w = model.backscatterPowerW(
      snap, dbmToWatts(config_.tx_power_dbm), mod_eff);
  return wattsToDbm(std::max(w, 1e-30));
}

double RfidReader::rawRoundTripPhase(std::uint32_t tagIndex,
                                     const rf::ChannelSnapshot& snap,
                                     std::size_t channel) const {
  // Round-trip phase is twice the one-way propagation phase (the 4πd/λ term
  // of Eq. 6/7) plus the tag's reflection characteristic (including any
  // near-field detuning rotation) and the reader's TX/RX circuit rotations.
  const double prop = -2.0 * std::arg(snap.forward);
  return prop + tags_[tagIndex].theta_tag + snap.detunePhase() +
         cable_phases_[channel];
}

double RfidReader::quantizePhase(double phase) const {
  const double step = kTwoPi / static_cast<double>(1 << config_.phase_bits);
  return wrapTwoPi(std::round(wrapTwoPi(phase) / step) * step);
}

double RfidReader::quantizeRssi(double dbm) const {
  return std::round(dbm / config_.rssi_step_db) * config_.rssi_step_db;
}

TagReport RfidReader::measure(std::uint32_t tagIndex, double t,
                              const SceneFn& scene) {
  const auto& tag = tags_.at(tagIndex);
  const std::size_t ch = channelIndexAt(t);
  const auto& model = channels_[ch];
  const auto snap =
      model.evaluateCached(tag.endpoint(), static_caches_[ch][tagIndex],
                           scene(t));

  const double rx_dbm = backscatterDbm(tagIndex, t, scene);
  const rf::NoiseModel noise(config_.noise);
  const double env_flicker = model.environment().flicker_scale;
  // Forward-link margin above the IC threshold: responses get noisier as
  // the tag starves (drives the power/angle/distance sensitivity of
  // Figs. 17-19).
  const double margin_db =
      incidentDbm(tagIndex, t, scene) - tag.type.ic_sensitivity_dbm;
  const double margin_std = noise.tagMarginStd(margin_db);
  const double phase_std =
      std::hypot(noise.phaseStd(rx_dbm, tag.flicker_bias, env_flicker),
                 margin_std);
  const double rss_std =
      std::hypot(noise.rssStdDb(rx_dbm, tag.flicker_bias, env_flicker),
                 8.0 * margin_std);

  TagReport r;
  r.epc = tag.epc;
  r.tag_index = tagIndex;
  r.antenna_id = config_.antenna_id;
  r.time_s = t;
  r.phase_rad = quantizePhase(rawRoundTripPhase(tagIndex, snap, ch) +
                              rng_.normal(0.0, phase_std));
  r.rssi_dbm = quantizeRssi(rx_dbm + rng_.normal(0.0, rss_std));

  // Doppler: the reader estimates carrier shift from the phase slope across
  // the read; emulate with a central difference of the round-trip phase
  // (always within one dwell, so a single channel applies).
  const double dt = 1e-3;
  const auto snap_m =
      model.evaluateCached(tag.endpoint(), static_caches_[ch][tagIndex],
                           scene(t - dt));
  const auto snap_p =
      model.evaluateCached(tag.endpoint(), static_caches_[ch][tagIndex],
                           scene(t + dt));
  const double dphi = angleDiff(rawRoundTripPhase(tagIndex, snap_p, ch),
                                rawRoundTripPhase(tagIndex, snap_m, ch));
  r.doppler_hz =
      dphi / (kTwoPi * 2.0 * dt) + rng_.normal(0.0, noise.dopplerStdHz());
  r.channel_mhz = model.carrier().freq_hz / 1e6;
  return r;
}

SampleStream RfidReader::capture(double duration_s, const SceneFn& scene) {
  SampleStream stream(static_cast<std::uint32_t>(tags_.size()));

  auto powered = [this, &scene](std::uint32_t i, double t) {
    return incidentDbm(i, t, scene) >= tags_[i].type.ic_sensitivity_dbm;
  };
  auto decodable = [this, &scene](std::uint32_t i, double t) {
    return backscatterDbm(i, t, scene) >= config_.rx_sensitivity_dbm;
  };
  inventory_.setPoweredPredicate(powered);
  inventory_.setDecodablePredicate(decodable);

  const double until = inventory_.now() + duration_s;
  inventory_.run(until, [&](const gen2::Singulation& s) {
    stream.push(measure(s.tag_index, s.time_s, scene));
  });
  return stream;
}

SampleStream RfidReader::captureStatic(double duration_s) {
  return capture(duration_s, emptyScene);
}

}  // namespace rfipad::reader
