#include "rf/scatterer.hpp"

#include <cmath>

#include "common/units.hpp"

namespace rfipad::rf {

namespace {
// Fraction of the nominal blockage depth a body part imposes mid-path
// (Fresnel-zone argument; full depth only near the tag).
constexpr double kMidPathFraction = 0.22;
}  // namespace

double blockageFactor(const PointScatterer& s, Vec3 a, Vec3 b) {
  if (!s.blocks_los || s.blockage_depth_db <= 0.0) return 1.0;
  const double clearance = pointSegmentDistance(s.position, a, b);
  const double x = clearance / s.blockage_radius;
  // At UHF the first Fresnel zone is tens of centimetres wide, so a hand or
  // forearm crossing the middle of a link only shaves a dB or two; the full
  // blockage depth applies only when the scatterer sits in the receiver's
  // near field (shadowing the tag antenna itself).
  const double d_rx = distance(s.position, b);
  const double near_rx = std::exp(-(d_rx * d_rx) / (2.0 * 0.08 * 0.08));
  const double depth_scale = kMidPathFraction + (1.0 - kMidPathFraction) * near_rx;
  const double depth_db =
      s.blockage_depth_db * depth_scale * std::exp(-x * x);
  return dbToLinear(-depth_db);
}

double combinedBlockage(const ScattererList& list, Vec3 a, Vec3 b) {
  double f = 1.0;
  for (const auto& s : list) f *= blockageFactor(s, a, b);
  return f;
}

}  // namespace rfipad::rf
