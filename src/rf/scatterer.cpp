#include "rf/scatterer.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"

namespace rfipad::rf {

namespace {
// Fraction of the nominal blockage depth a body part imposes mid-path
// (Fresnel-zone argument; full depth only near the tag).
constexpr double kMidPathFraction = 0.22;
}  // namespace

double blockageFactor(const PointScatterer& s, Vec3 a, Vec3 b) {
  if (!s.blocks_los || s.blockage_depth_db <= 0.0) return 1.0;
  const double clearance = pointSegmentDistance(s.position, a, b);
  const double x = clearance / s.blockage_radius;
  // At UHF the first Fresnel zone is tens of centimetres wide, so a hand or
  // forearm crossing the middle of a link only shaves a dB or two; the full
  // blockage depth applies only when the scatterer sits in the receiver's
  // near field (shadowing the tag antenna itself).
  const double d_rx = distance(s.position, b);
  const double near_rx = std::exp(-(d_rx * d_rx) / (2.0 * 0.08 * 0.08));
  const double depth_scale = kMidPathFraction + (1.0 - kMidPathFraction) * near_rx;
  const double depth_db =
      s.blockage_depth_db * depth_scale * std::exp(-x * x);
  return dbToLinear(-depth_db);
}

double combinedBlockage(const ScattererList& list, Vec3 a, Vec3 b) {
  // Same model as a product of blockageFactor() screens, restructured for
  // the per-slot hot path: the segment geometry is hoisted out of the loop,
  // the obstruction depths accumulate in dB so the pow() runs once per link
  // instead of once per scatterer, and scatterers clear of the segment by
  // ~7 blockage radii (where exp(-x²) is below double noise) are skipped
  // before any exp/sqrt is spent on them.
  const Vec3 ab = b - a;
  const double len2 = ab.dot(ab);
  double depth_db = 0.0;
  for (const auto& s : list) {
    if (!s.blocks_los || s.blockage_depth_db <= 0.0) continue;
    Vec3 diff = s.position - a;
    if (len2 > 0.0) {
      const double t = std::clamp(diff.dot(ab) / len2, 0.0, 1.0);
      diff = s.position - (a + ab * t);
    }
    const double c2 = diff.dot(diff);  // squared clearance to the segment
    const double r2 = s.blockage_radius * s.blockage_radius;
    if (c2 >= 45.0 * r2) continue;
    const Vec3 rx = s.position - b;
    const double near_rx = std::exp(-rx.dot(rx) / (2.0 * 0.08 * 0.08));
    const double depth_scale =
        kMidPathFraction + (1.0 - kMidPathFraction) * near_rx;
    depth_db += s.blockage_depth_db * depth_scale * std::exp(-c2 / r2);
  }
  return depth_db > 0.0 ? dbToLinear(-depth_db) : 1.0;
}

}  // namespace rfipad::rf
