// Static multipath environments.
//
// The paper evaluates in four locations of an office lab (Fig. 15/16);
// location #4 sits in a corner and "may experience the strongest multipath
// reflections from nearby objects, such as walls and tables".  We model each
// location as a set of static specular reflectors plus an environmental
// phase-flicker scale.  Static reflectors contribute (a) a constant complex
// offset per tag — harmless after the paper's mean-subtraction — and
// (b) *dynamic parasitic paths* reader → hand → reflector → tag that smear
// hand activation onto distant tags, which is exactly the location-diversity
// effect the deviation-bias weighting (Eq. 9–10) suppresses.
#pragma once

#include <string>
#include <vector>

#include "rf/scatterer.hpp"

namespace rfipad::rf {

struct MultipathEnvironment {
  std::string name = "open";
  /// Static reflectors (walls, desks) as point-scatterer images.
  ScattererList reflectors;
  /// Multiplier on environmental phase flicker noise (location diversity).
  double flicker_scale = 1.0;
  /// Strength multiplier for second-order hand→reflector→tag paths.
  double parasitic_scale = 1.0;
};

/// The four lab locations of Fig. 15.  `location` is 1-based (1..4);
/// geometry is expressed relative to a pad centred at the origin.
MultipathEnvironment labLocation(int location);

/// Free-space environment (no reflectors, unit flicker).
MultipathEnvironment anechoic();

}  // namespace rfipad::rf
