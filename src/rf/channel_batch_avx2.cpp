// AVX2 tier of the bounds kernel.  Built only on x86-64, with
// -mavx2 -mfma -ffp-contract=off.
#include "common/simd_dispatch.hpp"

#if defined(RFIPAD_TU_AVX2)

#include "common/vbackend_avx2.hpp"
#include "rf/channel_batch_impl.hpp"

namespace rfipad::rf::detail {

BoundsFn avx2Bounds() { return &boundsRangeT<vm::Avx2Backend>; }
TagFastFn avx2TagFast() { return &tagFastImpl; }
GainsFn avx2Gains() { return &fillGainsImpl; }

}  // namespace rfipad::rf::detail

#endif  // RFIPAD_TU_AVX2
