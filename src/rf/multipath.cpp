#include "rf/multipath.hpp"

#include <stdexcept>

namespace rfipad::rf {

namespace {

PointScatterer reflector(Vec3 pos, double rcs) {
  PointScatterer s;
  s.position = pos;
  s.rcs_m2 = rcs;
  s.reflection_phase = 3.14159265358979323846;  // conducting-surface flip
  s.blocks_los = false;
  return s;
}

}  // namespace

MultipathEnvironment anechoic() {
  MultipathEnvironment env;
  env.name = "anechoic";
  env.flicker_scale = 0.2;
  env.parasitic_scale = 0.0;
  return env;
}

MultipathEnvironment labLocation(int location) {
  MultipathEnvironment env;
  switch (location) {
    case 1:
      // Open area in the middle of the lab: distant walls only.
      env.name = "location-1 (open)";
      env.reflectors = {reflector({2.5, 0.5, 0.8}, 0.8)};
      env.flicker_scale = 1.0;
      env.parasitic_scale = 0.6;
      break;
    case 2:
      // Near a single wall.
      env.name = "location-2 (near wall)";
      env.reflectors = {reflector({1.2, 0.0, 0.5}, 1.2),
                        reflector({2.8, -1.0, 0.9}, 0.6)};
      env.flicker_scale = 1.3;
      env.parasitic_scale = 1.0;
      break;
    case 3:
      // Beside a metal desk and a wall.
      env.name = "location-3 (desk)";
      env.reflectors = {reflector({0.9, 0.6, 0.2}, 1.5),
                        reflector({1.6, -0.8, 0.6}, 1.0),
                        reflector({3.0, 0.0, 1.0}, 0.5)};
      env.flicker_scale = 1.7;
      env.parasitic_scale = 1.5;
      break;
    case 4:
      // Corner: two close walls plus tables — strongest multipath (Fig. 16).
      env.name = "location-4 (corner)";
      env.reflectors = {reflector({0.7, 0.5, 0.3}, 2.0),
                        reflector({0.6, -0.6, 0.4}, 1.8),
                        reflector({1.1, 0.0, 0.15}, 1.2),
                        reflector({1.8, 0.9, 0.7}, 0.8)};
      env.flicker_scale = 2.4;
      env.parasitic_scale = 2.4;
      break;
    default:
      throw std::invalid_argument("labLocation: location must be 1..4");
  }
  return env;
}

}  // namespace rfipad::rf
