#include "rf/coupling.hpp"

#include <cmath>
#include <stdexcept>

namespace rfipad::rf {

namespace {

// Worst-case suppression (dB) of a same-facing pair in contact, for the
// reference RCS.  Calibrated so that a 3-column array of large-RCS tags
// reaches the ≈20 dB drop of Fig. 12 while small-RCS tags stay near 2 dB.
constexpr double kPeakPairDb = 8.0;
constexpr double kReferenceRcs = 0.005;  // m²
// Logistic knee: strong in the face-to-face near field (< ~4 cm),
// negligible beyond ~12 cm.
constexpr double kKneeM = 0.05;
constexpr double kKneeWidthM = 0.016;
// Opposite-facing pairs couple far less (paper Fig. 11(c)).
constexpr double kOppositeFactor = 0.12;

double distanceRollOff(double d) {
  return 1.0 / (1.0 + std::exp((d - kKneeM) / kKneeWidthM));
}

}  // namespace

double pairShadowDb(double distance_m, TagFacing facing,
                    const CouplingParams& interferer) {
  if (distance_m < 0.0)
    throw std::invalid_argument("pairShadowDb: negative distance");
  if (interferer.rcs_m2 <= 0.0)
    throw std::invalid_argument("pairShadowDb: non-positive RCS");
  const double orient = facing == TagFacing::kSame ? 1.0 : kOppositeFactor;
  const double rcs_scale = interferer.rcs_m2 / kReferenceRcs;
  return -kPeakPairDb * orient * rcs_scale * distanceRollOff(distance_m);
}

double arrayShadowDb(int rows, int cols, double spacing_m, TagFacing facing,
                     const CouplingParams& interferer) {
  if (rows < 0 || cols < 0)
    throw std::invalid_argument("arrayShadowDb: negative dimensions");
  if (spacing_m <= 0.0)
    throw std::invalid_argument("arrayShadowDb: non-positive spacing");
  double total_db = 0.0;
  // The target sits behind the centre of the array; each interfering tag
  // contributes its pair shadow at its lateral offset, and deeper columns
  // (farther from the target, closer to the reader) contribute with a
  // geometric discount because the wavefront has already been re-shaped.
  // The target sits behind one end of the array, so the r-th row tag of a
  // column is r pitches away laterally; adding a row therefore only adds a
  // farther contributor (the shadow grows monotonically with rows/cols, as
  // in Fig. 12).
  for (int c = 0; c < cols; ++c) {
    const double column_discount = std::pow(0.55, c);
    for (int r = 0; r < rows; ++r) {
      const double lateral = static_cast<double>(r) * spacing_m;
      const double axial = (c + 1) * spacing_m / 2.0;
      const double d = std::sqrt(lateral * lateral + axial * axial);
      total_db += pairShadowDb(d, facing, interferer) * column_discount;
    }
  }
  return total_db;
}

}  // namespace rfipad::rf
