// Backend-generic body of the bounds kernel.  Included by exactly one TU
// per tier (channel_batch.cpp, channel_batch_avx2.cpp,
// channel_batch_neon.cpp), each compiled with -ffp-contract=off so every
// tier walks the identical chain of roundings (see vmath.hpp).
//
// Per lane (= one tag) the kernel reproduces, with hoisted divisions and
// polynomial transcendentals:
//   combinedBlockage()        → LOS attenuation accumulated in dB
//   |√block·los + refl|       → exact static amplitude
//   − √g_peak·λ·(Σ base/d + Σ rt_amp·refl_weight)   → destructive bound
//   Π (1 − 0.55·exp(−(d/σ)²)) → near-field detune factor
// matching ChannelModel::forwardAmpLowerBound()/detuneFactor() to ~1e-12
// relative; lanes are independent, so batch and single-tag calls agree
// bit-for-bit.
#pragma once

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/vkernels.hpp"
#include "common/vmath.hpp"
#include "rf/channel_batch.hpp"

namespace rfipad::rf::detail {

// Hoisted constants, shared (and therefore identical) across every tier.
inline constexpr double kMidPathFraction = 0.22;  // scatterer.cpp's value
inline constexpr double kNearRxCoeff = -1.0 / (2.0 * 0.08 * 0.08);
inline constexpr double kDbToLnPow = -vm::kLn10 / 10.0;  // dB → ln scale
inline constexpr double kInvDetuneSigma = 1.0 / ChannelModel::kDetuneSigma;

template <class B>
RFIPAD_VM_INLINE void boundsLanes(const BoundsArgs& a, std::size_t i) {
  using V = typename B::V;
  const TagBatch& tb = *a.tags;
  const FlatScene& fs = *a.scene;
  const auto& cp = tb.channels[a.channel];
  const std::size_t stride = tb.stride;

  const V zero = B::set(0.0);
  const V one = B::set(1.0);
  const V px = B::load(tb.px.data() + i);
  const V py = B::load(tb.py.data() + i);
  const V pz = B::load(tb.pz.data() + i);
  const V abx = B::sub(px, B::set(fs.ax));
  const V aby = B::sub(py, B::set(fs.ay));
  const V abz = B::sub(pz, B::set(fs.az));
  const V len2 = B::fma(abz, abz, B::fma(aby, aby, B::mul(abx, abx)));
  // Reciprocal hoisted out of the scatterer loop (one div instead of one
  // per scatterer).  A degenerate len2 == 0 makes inv_len2 inf and t
  // garbage, but the select below already discards that lane.
  const V inv_len2 = B::div(one, len2);

  V depth = zero;    // blockage, accumulated in dB
  V direct = zero;   // Σ base_j / dist_j (destructive direct terms)
  V det = one;       // near-field detune product
  // combinedBlockage()'s far-scatterer cutoff: beyond ~7 blockage radii of
  // the segment (x² ≥ 45) exp(−x²) is below double rounding, so the term
  // adds exactly 0.0; the same holds for a detune factor that rounds to
  // exactly 1.0.  Scalar lanes branch around the transcendentals (the
  // per-slot hot path skips most of them); vector lanes compute and mask
  // with a select, which lands on the identical bits.
  const V kCut = B::set(45.0);
  for (std::size_t s = 0; s < fs.count; ++s) {
    const V d0x = B::set(fs.sx[s] - fs.ax);
    const V d0y = B::set(fs.sy[s] - fs.ay);
    const V d0z = B::set(fs.sz[s] - fs.az);
    // Clearance of the scatterer to the antenna→tag segment.
    V t = B::mul(B::fma(d0z, abz, B::fma(d0y, aby, B::mul(d0x, abx))), inv_len2);
    t = B::select(B::gt(len2, zero), B::min(B::max(t, zero), one), zero);
    const V cx = B::fma(B::neg(abx), t, d0x);
    const V cy = B::fma(B::neg(aby), t, d0y);
    const V cz = B::fma(B::neg(abz), t, d0z);
    const V c2 = B::fma(cz, cz, B::fma(cy, cy, B::mul(cx, cx)));
    // Scatterer→tag leg (shared by the near-field, direct and detune terms).
    const V rxx = B::sub(B::set(fs.sx[s]), px);
    const V rxy = B::sub(B::set(fs.sy[s]), py);
    const V rxz = B::sub(B::set(fs.sz[s]), pz);
    const V rx2 = B::fma(rxz, rxz, B::fma(rxy, rxy, B::mul(rxx, rxx)));
    const V x2 = B::mul(c2, B::set(fs.inv_r2[s]));
    if constexpr (B::kLanes == 1) {
      if (x2 < 45.0 && fs.depth_db[s] > 0.0) {
        const V near_rx = vm::expT<B>(B::mul(rx2, B::set(kNearRxCoeff)));
        const V depth_scale = B::fma(near_rx, B::set(1.0 - kMidPathFraction),
                                     B::set(kMidPathFraction));
        const V shadow = vm::expT<B>(B::neg(x2));
        depth = B::add(
            depth, B::mul(B::mul(B::set(fs.depth_db[s]), depth_scale), shadow));
      }
    } else {
      const V near_rx = vm::expT<B>(B::mul(rx2, B::set(kNearRxCoeff)));
      const V depth_scale = B::fma(near_rx, B::set(1.0 - kMidPathFraction),
                                   B::set(kMidPathFraction));
      const V shadow = vm::expT<B>(B::neg(x2));
      const V term =
          B::mul(B::mul(B::set(fs.depth_db[s]), depth_scale), shadow);
      depth = B::add(depth, B::select(B::lt(x2, kCut), term, zero));
    }
    const V dist = B::sqrt(rx2);
    direct = B::add(direct,
                    B::div(B::set(fs.base[s]), B::max(dist, B::set(0.01))));
    const V xd = B::mul(dist, B::set(kInvDetuneSigma));
    const V xd2 = B::mul(xd, xd);
    if constexpr (B::kLanes == 1) {
      if (xd2 < 45.0)
        det = B::mul(det,
                     B::sub(one, B::mul(B::set(ChannelModel::kDetuneDepth),
                                        vm::expT<B>(B::neg(xd2)))));
    } else {
      const V factor = B::sub(one, B::mul(B::set(ChannelModel::kDetuneDepth),
                                          vm::expT<B>(B::neg(xd2))));
      det = B::mul(det, B::select(B::lt(xd2, kCut), factor, one));
    }
  }

  const V sqrt_block = B::sqrt(vm::expT<B>(B::mul(depth, B::set(kDbToLnPow))));
  const V hre = B::fma(sqrt_block, B::load(cp.los_re.data() + i),
                       B::load(cp.refl_re.data() + i));
  const V him = B::fma(sqrt_block, B::load(cp.los_im.data() + i),
                       B::load(cp.refl_im.data() + i));
  const V habs = B::sqrt(B::fma(him, him, B::mul(hre, hre)));

  V parasitic = zero;
  for (std::size_t r = 0; r < cp.num_reflectors; ++r)
    parasitic = B::fma(B::load(cp.rt_amp.data() + r * stride + i),
                       B::set(fs.refl_weight[r]), parasitic);
  const V interference =
      B::mul(B::mul(B::load(tb.sqrt_gain_peak.data() + i), B::set(a.lambda)),
             B::add(direct, parasitic));
  B::store(a.amp_lo + i, B::max(B::sub(habs, interference), zero));
  B::store(a.detune + i, det);
}

template <class B>
void boundsRangeT(const BoundsArgs& a, std::size_t begin, std::size_t end) {
  constexpr int L = B::kLanes;
  std::size_t i = begin;
  for (; i + L <= end; i += L) boundsLanes<B>(a, i);
  for (; i < end; ++i) boundsLanes<vm::ScalarBackend>(a, i);
}

// Full per-tag snapshot: the measurement path.  Scalar double code, but
// defined `static` here so every tier TU compiles its own copy with its
// own flags — the AVX2/NEON TUs get hardware FMA for the std::fma chains
// and the inlined expT, the portable TU keeps the libm fallback.  The
// operation chain is identical in every copy (fma is correctly rounded in
// hardware and software alike), so results are bit-for-bit the same; only
// the speed differs.  Dispatched through the tier table like the bounds
// kernel.
static ChannelSnapshot tagFastImpl(const TagBatch& tb, std::size_t channel,
                                   std::size_t tag, const FlatScene& fs,
                                   double lambda, double wave_number) {
  using SB = vm::ScalarBackend;
  const auto& cp = tb.channels[channel];
  const std::size_t stride = tb.stride;
  const std::size_t nr = fs.num_reflectors;
  RFIPAD_ASSERT(fs.count * (1 + nr) <= kMaxFastTerms,
                "evaluateTagFast: scene exceeds the stack term budget");

  double amp[kMaxFastTerms], pha[kMaxFastTerms];
  double sv[kMaxFastTerms], cv[kMaxFastTerms];
  std::size_t nt = 0;

  const double tx = tb.px[tag], ty = tb.py[tag], tz = tb.pz[tag];
  const double abx = tx - fs.ax, aby = ty - fs.ay, abz = tz - fs.az;
  const double len2 = abx * abx + aby * aby + abz * abz;
  const double inv_len2 = 1.0 / len2;  // hoisted; t is discarded when len2 <= 0
  const double k = wave_number;

  double depth = 0.0;
  double detune = 1.0;
  for (std::size_t s = 0; s < fs.count; ++s) {
    const double d0x = fs.sx[s] - fs.ax;
    const double d0y = fs.sy[s] - fs.ay;
    const double d0z = fs.sz[s] - fs.az;
    double t = (d0x * abx + d0y * aby + d0z * abz) * inv_len2;
    t = len2 > 0.0 ? std::clamp(t, 0.0, 1.0) : 0.0;
    const double cx = d0x - abx * t;
    const double cy = d0y - aby * t;
    const double cz = d0z - abz * t;
    const double c2 = cx * cx + cy * cy + cz * cz;
    const double rxx = fs.sx[s] - tx;
    const double rxy = fs.sy[s] - ty;
    const double rxz = fs.sz[s] - tz;
    const double rx2 = rxx * rxx + rxy * rxy + rxz * rxz;
    // combinedBlockage()'s far-scatterer cutoff: past x² ≥ 45 the term is
    // below double rounding and is skipped.
    const double x2 = c2 * fs.inv_r2[s];
    if (x2 < 45.0 && fs.depth_db[s] > 0.0) {
      const double near_rx = vm::expT<SB>(rx2 * kNearRxCoeff);
      const double depth_scale =
          kMidPathFraction + (1.0 - kMidPathFraction) * near_rx;
      depth += fs.depth_db[s] * depth_scale * vm::expT<SB>(-x2);
    }
    const double dist = std::sqrt(rx2);

    // Direct bistatic term, then one parasitic double bounce per reflector
    // — amplitudes and phases buffered for the batched sincos below.
    const double g =
        fs.gain_toward[s] * tb.gain_linear[tag] * tb.polarization_loss[tag];
    const double d2 = std::max(dist, 0.01);
    const double a0 = std::sqrt(g) * lambda * fs.base[s];
    amp[nt] = a0 / d2;
    pha[nt] = -k * (fs.d1[s] + d2) + fs.refl_phase[s];
    ++nt;
    const double pref_phase = -k * fs.d1[s] + fs.refl_phase[s];
    for (std::size_t r = 0; r < nr; ++r) {
      const double drr = fs.d2r[s * nr + r];
      amp[nt] = a0 / drr * cp.rt_amp[r * stride + tag];
      pha[nt] = pref_phase - k * drr + cp.rt_phase[r * stride + tag];
      ++nt;
    }

    const double xd = dist * kInvDetuneSigma;
    const double xd2 = xd * xd;
    // Past the cutoff the factor rounds to exactly 1.0 — skipping it is a
    // bitwise no-op (and the usual case: the hand detunes one tag at a
    // time).
    if (xd2 < 45.0)
      detune *= 1.0 - ChannelModel::kDetuneDepth * vm::expT<SB>(-xd2);
  }

  const double sqrt_block = std::sqrt(vm::expT<SB>(depth * kDbToLnPow));
  double hre = std::fma(sqrt_block, cp.los_re[tag], cp.refl_re[tag]);
  double him = std::fma(sqrt_block, cp.los_im[tag], cp.refl_im[tag]);
  vk::sincosArray(pha, sv, cv, nt);
  for (std::size_t j = 0; j < nt; ++j) {
    hre = std::fma(amp[j], cv[j], hre);
    him = std::fma(amp[j], sv[j], him);
  }

  ChannelSnapshot snap;
  snap.forward = Complex(hre, him);
  snap.detune = detune;
  return snap;
}

// Gain plane fill: scalar per scatterer, but the inlined acosT/expT chains
// want this TU's codegen flags (hardware FMA in the AVX2/NEON TUs) — same
// per-TU-copy story as tagFastImpl, and bitwise identical on every tier.
static void fillGainsImpl(FlatScene& fs, const ChannelModel& model) {
  const DirectionalAntenna& ant = model.antenna();
  fs.gain_toward.resize(fs.count);
  for (std::size_t j = 0; j < fs.count; ++j)
    fs.gain_toward[j] = ant.gainToward({fs.sx[j], fs.sy[j], fs.sz[j]});
}

using BoundsFn = void (*)(const BoundsArgs&, std::size_t, std::size_t);
using TagFastFn = ChannelSnapshot (*)(const TagBatch&, std::size_t,
                                      std::size_t, const FlatScene&, double,
                                      double);
using GainsFn = void (*)(FlatScene&, const ChannelModel&);

BoundsFn scalarBounds();
TagFastFn scalarTagFast();
GainsFn scalarGains();
GainsFn gainsFor(simd::Tier t);
#if defined(RFIPAD_TU_AVX2)
BoundsFn avx2Bounds();
TagFastFn avx2TagFast();
GainsFn avx2Gains();
#endif
#if defined(RFIPAD_TU_NEON)
BoundsFn neonBounds();
TagFastFn neonTagFast();
GainsFn neonGains();
#endif

}  // namespace rfipad::rf::detail
