// The composite forward channel from reader antenna to a tag.
//
// forward = LOS · blockage  +  Σ static reflector paths
//                            +  Σ dynamic scatterer (hand/arm) paths
//                            +  Σ dynamic→static parasitic double bounces
//
// The monostatic backscatter channel measured by the reader is forward²
// (reciprocity), which the reader layer converts into reported phase/RSS.
#pragma once

#include "rf/antenna.hpp"
#include "rf/carrier.hpp"
#include "rf/multipath.hpp"
#include "rf/propagation.hpp"
#include "rf/scatterer.hpp"

namespace rfipad::rf {

/// Electrical view of a tag as a channel endpoint.
struct TagEndpoint {
  Vec3 position;
  /// Linear antenna gain (≈1.64 for the dipole-like inlays used).
  double gain_linear = 1.64;
  /// Power polarisation mismatch factor (0.5 for circular reader antenna vs
  /// linear tag).
  double polarization_loss = 0.5;
};

struct ChannelSnapshot {
  /// One-way complex amplitude gain reader→tag (includes antenna gains,
  /// polarisation, blockage and all multipath terms).
  Complex forward;
  /// Amplitude factor in (0,1] describing near-field detuning of the tag
  /// antenna by a hand hovering directly over it.  Applied to the
  /// *backscattered* signal only (the tag IC still harvests from |forward|).
  double detune = 1.0;

  /// Reflection-phase shift (radians) the same detuning imposes on the
  /// backscatter: pulling a tag antenna off resonance rotates its
  /// reflection coefficient, so the tag directly under the hand sees a
  /// sharp, spatially-narrow phase excursion on top of the path-length
  /// effects.
  double detunePhase() const { return kDetunePhaseRad * (1.0 - detune); }

  static constexpr double kDetunePhaseRad = 2.4;
};

class ChannelModel {
 public:
  ChannelModel(CarrierConfig carrier, DirectionalAntenna antenna,
               MultipathEnvironment env);

  const CarrierConfig& carrier() const { return carrier_; }
  const DirectionalAntenna& antenna() const { return antenna_; }
  const MultipathEnvironment& environment() const { return env_; }

  /// Evaluate the channel to one tag with the given dynamic scatterers
  /// (hand, arm segments) present.  Pass an empty list for the static case.
  ChannelSnapshot evaluate(const TagEndpoint& tag,
                           const ScattererList& dynamic) const;

  /// Time-invariant part of the channel to one tag: the unblocked LOS term
  /// and the static reflector sum.  Precompute once per tag, then use
  /// evaluateCached() in per-slot hot paths.
  struct StaticTagChannel {
    Complex los;
    Complex reflections;
  };
  StaticTagChannel precompute(const TagEndpoint& tag) const;
  ChannelSnapshot evaluateCached(const TagEndpoint& tag,
                                 const StaticTagChannel& cache,
                                 const ScattererList& dynamic) const;

  /// Incident power (W) available at the tag for a given transmit power.
  /// Forward-link limited operation (paper §IV-B3) compares this to the tag
  /// IC sensitivity.
  double incidentPowerW(const ChannelSnapshot& snap, double txPowerW) const;

  /// Power (W) of the backscattered signal arriving back at the reader,
  /// given transmit power and the tag's modulation (backscatter) efficiency.
  double backscatterPowerW(const ChannelSnapshot& snap, double txPowerW,
                           double modulationEfficiency) const;

 private:
  Complex parasiticGain(const PointScatterer& dyn, const PointScatterer& stat,
                        const TagEndpoint& tag) const;

  CarrierConfig carrier_;
  DirectionalAntenna antenna_;
  MultipathEnvironment env_;

  /// Near-field detuning parameters: a hand within ~σ of a tag suppresses
  /// its backscatter by up to `kDetuneDepth` (amplitude), producing the RSS
  /// troughs the direction estimator relies on (§III-B).
  static constexpr double kDetuneDepth = 0.55;
  static constexpr double kDetuneSigma = 0.055;  // metres
};

}  // namespace rfipad::rf
