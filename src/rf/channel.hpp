// The composite forward channel from reader antenna to a tag.
//
// forward = LOS · blockage  +  Σ static reflector paths
//                            +  Σ dynamic scatterer (hand/arm) paths
//                            +  Σ dynamic→static parasitic double bounces
//
// The monostatic backscatter channel measured by the reader is forward²
// (reciprocity), which the reader layer converts into reported phase/RSS.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "rf/antenna.hpp"
#include "rf/carrier.hpp"
#include "rf/multipath.hpp"
#include "rf/propagation.hpp"
#include "rf/scatterer.hpp"

namespace rfipad::rf {

/// Electrical view of a tag as a channel endpoint.
struct TagEndpoint {
  Vec3 position;
  /// Linear antenna gain (≈1.64 for the dipole-like inlays used).
  double gain_linear = 1.64;
  /// Power polarisation mismatch factor (0.5 for circular reader antenna vs
  /// linear tag).
  double polarization_loss = 0.5;
};

struct ChannelSnapshot {
  /// One-way complex amplitude gain reader→tag (includes antenna gains,
  /// polarisation, blockage and all multipath terms).
  Complex forward;
  /// Amplitude factor in (0,1] describing near-field detuning of the tag
  /// antenna by a hand hovering directly over it.  Applied to the
  /// *backscattered* signal only (the tag IC still harvests from |forward|).
  double detune = 1.0;

  /// Reflection-phase shift (radians) the same detuning imposes on the
  /// backscatter: pulling a tag antenna off resonance rotates its
  /// reflection coefficient, so the tag directly under the hand sees a
  /// sharp, spatially-narrow phase excursion on top of the path-length
  /// effects.
  double detunePhase() const { return kDetunePhaseRad * (1.0 - detune); }

  static constexpr double kDetunePhaseRad = 2.4;
};

class ChannelModel {
 public:
  ChannelModel(CarrierConfig carrier, DirectionalAntenna antenna,
               MultipathEnvironment env);

  // The memoised static-channel cache is model-local state, not identity:
  // copies and moves transfer the configuration and start with a cold cache.
  ChannelModel(const ChannelModel& other);
  ChannelModel(ChannelModel&& other) noexcept;
  ChannelModel& operator=(const ChannelModel& other);
  ChannelModel& operator=(ChannelModel&& other) noexcept;

  const CarrierConfig& carrier() const { return carrier_; }
  const DirectionalAntenna& antenna() const { return antenna_; }
  const MultipathEnvironment& environment() const { return env_; }

  /// Replace the multipath environment.  Invalidates every memoised static
  /// channel (the reflector sums and parasitic precomputes change).
  void setEnvironment(MultipathEnvironment env);

  /// Evaluate the channel to one tag with the given dynamic scatterers
  /// (hand, arm segments) present.  Pass an empty list for the static case.
  /// The static part (LOS + reflector sum) is memoised per tag endpoint, so
  /// repeated calls for the same tag no longer rescan the reflector list.
  ChannelSnapshot evaluate(const TagEndpoint& tag,
                           const ScattererList& dynamic) const;

  /// Time-invariant part of the channel to one tag: the unblocked LOS term,
  /// the static reflector sum, and the reflector→tag leg of each parasitic
  /// double bounce.  Precompute once per tag, then use evaluateCached() in
  /// per-slot hot paths.
  struct StaticTagChannel {
    Complex los;
    Complex reflections;
    /// Per-reflector static leg of the reader→hand→reflector→tag bounce:
    /// amplitude √(σ/4π)/d₃ · parasitic_scale and phase −k·d₃ + φ_r.
    /// Ordered like environment().reflectors.
    struct ReflectorTerm {
      double amp = 0.0;
      double phase = 0.0;
    };
    std::vector<ReflectorTerm> reflector_terms;
  };
  StaticTagChannel precompute(const TagEndpoint& tag) const;
  ChannelSnapshot evaluateCached(const TagEndpoint& tag,
                                 const StaticTagChannel& cache,
                                 const ScattererList& dynamic) const;

  /// Tag-independent geometry of one dynamic scene: antenna gain toward
  /// each scatterer, the reader→scatterer leg, and the scatterer→reflector
  /// legs of the parasitic bounces.  A Gen2 round evaluates every tag of
  /// the array against the same scene, so hoisting these out of the
  /// per-tag evaluation removes the trigonometry that does not depend on
  /// the tag.  Carrier-independent: one geometry serves all hop channels
  /// (they share antenna and environment).
  struct SceneGeometry {
    struct DynTerm {
      double gain_toward = 0.0;  ///< antenna linear gain toward scatterer
      double d1 = 0.0;           ///< reader→scatterer distance (floored)
      /// √(σ/4π)/(4π·d1): the scatterer's amplitude leg with the λ and tag
      /// gain factors split off, so per-tag evaluation multiplies instead
      /// of redoing the sqrt and divisions.
      double base = 0.0;
      std::vector<double> d2r;   ///< scatterer→reflector distances (floored)
    };
    std::vector<DynTerm> dyn;    ///< ordered like the scene's ScattererList
    /// Per-reflector Σ_j base_j/d2r_ij: collapses the scatterer×reflector
    /// double loop of the forward-amplitude bound into one multiply-add per
    /// reflector.  Ordered like environment().reflectors.
    std::vector<double> refl_weight;
  };
  SceneGeometry precomputeScene(const ScattererList& dynamic) const;
  /// In-place variant for hot loops: refills `out` reusing its buffers, so
  /// a caller cycling through scenes performs no allocations at steady
  /// state.
  void precomputeScene(const ScattererList& dynamic, SceneGeometry& out) const;

  /// evaluateCached() with the scene geometry precomputed — same result,
  /// minus the per-call antenna-gain and distance recomputation.  `geometry`
  /// must come from precomputeScene() on the same scene (and a model with
  /// the same antenna and environment).
  ChannelSnapshot evaluateCached(const TagEndpoint& tag,
                                 const StaticTagChannel& cache,
                                 const ScattererList& dynamic,
                                 const SceneGeometry& geometry) const;

  /// Cheap conservative lower bound on |forward| with the given dynamic
  /// scatterers present: the static part (blocked LOS + reflections) is
  /// exact, while every dynamic scattering / parasitic term is assumed
  /// fully destructive with antenna gain capped at the peak.  Costs a
  /// handful of square roots instead of the trigonometry of a full
  /// evaluation, and is sound:
  ///   forwardAmpLowerBound(...) <= |evaluateCached(...).forward|
  /// always holds.  Returns 0 when no useful bound exists (e.g. `cache`
  /// lacks precomputed reflector terms), so callers use it as
  ///   if (bound is already enough) { skip the full evaluation }
  /// which cannot change any decision, only avoid work.  The reader's
  /// forward-link (tag powered?) test is the intended consumer: tags sit
  /// tens of dB above IC sensitivity, so the bound almost always decides.
  double forwardAmpLowerBound(const TagEndpoint& tag,
                              const StaticTagChannel& cache,
                              const ScattererList& dynamic) const;

  /// forwardAmpLowerBound() with precomputed scene geometry (hot path).
  double forwardAmpLowerBound(const TagEndpoint& tag,
                              const StaticTagChannel& cache,
                              const ScattererList& dynamic,
                              const SceneGeometry& geometry) const;

  /// The near-field detune amplitude factor for this tag under the given
  /// dynamic scene — identical to the `detune` field a full evaluation
  /// would report, at the cost of one distance per scatterer.  Combined
  /// with forwardAmpLowerBound() it yields a sound lower bound on the
  /// backscatter power (the reader's decodability fast path).
  double detuneFactor(const TagEndpoint& tag,
                      const ScattererList& dynamic) const;

  /// Number of full static precomputes this model has performed (memo
  /// misses included; memo hits excluded).  Regression hook for tests: a
  /// hot loop over evaluate() must not grow this per call.
  std::uint64_t precomputeCount() const {
    return precompute_calls_.load(std::memory_order_relaxed);
  }

  /// Incident power (W) available at the tag for a given transmit power.
  /// Forward-link limited operation (paper §IV-B3) compares this to the tag
  /// IC sensitivity.
  double incidentPowerW(const ChannelSnapshot& snap, double txPowerW) const;

  /// Power (W) of the backscattered signal arriving back at the reader,
  /// given transmit power and the tag's modulation (backscatter) efficiency.
  double backscatterPowerW(const ChannelSnapshot& snap, double txPowerW,
                           double modulationEfficiency) const;

  /// Near-field detuning parameters: a hand within ~σ of a tag suppresses
  /// its backscatter by up to `kDetuneDepth` (amplitude), producing the RSS
  /// troughs the direction estimator relies on (§III-B).  Public so the
  /// batched SoA kernels (rf/channel_batch.*) mirror the same model.
  static constexpr double kDetuneDepth = 0.55;
  static constexpr double kDetuneSigma = 0.055;  // metres

 private:
  Complex parasiticGain(const PointScatterer& dyn, const PointScatterer& stat,
                        const TagEndpoint& tag) const;
  const StaticTagChannel& memoisedStatic(const TagEndpoint& tag) const;

  CarrierConfig carrier_;
  DirectionalAntenna antenna_;
  MultipathEnvironment env_;

  /// Memo for evaluate(): static channel per distinct tag endpoint.  A
  /// deque keeps references stable across insertions; the mutex makes the
  /// memo safe under the parallel trial runners (models are usually copied
  /// per worker, but shared use must not race).
  struct MemoEntry {
    TagEndpoint key;
    StaticTagChannel value;
  };
  mutable Mutex memo_mutex_;
  /// Bounded by the scenario's distinct tag endpoints (one entry per tag
  /// position, ~array size) — lookups for a known key never insert.
  mutable std::deque<MemoEntry> static_memo_ RFIPAD_GUARDED_BY(memo_mutex_);
  mutable std::atomic<std::uint64_t> precompute_calls_{0};
};

}  // namespace rfipad::rf
