// Batched channel evaluation over a TagBatch: the SoA/SIMD counterpart of
// ChannelModel's per-tag scalar path.
//
// Two kernels cover the reader's hot loops:
//
//  * computeBounds(): for a whole batch (or one tag), the conservative
//    forward-amplitude lower bound and the exact detune factor — the
//    quantities behind the Gen2 powered/decodable predicates.  Tiered
//    scalar/AVX2/NEON with bit-for-bit identical lanes (see vmath.hpp).
//
//  * evaluateTagFast(): the full complex channel snapshot for one tag —
//    the per-singulation measurement path.  Single implementation that
//    gathers every scattering term's amplitude/phase into flat arrays,
//    runs the batched sincos kernel over them, and accumulates the
//    complex baseband with FMA.
//
// Both consume a FlatScene: the per-instant dynamic scene (hand + arm)
// flattened into scalar planes with the divisions and dB constants
// hoisted, rebuilt in place each time the scene moves (no steady-state
// allocation).  Results agree with ChannelModel::evaluateCached /
// forwardAmpLowerBound to ~1e-12 relative (polynomial transcendentals
// and re-associated arithmetic), which the property tests pin down; the
// scalar-vs-SIMD agreement is exact.
#pragma once

#include <cstddef>

#include "common/simd_dispatch.hpp"
#include "rf/channel.hpp"
#include "rf/tag_batch.hpp"

namespace rfipad::rf {

/// Scene-dependent, tag-independent planes for one instant.
struct FlatScene {
  std::size_t count = 0;           ///< dynamic scatterers
  std::size_t num_reflectors = 0;  ///< environment reflectors
  double ax = 0.0, ay = 0.0, az = 0.0;  ///< antenna position

  // Per-scatterer planes (length count).
  std::vector<double> sx, sy, sz;
  /// Effective blockage depth in dB: blockage_depth_db when the scatterer
  /// blocks LOS, exactly 0 otherwise (so the kernel needs no branch).
  std::vector<double> depth_db;
  std::vector<double> inv_r2;  ///< 1 / blockage_radius²
  std::vector<double> refl_phase;
  std::vector<double> gain_toward;  ///< antenna linear gain toward scatterer
  std::vector<double> d1;           ///< reader→scatterer distance (floored)
  std::vector<double> base;         ///< √(σ/4π)/(4π·d1)
  /// Scatterer→reflector distances, [scatterer·num_reflectors + r].
  std::vector<double> d2r;
  /// Per-reflector Σ_j base_j/d2r_jr (the collapsed bound double-loop).
  std::vector<double> refl_weight;

  /// True once gain_toward holds values for the current geometry.  The
  /// bounds kernel never reads gains, so buildGeometry() leaves them
  /// stale; the snapshot path calls fillGains() on first use per instant.
  bool gains_valid = false;

  /// Refill from a scene, reusing capacity (alloc-free at steady state).
  /// Equivalent to buildGeometry() + fillGains().
  void build(const ChannelModel& model, const ScattererList& scene);
  /// Everything except the gain_toward plane (all the bounds kernel needs).
  void buildGeometry(const ChannelModel& model, const ScattererList& scene);
  /// Antenna gain toward each scatterer, tier-dispatched so the polynomial
  /// acos/exp chain runs with hardware FMA where available (identical bits
  /// on every tier — fma is correctly rounded in hardware and software).
  void fillGains(const ChannelModel& model);
};

/// Inputs/outputs of the bounds kernel for one (batch, scene, channel).
struct BoundsArgs {
  const TagBatch* tags = nullptr;
  const FlatScene* scene = nullptr;
  std::size_t channel = 0;
  double lambda = 0.0;  ///< carrier wavelength of that channel
  /// Outputs, length ≥ tags->stride.
  double* amp_lo = nullptr;
  double* detune = nullptr;
};

/// Fill amp_lo/detune for tags in [begin, end) on the active tier.
void computeBounds(const BoundsArgs& args, std::size_t begin, std::size_t end);
/// Same, on an explicit tier (property tests / benches).
void computeBoundsTier(simd::Tier t, const BoundsArgs& args, std::size_t begin,
                       std::size_t end);

/// Scattering terms evaluateTagFast() can hold on the stack; scenes beyond
/// this (count·(1+num_reflectors) terms) must use the exact scalar path.
inline constexpr std::size_t kMaxFastTerms = 64;

/// Full channel snapshot for one tag — amplitudes/phases of every dynamic
/// term batched through the sincos kernel, complex accumulate with FMA.
/// Requires count·(1+num_reflectors) ≤ kMaxFastTerms.
ChannelSnapshot evaluateTagFast(const TagBatch& tags, std::size_t channel,
                                std::size_t tag, const FlatScene& scene,
                                double lambda, double wave_number);

}  // namespace rfipad::rf
