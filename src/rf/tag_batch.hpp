// Structure-of-arrays view of a tag array for the batched channel kernels.
//
// The reader's hot loops (Gen2 Query power checks, decodability checks,
// per-singulation measurement) evaluate the same physics for every tag of
// the array against one shared dynamic scene.  The AoS layout — a vector
// of Tag objects, each holding a Vec3 and a per-channel StaticTagChannel —
// scatters those reads across the heap; this container transposes them
// into contiguous double planes (positions, gains, static complex channel,
// parasitic reflector legs) so the kernels in channel_batch.* stream them
// with unit-stride vector loads.
//
// Planes are padded to a multiple of the widest vector width (4 doubles)
// by replicating the last tag, so kernels never read past an allocation
// and never need a masked load; padded-lane results are ignored.
#pragma once

#include <cstddef>
#include <vector>

#include "rf/channel.hpp"

namespace rfipad::rf {

struct TagBatch {
  std::size_t count = 0;   ///< real tags
  std::size_t stride = 0;  ///< count rounded up to a multiple of 4

  // Per-tag planes, length `stride`.
  std::vector<double> px, py, pz;
  std::vector<double> gain_linear;
  std::vector<double> polarization_loss;
  /// √(peak antenna gain · tag gain · polarisation): the capped-gain factor
  /// of the forward-amplitude lower bound.
  std::vector<double> sqrt_gain_peak;

  /// Static-channel planes for one hop channel.
  struct ChannelPlanes {
    std::vector<double> los_re, los_im;    ///< unblocked LOS term
    std::vector<double> refl_re, refl_im;  ///< static reflector sum
    std::size_t num_reflectors = 0;
    /// Reflector→tag parasitic legs, [reflector][stride] row-major:
    /// amplitude and phase of StaticTagChannel::ReflectorTerm.
    std::vector<double> rt_amp, rt_phase;
  };
  std::vector<ChannelPlanes> channels;

  /// Transpose the per-tag endpoints and the reader's per-channel static
  /// caches into planes.  `caches[ch][tag]` must carry reflector terms for
  /// every environment reflector (true for caches from precompute()).
  void build(const std::vector<TagEndpoint>& endpoints,
             double peak_gain_linear,
             const std::vector<std::vector<ChannelModel::StaticTagChannel>>&
                 caches);

  bool empty() const { return count == 0; }
};

}  // namespace rfipad::rf
