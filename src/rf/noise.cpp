#include "rf/noise.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"
#include "common/vkernels.hpp"

namespace rfipad::rf {

NoiseModel::NoiseModel(NoiseParams params) : params_(params) {}

double NoiseModel::snrLinear(double rxPowerDbm) const {
  const double snr_db = rxPowerDbm - params_.noise_floor_dbm;
  // Clamp to avoid degenerate σ at absurd link budgets.  The dispatched
  // exp10 kernel replaces libm pow on this per-sample path (≤1 ulp apart).
  return vk::exp10(std::clamp(snr_db, -10.0, 60.0) / 10.0);
}

double NoiseModel::phaseStd(double rxPowerDbm, double tagFlicker,
                            double envFlicker) const {
  // Phase jitter of a noisy phasor: σ ≈ 1/sqrt(2·SNR) for moderate SNR.
  const double thermal = 1.0 / std::sqrt(2.0 * snrLinear(rxPowerDbm));
  const double flicker = params_.base_flicker_rad * tagFlicker * envFlicker;
  return std::sqrt(thermal * thermal + flicker * flicker);
}

double NoiseModel::tagMarginStd(double marginDb) const {
  const double m = std::max(marginDb, 0.0);
  return params_.tag_margin_coeff * vk::exp10(-m / 20.0);
}

double NoiseModel::rssStdDb(double rxPowerDbm, double tagFlicker,
                            double envFlicker) const {
  // Amplitude jitter σ_A/A ≈ 1/sqrt(2·SNR) → dB via 10/ln10 · 2σ_A/A.
  const double rel = 1.0 / std::sqrt(2.0 * snrLinear(rxPowerDbm));
  const double thermal_db = 20.0 / std::log(10.0) * rel;
  const double flicker_db =
      params_.base_rss_flicker_db * std::sqrt(tagFlicker * envFlicker);
  return std::sqrt(thermal_db * thermal_db + flicker_db * flicker_db);
}

}  // namespace rfipad::rf
