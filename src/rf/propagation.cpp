#include "rf/propagation.hpp"

#include <cmath>
#include <stdexcept>

#include "common/angles.hpp"

namespace rfipad::rf {

namespace {
constexpr double kFourPi = 4.0 * kPi;
// Guard against division blow-ups when a scatterer coincides with an
// endpoint; physically the near field saturates, so clamp path lengths.
constexpr double kMinDistance = 0.01;  // 1 cm
}  // namespace

Complex freeSpaceFactor(double distance_m, const CarrierConfig& carrier) {
  const double d = std::max(distance_m, kMinDistance);
  const double lambda = carrier.wavelengthM();
  const double amp = lambda / (kFourPi * d);
  const double phase = -carrier.waveNumber() * d;
  return std::polar(amp, phase);
}

Complex losGain(const DirectionalAntenna& ant, Vec3 rxPos, double rxGain,
                double polarizationLoss, const CarrierConfig& carrier) {
  if (rxGain < 0.0) throw std::invalid_argument("losGain: negative rxGain");
  const double d = distance(ant.position(), rxPos);
  const double g = ant.gainToward(rxPos) * rxGain * polarizationLoss;
  return std::sqrt(g) * freeSpaceFactor(d, carrier);
}

Complex scatteredGain(const DirectionalAntenna& ant, Vec3 scattererPos,
                      double rcs_m2, double extraPhase, Vec3 rxPos,
                      double rxGain, double polarizationLoss,
                      const CarrierConfig& carrier) {
  if (rcs_m2 < 0.0) throw std::invalid_argument("scatteredGain: negative RCS");
  const double lambda = carrier.wavelengthM();
  const double d1 = std::max(distance(ant.position(), scattererPos), kMinDistance);
  const double d2 = std::max(distance(scattererPos, rxPos), kMinDistance);
  // Bistatic radar amplitude: sqrt(Gtx·Grx·pol) · λ/(4π d1) · sqrt(σ/4π)/d2.
  const double g = ant.gainToward(scattererPos) * rxGain * polarizationLoss;
  const double amp = std::sqrt(g) * (lambda / (kFourPi * d1)) *
                     std::sqrt(rcs_m2 / kFourPi) / d2;
  const double phase = -carrier.waveNumber() * (d1 + d2) + extraPhase;
  return std::polar(amp, phase);
}

}  // namespace rfipad::rf
