#include "rf/tag_batch.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace rfipad::rf {

namespace {
constexpr std::size_t kPad = 4;  // widest vector width in doubles

std::size_t roundUp(std::size_t n) { return (n + kPad - 1) / kPad * kPad; }
}  // namespace

void TagBatch::build(
    const std::vector<TagEndpoint>& endpoints, double peak_gain_linear,
    const std::vector<std::vector<ChannelModel::StaticTagChannel>>& caches) {
  count = endpoints.size();
  stride = roundUp(count);
  RFIPAD_ASSERT(count > 0, "TagBatch: empty endpoint list");

  const auto plane = [&](std::vector<double>& v) { v.assign(stride, 0.0); };
  plane(px);
  plane(py);
  plane(pz);
  plane(gain_linear);
  plane(polarization_loss);
  plane(sqrt_gain_peak);
  for (std::size_t i = 0; i < stride; ++i) {
    // Padding replicates the last tag: harmless values the kernels compute
    // and discard, never inf/nan that could trip FP exception accounting.
    const TagEndpoint& e = endpoints[i < count ? i : count - 1];
    px[i] = e.position.x;
    py[i] = e.position.y;
    pz[i] = e.position.z;
    gain_linear[i] = e.gain_linear;
    polarization_loss[i] = e.polarization_loss;
    sqrt_gain_peak[i] =
        std::sqrt(peak_gain_linear * e.gain_linear * e.polarization_loss);
  }

  channels.assign(caches.size(), ChannelPlanes{});
  for (std::size_t ch = 0; ch < caches.size(); ++ch) {
    const auto& cache = caches[ch];
    RFIPAD_ASSERT(cache.size() == count,
                  "TagBatch: cache/endpoint count mismatch");
    ChannelPlanes& cp = channels[ch];
    cp.num_reflectors = cache.empty() ? 0 : cache[0].reflector_terms.size();
    plane(cp.los_re);
    plane(cp.los_im);
    plane(cp.refl_re);
    plane(cp.refl_im);
    cp.rt_amp.assign(cp.num_reflectors * stride, 0.0);
    cp.rt_phase.assign(cp.num_reflectors * stride, 0.0);
    for (std::size_t i = 0; i < stride; ++i) {
      const auto& c = cache[i < count ? i : count - 1];
      RFIPAD_ASSERT(c.reflector_terms.size() == cp.num_reflectors,
                    "TagBatch: ragged reflector terms");
      cp.los_re[i] = c.los.real();
      cp.los_im[i] = c.los.imag();
      cp.refl_re[i] = c.reflections.real();
      cp.refl_im[i] = c.reflections.imag();
      for (std::size_t r = 0; r < cp.num_reflectors; ++r) {
        cp.rt_amp[r * stride + i] = c.reflector_terms[r].amp;
        cp.rt_phase[r * stride + i] = c.reflector_terms[r].phase;
      }
    }
  }
}

}  // namespace rfipad::rf
