#include "rf/antenna.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/angles.hpp"
#include "common/units.hpp"

namespace rfipad::rf {

DirectionalAntenna::DirectionalAntenna(Vec3 position, Vec3 boresight,
                                       double gain_dbi)
    : position_(position), gain_dbi_(gain_dbi) {
  if (boresight.norm() <= 0.0)
    throw std::invalid_argument("DirectionalAntenna: zero boresight");
  boresight_ = boresight.normalized();
  peak_gain_ = dbToLinear(gain_dbi_);
  // Eq. 14: θ_beam ≈ sqrt(4π/G).  This is the *full* beam angle.
  beamwidth_rad_ = std::sqrt(4.0 * kPi / peak_gain_);
}

double DirectionalAntenna::beamwidthDeg() const {
  return beamwidth_rad_ * 180.0 / kPi;
}

double DirectionalAntenna::offAxisAngle(Vec3 point) const {
  const Vec3 dir = (point - position_).normalized();
  const double c = std::clamp(dir.dot(boresight_), -1.0, 1.0);
  return std::acos(c);
}

double DirectionalAntenna::gainAtAngle(double angle_rad) const {
  // Gaussian mainlobe: −3 dB at half the full beam angle.
  const double half = beamwidth_rad_ / 2.0;
  const double x = angle_rad / half;
  const double mainlobe = std::exp(-std::numbers::ln2_v<double> * x * x);
  return peak_gain_ * std::max(mainlobe, kSidelobeFloor);
}

double DirectionalAntenna::gainToward(Vec3 point) const {
  return gainAtAngle(offAxisAngle(point));
}

}  // namespace rfipad::rf
