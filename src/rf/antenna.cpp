#include "rf/antenna.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/angles.hpp"
#include "common/units.hpp"
#include "common/vmath.hpp"

namespace rfipad::rf {

DirectionalAntenna::DirectionalAntenna(Vec3 position, Vec3 boresight,
                                       double gain_dbi)
    : position_(position), gain_dbi_(gain_dbi) {
  if (boresight.norm() <= 0.0)
    throw std::invalid_argument("DirectionalAntenna: zero boresight");
  boresight_ = boresight.normalized();
  peak_gain_ = dbToLinear(gain_dbi_);
  // Eq. 14: θ_beam ≈ sqrt(4π/G).  This is the *full* beam angle.
  beamwidth_rad_ = std::sqrt(4.0 * kPi / peak_gain_);
}

double DirectionalAntenna::beamwidthDeg() const {
  return beamwidth_rad_ * 180.0 / kPi;
}

}  // namespace rfipad::rf
