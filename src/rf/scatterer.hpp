// Point scatterers: the moving hand ("a powerful virtual transmitter",
// paper §III-A1), the trailing arm, and static environment reflectors
// (walls, tables) that constitute multipath.
#pragma once

#include <vector>

#include "common/vec.hpp"

namespace rfipad::rf {

struct PointScatterer {
  Vec3 position;
  /// Bistatic radar cross section, m².  A human hand at UHF is on the order
  /// of 0.005–0.03 m²; a forearm somewhat larger but usually farther away.
  double rcs_m2 = 0.0;
  /// Reflection phase of the scattering surface, radians.
  double reflection_phase = 0.0;
  /// Whether this scatterer also shadows line-of-sight paths that graze it
  /// (true for body parts, false for specular wall images).
  bool blocks_los = true;
  /// Effective blockage radius for the shadowing test, metres.
  double blockage_radius = 0.05;
  /// Maximum attenuation of a fully blocked LOS path, dB (power).
  double blockage_depth_db = 8.0;
};

using ScattererList = std::vector<PointScatterer>;

/// Power attenuation factor (linear, in (0,1]) a scatterer imposes on the
/// direct path from `a` to `b`.  Smooth knife-edge-like roll-off: deepest
/// when the scatterer sits on the segment, negligible beyond a couple of
/// blockage radii of clearance.
double blockageFactor(const PointScatterer& s, Vec3 a, Vec3 b);

/// Combined attenuation from a list of scatterers (independent screens).
double combinedBlockage(const ScattererList& list, Vec3 a, Vec3 b);

}  // namespace rfipad::rf
