// Directional reader antenna with the idealised gain model the paper uses
// (§IV-B3, Eqs. 13–14): an antenna of gain G radiates into a solid angle
// Ωs ≈ 4π/G, giving a half-power beamwidth θ_beam ≈ sqrt(4π/G).
//
// We realise that as a Gaussian beam around the boresight with a sidelobe
// floor, which reproduces both the paper's 72° beam for the 8 dBi Laird
// antenna and the accuracy loss when the panel is tilted (Fig. 18).
#pragma once

#include <algorithm>
#include <numbers>

#include "common/vec.hpp"
#include "common/vmath.hpp"

namespace rfipad::rf {

class DirectionalAntenna {
 public:
  /// `boresight` need not be normalised; it must be non-zero.
  DirectionalAntenna(Vec3 position, Vec3 boresight, double gain_dbi);

  const Vec3& position() const { return position_; }
  const Vec3& boresight() const { return boresight_; }
  double gainDbi() const { return gain_dbi_; }
  double peakGainLinear() const { return peak_gain_; }

  /// Full beamwidth from Eq. 14, degrees (≈72° for 8 dBi).
  double beamwidthDeg() const;

  /// Linear gain toward an arbitrary point in space.
  ///
  /// Inline (with the other gain functions below) so each caller's TU
  /// compiles the vm:: polynomial chain with its own codegen flags — the
  /// tier-dispatched FlatScene gain fill gets hardware FMA while portable
  /// TUs fall back to libm fma.  Both are correctly rounded, so every copy
  /// returns identical bits.
  double gainToward(Vec3 point) const {
    return gainAtAngle(offAxisAngle(point));
  }

  /// Linear gain at an off-boresight angle (radians).
  double gainAtAngle(double angle_rad) const {
    // Gaussian mainlobe: −3 dB at half the full beam angle.
    const double half = beamwidth_rad_ / 2.0;
    const double x = angle_rad / half;
    const double mainlobe =
        vm::expT<vm::ScalarBackend>(-std::numbers::ln2_v<double> * x * x);
    return peak_gain_ * std::max(mainlobe, kSidelobeFloor);
  }

  /// Angle between boresight and the direction to `point`, radians.
  double offAxisAngle(Vec3 point) const {
    // One division instead of normalizing the whole vector; the polynomial
    // acos is ~8e-15 rad from libm and an order of magnitude cheaper —
    // this runs per scatterer per slot inside FlatScene gain fills.
    const Vec3 d = point - position_;
    const double n = d.norm();
    const double c = std::clamp(d.dot(boresight_) / n, -1.0, 1.0);
    return vm::acosT<vm::ScalarBackend>(c);
  }

 private:
  Vec3 position_;
  Vec3 boresight_;
  double gain_dbi_;
  double peak_gain_;
  double beamwidth_rad_;

  /// Sidelobe/backlobe floor relative to peak (linear).  −20 dB is typical
  /// for panel antennas like the Laird A9028.
  static constexpr double kSidelobeFloor = 0.01;
};

}  // namespace rfipad::rf
