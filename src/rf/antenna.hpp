// Directional reader antenna with the idealised gain model the paper uses
// (§IV-B3, Eqs. 13–14): an antenna of gain G radiates into a solid angle
// Ωs ≈ 4π/G, giving a half-power beamwidth θ_beam ≈ sqrt(4π/G).
//
// We realise that as a Gaussian beam around the boresight with a sidelobe
// floor, which reproduces both the paper's 72° beam for the 8 dBi Laird
// antenna and the accuracy loss when the panel is tilted (Fig. 18).
#pragma once

#include "common/vec.hpp"

namespace rfipad::rf {

class DirectionalAntenna {
 public:
  /// `boresight` need not be normalised; it must be non-zero.
  DirectionalAntenna(Vec3 position, Vec3 boresight, double gain_dbi);

  const Vec3& position() const { return position_; }
  const Vec3& boresight() const { return boresight_; }
  double gainDbi() const { return gain_dbi_; }
  double peakGainLinear() const { return peak_gain_; }

  /// Full beamwidth from Eq. 14, degrees (≈72° for 8 dBi).
  double beamwidthDeg() const;

  /// Linear gain toward an arbitrary point in space.
  double gainToward(Vec3 point) const;

  /// Linear gain at an off-boresight angle (radians).
  double gainAtAngle(double angle_rad) const;

  /// Angle between boresight and the direction to `point`, radians.
  double offAxisAngle(Vec3 point) const;

 private:
  Vec3 position_;
  Vec3 boresight_;
  double gain_dbi_;
  double peak_gain_;
  double beamwidth_rad_;

  /// Sidelobe/backlobe floor relative to peak (linear).  −20 dB is typical
  /// for panel antennas like the Laird A9028.
  static constexpr double kSidelobeFloor = 0.01;
};

}  // namespace rfipad::rf
