// Inter-tag coupling ("shadow effect"): a tag close to another tag absorbs
// and re-scatters energy, suppressing its neighbour's received power
// (paper §IV-B, Figs. 11–12).
//
// The model follows the paper's empirical findings:
//  * within the near-field region (d < λ/2π ≈ 5.2 cm) and with both antennas
//    facing the same way, the target tag's RSS drops sharply — possibly
//    below the IC threshold;
//  * facing the pair in opposite directions largely removes the suppression;
//  * beyond ~12 cm (2λ/2π) the coupling is negligible;
//  * the magnitude scales with the testing tag's unmodulated radar
//    scattering cross-section (RCS): small-antenna tags (Impinj AZ-E53,
//    "Tag B") disturb far less than large ones ("Tag D").
#pragma once

namespace rfipad::rf {

enum class TagFacing {
  kSame,      ///< both antennas toward the reader — worst case
  kOpposite,  ///< alternating orientation — recommended deployment
};

/// Electrical coupling parameters of a tag *as an interferer*.
struct CouplingParams {
  /// Unmodulated RCS of the interfering tag, m².  Reference value 0.005 m²
  /// corresponds to a mid-size inlay.
  double rcs_m2 = 0.005;
};

/// RSS change (dB, ≤ 0) induced on a target tag by one interfering tag at
/// centre-to-centre distance `distance_m`.
double pairShadowDb(double distance_m, TagFacing facing,
                    const CouplingParams& interferer);

/// Aggregate RSS change (dB, ≤ 0) at a target tag placed directly behind an
/// array of `rows` × `cols` identical tags at pitch `spacing_m` (the Fig. 12
/// deployment: reader — array — target).  Columns closer to the target
/// dominate; the effect grows with both dimensions and with the tag RCS.
double arrayShadowDb(int rows, int cols, double spacing_m, TagFacing facing,
                     const CouplingParams& interferer);

}  // namespace rfipad::rf
