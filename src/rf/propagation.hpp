// Free-space propagation and bistatic scattering primitives.
//
// All channel quantities are complex *amplitude* gains: the one-way power
// gain is |h|², and a monostatic backscatter round trip is h² (reciprocal
// channel traversed twice), which is exactly why the reader-reported phase
// advances by 2π per λ/2 of range — the 4πd/λ term in the paper's Eq. 6/7.
#pragma once

#include <complex>

#include "common/vec.hpp"
#include "rf/antenna.hpp"
#include "rf/carrier.hpp"

namespace rfipad::rf {

using Complex = std::complex<double>;

/// Complex one-way amplitude gain of the direct (line-of-sight) path from a
/// reader antenna to a point receiver with linear gain `rxGain`.
/// `polarizationLoss` is the linear power factor for the circular→linear
/// mismatch (0.5, i.e. −3 dB, for a circularly polarised panel and a dipole
/// tag).
Complex losGain(const DirectionalAntenna& ant, Vec3 rxPos, double rxGain,
                double polarizationLoss, const CarrierConfig& carrier);

/// Complex amplitude gain of a single-bounce scattered path
/// antenna → scatterer → receiver.  The scatterer is modelled as a point
/// target with bistatic radar cross section `rcs_m2`; `extraPhase` captures
/// the reflection phase of the scattering surface.
Complex scatteredGain(const DirectionalAntenna& ant, Vec3 scattererPos,
                      double rcs_m2, double extraPhase, Vec3 rxPos,
                      double rxGain, double polarizationLoss,
                      const CarrierConfig& carrier);

/// One-way free-space amplitude factor λ/(4πd) with propagation phase.
Complex freeSpaceFactor(double distance_m, const CarrierConfig& carrier);

}  // namespace rfipad::rf
