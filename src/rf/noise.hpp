// Measurement noise for reader-reported phase and RSS.
//
// Two regimes add in quadrature:
//  * thermal noise at the reader receiver — depends on the backscatter
//    power, so it grows when TX power, distance, or antenna angle degrade
//    the link budget (drives Figs. 17–19);
//  * environmental flicker — slow multipath jitter that differs per tag and
//    per location (the "Deviation bias" of Fig. 5, drives Fig. 16).
#pragma once

namespace rfipad::rf {

struct NoiseParams {
  /// Effective reader receive noise floor, dBm.  Includes carrier-leakage
  /// residue after self-jammer cancellation (the dominant impairment on
  /// monostatic readers), so it is far above thermal kTB.
  double noise_floor_dbm = -52.0;
  /// Tag-response degradation near the IC threshold: extra phase noise
  /// sigma = tag_margin_coeff * 10^(-margin_dB/20), where margin is the
  /// incident power above the IC sensitivity.  Captures the paper's Fig. 17
  /// finding that higher reader power makes the hand's influence more
  /// distinct.
  double tag_margin_coeff = 0.5;
  /// Baseline environmental phase flicker, radians (1σ), for a tag with
  /// unit deviation-bias multiplier in a unit-flicker environment.
  double base_flicker_rad = 0.035;
  /// Baseline RSS flicker, dB (1σ).
  double base_rss_flicker_db = 0.35;
  /// Doppler estimate noise, Hz (1σ) — large, per Fig. 2(a).
  double doppler_noise_hz = 0.8;
};

class NoiseModel {
 public:
  explicit NoiseModel(NoiseParams params = {});

  const NoiseParams& params() const { return params_; }

  /// Phase noise standard deviation (radians) for a read whose backscatter
  /// reaches the reader at `rxPowerDbm`, from a tag with deviation-bias
  /// multiplier `tagFlicker` in an environment with flicker scale
  /// `envFlicker`.
  double phaseStd(double rxPowerDbm, double tagFlicker, double envFlicker) const;

  /// RSS noise standard deviation in dB for the same read.
  double rssStdDb(double rxPowerDbm, double tagFlicker, double envFlicker) const;

  double dopplerStdHz() const { return params_.doppler_noise_hz; }

  /// Extra phase noise (radians, 1σ) from a tag operating `marginDb` above
  /// its IC sensitivity — degrades as the margin shrinks.
  double tagMarginStd(double marginDb) const;

 private:
  double snrLinear(double rxPowerDbm) const;

  NoiseParams params_;
};

}  // namespace rfipad::rf
