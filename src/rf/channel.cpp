#include "rf/channel.hpp"

#include <cmath>

#include "common/angles.hpp"

namespace rfipad::rf {

ChannelModel::ChannelModel(CarrierConfig carrier, DirectionalAntenna antenna,
                           MultipathEnvironment env)
    : carrier_(carrier), antenna_(std::move(antenna)), env_(std::move(env)) {}

Complex ChannelModel::parasiticGain(const PointScatterer& dyn,
                                    const PointScatterer& stat,
                                    const TagEndpoint& tag) const {
  // Double bounce reader → dyn → stat → tag.  Amplitude composes the
  // bistatic factors of both hops; phase accumulates along the full path.
  const double lambda = carrier_.wavelengthM();
  const double four_pi = 4.0 * kPi;
  const double d1 = std::max(distance(antenna_.position(), dyn.position), 0.01);
  const double d2 = std::max(distance(dyn.position, stat.position), 0.05);
  const double d3 = std::max(distance(stat.position, tag.position), 0.05);
  const double g = antenna_.gainToward(dyn.position) * tag.gain_linear *
                   tag.polarization_loss;
  const double amp = std::sqrt(g) * (lambda / (four_pi * d1)) *
                     (std::sqrt(dyn.rcs_m2 / four_pi) / d2) *
                     (std::sqrt(stat.rcs_m2 / four_pi) / d3) *
                     env_.parasitic_scale;
  const double phase = -carrier_.waveNumber() * (d1 + d2 + d3) +
                       dyn.reflection_phase + stat.reflection_phase;
  return std::polar(amp, phase);
}

ChannelModel::StaticTagChannel ChannelModel::precompute(
    const TagEndpoint& tag) const {
  StaticTagChannel cache;
  cache.los = losGain(antenna_, tag.position, tag.gain_linear,
                      tag.polarization_loss, carrier_);
  cache.reflections = {0.0, 0.0};
  for (const auto& r : env_.reflectors) {
    cache.reflections +=
        scatteredGain(antenna_, r.position, r.rcs_m2, r.reflection_phase,
                      tag.position, tag.gain_linear, tag.polarization_loss,
                      carrier_);
  }
  return cache;
}

ChannelSnapshot ChannelModel::evaluate(const TagEndpoint& tag,
                                       const ScattererList& dynamic) const {
  return evaluateCached(tag, precompute(tag), dynamic);
}

ChannelSnapshot ChannelModel::evaluateCached(const TagEndpoint& tag,
                                             const StaticTagChannel& cache,
                                             const ScattererList& dynamic) const {
  ChannelSnapshot snap;

  // Direct path, attenuated by any body part grazing the LOS segment.
  const double block = combinedBlockage(dynamic, antenna_.position(), tag.position);
  Complex h = std::sqrt(block) * cache.los + cache.reflections;

  // Hand / arm scattering: the "virtual transmitter" of §III-A1.
  double detune = 1.0;
  for (const auto& s : dynamic) {
    h += scatteredGain(antenna_, s.position, s.rcs_m2, s.reflection_phase,
                       tag.position, tag.gain_linear, tag.polarization_loss,
                       carrier_);
    for (const auto& r : env_.reflectors) {
      h += parasiticGain(s, r, tag);
    }
    // Near-field detuning when a body scatterer hovers right over the tag.
    const double dist = distance(s.position, tag.position);
    const double x = dist / kDetuneSigma;
    detune *= 1.0 - kDetuneDepth * std::exp(-x * x);
  }

  snap.forward = h;
  snap.detune = detune;
  return snap;
}

double ChannelModel::incidentPowerW(const ChannelSnapshot& snap,
                                    double txPowerW) const {
  return txPowerW * std::norm(snap.forward);
}

double ChannelModel::backscatterPowerW(const ChannelSnapshot& snap,
                                       double txPowerW,
                                       double modulationEfficiency) const {
  // Round trip |forward|⁴ with the tag's modulation efficiency and any
  // near-field detune applied (amplitude factor → squared in power, and the
  // backscatter traverses the detuned antenna twice).
  const double fwd2 = std::norm(snap.forward);
  const double det2 = snap.detune * snap.detune;
  return txPowerW * fwd2 * fwd2 * modulationEfficiency * det2 * det2;
}

}  // namespace rfipad::rf
