#include "rf/channel.hpp"

#include <cmath>

#include "common/angles.hpp"
#include "common/contracts.hpp"
#include "common/mutex.hpp"

namespace rfipad::rf {

namespace {
/// Memo capacity: far above any realistic tag count.  Once full, further
/// distinct endpoints are computed into thread-local scratch instead of
/// evicting (eviction would invalidate references other threads may hold).
constexpr std::size_t kMemoCapacity = 4096;
}  // namespace

ChannelModel::ChannelModel(CarrierConfig carrier, DirectionalAntenna antenna,
                           MultipathEnvironment env)
    : carrier_(carrier), antenna_(std::move(antenna)), env_(std::move(env)) {}

ChannelModel::ChannelModel(const ChannelModel& other)
    : carrier_(other.carrier_), antenna_(other.antenna_), env_(other.env_) {}

ChannelModel::ChannelModel(ChannelModel&& other) noexcept
    : carrier_(other.carrier_),
      antenna_(std::move(other.antenna_)),
      env_(std::move(other.env_)) {}

ChannelModel& ChannelModel::operator=(const ChannelModel& other) {
  if (this == &other) return *this;
  carrier_ = other.carrier_;
  antenna_ = other.antenna_;
  env_ = other.env_;
  MutexLock lock(memo_mutex_);
  static_memo_.clear();
  return *this;
}

ChannelModel& ChannelModel::operator=(ChannelModel&& other) noexcept {
  if (this == &other) return *this;
  carrier_ = other.carrier_;
  antenna_ = std::move(other.antenna_);
  env_ = std::move(other.env_);
  MutexLock lock(memo_mutex_);
  static_memo_.clear();
  return *this;
}

void ChannelModel::setEnvironment(MultipathEnvironment env) {
  // Setup-time operation: must not race with concurrent evaluate() calls.
  MutexLock lock(memo_mutex_);
  env_ = std::move(env);
  static_memo_.clear();
}

Complex ChannelModel::parasiticGain(const PointScatterer& dyn,
                                    const PointScatterer& stat,
                                    const TagEndpoint& tag) const {
  // Double bounce reader → dyn → stat → tag.  Amplitude composes the
  // bistatic factors of both hops; phase accumulates along the full path.
  const double lambda = carrier_.wavelengthM();
  const double four_pi = 4.0 * kPi;
  const double d1 = std::max(distance(antenna_.position(), dyn.position), 0.01);
  const double d2 = std::max(distance(dyn.position, stat.position), 0.05);
  const double d3 = std::max(distance(stat.position, tag.position), 0.05);
  const double g = antenna_.gainToward(dyn.position) * tag.gain_linear *
                   tag.polarization_loss;
  const double amp = std::sqrt(g) * (lambda / (four_pi * d1)) *
                     (std::sqrt(dyn.rcs_m2 / four_pi) / d2) *
                     (std::sqrt(stat.rcs_m2 / four_pi) / d3) *
                     env_.parasitic_scale;
  const double phase = -carrier_.waveNumber() * (d1 + d2 + d3) +
                       dyn.reflection_phase + stat.reflection_phase;
  return std::polar(amp, phase);
}

ChannelModel::StaticTagChannel ChannelModel::precompute(
    const TagEndpoint& tag) const {
  StaticTagChannel cache;
  cache.los = losGain(antenna_, tag.position, tag.gain_linear,
                      tag.polarization_loss, carrier_);
  cache.reflections = {0.0, 0.0};
  cache.reflector_terms.reserve(env_.reflectors.size());
  const double four_pi = 4.0 * kPi;
  const double k = carrier_.waveNumber();
  for (const auto& r : env_.reflectors) {
    cache.reflections +=
        scatteredGain(antenna_, r.position, r.rcs_m2, r.reflection_phase,
                      tag.position, tag.gain_linear, tag.polarization_loss,
                      carrier_);
    const double d3 = std::max(distance(r.position, tag.position), 0.05);
    cache.reflector_terms.push_back(
        {std::sqrt(r.rcs_m2 / four_pi) / d3 * env_.parasitic_scale,
         -k * d3 + r.reflection_phase});
  }
  precompute_calls_.fetch_add(1, std::memory_order_relaxed);
  return cache;
}

double ChannelModel::forwardAmpLowerBound(const TagEndpoint& tag,
                                          const StaticTagChannel& cache,
                                          const ScattererList& dynamic) const {
  // The static part (blocked LOS + reflector sum) is computed EXACTLY — the
  // blockage geometry is a few distance checks, and los/reflections come
  // from the cache.  Only the dynamic scattering and parasitic double
  // bounces (the trigonometry-heavy terms of evaluateCached) are bounded:
  // antenna gain capped at the peak, every term assumed fully destructive.
  // Distance floors match the exact computation, so each bound dominates
  // its term and |h_static| - interference <= |forward| always holds.
  return forwardAmpLowerBound(tag, cache, dynamic, precomputeScene(dynamic));
}

double ChannelModel::forwardAmpLowerBound(const TagEndpoint& tag,
                                          const StaticTagChannel& cache,
                                          const ScattererList& dynamic,
                                          const SceneGeometry& geometry) const {
  RFIPAD_ASSERT(geometry.dyn.size() == dynamic.size(),
                "scene geometry was precomputed for a different scatterer list");
  if (!env_.reflectors.empty() &&
      cache.reflector_terms.size() != env_.reflectors.size()) {
    return 0.0;  // hand-built cache without parasitic legs: no bound
  }
  const double block =
      combinedBlockage(dynamic, antenna_.position(), tag.position);
  const Complex h_static = std::sqrt(block) * cache.los + cache.reflections;
  const double sqrt_g_peak = std::sqrt(antenna_.peakGainLinear() *
                                       tag.gain_linear * tag.polarization_loss);
  // Direct scattering legs need the per-tag distance; the scatterer×
  // reflector double loop collapses into the precomputed per-reflector
  // weights (Σ_j base_j/d2r_ij), one multiply-add per reflector.
  double direct = 0.0;
  for (std::size_t j = 0; j < dynamic.size(); ++j) {
    const double d2 =
        std::max(distance(dynamic[j].position, tag.position), 0.01);
    direct += geometry.dyn[j].base / d2;
  }
  double parasitic = 0.0;
  for (std::size_t i = 0; i < cache.reflector_terms.size(); ++i)
    parasitic += cache.reflector_terms[i].amp * geometry.refl_weight[i];
  const double interference =
      sqrt_g_peak * carrier_.wavelengthM() * (direct + parasitic);
  return std::max(std::abs(h_static) - interference, 0.0);
}

double ChannelModel::detuneFactor(const TagEndpoint& tag,
                                  const ScattererList& dynamic) const {
  // Mirrors the detune accumulation of evaluateCached() exactly.
  double detune = 1.0;
  for (const auto& s : dynamic) {
    const double dist = distance(s.position, tag.position);
    const double x = dist / kDetuneSigma;
    detune *= 1.0 - kDetuneDepth * std::exp(-x * x);
  }
  return detune;
}

const ChannelModel::StaticTagChannel& ChannelModel::memoisedStatic(
    const TagEndpoint& tag) const {
  MutexLock lock(memo_mutex_);
  for (const auto& e : static_memo_) {
    if (e.key.position.x == tag.position.x &&
        e.key.position.y == tag.position.y &&
        e.key.position.z == tag.position.z &&
        e.key.gain_linear == tag.gain_linear &&
        e.key.polarization_loss == tag.polarization_loss) {
      return e.value;
    }
  }
  if (static_memo_.size() >= kMemoCapacity) {
    static thread_local StaticTagChannel scratch;
    scratch = precompute(tag);
    return scratch;
  }
  static_memo_.push_back({tag, precompute(tag)});
  return static_memo_.back().value;
}

ChannelSnapshot ChannelModel::evaluate(const TagEndpoint& tag,
                                       const ScattererList& dynamic) const {
  return evaluateCached(tag, memoisedStatic(tag), dynamic);
}

ChannelModel::SceneGeometry ChannelModel::precomputeScene(
    const ScattererList& dynamic) const {
  SceneGeometry geom;
  precomputeScene(dynamic, geom);
  return geom;
}

void ChannelModel::precomputeScene(const ScattererList& dynamic,
                                   SceneGeometry& out) const {
  const double four_pi = 4.0 * kPi;
  out.dyn.resize(dynamic.size());
  out.refl_weight.assign(env_.reflectors.size(), 0.0);
  for (std::size_t j = 0; j < dynamic.size(); ++j) {
    const auto& s = dynamic[j];
    auto& term = out.dyn[j];
    term.gain_toward = antenna_.gainToward(s.position);
    term.d1 = std::max(distance(antenna_.position(), s.position), 0.01);
    term.base = std::sqrt(s.rcs_m2 / four_pi) / (four_pi * term.d1);
    term.d2r.clear();
    for (std::size_t i = 0; i < env_.reflectors.size(); ++i) {
      const double d2r =
          std::max(distance(s.position, env_.reflectors[i].position), 0.05);
      term.d2r.push_back(d2r);
      out.refl_weight[i] += term.base / d2r;
    }
  }
}

ChannelSnapshot ChannelModel::evaluateCached(const TagEndpoint& tag,
                                             const StaticTagChannel& cache,
                                             const ScattererList& dynamic) const {
  return evaluateCached(tag, cache, dynamic, precomputeScene(dynamic));
}

ChannelSnapshot ChannelModel::evaluateCached(const TagEndpoint& tag,
                                             const StaticTagChannel& cache,
                                             const ScattererList& dynamic,
                                             const SceneGeometry& geometry) const {
  RFIPAD_ASSERT(geometry.dyn.size() == dynamic.size(),
                "scene geometry was precomputed for a different scatterer list");
  ChannelSnapshot snap;

  // Direct path, attenuated by any body part grazing the LOS segment.
  const double block = combinedBlockage(dynamic, antenna_.position(), tag.position);
  Complex h = std::sqrt(block) * cache.los + cache.reflections;

  // Caches produced by precompute() carry per-reflector parasitic legs;
  // hand-built caches without them fall back to the full double-bounce
  // computation.
  const bool have_terms =
      cache.reflector_terms.size() == env_.reflectors.size();
  const double lambda = carrier_.wavelengthM();
  const double k = carrier_.waveNumber();

  // Hand / arm scattering: the "virtual transmitter" of §III-A1.  The
  // tag-independent legs (antenna gain toward each scatterer, reader→
  // scatterer and scatterer→reflector distances) come precomputed with the
  // scene; only the scatterer→tag legs are computed here.
  double detune = 1.0;
  for (std::size_t j = 0; j < dynamic.size(); ++j) {
    const auto& s = dynamic[j];
    const auto& pre = geometry.dyn[j];
    const double g = pre.gain_toward * tag.gain_linear * tag.polarization_loss;
    const double d2 = std::max(distance(s.position, tag.position), 0.01);
    // Bistatic radar amplitude, as in rf::scatteredGain(); the tag- and
    // λ-independent leg comes precomputed with the scene.
    const double amp = std::sqrt(g) * lambda * pre.base;
    h += std::polar(amp / d2,
                    -k * (pre.d1 + d2) + s.reflection_phase);
    if (have_terms && !env_.reflectors.empty()) {
      // Double bounces reader → s → reflector → tag.  `amp` already holds
      // the reader→s leg; the reflector→tag leg comes from the tag cache.
      const double pref_phase = -k * pre.d1 + s.reflection_phase;
      for (std::size_t i = 0; i < env_.reflectors.size(); ++i) {
        const auto& term = cache.reflector_terms[i];
        h += std::polar(amp / pre.d2r[i] * term.amp,
                        pref_phase - k * pre.d2r[i] + term.phase);
      }
    } else if (!env_.reflectors.empty()) {
      for (const auto& r : env_.reflectors) {
        h += parasiticGain(s, r, tag);
      }
    }
    // Near-field detuning when a body scatterer hovers right over the tag.
    const double dist = distance(s.position, tag.position);
    const double x = dist / kDetuneSigma;
    detune *= 1.0 - kDetuneDepth * std::exp(-x * x);
  }

  snap.forward = h;
  snap.detune = detune;
  return snap;
}

double ChannelModel::incidentPowerW(const ChannelSnapshot& snap,
                                    double txPowerW) const {
  return txPowerW * std::norm(snap.forward);
}

double ChannelModel::backscatterPowerW(const ChannelSnapshot& snap,
                                       double txPowerW,
                                       double modulationEfficiency) const {
  // Round trip |forward|⁴ with the tag's modulation efficiency and any
  // near-field detune applied (amplitude factor → squared in power, and the
  // backscatter traverses the detuned antenna twice).
  const double fwd2 = std::norm(snap.forward);
  const double det2 = snap.detune * snap.detune;
  return txPowerW * fwd2 * fwd2 * modulationEfficiency * det2 * det2;
}

}  // namespace rfipad::rf
