// Carrier configuration for the UHF backscatter link.
//
// The paper's prototype operates at a fixed 922.38 MHz (China UHF band).
// Channel hopping is supported by the reader layer by swapping this config.
#pragma once

#include "common/units.hpp"

namespace rfipad::rf {

struct CarrierConfig {
  double freq_hz = 922.38e6;

  double wavelengthM() const { return rfipad::wavelength(freq_hz); }
  /// Phase advance per metre of one-way path, radians.
  double waveNumber() const { return kTwoPiOverLambda(); }

 private:
  double kTwoPiOverLambda() const {
    return 2.0 * 3.14159265358979323846 / wavelengthM();
  }
};

}  // namespace rfipad::rf
