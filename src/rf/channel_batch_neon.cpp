// NEON tier of the bounds kernel.  Built only on AArch64, with
// -ffp-contract=off.
#include "common/simd_dispatch.hpp"

#if defined(RFIPAD_TU_NEON)

#include "common/vbackend_neon.hpp"
#include "rf/channel_batch_impl.hpp"

namespace rfipad::rf::detail {

BoundsFn neonBounds() { return &boundsRangeT<vm::NeonBackend>; }
TagFastFn neonTagFast() { return &tagFastImpl; }
GainsFn neonGains() { return &fillGainsImpl; }

}  // namespace rfipad::rf::detail

#endif  // RFIPAD_TU_NEON
