// FlatScene construction, the scalar bounds tier, dispatch, and the fast
// per-tag evaluation.  Compiled with -ffp-contract=off (kernel TU).
#include "rf/channel_batch.hpp"

#include <algorithm>
#include <cmath>

#include "common/angles.hpp"
#include "common/contracts.hpp"
#include "common/vkernels.hpp"
#include "rf/channel_batch_impl.hpp"

namespace rfipad::rf {

void FlatScene::build(const ChannelModel& model, const ScattererList& scene) {
  buildGeometry(model, scene);
  fillGains(model);
}

void FlatScene::buildGeometry(const ChannelModel& model,
                              const ScattererList& scene) {
  const DirectionalAntenna& ant = model.antenna();
  const MultipathEnvironment& env = model.environment();
  const double four_pi = 4.0 * kPi;
  count = scene.size();
  num_reflectors = env.reflectors.size();
  gains_valid = false;
  ax = ant.position().x;
  ay = ant.position().y;
  az = ant.position().z;
  sx.resize(count);
  sy.resize(count);
  sz.resize(count);
  depth_db.resize(count);
  inv_r2.resize(count);
  refl_phase.resize(count);
  d1.resize(count);
  base.resize(count);
  d2r.resize(count * num_reflectors);
  refl_weight.assign(num_reflectors, 0.0);
  for (std::size_t j = 0; j < count; ++j) {
    const PointScatterer& s = scene[j];
    sx[j] = s.position.x;
    sy[j] = s.position.y;
    sz[j] = s.position.z;
    depth_db[j] = (s.blocks_los && s.blockage_depth_db > 0.0)
                      ? s.blockage_depth_db
                      : 0.0;
    inv_r2[j] = 1.0 / (s.blockage_radius * s.blockage_radius);
    refl_phase[j] = s.reflection_phase;
    d1[j] = std::max(distance(ant.position(), s.position), 0.01);
    base[j] = std::sqrt(s.rcs_m2 / four_pi) / (four_pi * d1[j]);
    for (std::size_t r = 0; r < num_reflectors; ++r) {
      const double d =
          std::max(distance(s.position, env.reflectors[r].position), 0.05);
      d2r[j * num_reflectors + r] = d;
      refl_weight[r] += base[j] / d;
    }
  }
}

void FlatScene::fillGains(const ChannelModel& model) {
  detail::gainsFor(simd::activeTier())(*this, model);
  gains_valid = true;
}

namespace detail {

BoundsFn scalarBounds() { return &boundsRangeT<vm::ScalarBackend>; }
TagFastFn scalarTagFast() { return &tagFastImpl; }
GainsFn scalarGains() { return &fillGainsImpl; }

GainsFn gainsFor(simd::Tier t) {
  switch (t) {
#if defined(RFIPAD_TU_AVX2)
    case simd::Tier::kAvx2:
      return avx2Gains();
#endif
#if defined(RFIPAD_TU_NEON)
    case simd::Tier::kNeon:
      return neonGains();
#endif
    default:
      return scalarGains();
  }
}

namespace {

BoundsFn boundsFor(simd::Tier t) {
  switch (t) {
#if defined(RFIPAD_TU_AVX2)
    case simd::Tier::kAvx2:
      return avx2Bounds();
#endif
#if defined(RFIPAD_TU_NEON)
    case simd::Tier::kNeon:
      return neonBounds();
#endif
    default:
      return scalarBounds();
  }
}

// The fast per-tag path is scalar code, but its TU of origin decides how
// std::fma and the inlined expT compile (libm call vs hardware FMA); route
// it to the tier TU so the hot copy carries the fast flags.  Bitwise
// identical either way — see tagFastImpl.
TagFastFn tagFastFor(simd::Tier t) {
  switch (t) {
#if defined(RFIPAD_TU_AVX2)
    case simd::Tier::kAvx2:
      return avx2TagFast();
#endif
#if defined(RFIPAD_TU_NEON)
    case simd::Tier::kNeon:
      return neonTagFast();
#endif
    default:
      return scalarTagFast();
  }
}

}  // namespace
}  // namespace detail

void computeBounds(const BoundsArgs& args, std::size_t begin,
                   std::size_t end) {
  detail::boundsFor(simd::activeTier())(args, begin, end);
}

void computeBoundsTier(simd::Tier t, const BoundsArgs& args, std::size_t begin,
                       std::size_t end) {
  detail::boundsFor(t)(args, begin, end);
}

ChannelSnapshot evaluateTagFast(const TagBatch& tb, std::size_t channel,
                                std::size_t tag, const FlatScene& fs,
                                double lambda, double wave_number) {
  RFIPAD_ASSERT(fs.count * (1 + fs.num_reflectors) <= kMaxFastTerms,
                "evaluateTagFast: scene exceeds kMaxFastTerms");
  return detail::tagFastFor(simd::activeTier())(tb, channel, tag, fs, lambda,
                                                wave_number);
}

}  // namespace rfipad::rf
