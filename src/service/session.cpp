#include "service/session.hpp"

#include <utility>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace rfipad::service {

Session::Session(SessionId id, SessionConfig config)
    : id_(id),
      fault_(std::move(config.fault)),
      fault_salt_(config.fault_salt),
      collect_events_(config.collect_events),
      any_faults_(fault_.anyStreamFaults()),
      recognizer_(std::move(config.profile), config.online) {
  RFIPAD_ASSERT(id_ != kNoSession, "session id 0 is reserved");
  // The capture of `this` is safe: Session is neither copyable nor movable
  // (shards hold it behind a stable pointer).
  recognizer_.onLetter(
      [this](char letter, const std::vector<core::StrokeEvent>& strokes) {
        ++letters_;
        if (!collect_events_) return;
        const double end_s =
            strokes.empty() ? 0.0 : strokes.back().interval.t1;
        events_.push_back({id_, letter, end_s,
                           static_cast<std::uint32_t>(strokes.size())});
      });
}

std::size_t Session::feed(std::span<const reader::TagReport> chunk,
                          core::SegmentScratch& scratch) {
  const std::uint64_t chunk_salt = Rng::deriveSeed(fault_salt_, chunk_index_);
  ++chunk_index_;
  std::span<const reader::TagReport> reports = chunk;
  if (any_faults_) {
    degraded_ = fault_.applyToReports(
        chunk, recognizer_.engine().profile().numTags(), chunk_salt);
    reports = degraded_;
  }
  for (const reader::TagReport& r : reports) {
    if (recognizer_.offer(r)) recognizer_.processDue(scratch);
  }
  return reports.size();
}

void Session::finish(core::SegmentScratch& scratch) {
  recognizer_.flushWith(scratch);
}

std::vector<LetterEvent> Session::takeEvents() {
  std::vector<LetterEvent> out = std::move(events_);
  events_.clear();
  return out;
}

void Session::setFault(fault::FaultPlan plan, std::uint64_t salt) {
  fault_ = std::move(plan);
  fault_salt_ = salt;
  any_faults_ = fault_.anyStreamFaults();
}

}  // namespace rfipad::service
