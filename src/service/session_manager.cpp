#include "service/session_manager.hpp"

#include <stdexcept>
#include <utility>

#include "common/contracts.hpp"
#include "common/parallel.hpp"

namespace rfipad::service {

SessionManager::SessionManager(ServiceOptions options) : options_(options) {
  if (options.num_shards < 1)
    throw std::invalid_argument("SessionManager: need at least one shard");
  if (options.queue_capacity < 1)
    throw std::invalid_argument("SessionManager: need queue capacity >= 1");
  shards_.reserve(static_cast<std::size_t>(options.num_shards));
  for (int i = 0; i < options.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        ShardOptions{options.queue_capacity, options.policy}));
  }
}

SessionId SessionManager::attach(SessionConfig config) {
  SessionId id = kNoSession;
  {
    MutexLock lock(id_mutex_);
    id = next_id_++;
  }
  shardFor(id).attach(id, std::move(config));
  return id;
}

std::vector<LetterEvent> SessionManager::detach(SessionId id, bool* found,
                                                ServiceStats* final_stats) {
  if (id == kNoSession) {
    if (found) *found = false;
    return {};
  }
  return shardFor(id).detach(id, found, final_stats);
}

bool SessionManager::configure(SessionId id, fault::FaultPlan plan,
                               std::uint64_t salt) {
  if (id == kNoSession) return false;
  return shardFor(id).configure(id, std::move(plan), salt);
}

bool SessionManager::subscribe(SessionId id, bool enabled) {
  if (id == kNoSession) return false;
  return shardFor(id).subscribe(id, enabled);
}

RFIPAD_HOT_PATH
bool SessionManager::ingest(SessionId id, std::vector<reader::TagReport> chunk) {
  if (id == kNoSession) return false;
  const std::size_t shard = shardOf(id);
  const bool accepted = shards_[shard]->enqueue(id, std::move(chunk));
  if (accepted) {
    if (PumpRuntime* rt = runtime_ptr_.load(std::memory_order_acquire))
      rt->notify(shard);
  }
  return accepted;
}

void SessionManager::startPumping(int workers) {
  if (runtime_) return;
  PumpRuntimeOptions opts;
  opts.workers = workers >= 1 ? workers : options_.pump_workers;
  opts.pin_threads = options_.pin_pump_workers;
  std::vector<Shard*> raw;
  raw.reserve(shards_.size());
  for (auto& s : shards_) raw.push_back(s.get());
  runtime_ = std::make_unique<PumpRuntime>(std::move(raw), opts);
  runtime_ptr_.store(runtime_.get(), std::memory_order_release);
}

void SessionManager::stopPumping() {
  if (!runtime_) return;
  runtime_ptr_.store(nullptr, std::memory_order_release);
  runtime_->stop();
  runtime_.reset();
}

std::size_t SessionManager::pumpWorkerOf(std::size_t shard) const {
  RFIPAD_ASSERT(shard < shards_.size(), "shard index out of range");
  if (const PumpRuntime* rt = runtime_ptr_.load(std::memory_order_acquire))
    return rt->ownerOf(shard);
  return 0;
}

core::PumpStats SessionManager::pumpStats() const {
  if (const PumpRuntime* rt = runtime_ptr_.load(std::memory_order_acquire))
    return rt->stats();
  return {};
}

std::uint64_t SessionManager::processedChunks(std::size_t shard) const {
  RFIPAD_ASSERT(shard < shards_.size(), "shard index out of range");
  return shards_[shard]->processedChunks();
}

void SessionManager::pump() {
  parallelFor(options_.threads, shards_.size(),
              [&](std::size_t i) { shards_[i]->pump(); });
}

void SessionManager::pumpShard(std::size_t shard) {
  RFIPAD_ASSERT(shard < shards_.size(), "shard index out of range");
  shards_[shard]->pump();
}

std::vector<LetterEvent> SessionManager::poll(SessionId id) {
  if (id == kNoSession) return {};
  return shardFor(id).poll(id);
}

void SessionManager::flushAll() {
  parallelFor(options_.threads, shards_.size(),
              [&](std::size_t i) { shards_[i]->flushAll(); });
}

bool SessionManager::stats(SessionId session, ServiceStats& out) const {
  out = ServiceStats{};
  if (session != kNoSession) {
    return shards_[static_cast<std::size_t>(session) % shards_.size()]->stats(
        session, out);
  }
  for (const auto& shard : shards_) shard->stats(kNoSession, out);
  return true;
}

std::size_t SessionManager::sessionCount() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->sessionCount();
  return n;
}

CommandResult SessionManager::execute(Command command) {
  CommandResult result;
  if (auto* cmd = std::get_if<AttachCmd>(&command)) {
    result.session = attach(std::move(cmd->config));
    result.ok = true;
    return result;
  }
  if (const auto* cmd = std::get_if<DetachCmd>(&command)) {
    result.session = cmd->session;
    bool found = false;
    detach(cmd->session, &found, &result.stats);
    result.ok = found;
    if (!found) result.error = "unknown session";
    return result;
  }
  if (const auto* cmd = std::get_if<ConfigureCmd>(&command)) {
    result.session = cmd->session;
    result.ok = configure(cmd->session, std::get<ConfigureCmd>(command).fault,
                          cmd->fault_salt);
    if (!result.ok) result.error = "unknown session";
    return result;
  }
  if (const auto* cmd = std::get_if<SubscribeCmd>(&command)) {
    result.session = cmd->session;
    result.ok = subscribe(cmd->session, cmd->enabled);
    if (!result.ok) result.error = "unknown session";
    return result;
  }
  const auto& cmd = std::get<StatsCmd>(command);
  result.session = cmd.session;
  result.ok = stats(cmd.session, result.stats);
  if (!result.ok) result.error = "unknown session";
  return result;
}

}  // namespace rfipad::service
