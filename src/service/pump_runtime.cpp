#include "service/pump_runtime.hpp"

#include <stdexcept>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "service/shard.hpp"

namespace rfipad::service {

namespace {
std::atomic<std::uint64_t> runtimes_constructed{0};
}  // namespace

std::uint64_t PumpRuntime::constructedCount() {
  return runtimes_constructed.load(std::memory_order_relaxed);
}

PumpRuntime::PumpRuntime(std::vector<Shard*> shards,
                         PumpRuntimeOptions options)
    : shards_(std::move(shards)), options_(options) {
  runtimes_constructed.fetch_add(1, std::memory_order_relaxed);
  if (shards_.empty())
    throw std::invalid_argument("PumpRuntime: need at least one shard");
  for (const Shard* s : shards_)
    RFIPAD_ASSERT(s != nullptr, "PumpRuntime: null shard");
  std::size_t n = resolveThreadCount(options_.workers);
  if (n > shards_.size()) n = shards_.size();
  workers_.reserve(n);
  for (std::size_t w = 0; w < n; ++w)
    workers_.push_back(std::make_unique<Worker>());
  for (std::size_t w = 0; w < n; ++w)
    workers_[w]->thread = std::thread([this, w] { workerLoop(w); });
}

PumpRuntime::~PumpRuntime() { stop(); }

void PumpRuntime::stop() {
  if (stopped_) return;
  stopped_ = true;
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    // Same handshake as notify(): flip to running, then lock/unlock the
    // worker's mutex before signalling so the wakeup cannot be lost.
    w->state.exchange(kRunning, std::memory_order_acq_rel);
    w->wakeAll();
  }
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
}

bool PumpRuntime::anyOwnedPending(std::size_t w) const {
  for (std::size_t s = w; s < shards_.size(); s += workers_.size())
    if (!shards_[s]->ringEmptyApprox()) return true;
  return false;
}

void PumpRuntime::workerLoop(std::size_t w) {
  // A pump worker counts as a "worker thread" for parallelFor's nesting
  // detection: any sweep reached from a session feed runs inline instead
  // of bouncing to the shared pool mid-pump.
  ThreadPool::markCurrentThreadAsWorker();
  if (options_.pin_threads) {
    const unsigned hw = resolveThreadCount(0);
    pinCurrentThreadToCpu(static_cast<unsigned>(w) % hw);
  }
  Worker& self = *workers_[w];
  int idle_streak = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    bool drained = false;
    for (std::size_t s = w; s < shards_.size(); s += workers_.size())
      drained = shards_[s]->pump() || drained;
    if (drained) {
      self.busy_passes.fetch_add(1, std::memory_order_relaxed);
      idle_streak = 0;
      continue;
    }
    self.idle_passes.fetch_add(1, std::memory_order_relaxed);
    ++idle_streak;
    if (idle_streak <= options_.spin_passes) continue;
    if (idle_streak <= options_.spin_passes + options_.yield_passes) {
      std::this_thread::yield();
      continue;
    }
    // Park: advertise first, then re-check, then wait (see the file
    // comment in pump_runtime.hpp for why this cannot lose a wakeup).
    self.state.exchange(kParked, std::memory_order_acq_rel);
    if (stop_.load(std::memory_order_acquire) || anyOwnedPending(w)) {
      self.state.store(kRunning, std::memory_order_release);
      idle_streak = 0;
      continue;
    }
    self.parks.fetch_add(1, std::memory_order_relaxed);
    self.parkUntilRunning();
    idle_streak = 0;
  }
}

RFIPAD_HOT_PATH
void PumpRuntime::notify(std::size_t shard) {
  RFIPAD_ASSERT(shard < shards_.size(), "PumpRuntime::notify: bad shard");
  Worker& w = *workers_[ownerOf(shard)];
  // Always an RMW, never a plain load: two RMWs on `state` are totally
  // ordered, so either this exchange reads kParked (we deliver a notify)
  // or the worker's park-exchange reads-from ours and its ring re-check
  // happens-after our enqueue (it does not park).  A relaxed load here
  // could see a stale kRunning while the worker is parking — a lost
  // wakeup.
  if (w.state.exchange(kRunning, std::memory_order_acq_rel) == kParked) {
    w.wakeups.fetch_add(1, std::memory_order_relaxed);
    w.wake();
  }
}

core::PumpStats PumpRuntime::stats() const {
  core::PumpStats out;
  out.workers = workers_.size();
  for (const auto& w : workers_) {
    out.busy_passes += w->busy_passes.load(std::memory_order_relaxed);
    out.idle_passes += w->idle_passes.load(std::memory_order_relaxed);
    out.parks += w->parks.load(std::memory_order_relaxed);
    out.wakeups += w->wakeups.load(std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t PumpRuntime::parkedWorkers() const {
  std::uint64_t n = 0;
  for (const auto& w : workers_)
    if (w->state.load(std::memory_order_acquire) == kParked) ++n;
  return n;
}

}  // namespace rfipad::service
