// One shard of the serving layer: a bounded multi-producer ingest queue
// plus the sessions resident on it.
//
// Concurrency model (annotated for -Wthread-safety):
//   - enqueue() is the producer side: any thread, any time, touches only
//     `queue_mutex_` — it never blocks behind a pump pass.
//   - pump() is the single-consumer side: it swaps the queue out under
//     `queue_mutex_`, then processes under `state_mutex_`.  The session
//     manager's pump sweep gives each shard to exactly one worker, but the
//     locking is correct even if two pumps raced.
//   - attach/detach/poll/stats take `state_mutex_` and may run between (or
//     concurrently with) pump passes.
//
// Cross-session batching: every session on the shard shares the shard's
// one SegmentScratch — the SoA planes, calibrated-phase buffer, frame
// tables and interval lists of the segmenter are allocated once per shard
// instead of once per session (or worse, once per re-segmentation round).
// With thousands of co-resident sessions this is the difference between a
// cache-resident working set and thousands of cold heaps; outputs stay
// bit-identical because the scratch is fully rewritten by each pass.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "service/session.hpp"

namespace rfipad::service {

struct ShardOptions {
  /// Ingest queue capacity, in chunks.
  std::size_t queue_capacity = 256;
  OverflowPolicy policy = OverflowPolicy::kRejectNew;
};

class Shard {
 public:
  explicit Shard(ShardOptions options);

  /// Producer side: queue one chunk for `session`.  Returns false when the
  /// chunk was refused (kRejectNew policy on a full queue); with
  /// kDropOldest it always returns true, evicting the oldest chunk when
  /// full.  Every outcome is counted in the queue stats.
  bool enqueue(SessionId session, std::vector<reader::TagReport> chunk)
      RFIPAD_EXCLUDES(queue_mutex_);

  /// Consumer side: drain the queue and feed each chunk to its session, in
  /// arrival order, sharing the shard scratch across all of them.
  void pump() RFIPAD_EXCLUDES(queue_mutex_, state_mutex_);

  void attach(SessionId id, SessionConfig config)
      RFIPAD_EXCLUDES(state_mutex_);
  /// Flush and remove a session; returns its final events (including any
  /// letter the flush emitted) or an empty vector when unknown.  `found`
  /// (optional) reports whether the session existed; `final_stats` receives
  /// its lifetime counters.
  std::vector<LetterEvent> detach(SessionId id, bool* found = nullptr,
                                  ServiceStats* final_stats = nullptr)
      RFIPAD_EXCLUDES(queue_mutex_, state_mutex_);

  bool configure(SessionId id, fault::FaultPlan plan, std::uint64_t salt)
      RFIPAD_EXCLUDES(state_mutex_);
  bool subscribe(SessionId id, bool enabled) RFIPAD_EXCLUDES(state_mutex_);

  /// Move out a session's pending letter events.
  std::vector<LetterEvent> poll(SessionId id) RFIPAD_EXCLUDES(state_mutex_);

  /// Flush every resident session (end of stream) without detaching.
  void flushAll() RFIPAD_EXCLUDES(state_mutex_);

  std::size_t sessionCount() const RFIPAD_EXCLUDES(state_mutex_);

  /// Aggregate queue + recogniser counters over resident sessions.
  /// `session` == kNoSession aggregates the whole shard (queue counters
  /// are shard-level either way).  Returns false for an unknown session.
  bool stats(SessionId session, ServiceStats& out) const
      RFIPAD_EXCLUDES(queue_mutex_, state_mutex_);

 private:
  struct IngestItem {
    SessionId session = kNoSession;
    std::vector<reader::TagReport> reports;
  };

  ShardOptions options_;

  mutable Mutex queue_mutex_;
  /// Bounded by options_.queue_capacity — enqueue() rejects or evicts once
  /// size reaches capacity, so depth never exceeds it.
  std::deque<IngestItem> queue_ RFIPAD_GUARDED_BY(queue_mutex_);
  core::IngestQueueStats queue_stats_ RFIPAD_GUARDED_BY(queue_mutex_);

  mutable Mutex state_mutex_;
  /// Ordered map: shard-wide sweeps (flushAll, stats) iterate in session-id
  /// order, keeping every aggregate deterministic.
  std::map<SessionId, std::unique_ptr<Session>> sessions_
      RFIPAD_GUARDED_BY(state_mutex_);
  /// The shared cross-session segmentation scratch (see file comment).
  core::SegmentScratch scratch_ RFIPAD_GUARDED_BY(state_mutex_);
  /// Reused drain buffer for pump() (steady-state allocation-free).
  std::vector<IngestItem> drain_ RFIPAD_GUARDED_BY(state_mutex_);
  /// Lifetime counters of sessions already detached, so shard aggregates
  /// do not shrink when a session leaves.
  core::OnlineStats retired_online_ RFIPAD_GUARDED_BY(state_mutex_);
  std::uint64_t retired_letters_ RFIPAD_GUARDED_BY(state_mutex_) = 0;
  std::uint64_t attached_total_ RFIPAD_GUARDED_BY(state_mutex_) = 0;
};

}  // namespace rfipad::service
