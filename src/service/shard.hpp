// One shard of the serving layer: a bounded lock-free MPSC ingest ring
// plus the sessions resident on it.
//
// Concurrency model (annotated for -Wthread-safety where locks are used):
//   - enqueue() is the producer side: any thread, any time.  It touches
//     only the lock-free ring and a few atomics — producers NEVER take a
//     shard mutex on the ingest hot path, so a slow pump pass cannot
//     block ingest (and ingest cannot block the pump).  Backpressure is
//     counted per outcome: rejected (kRejectNew) or evict-oldest
//     (kDropOldest, the producer performs the eviction dequeue itself —
//     the ring is MPMC-capable).
//   - pump() is the consumer side: it drains the ring and feeds sessions
//     under `state_mutex_`.  The pump runtime gives each shard to exactly
//     one worker, but the locking is correct even if two pumps raced.
//   - attach/detach/poll/stats take `state_mutex_` and may run between
//     (or concurrently with) pump passes.
//   - stats() builds the whole IngestQueueStats snapshot in one place:
//     consumer tallies are read under `state_mutex_` (the same mutex the
//     pump holds while bumping them), then the ring's monotone counters —
//     in that order, so `chunks_processed + unknown <= dequeued <=
//     enqueued` holds in every snapshot instead of the torn totals the
//     old two-lock read could produce.
//
// Cross-session batching: every session on the shard shares the shard's
// one SegmentScratch — the SoA planes, calibrated-phase buffer, frame
// tables and interval lists of the segmenter are allocated once per shard
// instead of once per session (or worse, once per re-segmentation round).
// With thousands of co-resident sessions this is the difference between a
// cache-resident working set and thousands of cold heaps; outputs stay
// bit-identical because the scratch is fully rewritten by each pass.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/mpsc_ring.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "service/session.hpp"

namespace rfipad::service {

struct ShardOptions {
  /// Ingest ring capacity, in chunks (rounded up to a power of two).
  std::size_t queue_capacity = 256;
  OverflowPolicy policy = OverflowPolicy::kRejectNew;
};

class Shard {
 public:
  explicit Shard(ShardOptions options);

  /// Producer side: queue one chunk for `session`.  Lock-free — returns
  /// false when the chunk was refused (kRejectNew policy on a full ring);
  /// with kDropOldest it always returns true, evicting the oldest chunk
  /// when full.  Every outcome is counted in the queue stats.
  bool enqueue(SessionId session, std::vector<reader::TagReport> chunk)
      RFIPAD_EXCLUDES(state_mutex_);

  /// Consumer side: drain the ring and feed each chunk to its session, in
  /// arrival order, sharing the shard scratch across all of them.
  /// Returns true when at least one chunk was drained (the pump runtime's
  /// idle ladder keys off this).
  bool pump() RFIPAD_EXCLUDES(state_mutex_);

  /// True when the ingest ring looks empty (approximate — exact once
  /// producers are quiescent).  Cheap enough for idle polling.
  bool ringEmptyApprox() const { return ring_.emptyApprox(); }

  /// Chunks fully accounted for: fed to a session, counted as
  /// unknown-session, or evicted by kDropOldest.  Monotone; a producer
  /// that saw its enqueue accepted can wait for this to reach its target
  /// to know the chunk's recognition work is done.
  std::uint64_t processedChunks() const {
    return accounted_chunks_.load(std::memory_order_acquire) +
           dropped_oldest_.load(std::memory_order_relaxed);
  }

  void attach(SessionId id, SessionConfig config)
      RFIPAD_EXCLUDES(state_mutex_);
  /// Flush and remove a session; returns its final events (including any
  /// letter the flush emitted) or an empty vector when unknown.  `found`
  /// (optional) reports whether the session existed; `final_stats` receives
  /// its lifetime counters.
  std::vector<LetterEvent> detach(SessionId id, bool* found = nullptr,
                                  ServiceStats* final_stats = nullptr)
      RFIPAD_EXCLUDES(state_mutex_);

  bool configure(SessionId id, fault::FaultPlan plan, std::uint64_t salt)
      RFIPAD_EXCLUDES(state_mutex_);
  bool subscribe(SessionId id, bool enabled) RFIPAD_EXCLUDES(state_mutex_);

  /// Move out a session's pending letter events.
  std::vector<LetterEvent> poll(SessionId id) RFIPAD_EXCLUDES(state_mutex_);

  /// Flush every resident session (end of stream) without detaching.
  void flushAll() RFIPAD_EXCLUDES(state_mutex_);

  std::size_t sessionCount() const RFIPAD_EXCLUDES(state_mutex_);

  /// Aggregate queue + recogniser counters over resident sessions.
  /// `session` == kNoSession aggregates the whole shard (queue counters
  /// are shard-level either way).  Returns false for an unknown session.
  bool stats(SessionId session, ServiceStats& out) const
      RFIPAD_EXCLUDES(state_mutex_);

 private:
  struct IngestItem {
    SessionId session = kNoSession;
    std::vector<reader::TagReport> reports;
  };

  ShardOptions options_;

  /// Bounded by options_.queue_capacity (power-of-two rounded) — the ring
  /// never grows; enqueue() rejects or evicts once full.
  MpscRing<IngestItem> ring_;
  /// Producer-side backpressure counters (no lock on the ingest path).
  std::atomic<std::uint64_t> rejected_full_{0};
  std::atomic<std::uint64_t> dropped_oldest_{0};
  /// Consumer progress: bumped (release) at the end of each pump pass so
  /// processedChunks() readers also see the session state those chunks
  /// produced.
  std::atomic<std::uint64_t> accounted_chunks_{0};

  mutable Mutex state_mutex_;
  /// Ordered map: shard-wide sweeps (flushAll, stats) iterate in session-id
  /// order, keeping every aggregate deterministic.
  std::map<SessionId, std::unique_ptr<Session>> sessions_
      RFIPAD_GUARDED_BY(state_mutex_);
  /// The shared cross-session segmentation scratch (see file comment).
  core::SegmentScratch scratch_ RFIPAD_GUARDED_BY(state_mutex_);
  /// Reused drain buffer for pump() (steady-state allocation-free).
  std::vector<IngestItem> drain_ RFIPAD_GUARDED_BY(state_mutex_);
  /// Consumer-side tallies, written only by pump passes (which serialise
  /// on state_mutex_).
  std::uint64_t chunks_processed_ RFIPAD_GUARDED_BY(state_mutex_) = 0;
  std::uint64_t reports_processed_ RFIPAD_GUARDED_BY(state_mutex_) = 0;
  std::uint64_t unknown_session_ RFIPAD_GUARDED_BY(state_mutex_) = 0;
  /// Lifetime counters of sessions already detached, so shard aggregates
  /// do not shrink when a session leaves.
  core::OnlineStats retired_online_ RFIPAD_GUARDED_BY(state_mutex_);
  std::uint64_t retired_letters_ RFIPAD_GUARDED_BY(state_mutex_) = 0;
  std::uint64_t attached_total_ RFIPAD_GUARDED_BY(state_mutex_) = 0;
};

}  // namespace rfipad::service
