// Sharded multi-session serving layer (DESIGN.md §10–§11).
//
// A SessionManager serves N independent pads from one process: sessions
// are assigned to a fixed set of shards by `id % num_shards`, producers
// enqueue ingest chunks into the owning shard's bounded lock-free MPSC
// ring from any thread (never touching a shard mutex on the hot path),
// and the shards are drained either by the caller-driven pump() sweep
// (shared pool, legacy) or — the production path — by a persistent
// PumpRuntime started with startPumping(): dedicated workers owning
// disjoint shard sets, adaptive spin→yield→park idle, woken by ingest().
// Neither path constructs transient pools/threads per operation (guarded
// by ThreadPool::constructedCount() / PumpRuntime::constructedCount()).
//
// Determinism: the shard count is a property of the service configuration,
// NOT of the pump thread or worker count, and each session's output
// depends only on its own chunk sequence (per-shard FIFO preserved by the
// ring) — so per-session letters are bit-identical at --threads 1 and
// --threads 8 (absent backpressure drops, which are counted, never
// silent).
//
// startPumping()/stopPumping() must not race ingest()/pump() calls: start
// the runtime before producers begin and stop it after they quiesce (the
// pointer handoff is a release/acquire atomic, but a chunk enqueued while
// the runtime pointer is mid-teardown would miss its wake).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "service/pump_runtime.hpp"
#include "service/shard.hpp"

namespace rfipad::service {

struct ServiceOptions {
  /// Shard count — fixed at construction, independent of pump threads.
  int num_shards = 16;
  /// Per-shard ingest queue capacity, in chunks.
  std::size_t queue_capacity = 256;
  OverflowPolicy policy = OverflowPolicy::kRejectNew;
  /// Pump parallelism (resolveThreadCount semantics; < 1 → hardware).
  int threads = 0;
  /// Default worker count for startPumping() (< 1 → hardware, capped at
  /// the shard count).
  int pump_workers = 0;
  /// Best-effort affinity pinning of pump workers (PumpRuntimeOptions).
  bool pin_pump_workers = false;
};

class SessionManager {
 public:
  explicit SessionManager(ServiceOptions options = {});

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Attach a pad; returns its session id (ids start at 1, monotonic).
  SessionId attach(SessionConfig config) RFIPAD_EXCLUDES(id_mutex_);

  /// Flush + remove a session, returning its final letter events.
  std::vector<LetterEvent> detach(SessionId id, bool* found = nullptr,
                                  ServiceStats* final_stats = nullptr);

  bool configure(SessionId id, fault::FaultPlan plan, std::uint64_t salt);
  bool subscribe(SessionId id, bool enabled);

  /// Queue one chunk of reports for `id`.  Thread-safe, non-blocking;
  /// returns false when backpressure refused the chunk.  Never takes a
  /// lock (the hot-path contract tools/analyze enforces from the
  /// RFIPAD_HOT_PATH root on the definition).
  bool ingest(SessionId id, std::vector<reader::TagReport> chunk)
      RFIPAD_EXCLUDES(id_mutex_);

  /// Drain every shard's queue, sweeping shards over the shared pool.
  /// Legacy caller-driven path; a no-op sweep is cheap.  Do not mix with
  /// an active pump runtime (each shard would get two consumers — safe,
  /// but pass accounting becomes meaningless).
  void pump();
  /// Drain one shard (the caller-driven closed-loop path).
  void pumpShard(std::size_t shard);

  /// Start the persistent pump runtime: `workers` dedicated threads
  /// (< 1 → options.pump_workers, then hardware) each owning the shards
  /// `{s : s % workers == w}`.  Idempotent while running.  See the file
  /// comment for the start/stop vs ingest ordering contract.
  void startPumping(int workers = 0);
  /// Stop and join the pump workers (no-op when not pumping).  Chunks
  /// still in rings remain queued and can be drained with pump().
  void stopPumping();
  bool pumping() const {
    return runtime_ptr_.load(std::memory_order_acquire) != nullptr;
  }
  /// Pump worker that owns `shard` under the active runtime (0 when not
  /// pumping — everything would be caller-driven).
  std::size_t pumpWorkerOf(std::size_t shard) const;
  /// Aggregate pump-runtime activity counters (zeroes when not pumping).
  core::PumpStats pumpStats() const;
  /// Chunks fully accounted for on `shard` (fed, unknown, or evicted) —
  /// monotone; producers use it to wait for their enqueued work.
  std::uint64_t processedChunks(std::size_t shard) const;

  /// Move out a session's pending letter events.
  std::vector<LetterEvent> poll(SessionId id);

  /// Flush every session (end of stream) without detaching any.
  void flushAll();

  /// Service-wide (kNoSession) or per-session aggregate counters.
  bool stats(SessionId session, ServiceStats& out) const;

  /// Typed command entry point: routes a Command to the methods above.
  CommandResult execute(Command command);

  std::size_t numShards() const { return shards_.size(); }
  std::size_t shardOf(SessionId id) const {
    return static_cast<std::size_t>(id) % shards_.size();
  }
  std::size_t sessionCount() const;

 private:
  Shard& shardFor(SessionId id) { return *shards_[shardOf(id)]; }

  ServiceOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Owning storage for the runtime plus a raw pointer producers read on
  /// the ingest hot path (acquire) to deliver wakes without a lock.
  std::unique_ptr<PumpRuntime> runtime_;
  std::atomic<PumpRuntime*> runtime_ptr_{nullptr};
  Mutex id_mutex_;
  SessionId next_id_ RFIPAD_GUARDED_BY(id_mutex_) = 1;
};

}  // namespace rfipad::service
