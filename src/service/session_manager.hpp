// Sharded multi-session serving layer (DESIGN.md §10).
//
// A SessionManager serves N independent pads from one process: sessions
// are assigned to a fixed set of shards by `id % num_shards`, producers
// enqueue ingest chunks into the owning shard's bounded queue from any
// thread, and pump() sweeps every shard across the process-wide shared
// thread pool (common/parallel.hpp) — never constructing a transient pool
// (guarded by ThreadPool::constructedCount() in tests and bench).
//
// Determinism: the shard count is a property of the service configuration,
// NOT of the pump thread count, and each session's output depends only on
// its own chunk sequence — so per-session letters are bit-identical at
// --threads 1 and --threads 8 (absent backpressure drops, which are
// counted, never silent).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "service/shard.hpp"

namespace rfipad::service {

struct ServiceOptions {
  /// Shard count — fixed at construction, independent of pump threads.
  int num_shards = 16;
  /// Per-shard ingest queue capacity, in chunks.
  std::size_t queue_capacity = 256;
  OverflowPolicy policy = OverflowPolicy::kRejectNew;
  /// Pump parallelism (resolveThreadCount semantics; < 1 → hardware).
  int threads = 0;
};

class SessionManager {
 public:
  explicit SessionManager(ServiceOptions options = {});

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Attach a pad; returns its session id (ids start at 1, monotonic).
  SessionId attach(SessionConfig config);

  /// Flush + remove a session, returning its final letter events.
  std::vector<LetterEvent> detach(SessionId id, bool* found = nullptr,
                                  ServiceStats* final_stats = nullptr);

  bool configure(SessionId id, fault::FaultPlan plan, std::uint64_t salt);
  bool subscribe(SessionId id, bool enabled);

  /// Queue one chunk of reports for `id`.  Thread-safe, non-blocking;
  /// returns false when backpressure refused the chunk.
  bool ingest(SessionId id, std::vector<reader::TagReport> chunk);

  /// Drain every shard's queue, sweeping shards over the shared pool.
  void pump();
  /// Drain one shard (the bench's closed-loop per-shard path).
  void pumpShard(std::size_t shard);

  /// Move out a session's pending letter events.
  std::vector<LetterEvent> poll(SessionId id);

  /// Flush every session (end of stream) without detaching any.
  void flushAll();

  /// Service-wide (kNoSession) or per-session aggregate counters.
  bool stats(SessionId session, ServiceStats& out) const;

  /// Typed command entry point: routes a Command to the methods above.
  CommandResult execute(Command command);

  std::size_t numShards() const { return shards_.size(); }
  std::size_t shardOf(SessionId id) const {
    return static_cast<std::size_t>(id) % shards_.size();
  }
  std::size_t sessionCount() const;

 private:
  Shard& shardFor(SessionId id) { return *shards_[shardOf(id)]; }

  ServiceOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  Mutex id_mutex_;
  SessionId next_id_ RFIPAD_GUARDED_BY(id_mutex_) = 1;
};

}  // namespace rfipad::service
