// Structured command surface of the multi-session serving layer.
//
// A deployment serves many independent pads ("sessions") from one process:
// each session has its own calibration profile, streaming recogniser, fault
// environment and subscription state, and a client drives the service with
// typed commands — attach, detach, configure, subscribe, stats — rather
// than poking at recognisers directly.  Commands are plain value types (a
// std::variant, not strings) so they are trivially testable and could be
// bound to any wire format later.
//
// Determinism contract: a session's emitted strokes/letters are a pure
// function of its own ingest-chunk sequence (and its fault plan + salt).
// Sessions never observe each other — shards share *scratch buffers*, not
// state — so results are bit-identical at any pump thread count as long as
// no backpressure drop occurred (drops are counted, never silent).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "core/metrics.hpp"
#include "core/online.hpp"
#include "core/static_profile.hpp"
#include "fault/fault_plan.hpp"

namespace rfipad::service {

/// Session handle.  Ids are assigned monotonically from 1; 0 is "no
/// session" (and addresses the aggregate in StatsCmd).
using SessionId = std::uint64_t;
inline constexpr SessionId kNoSession = 0;

/// What a full ingest queue does with a new chunk.
enum class OverflowPolicy : std::uint8_t {
  kRejectNew,   ///< refuse the new chunk (caller sees false and may retry)
  kDropOldest,  ///< evict the oldest queued chunk to admit the new one
};

/// Everything one pad needs to be served.
struct SessionConfig {
  /// Calibration of this pad's tag array (sessions may share a profile
  /// value; each recogniser keeps its own copy).
  core::StaticProfile profile;
  core::OnlineOptions online{};
  /// Per-session fault environment applied to every ingest chunk before it
  /// reaches the recogniser.  Default-constructed (no stream faults) the
  /// degradation pass is skipped entirely.
  fault::FaultPlan fault{};
  /// Session fault salt: chunk c is degraded with
  /// Rng::deriveSeed(fault_salt, c), so two sessions sharing one plan
  /// still see independent (but reproducible) fault realisations.
  std::uint64_t fault_salt = 0;
  /// Retain emitted letters for poll(); SubscribeCmd toggles it later.
  bool collect_events = true;
};

/// One recognised letter, as retained for poll().  Times are stream
/// (reader-clock) times — the service never reads a wall clock.
struct LetterEvent {
  SessionId session = kNoSession;
  char letter = '?';
  /// End of the letter's last stroke window on the session's reader clock.
  double stream_time_s = 0.0;
  std::uint32_t strokes = 0;
};

/// Aggregated service counters (per session or service-wide).
struct ServiceStats {
  core::IngestQueueStats queue{};
  core::OnlineStats online{};
  std::uint64_t sessions_attached = 0;  ///< lifetime attach count
  std::uint64_t sessions_active = 0;
  std::uint64_t letters_emitted = 0;
};

struct AttachCmd {
  SessionConfig config;
};
struct DetachCmd {
  SessionId session = kNoSession;
};
/// Swap a session's fault environment (the recogniser itself is immutable
/// once attached — changing segmentation options mid-stream would make the
/// output depend on *when* the command landed, not just on the data).
struct ConfigureCmd {
  SessionId session = kNoSession;
  fault::FaultPlan fault{};
  std::uint64_t fault_salt = 0;
};
struct SubscribeCmd {
  SessionId session = kNoSession;
  bool enabled = true;
};
/// session == kNoSession → service-wide aggregate.
struct StatsCmd {
  SessionId session = kNoSession;
};

using Command =
    std::variant<AttachCmd, DetachCmd, ConfigureCmd, SubscribeCmd, StatsCmd>;

struct CommandResult {
  bool ok = false;
  std::string error;
  /// AttachCmd: the new session's id.  Other commands echo their target.
  SessionId session = kNoSession;
  /// Filled by StatsCmd (and by DetachCmd with the detached session's final
  /// counters).
  ServiceStats stats{};
};

}  // namespace rfipad::service
