// One attached pad: its streaming recogniser, fault environment and
// pending letter events.  A Session is owned by exactly one shard and is
// only ever touched under that shard's state lock (attach/detach/poll) or
// from the shard's pump pass — it needs no locking of its own.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "service/command.hpp"

namespace rfipad::service {

class Session {
 public:
  Session(SessionId id, SessionConfig config);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  SessionId id() const { return id_; }

  /// Degrade one ingest chunk per the session's fault plan (chunk-indexed
  /// salt) and feed it to the recogniser, sharing the caller's scratch for
  /// every re-segmentation pass.  Returns the number of reports fed
  /// (post-degradation).
  std::size_t feed(std::span<const reader::TagReport> chunk,
                   core::SegmentScratch& scratch);

  /// End of stream: finalise any pending stroke and letter.
  void finish(core::SegmentScratch& scratch);

  /// Move out the retained letter events (empty when subscription is off).
  std::vector<LetterEvent> takeEvents();

  void setFault(fault::FaultPlan plan, std::uint64_t salt);
  void setCollectEvents(bool enabled) { collect_events_ = enabled; }

  const core::OnlineStats& onlineStats() const { return recognizer_.stats(); }
  std::uint64_t lettersEmitted() const { return letters_; }

 private:
  SessionId id_;
  fault::FaultPlan fault_;
  std::uint64_t fault_salt_;
  bool collect_events_;
  bool any_faults_;
  std::uint64_t chunk_index_ = 0;
  std::uint64_t letters_ = 0;
  core::OnlineRecognizer recognizer_;
  std::vector<LetterEvent> events_;
  /// Reused degraded-chunk buffer (steady-state allocation-free feed).
  std::vector<reader::TagReport> degraded_;
};

}  // namespace rfipad::service
