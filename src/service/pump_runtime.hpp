// Persistent pump runtime: dedicated worker threads that own disjoint,
// fixed sets of shards and drain their ingest rings continuously, so the
// serving layer no longer depends on callers driving pump() sweeps.
//
// Ownership and determinism: worker `w` of `W` owns exactly the shards
// `{s : s % W == w}` — a pure function of the shard id, never rebalanced.
// Each shard therefore has one consumer for the runtime's lifetime, every
// session's chunks are processed in ring (FIFO = ingest) order, and a
// session's letters are a pure function of its own report sequence
// (Session::feed drives the recogniser per report, not per chunk) — so
// letters are bit-identical at any worker count.
//
// Adaptive idle: a worker that finds all its shards empty walks a
// spin → yield → park ladder and finally blocks on its private condvar.
// The park/wake handshake is built on one atomic state word per worker:
//
//   worker:  state.exchange(kParked, acq_rel);
//            if (stop or any owned ring non-empty) { state = kRunning;
//              continue; }                  // re-check AFTER advertising
//            { lock(m); while (state == kParked) cv.wait(m); }
//
//   producer (after its ring enqueue):
//            if (state.exchange(kRunning, acq_rel) == kParked) {
//              { lock(m); }                 // empty critical section:
//              cv.notifyOne();              // orders notify after wait
//            }
//
// Either the producer's exchange happens before the worker's (worker then
// reads kRunning back / its acquire sees the enqueue during the re-check
// and it does not park), or after (producer reads kParked and delivers a
// notify that cannot be lost: the empty lock/unlock of `m` means the
// notify cannot run between the worker's state check and its wait).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "core/metrics.hpp"

namespace rfipad::service {

class Shard;

struct PumpRuntimeOptions {
  /// Worker threads; < 1 resolves to hardware concurrency (capped at the
  /// shard count — extra workers would own nothing).
  int workers = 0;
  /// Best-effort pin worker w to CPU (w % hardware_concurrency).
  bool pin_threads = false;
  /// Idle ladder: passes of pure spinning, then passes that yield, then
  /// park on the condvar.
  int spin_passes = 16;
  int yield_passes = 16;
};

class PumpRuntime {
 public:
  /// Starts the workers immediately.  `shards` must outlive the runtime
  /// and its size must be >= 1.
  PumpRuntime(std::vector<Shard*> shards, PumpRuntimeOptions options);
  ~PumpRuntime();

  PumpRuntime(const PumpRuntime&) = delete;
  PumpRuntime& operator=(const PumpRuntime&) = delete;

  /// Worker that owns `shard` (shard % workers — the fixed assignment).
  std::size_t ownerOf(std::size_t shard) const {
    return shard % workers_.size();
  }

  std::size_t workerCount() const { return workers_.size(); }

  /// Producer-side wake hook: call after enqueueing onto `shard`'s ring.
  /// Lock-free unless the owning worker is parked.
  void notify(std::size_t shard);

  /// Stop and join all workers (idempotent; the destructor calls it).
  /// Workers finish their current pass; rings may retain unpumped chunks.
  void stop();

  /// Aggregate activity counters over all workers.
  core::PumpStats stats() const;

  /// Workers currently blocked on their condvar (for idle-cost tests).
  std::uint64_t parkedWorkers() const;

  /// Process-wide count of PumpRuntime constructions — the serving hot
  /// path must not spin up transient runtimes (same regression pattern as
  /// ThreadPool::constructedCount()).
  static std::uint64_t constructedCount();

 private:
  enum State : int { kRunning = 0, kParked = 1 };

  struct Worker {
    std::thread thread;
    std::atomic<int> state{kRunning};
    Mutex m;
    CondVar cv;
    std::atomic<std::uint64_t> busy_passes{0};
    std::atomic<std::uint64_t> idle_passes{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> wakeups{0};

    /// Worker-side wait half of the park/wake handshake: blocks until a
    /// producer or stop() flips `state` back to kRunning.  Must be called
    /// only after advertising kParked and re-checking the rings (see the
    /// file comment).
    void parkUntilRunning() RFIPAD_EXCLUDES(m) {
      MutexLock lock(m);
      while (state.load(std::memory_order_acquire) == kParked) cv.wait(m);
    }

    /// Producer-side wake: the empty critical section guarantees the
    /// worker is either before its state re-check (it will see kRunning)
    /// or already inside cv.wait (the notify lands) — never between.
    void wake() RFIPAD_EXCLUDES(m) {
      { MutexLock lock(m); }
      cv.notifyOne();
    }

    /// stop()'s variant of wake() (notifyAll, same lost-wakeup argument).
    void wakeAll() RFIPAD_EXCLUDES(m) {
      { MutexLock lock(m); }
      cv.notifyAll();
    }
  };

  void workerLoop(std::size_t w);
  bool anyOwnedPending(std::size_t w) const;

  std::vector<Shard*> shards_;
  PumpRuntimeOptions options_;
  std::atomic<bool> stop_{false};
  bool stopped_ = false;
  /// Bounded: one Worker per thread, sized once at construction.
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace rfipad::service
