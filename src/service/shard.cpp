#include "service/shard.hpp"

#include <utility>

namespace rfipad::service {

namespace {

void accumulate(core::OnlineStats& into, const core::OnlineStats& from) {
  into.accepted += from.accepted;
  into.dropped_invalid += from.dropped_invalid;
  into.dropped_late += from.dropped_late;
  into.dropped_unknown_tag += from.dropped_unknown_tag;
  into.duplicates += from.duplicates;
  into.reordered += from.reordered;
  into.dropped_future += from.dropped_future;
}

}  // namespace

Shard::Shard(ShardOptions options)
    : options_(options), ring_(options.queue_capacity) {}

RFIPAD_HOT_PATH
bool Shard::enqueue(SessionId session, std::vector<reader::TagReport> chunk) {
  IngestItem item{session, std::move(chunk)};
  for (;;) {
    if (ring_.tryEnqueue(item)) return true;
    if (options_.policy == OverflowPolicy::kRejectNew) {
      rejected_full_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // kDropOldest: the producer evicts the ring head itself (the ring is
    // MPMC-capable) and retries.  The loop terminates: each iteration
    // either frees a slot or another producer/the pump did.
    IngestItem evicted;
    if (ring_.tryDequeue(evicted))
      dropped_oldest_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool Shard::pump() {
  MutexLock state(state_mutex_);
  drain_.clear();
  // Drain at most one ring's worth per pass so a firehose producer cannot
  // capture the consumer forever (bounded pass, fair across shards).
  const std::size_t budget = ring_.capacity();
  IngestItem item;
  while (drain_.size() < budget && ring_.tryDequeue(item))
    drain_.push_back(std::move(item));
  if (drain_.empty()) return false;
  std::uint64_t chunks = 0;
  std::uint64_t reports = 0;
  std::uint64_t unknown = 0;
  for (IngestItem& it : drain_) {
    const auto found = sessions_.find(it.session);
    if (found == sessions_.end()) {
      ++unknown;
      continue;
    }
    reports += found->second->feed(it.reports, scratch_);
    ++chunks;
  }
  drain_.clear();
  chunks_processed_ += chunks;
  reports_processed_ += reports;
  unknown_session_ += unknown;
  // Release: a producer polling processedChunks() must also observe the
  // session state (letters) these chunks produced.
  accounted_chunks_.fetch_add(chunks + unknown, std::memory_order_release);
  return true;
}

void Shard::attach(SessionId id, SessionConfig config) {
  MutexLock state(state_mutex_);
  sessions_.emplace(id, std::make_unique<Session>(id, std::move(config)));
  ++attached_total_;
}

std::vector<LetterEvent> Shard::detach(SessionId id, bool* found,
                                       ServiceStats* final_stats) {
  MutexLock state(state_mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    if (found) *found = false;
    return {};
  }
  if (found) *found = true;
  Session& s = *it->second;
  s.finish(scratch_);
  if (final_stats) {
    final_stats->online = s.onlineStats();
    final_stats->letters_emitted = s.lettersEmitted();
  }
  accumulate(retired_online_, s.onlineStats());
  retired_letters_ += s.lettersEmitted();
  std::vector<LetterEvent> events = s.takeEvents();
  sessions_.erase(it);
  return events;
}

bool Shard::configure(SessionId id, fault::FaultPlan plan,
                      std::uint64_t salt) {
  MutexLock state(state_mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  it->second->setFault(std::move(plan), salt);
  return true;
}

bool Shard::subscribe(SessionId id, bool enabled) {
  MutexLock state(state_mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  it->second->setCollectEvents(enabled);
  return true;
}

std::vector<LetterEvent> Shard::poll(SessionId id) {
  MutexLock state(state_mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return {};
  return it->second->takeEvents();
}

void Shard::flushAll() {
  MutexLock state(state_mutex_);
  for (auto& [id, session] : sessions_) session->finish(scratch_);
}

std::size_t Shard::sessionCount() const {
  MutexLock state(state_mutex_);
  return sessions_.size();
}

bool Shard::stats(SessionId session, ServiceStats& out) const {
  MutexLock state(state_mutex_);
  // Snapshot order matters: consumer tallies first (under the same mutex
  // the pump bumps them under), then the producer atomics and ring
  // counters — every counter read later is at least as new, so the
  // snapshot always satisfies processed + unknown <= dequeued <= enqueued.
  core::IngestQueueStats q;
  q.chunks_processed = chunks_processed_;
  q.reports_processed = reports_processed_;
  q.rejected_unknown_session = unknown_session_;
  q.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  q.dropped_oldest = dropped_oldest_.load(std::memory_order_relaxed);
  const MpscRingCounters rc = ring_.counters();
  q.enqueued = rc.enqueued;
  q.high_watermark = rc.high_watermark;
  out.queue += q;
  if (session != kNoSession) {
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) return false;
    accumulate(out.online, it->second->onlineStats());
    out.letters_emitted += it->second->lettersEmitted();
    out.sessions_active += 1;
    return true;
  }
  out.sessions_active += sessions_.size();
  out.sessions_attached += attached_total_;
  accumulate(out.online, retired_online_);
  out.letters_emitted += retired_letters_;
  for (const auto& [id, s] : sessions_) {
    accumulate(out.online, s->onlineStats());
    out.letters_emitted += s->lettersEmitted();
  }
  return true;
}

}  // namespace rfipad::service
