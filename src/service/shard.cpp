#include "service/shard.hpp"

#include <algorithm>
#include <utility>

namespace rfipad::service {

namespace {

void accumulate(core::OnlineStats& into, const core::OnlineStats& from) {
  into.accepted += from.accepted;
  into.dropped_invalid += from.dropped_invalid;
  into.dropped_late += from.dropped_late;
  into.dropped_unknown_tag += from.dropped_unknown_tag;
  into.duplicates += from.duplicates;
  into.reordered += from.reordered;
  into.dropped_future += from.dropped_future;
}

}  // namespace

Shard::Shard(ShardOptions options) : options_(options) {}

bool Shard::enqueue(SessionId session, std::vector<reader::TagReport> chunk) {
  MutexLock lock(queue_mutex_);
  if (queue_.size() >= options_.queue_capacity) {
    if (options_.policy == OverflowPolicy::kRejectNew) {
      ++queue_stats_.rejected_full;
      return false;
    }
    queue_.pop_front();
    ++queue_stats_.dropped_oldest;
  }
  queue_.push_back(IngestItem{session, std::move(chunk)});
  ++queue_stats_.enqueued;
  queue_stats_.high_watermark =
      std::max<std::uint64_t>(queue_stats_.high_watermark, queue_.size());
  return true;
}

void Shard::pump() {
  MutexLock state(state_mutex_);
  drain_.clear();
  {
    MutexLock q(queue_mutex_);
    if (queue_.empty()) return;
    drain_.reserve(queue_.size());
    for (IngestItem& item : queue_) drain_.push_back(std::move(item));
    queue_.clear();
  }
  std::uint64_t chunks = 0;
  std::uint64_t reports = 0;
  std::uint64_t unknown = 0;
  for (IngestItem& item : drain_) {
    const auto it = sessions_.find(item.session);
    if (it == sessions_.end()) {
      ++unknown;
      continue;
    }
    reports += it->second->feed(item.reports, scratch_);
    ++chunks;
  }
  drain_.clear();
  MutexLock q(queue_mutex_);
  queue_stats_.chunks_processed += chunks;
  queue_stats_.reports_processed += reports;
  queue_stats_.rejected_unknown_session += unknown;
}

void Shard::attach(SessionId id, SessionConfig config) {
  MutexLock state(state_mutex_);
  sessions_.emplace(id, std::make_unique<Session>(id, std::move(config)));
  ++attached_total_;
}

std::vector<LetterEvent> Shard::detach(SessionId id, bool* found,
                                       ServiceStats* final_stats) {
  MutexLock state(state_mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    if (found) *found = false;
    return {};
  }
  if (found) *found = true;
  Session& s = *it->second;
  s.finish(scratch_);
  if (final_stats) {
    final_stats->online = s.onlineStats();
    final_stats->letters_emitted = s.lettersEmitted();
  }
  accumulate(retired_online_, s.onlineStats());
  retired_letters_ += s.lettersEmitted();
  std::vector<LetterEvent> events = s.takeEvents();
  sessions_.erase(it);
  return events;
}

bool Shard::configure(SessionId id, fault::FaultPlan plan,
                      std::uint64_t salt) {
  MutexLock state(state_mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  it->second->setFault(std::move(plan), salt);
  return true;
}

bool Shard::subscribe(SessionId id, bool enabled) {
  MutexLock state(state_mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  it->second->setCollectEvents(enabled);
  return true;
}

std::vector<LetterEvent> Shard::poll(SessionId id) {
  MutexLock state(state_mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return {};
  return it->second->takeEvents();
}

void Shard::flushAll() {
  MutexLock state(state_mutex_);
  for (auto& [id, session] : sessions_) session->finish(scratch_);
}

std::size_t Shard::sessionCount() const {
  MutexLock state(state_mutex_);
  return sessions_.size();
}

bool Shard::stats(SessionId session, ServiceStats& out) const {
  {
    MutexLock q(queue_mutex_);
    out.queue += queue_stats_;
  }
  MutexLock state(state_mutex_);
  if (session != kNoSession) {
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) return false;
    accumulate(out.online, it->second->onlineStats());
    out.letters_emitted += it->second->lettersEmitted();
    out.sessions_active += 1;
    return true;
  }
  out.sessions_active += sessions_.size();
  out.sessions_attached += attached_total_;
  accumulate(out.online, retired_online_);
  out.letters_emitted += retired_letters_;
  for (const auto& [id, s] : sessions_) {
    accumulate(out.online, s->onlineStats());
    out.letters_emitted += s->lettersEmitted();
  }
  return true;
}

}  // namespace rfipad::service
