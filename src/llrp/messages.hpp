// A working subset of the LLRP 1.1 wire format — the protocol the paper's
// software uses to talk to the Impinj Speedway ("adopting the LLRP [12]
// protocol for communicating with the reader", §IV-A).
//
// Implemented messages:
//   ADD_ROSPEC / ADD_ROSPEC_RESPONSE     — install a reader operation spec
//   ENABLE_ROSPEC / START_ROSPEC          — arm it
//   RO_ACCESS_REPORT                      — the tag report stream
//   KEEPALIVE / KEEPALIVE_ACK
//   READER_EVENT_NOTIFICATION
//
// TagReportData carries EPC-96, AntennaID, PeakRSSI and
// FirstSeenTimestampUTC per the core spec, plus the Impinj *custom*
// parameters (vendor 25882) for the low-level data RFIPad needs:
// ImpinjRFPhaseAngle (subtype 24) and ImpinjRFDopplerFrequency (30) — the
// fields the paper unlocked by modifying the Octane SDK.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "llrp/buffer.hpp"

namespace rfipad::llrp {

// -- constants ------------------------------------------------------------

enum class MessageType : std::uint16_t {
  kAddRospec = 20,
  kAddRospecResponse = 30,
  kEnableRospec = 24,
  kEnableRospecResponse = 34,
  kStartRospec = 22,
  kStartRospecResponse = 32,
  kRoAccessReport = 61,
  kKeepalive = 62,
  kKeepaliveAck = 72,
  kReaderEventNotification = 63,
};

inline constexpr std::uint32_t kImpinjVendorId = 25882;
inline constexpr std::uint32_t kImpinjPhaseSubtype = 24;
inline constexpr std::uint32_t kImpinjDopplerSubtype = 30;
inline constexpr std::uint32_t kImpinjPeakRssiSubtype = 57;

// Parameter type numbers (TLV unless noted).
inline constexpr std::uint16_t kParamRospec = 177;
inline constexpr std::uint16_t kParamRospecStartTrigger = 179;
inline constexpr std::uint16_t kParamRospecStopTrigger = 182;
inline constexpr std::uint16_t kParamAispec = 183;
inline constexpr std::uint16_t kParamTagReportData = 240;
inline constexpr std::uint16_t kParamEpc96 = 13;          // TV-encoded
inline constexpr std::uint16_t kParamAntennaId = 1;        // TV
inline constexpr std::uint16_t kParamPeakRssi = 6;         // TV
inline constexpr std::uint16_t kParamFirstSeenUtc = 2;     // TV
inline constexpr std::uint16_t kParamLlrpStatus = 287;
inline constexpr std::uint16_t kParamCustom = 1023;
inline constexpr std::uint16_t kParamUtcTimestamp = 128;
inline constexpr std::uint16_t kParamReaderEventData = 246;

// -- data model -----------------------------------------------------------

struct MessageHeader {
  MessageType type = MessageType::kKeepalive;
  std::uint32_t id = 0;
};

/// One singulation as reported on the wire.
struct TagReportData {
  /// EPC-96, 12 bytes.
  Bytes epc = Bytes(12, 0);
  std::uint16_t antenna_id = 1;
  /// Core-spec PeakRSSI, whole dBm (coarse).
  std::int8_t peak_rssi_dbm = 0;
  /// Microseconds since the UTC epoch.
  std::uint64_t first_seen_utc_us = 0;
  /// Impinj custom: phase angle in units of 2π/4096 (0..4095).
  std::optional<std::uint16_t> impinj_phase_angle;
  /// Impinj custom: Doppler in units of 1/16 Hz.
  std::optional<std::int16_t> impinj_doppler_16hz;
  /// Impinj custom: RSSI in units of 1/100 dBm (fine-grained).
  std::optional<std::int16_t> impinj_rssi_centidbm;

  std::string epcHex() const;
  static Bytes epcFromHex(const std::string& hex);
};

struct RoAccessReport {
  std::vector<TagReportData> reports;
};

struct RospecStartTrigger {
  std::uint8_t type = 1;  // immediate
};

struct RospecStopTrigger {
  std::uint8_t type = 0;  // none
};

struct Rospec {
  std::uint32_t rospec_id = 1;
  std::uint8_t priority = 0;
  std::uint8_t state = 0;  // disabled
  RospecStartTrigger start;
  RospecStopTrigger stop;
  std::vector<std::uint16_t> antenna_ids = {1};
};

struct LlrpStatus {
  std::uint16_t code = 0;  // M_Success
  std::string description;
};

// -- encoding -------------------------------------------------------------

Bytes encodeAddRospec(std::uint32_t messageId, const Rospec& rospec);
Bytes encodeAddRospecResponse(std::uint32_t messageId, const LlrpStatus& st);
Bytes encodeEnableRospec(std::uint32_t messageId, std::uint32_t rospecId);
Bytes encodeStartRospec(std::uint32_t messageId, std::uint32_t rospecId);
Bytes encodeRoAccessReport(std::uint32_t messageId, const RoAccessReport& r);
Bytes encodeKeepalive(std::uint32_t messageId);
Bytes encodeKeepaliveAck(std::uint32_t messageId);
Bytes encodeReaderEventNotification(std::uint32_t messageId,
                                    std::uint64_t utc_us);

// -- decoding -------------------------------------------------------------

/// Parse just the 10-byte header; returns total message length via out-param.
MessageHeader decodeHeader(BufferReader& reader, std::uint32_t* length);

/// Per-report outcome of a lenient RO_ACCESS_REPORT decode.
struct ReportDecodeStats {
  std::uint64_t reports = 0;    ///< TagReportData parameters decoded
  std::uint64_t malformed = 0;  ///< parameters skipped (bad length/type/body)
};

/// Full-message decoders; each expects the complete frame (header included).
///
/// With `stats == nullptr` the decode is strict: any malformed parameter
/// throws DecodeError (the historical contract).  With a stats object the
/// decode is lenient: a malformed TagReportData is skipped and counted, and
/// decoding continues with the next parameter — a corrupted report must
/// never take down the frames around it.  A bad header or message type
/// still throws in both modes (the frame as a whole is unusable).
RoAccessReport decodeRoAccessReport(const Bytes& frame,
                                    ReportDecodeStats* stats = nullptr);
Rospec decodeAddRospec(const Bytes& frame, std::uint32_t* messageId = nullptr);
std::uint32_t decodeRospecIdMessage(const Bytes& frame);  // ENABLE/START

/// Frame splitter for a byte stream: extracts complete frames, leaving any
/// trailing partial frame in `stream`.
std::vector<Bytes> splitFrames(Bytes& stream);

}  // namespace rfipad::llrp
