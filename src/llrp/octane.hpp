// An Octane-SDK-flavoured facade over the simulated reader and the LLRP
// wire format: the paper's host software drives an Impinj Speedway through
// exactly this kind of API ("implemented using C# and adopting the LLRP
// protocol... We modify the Octane SDK to enable the phase reporting").
//
//   OctaneEmulator reader(hw);                 // the "Speedway"
//   OctaneClient client;                       // the host SDK
//   client.onReport([&](const TagReport& r) { ... });
//   client.connect(reader);                    // ADD/ENABLE/START_ROSPEC
//   client.pump(reader, seconds, scene);       // RO_ACCESS_REPORTs flow
//
// The emulator can also model an unreliable deployment: scheduled link
// outages (setOutages) drop the connection mid-poll, and a frame tap
// (setFrameTap) lets tests corrupt the byte stream in flight.  The client's
// pumpWithReconnect() survives both with capped exponential backoff and
// lenient decoding.
#pragma once

#include <functional>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "llrp/bridge.hpp"
#include "reader/reader.hpp"

namespace rfipad::llrp {

/// A scheduled link outage [t0, t1) on the reader clock.
struct OutageWindow {
  double t0 = 0.0;
  double t1 = 0.0;
};

/// Reader-side protocol endpoint: owns the control-plane state machine
/// (ROSpec install/enable/start) and converts inventory output to
/// RO_ACCESS_REPORT frames.
class OctaneEmulator {
 public:
  using FrameTap = std::function<std::vector<Bytes>(std::vector<Bytes>)>;

  explicit OctaneEmulator(reader::RfidReader& hw) : hw_(hw) {}

  /// Handle one control message; returns the response frame.  Requires a
  /// live link.
  Bytes handleControl(const Bytes& frame);

  /// Run the air protocol for `duration_s` under `scene` and return the
  /// resulting report frames.  Requires a started ROSpec and a live link.
  /// If a scheduled outage begins inside the window, frames up to the
  /// outage are delivered and the link drops (connected() turns false);
  /// the remaining time is *not* consumed — the caller's reconnect loop
  /// advances the clock through the outage.
  std::vector<Bytes> poll(double duration_s, const reader::SceneFn& scene,
                          std::size_t reportsPerMessage = 16);

  /// Schedule link outages on the reader clock (must be disjoint and
  /// ascending).
  void setOutages(std::vector<OutageWindow> outages) {
    outages_ = std::move(outages);
  }
  /// Intercept outgoing report frames (wire-corruption injection for
  /// robustness tests).  The tap sees whole frames and may drop, truncate
  /// or mutate them.  No tap = frames pass through untouched.
  void setFrameTap(FrameTap tap) { frame_tap_ = std::move(tap); }
  /// When true, a link drop also wipes the ROSpec state, forcing the client
  /// to re-run the ADD/ENABLE/START handshake (a reader reboot rather than
  /// a TCP hiccup).  Default false: the session resumes where it left off.
  void setClearRospecOnDisconnect(bool v) { clear_rospec_on_disconnect_ = v; }

  bool connected() const { return connected_; }
  /// Reader clock, seconds.
  double now() const { return hw_.now(); }
  /// Advance the physical world without delivering reports (the client is
  /// away); inventory output during this time is lost.  Works while
  /// disconnected — tags keep backscattering whether or not anyone listens.
  void advance(double duration_s, const reader::SceneFn& scene);
  /// Attempt to re-establish the link.  Succeeds iff the clock is outside
  /// every scheduled outage.
  bool tryReconnect();

  bool installed() const { return installed_; }
  bool enabled() const { return enabled_; }
  bool started() const { return started_; }
  std::uint32_t rospecId() const { return rospec_.rospec_id; }

 private:
  void dropLink();
  /// First outage overlapping [t, ∞), or outages_.size().
  std::size_t outageAfter(double t) const;

  reader::RfidReader& hw_;
  Rospec rospec_{};
  bool installed_ = false;
  bool enabled_ = false;
  bool started_ = false;
  bool connected_ = true;
  bool clear_rospec_on_disconnect_ = false;
  std::vector<OutageWindow> outages_;
  FrameTap frame_tap_;
  std::uint32_t next_message_id_ = 1000;
};

/// Backoff schedule for OctaneClient::pumpWithReconnect.
struct ReconnectPolicy {
  double initial_backoff_s = 0.05;
  double max_backoff_s = 1.6;
  double multiplier = 2.0;
  /// Give up (throw) after this many consecutive failed attempts.
  int max_attempts_per_outage = 16;
  /// Poll granularity; smaller chunks bound how much data one disconnect
  /// can take down with it.
  double poll_chunk_s = 0.25;
};

/// What a resilient pump session went through.
struct PumpStats {
  std::uint64_t disconnects = 0;
  std::uint64_t reconnect_attempts = 0;
  /// Reconnects that had to redo the full ROSpec handshake.
  std::uint64_t rehandshakes = 0;
  /// Reader-clock seconds spent with the link down.
  double offline_s = 0.0;
  std::uint64_t frames = 0;
  std::uint64_t reports = 0;
  /// Lenient-decode outcome (malformed frames/reports skipped, counted).
  DecodeStats decode{};
};

/// Host-side SDK facade: performs the LLRP handshake and dispatches tag
/// reports to a callback.
///
/// Thread safety: the accumulated stream and the message-id counter are
/// mutex-guarded, so one client may be fed concurrently from several
/// readers — the multi-antenna deployment shape, one pump thread per
/// Speedway.  (TSan on the pre-lock code flagged exactly this: concurrent
/// pumps raced on `stream_` and its reorder/duplicate counters.)  The
/// report callback is dispatched outside the lock and must be set before
/// pumping starts; each pump call still drives its own emulator — an
/// OctaneEmulator itself is single-threaded, like the reader hardware.
class OctaneClient {
 public:
  using ReportCallback = std::function<void(const reader::TagReport&)>;

  /// Set the per-report callback.  Must not be called while a pump is in
  /// flight (the callback itself is invoked unlocked, possibly from
  /// several pump threads at once — it must be thread-safe if pumps are).
  void onReport(ReportCallback cb) { callback_ = std::move(cb); }

  /// ADD_ROSPEC → ENABLE_ROSPEC → START_ROSPEC.  Throws on a non-success
  /// response.
  void connect(OctaneEmulator& reader) RFIPAD_EXCLUDES(mutex_);

  /// Poll the reader and dispatch every report; also accumulates them into
  /// `stream()` for batch processing.  Strict decode, no reconnects — the
  /// clean path.
  void pump(OctaneEmulator& reader, double duration_s,
            const reader::SceneFn& scene) RFIPAD_EXCLUDES(mutex_);

  /// Pump for `duration_s` of reader time, surviving scheduled outages
  /// (capped exponential backoff, session resume or re-handshake as the
  /// reader demands) and corrupted frames (lenient decode, skip and
  /// count).  Throws only when an outage outlasts the whole backoff
  /// schedule.  On a fault-free reader this delivers exactly what pump()
  /// would.  Requires duration_s >= 0 and a policy with a positive poll
  /// chunk and a multiplier >= 1.
  PumpStats pumpWithReconnect(OctaneEmulator& reader, double duration_s,
                              const reader::SceneFn& scene,
                              const ReconnectPolicy& policy = {})
      RFIPAD_EXCLUDES(mutex_);

  /// The accumulated stream.  The returned reference is only stable while
  /// no pump is in flight; concurrent pumps should use snapshotStream().
  const reader::SampleStream& stream() const RFIPAD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return stream_;
  }
  /// Copy of the accumulated stream, safe against in-flight pumps.
  reader::SampleStream snapshotStream() const RFIPAD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return stream_;
  }
  /// Drain the accumulated stream, leaving an empty one with the same tag
  /// count behind (not a moved-from husk).
  reader::SampleStream takeStream() RFIPAD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    reader::SampleStream out = std::move(stream_);
    stream_ = reader::SampleStream(out.numTags());
    return out;
  }

 private:
  std::uint32_t nextMessageId() RFIPAD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return next_message_id_++;
  }
  /// Dispatch one decoded report: callback unlocked, stream under lock.
  void deliver(const reader::TagReport& r) RFIPAD_EXCLUDES(mutex_);

  ReportCallback callback_;
  mutable Mutex mutex_;
  reader::SampleStream stream_ RFIPAD_GUARDED_BY(mutex_);
  std::uint32_t next_message_id_ RFIPAD_GUARDED_BY(mutex_) = 1;
};

}  // namespace rfipad::llrp
