// An Octane-SDK-flavoured facade over the simulated reader and the LLRP
// wire format: the paper's host software drives an Impinj Speedway through
// exactly this kind of API ("implemented using C# and adopting the LLRP
// protocol... We modify the Octane SDK to enable the phase reporting").
//
//   OctaneEmulator reader(hw);                 // the "Speedway"
//   OctaneClient client;                       // the host SDK
//   client.onReport([&](const TagReport& r) { ... });
//   client.connect(reader);                    // ADD/ENABLE/START_ROSPEC
//   client.pump(reader, seconds, scene);       // RO_ACCESS_REPORTs flow
#pragma once

#include <functional>

#include "llrp/bridge.hpp"
#include "reader/reader.hpp"

namespace rfipad::llrp {

/// Reader-side protocol endpoint: owns the control-plane state machine
/// (ROSpec install/enable/start) and converts inventory output to
/// RO_ACCESS_REPORT frames.
class OctaneEmulator {
 public:
  explicit OctaneEmulator(reader::RfidReader& hw) : hw_(hw) {}

  /// Handle one control message; returns the response frame.
  Bytes handleControl(const Bytes& frame);

  /// Run the air protocol for `duration_s` under `scene` and return the
  /// resulting report frames.  Requires a started ROSpec.
  std::vector<Bytes> poll(double duration_s, const reader::SceneFn& scene,
                          std::size_t reportsPerMessage = 16);

  bool installed() const { return installed_; }
  bool enabled() const { return enabled_; }
  bool started() const { return started_; }
  std::uint32_t rospecId() const { return rospec_.rospec_id; }

 private:
  reader::RfidReader& hw_;
  Rospec rospec_{};
  bool installed_ = false;
  bool enabled_ = false;
  bool started_ = false;
  std::uint32_t next_message_id_ = 1000;
};

/// Host-side SDK facade: performs the LLRP handshake and dispatches tag
/// reports to a callback.
class OctaneClient {
 public:
  using ReportCallback = std::function<void(const reader::TagReport&)>;

  void onReport(ReportCallback cb) { callback_ = std::move(cb); }

  /// ADD_ROSPEC → ENABLE_ROSPEC → START_ROSPEC.  Throws on a non-success
  /// response.
  void connect(OctaneEmulator& reader);

  /// Poll the reader and dispatch every report; also accumulates them into
  /// `stream()` for batch processing.
  void pump(OctaneEmulator& reader, double duration_s,
            const reader::SceneFn& scene);

  const reader::SampleStream& stream() const { return stream_; }
  reader::SampleStream takeStream() { return std::move(stream_); }

 private:
  ReportCallback callback_;
  reader::SampleStream stream_;
  std::uint32_t next_message_id_ = 1;
};

}  // namespace rfipad::llrp
