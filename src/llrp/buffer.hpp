// Big-endian binary buffer primitives for the LLRP wire format.
//
// LLRP (EPCglobal Low Level Reader Protocol [12]) frames every message as
// big-endian binary TLVs; these two helpers keep the encode/decode code in
// messages.cpp free of byte-twiddling.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace rfipad::llrp {

using Bytes = std::vector<std::uint8_t>;

class BufferWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void s8(std::int8_t v);
  void s16(std::int16_t v);
  void raw(const Bytes& bytes);

  /// Reserve a 16-bit length slot; returns its offset for patchLength16.
  std::size_t reserveLength16();
  /// Patch a previously reserved slot with (current size − start).
  void patchLength16(std::size_t slot, std::size_t start);
  /// Same for the 32-bit message-length field of an LLRP header.
  std::size_t reserveLength32();
  void patchLength32(std::size_t slot, std::size_t start);

  std::size_t size() const { return bytes_.size(); }
  const Bytes& bytes() const { return bytes_; }
  Bytes take() { return std::move(bytes_); }

 private:
  Bytes bytes_;
};

/// Thrown when a frame is truncated or malformed.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

class BufferReader {
 public:
  BufferReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit BufferReader(const Bytes& bytes)
      : BufferReader(bytes.data(), bytes.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int8_t s8();
  std::int16_t s16();
  Bytes raw(std::size_t n);

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return size_ - offset_; }
  bool atEnd() const { return offset_ == size_; }
  /// Peek the next 16 bits without consuming (for TLV dispatch).
  std::uint16_t peek16() const;
  void skip(std::size_t n);

  /// A sub-reader covering the next `n` bytes, which are consumed here.
  BufferReader sub(std::size_t n);

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

}  // namespace rfipad::llrp
