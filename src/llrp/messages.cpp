#include "llrp/messages.hpp"

#include <cstdio>

namespace rfipad::llrp {

namespace {

constexpr std::uint8_t kVersion = 1;  // LLRP protocol version 1.x

/// Write an LLRP message header; returns the length-slot offset.
std::size_t beginMessage(BufferWriter& w, MessageType type,
                         std::uint32_t messageId) {
  // 3 reserved bits, 3 version bits, 10 type bits.
  const std::uint16_t first =
      static_cast<std::uint16_t>((kVersion << 10) |
                                 (static_cast<std::uint16_t>(type) & 0x3FF));
  w.u16(first);
  const std::size_t slot = w.reserveLength32();
  w.u32(messageId);
  return slot;
}

/// TLV parameter header; returns the length-slot offset.
std::size_t beginTlv(BufferWriter& w, std::uint16_t type) {
  w.u16(type & 0x3FF);
  return w.reserveLength16();
}

void endTlv(BufferWriter& w, std::size_t slot) {
  // TLV length counts from the type field (4 bytes before the slot end).
  w.patchLength16(slot, slot - 2);
}

void writeLlrpStatus(BufferWriter& w, const LlrpStatus& st) {
  const std::size_t slot = beginTlv(w, kParamLlrpStatus);
  w.u16(st.code);
  w.u16(static_cast<std::uint16_t>(st.description.size()));
  for (char c : st.description) w.u8(static_cast<std::uint8_t>(c));
  endTlv(w, slot);
}

void writeImpinjCustom(BufferWriter& w, std::uint32_t subtype,
                       std::int32_t value, bool sixteenBit) {
  const std::size_t slot = beginTlv(w, kParamCustom);
  w.u32(kImpinjVendorId);
  w.u32(subtype);
  if (sixteenBit) {
    w.u16(static_cast<std::uint16_t>(value));
  } else {
    w.u32(static_cast<std::uint32_t>(value));
  }
  endTlv(w, slot);
}

void writeTagReportData(BufferWriter& w, const TagReportData& t) {
  const std::size_t slot = beginTlv(w, kParamTagReportData);

  // EPC-96: TV-encoded parameter (high bit set, 7-bit type).
  w.u8(0x80 | kParamEpc96);
  if (t.epc.size() != 12) throw std::length_error("EPC-96 must be 12 bytes");
  w.raw(t.epc);

  w.u8(0x80 | kParamAntennaId);
  w.u16(t.antenna_id);

  w.u8(0x80 | kParamPeakRssi);
  w.s8(t.peak_rssi_dbm);

  w.u8(0x80 | kParamFirstSeenUtc);
  w.u64(t.first_seen_utc_us);

  if (t.impinj_phase_angle) {
    writeImpinjCustom(w, kImpinjPhaseSubtype, *t.impinj_phase_angle, true);
  }
  if (t.impinj_doppler_16hz) {
    writeImpinjCustom(w, kImpinjDopplerSubtype, *t.impinj_doppler_16hz, true);
  }
  if (t.impinj_rssi_centidbm) {
    writeImpinjCustom(w, kImpinjPeakRssiSubtype, *t.impinj_rssi_centidbm, true);
  }
  endTlv(w, slot);
}

}  // namespace

std::string TagReportData::epcHex() const {
  std::string out;
  out.reserve(epc.size() * 2);
  char buf[3];
  for (std::uint8_t b : epc) {
    std::snprintf(buf, sizeof(buf), "%02X", b);
    out += buf;
  }
  return out;
}

Bytes TagReportData::epcFromHex(const std::string& hex) {
  if (hex.size() != 24)
    throw std::invalid_argument("EPC-96 hex must be 24 chars");
  Bytes out(12);
  for (std::size_t i = 0; i < 12; ++i) {
    out[i] = static_cast<std::uint8_t>(
        std::stoul(hex.substr(i * 2, 2), nullptr, 16));
  }
  return out;
}

Bytes encodeAddRospec(std::uint32_t messageId, const Rospec& rospec) {
  BufferWriter w;
  const std::size_t msg = beginMessage(w, MessageType::kAddRospec, messageId);

  const std::size_t ro = beginTlv(w, kParamRospec);
  w.u32(rospec.rospec_id);
  w.u8(rospec.priority);
  w.u8(rospec.state);

  // ROBoundarySpec-ish: just the triggers, flattened for our subset.
  {
    const std::size_t t = beginTlv(w, kParamRospecStartTrigger);
    w.u8(rospec.start.type);
    endTlv(w, t);
  }
  {
    const std::size_t t = beginTlv(w, kParamRospecStopTrigger);
    w.u8(rospec.stop.type);
    endTlv(w, t);
  }
  // AISpec: antenna list.
  {
    const std::size_t t = beginTlv(w, kParamAispec);
    w.u16(static_cast<std::uint16_t>(rospec.antenna_ids.size()));
    for (std::uint16_t a : rospec.antenna_ids) w.u16(a);
    endTlv(w, t);
  }
  endTlv(w, ro);

  w.patchLength32(msg, 0);
  return w.take();
}

Bytes encodeAddRospecResponse(std::uint32_t messageId, const LlrpStatus& st) {
  BufferWriter w;
  const std::size_t msg =
      beginMessage(w, MessageType::kAddRospecResponse, messageId);
  writeLlrpStatus(w, st);
  w.patchLength32(msg, 0);
  return w.take();
}

namespace {
Bytes encodeRospecIdMessage(MessageType type, std::uint32_t messageId,
                            std::uint32_t rospecId) {
  BufferWriter w;
  const std::size_t msg = beginMessage(w, type, messageId);
  w.u32(rospecId);
  w.patchLength32(msg, 0);
  return w.take();
}
}  // namespace

Bytes encodeEnableRospec(std::uint32_t messageId, std::uint32_t rospecId) {
  return encodeRospecIdMessage(MessageType::kEnableRospec, messageId, rospecId);
}

Bytes encodeStartRospec(std::uint32_t messageId, std::uint32_t rospecId) {
  return encodeRospecIdMessage(MessageType::kStartRospec, messageId, rospecId);
}

Bytes encodeRoAccessReport(std::uint32_t messageId, const RoAccessReport& r) {
  BufferWriter w;
  const std::size_t msg =
      beginMessage(w, MessageType::kRoAccessReport, messageId);
  for (const auto& t : r.reports) writeTagReportData(w, t);
  w.patchLength32(msg, 0);
  return w.take();
}

Bytes encodeKeepalive(std::uint32_t messageId) {
  BufferWriter w;
  const std::size_t msg = beginMessage(w, MessageType::kKeepalive, messageId);
  w.patchLength32(msg, 0);
  return w.take();
}

Bytes encodeKeepaliveAck(std::uint32_t messageId) {
  BufferWriter w;
  const std::size_t msg = beginMessage(w, MessageType::kKeepaliveAck, messageId);
  w.patchLength32(msg, 0);
  return w.take();
}

Bytes encodeReaderEventNotification(std::uint32_t messageId,
                                    std::uint64_t utc_us) {
  BufferWriter w;
  const std::size_t msg =
      beginMessage(w, MessageType::kReaderEventNotification, messageId);
  const std::size_t ev = beginTlv(w, kParamReaderEventData);
  {
    const std::size_t ts = beginTlv(w, kParamUtcTimestamp);
    w.u64(utc_us);
    endTlv(w, ts);
  }
  endTlv(w, ev);
  w.patchLength32(msg, 0);
  return w.take();
}

MessageHeader decodeHeader(BufferReader& reader, std::uint32_t* length) {
  const std::uint16_t first = reader.u16();
  const std::uint8_t version = (first >> 10) & 0x7;
  if (version != kVersion) throw DecodeError("unsupported LLRP version");
  MessageHeader h;
  h.type = static_cast<MessageType>(first & 0x3FF);
  const std::uint32_t len = reader.u32();
  if (len < 10) throw DecodeError("LLRP message length < header size");
  h.id = reader.u32();
  if (length != nullptr) *length = len;
  return h;
}

namespace {

TagReportData decodeTagReportData(BufferReader body) {
  TagReportData t;
  while (!body.atEnd()) {
    const std::uint8_t first = body.u8();
    if (first & 0x80) {
      // TV parameter.
      const std::uint8_t type = first & 0x7F;
      switch (type) {
        case kParamEpc96: t.epc = body.raw(12); break;
        case kParamAntennaId: t.antenna_id = body.u16(); break;
        case kParamPeakRssi: t.peak_rssi_dbm = body.s8(); break;
        case kParamFirstSeenUtc: t.first_seen_utc_us = body.u64(); break;
        default: throw DecodeError("unknown TV parameter in TagReportData");
      }
    } else {
      // TLV parameter: first byte already consumed; re-assemble the type.
      const std::uint16_t type =
          static_cast<std::uint16_t>((first & 0x3) << 8) | body.u8();
      const std::uint16_t len = body.u16();
      if (len < 4) throw DecodeError("bad TLV length");
      BufferReader sub = body.sub(len - 4);
      if (type == kParamCustom) {
        const std::uint32_t vendor = sub.u32();
        const std::uint32_t subtype = sub.u32();
        if (vendor == kImpinjVendorId) {
          if (subtype == kImpinjPhaseSubtype) {
            t.impinj_phase_angle = sub.u16();
          } else if (subtype == kImpinjDopplerSubtype) {
            t.impinj_doppler_16hz = sub.s16();
          } else if (subtype == kImpinjPeakRssiSubtype) {
            t.impinj_rssi_centidbm = sub.s16();
          }
        }
      }
      // Unknown TLVs are skipped (sub-reader already consumed them).
    }
  }
  return t;
}

}  // namespace

RoAccessReport decodeRoAccessReport(const Bytes& frame,
                                    ReportDecodeStats* stats) {
  BufferReader r(frame);
  std::uint32_t len = 0;
  const MessageHeader h = decodeHeader(r, &len);
  if (h.type != MessageType::kRoAccessReport)
    throw DecodeError("not an RO_ACCESS_REPORT");
  const bool lenient = stats != nullptr;
  RoAccessReport report;
  while (!r.atEnd()) {
    // A truncated parameter header ends the frame; in lenient mode the
    // remainder is counted as one malformed parameter.
    if (r.remaining() < 4) {
      if (!lenient) throw DecodeError("truncated parameter header");
      ++stats->malformed;
      break;
    }
    const std::uint16_t first = r.peek16();
    const std::uint16_t type = first & 0x3FF;
    if ((first & 0x8000) != 0 || type != kParamTagReportData) {
      if (!lenient)
        throw DecodeError("unexpected parameter in RO_ACCESS_REPORT");
      // A TV parameter here has no length field, so resynchronisation is
      // impossible — abandon the rest of the frame.  An unknown TLV can be
      // skipped by its own length.
      if ((first & 0x8000) != 0) {
        ++stats->malformed;
        break;
      }
      r.skip(2);
      const std::uint16_t plen = r.u16();
      if (plen < 4 || plen - 4u > r.remaining()) {
        ++stats->malformed;
        break;
      }
      r.skip(plen - 4);
      ++stats->malformed;
      continue;
    }
    r.skip(2);
    const std::uint16_t plen = r.u16();
    if (plen < 4 || plen - 4u > r.remaining()) {
      if (!lenient) throw DecodeError("bad TagReportData length");
      ++stats->malformed;
      break;
    }
    BufferReader body = r.sub(plen - 4);
    if (!lenient) {
      report.reports.push_back(decodeTagReportData(body));
      continue;
    }
    try {
      report.reports.push_back(decodeTagReportData(body));
      ++stats->reports;
    } catch (const DecodeError&) {
      // The sub-reader bounded the damage to this one parameter.
      ++stats->malformed;
    }
  }
  return report;
}

Rospec decodeAddRospec(const Bytes& frame, std::uint32_t* messageId) {
  BufferReader r(frame);
  std::uint32_t len = 0;
  const MessageHeader h = decodeHeader(r, &len);
  if (h.type != MessageType::kAddRospec) throw DecodeError("not ADD_ROSPEC");
  if (messageId != nullptr) *messageId = h.id;

  const std::uint16_t type = r.u16() & 0x3FF;
  if (type != kParamRospec) throw DecodeError("ROSpec parameter expected");
  const std::uint16_t plen = r.u16();
  BufferReader body = r.sub(plen - 4);

  Rospec spec;
  spec.rospec_id = body.u32();
  spec.priority = body.u8();
  spec.state = body.u8();
  while (!body.atEnd()) {
    const std::uint16_t ptype = body.u16() & 0x3FF;
    const std::uint16_t len2 = body.u16();
    BufferReader sub = body.sub(len2 - 4);
    if (ptype == kParamRospecStartTrigger) {
      spec.start.type = sub.u8();
    } else if (ptype == kParamRospecStopTrigger) {
      spec.stop.type = sub.u8();
    } else if (ptype == kParamAispec) {
      const std::uint16_t n = sub.u16();
      spec.antenna_ids.clear();
      for (std::uint16_t i = 0; i < n; ++i) spec.antenna_ids.push_back(sub.u16());
    }
  }
  return spec;
}

std::uint32_t decodeRospecIdMessage(const Bytes& frame) {
  BufferReader r(frame);
  std::uint32_t len = 0;
  const MessageHeader h = decodeHeader(r, &len);
  if (h.type != MessageType::kEnableRospec &&
      h.type != MessageType::kStartRospec)
    throw DecodeError("not an ENABLE/START_ROSPEC");
  return r.u32();
}

std::vector<Bytes> splitFrames(Bytes& stream) {
  std::vector<Bytes> frames;
  std::size_t pos = 0;
  while (stream.size() - pos >= 10) {
    BufferReader peek(stream.data() + pos, stream.size() - pos);
    peek.skip(2);
    const std::uint32_t len = peek.u32();
    if (len < 10) throw DecodeError("LLRP message length < header size");
    if (stream.size() - pos < len) break;  // partial frame
    frames.emplace_back(stream.begin() + static_cast<std::ptrdiff_t>(pos),
                        stream.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
  }
  stream.erase(stream.begin(), stream.begin() + static_cast<std::ptrdiff_t>(pos));
  return frames;
}

}  // namespace rfipad::llrp
