#include "llrp/buffer.hpp"

namespace rfipad::llrp {

void BufferWriter::u8(std::uint8_t v) { bytes_.push_back(v); }

void BufferWriter::u16(std::uint16_t v) {
  bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
  bytes_.push_back(static_cast<std::uint8_t>(v));
}

void BufferWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v >> 16));
  u16(static_cast<std::uint16_t>(v));
}

void BufferWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void BufferWriter::s8(std::int8_t v) { u8(static_cast<std::uint8_t>(v)); }
void BufferWriter::s16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }

void BufferWriter::raw(const Bytes& bytes) {
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
}

std::size_t BufferWriter::reserveLength16() {
  const std::size_t slot = bytes_.size();
  u16(0);
  return slot;
}

void BufferWriter::patchLength16(std::size_t slot, std::size_t start) {
  const std::size_t len = bytes_.size() - start;
  if (len > 0xFFFF) throw std::length_error("LLRP parameter too long");
  bytes_[slot] = static_cast<std::uint8_t>(len >> 8);
  bytes_[slot + 1] = static_cast<std::uint8_t>(len);
}

std::size_t BufferWriter::reserveLength32() {
  const std::size_t slot = bytes_.size();
  u32(0);
  return slot;
}

void BufferWriter::patchLength32(std::size_t slot, std::size_t start) {
  const std::size_t len = bytes_.size() - start;
  bytes_[slot] = static_cast<std::uint8_t>(len >> 24);
  bytes_[slot + 1] = static_cast<std::uint8_t>(len >> 16);
  bytes_[slot + 2] = static_cast<std::uint8_t>(len >> 8);
  bytes_[slot + 3] = static_cast<std::uint8_t>(len);
}

void BufferReader::need(std::size_t n) const {
  if (remaining() < n) throw DecodeError("LLRP frame truncated");
}

std::uint8_t BufferReader::u8() {
  need(1);
  return data_[offset_++];
}

std::uint16_t BufferReader::u16() {
  need(2);
  const std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[offset_]) << 8) | data_[offset_ + 1]);
  offset_ += 2;
  return v;
}

std::uint32_t BufferReader::u32() {
  const std::uint32_t hi = u16();
  return (hi << 16) | u16();
}

std::uint64_t BufferReader::u64() {
  const std::uint64_t hi = u32();
  return (hi << 32) | u32();
}

std::int8_t BufferReader::s8() { return static_cast<std::int8_t>(u8()); }
std::int16_t BufferReader::s16() { return static_cast<std::int16_t>(u16()); }

Bytes BufferReader::raw(std::size_t n) {
  need(n);
  Bytes out(data_ + offset_, data_ + offset_ + n);
  offset_ += n;
  return out;
}

std::uint16_t BufferReader::peek16() const {
  need(2);
  return static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[offset_]) << 8) | data_[offset_ + 1]);
}

void BufferReader::skip(std::size_t n) {
  need(n);
  offset_ += n;
}

BufferReader BufferReader::sub(std::size_t n) {
  need(n);
  BufferReader r(data_ + offset_, n);
  offset_ += n;
  return r;
}

}  // namespace rfipad::llrp
