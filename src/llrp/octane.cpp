#include "llrp/octane.hpp"

namespace rfipad::llrp {

Bytes OctaneEmulator::handleControl(const Bytes& frame) {
  BufferReader r(frame);
  std::uint32_t len = 0;
  const MessageHeader h = decodeHeader(r, &len);
  switch (h.type) {
    case MessageType::kAddRospec: {
      rospec_ = decodeAddRospec(frame);
      installed_ = true;
      enabled_ = started_ = false;
      return encodeAddRospecResponse(h.id, LlrpStatus{0, "M_Success"});
    }
    case MessageType::kEnableRospec: {
      const std::uint32_t id = decodeRospecIdMessage(frame);
      if (!installed_ || id != rospec_.rospec_id)
        return encodeAddRospecResponse(h.id, LlrpStatus{100, "unknown ROSpec"});
      enabled_ = true;
      return encodeAddRospecResponse(h.id, LlrpStatus{0, "M_Success"});
    }
    case MessageType::kStartRospec: {
      const std::uint32_t id = decodeRospecIdMessage(frame);
      if (!enabled_ || id != rospec_.rospec_id)
        return encodeAddRospecResponse(h.id,
                                       LlrpStatus{101, "ROSpec not enabled"});
      started_ = true;
      return encodeAddRospecResponse(h.id, LlrpStatus{0, "M_Success"});
    }
    case MessageType::kKeepalive:
      return encodeKeepaliveAck(h.id);
    default:
      return encodeAddRospecResponse(h.id,
                                     LlrpStatus{102, "unsupported message"});
  }
}

std::vector<Bytes> OctaneEmulator::poll(double duration_s,
                                        const reader::SceneFn& scene,
                                        std::size_t reportsPerMessage) {
  if (!started_) throw std::logic_error("OctaneEmulator: ROSpec not started");
  const auto stream = hw_.capture(duration_s, scene);
  return encodeStream(stream, reportsPerMessage, next_message_id_++ * 10000);
}

namespace {

void expectSuccess(const Bytes& response) {
  BufferReader r(response);
  std::uint32_t len = 0;
  decodeHeader(r, &len);
  const std::uint16_t type = r.u16() & 0x3FF;
  if (type != kParamLlrpStatus) throw DecodeError("expected LLRPStatus");
  r.skip(2);  // TLV length
  const std::uint16_t code = r.u16();
  if (code != 0) throw std::runtime_error("LLRP operation failed");
}

}  // namespace

void OctaneClient::connect(OctaneEmulator& reader) {
  Rospec spec;
  spec.rospec_id = 1;
  expectSuccess(reader.handleControl(
      encodeAddRospec(next_message_id_++, spec)));
  expectSuccess(reader.handleControl(
      encodeEnableRospec(next_message_id_++, spec.rospec_id)));
  expectSuccess(reader.handleControl(
      encodeStartRospec(next_message_id_++, spec.rospec_id)));
}

void OctaneClient::pump(OctaneEmulator& reader, double duration_s,
                        const reader::SceneFn& scene) {
  for (const Bytes& frame : reader.poll(duration_s, scene)) {
    const RoAccessReport report = decodeRoAccessReport(frame);
    for (const auto& wire : report.reports) {
      const reader::TagReport r = fromWire(wire);
      if (callback_) callback_(r);
      stream_.push(r);
    }
  }
}

}  // namespace rfipad::llrp
