#include "llrp/octane.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/contracts.hpp"

namespace rfipad::llrp {

Bytes OctaneEmulator::handleControl(const Bytes& frame) {
  if (!connected_)
    throw std::logic_error("OctaneEmulator: link is down");
  BufferReader r(frame);
  std::uint32_t len = 0;
  const MessageHeader h = decodeHeader(r, &len);
  switch (h.type) {
    case MessageType::kAddRospec: {
      rospec_ = decodeAddRospec(frame);
      installed_ = true;
      enabled_ = started_ = false;
      return encodeAddRospecResponse(h.id, LlrpStatus{0, "M_Success"});
    }
    case MessageType::kEnableRospec: {
      const std::uint32_t id = decodeRospecIdMessage(frame);
      if (!installed_ || id != rospec_.rospec_id)
        return encodeAddRospecResponse(h.id, LlrpStatus{100, "unknown ROSpec"});
      enabled_ = true;
      return encodeAddRospecResponse(h.id, LlrpStatus{0, "M_Success"});
    }
    case MessageType::kStartRospec: {
      const std::uint32_t id = decodeRospecIdMessage(frame);
      if (!enabled_ || id != rospec_.rospec_id)
        return encodeAddRospecResponse(h.id,
                                       LlrpStatus{101, "ROSpec not enabled"});
      started_ = true;
      return encodeAddRospecResponse(h.id, LlrpStatus{0, "M_Success"});
    }
    case MessageType::kKeepalive:
      return encodeKeepaliveAck(h.id);
    default:
      return encodeAddRospecResponse(h.id,
                                     LlrpStatus{102, "unsupported message"});
  }
}

void OctaneEmulator::dropLink() {
  connected_ = false;
  if (clear_rospec_on_disconnect_) {
    // A full reader reboot: the ROSpec is gone, the client must re-run the
    // ADD/ENABLE/START handshake after reconnecting.
    installed_ = enabled_ = started_ = false;
  }
}

std::size_t OctaneEmulator::outageAfter(double t) const {
  for (std::size_t i = 0; i < outages_.size(); ++i) {
    if (outages_[i].t1 > t) return i;
  }
  return outages_.size();
}

void OctaneEmulator::advance(double duration_s, const reader::SceneFn& scene) {
  if (duration_s <= 0.0) return;
  // The physical world runs regardless of link/ROSpec state; the inventory
  // output is simply discarded.
  (void)hw_.capture(duration_s, scene);
}

bool OctaneEmulator::tryReconnect() {
  if (connected_) return true;
  const double t = hw_.now();
  for (const auto& w : outages_) {
    if (t >= w.t0 && t < w.t1) return false;
  }
  connected_ = true;
  return true;
}

std::vector<Bytes> OctaneEmulator::poll(double duration_s,
                                        const reader::SceneFn& scene,
                                        std::size_t reportsPerMessage) {
  RFIPAD_ASSERT(reportsPerMessage >= 1,
                "poll needs at least one report per message");
  RFIPAD_ASSERT(duration_s >= 0.0, "poll window must be non-negative");
  if (!connected_) throw std::logic_error("OctaneEmulator: link is down");
  if (!started_) throw std::logic_error("OctaneEmulator: ROSpec not started");

  const double t_start = hw_.now();
  double t_end = t_start + duration_s;
  bool drops = false;
  const std::size_t oi = outageAfter(t_start);
  if (oi < outages_.size() && outages_[oi].t0 < t_end) {
    // The link goes down mid-poll.  Deliver what was captured before the
    // outage; the remaining window stays unconsumed for the reconnect loop.
    t_end = std::max(outages_[oi].t0, t_start);
    drops = true;
  }

  std::vector<Bytes> frames;
  if (t_end > t_start) {
    const auto stream = hw_.capture(t_end - t_start, scene);
    frames = encodeStream(stream, reportsPerMessage, next_message_id_++ * 10000);
  }
  if (drops) dropLink();
  if (frame_tap_) frames = frame_tap_(std::move(frames));
  return frames;
}

namespace {

void expectSuccess(const Bytes& response) {
  BufferReader r(response);
  std::uint32_t len = 0;
  decodeHeader(r, &len);
  const std::uint16_t type = r.u16() & 0x3FF;
  if (type != kParamLlrpStatus) throw DecodeError("expected LLRPStatus");
  r.skip(2);  // TLV length
  const std::uint16_t code = r.u16();
  if (code != 0) throw std::runtime_error("LLRP operation failed");
}

}  // namespace

void OctaneClient::connect(OctaneEmulator& reader) {
  Rospec spec;
  spec.rospec_id = 1;
  expectSuccess(reader.handleControl(
      encodeAddRospec(nextMessageId(), spec)));
  expectSuccess(reader.handleControl(
      encodeEnableRospec(nextMessageId(), spec.rospec_id)));
  expectSuccess(reader.handleControl(
      encodeStartRospec(nextMessageId(), spec.rospec_id)));
}

void OctaneClient::deliver(const reader::TagReport& r) {
  // Callback first and unlocked (it may be slow, or call back into the
  // client); the shared stream append is the only critical section.
  if (callback_) callback_(r);
  MutexLock lock(mutex_);
  stream_.push(r);
}

void OctaneClient::pump(OctaneEmulator& reader, double duration_s,
                        const reader::SceneFn& scene) {
  for (const Bytes& frame : reader.poll(duration_s, scene)) {
    const RoAccessReport report = decodeRoAccessReport(frame);
    for (const auto& wire : report.reports) {
      deliver(fromWire(wire));
    }
  }
}

PumpStats OctaneClient::pumpWithReconnect(OctaneEmulator& reader,
                                          double duration_s,
                                          const reader::SceneFn& scene,
                                          const ReconnectPolicy& policy) {
  RFIPAD_ASSERT(duration_s >= 0.0, "pump duration must be non-negative");
  RFIPAD_ASSERT(policy.poll_chunk_s > 0.0, "poll chunk must be positive");
  RFIPAD_ASSERT(policy.multiplier >= 1.0,
                "backoff multiplier below 1 would shrink the backoff");
  RFIPAD_ASSERT(policy.max_attempts_per_outage >= 1,
                "need at least one reconnect attempt per outage");
  PumpStats st;
  const double t_end = reader.now() + duration_s;
  double backoff = policy.initial_backoff_s;
  int attempts = 0;

  while (reader.now() < t_end - 1e-9) {
    if (!reader.connected()) {
      if (attempts >= policy.max_attempts_per_outage)
        throw std::runtime_error(
            "OctaneClient: reader unreachable after max reconnect attempts");
      ++attempts;
      ++st.reconnect_attempts;
      const double wait = std::min(backoff, t_end - reader.now());
      reader.advance(wait, scene);
      st.offline_s += wait;
      backoff = std::min(backoff * policy.multiplier, policy.max_backoff_s);
      if (reader.tryReconnect()) {
        attempts = 0;
        backoff = policy.initial_backoff_s;
        if (!reader.started()) {
          // The reader rebooted and forgot the ROSpec — redo the handshake.
          connect(reader);
          ++st.rehandshakes;
        }
      }
      continue;
    }

    const double chunk = std::min(policy.poll_chunk_s, t_end - reader.now());
    const auto frames = reader.poll(chunk, scene);
    for (const Bytes& frame : frames) {
      ++st.frames;
      ++st.decode.frames;
      ReportDecodeStats rstats;
      RoAccessReport report;
      try {
        report = decodeRoAccessReport(frame, &rstats);
      } catch (const DecodeError&) {
        ++st.decode.frames_malformed;
        continue;
      }
      st.decode.reports_malformed += rstats.malformed;
      for (const auto& wire : report.reports) {
        reader::TagReport r;
        try {
          r = fromWire(wire);
        } catch (const std::exception&) {
          ++st.decode.reports_malformed;
          continue;
        }
        ++st.reports;
        ++st.decode.reports;
        deliver(r);
      }
    }
    if (!reader.connected()) ++st.disconnects;
  }
  return st;
}

}  // namespace rfipad::llrp
