#include "llrp/bridge.hpp"

#include <cmath>

#include "common/angles.hpp"

namespace rfipad::llrp {

namespace {

/// Default EPC→index mapping for EPCs minted by tag::makeEpc: the dense
/// index lives in the last 8 hex digits.
std::uint32_t defaultEpcToIndex(const std::string& epc) {
  if (epc.size() < 8) throw DecodeError("EPC too short for index suffix");
  return static_cast<std::uint32_t>(
      std::stoul(epc.substr(epc.size() - 8), nullptr, 16));
}

}  // namespace

TagReportData toWire(const reader::TagReport& report) {
  TagReportData t;
  t.epc = TagReportData::epcFromHex(report.epc.str());
  t.antenna_id = report.antenna_id;
  t.peak_rssi_dbm = static_cast<std::int8_t>(std::lround(report.rssi_dbm));
  t.first_seen_utc_us =
      static_cast<std::uint64_t>(std::llround(report.time_s * 1e6));
  t.impinj_phase_angle = static_cast<std::uint16_t>(
      std::lround(wrapTwoPi(report.phase_rad) / kTwoPi * 4096.0)) % 4096;
  t.impinj_doppler_16hz =
      static_cast<std::int16_t>(std::lround(report.doppler_hz * 16.0));
  t.impinj_rssi_centidbm =
      static_cast<std::int16_t>(std::lround(report.rssi_dbm * 100.0));
  return t;
}

reader::TagReport fromWire(
    const TagReportData& wire,
    const std::function<std::uint32_t(const std::string&)>& epcToIndex) {
  reader::TagReport r;
  const std::string epc_hex = wire.epcHex();
  r.epc = epc_hex;
  r.tag_index = epcToIndex ? epcToIndex(epc_hex) : defaultEpcToIndex(epc_hex);
  r.antenna_id = wire.antenna_id;
  r.time_s = static_cast<double>(wire.first_seen_utc_us) / 1e6;
  if (wire.impinj_phase_angle) {
    r.phase_rad = static_cast<double>(*wire.impinj_phase_angle) / 4096.0 * kTwoPi;
  }
  if (wire.impinj_rssi_centidbm) {
    r.rssi_dbm = static_cast<double>(*wire.impinj_rssi_centidbm) / 100.0;
  } else {
    r.rssi_dbm = wire.peak_rssi_dbm;
  }
  if (wire.impinj_doppler_16hz) {
    r.doppler_hz = static_cast<double>(*wire.impinj_doppler_16hz) / 16.0;
  }
  return r;
}

std::vector<Bytes> encodeStream(const reader::SampleStream& stream,
                                std::size_t reportsPerMessage,
                                std::uint32_t firstMessageId) {
  if (reportsPerMessage == 0)
    throw std::invalid_argument("encodeStream: zero batch size");
  std::vector<Bytes> frames;
  RoAccessReport batch;
  std::uint32_t id = firstMessageId;
  for (const auto& r : stream.reports()) {
    batch.reports.push_back(toWire(r));
    if (batch.reports.size() == reportsPerMessage) {
      frames.push_back(encodeRoAccessReport(id++, batch));
      batch.reports.clear();
    }
  }
  if (!batch.reports.empty()) {
    frames.push_back(encodeRoAccessReport(id, batch));
  }
  return frames;
}

reader::SampleStream decodeFrames(
    const std::vector<Bytes>& frames,
    const std::function<std::uint32_t(const std::string&)>& epcToIndex,
    DecodeStats* stats, std::uint32_t max_tag_index) {
  reader::SampleStream stream;
  DecodeStats local;
  DecodeStats& st = stats != nullptr ? *stats : local;
  for (const auto& frame : frames) {
    ++st.frames;
    ReportDecodeStats rstats;
    RoAccessReport report;
    try {
      report = decodeRoAccessReport(frame, &rstats);
    } catch (const DecodeError&) {
      ++st.frames_malformed;
      continue;
    }
    st.reports_malformed += rstats.malformed;
    for (const auto& wire : report.reports) {
      reader::TagReport r;
      try {
        r = fromWire(wire, epcToIndex);
      } catch (const std::exception&) {
        // Custom epcToIndex resolvers may reject corrupted EPCs.
        ++st.reports_malformed;
        continue;
      }
      if (r.tag_index > max_tag_index) {
        ++st.reports_bad_index;
        continue;
      }
      ++st.reports;
      stream.push(std::move(r));
    }
  }
  return stream;
}

}  // namespace rfipad::llrp
