// The RFIPad sensing plate: a grid of passive tags.
//
// Default geometry mirrors the prototype: 5×5 tags at 6 cm pitch (the
// near-field/far-field transition distance, §IV-B1), alternating antenna
// facing, deployed in the z = 0 plane centred at the origin with columns
// along +x and rows along +y.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/vec.hpp"
#include "tag/tag.hpp"

namespace rfipad::tag {

struct ArrayConfig {
  int rows = 5;
  int cols = 5;
  double spacing_m = 0.06;
  TagModel model = TagModel::kB;
  /// Alternate facing checkerboard-style (recommended); otherwise all same.
  bool alternate_facing = true;
  /// Spread of the per-tag deviation-bias multiplier: flicker_bias =
  /// exp(N(0, σ)).  0 disables tag/location diversity (for ablations).
  double flicker_bias_sigma = 0.45;
  /// Disable the uniform per-tag θ_tag offsets (for ablations).
  bool tag_phase_diversity = true;
};

class TagArray {
 public:
  /// Builds the array; `rng` seeds the per-tag diversity draws.
  TagArray(const ArrayConfig& config, Rng& rng);

  int rows() const { return config_.rows; }
  int cols() const { return config_.cols; }
  double spacing() const { return config_.spacing_m; }
  const ArrayConfig& config() const { return config_; }

  std::size_t size() const { return tags_.size(); }
  const std::vector<Tag>& tags() const { return tags_; }
  const Tag& at(std::size_t index) const { return tags_.at(index); }
  const Tag& at(int row, int col) const;

  /// Row-major index for (row, col).
  std::uint32_t indexOf(int row, int col) const;

  /// Index of the tag whose centre is closest to `p` (projected to z = 0).
  std::uint32_t nearestTag(Vec3 p) const;

  /// Physical extent of the plate along x/y (tag span plus one antenna
  /// size): the paper's l ≈ 46 cm for the 5×5 prototype.
  double plateExtentM() const;

  /// Centre position of cell (row, col) — identical to the tag position.
  Vec3 cellCenter(int row, int col) const;

 private:
  ArrayConfig config_;
  std::vector<Tag> tags_;
};

}  // namespace rfipad::tag
