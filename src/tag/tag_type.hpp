// Catalogue of commercial tag models.
//
// The paper tests four commercial tag designs (§IV-B2, Fig. 12) and finds
// that the unmodulated radar scattering cross-section (RCS) governs how much
// a tag disturbs its neighbours: "Tag B (Impinj AZ-E53) is the best choice
// for deploying the tag array".  We keep the same lettering.
#pragma once

#include <string>

#include "rf/coupling.hpp"

namespace rfipad::tag {

enum class TagModel { kA, kB, kC, kD };

struct TagTypeParams {
  TagModel model = TagModel::kB;
  std::string name = "Impinj AZ-E53";
  /// Unmodulated RCS, m² — drives inter-tag shadowing (Figs. 11–12).
  double rcs_m2 = 0.0025;
  /// Minimum incident power for the IC to operate, dBm (forward-link limit).
  double ic_sensitivity_dbm = -18.0;
  /// Fraction of incident power re-radiated in the modulated sideband.
  double modulation_efficiency = 0.1;
  /// Linear antenna gain.
  double antenna_gain = 1.64;
  /// Largest antenna dimension, m (the paper's inlays are ≈4.4 cm).
  double antenna_size_m = 0.044;

  rf::CouplingParams couplingParams() const { return {rcs_m2}; }
};

/// Parameters for one of the four tested tag models.
TagTypeParams tagType(TagModel model);

const char* tagModelName(TagModel model);

}  // namespace rfipad::tag
