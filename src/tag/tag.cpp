#include "tag/tag.hpp"

#include <cstdio>

namespace rfipad::tag {

std::string makeEpc(std::uint32_t index) {
  // Header 0x3000 (SGTIN-96-like), a fixed manager prefix, then the index.
  char buf[25];
  std::snprintf(buf, sizeof(buf), "3000AA00BB00CC00%08X", index);
  return std::string(buf);
}

}  // namespace rfipad::tag
