#include "tag/array.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/angles.hpp"
#include "rf/coupling.hpp"

namespace rfipad::tag {

TagArray::TagArray(const ArrayConfig& config, Rng& rng) : config_(config) {
  if (config.rows <= 0 || config.cols <= 0)
    throw std::invalid_argument("TagArray: non-positive dimensions");
  if (config.spacing_m <= 0.0)
    throw std::invalid_argument("TagArray: non-positive spacing");

  const TagTypeParams type = tagType(config.model);
  const double x0 = -(config.cols - 1) * config.spacing_m / 2.0;
  const double y0 = -(config.rows - 1) * config.spacing_m / 2.0;

  tags_.reserve(static_cast<std::size_t>(config.rows) * config.cols);
  for (int r = 0; r < config.rows; ++r) {
    for (int c = 0; c < config.cols; ++c) {
      Tag t;
      t.index = indexOf(r, c);
      t.epc = makeEpc(t.index);
      t.row = r;
      t.col = c;
      t.position = {x0 + c * config.spacing_m, y0 + r * config.spacing_m, 0.0};
      t.facing = (config.alternate_facing && ((r + c) % 2 == 1))
                     ? Facing::kReverse
                     : Facing::kForward;
      t.type = type;
      t.theta_tag =
          config.tag_phase_diversity ? rng.uniform(0.0, kTwoPi) : 0.0;
      t.flicker_bias = config.flicker_bias_sigma > 0.0
                           ? std::exp(rng.normal(0.0, config.flicker_bias_sigma))
                           : 1.0;
      tags_.push_back(std::move(t));
    }
  }

  // Static coupling penalty from the 8-neighbourhood, using the facing
  // relationship of each pair.
  for (auto& t : tags_) {
    double penalty = 0.0;
    for (const auto& other : tags_) {
      if (other.index == t.index) continue;
      const double d = distance(t.position, other.position);
      if (d > 2.5 * config.spacing_m) continue;
      const rf::TagFacing facing = (t.facing == other.facing)
                                       ? rf::TagFacing::kSame
                                       : rf::TagFacing::kOpposite;
      penalty += rf::pairShadowDb(d, facing, other.type.couplingParams());
    }
    t.coupling_penalty_db = penalty;
  }
}

const Tag& TagArray::at(int row, int col) const {
  return tags_.at(indexOf(row, col));
}

std::uint32_t TagArray::indexOf(int row, int col) const {
  if (row < 0 || row >= config_.rows || col < 0 || col >= config_.cols)
    throw std::out_of_range("TagArray::indexOf: cell out of range");
  return static_cast<std::uint32_t>(row * config_.cols + col);
}

std::uint32_t TagArray::nearestTag(Vec3 p) const {
  std::uint32_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (const auto& t : tags_) {
    const double d = (t.position.xy() - p.xy()).norm();
    if (d < best_d) {
      best_d = d;
      best = t.index;
    }
  }
  return best;
}

double TagArray::plateExtentM() const {
  const double span =
      (std::max(config_.rows, config_.cols) - 1) * config_.spacing_m;
  return tags_.empty() ? span : span + tags_.front().type.antenna_size_m;
}

Vec3 TagArray::cellCenter(int row, int col) const { return at(row, col).position; }

}  // namespace rfipad::tag
