#include "tag/tag_type.hpp"

#include <stdexcept>

namespace rfipad::tag {

TagTypeParams tagType(TagModel model) {
  TagTypeParams p;
  p.model = model;
  switch (model) {
    case TagModel::kA:
      // Mid-size general-purpose inlay.
      p.name = "Alien Squiggle-class (Tag A)";
      p.rcs_m2 = 0.006;
      p.ic_sensitivity_dbm = -17.0;
      p.modulation_efficiency = 0.10;
      p.antenna_size_m = 0.095;
      break;
    case TagModel::kB:
      // Small near-field-friendly inlay — smallest RCS, least interference.
      p.name = "Impinj AZ-E53 (Tag B)";
      p.rcs_m2 = 0.0012;
      p.ic_sensitivity_dbm = -18.0;
      p.modulation_efficiency = 0.08;
      p.antenna_size_m = 0.044;
      break;
    case TagModel::kC:
      p.name = "Large-dipole inlay (Tag C)";
      p.rcs_m2 = 0.009;
      p.ic_sensitivity_dbm = -17.5;
      p.modulation_efficiency = 0.11;
      p.antenna_size_m = 0.11;
      break;
    case TagModel::kD:
      // Big high-RCS label: strongest shadow effect (≈20 dB for 3 columns).
      p.name = "Wide-band label (Tag D)";
      p.rcs_m2 = 0.014;
      p.ic_sensitivity_dbm = -16.5;
      p.modulation_efficiency = 0.12;
      p.antenna_size_m = 0.13;
      break;
    default:
      throw std::invalid_argument("tagType: unknown model");
  }
  return p;
}

const char* tagModelName(TagModel model) {
  switch (model) {
    case TagModel::kA: return "Tag A";
    case TagModel::kB: return "Tag B";
    case TagModel::kC: return "Tag C";
    case TagModel::kD: return "Tag D";
  }
  return "Tag ?";
}

}  // namespace rfipad::tag
