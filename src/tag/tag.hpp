// A single deployed passive tag: identity, geometry, electrical type and the
// per-tag manufacturing diversity the paper's suppression algorithm targets.
#pragma once

#include <cstdint>
#include <string>

#include "common/vec.hpp"
#include "rf/channel.hpp"
#include "tag/tag_type.hpp"

namespace rfipad::tag {

/// Orientation of the tag antenna in the pad plane.  Alternating facing is
/// the paper's recommended deployment (it decouples neighbours, Fig. 11).
enum class Facing { kForward, kReverse };

struct Tag {
  /// Dense index within the array (0-based, row-major).
  std::uint32_t index = 0;
  /// EPC-96 identifier, upper-case hex (24 chars).
  std::string epc;
  /// Grid coordinates within the pad.
  int row = 0;
  int col = 0;
  Vec3 position;
  Facing facing = Facing::kForward;
  TagTypeParams type;

  // -- manufacturing / placement diversity (targets of Eqs. 8-10) --

  /// Per-tag reflection phase θ_tag — uniform over [0, 2π) across tags,
  /// which is why raw phases spread over the full circle (Fig. 4).
  double theta_tag = 0.0;
  /// Per-tag deviation-bias multiplier: scales environmental flicker for
  /// this tag (location + hardware diversity; Fig. 5).
  double flicker_bias = 1.0;
  /// Static RSS penalty (dB, ≤0) from coupling with neighbouring tags.
  double coupling_penalty_db = 0.0;

  rf::TagEndpoint endpoint() const {
    return rf::TagEndpoint{position, type.antenna_gain, 0.5};
  }
};

/// Synthesises a plausible EPC-96 hex string for array position `index`.
std::string makeEpc(std::uint32_t index);

}  // namespace rfipad::tag
