#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>

#include "common/angles.hpp"
#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace rfipad::fault {

namespace {

// Salt constants keeping each fault dimension on an independent random
// stream derived from the plan seed.
constexpr std::uint64_t kSaltDead = 0xDEAD;
constexpr std::uint64_t kSaltDetune = 0xDE7E;
constexpr std::uint64_t kSaltDisconnect = 0xD15C;
constexpr std::uint64_t kSaltReports = 0x4E9;
constexpr std::uint64_t kSaltFrames = 0xF7A3;

/// Seed-stable choice of `count` distinct indices from [0, numTags),
/// excluding `taken`.
std::vector<std::uint32_t> pickTags(std::uint32_t numTags, std::size_t count,
                                    const std::vector<std::uint32_t>& taken,
                                    Rng& rng) {
  std::vector<std::uint32_t> pool;
  pool.reserve(numTags);
  for (std::uint32_t i = 0; i < numTags; ++i) {
    if (std::find(taken.begin(), taken.end(), i) == taken.end())
      pool.push_back(i);
  }
  std::vector<std::uint32_t> out;
  while (out.size() < count && !pool.empty()) {
    const auto k = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(pool.size()) - 1));
    out.push_back(pool[k]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(k));
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool contains(const std::vector<std::uint32_t>& v, std::uint32_t x) {
  return std::binary_search(v.begin(), v.end(), x);
}

}  // namespace

void FaultStats::merge(const FaultStats& other) {
  input_reports += other.input_reports;
  output_reports += other.output_reports;
  dropped_dead += other.dropped_dead;
  dropped_detuned += other.dropped_detuned;
  dropped_missread += other.dropped_missread;
  dropped_disconnect += other.dropped_disconnect;
  phase_glitches += other.phase_glitches;
  detuned_reports += other.detuned_reports;
  duplicated += other.duplicated;
  reordered += other.reordered;
  time_jittered += other.time_jittered;
  frames_in += other.frames_in;
  frames_truncated += other.frames_truncated;
  frames_bitflipped += other.frames_bitflipped;
  outage_windows += other.outage_windows;
  dropped_bad_time += other.dropped_bad_time;
  decode.merge(other.decode);
}

bool FaultPlan::anyStreamFaults() const {
  return !death.dead_tags.empty() || death.dead_fraction > 0.0 ||
         !detune.tags.empty() || detune.detuned_fraction > 0.0 ||
         missread.p_good_to_bad > 0.0 || missread.drop_prob_good > 0.0 ||
         glitch.prob > 0.0 || jitter.reorder_prob > 0.0 ||
         jitter.duplicate_prob > 0.0 || jitter.clock_jitter_std_s > 0.0 ||
         disconnect.rate_hz > 0.0;
}

bool FaultPlan::anyFrameFaults() const {
  return frame.truncate_prob > 0.0 || frame.bit_flip_prob > 0.0;
}

std::vector<std::uint32_t> FaultPlan::resolveDeadTags(
    std::uint32_t numTags) const {
  std::vector<std::uint32_t> dead;
  for (std::uint32_t t : death.dead_tags) {
    if (t < numTags) dead.push_back(t);
  }
  std::sort(dead.begin(), dead.end());
  dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
  if (death.dead_fraction > 0.0) {
    const auto extra = static_cast<std::size_t>(
        std::llround(death.dead_fraction * numTags));
    // Derived from the plan seed only (no per-trial salt): dead hardware
    // stays dead across every trial of a sweep.
    Rng rng(Rng::deriveSeed(seed, kSaltDead));
    auto picked = pickTags(numTags, extra, dead, rng);
    dead.insert(dead.end(), picked.begin(), picked.end());
    std::sort(dead.begin(), dead.end());
  }
  return dead;
}

std::vector<std::uint32_t> FaultPlan::resolveDetunedTags(
    std::uint32_t numTags) const {
  const auto dead = resolveDeadTags(numTags);
  std::vector<std::uint32_t> detuned;
  for (std::uint32_t t : detune.tags) {
    if (t < numTags && !contains(dead, t)) detuned.push_back(t);
  }
  std::sort(detuned.begin(), detuned.end());
  detuned.erase(std::unique(detuned.begin(), detuned.end()), detuned.end());
  if (detune.detuned_fraction > 0.0) {
    const auto extra = static_cast<std::size_t>(
        std::llround(detune.detuned_fraction * numTags));
    Rng rng(Rng::deriveSeed(seed, kSaltDetune));
    std::vector<std::uint32_t> taken = dead;
    taken.insert(taken.end(), detuned.begin(), detuned.end());
    auto picked = pickTags(numTags, extra, taken, rng);
    detuned.insert(detuned.end(), picked.begin(), picked.end());
    std::sort(detuned.begin(), detuned.end());
  }
  return detuned;
}

std::vector<TimeWindow> FaultPlan::outageWindows(double t0, double t1,
                                                 std::uint64_t salt) const {
  std::vector<TimeWindow> out;
  if (disconnect.rate_hz <= 0.0 || t1 <= t0) return out;
  Rng rng(Rng::deriveSeed(Rng::deriveSeed(seed, salt), kSaltDisconnect));
  // Poisson arrivals: exponential inter-arrival gaps, exponential durations.
  double t = t0 + rng.exponential(1.0 / disconnect.rate_hz);
  while (t < t1) {
    const double dur = rng.exponential(disconnect.mean_outage_s);
    out.push_back({t, std::min(t + dur, t1)});
    t = out.back().t1 + rng.exponential(1.0 / disconnect.rate_hz);
  }
  return out;
}

std::vector<reader::TagReport> FaultPlan::applyToReports(
    std::span<const reader::TagReport> reports, std::uint32_t numTags,
    std::uint64_t salt, FaultStats* stats) const {
  // The determinism contract (degraded output is a pure function of
  // plan/input/salt) presumes a well-formed plan; out-of-range
  // probabilities would not crash, they would silently bias every sweep.
  RFIPAD_ASSERT(death.dead_fraction >= 0.0 && death.dead_fraction <= 1.0,
                "dead fraction must be a probability");
  RFIPAD_ASSERT(detune.detuned_fraction >= 0.0 &&
                    detune.detuned_fraction <= 1.0,
                "detuned fraction must be a probability");
  RFIPAD_ASSERT(missread.p_good_to_bad >= 0.0 &&
                    missread.p_good_to_bad <= 1.0 &&
                    missread.p_bad_to_good >= 0.0 &&
                    missread.p_bad_to_good <= 1.0,
                "Gilbert-Elliott transition probabilities must be in [0,1]");
  RFIPAD_ASSERT(jitter.clock_jitter_std_s >= 0.0,
                "clock jitter stddev must be non-negative");
  FaultStats local;
  local.input_reports = reports.size();

  std::vector<reader::TagReport> out;
  out.reserve(reports.size());

  if (!anyStreamFaults()) {
    out.assign(reports.begin(), reports.end());
    local.output_reports = out.size();
    if (stats) stats->merge(local);
    return out;
  }

  const auto dead = resolveDeadTags(numTags);
  const auto detuned = resolveDetunedTags(numTags);
  const double t0 = reports.empty() ? 0.0 : reports.front().time_s;
  const double t1 = reports.empty() ? 0.0 : reports.back().time_s;
  const auto outages = outageWindows(t0, t1 + 1e-9, salt);
  local.outage_windows = outages.size();

  Rng rng(Rng::deriveSeed(Rng::deriveSeed(seed, salt), kSaltReports));

  // Gilbert–Elliott channel state, started from the stationary distribution
  // so short captures see the configured average loss rate.
  bool bad = false;
  if (missread.p_good_to_bad > 0.0) {
    const double denom = missread.p_good_to_bad + missread.p_bad_to_good;
    const double stationary_bad =
        denom > 0.0 ? missread.p_good_to_bad / denom : 0.0;
    bad = rng.chance(stationary_bad);
  }

  std::size_t outage_idx = 0;
  for (const auto& in : reports) {
    // Step the burst chain once per *offered* report, whether or not the
    // report survives the earlier filters — the channel does not care.
    if (missread.p_good_to_bad > 0.0) {
      if (bad) {
        if (rng.chance(missread.p_bad_to_good)) bad = false;
      } else {
        if (rng.chance(missread.p_good_to_bad)) bad = true;
      }
    }

    while (outage_idx < outages.size() && in.time_s >= outages[outage_idx].t1)
      ++outage_idx;
    if (outage_idx < outages.size() && outages[outage_idx].contains(in.time_s)) {
      ++local.dropped_disconnect;
      continue;
    }
    if (contains(dead, in.tag_index)) {
      ++local.dropped_dead;
      continue;
    }

    reader::TagReport r = in;
    if (contains(detuned, in.tag_index)) {
      if (rng.chance(detune.extra_miss_prob)) {
        ++local.dropped_detuned;
        continue;
      }
      r.phase_rad = wrapTwoPi(r.phase_rad + detune.phase_offset_rad);
      r.rssi_dbm -= detune.rssi_loss_db;
      ++local.detuned_reports;
    }
    if (missread.p_good_to_bad > 0.0 || missread.drop_prob_good > 0.0) {
      const double p =
          bad ? missread.drop_prob_bad : missread.drop_prob_good;
      if (rng.chance(p)) {
        ++local.dropped_missread;
        continue;
      }
    }
    if (glitch.prob > 0.0 && rng.chance(glitch.prob)) {
      r.phase_rad = wrapTwoPi(
          r.phase_rad + rng.uniform(-glitch.max_jump_rad, glitch.max_jump_rad));
      ++local.phase_glitches;
    }
    if (jitter.clock_jitter_std_s > 0.0) {
      const double jittered =
          r.time_s + rng.normal(0.0, jitter.clock_jitter_std_s);
      if (jittered != r.time_s) ++local.time_jittered;
      r.time_s = std::max(jittered, 0.0);
    }

    out.push_back(r);
    if (jitter.duplicate_prob > 0.0 && rng.chance(jitter.duplicate_prob)) {
      out.push_back(out.back());
      ++local.duplicated;
    }
    if (out.size() >= 2 && jitter.reorder_prob > 0.0 &&
        rng.chance(jitter.reorder_prob)) {
      std::swap(out[out.size() - 1], out[out.size() - 2]);
      ++local.reordered;
    }
  }

  local.output_reports = out.size();
  if (stats) stats->merge(local);
  return out;
}

reader::SampleStream FaultPlan::apply(const reader::SampleStream& stream,
                                      std::uint64_t salt,
                                      FaultStats* stats) const {
  const std::uint32_t num_tags = stream.numTags();
  const auto degraded =
      applyToReports(stream.reports(), num_tags, salt, stats);

  if (!anyFrameFaults()) {
    reader::SampleStream out(num_tags);
    out.reserve(degraded.size());
    for (const auto& r : degraded) out.push(r);
    return out;
  }

  // Route the degraded reports through the real wire format so LLRP decode
  // robustness is part of the measured pipeline: encode → corrupt frames →
  // lenient decode.
  reader::SampleStream mid(num_tags);
  mid.reserve(degraded.size());
  for (const auto& r : degraded) mid.push(r);
  auto frames = llrp::encodeStream(mid);
  frames = applyToFrames(frames, salt, stats);

  const std::uint32_t cap =
      max_tag_index != std::numeric_limits<std::uint32_t>::max()
          ? max_tag_index
          : (num_tags > 0 ? num_tags - 1
                          : std::numeric_limits<std::uint32_t>::max());
  llrp::DecodeStats dstats;
  const auto decoded = llrp::decodeFrames(frames, {}, &dstats, cap);
  if (stats) stats->decode.merge(dstats);

  // A flipped FirstSeenUTC bit can teleport a read hours away; bound the
  // damage to the capture window (with slack for legitimate clock jitter)
  // so downstream time sweeps stay proportional to the real capture.
  const double t_lo = mid.empty() ? 0.0 : mid.startTime() - 1.0;
  const double t_hi = mid.empty() ? 0.0 : mid.endTime() + 1.0;
  reader::SampleStream out(num_tags);
  out.reserve(decoded.size());
  for (const auto& r : decoded.reports()) {
    if (r.time_s < t_lo || r.time_s > t_hi) {
      if (stats) ++stats->dropped_bad_time;
      continue;
    }
    out.push(r);
  }
  if (out.numTags() < num_tags) out.setNumTags(num_tags);
  // applyToReports counted the pre-wire population; report what actually
  // survived the round trip.
  if (stats)
    stats->output_reports = stats->output_reports - degraded.size() + out.size();
  return out;
}

std::vector<llrp::Bytes> FaultPlan::applyToFrames(
    const std::vector<llrp::Bytes>& frames, std::uint64_t salt,
    FaultStats* stats) const {
  RFIPAD_ASSERT(frame.truncate_prob >= 0.0 && frame.truncate_prob <= 1.0 &&
                    frame.bit_flip_prob >= 0.0 && frame.bit_flip_prob <= 1.0,
                "frame corruption probabilities must be in [0,1]");
  RFIPAD_ASSERT(frame.flips_per_frame >= 0,
                "flips per frame must be non-negative");
  FaultStats local;
  local.frames_in = frames.size();

  std::vector<llrp::Bytes> out;
  out.reserve(frames.size());
  const std::uint64_t base = Rng::deriveSeed(seed, salt);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    llrp::Bytes f = frames[i];
    if (anyFrameFaults() && !f.empty()) {
      // Per-frame stateless stream: corruption of frame i does not depend
      // on how many frames preceded it.
      Rng rng(Rng::deriveSeed(base, kSaltFrames + i));
      if (frame.truncate_prob > 0.0 && rng.chance(frame.truncate_prob)) {
        const auto keep = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(f.size()) - 1));
        f.resize(keep);
        ++local.frames_truncated;
      }
      if (!f.empty() && frame.bit_flip_prob > 0.0 &&
          rng.chance(frame.bit_flip_prob)) {
        for (int b = 0; b < frame.flips_per_frame; ++b) {
          const auto byte = static_cast<std::size_t>(
              rng.uniformInt(0, static_cast<std::int64_t>(f.size()) - 1));
          const auto bit = static_cast<int>(rng.uniformInt(0, 7));
          f[byte] ^= static_cast<std::uint8_t>(1u << bit);
        }
        ++local.frames_bitflipped;
      }
    }
    if (!f.empty()) out.push_back(std::move(f));
  }
  if (stats) stats->merge(local);
  return out;
}

}  // namespace rfipad::fault
