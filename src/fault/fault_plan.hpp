// Deterministic fault injection for the LLRP/reader/recognition pipeline.
//
// Real RFID pads are never as clean as §V's testbed: tags die or detune,
// miss-reads arrive in bursts (channel fading is bursty, not i.i.d. — the
// classic Gilbert–Elliott behaviour), reader links drop, and the TCP byte
// stream a client actually sees can be truncated or bit-flipped.  A
// FaultPlan is a seeded, composable description of such an environment: it
// wraps a clean SampleStream (or a clean LLRP frame vector) and produces
// the degraded version a deployment would have to survive, without ever
// touching the clean path.
//
// Determinism contract: the degraded output is a pure function of
// (plan, input, salt).  All randomness derives statelessly from
// Rng::deriveSeed(plan.seed, salt), so the same plan + salt yields a
// bit-identical degraded stream no matter how many trials ran before it or
// how many worker threads the batch runner uses.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "llrp/bridge.hpp"
#include "reader/sample_stream.hpp"

namespace rfipad::fault {

/// Half-open interval [t0, t1) on the reader clock.
struct TimeWindow {
  double t0 = 0.0;
  double t1 = 0.0;
  bool contains(double t) const { return t >= t0 && t < t1; }
};

/// Tags that never respond (dead IC, torn antenna, fully detuned).
struct TagDeathFault {
  /// Explicit dead tag indices.
  std::vector<std::uint32_t> dead_tags;
  /// Additionally kill this fraction of the array, chosen by the plan seed
  /// (stable across trials — dead hardware stays dead).
  double dead_fraction = 0.0;
};

/// Tags detuned by mounting surface / neighbour coupling: they still
/// answer, but with a shifted phase, attenuated RSS and a higher miss rate.
struct TagDetuneFault {
  std::vector<std::uint32_t> tags;
  double detuned_fraction = 0.0;
  double phase_offset_rad = 0.7;
  double rssi_loss_db = 6.0;
  /// Extra per-read drop probability for detuned tags.
  double extra_miss_prob = 0.3;
};

/// Bursty miss-reads: a two-state Gilbert–Elliott chain stepped once per
/// report.  The stationary loss rate is
///   p_bad/(p_bad+p_good') weighted mix of the two drop probabilities.
struct MissReadFault {
  /// Transition probability good → bad per report.
  double p_good_to_bad = 0.0;
  /// Transition probability bad → good per report.
  double p_bad_to_good = 0.25;
  double drop_prob_good = 0.0;
  double drop_prob_bad = 0.85;
};

/// Sporadic phase-jump glitches (EPC backscatter decoded off a sidelobe,
/// cable flex, hopping transients): the reported phase jumps by up to
/// ±max_jump_rad.
struct PhaseGlitchFault {
  double prob = 0.0;
  double max_jump_rad = 1.5707963267948966;  // π/2
};

/// Transport-layer untidiness: reports delivered out of order, duplicated
/// (retransmission after a hiccup), or carrying jittered timestamps.
struct ReportJitterFault {
  /// Probability a report is swapped with its predecessor in the delivered
  /// order (bounded, adjacent reordering).
  double reorder_prob = 0.0;
  /// Probability a report is delivered twice.
  double duplicate_prob = 0.0;
  /// Gaussian timestamp jitter, seconds (0 = exact clocks).
  double clock_jitter_std_s = 0.0;
};

/// Reader link outages: windows during which every report is lost (client
/// disconnected, reader rebooting, antenna cable yanked).
struct DisconnectFault {
  /// Expected outages per second of capture (Poisson arrivals).
  double rate_hz = 0.0;
  /// Mean outage duration, seconds (exponential).
  double mean_outage_s = 0.4;
};

/// Wire-level corruption of LLRP frames.
struct FrameFault {
  /// Probability a frame is truncated at a random byte.
  double truncate_prob = 0.0;
  /// Probability a frame has bits flipped.
  double bit_flip_prob = 0.0;
  /// Bits flipped per corrupted frame (each at a random position).
  int flips_per_frame = 3;
};

/// Everything a plan did to one stream/frame vector, by cause.
struct FaultStats {
  std::uint64_t input_reports = 0;
  std::uint64_t output_reports = 0;
  std::uint64_t dropped_dead = 0;
  std::uint64_t dropped_detuned = 0;
  std::uint64_t dropped_missread = 0;
  std::uint64_t dropped_disconnect = 0;
  std::uint64_t phase_glitches = 0;
  std::uint64_t detuned_reports = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t time_jittered = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_truncated = 0;
  std::uint64_t frames_bitflipped = 0;
  std::uint64_t outage_windows = 0;
  /// Reports whose decoded timestamp landed outside the capture window
  /// (a flipped FirstSeenUTC bit can claim a read hours in the future —
  /// accepting it would make every downstream time sweep unbounded).
  std::uint64_t dropped_bad_time = 0;
  /// Decoder-side outcome when the plan routed the stream through the wire
  /// format (frame faults enabled).
  llrp::DecodeStats decode{};

  std::uint64_t droppedTotal() const {
    return dropped_dead + dropped_detuned + dropped_missread +
           dropped_disconnect;
  }
  void merge(const FaultStats& other);
};

class FaultPlan {
 public:
  std::uint64_t seed = 0xF4017;
  TagDeathFault death{};
  TagDetuneFault detune{};
  MissReadFault missread{};
  PhaseGlitchFault glitch{};
  ReportJitterFault jitter{};
  DisconnectFault disconnect{};
  FrameFault frame{};
  /// Reports decoded off the wire with a tag index above this are counted
  /// and dropped (a flipped EPC bit must not blow up downstream
  /// allocations).  Defaults to the input stream's tag count.
  std::uint32_t max_tag_index = std::numeric_limits<std::uint32_t>::max();

  bool anyStreamFaults() const;
  bool anyFrameFaults() const;

  /// Dead tag set: the explicit list plus `dead_fraction` of the array
  /// chosen by the plan seed.  Stable across trials (hardware faults are).
  std::vector<std::uint32_t> resolveDeadTags(std::uint32_t numTags) const;
  /// Detuned tag set, disjoint from the dead set.
  std::vector<std::uint32_t> resolveDetunedTags(std::uint32_t numTags) const;

  /// Outage windows covering [t0, t1), derived from (seed, salt).
  std::vector<TimeWindow> outageWindows(double t0, double t1,
                                        std::uint64_t salt = 0) const;

  /// Degrade a report sequence, preserving delivery order effects
  /// (duplicates stay adjacent, reorders swap neighbours).  This is the
  /// feed for streaming consumers (OnlineRecognizer::push) and the
  /// per-chunk degradation hook of the session serving layer.
  std::vector<reader::TagReport> applyToReports(
      std::span<const reader::TagReport> reports, std::uint32_t numTags,
      std::uint64_t salt = 0, FaultStats* stats = nullptr) const;

  /// Degrade a stream.  When frame faults are configured the degraded
  /// reports additionally take a real wire round trip
  /// (encodeStream → corrupt frames → lenient decodeFrames), so LLRP
  /// decoding robustness is part of the measured pipeline.
  reader::SampleStream apply(const reader::SampleStream& stream,
                             std::uint64_t salt = 0,
                             FaultStats* stats = nullptr) const;

  /// Corrupt LLRP frames (truncation, bit flips) per `frame`.
  std::vector<llrp::Bytes> applyToFrames(const std::vector<llrp::Bytes>& frames,
                                         std::uint64_t salt = 0,
                                         FaultStats* stats = nullptr) const;
};

}  // namespace rfipad::fault
