// Binary image over the tag grid plus connected-component analysis.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "imgproc/graymap.hpp"

namespace rfipad::imgproc {

struct Cell {
  int row = 0;
  int col = 0;
  bool operator==(const Cell&) const = default;
};

class BinaryMap {
 public:
  BinaryMap(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  bool at(int r, int c) const;
  void set(int r, int c, bool v);
  /// Unchecked row-major store for flat single-pass writers (binarize);
  /// idx must be < rows()*cols().
  void setFlat(std::size_t idx, bool v) { bits_[idx] = v ? 1 : 0; }

  /// Number of foreground ('1') pixels.
  int count() const;
  /// All foreground cells in row-major order.
  std::vector<Cell> foreground() const;

  /// Connected components of the foreground (8-connectivity), largest first.
  std::vector<std::vector<Cell>> components() const;
  /// Foreground restricted to the largest component (empty map if none).
  BinaryMap largestComponent() const;

  std::string ascii() const;

 private:
  int rows_;
  int cols_;
  std::vector<std::uint8_t> bits_;
};

/// Otsu's clustering threshold over a small set of values (paper §III-A3,
/// [21]).  With as few as 25 pixels an exhaustive scan over candidate
/// thresholds is exact and robust; returns the threshold maximising
/// between-class variance.  Values above the threshold are foreground.
double otsuThreshold(const std::vector<double>& values);

/// Binarise a graymap with Otsu's method.
BinaryMap otsuBinarize(const GrayMap& map);

/// Confidence-weighted Otsu threshold: each value contributes its weight to
/// the class masses and means, so a barely-observed (imputed / dead-
/// neighbour) pixel cannot drag the split the way a fully-observed one can.
/// Uniform weights reproduce the unweighted threshold.  Weights must be
/// finite and non-negative; an all-zero weight vector falls back to the
/// unweighted threshold.
double otsuThresholdWeighted(const std::vector<double>& values,
                             const std::vector<double>& weights);

/// Binarise with the confidence-weighted Otsu threshold (weights laid out
/// like the map, row-major).
BinaryMap otsuBinarizeWeighted(const GrayMap& map, const GrayMap& weights);

/// Binarise with an explicit threshold (ablation baseline).
BinaryMap binarize(const GrayMap& map, double threshold);

}  // namespace rfipad::imgproc
