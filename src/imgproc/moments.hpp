// Image-moment analysis of a foreground point set: centroid, principal
// axis, elongation and bounding box.  These are the geometric features the
// stroke classifier uses to tell a column from a row from a diagonal from
// an arc on the 5×5 pad.
#pragma once

#include <vector>

#include "imgproc/binary_map.hpp"

namespace rfipad::imgproc {

struct ShapeMoments {
  int count = 0;
  /// Centroid in (row, col) coordinates.
  double centroid_row = 0.0;
  double centroid_col = 0.0;
  /// Central second moments.
  double mu_rr = 0.0;
  double mu_cc = 0.0;
  double mu_rc = 0.0;
  /// Principal-axis angle, radians in (−π/2, π/2], measured from the +col
  /// axis toward +row (i.e. atan2 over the dominant eigenvector).
  double axis_angle = 0.0;
  /// sqrt of eigenvalue ratio λ_major/λ_minor; large → line-like, near 1 →
  /// blob-like.  Defined as +inf-ish (1e9) for perfectly collinear sets.
  double elongation = 1.0;
  /// Bounding box, inclusive.
  int min_row = 0, max_row = 0, min_col = 0, max_col = 0;

  int bboxHeight() const { return max_row - min_row + 1; }
  int bboxWidth() const { return max_col - min_col + 1; }
};

/// Moments of an explicit cell set (weights all equal).
ShapeMoments computeMoments(const std::vector<Cell>& cells);

/// Moments of the foreground of a binary map.
ShapeMoments computeMoments(const BinaryMap& map);

/// Weighted moments over a graymap (pixel value = weight); background
/// pixels with non-positive weight are ignored.
ShapeMoments computeWeightedMoments(const GrayMap& map);

/// Mean perpendicular offset of the cells from the straight line through
/// the endpoints, signed toward +normal.  Arcs bow consistently to one side
/// (|value| large); straight strokes stay near 0.  `ordered` must list the
/// cells in stroke order (e.g. sorted along the principal axis).
double arcBowSigned(const std::vector<Cell>& ordered);

}  // namespace rfipad::imgproc
