// Gray-scale image over the tag grid.  Each pixel is one tag's activation
// (the revised accumulative phase difference I'_i of Eq. 10); "the whiter
// the pixel, the larger the I'_i value the tag bears" (Fig. 7).
#pragma once

#include <string>
#include <vector>

namespace rfipad::imgproc {

class GrayMap {
 public:
  GrayMap(int rows, int cols, double fill = 0.0);
  /// Builds from row-major values; size must equal rows*cols.
  GrayMap(int rows, int cols, std::vector<double> values);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return values_.size(); }

  double at(int r, int c) const;
  double& at(int r, int c);
  const std::vector<double>& values() const { return values_; }

  double minValue() const;
  double maxValue() const;

  /// Linearly rescaled copy with values in [0, 1] (flat maps come back as
  /// all-zeros).
  GrayMap normalized() const;

  /// Multi-level ASCII rendering (darkest '.', brightest '#'), row 0 at the
  /// top; used by the examples and the Fig. 7 / Fig. 25 benches.
  std::string ascii() const;

 private:
  int rows_;
  int cols_;
  std::vector<double> values_;
};

}  // namespace rfipad::imgproc
