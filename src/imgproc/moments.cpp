#include "imgproc/moments.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rfipad::imgproc {

namespace {

ShapeMoments momentsFromWeighted(const std::vector<Cell>& cells,
                                 const std::vector<double>& weights) {
  if (cells.empty()) throw std::invalid_argument("computeMoments: empty set");
  ShapeMoments m;
  m.count = static_cast<int>(cells.size());
  double wsum = 0.0;
  double sr = 0.0, sc = 0.0;
  m.min_row = m.max_row = cells.front().row;
  m.min_col = m.max_col = cells.front().col;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const double w = weights[i];
    wsum += w;
    sr += w * cells[i].row;
    sc += w * cells[i].col;
    m.min_row = std::min(m.min_row, cells[i].row);
    m.max_row = std::max(m.max_row, cells[i].row);
    m.min_col = std::min(m.min_col, cells[i].col);
    m.max_col = std::max(m.max_col, cells[i].col);
  }
  if (wsum <= 0.0) throw std::invalid_argument("computeMoments: zero weight");
  m.centroid_row = sr / wsum;
  m.centroid_col = sc / wsum;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const double w = weights[i];
    const double dr = cells[i].row - m.centroid_row;
    const double dc = cells[i].col - m.centroid_col;
    m.mu_rr += w * dr * dr;
    m.mu_cc += w * dc * dc;
    m.mu_rc += w * dr * dc;
  }
  m.mu_rr /= wsum;
  m.mu_cc /= wsum;
  m.mu_rc /= wsum;

  // Eigen-decomposition of the 2×2 covariance.
  const double tr = m.mu_rr + m.mu_cc;
  const double det = m.mu_rr * m.mu_cc - m.mu_rc * m.mu_rc;
  const double disc = std::sqrt(std::max(0.0, tr * tr / 4.0 - det));
  const double l1 = tr / 2.0 + disc;  // major
  const double l2 = tr / 2.0 - disc;  // minor
  m.elongation = l2 > 1e-12 ? std::sqrt(l1 / l2) : (l1 > 1e-12 ? 1e9 : 1.0);
  // Major-axis direction: eigenvector of l1.
  if (std::abs(m.mu_rc) > 1e-12) {
    m.axis_angle = std::atan2(l1 - m.mu_cc, m.mu_rc);
  } else {
    m.axis_angle = m.mu_rr >= m.mu_cc ? 3.14159265358979323846 / 2.0 : 0.0;
  }
  // Normalise to (−π/2, π/2].
  while (m.axis_angle > 3.14159265358979323846 / 2.0)
    m.axis_angle -= 3.14159265358979323846;
  while (m.axis_angle <= -3.14159265358979323846 / 2.0)
    m.axis_angle += 3.14159265358979323846;
  return m;
}

}  // namespace

ShapeMoments computeMoments(const std::vector<Cell>& cells) {
  return momentsFromWeighted(cells, std::vector<double>(cells.size(), 1.0));
}

ShapeMoments computeMoments(const BinaryMap& map) {
  return computeMoments(map.foreground());
}

ShapeMoments computeWeightedMoments(const GrayMap& map) {
  std::vector<Cell> cells;
  std::vector<double> weights;
  for (int r = 0; r < map.rows(); ++r) {
    for (int c = 0; c < map.cols(); ++c) {
      const double v = map.at(r, c);
      if (v > 0.0) {
        cells.push_back({r, c});
        weights.push_back(v);
      }
    }
  }
  return momentsFromWeighted(cells, weights);
}

double arcBowSigned(const std::vector<Cell>& ordered) {
  if (ordered.size() < 3) return 0.0;
  const Cell& a = ordered.front();
  const Cell& b = ordered.back();
  const double dr = b.row - a.row;
  const double dc = b.col - a.col;
  const double len = std::sqrt(dr * dr + dc * dc);
  if (len < 1e-9) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 1; i + 1 < ordered.size(); ++i) {
    const double vr = ordered[i].row - a.row;
    const double vc = ordered[i].col - a.col;
    // Perpendicular (signed, left-of-chord positive) distance.
    sum += (dc * vr - dr * vc) / len;
  }
  return sum / static_cast<double>(ordered.size() - 2);
}

}  // namespace rfipad::imgproc
