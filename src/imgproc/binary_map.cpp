#include "imgproc/binary_map.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"

namespace rfipad::imgproc {

BinaryMap::BinaryMap(int rows, int cols) : rows_(rows), cols_(cols) {
  if (rows <= 0 || cols <= 0)
    throw std::invalid_argument("BinaryMap: non-positive dimensions");
  bits_.assign(static_cast<std::size_t>(rows) * cols, 0);
}

bool BinaryMap::at(int r, int c) const {
  if (r < 0 || r >= rows_ || c < 0 || c >= cols_)
    throw std::out_of_range("BinaryMap::at");
  return bits_[static_cast<std::size_t>(r) * cols_ + c] != 0;
}

void BinaryMap::set(int r, int c, bool v) {
  if (r < 0 || r >= rows_ || c < 0 || c >= cols_)
    throw std::out_of_range("BinaryMap::set");
  bits_[static_cast<std::size_t>(r) * cols_ + c] = v ? 1 : 0;
}

int BinaryMap::count() const {
  return static_cast<int>(std::count(bits_.begin(), bits_.end(), 1));
}

std::vector<Cell> BinaryMap::foreground() const {
  std::vector<Cell> cells;
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c)
      if (at(r, c)) cells.push_back({r, c});
  return cells;
}

namespace {

/// Flood fill (8-connectivity) from (r, c) into `comp`, marking `seen`.
/// `stack` is caller-owned scratch so repeated fills reuse its capacity.
void floodFill(const BinaryMap& map, int r, int c, std::vector<std::uint8_t>& seen,
               std::vector<Cell>& stack, std::vector<Cell>& comp) {
  const int cols = map.cols();
  stack.clear();
  stack.push_back({r, c});
  seen[static_cast<std::size_t>(r) * cols + c] = 1;
  while (!stack.empty()) {
    const Cell cur = stack.back();
    stack.pop_back();
    comp.push_back(cur);
    for (int dr = -1; dr <= 1; ++dr) {
      for (int dc = -1; dc <= 1; ++dc) {
        if (dr == 0 && dc == 0) continue;
        const int nr = cur.row + dr;
        const int nc = cur.col + dc;
        if (nr < 0 || nr >= map.rows() || nc < 0 || nc >= cols) continue;
        const std::size_t nidx = static_cast<std::size_t>(nr) * cols + nc;
        if (!map.at(nr, nc) || seen[nidx]) continue;
        seen[nidx] = 1;
        stack.push_back({nr, nc});
      }
    }
  }
}

}  // namespace

std::vector<std::vector<Cell>> BinaryMap::components() const {
  std::vector<std::vector<Cell>> comps;
  std::vector<std::uint8_t> seen(bits_.size(), 0);
  std::vector<Cell> stack;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const std::size_t idx = static_cast<std::size_t>(r) * cols_ + c;
      if (!at(r, c) || seen[idx]) continue;
      std::vector<Cell> comp;
      floodFill(*this, r, c, seen, stack, comp);
      comps.push_back(std::move(comp));
    }
  }
  std::sort(comps.begin(), comps.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  return comps;
}

BinaryMap BinaryMap::largestComponent() const {
  // Single pass keeping only the best component so far — no full component
  // list, no sort, two reusable scratch buffers.
  BinaryMap out(rows_, cols_);
  std::vector<std::uint8_t> seen(bits_.size(), 0);
  std::vector<Cell> stack, comp, best;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const std::size_t idx = static_cast<std::size_t>(r) * cols_ + c;
      if (!at(r, c) || seen[idx]) continue;
      comp.clear();
      floodFill(*this, r, c, seen, stack, comp);
      if (comp.size() > best.size()) best.swap(comp);
    }
  }
  for (const Cell& c : best) out.set(c.row, c.col, true);
  return out;
}

std::string BinaryMap::ascii() const {
  std::string out;
  for (int r = rows_ - 1; r >= 0; --r) {
    for (int c = 0; c < cols_; ++c) {
      out.push_back(at(r, c) ? '#' : '.');
      out.push_back(' ');
    }
    out.push_back('\n');
  }
  return out;
}

double otsuThreshold(const std::vector<double>& values) {
  if (values.size() < 2)
    throw std::invalid_argument("otsuThreshold: need at least 2 values");
  for (const double v : values) {
    // A NaN would poison the sort's strict weak ordering and an infinity
    // the prefix sums — both would silently skew the threshold.
    RFIPAD_ASSERT(std::isfinite(v), "Otsu input values must be finite");
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());

  // Class statistics via a running prefix sum carried through the scan —
  // single pass, no prefix array.  Both the total and the running sum
  // accumulate left-to-right, so the arithmetic (and the chosen threshold)
  // is bit-identical to the old prefix-vector form.
  double total = 0.0;
  for (const double v : sorted) total += v;
  const double n = static_cast<double>(sorted.size());

  double best_sigma = -1.0;
  double best_threshold = sorted.front();
  double run = sorted.front();  // Σ sorted[0..k) entering iteration k
  for (std::size_t k = 1; k < sorted.size(); ++k, run += sorted[k - 1]) {
    if (sorted[k] == sorted[k - 1]) continue;  // no split between equals
    const double n0 = static_cast<double>(k);
    const double n1 = n - n0;
    const double mu0 = run / n0;
    const double mu1 = (total - run) / n1;
    const double w0 = n0 / n;
    const double w1 = n1 / n;
    const double sigma_b = w0 * w1 * (mu0 - mu1) * (mu0 - mu1);
    if (sigma_b > best_sigma) {
      best_sigma = sigma_b;
      best_threshold = 0.5 * (sorted[k - 1] + sorted[k]);
    }
  }
  return best_threshold;
}

BinaryMap binarize(const GrayMap& map, double threshold) {
  RFIPAD_ASSERT(!std::isnan(threshold), "binarize threshold must not be NaN");
  BinaryMap out(map.rows(), map.cols());
  // Flat single-pass compare over the row-major values; the bounds-checked
  // at()/set() pair per pixel defeated vectorisation.
  const std::vector<double>& v = map.values();
  for (std::size_t i = 0; i < v.size(); ++i) out.setFlat(i, v[i] > threshold);
  return out;
}

BinaryMap otsuBinarize(const GrayMap& map) {
  return binarize(map, otsuThreshold(map.values()));
}

double otsuThresholdWeighted(const std::vector<double>& values,
                             const std::vector<double>& weights) {
  if (values.size() < 2)
    throw std::invalid_argument("otsuThresholdWeighted: need at least 2 values");
  if (weights.size() != values.size())
    throw std::invalid_argument("otsuThresholdWeighted: size mismatch");
  double total_w = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    RFIPAD_ASSERT(std::isfinite(values[i]), "Otsu input values must be finite");
    RFIPAD_ASSERT(std::isfinite(weights[i]) && weights[i] >= 0.0,
                  "Otsu weights must be finite and non-negative");
    total_w += weights[i];
  }
  if (total_w <= 0.0) return otsuThreshold(values);

  // Sort (value, weight) pairs by value, tie-broken by weight, so the
  // prefix-sum accumulation order — and hence the returned bits — is a pure
  // function of the input multiset.
  std::vector<std::pair<double, double>> sorted;
  sorted.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    sorted.emplace_back(values[i], weights[i]);
  std::sort(sorted.begin(), sorted.end());

  double total_wv = 0.0;
  for (const auto& [v, w] : sorted) total_wv += w * v;

  double best_sigma = -1.0;
  double best_threshold = sorted.front().first;
  double run_w = sorted.front().second;
  double run_wv = sorted.front().second * sorted.front().first;
  for (std::size_t k = 1; k < sorted.size(); ++k) {
    if (k > 1) {
      run_w += sorted[k - 1].second;
      run_wv += sorted[k - 1].second * sorted[k - 1].first;
    }
    if (sorted[k].first == sorted[k - 1].first) continue;  // no split between equals
    const double w0 = run_w;
    const double w1 = total_w - run_w;
    if (w0 <= 0.0 || w1 <= 0.0) continue;  // zero-weight class: no split here
    const double mu0 = run_wv / w0;
    const double mu1 = (total_wv - run_wv) / w1;
    const double sigma_b =
        (w0 / total_w) * (w1 / total_w) * (mu0 - mu1) * (mu0 - mu1);
    if (sigma_b > best_sigma) {
      best_sigma = sigma_b;
      best_threshold = 0.5 * (sorted[k - 1].first + sorted[k].first);
    }
  }
  return best_threshold;
}

BinaryMap otsuBinarizeWeighted(const GrayMap& map, const GrayMap& weights) {
  if (weights.rows() != map.rows() || weights.cols() != map.cols())
    throw std::invalid_argument("otsuBinarizeWeighted: grid size mismatch");
  return binarize(map, otsuThresholdWeighted(map.values(), weights.values()));
}

}  // namespace rfipad::imgproc
