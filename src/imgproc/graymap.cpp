#include "imgproc/graymap.hpp"

#include <algorithm>
#include <stdexcept>

namespace rfipad::imgproc {

GrayMap::GrayMap(int rows, int cols, double fill)
    : rows_(rows), cols_(cols) {
  if (rows <= 0 || cols <= 0)
    throw std::invalid_argument("GrayMap: non-positive dimensions");
  values_.assign(static_cast<std::size_t>(rows) * cols, fill);
}

GrayMap::GrayMap(int rows, int cols, std::vector<double> values)
    : rows_(rows), cols_(cols), values_(std::move(values)) {
  if (rows <= 0 || cols <= 0)
    throw std::invalid_argument("GrayMap: non-positive dimensions");
  if (values_.size() != static_cast<std::size_t>(rows) * cols)
    throw std::invalid_argument("GrayMap: value count mismatch");
}

double GrayMap::at(int r, int c) const {
  if (r < 0 || r >= rows_ || c < 0 || c >= cols_)
    throw std::out_of_range("GrayMap::at");
  return values_[static_cast<std::size_t>(r) * cols_ + c];
}

double& GrayMap::at(int r, int c) {
  if (r < 0 || r >= rows_ || c < 0 || c >= cols_)
    throw std::out_of_range("GrayMap::at");
  return values_[static_cast<std::size_t>(r) * cols_ + c];
}

double GrayMap::minValue() const {
  return *std::min_element(values_.begin(), values_.end());
}

double GrayMap::maxValue() const {
  return *std::max_element(values_.begin(), values_.end());
}

GrayMap GrayMap::normalized() const {
  // Fused min/max in one pass over the flat values (minValue()/maxValue()
  // would scan twice); the rescale loop is a branch-free flat multiply.
  const auto [lo_it, hi_it] = std::minmax_element(values_.begin(), values_.end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  GrayMap out(rows_, cols_);
  if (hi > lo) {
    const double range = hi - lo;
    for (std::size_t i = 0; i < values_.size(); ++i)
      out.values_[i] = (values_[i] - lo) / range;
  }
  return out;
}

std::string GrayMap::ascii() const {
  static const char kLevels[] = {'.', ':', '-', '=', '+', '*', '%', '@', '#'};
  constexpr int kNumLevels = static_cast<int>(sizeof(kLevels));
  const GrayMap n = normalized();
  std::string out;
  out.reserve(static_cast<std::size_t>(rows_) * (cols_ * 2 + 1));
  for (int r = rows_ - 1; r >= 0; --r) {  // row 0 at the bottom of the pad
    for (int c = 0; c < cols_; ++c) {
      const int lvl = std::min(kNumLevels - 1,
                               static_cast<int>(n.at(r, c) * kNumLevels));
      out.push_back(kLevels[lvl]);
      out.push_back(' ');
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace rfipad::imgproc
