// Hand-trajectory synthesis.
//
// A Trajectory is an analytic, continuous function t → hand position built
// from piecewise segments: writing strokes at hover height, inter-stroke
// adjustment moves with the arm raised (the paper's "adjustment interval",
// §III-C1), click dips, and idle holds.  Smooth per-user jitter is overlaid
// so no two repetitions are identical.  Because the function is evaluable at
// any t, the Gen2 MAC can sample it at the exact singulation instants.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/vec.hpp"
#include "sim/stroke.hpp"
#include "sim/user.hpp"

namespace rfipad::sim {

/// Ground-truth annotation: when each stroke was actually written.
struct StrokeInterval {
  StrokePlan plan;
  double t0 = 0.0;
  double t1 = 0.0;
};

class Trajectory {
 public:
  /// Hand position at time t (clamped to the trajectory's span).
  Vec3 positionAt(double t) const;
  /// Hand velocity at time t (central difference), m/s.
  Vec3 velocityAt(double t) const;

  double startTime() const { return segments_.empty() ? 0.0 : segments_.front().t0; }
  double endTime() const { return segments_.empty() ? 0.0 : segments_.back().t1; }
  double durationS() const { return endTime() - startTime(); }

  /// Ground-truth stroke intervals in time order.
  const std::vector<StrokeInterval>& strokes() const { return strokes_; }

 private:
  friend class TrajectoryBuilder;

  struct Segment {
    enum class Kind { kLine, kStroke, kDip, kHold };
    Kind kind = Kind::kHold;
    double t0 = 0.0;
    double t1 = 0.0;
    // kLine / kHold: endpoints (kHold uses p0 only).
    Vec3 p0, p1;
    // kStroke: the pad-plane path, written at height z.
    StrokePlan plan{};
    double z = 0.0;
    // kDip: vertical push at xy = p0.xy(), from z_high to z_low and back.
    double z_high = 0.0;
    double z_low = 0.0;
  };

  Vec3 evalSegment(const Segment& s, double t) const;

  std::vector<Segment> segments_;
  std::vector<StrokeInterval> strokes_;
  /// Smooth jitter: two sinusoids per axis (amplitude, frequency, phase).
  struct JitterComponent {
    double amp = 0.0;
    double freq_hz = 0.0;
    double phase = 0.0;
  };
  JitterComponent jitter_[3][2]{};
};

class TrajectoryBuilder {
 public:
  /// `rng` personalises jitter and micro-timing; `user` sets kinematics.
  TrajectoryBuilder(UserProfile user, Rng rng);

  /// Hand rest position (off-pad, arm lowered).
  static Vec3 restPosition();

  /// Append an idle hold at the current position.
  TrajectoryBuilder& hold(double duration_s);

  /// Append one stroke: approach (adjustment move at lift height), settle,
  /// write.  Clicks become a vertical dip toward the plan's `from` cell.
  TrajectoryBuilder& stroke(const StrokePlan& plan);

  /// Append the canonical full-pad version of a directed stroke.
  TrajectoryBuilder& stroke(const DirectedStroke& s, double halfExtent);

  /// Retract to the rest position.
  TrajectoryBuilder& retract();

  Trajectory build();

  /// Base writing speed along the stroke path for this user, m/s.
  double writeSpeed() const;
  /// Speed of adjustment moves, m/s.
  double moveSpeed() const;

 private:
  void addLine(Vec3 to, double speed);
  void addHold(double duration);

  UserProfile user_;
  Rng rng_;
  Trajectory traj_;
  Vec3 cursor_;
  double now_ = 0.0;
};

}  // namespace rfipad::sim
