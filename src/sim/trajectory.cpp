#include "sim/trajectory.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/angles.hpp"
#include "common/vkernels.hpp"

namespace rfipad::sim {

namespace {

/// C¹ ease-in/ease-out ramp on [0,1] (hands accelerate smoothly).
double smoothstep(double u) {
  u = std::clamp(u, 0.0, 1.0);
  return u * u * (3.0 - 2.0 * u);
}

constexpr double kBaseWriteSpeed = 0.22;  // m/s along the stroke
constexpr double kBaseMoveSpeed = 0.45;   // m/s for adjustment moves
constexpr double kSettleS = 0.40;         // inter-stroke adjustment pause
constexpr double kClickDipS = 0.55;       // duration of a click dip

}  // namespace

Vec3 Trajectory::evalSegment(const Segment& s, double t) const {
  const double span = s.t1 - s.t0;
  const double u = span > 0.0 ? std::clamp((t - s.t0) / span, 0.0, 1.0) : 0.0;
  switch (s.kind) {
    case Segment::Kind::kHold:
      return s.p0;
    case Segment::Kind::kLine:
      return lerp(s.p0, s.p1, smoothstep(u));
    case Segment::Kind::kStroke: {
      const Vec2 p = strokePoint(s.plan, smoothstep(u));
      return {p.x, p.y, s.z};
    }
    case Segment::Kind::kDip: {
      const Vec2 p = s.plan.from;
      const double z = s.z_high - (s.z_high - s.z_low) * std::sin(kPi * u);
      return {p.x, p.y, z};
    }
  }
  return s.p0;
}

Vec3 Trajectory::positionAt(double t) const {
  if (segments_.empty()) return {};
  // Clamp outside the span.
  if (t <= segments_.front().t0) t = segments_.front().t0;
  if (t >= segments_.back().t1) t = segments_.back().t1;
  // Binary search for the segment containing t.
  std::size_t lo = 0;
  std::size_t hi = segments_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (segments_[mid].t1 < t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  Vec3 p = evalSegment(segments_[lo], t);
  // Smooth physiological jitter: six sinusoids (two per axis), batched
  // through the dispatched sin kernel.  This runs once per Gen2 slot, so
  // six libm sin calls per instant were a real slice of the capture loop.
  double args[6], sins[6];
  for (int a = 0; a < 3; ++a)
    for (int k = 0; k < 2; ++k)
      args[a * 2 + k] = kTwoPi * jitter_[a][k].freq_hz * t + jitter_[a][k].phase;
  vk::sinArray(args, sins, 6);
  double d[3];
  for (int a = 0; a < 3; ++a)
    d[a] = jitter_[a][0].amp * sins[a * 2] + jitter_[a][1].amp * sins[a * 2 + 1];
  return {p.x + d[0], p.y + d[1], p.z + d[2]};
}

Vec3 Trajectory::velocityAt(double t) const {
  const double dt = 2e-3;
  const Vec3 a = positionAt(t - dt);
  const Vec3 b = positionAt(t + dt);
  return (b - a) / (2.0 * dt);
}

TrajectoryBuilder::TrajectoryBuilder(UserProfile user, Rng rng)
    : user_(std::move(user)), rng_(std::move(rng)), cursor_(restPosition()) {
  // Personalised jitter: two sinusoids per axis, ~0.7–2.8 Hz tremor band.
  for (int a = 0; a < 3; ++a) {
    for (int k = 0; k < 2; ++k) {
      auto& j = traj_.jitter_[a][k];
      j.amp = user_.jitter_std_m * rng_.uniform(0.4, 0.9);
      j.freq_hz = rng_.uniform(0.7, 2.8);
      j.phase = rng_.uniform(0.0, kTwoPi);
    }
  }
}

Vec3 TrajectoryBuilder::restPosition() { return {0.0, -0.30, 0.34}; }

double TrajectoryBuilder::writeSpeed() const {
  return kBaseWriteSpeed * user_.speed_scale;
}

double TrajectoryBuilder::moveSpeed() const {
  return kBaseMoveSpeed * user_.speed_scale;
}

void TrajectoryBuilder::addLine(Vec3 to, double speed) {
  const double len = distance(cursor_, to);
  if (len < 1e-6) return;
  Trajectory::Segment s;
  s.kind = Trajectory::Segment::Kind::kLine;
  s.t0 = now_;
  s.t1 = now_ + len / speed;
  s.p0 = cursor_;
  s.p1 = to;
  traj_.segments_.push_back(s);
  cursor_ = to;
  now_ = s.t1;
}

void TrajectoryBuilder::addHold(double duration) {
  if (duration <= 0.0) return;
  Trajectory::Segment s;
  s.kind = Trajectory::Segment::Kind::kHold;
  s.t0 = now_;
  s.t1 = now_ + duration;
  s.p0 = cursor_;
  traj_.segments_.push_back(s);
  now_ = s.t1;
}

TrajectoryBuilder& TrajectoryBuilder::hold(double duration_s) {
  addHold(duration_s);
  return *this;
}

TrajectoryBuilder& TrajectoryBuilder::stroke(const StrokePlan& plan) {
  const double hover = user_.hover_height_m;
  const double lift = user_.lift_height_m;

  if (plan.stroke.kind == StrokeKind::kClick) {
    // Move above the click cell at lift height, then dip toward the plane.
    addLine({plan.from.x, plan.from.y, lift}, moveSpeed());
    addHold(kSettleS * rng_.uniform(0.8, 1.2));
    Trajectory::Segment s;
    s.kind = Trajectory::Segment::Kind::kDip;
    s.t0 = now_;
    s.t1 = now_ + kClickDipS / user_.speed_scale * rng_.uniform(0.9, 1.1);
    s.plan = plan;
    s.z_high = lift;
    s.z_low = 0.015;  // pushes to ~1.5 cm over the tag
    traj_.segments_.push_back(s);
    traj_.strokes_.push_back({plan, s.t0, s.t1});
    cursor_ = {plan.from.x, plan.from.y, lift};
    now_ = s.t1;
    return *this;
  }

  // Adjustment move: travel at lift height to the stroke start, settle,
  // lower to hover.  (The paper recommends raising the arm here so the
  // segmenter sees a quiet window.)
  addLine({plan.from.x, plan.from.y, lift}, moveSpeed());
  addHold(kSettleS * rng_.uniform(0.7, 1.3));
  addLine({plan.from.x, plan.from.y, hover}, moveSpeed());

  // The stroke itself.
  Trajectory::Segment s;
  s.kind = Trajectory::Segment::Kind::kStroke;
  s.t0 = now_;
  const double len = strokeLength(plan);
  s.t1 = now_ + std::max(0.25, len / writeSpeed()) * rng_.uniform(0.92, 1.08);
  s.plan = plan;
  s.z = hover;
  traj_.segments_.push_back(s);
  traj_.strokes_.push_back({plan, s.t0, s.t1});
  cursor_ = {plan.to.x, plan.to.y, hover};
  now_ = s.t1;

  // Lift off the writing plane again.
  addLine({plan.to.x, plan.to.y, lift}, moveSpeed() * 0.7);
  return *this;
}

TrajectoryBuilder& TrajectoryBuilder::stroke(const DirectedStroke& s,
                                             double halfExtent) {
  return stroke(canonicalPlan(s, halfExtent));
}

TrajectoryBuilder& TrajectoryBuilder::retract() {
  addLine(restPosition(), moveSpeed());
  return *this;
}

Trajectory TrajectoryBuilder::build() {
  if (traj_.segments_.empty()) addHold(0.1);
  return traj_;
}

}  // namespace rfipad::sim
