#include "sim/ground_truth.hpp"

#include <cmath>
#include <stdexcept>

namespace rfipad::sim {

std::vector<SkeletalSample> kinectTrack(const Trajectory& traj,
                                        const KinectConfig& config, Rng& rng) {
  if (config.fps <= 0.0)
    throw std::invalid_argument("kinectTrack: non-positive fps");
  std::vector<SkeletalSample> track;
  const double dt = 1.0 / config.fps;
  for (double t = traj.startTime(); t <= traj.endTime(); t += dt) {
    const Vec3 p = traj.positionAt(t);
    track.push_back({t, {p.x + rng.normal(0.0, config.noise_std_m),
                         p.y + rng.normal(0.0, config.noise_std_m),
                         p.z + rng.normal(0.0, config.noise_std_m)}});
  }
  return track;
}

imgproc::GrayMap rasterizeTrack(const std::vector<SkeletalSample>& track,
                                const tag::TagArray& array, double maxHeight) {
  imgproc::GrayMap map(array.rows(), array.cols());
  const double sigma = array.spacing() * 0.6;
  for (const auto& s : track) {
    if (s.hand.z > maxHeight || s.hand.z < -0.02) continue;
    // Soft splat: each near-plane sample votes for nearby cells.
    for (const auto& t : array.tags()) {
      const double d = (t.position.xy() - s.hand.xy()).norm();
      map.at(t.row, t.col) += std::exp(-d * d / (2.0 * sigma * sigma));
    }
  }
  return map;
}

double mapCorrelation(const imgproc::GrayMap& a, const imgproc::GrayMap& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument("mapCorrelation: size mismatch");
  const auto& va = a.values();
  const auto& vb = b.values();
  const double n = static_cast<double>(va.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < va.size(); ++i) {
    ma += va[i];
    mb += vb[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, sa = 0.0, sb = 0.0;
  for (std::size_t i = 0; i < va.size(); ++i) {
    const double da = va[i] - ma;
    const double db = vb[i] - mb;
    cov += da * db;
    sa += da * da;
    sb += db * db;
  }
  if (sa <= 0.0 || sb <= 0.0) return 0.0;
  return cov / std::sqrt(sa * sb);
}

}  // namespace rfipad::sim
