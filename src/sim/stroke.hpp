// Geometric stroke plans: how a directed stroke from the shared vocabulary
// (common/strokes.hpp) is traced over the pad plane by the hand simulator.
#pragma once

#include "common/strokes.hpp"
#include "common/vec.hpp"

namespace rfipad::sim {

// The vocabulary lives in ::rfipad (shared with the recogniser).
using rfipad::DirectedStroke;
using rfipad::StrokeDir;
using rfipad::StrokeKind;

/// Geometric plan of one stroke in *pad-plane* coordinates (metres, origin
/// at pad centre).  For lines the path is the segment from→to; for arcs it
/// is the semicircle over the chord from→to bulging toward −x for "⊂" /
/// +x for "⊃" on vertical-ish chords (−y / +y on horizontal-ish chords —
/// the convention used by letter hooks like J and U); clicks dip toward the
/// plane at `from`.
struct StrokePlan {
  DirectedStroke stroke;
  Vec2 from;
  Vec2 to;
};

/// Canonical full-pad plan for a directed stroke; `halfExtent` is the pad
/// half-span to cover (e.g. 0.10 m on the 5×5/6 cm prototype).
StrokePlan canonicalPlan(const DirectedStroke& s, double halfExtent);

/// Evaluate the stroke path at parameter u in [0, 1] (pad-plane position).
Vec2 strokePoint(const StrokePlan& plan, double u);

/// Geometric length of the stroke path, metres.
double strokeLength(const StrokePlan& plan);

}  // namespace rfipad::sim
