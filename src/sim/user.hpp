// Volunteer profiles.
//
// The paper's user study (§V-B6) balances ten volunteers over gender, age
// (22–30), height (158–183 cm), weight and arm length (56–70 cm), and notes
// that users #6 and #9 "move their hands in a relatively fast speed",
// costing them a few accuracy points (Fig. 20).  These profiles drive the
// trajectory generator's kinematics and the body scatterer strengths.
#pragma once

#include <string>
#include <vector>

namespace rfipad::sim {

struct UserProfile {
  std::string name = "user";
  /// Multiplies the base writing speed (1.0 ≈ 0.22 m/s along the stroke).
  double speed_scale = 1.0;
  /// Hand height above the tag plane while writing, m (the paper's soft
  /// constraint is ≤ 5 cm, §VI).
  double hover_height_m = 0.035;
  /// Hand height during inter-stroke adjustment intervals, m.  The paper
  /// recommends raising the arm while repositioning (§V-C) so the
  /// adjustment window stays quiet.
  double lift_height_m = 0.24;
  /// 1σ of the smooth positional jitter overlaid on trajectories, m.
  double jitter_std_m = 0.004;
  /// Bistatic RCS of the hand, m² (scales with hand size).
  double hand_rcs_m2 = 0.012;
  /// Total RCS of the forearm, m².
  double arm_rcs_m2 = 0.020;
  /// Arm length, m — sets where the body anchor sits behind the hand.
  double arm_length_m = 0.62;
};

/// The ten volunteers (1-based indexing matches Fig. 20: users 6 and 9 are
/// the fast movers).
const std::vector<UserProfile>& defaultUsers();

/// Convenience: user #n (1-based).
const UserProfile& defaultUser(int oneBasedIndex = 1);

}  // namespace rfipad::sim
