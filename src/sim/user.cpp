#include "sim/user.hpp"

#include <stdexcept>

namespace rfipad::sim {

const std::vector<UserProfile>& defaultUsers() {
  static const std::vector<UserProfile> kUsers = [] {
    std::vector<UserProfile> u(10);
    auto set = [&](int i, double speed, double hover, double jitter,
                   double hand_rcs, double arm_len) {
      u[i].name = "user-" + std::to_string(i + 1);
      u[i].speed_scale = speed;
      u[i].hover_height_m = hover;
      u[i].jitter_std_m = jitter;
      u[i].hand_rcs_m2 = hand_rcs;
      u[i].arm_length_m = arm_len;
      u[i].arm_rcs_m2 = 0.016 + 0.08 * (arm_len - 0.56);
    };
    //        speed  hover   jitter  handRCS  arm
    set(0,    0.95,  0.034,  0.0035, 0.014,  0.62);
    set(1,    1.05,  0.030,  0.0045, 0.012,  0.58);
    set(2,    0.90,  0.038,  0.0030, 0.016,  0.66);
    set(3,    1.00,  0.032,  0.0040, 0.011,  0.56);
    set(4,    1.10,  0.036,  0.0050, 0.015,  0.64);
    set(5,    1.35,  0.040,  0.0060, 0.013,  0.63);  // user #6: fast
    set(6,    0.85,  0.033,  0.0030, 0.013,  0.60);
    set(7,    1.00,  0.035,  0.0040, 0.015,  0.68);
    set(8,    1.32,  0.042,  0.0065, 0.012,  0.70);  // user #9: fast
    set(9,    1.05,  0.031,  0.0045, 0.014,  0.59);
    return u;
  }();
  return kUsers;
}

const UserProfile& defaultUser(int oneBasedIndex) {
  const auto& users = defaultUsers();
  if (oneBasedIndex < 1 || oneBasedIndex > static_cast<int>(users.size()))
    throw std::invalid_argument("defaultUser: index must be 1..10");
  return users[static_cast<std::size_t>(oneBasedIndex - 1)];
}

}  // namespace rfipad::sim
