// Simulated Kinect ground truth (paper §V-A: a Kinect behind the user
// captures skeletal output to trace the hand trajectory).  We sample the
// true trajectory at the Kinect's frame rate with centimetre-class skeletal
// noise, and provide helpers to rasterise a track onto the tag grid for
// comparison against RFIPad's graymaps (Fig. 25).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/vec.hpp"
#include "imgproc/graymap.hpp"
#include "sim/trajectory.hpp"
#include "tag/array.hpp"

namespace rfipad::sim {

struct SkeletalSample {
  double t = 0.0;
  Vec3 hand;
};

struct KinectConfig {
  double fps = 30.0;
  /// 1σ positional noise of skeletal joints, m.
  double noise_std_m = 0.008;
};

/// Skeletal track of the hand over the trajectory's span.
std::vector<SkeletalSample> kinectTrack(const Trajectory& traj,
                                        const KinectConfig& config, Rng& rng);

/// Occupancy of the tag grid by a (near-plane portion of a) hand track:
/// each cell accumulates the time the hand spent overhead within
/// `maxHeight` of the plane.  This is the Kinect-derived reference image
/// for Fig. 25.
imgproc::GrayMap rasterizeTrack(const std::vector<SkeletalSample>& track,
                                const tag::TagArray& array, double maxHeight);

/// Pearson correlation between two equally-sized graymaps — the quantitative
/// "the two trajectories are very consistent" check of §V-C.
double mapCorrelation(const imgproc::GrayMap& a, const imgproc::GrayMap& b);

}  // namespace rfipad::sim
