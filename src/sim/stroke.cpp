#include "sim/stroke.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/angles.hpp"

namespace rfipad::sim {

StrokePlan canonicalPlan(const DirectedStroke& s, double halfExtent) {
  if (halfExtent <= 0.0)
    throw std::invalid_argument("canonicalPlan: non-positive extent");
  const double e = halfExtent;
  Vec2 from, to;
  switch (s.kind) {
    case StrokeKind::kClick: from = to = {0.0, 0.0}; break;
    case StrokeKind::kHLine: from = {-e, 0.0}; to = {e, 0.0}; break;
    case StrokeKind::kVLine: from = {0.0, e}; to = {0.0, -e}; break;
    case StrokeKind::kSlash: from = {-e, -e}; to = {e, e}; break;
    case StrokeKind::kBackslash: from = {-e, e}; to = {e, -e}; break;
    // Arcs: chord near the vertical midline, drawn top→bottom in kForward;
    // the bulge (−x for "⊂", +x for "⊃") is a shape property and does not
    // change with travel direction.
    case StrokeKind::kLeftArc: from = {0.35 * e, e}; to = {0.35 * e, -e}; break;
    case StrokeKind::kRightArc: from = {-0.35 * e, e}; to = {-0.35 * e, -e}; break;
  }
  if (s.dir == StrokeDir::kReverse) std::swap(from, to);
  return StrokePlan{s, from, to};
}

namespace {

/// Bulge direction of an arc plan (unit vector from chord midpoint toward
/// the arc apex).  Vertical-ish chords bow in ±x; horizontal-ish chords
/// (letter hooks like J's or U's bottom) bow in ±y.
Vec2 arcBulge(const StrokePlan& plan) {
  const Vec2 chord = plan.to - plan.from;
  const bool vertical = std::abs(chord.y) >= std::abs(chord.x);
  if (plan.stroke.kind == StrokeKind::kLeftArc)
    return vertical ? Vec2{-1.0, 0.0} : Vec2{0.0, -1.0};
  return vertical ? Vec2{1.0, 0.0} : Vec2{0.0, 1.0};
}

}  // namespace

Vec2 strokePoint(const StrokePlan& plan, double u) {
  u = std::clamp(u, 0.0, 1.0);
  if (!isArc(plan.stroke.kind)) return lerp(plan.from, plan.to, u);

  const Vec2 center = (plan.from + plan.to) * 0.5;
  const Vec2 r0 = plan.from - center;
  const double radius = r0.norm();
  if (radius < 1e-9) return plan.from;
  const double a0 = std::atan2(r0.y, r0.x);
  const Vec2 b = arcBulge(plan);
  const double ab = std::atan2(b.y, b.x);
  // Sweep half a turn in whichever rotational sense passes through the apex.
  const double ccw_gap = wrapTwoPi(ab - a0);
  const double sign = ccw_gap <= kPi ? 1.0 : -1.0;
  const double a = a0 + sign * kPi * u;
  return center + Vec2{radius * std::cos(a), radius * std::sin(a)};
}

double strokeLength(const StrokePlan& plan) {
  if (plan.stroke.kind == StrokeKind::kClick) return 0.06;  // dip + rise
  const double chord = (plan.to - plan.from).norm();
  return isArc(plan.stroke.kind) ? kPi * chord / 2.0 : chord;
}

}  // namespace rfipad::sim
