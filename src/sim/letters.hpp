// Stroke decompositions for the 26 upper-case English letters.
//
// The decompositions follow the tree-structure grammar of the paper's
// Fig. 10 (adopted from PhonePoint Pen [6]).  The paper only spells out the
// group sizes — 1 stroke {C, I}, 2 strokes {D,J,L,O,P,S,T,V,X}, 3 strokes
// {A,B,F,G,H,K,N,Q,R,U,Y,Z}, 4 strokes {E,M,W} — which these plans satisfy
// exactly.  Coordinates are in a normalised letter box ([−1,1]²) that the
// writer scales onto the pad.
#pragma once

#include <vector>

#include "sim/stroke.hpp"

namespace rfipad::sim {

/// Stroke plans for `letter` ('A'..'Z'), scaled so the letter box spans
/// ±halfWidth in x and ±halfHeight in y (metres, pad-plane coordinates).
std::vector<StrokePlan> letterPlans(char letter, double halfWidth,
                                    double halfHeight);

/// The stroke-kind sequence of a letter (the grammar key).
std::vector<StrokeKind> letterStrokeKinds(char letter);

/// Number of strokes composing the letter (1..4).
int letterStrokeCount(char letter);

/// Letters grouped by stroke count, as in Fig. 23: group 1 → 1 stroke, etc.
const std::vector<char>& lettersWithStrokeCount(int count);

}  // namespace rfipad::sim
