#include "sim/scenario.hpp"

#include <cmath>
#include <stdexcept>

#include "common/angles.hpp"
#include "rf/multipath.hpp"

namespace rfipad::sim {

// The user faces the (vertical) tag plane, so the forearm extends mostly
// *away* from the plane (+z) toward the elbow, drooping only slightly below
// the writing hand.
Vec3 bodyAnchor() { return {0.05, -0.20, 0.60}; }

rf::DirectionalAntenna Scenario::makeAntenna(const ScenarioConfig& config) {
  if (config.reader_distance_m <= 0.0)
    throw std::invalid_argument("Scenario: non-positive reader distance");
  const double tilt = config.antenna_tilt_deg * kPi / 180.0;
  if (config.placement == AntennaPlacement::kNLOS) {
    // Behind the plane, nominally boresight-normal onto the pad centre.
    // Tilt swivels the panel about the y axis (Fig. 18 top view).
    const Vec3 pos{0.0, 0.0, -config.reader_distance_m};
    const Vec3 boresight{std::sin(tilt), 0.0, std::cos(tilt)};
    return rf::DirectionalAntenna(pos, boresight, config.antenna_gain_dbi);
  }
  // LOS: ceiling-mounted in front of the plane on the user's side, so the
  // writing hand and forearm cross the reader->tag paths (Table I).
  const double d = config.reader_distance_m;
  const Vec3 pos{0.05, -0.12 - 0.2 * d, 0.60 + 0.5 * d};
  const Vec3 toPad = (Vec3{0, 0, 0} - pos).normalized();
  // Apply tilt as a rotation of the boresight about the y axis as well.
  const Vec3 boresight{toPad.x * std::cos(tilt) + toPad.z * std::sin(tilt),
                       toPad.y,
                       -toPad.x * std::sin(tilt) + toPad.z * std::cos(tilt)};
  return rf::DirectionalAntenna(pos, boresight, config.antenna_gain_dbi);
}

rf::MultipathEnvironment Scenario::makeEnvironment(const ScenarioConfig& config) {
  if (config.location == 0) return rf::anechoic();
  return rf::labLocation(config.location);
}

namespace {

reader::ReaderConfig makeReaderConfig(const ScenarioConfig& config) {
  reader::ReaderConfig rc;
  rc.tx_power_dbm = config.tx_power_dbm;
  rc.link = config.link;
  rc.noise = config.noise;
  rc.doppler_probes = config.doppler_probes;
  return rc;
}

}  // namespace

Scenario::Scenario(const ScenarioConfig& config)
    : config_(config),
      rng_(config.seed),
      array_(config.array, rng_),
      reader_(makeReaderConfig(config),
              rf::ChannelModel(rf::CarrierConfig{config.carrier_hz},
                               makeAntenna(config), makeEnvironment(config)),
              array_, rng_.fork(0xbeef)) {}

double Scenario::padHalfExtent() const {
  return (array_.cols() - 1) * array_.spacing() / 2.0;
}

const rf::DirectionalAntenna& Scenario::antenna() const {
  return reader_.channel().antenna();
}

reader::SceneFn Scenario::sceneFor(const Trajectory& traj,
                                   const UserProfile& user,
                                   double t_offset) const {
  // Captured by value so the SceneFn outlives this call; Trajectory is a
  // value type (copied into the closure).
  return [traj, user, t_offset](double t) {
    const Vec3 hand = traj.positionAt(t - t_offset);
    rf::ScattererList scene;

    rf::PointScatterer h;
    h.position = hand;
    h.rcs_m2 = user.hand_rcs_m2;
    h.reflection_phase = kPi;
    h.blocks_los = true;
    h.blockage_radius = 0.05;
    h.blockage_depth_db = 8.0;
    scene.push_back(h);

    // Forearm: two lumped scatterers between hand and the body anchor.
    const Vec3 anchor = bodyAnchor();
    for (double frac : {0.45, 0.8}) {
      rf::PointScatterer a;
      a.position = lerp(hand, anchor, frac);
      a.rcs_m2 = user.arm_rcs_m2 / 2.0;
      a.reflection_phase = kPi;
      a.blocks_los = true;
      a.blockage_radius = 0.06;
      a.blockage_depth_db = 5.0;
      scene.push_back(a);
    }
    return scene;
  };
}

reader::SceneFillFn Scenario::sceneFillFor(const Trajectory& traj,
                                           const UserProfile& user,
                                           double t_offset) const {
  return [traj, user, t_offset](double t, rf::ScattererList& scene) {
    const Vec3 hand = traj.positionAt(t - t_offset);
    scene.clear();

    rf::PointScatterer h;
    h.position = hand;
    h.rcs_m2 = user.hand_rcs_m2;
    h.reflection_phase = kPi;
    h.blocks_los = true;
    h.blockage_radius = 0.05;
    h.blockage_depth_db = 8.0;
    scene.push_back(h);

    // Forearm: two lumped scatterers between hand and the body anchor.
    const Vec3 anchor = bodyAnchor();
    for (double frac : {0.45, 0.8}) {
      rf::PointScatterer a;
      a.position = lerp(hand, anchor, frac);
      a.rcs_m2 = user.arm_rcs_m2 / 2.0;
      a.reflection_phase = kPi;
      a.blocks_los = true;
      a.blockage_radius = 0.06;
      a.blockage_depth_db = 5.0;
      scene.push_back(a);
    }
  };
}

reader::SampleStream Scenario::captureStatic(double duration_s) {
  return reader_.captureStatic(duration_s);
}

Capture Scenario::capture(const Trajectory& traj, const UserProfile& user) {
  Capture cap;
  cap.start_time = reader_.now() - traj.startTime();
  const reader::SceneFillFn scene = sceneFillFor(traj, user, cap.start_time);
  cap.stream = reader_.capture(traj.durationS() + 0.3, scene);
  for (const StrokeInterval& si : traj.strokes()) {
    cap.truth.push_back(
        {si.plan, si.t0 + cap.start_time, si.t1 + cap.start_time});
  }
  return cap;
}

}  // namespace rfipad::sim
