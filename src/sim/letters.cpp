#include "sim/letters.hpp"

#include <map>
#include <stdexcept>

namespace rfipad::sim {

namespace {

struct RawStroke {
  StrokeKind kind;
  StrokeDir dir;
  double x0, y0, x1, y1;  // letter-box coordinates in [−1, 1]
};

using RawLetter = std::vector<RawStroke>;

const std::map<char, RawLetter>& rawTable() {
  using K = StrokeKind;
  constexpr StrokeDir F = StrokeDir::kForward;
  constexpr StrokeDir R = StrokeDir::kReverse;
  static const std::map<char, RawLetter> kTable = {
      {'A', {{K::kSlash, F, -1, -1, 0, 1},
             {K::kBackslash, F, 0, 1, 1, -1},
             {K::kHLine, F, -0.6, -0.1, 0.6, -0.1}}},
      {'B', {{K::kVLine, F, -1, 1, -1, -1},
             {K::kRightArc, F, -1, 1, -1, 0},
             {K::kRightArc, F, -1, 0, -1, -1}}},
      {'C', {{K::kLeftArc, F, 0.7, 1, 0.7, -1}}},
      {'D', {{K::kVLine, F, -1, 1, -1, -1},
             {K::kRightArc, F, -1, 1, -1, -1}}},
      {'E', {{K::kVLine, F, -1, 1, -1, -1},
             {K::kHLine, F, -1, 1, 0.9, 1},
             {K::kHLine, F, -1, 0, 0.7, 0},
             {K::kHLine, F, -1, -1, 0.9, -1}}},
      {'F', {{K::kVLine, F, -1, 1, -1, -1},
             {K::kHLine, F, -1, 1, 0.9, 1},
             {K::kHLine, F, -1, 0, 0.7, 0}}},
      {'G', {{K::kLeftArc, F, 0.7, 1, 0.7, -1},
             {K::kHLine, F, 0, -0.1, 0.8, -0.1},
             {K::kVLine, F, 0.8, -0.1, 0.8, -1}}},
      {'H', {{K::kVLine, F, -1, 1, -1, -1},
             {K::kHLine, F, -1, 0, 1, 0},
             {K::kVLine, F, 1, 1, 1, -1}}},
      {'I', {{K::kVLine, F, 0, 1, 0, -1}}},
      {'J', {{K::kVLine, F, 0.4, 1, 0.4, -0.5},
             {K::kLeftArc, F, 0.4, -0.5, -0.6, -0.5}}},
      {'K', {{K::kVLine, F, -1, 1, -1, -1},
             {K::kSlash, R, 0.9, 1, -1, -0.1},
             {K::kBackslash, F, -0.6, 0.15, 1, -1}}},
      {'L', {{K::kVLine, F, -1, 1, -1, -1},
             {K::kHLine, F, -1, -1, 0.9, -1}}},
      {'M', {{K::kVLine, R, -1, -1, -1, 1},
             {K::kBackslash, F, -1, 1, 0, -0.2},
             {K::kSlash, F, 0, -0.2, 1, 1},
             {K::kVLine, F, 1, 1, 1, -1}}},
      {'N', {{K::kVLine, R, -1, -1, -1, 1},
             {K::kBackslash, F, -1, 1, 1, -1},
             {K::kVLine, R, 1, -1, 1, 1}}},
      {'O', {{K::kLeftArc, F, 0, 1, 0, -1},
             {K::kRightArc, F, 0, 1, 0, -1}}},
      {'P', {{K::kVLine, F, -1, 1, -1, -1},
             {K::kRightArc, F, -1, 1, -1, 0}}},
      {'Q', {{K::kLeftArc, F, 0, 1, 0, -1},
             {K::kRightArc, F, 0, 1, 0, -1},
             {K::kBackslash, F, 0.3, -0.4, 1, -1}}},
      {'R', {{K::kVLine, F, -1, 1, -1, -1},
             {K::kRightArc, F, -1, 1, -1, 0},
             {K::kBackslash, F, -1, 0, 0.8, -1}}},
      {'S', {{K::kLeftArc, F, 0.5, 1, 0.5, 0},
             {K::kRightArc, F, -0.5, 0, -0.5, -1}}},
      {'T', {{K::kHLine, F, -1, 1, 1, 1},
             {K::kVLine, F, 0, 1, 0, -1}}},
      {'U', {{K::kVLine, F, -1, 1, -1, -0.4},
             {K::kLeftArc, F, -1, -0.4, 1, -0.4},
             {K::kVLine, R, 1, -0.4, 1, 1}}},
      {'V', {{K::kBackslash, F, -1, 1, 0, -1},
             {K::kSlash, F, 0, -1, 1, 1}}},
      {'W', {{K::kBackslash, F, -1, 1, -0.5, -1},
             {K::kSlash, F, -0.5, -1, 0, 0.6},
             {K::kBackslash, F, 0, 0.6, 0.5, -1},
             {K::kSlash, F, 0.5, -1, 1, 1}}},
      {'X', {{K::kBackslash, F, -1, 1, 1, -1},
             {K::kSlash, F, -1, -1, 1, 1}}},
      {'Y', {{K::kBackslash, F, -1, 1, 0, 0},
             {K::kSlash, R, 1, 1, 0, 0},
             {K::kVLine, F, 0, 0, 0, -1}}},
      {'Z', {{K::kHLine, F, -1, 1, 1, 1},
             {K::kSlash, R, 1, 1, -1, -1},
             {K::kHLine, F, -1, -1, 1, -1}}},
  };
  return kTable;
}

const RawLetter& rawLetter(char letter) {
  const auto it = rawTable().find(letter);
  if (it == rawTable().end())
    throw std::invalid_argument("letterPlans: letter must be 'A'..'Z'");
  return it->second;
}

}  // namespace

std::vector<StrokePlan> letterPlans(char letter, double halfWidth,
                                    double halfHeight) {
  if (halfWidth <= 0.0 || halfHeight <= 0.0)
    throw std::invalid_argument("letterPlans: non-positive box");
  std::vector<StrokePlan> plans;
  for (const RawStroke& rs : rawLetter(letter)) {
    StrokePlan p;
    p.stroke = {rs.kind, rs.dir};
    p.from = {rs.x0 * halfWidth, rs.y0 * halfHeight};
    p.to = {rs.x1 * halfWidth, rs.y1 * halfHeight};
    plans.push_back(p);
  }
  return plans;
}

std::vector<StrokeKind> letterStrokeKinds(char letter) {
  std::vector<StrokeKind> kinds;
  for (const RawStroke& rs : rawLetter(letter)) kinds.push_back(rs.kind);
  return kinds;
}

int letterStrokeCount(char letter) {
  return static_cast<int>(rawLetter(letter).size());
}

const std::vector<char>& lettersWithStrokeCount(int count) {
  static const std::vector<char> kGroups[5] = {
      {},
      {'C', 'I'},
      {'D', 'J', 'L', 'O', 'P', 'S', 'T', 'V', 'X'},
      {'A', 'B', 'F', 'G', 'H', 'K', 'N', 'Q', 'R', 'U', 'Y', 'Z'},
      {'E', 'M', 'W'},
  };
  if (count < 1 || count > 4)
    throw std::invalid_argument("lettersWithStrokeCount: count must be 1..4");
  return kGroups[count];
}

}  // namespace rfipad::sim
