// End-to-end experimental setup: tag array + reader antenna pose +
// environment + Gen2 link, matching the paper's prototype (§IV-A, §V-A).
//
// Default configuration: 5×5 tags at 6 cm pitch on a carton, Laird-class
// 8 dBi circularly-polarised antenna 32 cm behind the plane (NLOS mode),
// 922.38 MHz, 30 dBm conducted power.  The LOS mode mounts the antenna on
// the ceiling in front of the plane so hand and arm cross reader→tag paths.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "gen2/timing.hpp"
#include "reader/reader.hpp"
#include "rf/channel.hpp"
#include "sim/trajectory.hpp"
#include "sim/user.hpp"
#include "tag/array.hpp"

namespace rfipad::sim {

enum class AntennaPlacement {
  kNLOS,  ///< behind the tag plane — the recommended deployment (Table I)
  kLOS,   ///< ceiling-mounted in front — body parts block LOS paths
};

struct ScenarioConfig {
  AntennaPlacement placement = AntennaPlacement::kNLOS;
  /// Distance from the antenna to the tag plane, m (paper default ≈32 cm;
  /// varied 20–80 cm in Fig. 19).
  double reader_distance_m = 0.32;
  /// Angle between antenna panel and tag panel, degrees (Fig. 18).
  double antenna_tilt_deg = 0.0;
  /// 0 = anechoic, 1..4 = the lab locations of Fig. 15.
  int location = 1;
  double tx_power_dbm = 30.0;
  double antenna_gain_dbi = 8.0;
  double carrier_hz = 922.38e6;
  tag::ArrayConfig array{};
  gen2::LinkProfile link = gen2::hybridM2();
  rf::NoiseParams noise{};
  std::uint64_t seed = 1;
  /// Forwarded to reader::ReaderConfig::doppler_probes.  Recognition never
  /// reads the Doppler estimate, so throughput-bound benches disable the
  /// probes; all consumed report fields stay bit-identical.
  bool doppler_probes = true;
};

/// One motion capture: the report stream plus ground truth on the reader's
/// clock.
struct Capture {
  reader::SampleStream stream;
  /// Reader-clock time at which the trajectory's t = 0 fell.
  double start_time = 0.0;
  /// Stroke intervals shifted onto the reader clock.
  std::vector<StrokeInterval> truth;
};

class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& config);

  const ScenarioConfig& config() const { return config_; }
  const tag::TagArray& array() const { return array_; }
  reader::RfidReader& reader() { return reader_; }
  const reader::RfidReader& reader() const { return reader_; }

  /// Half-span of the tag grid (centre of outermost tags), m.
  double padHalfExtent() const;

  /// Derive an independent RNG stream for workload generation.
  Rng forkRng(std::uint64_t salt) { return rng_.fork(salt); }

  /// Reset the stochastic streams (measurement noise + MAC slot draws) to a
  /// deterministic per-trial seed.  Geometry, calibrated cable phases,
  /// static channel caches and the reader clock are untouched, so a copied
  /// scenario replays an independent trial against the same configuration.
  /// Scenario is copyable precisely so the batch runner can clone the
  /// calibrated baseline per trial and reseed each clone.
  void reseedForTrial(std::uint64_t seed) { reader_.reseed(seed); }

  /// Scene function placing the hand (and trailing arm) scatterers along
  /// the trajectory; `t` is on the reader clock, offset by `t_offset`.
  reader::SceneFn sceneFor(const Trajectory& traj, const UserProfile& user,
                           double t_offset) const;

  /// In-place variant of sceneFor: refills the caller's list (clear +
  /// push_back reuses its capacity), so steady-state captures perform no
  /// per-instant allocation.  Used by capture(); sceneFor stays for callers
  /// that want a standalone list per instant.
  reader::SceneFillFn sceneFillFor(const Trajectory& traj,
                                   const UserProfile& user,
                                   double t_offset) const;

  /// Static capture (no person present) for calibration.
  reader::SampleStream captureStatic(double duration_s);

  /// Capture an entire trajectory (plus a short post-roll).
  Capture capture(const Trajectory& traj, const UserProfile& user);

  /// The antenna pose used by this scenario (exposed for geometry benches).
  const rf::DirectionalAntenna& antenna() const;

 private:
  static rf::DirectionalAntenna makeAntenna(const ScenarioConfig& config);
  static rf::MultipathEnvironment makeEnvironment(const ScenarioConfig& config);

  ScenarioConfig config_;
  Rng rng_;
  tag::TagArray array_;
  reader::RfidReader reader_;
};

/// Body-anchor point (shoulder region) the simulated arm extends toward.
Vec3 bodyAnchor();

}  // namespace rfipad::sim
