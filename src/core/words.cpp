#include "core/words.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "core/grammar.hpp"

namespace rfipad::core {

double letterConfusionCost(char seen, char truth) {
  if (seen == truth) return 0.0;
  if (seen == '?' || seen == '\0') return 0.45;  // recogniser abstained
  if (seen < 'A' || seen > 'Z' || truth < 'A' || truth > 'Z') return 1.0;
  // The positional pairs share an identical stroke sequence.
  auto pair = [&](char a, char b) {
    return (seen == a && truth == b) || (seen == b && truth == a);
  };
  if (pair('D', 'P') || pair('O', 'S') || pair('V', 'X')) return 0.25;
  // Letters whose stroke sequences are within edit distance 1 of each other
  // confuse easily (e.g. E/F, K/R, M/H); approximate via the grammar.
  const auto& g = LetterGrammar::instance();
  const auto& sa = g.sequenceFor(seen);
  const auto& sb = g.sequenceFor(truth);
  const int d = static_cast<int>(sa.size()) - static_cast<int>(sb.size());
  if (d >= -1 && d <= 1) {
    int common = 0;
    for (std::size_t i = 0; i < std::min(sa.size(), sb.size()); ++i) {
      if (sa[i] == sb[i]) ++common;
    }
    if (common + 1 >= static_cast<int>(std::min(sa.size(), sb.size()))) {
      return 0.45;
    }
  }
  return 1.0;
}

WordRecognizer::WordRecognizer(std::vector<std::string> dictionary)
    : dictionary_(std::move(dictionary)) {
  if (dictionary_.empty())
    throw std::invalid_argument("WordRecognizer: empty dictionary");
  for (auto& w : dictionary_) {
    for (char& c : w) c = static_cast<char>(std::toupper(c));
  }
}

double WordRecognizer::wordCost(const std::string& letters,
                                const std::string& word) {
  const std::size_t n = letters.size();
  const std::size_t m = word.size();
  constexpr double kInsert = 0.7;  // letter the recogniser missed entirely
  constexpr double kDelete = 0.7;  // spurious letter event
  std::vector<std::vector<double>> dp(n + 1, std::vector<double>(m + 1, 0.0));
  for (std::size_t i = 1; i <= n; ++i) dp[i][0] = dp[i - 1][0] + kDelete;
  for (std::size_t j = 1; j <= m; ++j) dp[0][j] = dp[0][j - 1] + kInsert;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      dp[i][j] = std::min(
          {dp[i - 1][j - 1] + letterConfusionCost(letters[i - 1], word[j - 1]),
           dp[i - 1][j] + kDelete, dp[i][j - 1] + kInsert});
    }
  }
  return dp[n][m];
}

double WordRecognizer::latticeCost(
    const std::vector<std::vector<LetterGrammar::LetterHypothesis>>& positions,
    const std::string& word) {
  const std::size_t n = positions.size();
  const std::size_t m = word.size();
  constexpr double kInsert = 0.7;  // letter the recogniser missed entirely
  constexpr double kDelete = 0.7;  // spurious letter event
  // An empty hypothesis list means the letter stage decoded nothing at this
  // position — cheaper than a miss (we know *something* was written there)
  // but not free.
  constexpr double kBlank = 0.45;
  // Weight of a hypothesis' rank cost (alignment cost above the position's
  // best) when it is chosen over the top hypothesis: small enough that the
  // dictionary can override a narrow letter-stage preference, large enough
  // that it cannot override a confident one.
  constexpr double kRankWeight = 0.35;

  // Cost of matching position i against word letter w: the best hypothesis
  // trade-off between rank cost and confusion cost.
  auto posCost = [&](std::size_t i, char w) {
    const auto& hyps = positions[i];
    if (hyps.empty()) return kBlank;
    const double base = hyps.front().cost;
    double best = 1e18;
    for (const auto& h : hyps) {
      const double c =
          kRankWeight * (h.cost - base) + letterConfusionCost(h.letter, w);
      best = std::min(best, c);
    }
    return best;
  };

  std::vector<std::vector<double>> dp(n + 1, std::vector<double>(m + 1, 0.0));
  for (std::size_t i = 1; i <= n; ++i) dp[i][0] = dp[i - 1][0] + kDelete;
  for (std::size_t j = 1; j <= m; ++j) dp[0][j] = dp[0][j - 1] + kInsert;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      dp[i][j] = std::min({dp[i - 1][j - 1] + posCost(i - 1, word[j - 1]),
                           dp[i - 1][j] + kDelete, dp[i][j - 1] + kInsert});
    }
  }
  return dp[n][m];
}

std::string WordRecognizer::decode(
    const std::vector<std::vector<LetterGrammar::LetterHypothesis>>& positions,
    double max_cost_per_letter) const {
  std::string best;
  double best_cost = 1e18;
  for (const auto& word : dictionary_) {
    const double cost = latticeCost(positions, word);
    // Strict < keeps the earliest dictionary entry on exact ties — the
    // caller's dictionary order is the deterministic tie-break.
    if (cost < best_cost) {
      best_cost = cost;
      best = word;
    }
  }
  const double budget =
      max_cost_per_letter *
      static_cast<double>(std::max<std::size_t>(positions.size(), 1));
  return best_cost <= budget ? best : std::string{};
}

std::string WordRecognizer::bestMatch(const std::string& letters,
                                      double max_cost_per_letter) const {
  std::string upper = letters;
  for (char& c : upper) c = static_cast<char>(std::toupper(c));

  std::string best;
  double best_cost = 1e18;
  for (const auto& word : dictionary_) {
    const double cost = wordCost(upper, word);
    if (cost < best_cost) {
      best_cost = cost;
      best = word;
    }
  }
  const double budget =
      max_cost_per_letter * static_cast<double>(std::max<std::size_t>(
                                upper.size(), 1));
  return best_cost <= budget ? best : std::string{};
}

}  // namespace rfipad::core
