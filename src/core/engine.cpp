#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "core/templates.hpp"
#include "imgproc/binary_map.hpp"

namespace rfipad::core {

namespace {

/// Replace each dead tag's cell by the mean of its live in-bounds
/// 8-neighbours (0 when every neighbour is also dead).
void inpaintDeadCells(imgproc::GrayMap& map, const StaticProfile& profile,
                      int rows, int cols) {
  for (std::uint32_t i = 0; i < profile.numTags(); ++i) {
    if (!profile.tag(i).dead) continue;
    const int r = static_cast<int>(i) / cols;
    const int c = static_cast<int>(i) % cols;
    double sum = 0.0;
    int n = 0;
    for (int dr = -1; dr <= 1; ++dr) {
      for (int dc = -1; dc <= 1; ++dc) {
        if (dr == 0 && dc == 0) continue;
        const int nr = r + dr;
        const int nc = c + dc;
        if (nr < 0 || nr >= rows || nc < 0 || nc >= cols) continue;
        const auto ni = static_cast<std::uint32_t>(nr * cols + nc);
        if (ni < profile.numTags() && profile.tag(ni).dead) continue;
        sum += map.at(nr, nc);
        ++n;
      }
    }
    map.at(r, c) = n > 0 ? sum / n : 0.0;
  }
}

}  // namespace

RecognitionEngine::RecognitionEngine(StaticProfile profile, EngineOptions options)
    : profile_(std::move(profile)), options_(std::move(options)) {
  if (options_.rows <= 0 || options_.cols <= 0)
    throw std::invalid_argument("RecognitionEngine: non-positive grid");
  const std::size_t n =
      static_cast<std::size_t>(options_.rows) * options_.cols;
  if (profile_.numTags() != n)
    throw std::invalid_argument("RecognitionEngine: profile/grid size mismatch");
  if (!options_.tag_xy.empty() && options_.tag_xy.size() != n)
    throw std::invalid_argument("RecognitionEngine: tag_xy size mismatch");
}

std::vector<Vec2> RecognitionEngine::effectiveTagXy() const {
  if (!options_.tag_xy.empty()) return options_.tag_xy;
  // Unit grid matching the row-major tag layout.
  std::vector<Vec2> xy;
  xy.reserve(static_cast<std::size_t>(options_.rows) * options_.cols);
  for (int r = 0; r < options_.rows; ++r)
    for (int c = 0; c < options_.cols; ++c)
      xy.push_back({static_cast<double>(c), static_cast<double>(r)});
  return xy;
}

StrokeEvent RecognitionEngine::classifyWindow(
    const reader::SampleStream& window) const {
  const auto start = std::chrono::steady_clock::now();

  StrokeEvent ev{.interval = {window.startTime(), window.endTime()},
                 .observation = {},
                 .direction = {},
                 .graymap = activationImage(window, profile_, options_.rows,
                                            options_.cols, options_.activation),
                 .processing_time_s = 0.0};

  const bool inpaint = options_.inpaint_dead && profile_.deadCount() > 0;
  if (inpaint)
    inpaintDeadCells(ev.graymap, profile_, options_.rows, options_.cols);

  const imgproc::BinaryMap binary = imgproc::otsuBinarize(ev.graymap);

  if (options_.use_matched_filter) {
    // RSS troughs across all tags: deep troughs mark the visited cells and
    // build the second (sharper) image for fused template matching.
    ev.direction = estimateDirection(window, effectiveTagXy(), {},
                                     options_.direction);
    imgproc::GrayMap trough_map(options_.rows, options_.cols);
    double max_depth = 0.0;
    for (const auto& tr : ev.direction.ordered)
      max_depth = std::max(max_depth, tr.depth_db);
    for (const auto& tr : ev.direction.ordered) {
      if (tr.depth_db < 0.35 * max_depth) continue;
      trough_map.at(static_cast<int>(tr.tag_index) / options_.cols,
                    static_cast<int>(tr.tag_index) % options_.cols) =
          tr.depth_db;
    }
    if (inpaint)
      inpaintDeadCells(trough_map, profile_, options_.rows, options_.cols);

    const TemplateMatch match = matchTemplateFused(
        ev.graymap, trough_map, options_.trough_weight,
        TemplateLibrary::standard5x5(), options_.template_match);
    if (match.valid) {
      StrokeDir dir = StrokeDir::kForward;
      const double travel_conf =
          resolveTravel(*match.shape, ev.direction.ordered, options_.cols, &dir);

      auto& obs = ev.observation;
      obs.valid = true;
      obs.stroke = {match.shape->kind,
                    match.shape->kind == StrokeKind::kClick ? StrokeDir::kForward
                                                            : dir};
      obs.confidence = std::max(0.0, match.score) *
                       (0.5 + 0.5 * travel_conf);
      for (const imgproc::Cell& c : binary.largestComponent().foreground())
        obs.cells.push_back(c);
      if (!obs.cells.empty()) obs.moments = imgproc::computeMoments(obs.cells);
      const bool fwd = dir == StrokeDir::kForward;
      obs.start_cell = fwd ? match.shape->start : match.shape->end;
      obs.end_cell = fwd ? match.shape->end : match.shape->start;
      Vec2 centroid{};
      for (const Vec2& p : match.shape->path) centroid = centroid + p;
      obs.centroid = centroid / static_cast<double>(match.shape->path.size());
    }
  } else {
    // Ablation path: moments-based classification on the Otsu image.
    std::vector<std::uint32_t> candidates;
    for (const imgproc::Cell& c : binary.foreground()) {
      candidates.push_back(
          static_cast<std::uint32_t>(c.row * options_.cols + c.col));
    }
    ev.direction = estimateDirection(window, effectiveTagXy(), candidates,
                                     options_.direction);
    ev.observation = classifyStrokeBinary(binary, ev.direction,
                                          options_.classifier);
  }

  ev.processing_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return ev;
}

std::vector<StrokeEvent> RecognitionEngine::detectStrokes(
    const reader::SampleStream& stream) const {
  const Segmenter segmenter(profile_, options_.segmenter);
  std::vector<StrokeEvent> events;
  for (const Interval& iv : segmenter.segment(stream)) {
    const double trim = std::min(options_.window_trim_s, 0.25 * iv.duration());
    StrokeEvent ev = classifyWindow(stream.slice(iv.t0 + trim, iv.t1 - trim));
    ev.interval = iv;
    if (ev.observation.valid) events.push_back(std::move(ev));
  }
  return events;
}

ObservedStroke RecognitionEngine::toObserved(const StrokeEvent& event) {
  return ObservedStroke{event.observation.stroke.kind,
                        event.observation.stroke.dir,
                        event.observation.start_cell,
                        event.observation.end_cell,
                        event.observation.centroid};
}

char RecognitionEngine::recognizeLetter(
    const std::vector<StrokeEvent>& events) const {
  const auto& grammar = LetterGrammar::instance();
  // Transition residues occasionally survive segmentation; they are short
  // *and* weakly matched, while genuine letter strokes are neither (the
  // separation is wide: spurious p90 conf 0.41 / 0.9 s vs real p10 conf
  // 0.40 / 1.15 s).  Filter them before composing the letter.
  std::vector<const StrokeEvent*> kept;
  for (const auto& ev : events) {
    const bool weak = ev.observation.confidence < 0.35 &&
                      ev.interval.duration() < 0.95;
    if (!weak) kept.push_back(&ev);
  }
  if (kept.empty()) {
    for (const auto& ev : events) kept.push_back(&ev);
  }
  std::vector<ObservedStroke> observed;
  observed.reserve(kept.size());
  for (const auto* ev : kept) observed.push_back(toObserved(*ev));

  // Exact sequence first; otherwise weighted edit-distance decoding that
  // tolerates stroke confusions, splits and missed strokes (extension
  // beyond the paper's exact tree lookup; see DESIGN.md §5).
  std::vector<double> confidences;
  confidences.reserve(kept.size());
  for (const auto* ev : kept)
    confidences.push_back(ev->observation.confidence);
  return grammar.recognizeRobust(observed, confidences);
}

char RecognitionEngine::recognizeLetter(const reader::SampleStream& stream) const {
  return recognizeLetter(detectStrokes(stream));
}

}  // namespace rfipad::core
