#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "core/templates.hpp"
#include "imgproc/binary_map.hpp"

namespace rfipad::core {

namespace {

/// Replace each dead tag's cell by the mean of its live in-bounds
/// 8-neighbours (0 when every neighbour is also dead).
void inpaintDeadCells(imgproc::GrayMap& map, const StaticProfile& profile,
                      int rows, int cols) {
  for (std::uint32_t i = 0; i < profile.numTags(); ++i) {
    if (!profile.tag(i).dead) continue;
    const int r = static_cast<int>(i) / cols;
    const int c = static_cast<int>(i) % cols;
    double sum = 0.0;
    int n = 0;
    for (int dr = -1; dr <= 1; ++dr) {
      for (int dc = -1; dc <= 1; ++dc) {
        if (dr == 0 && dc == 0) continue;
        const int nr = r + dr;
        const int nc = c + dc;
        if (nr < 0 || nr >= rows || nc < 0 || nc >= cols) continue;
        const auto ni = static_cast<std::uint32_t>(nr * cols + nc);
        if (ni < profile.numTags() && profile.tag(ni).dead) continue;
        sum += map.at(nr, nc);
        ++n;
      }
    }
    map.at(r, c) = n > 0 ? sum / n : 0.0;
  }
}

}  // namespace

RecognitionEngine::RecognitionEngine(StaticProfile profile, EngineOptions options)
    : profile_(std::move(profile)), options_(std::move(options)) {
  if (options_.rows <= 0 || options_.cols <= 0)
    throw std::invalid_argument("RecognitionEngine: non-positive grid");
  const std::size_t n =
      static_cast<std::size_t>(options_.rows) * options_.cols;
  if (profile_.numTags() != n)
    throw std::invalid_argument("RecognitionEngine: profile/grid size mismatch");
  if (!options_.tag_xy.empty() && options_.tag_xy.size() != n)
    throw std::invalid_argument("RecognitionEngine: tag_xy size mismatch");
}

std::vector<Vec2> RecognitionEngine::effectiveTagXy() const {
  if (!options_.tag_xy.empty()) return options_.tag_xy;
  // Unit grid matching the row-major tag layout.
  std::vector<Vec2> xy;
  xy.reserve(static_cast<std::size_t>(options_.rows) * options_.cols);
  for (int r = 0; r < options_.rows; ++r)
    for (int c = 0; c < options_.cols; ++c)
      xy.push_back({static_cast<double>(c), static_cast<double>(r)});
  return xy;
}

StrokeEvent RecognitionEngine::classifyWindow(
    const reader::SampleStream& window) const {
  const auto start = std::chrono::steady_clock::now();

  const RecoveryConfig& rec = options_.recovery;

  // Recovery stage 1: bridge short per-tag read gaps before imaging, so a
  // miss-read burst does not masquerade as the hand leaving the cell.
  reader::SampleStream imputed;
  const reader::SampleStream* src = &window;
  if (rec.temporal.enabled) {
    imputed = reader::imputeGaps(window, rec.temporal);
    src = &imputed;
  }

  StrokeEvent ev{.interval = {src->startTime(), src->endTime()},
                 .observation = {},
                 .direction = {},
                 .graymap = activationImage(*src, profile_, options_.rows,
                                            options_.cols, options_.activation),
                 .processing_time_s = 0.0};

  // Recovery stage 2: per-cell observation confidence, consumed by spatial
  // inpainting and the weighted Otsu/NCC below.
  const bool use_conf = rec.confidence.enabled || rec.spatial.enabled;
  imgproc::GrayMap conf(options_.rows, options_.cols, 1.0);
  if (use_conf)
    conf = observationConfidence(*src, profile_, options_.rows, options_.cols,
                                 rec.confidence);

  const bool inpaint = options_.inpaint_dead && profile_.deadCount() > 0;
  if (rec.spatial.enabled) {
    // Recovery stage 3 generalises the dead-cell patch: any low-confidence
    // cell (dead cells score exactly 0) is rebuilt from confident
    // neighbours, so the legacy pass below is subsumed.
    inpaintLowConfidence(ev.graymap, conf, rec.spatial);
  } else if (inpaint) {
    inpaintDeadCells(ev.graymap, profile_, options_.rows, options_.cols);
  }

  const imgproc::BinaryMap binary =
      rec.confidence.enabled ? imgproc::otsuBinarizeWeighted(ev.graymap, conf)
                             : imgproc::otsuBinarize(ev.graymap);

  if (options_.use_matched_filter) {
    // RSS troughs across all tags: deep troughs mark the visited cells and
    // build the second (sharper) image for fused template matching.
    ev.direction = estimateDirection(*src, effectiveTagXy(), {},
                                     options_.direction);
    imgproc::GrayMap trough_map(options_.rows, options_.cols);
    double max_depth = 0.0;
    for (const auto& tr : ev.direction.ordered)
      max_depth = std::max(max_depth, tr.depth_db);
    for (const auto& tr : ev.direction.ordered) {
      if (tr.depth_db < 0.35 * max_depth) continue;
      trough_map.at(static_cast<int>(tr.tag_index) / options_.cols,
                    static_cast<int>(tr.tag_index) % options_.cols) =
          tr.depth_db;
    }
    if (rec.spatial.enabled) {
      inpaintLowConfidence(trough_map, conf, rec.spatial);
    } else if (inpaint) {
      inpaintDeadCells(trough_map, profile_, options_.rows, options_.cols);
    }

    const TemplateMatch match =
        rec.confidence.enabled
            ? matchTemplateFusedWeighted(ev.graymap, trough_map,
                                         options_.trough_weight, conf,
                                         TemplateLibrary::standard5x5(),
                                         options_.template_match)
            : matchTemplateFused(ev.graymap, trough_map,
                                 options_.trough_weight,
                                 TemplateLibrary::standard5x5(),
                                 options_.template_match);
    if (match.valid) {
      StrokeDir dir = StrokeDir::kForward;
      const double travel_conf =
          resolveTravel(*match.shape, ev.direction.ordered, options_.cols, &dir);

      auto& obs = ev.observation;
      obs.valid = true;
      obs.stroke = {match.shape->kind,
                    match.shape->kind == StrokeKind::kClick ? StrokeDir::kForward
                                                            : dir};
      obs.confidence = std::max(0.0, match.score) *
                       (0.5 + 0.5 * travel_conf);
      for (const imgproc::Cell& c : binary.largestComponent().foreground())
        obs.cells.push_back(c);
      if (!obs.cells.empty()) obs.moments = imgproc::computeMoments(obs.cells);
      const bool fwd = dir == StrokeDir::kForward;
      obs.start_cell = fwd ? match.shape->start : match.shape->end;
      obs.end_cell = fwd ? match.shape->end : match.shape->start;
      Vec2 centroid{};
      for (const Vec2& p : match.shape->path) centroid = centroid + p;
      obs.centroid = centroid / static_cast<double>(match.shape->path.size());
    }
  } else {
    // Ablation path: moments-based classification on the Otsu image.
    std::vector<std::uint32_t> candidates;
    for (const imgproc::Cell& c : binary.foreground()) {
      candidates.push_back(
          static_cast<std::uint32_t>(c.row * options_.cols + c.col));
    }
    ev.direction = estimateDirection(*src, effectiveTagXy(), candidates,
                                     options_.direction);
    ev.observation = classifyStrokeBinary(binary, ev.direction,
                                          options_.classifier);
  }

  ev.processing_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return ev;
}

std::vector<StrokeEvent> RecognitionEngine::detectStrokes(
    const reader::SampleStream& stream) const {
  // Impute the whole capture before segmentation: a miss-read burst inside
  // a stroke otherwise splits one window into two.  classifyWindow's own
  // imputation pass then finds the slice already gap-free (bridged gaps sit
  // under the jitter threshold) and leaves it unchanged.
  reader::SampleStream imputed;
  const reader::SampleStream* src = &stream;
  if (options_.recovery.temporal.enabled) {
    imputed = reader::imputeGaps(stream, options_.recovery.temporal);
    src = &imputed;
  }
  const Segmenter segmenter(profile_, options_.segmenter);
  std::vector<StrokeEvent> events;
  for (const Interval& iv : segmenter.segment(*src)) {
    const double trim = std::min(options_.window_trim_s, 0.25 * iv.duration());
    StrokeEvent ev = classifyWindow(src->slice(iv.t0 + trim, iv.t1 - trim));
    ev.interval = iv;
    if (ev.observation.valid) events.push_back(std::move(ev));
  }
  return events;
}

ObservedStroke RecognitionEngine::toObserved(const StrokeEvent& event) {
  return ObservedStroke{event.observation.stroke.kind,
                        event.observation.stroke.dir,
                        event.observation.start_cell,
                        event.observation.end_cell,
                        event.observation.centroid};
}

namespace {

/// Shared stroke filtering for letter composition.  Transition residues
/// occasionally survive segmentation; they are short *and* weakly matched,
/// while genuine letter strokes are neither (the separation is wide:
/// spurious p90 conf 0.41 / 0.9 s vs real p10 conf 0.40 / 1.15 s).
void observedSequence(const std::vector<StrokeEvent>& events,
                      std::vector<ObservedStroke>* observed,
                      std::vector<double>* confidences) {
  std::vector<const StrokeEvent*> kept;
  for (const auto& ev : events) {
    const bool weak = ev.observation.confidence < 0.35 &&
                      ev.interval.duration() < 0.95;
    if (!weak) kept.push_back(&ev);
  }
  if (kept.empty()) {
    for (const auto& ev : events) kept.push_back(&ev);
  }
  observed->reserve(kept.size());
  confidences->reserve(kept.size());
  for (const auto* ev : kept) {
    observed->push_back(RecognitionEngine::toObserved(*ev));
    confidences->push_back(ev->observation.confidence);
  }
}

}  // namespace

char RecognitionEngine::recognizeLetter(
    const std::vector<StrokeEvent>& events) const {
  std::vector<ObservedStroke> observed;
  std::vector<double> confidences;
  observedSequence(events, &observed, &confidences);
  // Exact sequence first; otherwise weighted edit-distance decoding that
  // tolerates stroke confusions, splits and missed strokes (extension
  // beyond the paper's exact tree lookup; see DESIGN.md §5).
  return LetterGrammar::instance().recognizeRobust(observed, confidences);
}

std::vector<LetterGrammar::LetterHypothesis>
RecognitionEngine::letterHypotheses(
    const std::vector<StrokeEvent>& events) const {
  std::vector<ObservedStroke> observed;
  std::vector<double> confidences;
  observedSequence(events, &observed, &confidences);
  const LetterDecodeOptions& d = options_.recovery.decode;
  const std::size_t k = d.enabled ? d.top_k : LetterDecodeOptions{}.top_k;
  const double max_cost = d.enabled ? d.max_cost : LetterDecodeOptions{}.max_cost;
  return LetterGrammar::instance().topKLetters(observed, confidences, k,
                                               max_cost);
}

char RecognitionEngine::recognizeLetter(const reader::SampleStream& stream) const {
  return recognizeLetter(detectStrokes(stream));
}

}  // namespace rfipad::core
