#include "core/direction.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"

namespace rfipad::core {

bool estimateTrough(const std::vector<double>& times,
                    const std::vector<double>& rssi,
                    const DirectionOptions& options, TroughEstimate* out) {
  if (times.size() != rssi.size())
    throw std::invalid_argument("estimateTrough: series size mismatch");
  if (times.size() < options.min_samples) return false;

  // Stage 1: smooth and locate the global minimum.
  const auto smooth = movingAverage(rssi, options.smooth_window | 1);
  std::size_t k = 0;
  for (std::size_t i = 1; i < smooth.size(); ++i) {
    if (smooth[i] < smooth[k]) k = i;
  }
  // Baseline: the higher of the two window edges (the hand is away from the
  // tag at at least one end of a pass).
  const double baseline = std::max(smooth.front(), smooth.back());
  const double depth = baseline - smooth[k];
  if (depth < options.min_trough_depth_db) return false;

  // Stage 2: parabolic refinement over (k−1, k, k+1).
  double t = times[k];
  if (k > 0 && k + 1 < smooth.size()) {
    const double y0 = smooth[k - 1];
    const double y1 = smooth[k];
    const double y2 = smooth[k + 1];
    const double denom = y0 - 2.0 * y1 + y2;
    if (std::abs(denom) > 1e-12) {
      const double delta = 0.5 * (y0 - y2) / denom;  // in sample units
      if (delta > -1.0 && delta < 1.0) {
        // Map the fractional offset onto the (possibly uneven) time grid.
        const double t_lo = delta < 0.0 ? times[k - 1] : times[k];
        const double t_hi = delta < 0.0 ? times[k] : times[k + 1];
        const double frac = delta < 0.0 ? 1.0 + delta : delta;
        t = t_lo + (t_hi - t_lo) * frac;
      }
    }
  }
  if (out != nullptr) *out = {0, t, depth};
  return true;
}

DirectionResult estimateDirection(const reader::SampleStream& window,
                                  const std::vector<Vec2>& tagXy,
                                  const std::vector<std::uint32_t>& candidateTags,
                                  const DirectionOptions& options) {
  DirectionResult result;
  std::vector<std::uint32_t> candidates = candidateTags;
  if (candidates.empty()) {
    candidates.resize(tagXy.size());
    for (std::uint32_t i = 0; i < tagXy.size(); ++i) candidates[i] = i;
  }

  const auto series = window.allSeries();
  for (std::uint32_t idx : candidates) {
    if (idx >= series.size() || idx >= tagXy.size()) continue;
    TroughEstimate te;
    if (estimateTrough(series[idx].times, series[idx].rssi, options, &te)) {
      te.tag_index = idx;
      result.ordered.push_back(te);
    }
  }
  if (result.ordered.size() < 2) return result;

  std::sort(result.ordered.begin(), result.ordered.end(),
            [](const TroughEstimate& a, const TroughEstimate& b) {
              return a.time_s < b.time_s;
            });

  // Principal axis of the trough tags' positions.
  Vec2 centroid{};
  for (const auto& te : result.ordered) centroid = centroid + tagXy[te.tag_index];
  centroid = centroid / static_cast<double>(result.ordered.size());
  double sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (const auto& te : result.ordered) {
    const Vec2 d = tagXy[te.tag_index] - centroid;
    sxx += d.x * d.x;
    syy += d.y * d.y;
    sxy += d.x * d.y;
  }
  const double tr = sxx + syy;
  if (tr <= 1e-12) return result;  // all troughs on one tag
  const double disc = std::sqrt(std::max(0.0, tr * tr / 4.0 - (sxx * syy - sxy * sxy)));
  const double l1 = tr / 2.0 + disc;
  Vec2 axis = std::abs(sxy) > 1e-12 ? Vec2{l1 - syy, sxy}.normalized()
                                    : (sxx >= syy ? Vec2{1, 0} : Vec2{0, 1});

  // Regress axis position against trough time.
  std::vector<double> proj, ts;
  for (const auto& te : result.ordered) {
    proj.push_back((tagXy[te.tag_index] - centroid).dot(axis));
    ts.push_back(te.time_s);
  }
  const double mp = mean(proj);
  const double mt = mean(ts);
  double cov = 0.0, vp = 0.0, vt = 0.0;
  for (std::size_t i = 0; i < proj.size(); ++i) {
    cov += (proj[i] - mp) * (ts[i] - mt);
    vp += (proj[i] - mp) * (proj[i] - mp);
    vt += (ts[i] - mt) * (ts[i] - mt);
  }
  if (vp <= 1e-12 || vt <= 1e-12) return result;

  const double corr = cov / std::sqrt(vp * vt);
  // Positive correlation: positions further along +axis are visited later,
  // so travel is along +axis.
  result.direction = corr >= 0.0 ? axis : axis * -1.0;
  result.confidence = std::abs(corr);
  result.valid = result.confidence > 0.25;
  return result;
}

}  // namespace rfipad::core
