#include "core/online.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace rfipad::core {

OnlineRecognizer::OnlineRecognizer(StaticProfile profile, OnlineOptions options)
    : engine_(std::move(profile), options.engine),
      options_(options),
      segmenter_(engine_.profile(), options.engine.segmenter) {}

void OnlineRecognizer::push(const reader::TagReport& report) {
  if (offer(report)) processDue(scratch_);
}

RFIPAD_HOT_PATH
bool OnlineRecognizer::offer(const reader::TagReport& report) {
  if (!std::isfinite(report.time_s) || report.time_s < 0.0 ||
      !std::isfinite(report.phase_rad) || !std::isfinite(report.rssi_dbm)) {
    ++stats_.dropped_invalid;
    return false;
  }
  if (report.tag_index >= engine_.profile().numTags()) {
    ++stats_.dropped_unknown_tag;
    return false;
  }
  // Reports behind the consumed frontier arrived too late to influence an
  // already-emitted stroke; count and drop rather than re-open the window.
  if (report.time_s < consumed_until_) {
    ++stats_.dropped_late;
    return false;
  }
  // A finite but implausibly far-future timestamp (a bit-flipped wire
  // clock) must not drag the watermark forward — that would stall the
  // recogniser clock for the rest of the session.  An isolated jump past
  // the buffer horizon is dropped; a *genuine* clock jump (reader resumed
  // after a long gap) is corroborated by the very next report landing near
  // the same future time, at which point the jump is accepted.
  if (watermark_ > kClockUnset &&
      report.time_s > watermark_ + options_.buffer_horizon_s) {
    if (!future_pending_ ||
        std::abs(report.time_s - future_candidate_) >
            options_.buffer_horizon_s) {
      future_pending_ = true;
      future_candidate_ = report.time_s;
      ++stats_.dropped_future;
      return false;
    }
    future_pending_ = false;  // corroborated: accept the jump below
  } else {
    future_pending_ = false;
  }
  switch (buffer_.push(report)) {
    case reader::PushOutcome::kDuplicate:
      ++stats_.duplicates;
      return false;
    case reader::PushOutcome::kInvalid:
      ++stats_.dropped_invalid;
      return false;
    case reader::PushOutcome::kReordered:
      ++stats_.reordered;
      ++stats_.accepted;
      break;
    case reader::PushOutcome::kAppended:
      ++stats_.accepted;
      break;
  }
  const double previous_watermark = watermark_;
  watermark_ = std::max(watermark_, report.time_s);
  RFIPAD_INVARIANT(watermark_ >= previous_watermark,
                   "recogniser watermark must never rewind");
  if (watermark_ - last_process_ >= options_.process_interval_s) {
    last_process_ = watermark_;
    process_pending_ = true;
  }
  return process_pending_;
}

void OnlineRecognizer::processDue(SegmentScratch& scratch) {
  if (!process_pending_) return;
  process_pending_ = false;
  process(watermark_, /*flushing=*/false, scratch);
}

void OnlineRecognizer::flush() { flushWith(scratch_); }

void OnlineRecognizer::flushWith(SegmentScratch& scratch) {
  process_pending_ = false;
  if (!buffer_.empty()) {
    process(buffer_.endTime(), /*flushing=*/true, scratch);
  }
  maybeEmitLetter(buffer_.empty() ? 0.0 : buffer_.endTime(), /*flushing=*/true);
}

void OnlineRecognizer::process(double now, bool flushing,
                               SegmentScratch& scratch) {
  if (buffer_.empty()) return;

  const std::vector<Interval>& intervals =
      segmenter_.segmentWith(buffer_, scratch);
  for (const Interval& iv : intervals) {
    // Buffer trimming can shift interval boundaries between rounds, so an
    // interval may straddle the consumed frontier; emit only its
    // unconsumed remainder.
    if (iv.t1 <= consumed_until_ + 0.05) continue;  // fully emitted
    const double t0 = std::max(iv.t0, consumed_until_);
    if (iv.t1 - t0 < options_.engine.segmenter.min_stroke_s) {
      consumed_until_ = std::max(consumed_until_, iv.t1);
      continue;
    }
    const bool closed = flushing || (now - iv.t1 >= options_.close_after_s);
    if (!closed) break;  // later intervals are even more recent

    StrokeEvent ev = engine_.classifyWindow(buffer_.slice(t0, iv.t1));
    ev.interval = {t0, iv.t1};
    consumed_until_ = iv.t1;
    if (!ev.observation.valid) continue;
    emitted_.push_back(ev);
    letter_pending_.push_back(ev);
    if (stroke_cb_) stroke_cb_(ev);
  }

  // The letter-gap clock must consider *all* detected activity (including
  // windows not yet closed), or a slow writer's letter would be cut off
  // between strokes.
  if (!intervals.empty()) {
    last_activity_end_ = std::max(last_activity_end_, intervals.back().t1);
  }
  maybeEmitLetter(now, flushing);

  // Trim the buffer: everything consumed and beyond the horizon can go,
  // but always keep a half-window of context before unconsumed data.
  // dropBefore() advances the stream's window in amortised O(1) instead of
  // re-copying the survivors every round (the old slice-and-replace trim
  // made each process() pass O(buffer) regardless of how little expired).
  const double keep_from =
      std::max(consumed_until_ - 0.5, now - options_.buffer_horizon_s);
  if (buffer_.startTime() < keep_from - 1.0) {
    buffer_.dropBefore(keep_from);
  }
}

void OnlineRecognizer::maybeEmitLetter(double now, bool flushing) {
  if (letter_pending_.empty()) return;
  const double last_end =
      std::max(letter_pending_.back().interval.t1, last_activity_end_);
  if (!flushing && now - last_end < options_.letter_gap_s) return;

  const char letter = engine_.recognizeLetter(letter_pending_);
  if (letter_cb_) letter_cb_(letter, letter_pending_);
  letter_pending_.clear();
}

}  // namespace rfipad::core
