#include "core/online.hpp"

#include <algorithm>

namespace rfipad::core {

OnlineRecognizer::OnlineRecognizer(StaticProfile profile, OnlineOptions options)
    : engine_(std::move(profile), options.engine), options_(options) {}

void OnlineRecognizer::push(const reader::TagReport& report) {
  buffer_.push(report);
  const double now = report.time_s;
  if (now - last_process_ >= options_.process_interval_s) {
    last_process_ = now;
    process(now, /*flushing=*/false);
  }
}

void OnlineRecognizer::flush() {
  if (!buffer_.empty()) {
    process(buffer_.endTime(), /*flushing=*/true);
  }
  maybeEmitLetter(buffer_.empty() ? 0.0 : buffer_.endTime(), /*flushing=*/true);
}

void OnlineRecognizer::process(double now, bool flushing) {
  if (buffer_.empty()) return;

  const Segmenter segmenter(engine_.profile(), options_.engine.segmenter);
  const auto intervals = segmenter.segment(buffer_);
  for (const Interval& iv : intervals) {
    // Buffer trimming can shift interval boundaries between rounds, so an
    // interval may straddle the consumed frontier; emit only its
    // unconsumed remainder.
    if (iv.t1 <= consumed_until_ + 0.05) continue;  // fully emitted
    const double t0 = std::max(iv.t0, consumed_until_);
    if (iv.t1 - t0 < options_.engine.segmenter.min_stroke_s) {
      consumed_until_ = std::max(consumed_until_, iv.t1);
      continue;
    }
    const bool closed = flushing || (now - iv.t1 >= options_.close_after_s);
    if (!closed) break;  // later intervals are even more recent

    StrokeEvent ev = engine_.classifyWindow(buffer_.slice(t0, iv.t1));
    ev.interval = {t0, iv.t1};
    consumed_until_ = iv.t1;
    if (!ev.observation.valid) continue;
    emitted_.push_back(ev);
    letter_pending_.push_back(ev);
    if (stroke_cb_) stroke_cb_(ev);
  }

  // The letter-gap clock must consider *all* detected activity (including
  // windows not yet closed), or a slow writer's letter would be cut off
  // between strokes.
  if (!intervals.empty()) {
    last_activity_end_ = std::max(last_activity_end_, intervals.back().t1);
  }
  maybeEmitLetter(now, flushing);

  // Trim the buffer: everything consumed and beyond the horizon can go,
  // but always keep a half-window of context before unconsumed data.
  const double keep_from =
      std::max(consumed_until_ - 0.5, now - options_.buffer_horizon_s);
  if (buffer_.startTime() < keep_from - 1.0) {
    buffer_ = buffer_.slice(keep_from, buffer_.endTime() + 1.0);
  }
}

void OnlineRecognizer::maybeEmitLetter(double now, bool flushing) {
  if (letter_pending_.empty()) return;
  const double last_end =
      std::max(letter_pending_.back().interval.t1, last_activity_end_);
  if (!flushing && now - last_end < options_.letter_gap_s) return;

  const char letter = engine_.recognizeLetter(letter_pending_);
  if (letter_cb_) letter_cb_(letter, letter_pending_);
  letter_pending_.clear();
}

}  // namespace rfipad::core
