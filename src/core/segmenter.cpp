#include "core/segmenter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/activation.hpp"
#include "common/contracts.hpp"
#include "common/stats.hpp"
#include "common/vkernels.hpp"

namespace rfipad::core {

Segmenter::Segmenter(StaticProfile profile, SegmenterOptions options)
    : profile_(std::move(profile)), options_(options) {
  if (options.frame_s <= 0.0)
    throw std::invalid_argument("Segmenter: non-positive frame length");
  if (options.window_frames < 2)
    throw std::invalid_argument("Segmenter: window needs >= 2 frames");
}

SegmentationTrace Segmenter::trace(const reader::SampleStream& stream) const {
  SegmentScratch scratch;
  traceInto(stream, scratch);
  return std::move(scratch.trace);
}

const SegmentationTrace& Segmenter::traceInto(const reader::SampleStream& stream,
                                              SegmentScratch& scratch) const {
  SegmentationTrace& tr = scratch.trace;
  tr.frame_times.clear();
  tr.frame_rms.clear();
  tr.window_times.clear();
  tr.window_std.clear();
  tr.window_peak.clear();
  tr.threshold_used = 0.0;
  if (stream.empty()) return tr;

  const double t0 = stream.startTime();
  const double t1 = stream.endTime();
  // push() keeps the stream time-sorted and finite; the frame math below
  // (bucket index = (t - t0)/frame_s) is only meaningful under that
  // invariant.
  RFIPAD_INVARIANT(t1 >= t0, "stream end precedes its start");
  const int num_frames =
      std::max(1, static_cast<int>(std::ceil((t1 - t0) / options_.frame_s)));
  RFIPAD_INVARIANT(num_frames >= 1, "frame count must be positive");

  // Flat SoA pass: samples grouped by tag, calibrated in place into one
  // flat scratch buffer with the same layout.  Because each tag's slice is
  // time-sorted and the frame index is monotone in time, every (tag, frame)
  // bucket — and every (tag, window) pool — is a contiguous sub-slice of
  // `theta`, so the old per-frame vector-of-vectors and per-window pooled
  // copies disappear entirely.  All planes live in the caller's scratch and
  // are fully rewritten here, so repeat calls perform no steady-state
  // allocation and stay bit-identical to the allocate-fresh path.
  stream.flatSeriesInto(scratch.fs);
  const reader::FlatSeries& fs = scratch.fs;
  const std::size_t num_tags = fs.num_tags;
  std::vector<double>& theta = scratch.theta;
  theta.resize(fs.phases.size());
  for (std::size_t i = 0; i < num_tags; ++i) {
    const std::size_t o0 = fs.offsets[i];
    const std::size_t cnt = fs.offsets[i + 1] - o0;
    if (cnt == 0) continue;
    const double mean_phase =
        i < profile_.numTags() ? profile_.tag(static_cast<std::uint32_t>(i)).mean_phase : 0.0;
    calibratedPhasesInto(fs.phases.data() + o0, cnt, mean_phase,
                         /*unwrap=*/true, theta.data() + o0);
  }

  // Per-tag frame boundaries: starts[i·(F+1) + f] is the first sample of
  // tag i whose frame index is ≥ f, so tag i's frame-f bucket is
  // theta[starts[f]..starts[f+1]) and its window [f, f+w) pool is
  // theta[starts[f]..starts[f+w]).
  const std::size_t F = static_cast<std::size_t>(num_frames);
  std::vector<std::size_t>& starts = scratch.starts;
  starts.resize(num_tags * (F + 1));
  for (std::size_t i = 0; i < num_tags; ++i) {
    std::size_t* row = starts.data() + i * (F + 1);
    std::size_t j = fs.offsets[i];
    const std::size_t end = fs.offsets[i + 1];
    for (std::size_t f = 0; f <= F; ++f) {
      while (j < end) {
        int g = static_cast<int>((fs.times[j] - t0) / options_.frame_s);
        g = std::clamp(g, 0, num_frames - 1);
        if (static_cast<std::size_t>(g) >= f) break;
        ++j;
      }
      row[f] = j;
    }
  }

  // Eq. 11: rms(f) = Σ_i sqrt(Σ_j p_ij² / n).  For the spatial-peakiness
  // refinement we use the per-tag RMS of *successive differences* (motion
  // energy) so a tag merely holding a phase offset does not count.
  tr.frame_times.reserve(F);
  tr.frame_rms.reserve(F);
  for (std::size_t f = 0; f < F; ++f) {
    double sum = 0.0;
    for (std::size_t i = 0; i < num_tags; ++i) {
      const std::size_t* row = starts.data() + i * (F + 1);
      const std::size_t len = row[f + 1] - row[f];
      if (len > 0) sum += rms(theta.data() + row[f], len);
    }
    tr.frame_times.push_back(t0 + (static_cast<double>(f) + 0.5) * options_.frame_s);
    tr.frame_rms.push_back(sum);
  }

  // Sliding window of `window_frames` frames, stride one frame.  The
  // per-window spatial peak pools each tag's samples across the whole
  // window (frames alone hold too few reads for a stable estimate); the
  // pooled first-difference RMS reduces over the contiguous slice via the
  // dispatched Σ(Δx)² kernel without materialising the diffs.
  const int w = options_.window_frames;
  const std::size_t uw = static_cast<std::size_t>(w);
  for (std::size_t f = 0; f + uw <= F; ++f) {
    tr.window_times.push_back(
        t0 + (static_cast<double>(f) + w / 2.0) * options_.frame_s);
    tr.window_std.push_back(stddev(tr.frame_rms.data() + f, uw));
    double peak = 0.0;
    for (std::size_t i = 0; i < num_tags; ++i) {
      const std::size_t* row = starts.data() + i * (F + 1);
      const std::size_t len = row[f + uw] - row[f];
      if (len >= 3) {
        const double ssd = vk::sumSquaredDiffs(theta.data() + row[f], len);
        peak = std::max(peak, std::sqrt(ssd / static_cast<double>(len - 1)));
      }
    }
    tr.window_peak.push_back(peak);
  }
  tr.threshold_used = resolveThreshold(tr.window_std);
  return tr;
}

double Segmenter::resolveThreshold(const std::vector<double>& window_stds) const {
  if (options_.threshold > 0.0) return options_.threshold;
  if (window_stds.empty()) return options_.adaptive_floor;
  const double floor_est =
      percentile(std::vector<double>(window_stds), 20.0);
  return std::max(options_.adaptive_floor,
                  options_.adaptive_factor * floor_est);
}

std::vector<Interval> Segmenter::segment(const reader::SampleStream& stream) const {
  SegmentScratch scratch;
  return segmentWith(stream, scratch);
}

const std::vector<Interval>& Segmenter::segmentWith(
    const reader::SampleStream& stream, SegmentScratch& scratch) const {
  std::vector<Interval>& intervals = scratch.intervals;
  std::vector<Interval>& merged = scratch.merged;
  intervals.clear();
  merged.clear();
  const SegmentationTrace& tr = traceInto(stream, scratch);
  if (tr.window_std.empty()) return intervals;
  const double thr = tr.threshold_used;
  const double half_window = options_.window_frames * options_.frame_s / 2.0;

  // Collect active windows as intervals, then merge.  Each active window
  // contributes only its centre frame: padding by the full half-window
  // would bridge the short adjustment gaps between letter strokes.
  bool open = false;
  Interval cur;
  for (std::size_t i = 0; i < tr.window_std.size(); ++i) {
    const bool active = tr.window_std[i] > thr;
    const double w0 = tr.window_times[i] - options_.frame_s / 2.0;
    const double w1 = tr.window_times[i] + options_.frame_s / 2.0;
    if (active && !open) {
      cur = {w0, w1};
      open = true;
    } else if (active && open) {
      cur.t1 = w1;
    } else if (!active && open) {
      intervals.push_back(cur);
      open = false;
    }
  }
  if (open) intervals.push_back(cur);

  // Merge near-adjacent intervals, and intervals whose separating gap
  // never becomes properly quiet (hysteresis: a lull inside one stroke).
  const double off_thr = options_.off_fraction * thr;
  auto gapIsQuiet = [&](double g0, double g1) {
    for (std::size_t i = 0; i < tr.window_std.size(); ++i) {
      const double t = tr.window_times[i];
      if (t < g0 || t > g1) continue;
      if (tr.window_std[i] <= off_thr) return true;
    }
    return false;
  };
  for (const Interval& iv : intervals) {
    const bool near = !merged.empty() &&
                      iv.t0 - merged.back().t1 < options_.merge_gap_s;
    const bool loud_gap = !merged.empty() &&
                          !gapIsQuiet(merged.back().t1, iv.t0);
    if (near || loud_gap) {
      merged.back().t1 = iv.t1;
    } else {
      merged.push_back(iv);
    }
  }

  // Spatial-peakiness refinement: keep the span where at least one tag
  // shows strong motion energy (hand at writing height).  An interval with
  // *no* such window is a far-hand transition (approach/retract with the
  // arm raised), not a stroke — drop it entirely.  The pre-merge list is
  // dead at this point, so it doubles as the kept-interval buffer.
  if (options_.peak_threshold > 0.0) {
    std::vector<Interval>& kept = intervals;
    kept.clear();
    for (const Interval& iv : merged) {
      double core0 = iv.t1, core1 = iv.t0;
      for (std::size_t i = 0; i < tr.window_peak.size(); ++i) {
        const double t = tr.window_times[i];
        if (t < iv.t0 - half_window || t > iv.t1 + half_window) continue;
        if (tr.window_peak[i] < options_.peak_threshold) continue;
        core0 = std::min(core0, t - half_window);
        core1 = std::max(core1, t + half_window);
      }
      if (core1 > core0)
        kept.push_back({std::max(core0, iv.t0 - half_window),
                        std::min(core1, iv.t1 + half_window)});
    }
    std::swap(merged, kept);
  }

  // Core refinement: shrink each interval to the span where window std
  // reaches a fraction of its in-interval peak.
  if (options_.core_fraction > 0.0) {
    for (Interval& iv : merged) {
      double peak = 0.0;
      for (std::size_t i = 0; i < tr.window_std.size(); ++i) {
        if (tr.window_times[i] >= iv.t0 && tr.window_times[i] <= iv.t1)
          peak = std::max(peak, tr.window_std[i]);
      }
      const double gate = std::max(thr, options_.core_fraction * peak);
      double core0 = iv.t1, core1 = iv.t0;
      for (std::size_t i = 0; i < tr.window_std.size(); ++i) {
        const double t = tr.window_times[i];
        if (t < iv.t0 || t > iv.t1 || tr.window_std[i] < gate) continue;
        core0 = std::min(core0, t - half_window);
        core1 = std::max(core1, t + half_window);
      }
      if (core1 > core0) iv = {core0, core1};
    }
  }

  // Refinement can expand adjacent intervals into overlap; clamp so the
  // output is strictly ordered and disjoint.
  for (std::size_t i = 1; i < merged.size(); ++i) {
    if (merged[i].t0 < merged[i - 1].t1) merged[i].t0 = merged[i - 1].t1;
    RFIPAD_INVARIANT(merged[i].t0 >= merged[i - 1].t1,
                     "segment intervals must stay disjoint after clamping");
  }

  // Length gate, in place (erase-remove keeps the buffer's capacity).
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [&](const Interval& iv) {
                                return iv.duration() < options_.min_stroke_s;
                              }),
               merged.end());
  return merged;
}

}  // namespace rfipad::core
