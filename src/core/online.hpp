// Online (streaming) recognition.
//
// The batch RecognitionEngine assumes a complete capture; a deployment
// receives LLRP reports one at a time and must react "instantly" (§I).
// OnlineRecognizer buffers reports, re-segments the (bounded) buffer as
// time advances, and emits a StrokeEvent as soon as a stroke window has
// been quiet for `close_after_s` — the latency the paper measures in
// Fig. 24.  When the pad stays quiet for `letter_gap_s` after one or more
// strokes, they are composed into a letter.
#pragma once

#include <functional>
#include <vector>

#include "core/engine.hpp"

namespace rfipad::core {

struct OnlineOptions {
  EngineOptions engine{};
  /// A stroke window is final once this much quiet follows it.
  double close_after_s = 0.45;
  /// Re-run segmentation at most this often (simulated time).
  double process_interval_s = 0.15;
  /// Quiet gap that ends a letter (the user dropped the hand).
  double letter_gap_s = 1.9;
  /// Buffer horizon; reports older than this behind the newest are dropped
  /// once consumed.
  double buffer_horizon_s = 12.0;
};

class OnlineRecognizer {
 public:
  using StrokeCallback = std::function<void(const StrokeEvent&)>;
  using LetterCallback =
      std::function<void(char, const std::vector<StrokeEvent>&)>;

  OnlineRecognizer(StaticProfile profile, OnlineOptions options = {});

  void onStroke(StrokeCallback cb) { stroke_cb_ = std::move(cb); }
  void onLetter(LetterCallback cb) { letter_cb_ = std::move(cb); }

  /// Feed one report (time must be non-decreasing).
  void push(const reader::TagReport& report);

  /// End of input: finalise any pending stroke and letter.
  void flush();

  /// Strokes emitted so far (also delivered through the callback).
  const std::vector<StrokeEvent>& strokes() const { return emitted_; }

 private:
  void process(double now, bool flushing);
  void maybeEmitLetter(double now, bool flushing);

  RecognitionEngine engine_;
  OnlineOptions options_;
  StrokeCallback stroke_cb_;
  LetterCallback letter_cb_;

  reader::SampleStream buffer_;
  double last_process_ = -1e18;
  /// Everything before this reader-clock time has been consumed.
  double consumed_until_ = -1e18;
  /// End of the most recent segmented activity (even if not yet closed).
  double last_activity_end_ = -1e18;

  std::vector<StrokeEvent> emitted_;
  std::vector<StrokeEvent> letter_pending_;
};

}  // namespace rfipad::core
