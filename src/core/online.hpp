// Online (streaming) recognition.
//
// The batch RecognitionEngine assumes a complete capture; a deployment
// receives LLRP reports one at a time and must react "instantly" (§I).
// OnlineRecognizer buffers reports, re-segments the (bounded) buffer as
// time advances, and emits a StrokeEvent as soon as a stroke window has
// been quiet for `close_after_s` — the latency the paper measures in
// Fig. 24.  When the pad stays quiet for `letter_gap_s` after one or more
// strokes, they are composed into a letter.
#pragma once

#include <functional>
#include <vector>

#include "core/engine.hpp"
#include "core/segmenter.hpp"

namespace rfipad::core {

struct OnlineOptions {
  EngineOptions engine{};
  /// A stroke window is final once this much quiet follows it.
  double close_after_s = 0.45;
  /// Re-run segmentation at most this often (simulated time).
  double process_interval_s = 0.15;
  /// Quiet gap that ends a letter (the user dropped the hand).
  double letter_gap_s = 1.9;
  /// Buffer horizon; reports older than this behind the newest are dropped
  /// once consumed.
  double buffer_horizon_s = 12.0;
};

// OnlineStats (the input-hygiene counters stats() returns) lives in
// core/metrics.hpp so reporting code can use it without this header.

class OnlineRecognizer {
 public:
  using StrokeCallback = std::function<void(const StrokeEvent&)>;
  using LetterCallback =
      std::function<void(char, const std::vector<StrokeEvent>&)>;

  OnlineRecognizer(StaticProfile profile, OnlineOptions options = {});

  void onStroke(StrokeCallback cb) { stroke_cb_ = std::move(cb); }
  void onLetter(LetterCallback cb) { letter_cb_ = std::move(cb); }

  /// Feed one report.  Tolerates real-transport untidiness: bounded
  /// out-of-order arrivals are reinserted at their timestamp, exact
  /// duplicates are dropped, and reports with non-finite/negative times,
  /// non-finite phase/RSSI or an out-of-range tag index are rejected with a
  /// counted drop (see stats()) instead of corrupting recognition state.
  /// Equivalent to `if (offer(report)) processDue(<own scratch>)`.
  void push(const reader::TagReport& report);

  /// Scratch-sharing split of push(): buffer the report (same hygiene and
  /// watermark rules) but defer the re-segmentation pass.  Returns true
  /// when a pass is due — the caller must then call processDue() with its
  /// scratch to stay bit-identical to the push() path.  This is how the
  /// session serving layer shares one SegmentScratch across every
  /// co-resident session on a shard.
  bool offer(const reader::TagReport& report);
  /// Run the re-segmentation pass recorded by offer() (no-op when none is
  /// pending), using the caller's scratch for every working buffer.
  void processDue(SegmentScratch& scratch);

  /// End of input: finalise any pending stroke and letter.
  void flush();
  /// flush() with a caller-provided scratch (serving-layer variant).
  void flushWith(SegmentScratch& scratch);

  /// Strokes emitted so far (also delivered through the callback).
  const std::vector<StrokeEvent>& strokes() const { return emitted_; }

  /// Input hygiene counters (see core/metrics.hpp; format with
  /// formatOnlineStats for reporting).
  const OnlineStats& stats() const { return stats_; }

  /// The wrapped batch engine (letter-hypothesis decoding, options
  /// inspection).
  const RecognitionEngine& engine() const { return engine_; }

 private:
  void process(double now, bool flushing, SegmentScratch& scratch);
  void maybeEmitLetter(double now, bool flushing);

  RecognitionEngine engine_;
  OnlineOptions options_;
  /// Built once; segmentation state lives in the per-call scratch, so one
  /// segmenter serves every re-segmentation round.
  Segmenter segmenter_;
  StrokeCallback stroke_cb_;
  LetterCallback letter_cb_;

  reader::SampleStream buffer_;
  /// Working set for the push()/flush() convenience path.  Sessions served
  /// by a shard bypass this and share the shard's scratch instead.
  SegmentScratch scratch_;
  /// Set by offer() when a re-segmentation pass is due; cleared by
  /// processDue().
  bool process_pending_ = false;
  OnlineStats stats_;
  /// Sentinel threshold: clocks below this are "not yet initialised".
  static constexpr double kClockUnset = -1e17;
  /// Newest report time seen — the recogniser clock.  A late (out-of-order)
  /// report must not rewind it.
  double watermark_ = -1e18;
  /// Forward-jump corroboration state: a report beyond the buffer horizon
  /// of the watermark is held here until a second report agrees with it.
  bool future_pending_ = false;
  double future_candidate_ = 0.0;
  double last_process_ = -1e18;
  /// Everything before this reader-clock time has been consumed.
  double consumed_until_ = -1e18;
  /// End of the most recent segmented activity (even if not yet closed).
  double last_activity_end_ = -1e18;

  std::vector<StrokeEvent> emitted_;
  std::vector<StrokeEvent> letter_pending_;
};

}  // namespace rfipad::core
