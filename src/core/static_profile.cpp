#include "core/static_profile.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/angles.hpp"
#include "common/stats.hpp"

namespace rfipad::core {

StaticProfile::StaticProfile(std::vector<TagProfile> tags)
    : tags_(std::move(tags)) {
  for (const auto& t : tags_) {
    if (!t.dead) bias_sum_ += t.deviation_bias;
  }
}

StaticProfile StaticProfile::calibrate(const reader::SampleStream& stream,
                                       std::uint32_t numTags,
                                       bool markUnseenDead) {
  if (numTags == 0)
    throw std::invalid_argument("StaticProfile::calibrate: zero tags");
  std::vector<TagProfile> profiles(numTags);
  std::vector<double> observed_biases;

  const auto series = stream.allSeries();
  for (std::uint32_t i = 0; i < numTags && i < series.size(); ++i) {
    const auto& s = series[i];
    auto& p = profiles[i];
    p.samples = s.phases.size();
    if (p.samples == 0) continue;
    p.mean_phase = circularMean(s.phases);
    // Deviation bias from the *unwrapped* phase so that noise across the
    // 0/2π seam does not masquerade as huge variance.
    p.deviation_bias = stddev(unwrapped(s.phases));
    p.mean_rssi = mean(s.rssi);
    observed_biases.push_back(p.deviation_bias);
  }

  // Unseen tags (e.g. shadowed during calibration) get the median bias so
  // the weighting stays finite and neutral.
  const double fallback =
      observed_biases.empty() ? 0.05 : median(observed_biases);
  for (auto& p : profiles) {
    if (p.samples == 0) {
      p.deviation_bias = fallback;
      // A tag silent through the whole calibration capture is treated as
      // dead — but only if *some* tag answered, so an empty calibration
      // stream (tests, synthetic profiles) does not kill the whole array.
      if (markUnseenDead && !observed_biases.empty()) p.dead = true;
    }
    // A zero bias would give that tag infinite weight in Eq. 10; clamp to a
    // small floor (one phase-quantisation step).
    p.deviation_bias = std::max(p.deviation_bias, 1.6e-3);
  }

  // Detuned detection: a tag answering far below the array's typical RSSI
  // is physically present but weakly coupled — its reads will be sparse and
  // noisy during recognition.  The flag is advisory (see TagProfile); 4.5 dB
  // below the median separates genuinely detuned tags from ordinary
  // position-dependent RSSI spread (≈ ±2 dB on a flat pad).
  std::vector<double> observed_rssi;
  for (const auto& p : profiles) {
    if (p.samples > 0) observed_rssi.push_back(p.mean_rssi);
  }
  if (observed_rssi.size() >= 2) {
    const double med = median(std::move(observed_rssi));
    for (auto& p : profiles) {
      if (p.samples > 0 && p.mean_rssi < med - 4.5) p.detuned = true;
    }
  }
  return StaticProfile(std::move(profiles));
}

void StaticProfile::markDead(std::uint32_t i) {
  auto& t = tags_.at(i);
  if (t.dead) return;
  t.dead = true;
  bias_sum_ -= t.deviation_bias;
  if (bias_sum_ < 0.0) bias_sum_ = 0.0;
}

std::uint32_t StaticProfile::deadCount() const {
  return static_cast<std::uint32_t>(
      std::count_if(tags_.begin(), tags_.end(),
                    [](const TagProfile& t) { return t.dead; }));
}

std::uint32_t StaticProfile::detunedCount() const {
  return static_cast<std::uint32_t>(
      std::count_if(tags_.begin(), tags_.end(),
                    [](const TagProfile& t) { return t.detuned; }));
}

double StaticProfile::medianBias() const {
  std::vector<double> biases;
  biases.reserve(tags_.size());
  for (const auto& t : tags_) {
    if (!t.dead) biases.push_back(t.deviation_bias);
  }
  return biases.empty() ? 0.0 : median(std::move(biases));
}

double StaticProfile::weight(std::uint32_t i) const {
  const auto& t = tags_.at(i);
  if (t.dead) return 0.0;
  if (bias_sum_ <= 0.0) {
    const std::uint32_t alive = aliveCount();
    return alive > 0 ? 1.0 / static_cast<double>(alive)
                     : 1.0 / static_cast<double>(
                               std::max<std::size_t>(tags_.size(), 1));
  }
  return t.deviation_bias / bias_sum_;
}

}  // namespace rfipad::core
