#include "core/metrics.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace rfipad::core {

ConfusionMatrix::ConfusionMatrix(int n) : n_(n) {
  if (n <= 0) throw std::invalid_argument("ConfusionMatrix: n must be > 0");
  cells_.assign(static_cast<std::size_t>(n) * n, 0);
  class_total_.assign(static_cast<std::size_t>(n), 0);
  class_correct_.assign(static_cast<std::size_t>(n), 0);
}

void ConfusionMatrix::add(int truth, int predicted) {
  if (truth < 0 || truth >= n_)
    throw std::invalid_argument("ConfusionMatrix::add: bad truth class");
  if (predicted >= n_)
    throw std::invalid_argument("ConfusionMatrix::add: bad predicted class");
  ++total_;
  ++class_total_[static_cast<std::size_t>(truth)];
  if (predicted < 0) {
    ++misses_;
    return;
  }
  ++cells_[static_cast<std::size_t>(truth) * n_ + predicted];
  if (predicted == truth) {
    ++correct_;
    ++class_correct_[static_cast<std::size_t>(truth)];
  }
}

double ConfusionMatrix::accuracy() const {
  return total_ > 0 ? static_cast<double>(correct_) / total_ : 0.0;
}

double ConfusionMatrix::classAccuracy(int truth) const {
  if (truth < 0 || truth >= n_)
    throw std::invalid_argument("ConfusionMatrix::classAccuracy: bad class");
  const int t = class_total_[static_cast<std::size_t>(truth)];
  return t > 0 ? static_cast<double>(class_correct_[static_cast<std::size_t>(truth)]) / t
               : 0.0;
}

int ConfusionMatrix::count(int truth, int predicted) const {
  if (truth < 0 || truth >= n_ || predicted < 0 || predicted >= n_)
    throw std::invalid_argument("ConfusionMatrix::count: bad class");
  return cells_[static_cast<std::size_t>(truth) * n_ + predicted];
}

double DetectionCounts::fpr() const {
  const int denom = detections;
  return denom > 0 ? static_cast<double>(false_positives) / denom : 0.0;
}

double DetectionCounts::fnr() const {
  return truths > 0 ? static_cast<double>(missed) / truths : 0.0;
}

double DetectionCounts::insertionRate() const {
  return truths > 0 ? static_cast<double>(false_positives) / truths : 0.0;
}

double DetectionCounts::underfillRate() const {
  return matched > 0 ? static_cast<double>(underfilled) / matched : 0.0;
}

DetectionCounts& DetectionCounts::operator+=(const DetectionCounts& o) {
  truths += o.truths;
  detections += o.detections;
  matched += o.matched;
  false_positives += o.false_positives;
  missed += o.missed;
  underfilled += o.underfilled;
  return *this;
}

namespace {

double overlap(const Interval& a, const Interval& b) {
  return std::max(0.0, std::min(a.t1, b.t1) - std::max(a.t0, b.t0));
}

}  // namespace

DetectionCounts matchIntervals(const std::vector<Interval>& truth,
                               const std::vector<Interval>& detected,
                               const MatchOptions& options,
                               std::vector<int>* assignment) {
  DetectionCounts counts;
  counts.truths = static_cast<int>(truth.size());
  counts.detections = static_cast<int>(detected.size());

  std::vector<int> assign(truth.size(), -1);
  std::vector<bool> used(detected.size(), false);

  for (std::size_t i = 0; i < truth.size(); ++i) {
    double best_ov = 0.0;
    int best = -1;
    for (std::size_t j = 0; j < detected.size(); ++j) {
      if (used[j]) continue;
      const double ov = overlap(truth[i], detected[j]);
      const double shorter =
          std::min(truth[i].duration(), detected[j].duration());
      if (shorter <= 0.0) continue;
      if (ov / shorter >= options.min_overlap_frac && ov > best_ov) {
        best_ov = ov;
        best = static_cast<int>(j);
      }
    }
    if (best >= 0) {
      used[static_cast<std::size_t>(best)] = true;
      assign[i] = best;
      ++counts.matched;
      const double coverage =
          truth[i].duration() > 0.0
              ? overlap(truth[i], detected[static_cast<std::size_t>(best)]) /
                    truth[i].duration()
              : 1.0;
      if (coverage < options.coverage_gate) ++counts.underfilled;
    } else {
      ++counts.missed;
    }
  }
  counts.false_positives = counts.detections - counts.matched;
  if (assignment != nullptr) *assignment = std::move(assign);
  return counts;
}

std::string formatOnlineStats(const OnlineStats& stats) {
  std::ostringstream os;
  os << "accepted " << stats.accepted << " | dropped " << stats.totalDropped()
     << " (invalid " << stats.dropped_invalid << ", late " << stats.dropped_late
     << ", unknown-tag " << stats.dropped_unknown_tag << ", future "
     << stats.dropped_future << ") | duplicates " << stats.duplicates
     << " | reordered " << stats.reordered;
  return os.str();
}

IngestQueueStats& IngestQueueStats::operator+=(const IngestQueueStats& o) {
  enqueued += o.enqueued;
  rejected_full += o.rejected_full;
  dropped_oldest += o.dropped_oldest;
  rejected_unknown_session += o.rejected_unknown_session;
  chunks_processed += o.chunks_processed;
  reports_processed += o.reports_processed;
  high_watermark = std::max(high_watermark, o.high_watermark);
  return *this;
}

std::string formatIngestQueueStats(const IngestQueueStats& stats) {
  std::ostringstream os;
  os << "enqueued " << stats.enqueued << " | processed "
     << stats.chunks_processed << " chunks / " << stats.reports_processed
     << " reports | backpressure " << stats.droppedTotal() << " (full "
     << stats.rejected_full << ", evicted " << stats.dropped_oldest
     << ", unknown-session " << stats.rejected_unknown_session << ") | hwm "
     << stats.high_watermark;
  return os.str();
}

PumpStats& PumpStats::operator+=(const PumpStats& o) {
  workers += o.workers;
  busy_passes += o.busy_passes;
  idle_passes += o.idle_passes;
  parks += o.parks;
  wakeups += o.wakeups;
  return *this;
}

std::string formatPumpStats(const PumpStats& stats) {
  std::ostringstream os;
  os << "workers " << stats.workers << " | passes " << stats.busy_passes
     << " busy / " << stats.idle_passes << " idle | parks " << stats.parks
     << " | wakeups " << stats.wakeups;
  return os.str();
}

}  // namespace rfipad::core
