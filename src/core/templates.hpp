// Matched-filter stroke classification.
//
// The paper's image-assisted recognition (§III-A3) identifies the motion
// from the pattern of '1' pixels after Otsu.  On a 5×5 grid with real
// noise, raw geometric moments are brittle, so our primary classifier is a
// matched filter: the activation image is correlated (zero-mean NCC)
// against a library of rasterised canonical stroke shapes — every kind at
// multiple positions, lengths and aspect ratios — and the best-scoring
// template gives the stroke kind plus a canonical path.  Travel direction
// then comes from regressing RSS-trough times against arclength along that
// path (§III-B).  The moments-based classifier remains available for
// ablation (bench_ablation_classifier).
#pragma once

#include <vector>

#include "common/strokes.hpp"
#include "common/vec.hpp"
#include "core/direction.hpp"
#include "imgproc/graymap.hpp"

namespace rfipad::core {

/// One rasterised candidate shape.
struct StrokeTemplate {
  StrokeKind kind = StrokeKind::kClick;
  /// Path samples in grid coordinates (x = col, y = row), ordered in the
  /// canonical kForward travel direction; single point for clicks.
  std::vector<Vec2> path;
  /// Zero-mean, unit-norm rasterisation (row-major, rows*cols).
  std::vector<double> pixels;
  /// Canonical endpoints (path.front() / path.back()).
  Vec2 start, end;
};

class TemplateLibrary {
 public:
  TemplateLibrary(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  const std::vector<StrokeTemplate>& templates() const { return templates_; }

  /// Shared library for the default 5×5 pad.
  static const TemplateLibrary& standard5x5();

 private:
  void addTemplate(StrokeKind kind, std::vector<Vec2> path,
                   double sigma = 0.62);
  void buildClicks();
  void buildLines();
  void buildArcs();

  int rows_;
  int cols_;
  std::vector<StrokeTemplate> templates_;
};

struct TemplateMatch {
  bool valid = false;
  const StrokeTemplate* shape = nullptr;
  /// Normalised cross-correlation of the winning template, in [−1, 1]
  /// (after any kind penalty).
  double score = 0.0;
  /// Score gap to the best template of any *other* kind.
  double margin = 0.0;
};

struct TemplateMatchOptions {
  /// Subtracted from every arc template's score: arcs have more shape
  /// freedom than lines and would otherwise over-match noisy lines/blobs.
  double arc_penalty = 0.03;
};

/// Correlate the activation image against the library.
TemplateMatch matchTemplate(const imgproc::GrayMap& gray,
                            const TemplateLibrary& library,
                            const TemplateMatchOptions& options = {});

/// Fused matching: phase-activation image plus an RSS-trough image (deep
/// troughs mark the cells the hand actually crossed, §III-B) scored as
/// (1−w)·NCC(activation) + w·NCC(troughs).  The trough image is far
/// sharper spatially, which disambiguates lines from arcs from clicks on a
/// 5×5 grid.
TemplateMatch matchTemplateFused(const imgproc::GrayMap& activation,
                                 const imgproc::GrayMap& troughs,
                                 double trough_weight,
                                 const TemplateLibrary& library,
                                 const TemplateMatchOptions& options = {});

/// Confidence-weighted fused matching: NCC computed in the √w-scaled space
/// (weighted mean removed, weighted norm), so a low-confidence pixel —
/// imputed, dead-neighbour-inpainted, barely observed — contributes little
/// to the correlation and cannot veto a template the confident pixels
/// support.  `confidence` holds per-cell weights in [0, 1], laid out like
/// the images.  Uniform weights reproduce plain NCC.  All reductions run
/// through the vk kernels, so the result is bit-identical across SIMD
/// tiers.
TemplateMatch matchTemplateFusedWeighted(const imgproc::GrayMap& activation,
                                         const imgproc::GrayMap& troughs,
                                         double trough_weight,
                                         const imgproc::GrayMap& confidence,
                                         const TemplateLibrary& library,
                                         const TemplateMatchOptions& options = {});

/// Resolve travel direction along a matched template's path from the RSS
/// trough sequence: each trough tag maps to the nearest path sample's
/// arclength parameter; a positive time-vs-arclength correlation means the
/// canonical (kForward) direction.  Returns confidence |corr| (0 when fewer
/// than two usable troughs).
double resolveTravel(const StrokeTemplate& shape,
                     const std::vector<TroughEstimate>& troughs, int cols,
                     StrokeDir* dir);

}  // namespace rfipad::core
