#include "core/templates.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/angles.hpp"
#include "common/contracts.hpp"
#include "common/vkernels.hpp"

namespace rfipad::core {

namespace {

constexpr double kSplatSigma = 0.62;   // cells
constexpr int kPathSamples = 28;

/// Sample a semicircular arc from `from` to `to` bulging toward `bulge`
/// (unit vector), in grid coordinates.
std::vector<Vec2> arcPath(Vec2 from, Vec2 to, Vec2 bulge) {
  const Vec2 center = (from + to) * 0.5;
  const Vec2 r0 = from - center;
  const double radius = r0.norm();
  const double a0 = std::atan2(r0.y, r0.x);
  const double ab = std::atan2(bulge.y, bulge.x);
  const double ccw_gap = wrapTwoPi(ab - a0);
  const double sign = ccw_gap <= kPi ? 1.0 : -1.0;
  std::vector<Vec2> pts;
  pts.reserve(kPathSamples);
  for (int i = 0; i < kPathSamples; ++i) {
    const double u = static_cast<double>(i) / (kPathSamples - 1);
    const double a = a0 + sign * kPi * u;
    pts.push_back(center + Vec2{radius * std::cos(a), radius * std::sin(a)});
  }
  return pts;
}

std::vector<Vec2> linePath(Vec2 from, Vec2 to) {
  std::vector<Vec2> pts;
  pts.reserve(kPathSamples);
  for (int i = 0; i < kPathSamples; ++i) {
    const double u = static_cast<double>(i) / (kPathSamples - 1);
    pts.push_back(lerp(from, to, u));
  }
  return pts;
}

}  // namespace

TemplateLibrary::TemplateLibrary(int rows, int cols) : rows_(rows), cols_(cols) {
  if (rows <= 0 || cols <= 0)
    throw std::invalid_argument("TemplateLibrary: non-positive grid");
  buildClicks();
  buildLines();
  buildArcs();
}

const TemplateLibrary& TemplateLibrary::standard5x5() {
  static const TemplateLibrary kLib(5, 5);
  return kLib;
}

void TemplateLibrary::addTemplate(StrokeKind kind, std::vector<Vec2> path,
                                  double sigma) {
  StrokeTemplate t;
  t.kind = kind;
  t.start = path.front();
  t.end = path.back();
  t.path = std::move(path);

  // Rasterise: Gaussian splat of every path sample.
  t.pixels.assign(static_cast<std::size_t>(rows_) * cols_, 0.0);
  for (const Vec2& p : t.path) {
    for (int r = 0; r < rows_; ++r) {
      for (int c = 0; c < cols_; ++c) {
        const double dx = p.x - c;
        const double dy = p.y - r;
        const double d2 = dx * dx + dy * dy;
        double& px = t.pixels[static_cast<std::size_t>(r) * cols_ + c];
        px = std::max(px, std::exp(-d2 / (2.0 * sigma * sigma)));
      }
    }
  }
  // Zero-mean, unit-norm.
  double mean = 0.0;
  for (double v : t.pixels) mean += v;
  mean /= static_cast<double>(t.pixels.size());
  double norm2 = 0.0;
  for (double& v : t.pixels) {
    v -= mean;
    norm2 += v * v;
  }
  if (norm2 <= 1e-12) return;  // degenerate (uniform) — skip
  const double inv = 1.0 / std::sqrt(norm2);
  for (double& v : t.pixels) v *= inv;
  templates_.push_back(std::move(t));
}

void TemplateLibrary::buildClicks() {
  // A click's activation blob can be tight (hand dips fast) or a broad
  // plus-shape (detune spills onto the 4-neighbours), so offer several
  // splat widths per position.
  for (double x = 0.0; x <= cols_ - 1.0; x += 1.0) {
    for (double y = 0.0; y <= rows_ - 1.0; y += 1.0) {
      for (double sigma : {kSplatSigma, 1.0, 1.35}) {
        addTemplate(StrokeKind::kClick, {Vec2{x, y}}, sigma);
      }
    }
  }
}

void TemplateLibrary::buildLines() {
  const double W = cols_ - 1.0;
  const double H = rows_ - 1.0;

  // Vertical "|": canonical travel top→bottom.  Lengths ≥ 2 cells.
  for (double x = 0.0; x <= W; x += 0.5) {
    for (double len : {2.0, 2.5, 3.0, H}) {
      if (len > H) continue;
      for (double top = H; top - len >= -1e-9; top -= 1.0) {
        addTemplate(StrokeKind::kVLine,
                    linePath({x, top}, {x, top - len}));
      }
    }
  }
  // Horizontal "−": canonical travel left→right.
  for (double y = 0.0; y <= H; y += 0.5) {
    for (double len : {2.0, 2.5, 3.0, W}) {
      if (len > W) continue;
      for (double left = 0.0; left + len <= W + 1e-9; left += 1.0) {
        addTemplate(StrokeKind::kHLine,
                    linePath({left, y}, {left + len, y}));
      }
    }
  }
  // Diagonals: a curated set of (dx, dy) spans covering 20°–72° slopes,
  // placed everywhere they fit (integer offsets).  "/" travels SW→NE
  // (canonical kForward = toward +x,+y); "\" travels NW→SE.
  const std::pair<double, double> spans[] = {
      {2, 2}, {3, 3}, {4, 4}, {2, 3}, {3, 2}, {3, 4}, {4, 3},
      {2, 4}, {4, 2}, {1.5, 3.5}, {3.5, 1.5}, {1, 3}, {3, 1},
      {1.5, 4}, {4, 1.5}};
  for (const auto& [dx, dy] : spans) {
    for (double x0 = 0.0; x0 + dx <= W + 1e-9; x0 += 1.0) {
      for (double y0 = 0.0; y0 + dy <= H + 1e-9; y0 += 1.0) {
        // "/" from bottom-left to top-right.
        addTemplate(StrokeKind::kSlash,
                    linePath({x0, y0}, {x0 + dx, y0 + dy}));
        // "\" from top-left to bottom-right.
        addTemplate(StrokeKind::kBackslash,
                    linePath({x0, y0 + dy}, {x0 + dx, y0}));
      }
    }
  }
}

void TemplateLibrary::buildArcs() {
  const double W = cols_ - 1.0;
  const double H = rows_ - 1.0;

  // Vertical-chord arcs: "⊂" bulges −x, "⊃" bulges +x; canonical travel
  // top→bottom.  Chord heights from small letter bowls up to full pad.
  for (double chord : {1.5, 2.0, 2.5, 3.0, 4.0}) {
    if (chord > H) continue;
    const double r = chord / 2.0;
    for (double x = 0.0; x <= W; x += 0.5) {
      for (double top = H; top - chord >= -1e-9; top -= 0.5) {
        if (x - r >= -0.75) {
          addTemplate(StrokeKind::kLeftArc,
                      arcPath({x, top}, {x, top - chord}, {-1.0, 0.0}));
        }
        if (x + r <= W + 0.75) {
          addTemplate(StrokeKind::kRightArc,
                      arcPath({x, top}, {x, top - chord}, {1.0, 0.0}));
        }
      }
    }
  }
  // Horizontal-chord arcs (letter hooks: J, U): "⊂" bows downward, "⊃"
  // upward; canonical travel left→right.
  for (double chord : {1.5, 2.0, 2.5, 3.0, 4.0}) {
    if (chord > W) continue;
    const double r = chord / 2.0;
    for (double y = 0.0; y <= H; y += 0.5) {
      for (double left = 0.0; left + chord <= W + 1e-9; left += 0.5) {
        if (y - r >= -0.75) {
          addTemplate(StrokeKind::kLeftArc,
                      arcPath({left, y}, {left + chord, y}, {0.0, -1.0}));
        }
        if (y + r <= H + 0.75) {
          addTemplate(StrokeKind::kRightArc,
                      arcPath({left, y}, {left + chord, y}, {0.0, 1.0}));
        }
      }
    }
  }
}

namespace {

/// Zero-mean, unit-norm copy of an image; false when flat.
bool normalizeImage(const imgproc::GrayMap& gray, std::vector<double>* out) {
  *out = gray.values();
  double mean = 0.0;
  for (double v : *out) mean += v;
  mean /= static_cast<double>(out->size());
  double norm2 = 0.0;
  for (double& v : *out) {
    v -= mean;
    norm2 += v * v;
  }
  if (norm2 <= 1e-12) return false;
  const double inv = 1.0 / std::sqrt(norm2);
  for (double& v : *out) v *= inv;
  return true;
}

TemplateMatch bestTemplate(const std::vector<double>* imgA,
                           const std::vector<double>* imgB, double wB,
                           const TemplateLibrary& library,
                           const TemplateMatchOptions& options) {
  TemplateMatch match;
  double best = -2.0;
  double best_other = -2.0;
  const StrokeTemplate* best_shape = nullptr;
  for (const auto& t : library.templates()) {
    double score = 0.0;
    if (imgA != nullptr) {
      double s = 0.0;
      for (std::size_t i = 0; i < imgA->size(); ++i)
        s += (*imgA)[i] * t.pixels[i];
      score += (1.0 - wB) * s;
    }
    if (imgB != nullptr) {
      double s = 0.0;
      for (std::size_t i = 0; i < imgB->size(); ++i)
        s += (*imgB)[i] * t.pixels[i];
      score += wB * s;
    }
    if (isArc(t.kind)) score -= options.arc_penalty;
    if (score > best) {
      if (best_shape != nullptr && best_shape->kind != t.kind)
        best_other = std::max(best_other, best);
      best = score;
      best_shape = &t;
    } else if (best_shape != nullptr && t.kind != best_shape->kind) {
      best_other = std::max(best_other, score);
    }
  }
  if (best_shape == nullptr) return match;
  match.valid = true;
  match.shape = best_shape;
  match.score = best;
  match.margin = best_other > -2.0 ? best - best_other : best;
  return match;
}

/// Weighted zero-mean unit-norm copy in the √w-scaled space: subtract the
/// w-weighted mean, scale each pixel by √w[i], normalise.  A plain dot
/// product between two images prepared this way is their weighted NCC.
/// Returns false when the weighted image is flat.  All reductions go
/// through vk kernels (fixed 4-lane schedule) for cross-tier bit identity.
bool normalizeWeighted(const std::vector<double>& pixels,
                       const std::vector<double>& w,
                       const std::vector<double>& sqrt_w, double w_sum,
                       std::vector<double>* out) {
  const std::size_t n = pixels.size();
  const double mean = vk::dot(w.data(), pixels.data(), n) / w_sum;
  out->resize(n);
  for (std::size_t i = 0; i < n; ++i)
    (*out)[i] = sqrt_w[i] * (pixels[i] - mean);
  const double norm2 = vk::dot(out->data(), out->data(), n);
  if (norm2 <= 1e-12) return false;
  const double inv = 1.0 / std::sqrt(norm2);
  for (double& v : *out) v *= inv;
  return true;
}

}  // namespace

TemplateMatch matchTemplateFusedWeighted(const imgproc::GrayMap& activation,
                                         const imgproc::GrayMap& troughs,
                                         double trough_weight,
                                         const imgproc::GrayMap& confidence,
                                         const TemplateLibrary& library,
                                         const TemplateMatchOptions& options) {
  if (activation.rows() != library.rows() ||
      activation.cols() != library.cols() ||
      troughs.rows() != library.rows() || troughs.cols() != library.cols() ||
      confidence.rows() != library.rows() ||
      confidence.cols() != library.cols())
    throw std::invalid_argument("matchTemplateFusedWeighted: grid size mismatch");

  const std::vector<double>& w = confidence.values();
  const std::size_t n = w.size();
  double w_sum = 0.0;
  std::vector<double> sqrt_w(n);
  for (std::size_t i = 0; i < n; ++i) {
    RFIPAD_ASSERT(std::isfinite(w[i]) && w[i] >= 0.0,
                  "confidence weights must be finite and non-negative");
    w_sum += w[i];
    sqrt_w[i] = std::sqrt(w[i]);
  }
  if (w_sum <= 0.0)
    return matchTemplateFused(activation, troughs, trough_weight, library,
                              options);

  std::vector<double> img_a, img_b;
  const bool has_a =
      normalizeWeighted(activation.values(), w, sqrt_w, w_sum, &img_a);
  const bool has_b =
      normalizeWeighted(troughs.values(), w, sqrt_w, w_sum, &img_b);
  if (!has_a && !has_b) return {};
  const double wB = !has_b ? 0.0 : (!has_a ? 1.0 : trough_weight);

  TemplateMatch match;
  double best = -2.0;
  double best_other = -2.0;
  const StrokeTemplate* best_shape = nullptr;
  std::vector<double> tmpl;  // reused weighted-normalised template
  for (const auto& t : library.templates()) {
    if (!normalizeWeighted(t.pixels, w, sqrt_w, w_sum, &tmpl)) continue;
    double score = 0.0;
    if (has_a)
      score += (1.0 - wB) * vk::dot(img_a.data(), tmpl.data(), n);
    if (has_b) score += wB * vk::dot(img_b.data(), tmpl.data(), n);
    if (isArc(t.kind)) score -= options.arc_penalty;
    if (score > best) {
      if (best_shape != nullptr && best_shape->kind != t.kind)
        best_other = std::max(best_other, best);
      best = score;
      best_shape = &t;
    } else if (best_shape != nullptr && t.kind != best_shape->kind) {
      best_other = std::max(best_other, score);
    }
  }
  if (best_shape == nullptr) return match;
  match.valid = true;
  match.shape = best_shape;
  match.score = best;
  match.margin = best_other > -2.0 ? best - best_other : best;
  return match;
}

TemplateMatch matchTemplate(const imgproc::GrayMap& gray,
                            const TemplateLibrary& library,
                            const TemplateMatchOptions& options) {
  if (gray.rows() != library.rows() || gray.cols() != library.cols())
    throw std::invalid_argument("matchTemplate: grid size mismatch");
  std::vector<double> img;
  if (!normalizeImage(gray, &img)) return {};
  return bestTemplate(&img, nullptr, 0.0, library, options);
}

TemplateMatch matchTemplateFused(const imgproc::GrayMap& activation,
                                 const imgproc::GrayMap& troughs,
                                 double trough_weight,
                                 const TemplateLibrary& library,
                                 const TemplateMatchOptions& options) {
  if (activation.rows() != library.rows() ||
      activation.cols() != library.cols() ||
      troughs.rows() != library.rows() || troughs.cols() != library.cols())
    throw std::invalid_argument("matchTemplateFused: grid size mismatch");
  std::vector<double> img_a, img_b;
  const bool has_a = normalizeImage(activation, &img_a);
  const bool has_b = normalizeImage(troughs, &img_b);
  if (!has_a && !has_b) return {};
  if (!has_b) return bestTemplate(&img_a, nullptr, 0.0, library, options);
  if (!has_a) return bestTemplate(nullptr, &img_b, 1.0, library, options);
  return bestTemplate(&img_a, &img_b, trough_weight, library, options);
}

double resolveTravel(const StrokeTemplate& shape,
                     const std::vector<TroughEstimate>& troughs, int cols,
                     StrokeDir* dir) {
  *dir = StrokeDir::kForward;
  if (shape.path.size() < 2 || troughs.size() < 2) return 0.0;

  // Arclength parameter of each path sample.
  std::vector<double> u(shape.path.size(), 0.0);
  double total = 0.0;
  for (std::size_t i = 1; i < shape.path.size(); ++i) {
    total += (shape.path[i] - shape.path[i - 1]).norm();
    u[i] = total;
  }
  if (total <= 1e-9) return 0.0;
  for (double& v : u) v /= total;

  // The hand passing directly over a tag carves a deep trough (8–14 dB);
  // approach/retract skirts leave shallow ones (1–4 dB) that would
  // otherwise poison the fit, so gate on relative depth and weight the
  // regression by depth.
  double max_depth = 0.0;
  for (const auto& tr : troughs) max_depth = std::max(max_depth, tr.depth_db);
  const double depth_gate = 0.35 * max_depth;

  // Map each qualifying trough tag to the nearest path sample.
  std::vector<double> us, ts, ws;
  for (const auto& tr : troughs) {
    if (tr.depth_db < depth_gate) continue;
    const Vec2 cell{static_cast<double>(tr.tag_index % cols),
                    static_cast<double>(tr.tag_index / cols)};
    double best_d = 1e9;
    double best_u = 0.0;
    for (std::size_t i = 0; i < shape.path.size(); ++i) {
      const double d = (shape.path[i] - cell).norm();
      if (d < best_d) {
        best_d = d;
        best_u = u[i];
      }
    }
    if (best_d <= 1.3) {
      us.push_back(best_u);
      ts.push_back(tr.time_s);
      ws.push_back(tr.depth_db);
    }
  }
  if (us.size() < 2) return 0.0;

  double wsum = 0.0, mu = 0.0, mt = 0.0;
  for (std::size_t i = 0; i < us.size(); ++i) {
    wsum += ws[i];
    mu += ws[i] * us[i];
    mt += ws[i] * ts[i];
  }
  mu /= wsum;
  mt /= wsum;
  double cov = 0.0, vu = 0.0, vt = 0.0;
  for (std::size_t i = 0; i < us.size(); ++i) {
    cov += ws[i] * (us[i] - mu) * (ts[i] - mt);
    vu += ws[i] * (us[i] - mu) * (us[i] - mu);
    vt += ws[i] * (ts[i] - mt) * (ts[i] - mt);
  }
  if (vu <= 1e-12 || vt <= 1e-12) return 0.0;
  const double corr = cov / std::sqrt(vu * vt);
  *dir = corr >= 0.0 ? StrokeDir::kForward : StrokeDir::kReverse;
  return std::abs(corr);
}

}  // namespace rfipad::core
