// Evaluation metrics: confusion matrices, accuracy / FPR / FNR (paper §V-A),
// the segmentation-quality rates of Fig. 22 (insertion, underfill), and the
// streaming input-hygiene counters of the online recogniser.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/segmenter.hpp"

namespace rfipad::core {

/// Input hygiene counters for the streaming recogniser: what
/// OnlineRecognizer::push() did with reports that were not clean, in-order,
/// in-range deliveries.  Lives here (not online.hpp) so evaluation and
/// reporting code can consume the counters without pulling in the whole
/// recogniser.
struct OnlineStats {
  std::uint64_t accepted = 0;
  /// Non-finite or negative timestamp, non-finite phase/RSSI.
  std::uint64_t dropped_invalid = 0;
  /// Arrived after its stroke window was already consumed and trimmed.
  std::uint64_t dropped_late = 0;
  /// Tag index outside the calibrated array (e.g. a corrupted EPC).
  std::uint64_t dropped_unknown_tag = 0;
  /// Exact re-deliveries, dropped.
  std::uint64_t duplicates = 0;
  /// Accepted out of order (reinserted at their timestamp).
  std::uint64_t reordered = 0;
  /// Finite but implausibly far-future timestamps (corrupted wire clock),
  /// dropped so they cannot stall the recogniser watermark.  A genuine
  /// clock jump is accepted once a second report corroborates it.
  std::uint64_t dropped_future = 0;

  /// Everything push() refused (excludes duplicates/reordered, which were
  /// handled, not lost).
  std::uint64_t totalDropped() const {
    return dropped_invalid + dropped_late + dropped_unknown_tag +
           dropped_future;
  }
};

/// One-line human-readable summary of the hygiene counters, e.g.
/// "accepted 1200 | dropped 34 (invalid 10, late 2, unknown-tag 20,
/// future 2) | duplicates 5 | reordered 1".
std::string formatOnlineStats(const OnlineStats& stats);

/// Backpressure counters for one bounded ingest queue of the session
/// serving layer (service/shard.hpp).  Lives here, next to OnlineStats, so
/// reporting and bench code can aggregate both without linking the service
/// library.
struct IngestQueueStats {
  /// Chunks accepted into the queue.
  std::uint64_t enqueued = 0;
  /// Chunks refused because the queue was full (kRejectNew policy).
  std::uint64_t rejected_full = 0;
  /// Chunks evicted from the queue front to admit a newer one
  /// (kDropOldest policy).
  std::uint64_t dropped_oldest = 0;
  /// Chunks refused because their session was not attached to the shard.
  std::uint64_t rejected_unknown_session = 0;
  /// Chunks drained and fed to their session's recogniser.
  std::uint64_t chunks_processed = 0;
  /// Reports fed (post fault-plan degradation).
  std::uint64_t reports_processed = 0;
  /// Deepest queue occupancy observed, in chunks.
  std::uint64_t high_watermark = 0;

  /// Chunks lost to backpressure (either policy).
  std::uint64_t droppedTotal() const { return rejected_full + dropped_oldest; }

  IngestQueueStats& operator+=(const IngestQueueStats& o);
};

/// One-line summary, e.g. "enqueued 5000 | processed 5000 chunks / 1.2e6
/// reports | backpressure 0 (full 0, evicted 0) | hwm 12".
std::string formatIngestQueueStats(const IngestQueueStats& stats);

/// Activity counters for the persistent pump runtime
/// (service/pump_runtime.hpp): how busy the workers were and how often the
/// adaptive-idle ladder reached the parked state.
struct PumpStats {
  /// Pump workers owned by the runtime.
  std::uint64_t workers = 0;
  /// Sweeps over a worker's owned shards that drained at least one chunk.
  std::uint64_t busy_passes = 0;
  /// Sweeps that found every owned shard empty.
  std::uint64_t idle_passes = 0;
  /// Times a worker exhausted the spin/yield ladder and blocked on its
  /// condvar.
  std::uint64_t parks = 0;
  /// Producer-side notifications that found the target worker parked.
  std::uint64_t wakeups = 0;

  PumpStats& operator+=(const PumpStats& o);
};

/// One-line summary, e.g. "workers 4 | passes 1200 busy / 300 idle |
/// parks 12 | wakeups 12".
std::string formatPumpStats(const PumpStats& stats);

class ConfusionMatrix {
 public:
  /// `n` classes; predictions of −1 count as misses (detected nothing).
  explicit ConfusionMatrix(int n);

  void add(int truth, int predicted);

  int classes() const { return n_; }
  int total() const { return total_; }
  int correct() const { return correct_; }
  int misses() const { return misses_; }
  double accuracy() const;
  /// Accuracy restricted to one true class.
  double classAccuracy(int truth) const;
  int count(int truth, int predicted) const;

 private:
  int n_;
  std::vector<int> cells_;  // n×n row-major, truth-major
  std::vector<int> class_total_;
  std::vector<int> class_correct_;
  int total_ = 0;
  int correct_ = 0;
  int misses_ = 0;
};

/// Detection bookkeeping for FPR/FNR: the paper defines FPR as the
/// percentage of falsely detected motions and FNR as the percentage of
/// undetected motions.
struct DetectionCounts {
  int truths = 0;            ///< ground-truth motions presented
  int detections = 0;        ///< intervals the system reported
  int matched = 0;           ///< detections overlapping a truth
  int false_positives = 0;   ///< detections in quiet periods
  int missed = 0;            ///< truths with no matching detection
  int underfilled = 0;       ///< matched detections covering < coverage gate

  double fpr() const;
  double fnr() const;
  /// Insertion rate (Fig. 22): spurious detections per presented stroke.
  double insertionRate() const;
  /// Underfill rate (Fig. 22): incomplete segmentations per matched stroke.
  double underfillRate() const;

  DetectionCounts& operator+=(const DetectionCounts& o);
};

struct MatchOptions {
  /// A detection matches a truth if their overlap covers at least this
  /// fraction of the *shorter* of the two intervals.
  double min_overlap_frac = 0.3;
  /// A matched detection is "underfilled" if it covers less than this
  /// fraction of the truth interval.
  double coverage_gate = 0.7;
};

/// Greedy in-order matching of detected intervals against truth intervals.
/// Returns per-truth matched detection index (−1 when missed) via
/// `assignment` (optional) and the aggregate counts.
DetectionCounts matchIntervals(const std::vector<Interval>& truth,
                               const std::vector<Interval>& detected,
                               const MatchOptions& options = {},
                               std::vector<int>* assignment = nullptr);

}  // namespace rfipad::core
