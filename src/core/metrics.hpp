// Evaluation metrics: confusion matrices, accuracy / FPR / FNR (paper §V-A),
// and the segmentation-quality rates of Fig. 22 (insertion, underfill).
#pragma once

#include <string>
#include <vector>

#include "core/segmenter.hpp"

namespace rfipad::core {

class ConfusionMatrix {
 public:
  /// `n` classes; predictions of −1 count as misses (detected nothing).
  explicit ConfusionMatrix(int n);

  void add(int truth, int predicted);

  int classes() const { return n_; }
  int total() const { return total_; }
  int correct() const { return correct_; }
  int misses() const { return misses_; }
  double accuracy() const;
  /// Accuracy restricted to one true class.
  double classAccuracy(int truth) const;
  int count(int truth, int predicted) const;

 private:
  int n_;
  std::vector<int> cells_;  // n×n row-major, truth-major
  std::vector<int> class_total_;
  std::vector<int> class_correct_;
  int total_ = 0;
  int correct_ = 0;
  int misses_ = 0;
};

/// Detection bookkeeping for FPR/FNR: the paper defines FPR as the
/// percentage of falsely detected motions and FNR as the percentage of
/// undetected motions.
struct DetectionCounts {
  int truths = 0;            ///< ground-truth motions presented
  int detections = 0;        ///< intervals the system reported
  int matched = 0;           ///< detections overlapping a truth
  int false_positives = 0;   ///< detections in quiet periods
  int missed = 0;            ///< truths with no matching detection
  int underfilled = 0;       ///< matched detections covering < coverage gate

  double fpr() const;
  double fnr() const;
  /// Insertion rate (Fig. 22): spurious detections per presented stroke.
  double insertionRate() const;
  /// Underfill rate (Fig. 22): incomplete segmentations per matched stroke.
  double underfillRate() const;

  DetectionCounts& operator+=(const DetectionCounts& o);
};

struct MatchOptions {
  /// A detection matches a truth if their overlap covers at least this
  /// fraction of the *shorter* of the two intervals.
  double min_overlap_frac = 0.3;
  /// A matched detection is "underfilled" if it covers less than this
  /// fraction of the truth interval.
  double coverage_gate = 0.7;
};

/// Greedy in-order matching of detected intervals against truth intervals.
/// Returns per-truth matched detection index (−1 when missed) via
/// `assignment` (optional) and the aggregate counts.
DetectionCounts matchIntervals(const std::vector<Interval>& truth,
                               const std::vector<Interval>& detected,
                               const MatchOptions& options = {},
                               std::vector<int>* assignment = nullptr);

}  // namespace rfipad::core
