// Tree-structure letter grammar (paper §III-C2, Fig. 10).
//
// A letter is a sequence of 1–4 strokes from {−, |, /, \, ⊂, ⊃}.  Three
// pairs share a stroke sequence — D/P ("|⊃"), O/S ("⊂⊃"), V/X ("\/") — and
// are told apart by stroke *position* metadata: "when writing D, the last
// position of ⊃ is usually overlapped with the bottom of stroke |", etc.
// RFIPad gets that position information from the tag IDs a stroke activated.
#pragma once

#include <string>
#include <vector>

#include "common/strokes.hpp"
#include "common/vec.hpp"

namespace rfipad::core {

/// The recogniser's view of one stroke of a letter (grid coordinates:
/// x = column, y = row).
struct ObservedStroke {
  StrokeKind kind = StrokeKind::kClick;
  StrokeDir dir = StrokeDir::kForward;
  Vec2 start_cell;
  Vec2 end_cell;
  Vec2 centroid;
};

class LetterGrammar {
 public:
  /// The canonical grammar (Fig. 10 reconstruction).
  static const LetterGrammar& instance();

  /// Stroke-kind sequence of `letter` ('A'..'Z').
  const std::vector<StrokeKind>& sequenceFor(char letter) const;

  /// Letters whose sequence equals `seq` (0–2 results; ambiguous pairs give
  /// two).
  std::vector<char> candidates(const std::vector<StrokeKind>& seq) const;

  /// Full recognition: sequence lookup + positional disambiguation.
  /// Returns '\0' when no letter matches.
  char recognize(const std::vector<ObservedStroke>& strokes) const;

  /// Robust recognition: weighted edit-distance decoding over all 26
  /// letters, tolerating stroke-kind confusions (scaled by classifier
  /// confidence), spurious strokes (splits, transition residue) and missed
  /// strokes.  Falls back to positional disambiguation for the ambiguous
  /// pairs when the alignment is exact.  Returns '\0' when even the best
  /// letter costs more than `max_cost`.
  char recognizeRobust(const std::vector<ObservedStroke>& strokes,
                       const std::vector<double>& confidences,
                       double max_cost = 1.8) const;

  /// Alignment cost of an observed stroke sequence against a letter
  /// (exposed for tests).
  double alignmentCost(const std::vector<ObservedStroke>& strokes,
                       const std::vector<double>& confidences,
                       char letter) const;

  /// One ranked letter candidate from topKLetters().
  struct LetterHypothesis {
    char letter = '\0';
    /// Alignment cost (lower is better; 0 = exact sequence match).
    double cost = 0.0;
  };

  /// Top-K letter hypotheses for a stroke sequence, best first — the
  /// letter-level half of the missing-data beam decoder (DESIGN.md §9).
  /// Where recognizeRobust commits to one letter, this keeps every letter
  /// within `max_cost` so the word decoder (WordRecognizer::decode) can
  /// resolve corrupted positions from dictionary context.  An exact
  /// (positionally disambiguated) match is always ranked first.  Ties are
  /// broken alphabetically, so the ranking is deterministic.
  std::vector<LetterHypothesis> topKLetters(
      const std::vector<ObservedStroke>& strokes,
      const std::vector<double>& confidences, std::size_t k,
      double max_cost = 2.6) const;

  /// All letters (A..Z).
  static const std::vector<char>& alphabet();

 private:
  LetterGrammar();

  char disambiguate(const std::vector<char>& candidates,
                    const std::vector<ObservedStroke>& strokes) const;

  std::vector<std::vector<StrokeKind>> sequences_;  // indexed by letter−'A'
};

}  // namespace rfipad::core
