// Accumulative phase difference per tag (Eqs. 5, 8, 10) — the activation
// value I'_i that becomes one pixel of the motion graymap.
//
// Pipeline per tag: de-periodicise (unwrap) the phase series, subtract the
// static mean (Eq. 8 — removes θ_T, θ_R, θ_tag), accumulate the total
// variation Σ|θ'_{k} − θ'_{j}| over the window, normalise by sample count
// (so unevenly-sampled tags compare fairly), and divide by the Eq. 9 weight
// w_i (location-diversity suppression).
#pragma once

#include <cstddef>
#include <vector>

#include "core/static_profile.hpp"
#include "imgproc/graymap.hpp"
#include "reader/sample_stream.hpp"

namespace rfipad::core {

struct ActivationOptions {
  /// Apply phase unwrapping before differencing (paper §III-A3).  Without
  /// it, 0/2π seam crossings masquerade as huge activations.
  bool unwrap = true;
  /// Apply location-diversity suppression (Eqs. 9–10).  Disable to
  /// reproduce the "without diversity suppression" baseline of
  /// Figs. 7(a)/16.  Our realisation (DESIGN.md §5) divides by a
  /// regularised Eq. 9 weight, so noisy tags are de-emphasised without
  /// unboundedly amplifying unusually quiet ones.
  bool diversity_suppression = true;
  /// Optional extra step (ablation): subtract each tag's expected *noise*
  /// total variation — white phase noise of standard deviation b_i
  /// contributes E|Δθ| = (2/√π)·b_i per sample — before weighting.
  /// Off by default: the ablation bench shows it costs accuracy in quiet
  /// environments by eating weak real activations.
  double noise_floor_kappa = 0.0;
  /// Regularisation of the weight divide, as a fraction of the median bias
  /// added to every tag's bias.
  double weight_regularization = 1.0;
  /// Normalise the accumulated variation by the number of phase samples so
  /// read-rate differences between tags cancel.
  bool per_sample = true;
  /// Ignore tags with fewer reads than this in the window (activation 0).
  std::size_t min_samples = 3;
  /// Compress the dynamic range of the final activation (I' ← √I').  The
  /// hand dwells longer over stroke endpoints (landing/lift-off), which
  /// otherwise makes those two pixels so bright that Otsu's threshold
  /// splits endpoints-vs-path instead of path-vs-background.
  bool sqrt_compress = true;
  /// Fraction of the window duration cosine-tapered at each end.  Detected
  /// stroke windows include the hand's descent/lift-off skirts; tapering
  /// weights the central (writing) span highest without a hard cut.
  double edge_taper = 0.25;
};

/// Calibrated, unwrapped phase series θ'_ij for one tag (Eq. 8).
std::vector<double> calibratedPhases(const std::vector<double>& phases,
                                     double staticMeanPhase, bool unwrap);

/// Flat-series variant: writes the calibrated series for one tag slice into
/// caller-owned storage (`out`, at least n doubles; in-place `out == phases`
/// is not supported).  Lets the segmenter and activation map reuse one flat
/// scratch buffer instead of allocating a vector per tag per window.
void calibratedPhasesInto(const double* phases, std::size_t n,
                          double staticMeanPhase, bool unwrap, double* out);

/// Activation I'_i for every tag over the given stream window.
std::vector<double> activationMap(const reader::SampleStream& window,
                                  const StaticProfile& profile,
                                  const ActivationOptions& options = {});

/// Activation rendered as a graymap over the tag grid (row-major tag
/// indexing, as produced by tag::TagArray).
imgproc::GrayMap activationImage(const reader::SampleStream& window,
                                 const StaticProfile& profile, int rows,
                                 int cols, const ActivationOptions& options = {});

}  // namespace rfipad::core
