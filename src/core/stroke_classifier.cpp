#include "core/stroke_classifier.hpp"

#include <algorithm>
#include <cmath>

#include "common/angles.hpp"

namespace rfipad::core {

namespace {

/// Order cells along an axis vector (x = col, y = row); returns cells
/// sorted by ascending projection.
std::vector<imgproc::Cell> orderAlongAxis(std::vector<imgproc::Cell> cells,
                                          Vec2 axis) {
  std::stable_sort(cells.begin(), cells.end(),
                   [axis](const imgproc::Cell& a, const imgproc::Cell& b) {
                     const double pa = axis.x * a.col + axis.y * a.row;
                     const double pb = axis.x * b.col + axis.y * b.row;
                     return pa < pb;
                   });
  return cells;
}

StrokeDir lineDirection(StrokeKind kind, Vec2 travel) {
  switch (kind) {
    case StrokeKind::kHLine:
      return travel.x > 0 ? StrokeDir::kForward : StrokeDir::kReverse;
    case StrokeKind::kVLine:
      return travel.y < 0 ? StrokeDir::kForward : StrokeDir::kReverse;
    case StrokeKind::kSlash:
    case StrokeKind::kBackslash:
      return travel.x > 0 ? StrokeDir::kForward : StrokeDir::kReverse;
    default:
      return StrokeDir::kForward;
  }
}

}  // namespace

StrokeObservation classifyStrokeBinary(const imgproc::BinaryMap& binary,
                                       const DirectionResult& dir,
                                       const ClassifierOptions& options) {
  StrokeObservation obs;
  const auto comps = binary.components();
  if (comps.empty()) return obs;
  obs.cells = comps.front();
  obs.moments = imgproc::computeMoments(obs.cells);
  obs.centroid = {obs.moments.centroid_col, obs.moments.centroid_row};

  // Axis vector in (x=col, y=row) coordinates.
  Vec2 axis{std::cos(obs.moments.axis_angle), std::sin(obs.moments.axis_angle)};
  // Align the axis with the estimated travel direction so that "ordered"
  // means visit order.
  double dir_conf = 0.3;  // residual confidence when no RSS ordering exists
  if (dir.valid) {
    if (dir.direction.dot(axis) < 0.0) axis = axis * -1.0;
    dir_conf = 0.5 + 0.5 * dir.confidence;
  }
  const auto ordered = orderAlongAxis(obs.cells, axis);
  obs.start_cell = {static_cast<double>(ordered.front().col),
                    static_cast<double>(ordered.front().row)};
  obs.end_cell = {static_cast<double>(ordered.back().col),
                  static_cast<double>(ordered.back().row)};
  const Vec2 travel = dir.valid
                          ? dir.direction
                          : Vec2{obs.end_cell.x - obs.start_cell.x,
                                 obs.end_cell.y - obs.start_cell.y};

  const int count = static_cast<int>(obs.cells.size());
  const bool compact = obs.moments.bboxWidth() <= 2 && obs.moments.bboxHeight() <= 2;

  // Click: a compact low-elongation blob.
  if (count <= options.max_click_cells &&
      obs.moments.elongation <= options.max_click_elongation && compact) {
    obs.valid = true;
    obs.stroke = {StrokeKind::kClick, StrokeDir::kForward};
    obs.confidence = 0.9;
    return obs;
  }

  // Arc: elongated with a consistent one-sided bow.
  const double bow = imgproc::arcBowSigned(ordered);
  if (count >= 4 && std::abs(bow) >= options.arc_bow_threshold) {
    const Vec2 chord{obs.end_cell.x - obs.start_cell.x,
                     obs.end_cell.y - obs.start_cell.y};
    const double clen = chord.norm();
    if (clen > 1e-9) {
      const Vec2 left_normal{-chord.y / clen, chord.x / clen};
      const Vec2 bow_vec = left_normal * bow;
      const bool vertical = std::abs(chord.y) >= std::abs(chord.x);
      StrokeKind kind;
      if (vertical) {
        kind = bow_vec.x < 0 ? StrokeKind::kLeftArc : StrokeKind::kRightArc;
      } else {
        kind = bow_vec.y < 0 ? StrokeKind::kLeftArc : StrokeKind::kRightArc;
      }
      const StrokeDir d =
          (vertical ? chord.y < 0 : chord.x > 0) ? StrokeDir::kForward
                                                 : StrokeDir::kReverse;
      obs.valid = true;
      obs.stroke = {kind, d};
      const double margin =
          std::min(1.0, std::abs(bow) / (2.0 * options.arc_bow_threshold));
      obs.confidence = margin * dir_conf;
      return obs;
    }
  }

  // Line: bin the principal-axis angle.
  const double deg = obs.moments.axis_angle * 180.0 / kPi;
  StrokeKind kind;
  if (std::abs(deg) <= options.hline_max_deg) {
    kind = StrokeKind::kHLine;
  } else if (std::abs(deg) >= options.vline_min_deg) {
    kind = StrokeKind::kVLine;
  } else if (deg > 0.0) {
    kind = StrokeKind::kSlash;  // positive slope in (col, row) coords
  } else {
    kind = StrokeKind::kBackslash;
  }
  obs.valid = true;
  obs.stroke = {kind, lineDirection(kind, travel)};
  const double elong_margin =
      std::min(1.0, obs.moments.elongation / 3.0);
  obs.confidence = elong_margin * dir_conf;
  return obs;
}

StrokeObservation classifyStroke(const imgproc::GrayMap& gray,
                                 const DirectionResult& dir,
                                 const ClassifierOptions& options) {
  return classifyStrokeBinary(imgproc::otsuBinarize(gray), dir, options);
}

}  // namespace rfipad::core
