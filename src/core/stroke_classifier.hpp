// Image-assisted motion recognition (paper §III-A3): classify the binarised
// activation image — possibly fused with the RSS-trough visit order — into
// one of the 7 basic motions plus a travel direction.
//
// Geometry on the 5×5 grid: clicks are compact blobs; lines are elongated
// with the principal-axis angle selecting −, |, /, \; arcs are elongated
// sets that bow consistently to one side of their chord, with the bow side
// selecting ⊂ vs ⊃.
#pragma once

#include <vector>

#include "common/strokes.hpp"
#include "common/vec.hpp"
#include "core/direction.hpp"
#include "imgproc/binary_map.hpp"
#include "imgproc/graymap.hpp"
#include "imgproc/moments.hpp"

namespace rfipad::core {

struct ClassifierOptions {
  /// Elongation (sqrt eigenvalue ratio) below which a small blob is a click.
  double max_click_elongation = 1.8;
  /// Foreground cells at or below which a compact blob is a click.
  int max_click_cells = 3;
  /// Mean |signed bow| (in cells) above which an elongated set is an arc.
  double arc_bow_threshold = 0.32;
  /// Line angle bins, degrees: |a| ≤ h → "−"; |a| ≥ v → "|"; otherwise a
  /// diagonal by slope sign.
  double hline_max_deg = 30.0;
  double vline_min_deg = 60.0;
};

/// A recognised stroke with its geometric evidence.
struct StrokeObservation {
  bool valid = false;
  DirectedStroke stroke;
  /// Heuristic confidence in [0, 1] (shape margin × direction confidence).
  double confidence = 0.0;
  /// Foreground cells of the dominant component (grid coordinates).
  std::vector<imgproc::Cell> cells;
  imgproc::ShapeMoments moments;
  /// First/last cell in travel order, as (col, row) = (x, y) grid coords.
  Vec2 start_cell;
  Vec2 end_cell;
  /// Centroid in (col, row).
  Vec2 centroid;
};

/// Classify a stroke window.  `gray` is the activation image; `dir` is the
/// RSS-trough direction estimate for the same window (pass a default
/// DirectionResult when unavailable — kind is still recovered, direction
/// defaults to kForward with reduced confidence).
StrokeObservation classifyStroke(const imgproc::GrayMap& gray,
                                 const DirectionResult& dir,
                                 const ClassifierOptions& options = {});

/// Classify from an already-binarised map (ablation/testing entry point).
StrokeObservation classifyStrokeBinary(const imgproc::BinaryMap& binary,
                                       const DirectionResult& dir,
                                       const ClassifierOptions& options = {});

}  // namespace rfipad::core
