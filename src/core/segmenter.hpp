// Stroke segmentation from continuous phase streams (paper §III-C1).
//
// The stream is cut into non-overlapping 100 ms frames; each frame's
// root-mean-square over all tags' calibrated phases (Eq. 11) feeds a
// sliding 5-frame window, and a window is "active" when the standard
// deviation of its frame RMS values exceeds a threshold (Eq. 12).  Active
// windows merge into stroke intervals; quiet spans are the adjustment
// intervals between strokes.
#pragma once

#include <vector>

#include "core/static_profile.hpp"
#include "reader/sample_stream.hpp"

namespace rfipad::core {

struct SegmenterOptions {
  /// Frame length, s (paper: 100 ms).
  double frame_s = 0.1;
  /// Frames per decision window (paper: 5 → 0.5 s).
  int window_frames = 5;
  /// std(RMS) activity threshold (Eq. 12).  The paper determines it
  /// empirically; 0.5 rad separates quiet windows (≈0.1–0.35 with no hand
  /// at writing height) from stroke windows (≈0.6–2).  ≤ 0 selects the
  /// adaptive mode: `adaptive_factor` × the 20th percentile of window
  /// stds, floored at `adaptive_floor` — only sensible on long captures
  /// that are mostly quiet.
  double threshold = 0.45;
  double adaptive_factor = 4.0;
  double adaptive_floor = 0.18;
  /// Discard detected intervals shorter than this, s.
  double min_stroke_s = 0.25;
  /// Merge intervals separated by quiet gaps shorter than this, s.
  double merge_gap_s = 0.15;
  /// Hysteresis: also merge across a gap whose window std never falls
  /// below this fraction of the on-threshold — a mid-stroke lull, not an
  /// adjustment interval.
  double off_fraction = 0.65;
  /// After merging, optionally shrink each interval to its high-activity
  /// core: the outermost windows whose std reaches `core_fraction` × the
  /// interval's peak std.  Off by default (see peak_threshold).
  double core_fraction = 0.0;
  /// Spatial-peakiness refinement: shrink each interval to the span of
  /// frames whose *maximum single-tag* RMS reaches this value (radians).
  /// Writing swings the nearest tag's phase by ≥0.5 rad, while far-hand
  /// transitions (approach/retract with the arm raised) only wiggle many
  /// tags slightly — this cleanly separates the writing core from the
  /// skirts.  0 disables.
  double peak_threshold = 0.30;
};

struct Interval {
  double t0 = 0.0;
  double t1 = 0.0;
  double duration() const { return t1 - t0; }
};

/// Intermediate series, used by the Fig. 9 bench and for threshold tuning.
struct SegmentationTrace {
  std::vector<double> frame_times;  ///< frame centres
  std::vector<double> frame_rms;    ///< Eq. 11 per frame (sum over tags)
  std::vector<double> window_times; ///< window centres
  std::vector<double> window_std;   ///< std of frame RMS per window
  std::vector<double> window_peak;  ///< max single-tag motion RMS per window
  double threshold_used = 0.0;
};

/// Reusable working set for traceInto()/segmentWith(): the SoA series, the
/// calibrated-phase plane, the per-tag frame boundaries and the trace
/// itself.  Every field is fully rewritten per call, so one scratch can be
/// shared across repeated re-segmentation rounds — and across co-resident
/// serving sessions on one shard — with zero steady-state allocation and
/// bit-identical results (no state leaks between calls).
struct SegmentScratch {
  reader::FlatSeries fs;
  std::vector<double> theta;
  std::vector<std::size_t> starts;
  SegmentationTrace trace;
  std::vector<Interval> intervals;
  std::vector<Interval> merged;
};

class Segmenter {
 public:
  Segmenter(StaticProfile profile, SegmenterOptions options = {});

  /// Detected stroke intervals over the stream, in time order.
  std::vector<Interval> segment(const reader::SampleStream& stream) const;
  /// Scratch-reusing variant: identical output to segment(), but all
  /// working buffers (and the returned interval storage) live in `scratch`.
  /// The returned span is valid until the scratch's next use.
  const std::vector<Interval>& segmentWith(const reader::SampleStream& stream,
                                           SegmentScratch& scratch) const;

  /// Full trace (frame RMS + window std) for inspection.
  SegmentationTrace trace(const reader::SampleStream& stream) const;
  /// Scratch-reusing variant of trace(); fills and returns scratch.trace.
  const SegmentationTrace& traceInto(const reader::SampleStream& stream,
                                     SegmentScratch& scratch) const;

  const SegmenterOptions& options() const { return options_; }
  const StaticProfile& profile() const { return profile_; }

 private:
  double resolveThreshold(const std::vector<double>& window_stds) const;

  StaticProfile profile_;
  SegmenterOptions options_;
};

}  // namespace rfipad::core
