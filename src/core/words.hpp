// Word-level recognition — the paper's future work ("we will leave the
// recognition of a succession of letters as our future work", §III-C2).
//
// Letters recognised per §III-C arrive with occasional confusions (the
// ambiguous pairs D/P, O/S, V/X above all), so a small dictionary plus a
// confusion-aware edit distance recovers whole words reliably even when
// per-letter accuracy is imperfect.
#pragma once

#include <string>
#include <vector>

#include "core/grammar.hpp"

namespace rfipad::core {

class WordRecognizer {
 public:
  explicit WordRecognizer(std::vector<std::string> dictionary);

  /// Best dictionary match for the recognised letter sequence ('?' or '\0'
  /// marks an unrecognised letter).  Returns the empty string when nothing
  /// scores below `max_cost_per_letter` × length.
  std::string bestMatch(const std::string& letters,
                        double max_cost_per_letter = 0.8) const;

  /// Alignment cost between a recognised sequence and a candidate word
  /// (exposed for tests/benches).
  static double wordCost(const std::string& letters, const std::string& word);

  /// Beam decode over per-position letter hypotheses (the word-level half
  /// of the missing-data decoder, DESIGN.md §9).  Each position carries the
  /// top-K letters from LetterGrammar::topKLetters, best first with
  /// relative alignment costs; a position may be empty (nothing decoded —
  /// treated as a wildcard insertion site).  Aligns the hypothesis lattice
  /// against every dictionary word, mixing the per-hypothesis rank cost
  /// into the confusion cost, and returns the best word — or empty when
  /// nothing scores under `max_cost_per_letter` × length.  Degenerates to
  /// bestMatch() when every position holds exactly one hypothesis.
  std::string decode(
      const std::vector<std::vector<LetterGrammar::LetterHypothesis>>&
          positions,
      double max_cost_per_letter = 0.8) const;

  /// Lattice/word alignment cost used by decode() (exposed for tests).
  static double latticeCost(
      const std::vector<std::vector<LetterGrammar::LetterHypothesis>>&
          positions,
      const std::string& word);

  const std::vector<std::string>& dictionary() const { return dictionary_; }

 private:
  std::vector<std::string> dictionary_;
};

/// Cost of the classifier mistaking `truth` for `seen` — ambiguous pairs
/// and same-stroke-count letters are cheap, anything else expensive.
double letterConfusionCost(char seen, char truth);

}  // namespace rfipad::core
