// Word-level recognition — the paper's future work ("we will leave the
// recognition of a succession of letters as our future work", §III-C2).
//
// Letters recognised per §III-C arrive with occasional confusions (the
// ambiguous pairs D/P, O/S, V/X above all), so a small dictionary plus a
// confusion-aware edit distance recovers whole words reliably even when
// per-letter accuracy is imperfect.
#pragma once

#include <string>
#include <vector>

namespace rfipad::core {

class WordRecognizer {
 public:
  explicit WordRecognizer(std::vector<std::string> dictionary);

  /// Best dictionary match for the recognised letter sequence ('?' or '\0'
  /// marks an unrecognised letter).  Returns the empty string when nothing
  /// scores below `max_cost_per_letter` × length.
  std::string bestMatch(const std::string& letters,
                        double max_cost_per_letter = 0.8) const;

  /// Alignment cost between a recognised sequence and a candidate word
  /// (exposed for tests/benches).
  static double wordCost(const std::string& letters, const std::string& word);

  const std::vector<std::string>& dictionary() const { return dictionary_; }

 private:
  std::vector<std::string> dictionary_;
};

/// Cost of the classifier mistaking `truth` for `seen` — ambiguous pairs
/// and same-stroke-count letters are cheap, anything else expensive.
double letterConfusionCost(char seen, char truth);

}  // namespace rfipad::core
