// Static calibration profile: per-tag central phase θ̃_i and deviation bias
// b_i, estimated from a capture with no hand present (paper §III-A2).
//
// θ̃_i absorbs θ_T + θ_R + θ_tag (Eq. 6), so subtracting it (Eq. 8) removes
// tag diversity; b_i feeds the weighting function (Eq. 9) that suppresses
// location diversity.
#pragma once

#include <cstdint>
#include <vector>

#include "reader/sample_stream.hpp"

namespace rfipad::core {

struct TagProfile {
  /// Circular mean of the static phase, radians in [0, 2π).
  double mean_phase = 0.0;
  /// Deviation bias b_i: standard deviation of the static phase, radians.
  double deviation_bias = 0.0;
  /// Static mean RSSI, dBm.
  double mean_rssi = 0.0;
  /// Number of calibration reads observed.
  std::size_t samples = 0;
  /// Tag never responds (dead IC / torn antenna / fully shadowed).  Dead
  /// tags get Eq. 9 weight 0 and the remaining weights renormalise over the
  /// live array, so a dying tag degrades the pad instead of poisoning it.
  bool dead = false;
  /// Tag answers but far below the array's typical RSSI (detuned antenna,
  /// partial shadowing): its reads are real but sparse and noisy.  Purely
  /// advisory — Eq. 9/10 weighting ignores it; the missing-data recovery
  /// pipeline discounts detuned cells in its confidence plane
  /// (core/recovery.hpp).
  bool detuned = false;
};

class StaticProfile {
 public:
  StaticProfile() = default;

  /// Estimate the profile from a static capture.  Tags never observed get a
  /// neutral profile (bias = the median of observed biases) and — when
  /// `markUnseenDead` and at least one tag *was* observed — are flagged
  /// dead: a tag silent through a whole calibration capture will not start
  /// answering during recognition.
  static StaticProfile calibrate(const reader::SampleStream& stream,
                                 std::uint32_t numTags,
                                 bool markUnseenDead = true);

  std::uint32_t numTags() const { return static_cast<std::uint32_t>(tags_.size()); }
  const TagProfile& tag(std::uint32_t i) const { return tags_.at(i); }
  const std::vector<TagProfile>& tags() const { return tags_; }

  /// Flag a tag as dead after calibration (e.g. from an external health
  /// monitor); its weight drops to 0 and the rest renormalise.
  void markDead(std::uint32_t i);
  bool isDead(std::uint32_t i) const { return tags_.at(i).dead; }
  std::uint32_t deadCount() const;
  std::uint32_t aliveCount() const { return numTags() - deadCount(); }

  /// Flag a live tag as detuned (weak responder).  Advisory: only the
  /// recovery confidence plane consumes it — Eq. 9/10 weights are
  /// unaffected, so flagging never changes baseline recognition.
  void markDetuned(std::uint32_t i) { tags_.at(i).detuned = true; }
  bool isDetuned(std::uint32_t i) const { return tags_.at(i).detuned; }
  std::uint32_t detunedCount() const;

  /// Normalised weight w_i of Eq. 9: E(b_i) / Σ E(b_i), taken over the
  /// *live* tags.  High-bias tags get a large w_i, and Eq. 10 divides by it
  /// to de-emphasise them.  Dead tags have weight 0.
  double weight(std::uint32_t i) const;

  /// Median deviation bias across live tags — used to regularise the Eq. 10
  /// weighting so that an unusually quiet tag cannot be amplified without
  /// bound (see DESIGN.md §5).
  double medianBias() const;

  /// Construct directly (tests, synthetic profiles).
  explicit StaticProfile(std::vector<TagProfile> tags);

 private:
  std::vector<TagProfile> tags_;
  /// Σ deviation_bias over live tags (the Eq. 9 normaliser).
  double bias_sum_ = 0.0;
};

}  // namespace rfipad::core
