#include "core/recovery.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/stats.hpp"

namespace rfipad::core {

RecoveryConfig RecoveryConfig::full() {
  RecoveryConfig cfg;
  cfg.temporal.enabled = true;
  cfg.confidence.enabled = true;
  cfg.spatial.enabled = true;
  cfg.decode.enabled = true;
  return cfg;
}

imgproc::GrayMap observationConfidence(const reader::SampleStream& window,
                                       const StaticProfile& profile, int rows,
                                       int cols,
                                       const ConfidenceOptions& options) {
  if (rows <= 0 || cols <= 0)
    throw std::invalid_argument("observationConfidence: non-positive grid");
  const std::size_t n = static_cast<std::size_t>(rows) * cols;

  // Weighted read count per cell: real reads count 1, imputed reads less —
  // a cell propped up purely by interpolation must not look fully observed.
  std::vector<double> count(n, 0.0);
  for (const auto& r : window.reports()) {
    if (r.tag_index >= n) continue;
    count[r.tag_index] += r.imputed ? options.imputed_read_weight : 1.0;
  }

  // Full observation = the median live cell's count, scaled down so that a
  // hand shadowing a cell (which legitimately thins its reads) still rates
  // as observed; only cells far below the array norm lose confidence.
  std::vector<double> live_counts;
  live_counts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool dead = i < profile.numTags() && profile.tag(static_cast<std::uint32_t>(i)).dead;
    if (!dead && count[i] > 0.0) live_counts.push_back(count[i]);
  }
  const double med = live_counts.empty() ? 0.0 : median(std::move(live_counts));
  const double full = std::max(options.full_count_frac * med, 1.0);

  imgproc::GrayMap conf(rows, cols);
  for (std::size_t i = 0; i < n; ++i) {
    const auto tag = static_cast<std::uint32_t>(i);
    double v;
    if (tag < profile.numTags() && profile.tag(tag).dead) {
      v = 0.0;  // exactly zero: dead cells carry no observation at all
    } else {
      v = std::min(1.0, count[i] / full);
      if (tag < profile.numTags() && profile.tag(tag).detuned)
        v *= options.detuned_confidence;
      v = std::max(v, options.min_live_confidence);
    }
    conf.at(static_cast<int>(i) / cols, static_cast<int>(i) % cols) = v;
  }
  return conf;
}

void inpaintLowConfidence(imgproc::GrayMap& map,
                          const imgproc::GrayMap& confidence,
                          const SpatialImputeOptions& options) {
  if (confidence.rows() != map.rows() || confidence.cols() != map.cols())
    throw std::invalid_argument("inpaintLowConfidence: grid size mismatch");
  RFIPAD_ASSERT(options.neighbor_sigma > 0.0 && options.radius >= 1,
                "inpaintLowConfidence: need positive sigma and radius");
  const int rows = map.rows();
  const int cols = map.cols();
  const double inv_two_sigma2 =
      1.0 / (2.0 * options.neighbor_sigma * options.neighbor_sigma);

  // Reconstruct from a snapshot so the result is independent of the order
  // cells are visited in (an already-inpainted cell never feeds another).
  const std::vector<double> snapshot = map.values();
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (confidence.at(r, c) >= options.confidence_threshold) continue;
      double wsum = 0.0;
      double vsum = 0.0;
      for (int dr = -options.radius; dr <= options.radius; ++dr) {
        for (int dc = -options.radius; dc <= options.radius; ++dc) {
          if (dr == 0 && dc == 0) continue;
          const int nr = r + dr;
          const int nc = c + dc;
          if (nr < 0 || nr >= rows || nc < 0 || nc >= cols) continue;
          const double nconf = confidence.at(nr, nc);
          if (nconf < options.confidence_threshold) continue;
          const double d2 = static_cast<double>(dr * dr + dc * dc);
          const double w = nconf * std::exp(-d2 * inv_two_sigma2);
          wsum += w;
          vsum += w * snapshot[static_cast<std::size_t>(nr) * cols + nc];
        }
      }
      // No confident neighbour in range: leave the cell alone — inventing
      // a value from other low-confidence cells would launder noise.
      if (wsum > 0.0) map.at(r, c) = vsum / wsum;
    }
  }
}

}  // namespace rfipad::core
