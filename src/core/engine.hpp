// The end-to-end RFIPad recognition engine: segmentation → activation
// imaging → Otsu → stroke classification → direction estimation → letter
// composition.  This is the public entry point a deployment would use.
#pragma once

#include <vector>

#include "core/activation.hpp"
#include "core/direction.hpp"
#include "core/grammar.hpp"
#include "core/metrics.hpp"
#include "core/recovery.hpp"
#include "core/segmenter.hpp"
#include "core/static_profile.hpp"
#include "core/stroke_classifier.hpp"
#include "core/templates.hpp"
#include "imgproc/graymap.hpp"
#include "reader/sample_stream.hpp"

namespace rfipad::core {

struct EngineOptions {
  int rows = 5;
  int cols = 5;
  /// Pad-plane (x, y) position of each tag, row-major tag indexing; used by
  /// the RSS direction estimator.  Leave empty to synthesise a unit grid.
  std::vector<Vec2> tag_xy;
  SegmenterOptions segmenter{};
  ActivationOptions activation{};
  ClassifierOptions classifier{};
  DirectionOptions direction{};
  /// Trim applied to each end of a detected interval before classification
  /// (capped at a quarter of the interval).  Detected windows include the
  /// hand's descent/lift-off transitions, which would otherwise dominate
  /// the endpoint pixels of the activation image.
  double window_trim_s = 0.0;
  /// Use the matched-filter template classifier (core/templates.hpp) as the
  /// primary shape recogniser; disable to fall back to the moments-based
  /// classifier (ablation).
  bool use_matched_filter = true;
  TemplateMatchOptions template_match{};
  /// Weight of the RSS-trough image in fused template matching (0 = phase
  /// activation only).
  double trough_weight = 0.45;
  /// When the profile holds dead tags, fill their grid cells with the mean
  /// of their live 8-neighbours before Otsu/template matching.  A dead
  /// cell's hard zero would otherwise punch a hole through any stroke that
  /// crosses it and skew the Otsu threshold; interpolation lets the
  /// surviving tags carry the shape.  No effect on a fully-live array.
  bool inpaint_dead = true;
  /// Missing-data recovery pipeline (DESIGN.md §9).  Default-constructed
  /// (all stages off), every code path below is byte-exact pre-recovery
  /// behaviour; RecoveryConfig::full() enables temporal + spatial
  /// imputation, confidence weighting and hypothesis decoding.
  RecoveryConfig recovery{};
};

/// One recognised stroke, with everything the pipeline derived about it.
struct StrokeEvent {
  Interval interval;
  StrokeObservation observation;
  DirectionResult direction;
  imgproc::GrayMap graymap;
  /// CPU time spent processing this stroke after its window closed — the
  /// response-time metric of Fig. 24.
  double processing_time_s = 0.0;
};

class RecognitionEngine {
 public:
  RecognitionEngine(StaticProfile profile, EngineOptions options = {});

  const StaticProfile& profile() const { return profile_; }
  const EngineOptions& options() const { return options_; }

  /// Segment the stream and classify every detected stroke window.
  std::vector<StrokeEvent> detectStrokes(const reader::SampleStream& stream) const;

  /// Classify one known stroke window (no segmentation) — the path used by
  /// the motion-detection experiments where each capture holds one motion.
  StrokeEvent classifyWindow(const reader::SampleStream& window) const;

  /// Full letter recognition over a stream containing one letter.
  /// Returns '\0' when no grammar entry matches.
  char recognizeLetter(const reader::SampleStream& stream) const;
  char recognizeLetter(const std::vector<StrokeEvent>& events) const;

  /// Ranked letter hypotheses for one letter's stroke events (best first) —
  /// the per-position input of WordRecognizer::decode.  Uses the recovery
  /// decode options when enabled (top_k / max_cost), sensible defaults
  /// otherwise; hypotheses[0].letter always equals recognizeLetter(events)
  /// when that is non-'\0'.
  std::vector<LetterGrammar::LetterHypothesis> letterHypotheses(
      const std::vector<StrokeEvent>& events) const;

  /// Convert an event into the grammar's observation record.
  static ObservedStroke toObserved(const StrokeEvent& event);

 private:
  std::vector<Vec2> effectiveTagXy() const;

  StaticProfile profile_;
  EngineOptions options_;
};

}  // namespace rfipad::core
