// RSS-based direction estimation (paper §III-B).
//
// Phase trends during a pass are inconsistent (monotone / axially /
// circularly symmetric, Fig. 8), but RSS always shows a distinct trough
// when the hand crosses a tag — near-field detuning plus blockage.  The
// order in which troughs appear across tags therefore gives the travel
// direction.  Two stages: (1) coarse — smooth each tag's RSS and find the
// global minimum, gated on trough depth; (2) fine — parabolic interpolation
// around the minimum for sub-sample timing, then a linear fit of trough
// time against position along the stroke's principal axis.
#pragma once

#include <cstdint>
#include <vector>

#include "common/vec.hpp"
#include "core/static_profile.hpp"
#include "reader/sample_stream.hpp"

namespace rfipad::core {

struct DirectionOptions {
  /// Moving-average window (samples, odd) for RSS smoothing.
  std::size_t smooth_window = 5;
  /// Minimum trough depth below the tag's in-window RSS baseline, dB.
  double min_trough_depth_db = 1.2;
  /// Minimum reads for a tag to participate.
  std::size_t min_samples = 4;
};

struct TroughEstimate {
  std::uint32_t tag_index = 0;
  /// Refined trough time, s.
  double time_s = 0.0;
  /// Depth below the in-window baseline, dB.
  double depth_db = 0.0;
};

struct DirectionResult {
  bool valid = false;
  /// Unit travel direction in the pad plane.
  Vec2 direction;
  /// Accepted troughs ordered by time (the tag visit sequence).
  std::vector<TroughEstimate> ordered;
  /// |Pearson correlation| between axis position and trough time.
  double confidence = 0.0;
};

/// Stage 1+2 trough estimation for one tag's RSS series.  Returns whether a
/// qualifying trough was found.
bool estimateTrough(const std::vector<double>& times,
                    const std::vector<double>& rssi,
                    const DirectionOptions& options, TroughEstimate* out);

/// Full direction estimate over a stroke window.  `tagXy[i]` is tag i's pad
/// position; `candidateTags` restricts the search (e.g. the foreground tags
/// of the binarised activation image) — pass empty to use all tags.
DirectionResult estimateDirection(const reader::SampleStream& window,
                                  const std::vector<Vec2>& tagXy,
                                  const std::vector<std::uint32_t>& candidateTags,
                                  const DirectionOptions& options = {});

}  // namespace rfipad::core
