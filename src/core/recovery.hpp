// Missing-data recovery pipeline (DESIGN.md §9).
//
// The fault layer (fault/fault_plan.hpp) models how real deployments lose
// data: dead tags, detuned tags, bursty miss-reads, reader outages.  This
// module holds everything that actively *compensates*:
//
//   1. temporal imputation  — reader::imputeGaps bridges short per-tag read
//      gaps before segmentation/activation (options embedded here);
//   2. observation confidence — per-cell weight in [0, 1] from sample
//      counts, imputed-read discounts and the profile's dead/detuned flags;
//   3. spatial imputation   — neighbour-weighted inpainting of
//      low-confidence gray-map cells (generalises the engine's dead-cell
//      patch to transient holes);
//   4. confidence-weighted decoding — the confidence plane weights Otsu
//      thresholding (imgproc::otsuBinarizeWeighted) and template matching
//      (matchTemplateFusedWeighted), and the letter/word decoders consume
//      top-K letter hypotheses (LetterGrammar::topKLetters,
//      WordRecognizer::decode) instead of a single hard letter.
//
// Determinism contract: every stage is a pure function of its inputs — no
// randomness, no wall clock — so batch results stay bit-identical at any
// --threads and across SIMD tiers (the weighted NCC reductions run through
// the vk kernels).  With every `enabled` flag false (the default), each
// consumer takes its pre-existing code path byte-exactly.
#pragma once

#include <cstddef>

#include "core/static_profile.hpp"
#include "imgproc/graymap.hpp"
#include "reader/sample_stream.hpp"

namespace rfipad::core {

/// Per-cell observation confidence (stage 2).
struct ConfidenceOptions {
  bool enabled = false;
  /// Multiplier applied to cells whose tag the profile flags detuned.
  double detuned_confidence = 0.55;
  /// A cell reaches full confidence once its weighted read count hits this
  /// fraction of the median live cell's count (the hand shadowing a cell
  /// legitimately halves its reads; that is signal, not missing data).
  double full_count_frac = 0.5;
  /// Weight of an imputed (synthetic) read relative to a real one.
  double imputed_read_weight = 0.5;
  /// Floor for live cells, so a silent-but-alive cell keeps a small voice
  /// in the weighted Otsu/NCC instead of being censored outright.
  double min_live_confidence = 0.05;
};

/// Neighbour-weighted inpainting of low-confidence cells (stage 3).
struct SpatialImputeOptions {
  bool enabled = false;
  /// Cells below this confidence are reconstructed from their neighbours.
  double confidence_threshold = 0.35;
  /// Gaussian falloff (in cells) of neighbour influence.
  double neighbor_sigma = 1.0;
  /// Chebyshev radius of the neighbourhood considered.
  int radius = 2;
};

/// Top-K letter hypothesis decoding (stage 4).
struct LetterDecodeOptions {
  bool enabled = false;
  /// Hypotheses kept per letter position.
  std::size_t top_k = 4;
  /// Alignment-cost cutoff for a hypothesis to be emitted at all (looser
  /// than recognizeRobust's single-letter cutoff: the word decoder can
  /// reject what the letter stage should merely rank).
  double max_cost = 2.6;
};

/// Master switch threaded through EngineOptions.  Default-constructed, every
/// stage is off and the engine's behaviour is byte-exact pre-recovery.
struct RecoveryConfig {
  reader::GapImputeOptions temporal{};
  ConfidenceOptions confidence{};
  SpatialImputeOptions spatial{};
  LetterDecodeOptions decode{};

  bool any() const {
    return temporal.enabled || confidence.enabled || spatial.enabled ||
           decode.enabled;
  }

  /// Every stage on, at the defaults tuned by bench_fault_sweep.
  static RecoveryConfig full();
};

/// Per-cell observation confidence in [0, 1] over the tag grid (row-major
/// tag indexing).  Dead cells get exactly 0; live cells get
/// min(1, weighted_count / full_count) · detuned discount, floored at
/// min_live_confidence.  Pure function of (window, profile, options).
imgproc::GrayMap observationConfidence(const reader::SampleStream& window,
                                       const StaticProfile& profile, int rows,
                                       int cols,
                                       const ConfidenceOptions& options);

/// Replace each cell whose confidence is below the threshold by the
/// confidence-and-distance-weighted mean of its confident neighbours
/// (weight = conf · exp(−d²/2σ²)).  Cells with no confident neighbour in
/// range are left unchanged.  The reconstruction reads a snapshot of the
/// input map, so the result is independent of cell visit order.
void inpaintLowConfidence(imgproc::GrayMap& map,
                          const imgproc::GrayMap& confidence,
                          const SpatialImputeOptions& options);

}  // namespace rfipad::core
