#include "core/activation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/angles.hpp"
#include "common/stats.hpp"

namespace rfipad::core {

void calibratedPhasesInto(const double* phases, std::size_t n,
                          double staticMeanPhase, bool unwrap, double* out) {
  // Subtract the static mean on the circle first, then unwrap, so the
  // calibrated series vibrates around zero (Eq. 8).
  for (std::size_t j = 0; j < n; ++j) out[j] = angleDiff(phases[j], staticMeanPhase);
  if (unwrap) {
    // angleDiff already wraps to (−π, π]; unwrapping restores continuity
    // when the true excursion exceeds π.
    unwrapInPlace(out, n);
  }
}

std::vector<double> calibratedPhases(const std::vector<double>& phases,
                                     double staticMeanPhase, bool unwrap) {
  std::vector<double> out(phases.size());
  calibratedPhasesInto(phases.data(), phases.size(), staticMeanPhase, unwrap,
                       out.data());
  return out;
}

std::vector<double> activationMap(const reader::SampleStream& window,
                                  const StaticProfile& profile,
                                  const ActivationOptions& options) {
  const std::uint32_t n = profile.numTags();
  if (n == 0) throw std::invalid_argument("activationMap: empty profile");
  std::vector<double> activation(n, 0.0);

  const double median_bias = profile.medianBias();
  const double t0 = window.startTime();
  const double t1 = window.endTime();
  const double span = std::max(t1 - t0, 1e-9);
  // Raised-cosine taper over the leading/trailing `edge_taper` fraction.
  const auto taper = [&](double t) {
    if (options.edge_taper <= 0.0) return 1.0;
    const double f = std::min(options.edge_taper, 0.5);
    const double u = std::clamp((t - t0) / span, 0.0, 1.0);
    const double edge = std::min(u, 1.0 - u);
    if (edge >= f) return 1.0;
    return 0.5 * (1.0 - std::cos(kPi * edge / f));
  };

  // Flat SoA pass: one scratch buffer for the calibrated series, reused
  // across tags, instead of a per-tag vector triple from allSeries().
  const reader::FlatSeries fs = window.flatSeries();
  std::vector<double> theta;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (i >= fs.num_tags) break;
    // Dead tags contribute nothing: whatever stray reads carry their index
    // (e.g. a corrupted EPC) must not register as activation.
    if (profile.tag(i).dead) continue;
    const std::size_t o0 = fs.offsets[i];
    const std::size_t cnt = fs.countFor(i);
    if (cnt < options.min_samples) continue;
    theta.resize(cnt);
    calibratedPhasesInto(fs.phases.data() + o0, cnt, profile.tag(i).mean_phase,
                         options.unwrap, theta.data());
    const double* times = fs.times.data() + o0;
    double acc = 0.0;
    double weight_sum = 0.0;
    for (std::size_t j = 0; j + 1 < cnt; ++j) {
      const double w = taper(0.5 * (times[j] + times[j + 1]));
      acc += w * std::abs(theta[j + 1] - theta[j]);
      weight_sum += w;
    }
    if (weight_sum <= 0.0) continue;
    if (options.per_sample) acc /= weight_sum;
    const double mean_w =
        options.per_sample ? 1.0
                           : weight_sum / static_cast<double>(cnt - 1);
    if (options.diversity_suppression) {
      const double bias = profile.tag(i).deviation_bias;
      // Expected |Δθ| per sample for white noise of std b_i: 2 b_i / √π
      // (scaled by the mean taper weight when not normalising per sample).
      constexpr double kTwoOverSqrtPi = 1.1283791670955126;
      acc = std::max(
          0.0, acc - options.noise_floor_kappa * kTwoOverSqrtPi * bias * mean_w);
      // Regularised Eq. 10 weighting: divide by the tag's relative bias.
      const double reg = options.weight_regularization * median_bias;
      const double rel_weight = (bias + reg) / (median_bias + reg);
      acc /= std::max(rel_weight, 1e-6);
    }
    if (options.sqrt_compress) acc = std::sqrt(acc);
    activation[i] = acc;
  }
  return activation;
}

imgproc::GrayMap activationImage(const reader::SampleStream& window,
                                 const StaticProfile& profile, int rows,
                                 int cols, const ActivationOptions& options) {
  auto act = activationMap(window, profile, options);
  if (static_cast<std::size_t>(rows) * cols != act.size())
    throw std::invalid_argument("activationImage: grid size mismatch");
  return imgproc::GrayMap(rows, cols, std::move(act));
}

}  // namespace rfipad::core
