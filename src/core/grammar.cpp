#include "core/grammar.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace rfipad::core {

namespace {

using K = StrokeKind;

std::vector<std::vector<StrokeKind>> buildSequences() {
  std::vector<std::vector<StrokeKind>> seq(26);
  auto set = [&](char c, std::vector<StrokeKind> s) {
    seq[static_cast<std::size_t>(c - 'A')] = std::move(s);
  };
  set('A', {K::kSlash, K::kBackslash, K::kHLine});
  set('B', {K::kVLine, K::kRightArc, K::kRightArc});
  set('C', {K::kLeftArc});
  set('D', {K::kVLine, K::kRightArc});
  set('E', {K::kVLine, K::kHLine, K::kHLine, K::kHLine});
  set('F', {K::kVLine, K::kHLine, K::kHLine});
  set('G', {K::kLeftArc, K::kHLine, K::kVLine});
  set('H', {K::kVLine, K::kHLine, K::kVLine});
  set('I', {K::kVLine});
  set('J', {K::kVLine, K::kLeftArc});
  set('K', {K::kVLine, K::kSlash, K::kBackslash});
  set('L', {K::kVLine, K::kHLine});
  set('M', {K::kVLine, K::kBackslash, K::kSlash, K::kVLine});
  set('N', {K::kVLine, K::kBackslash, K::kVLine});
  set('O', {K::kLeftArc, K::kRightArc});
  set('P', {K::kVLine, K::kRightArc});
  set('Q', {K::kLeftArc, K::kRightArc, K::kBackslash});
  set('R', {K::kVLine, K::kRightArc, K::kBackslash});
  set('S', {K::kLeftArc, K::kRightArc});
  set('T', {K::kHLine, K::kVLine});
  set('U', {K::kVLine, K::kLeftArc, K::kVLine});
  set('V', {K::kBackslash, K::kSlash});
  set('W', {K::kBackslash, K::kSlash, K::kBackslash, K::kSlash});
  set('X', {K::kBackslash, K::kSlash});
  set('Y', {K::kBackslash, K::kSlash, K::kVLine});
  set('Z', {K::kHLine, K::kSlash, K::kHLine});
  return seq;
}

/// Whether segments [a0,a1] and [b0,b1] cross in their interiors (both
/// intersection parameters well away from the endpoints).
bool segmentsCrossInterior(Vec2 a0, Vec2 a1, Vec2 b0, Vec2 b1) {
  const Vec2 da = a1 - a0;
  const Vec2 db = b1 - b0;
  const double denom = da.cross(db);
  if (std::abs(denom) < 1e-9) return false;  // parallel
  const Vec2 d0 = b0 - a0;
  const double t = d0.cross(db) / denom;
  const double u = d0.cross(da) / denom;
  constexpr double kMargin = 0.18;
  return t > kMargin && t < 1.0 - kMargin && u > kMargin && u < 1.0 - kMargin;
}

}  // namespace

LetterGrammar::LetterGrammar() : sequences_(buildSequences()) {}

const LetterGrammar& LetterGrammar::instance() {
  static const LetterGrammar kGrammar;
  return kGrammar;
}

const std::vector<char>& LetterGrammar::alphabet() {
  static const std::vector<char> kAlphabet = [] {
    std::vector<char> v;
    for (char c = 'A'; c <= 'Z'; ++c) v.push_back(c);
    return v;
  }();
  return kAlphabet;
}

const std::vector<StrokeKind>& LetterGrammar::sequenceFor(char letter) const {
  if (letter < 'A' || letter > 'Z')
    throw std::invalid_argument("LetterGrammar: letter must be 'A'..'Z'");
  return sequences_[static_cast<std::size_t>(letter - 'A')];
}

std::vector<char> LetterGrammar::candidates(
    const std::vector<StrokeKind>& seq) const {
  std::vector<char> out;
  for (char c = 'A'; c <= 'Z'; ++c) {
    if (sequenceFor(c) == seq) out.push_back(c);
  }
  return out;
}

char LetterGrammar::disambiguate(
    const std::vector<char>& cands,
    const std::vector<ObservedStroke>& strokes) const {
  // D vs P: "the last position of ⊃ is usually overlapped with the bottom
  // of stroke |" for D, while P's bowl ends mid-height.
  if (cands == std::vector<char>{'D', 'P'}) {
    const ObservedStroke& bar = strokes[0];
    const ObservedStroke& bowl = strokes[1];
    const double bar_bottom = std::min(bar.start_cell.y, bar.end_cell.y);
    const double bowl_end = std::min(bowl.start_cell.y, bowl.end_cell.y);
    return std::abs(bowl_end - bar_bottom) <= 1.0 ? 'D' : 'P';
  }
  // O vs S: O's two arcs share the same vertical span; S stacks ⊂ above ⊃.
  if (cands == std::vector<char>{'O', 'S'}) {
    const double dy = strokes[0].centroid.y - strokes[1].centroid.y;
    return std::abs(dy) <= 1.0 ? 'O' : 'S';
  }
  // V vs X: V's strokes meet at an endpoint; X's cross in their interiors.
  // The crossing test is direction-agnostic, so a flipped travel estimate
  // cannot turn a V into an X.
  if (cands == std::vector<char>{'V', 'X'}) {
    return segmentsCrossInterior(strokes[0].start_cell, strokes[0].end_cell,
                                 strokes[1].start_cell, strokes[1].end_cell)
               ? 'X'
               : 'V';
  }
  return cands.front();
}

namespace {

/// Substitution affinity: how easily one stroke kind is mistaken for
/// another on a 5×5 grid.  Steep diagonals blur into verticals, arcs into
/// each other and into the adjacent line, clicks into short anything.
double substitutionBase(StrokeKind a, StrokeKind b) {
  if (a == b) return 0.0;
  auto confusable = [](StrokeKind x, StrokeKind y) {
    auto pair = [&](StrokeKind p, StrokeKind q) {
      return (x == p && y == q) || (x == q && y == p);
    };
    return pair(K::kVLine, K::kSlash) || pair(K::kVLine, K::kBackslash) ||
           pair(K::kSlash, K::kBackslash) || pair(K::kLeftArc, K::kRightArc) ||
           pair(K::kVLine, K::kLeftArc) || pair(K::kVLine, K::kRightArc) ||
           pair(K::kHLine, K::kLeftArc) || pair(K::kHLine, K::kRightArc) ||
           x == K::kClick || y == K::kClick;
  };
  return confusable(a, b) ? 0.55 : 1.1;
}

}  // namespace

double LetterGrammar::alignmentCost(const std::vector<ObservedStroke>& strokes,
                                    const std::vector<double>& confidences,
                                    char letter) const {
  const auto& target = sequenceFor(letter);
  const std::size_t n = strokes.size();
  const std::size_t m = target.size();
  const double kInsert = 0.75;  // letter stroke the user wrote but we missed

  auto conf = [&](std::size_t i) {
    return i < confidences.size() ? std::clamp(confidences[i], 0.0, 1.0) : 0.5;
  };
  // Deleting a low-confidence observation (likely spurious) is cheap.
  auto delCost = [&](std::size_t i) { return 0.3 + 0.5 * conf(i); };
  // Substituting against a confident observation is expensive.
  auto subCost = [&](std::size_t i, StrokeKind t) {
    return substitutionBase(strokes[i].kind, t) * (0.55 + 0.45 * conf(i));
  };

  // Segmentation sometimes fuses two quick strokes into one window; allow
  // one observed stroke to consume two adjacent target strokes when its
  // kind is compatible with either of them.
  const double kMergedPair = 0.6;
  std::vector<std::vector<double>> dp(n + 1, std::vector<double>(m + 1, 0.0));
  for (std::size_t i = 1; i <= n; ++i) dp[i][0] = dp[i - 1][0] + delCost(i - 1);
  for (std::size_t j = 1; j <= m; ++j) dp[0][j] = dp[0][j - 1] + kInsert;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      dp[i][j] = std::min({dp[i - 1][j - 1] + subCost(i - 1, target[j - 1]),
                           dp[i - 1][j] + delCost(i - 1),
                           dp[i][j - 1] + kInsert});
      if (j >= 2) {
        const bool compatible =
            substitutionBase(strokes[i - 1].kind, target[j - 1]) < 1.0 ||
            substitutionBase(strokes[i - 1].kind, target[j - 2]) < 1.0;
        if (compatible) {
          dp[i][j] = std::min(dp[i][j], dp[i - 1][j - 2] + kMergedPair);
        }
      }
    }
  }
  return dp[n][m];
}

char LetterGrammar::recognizeRobust(const std::vector<ObservedStroke>& strokes,
                                    const std::vector<double>& confidences,
                                    double max_cost) const {
  if (strokes.empty()) return '\0';
  // Exact match (with positional disambiguation) wins outright.
  if (const char c = recognize(strokes); c != '\0') return c;

  char best = '\0';
  double best_cost = max_cost;
  std::vector<char> tied;
  for (char c = 'A'; c <= 'Z'; ++c) {
    const double cost = alignmentCost(strokes, confidences, c);
    if (cost < best_cost - 1e-9) {
      best_cost = cost;
      best = c;
      tied = {c};
    } else if (best != '\0' && std::abs(cost - best_cost) < 1e-9) {
      tied.push_back(c);
    }
  }
  // If the tie is one of the known ambiguous pairs and the stroke count
  // matches, use the positional rules.
  if (tied.size() == 2) {
    std::sort(tied.begin(), tied.end());
    const std::vector<char> pair = tied;
    if ((pair == std::vector<char>{'D', 'P'} ||
         pair == std::vector<char>{'O', 'S'} ||
         pair == std::vector<char>{'V', 'X'}) &&
        strokes.size() == sequenceFor(pair[0]).size()) {
      return disambiguate(pair, strokes);
    }
  }
  return best;
}

std::vector<LetterGrammar::LetterHypothesis> LetterGrammar::topKLetters(
    const std::vector<ObservedStroke>& strokes,
    const std::vector<double>& confidences, std::size_t k,
    double max_cost) const {
  std::vector<LetterHypothesis> out;
  if (strokes.empty() || k == 0) return out;

  // The positionally-disambiguated exact match, when one exists, must lead
  // the ranking: its alignment cost ties with its ambiguous twin (D/P, O/S,
  // V/X share a sequence), and only the positional rules can order them.
  const char exact = recognize(strokes);

  std::vector<LetterHypothesis> all;
  all.reserve(26);
  for (char c = 'A'; c <= 'Z'; ++c) {
    const double cost = alignmentCost(strokes, confidences, c);
    if (cost <= max_cost) all.push_back({c, cost});
  }
  std::stable_sort(all.begin(), all.end(),
                   [&](const LetterHypothesis& a, const LetterHypothesis& b) {
                     if (a.letter == exact && b.letter != exact) return true;
                     if (b.letter == exact && a.letter != exact) return false;
                     if (a.cost < b.cost) return true;
                     if (b.cost < a.cost) return false;
                     return a.letter < b.letter;
                   });
  if (all.size() > k) all.resize(k);
  return all;
}

char LetterGrammar::recognize(const std::vector<ObservedStroke>& strokes) const {
  if (strokes.empty()) return '\0';
  std::vector<StrokeKind> seq;
  seq.reserve(strokes.size());
  for (const auto& s : strokes) seq.push_back(s.kind);
  const auto cands = candidates(seq);
  if (cands.empty()) return '\0';
  if (cands.size() == 1) return cands.front();
  return disambiguate(cands, strokes);
}

}  // namespace rfipad::core
