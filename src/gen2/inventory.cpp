#include "gen2/inventory.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/contracts.hpp"

namespace rfipad::gen2 {

InventorySimulator::InventorySimulator(Gen2Timing timing, QConfig qconfig,
                                       std::uint32_t numTags, Rng rng)
    : timing_(std::move(timing)),
      q_(qconfig),
      num_tags_(numTags),
      rng_(std::move(rng)),
      powered_([](std::uint32_t, double) { return true; }),
      decodable_([](std::uint32_t, double) { return true; }) {
  if (numTags == 0)
    throw std::invalid_argument("InventorySimulator: zero tags");
  counters_.assign(numTags, -1);
  frame_size_ = 0;  // forces a round start on first run()
  slot_in_round_ = 0;
}

void InventorySimulator::startRound() {
  ++round_;
  ++stats_.rounds;
  frame_size_ = q_.frameSize();
  // The Q algorithm clamps to [min_q, max_q] ⊂ [0, 15], so a round frame is
  // always 1..2^15 slots; the per-tag slot draw below depends on it.
  RFIPAD_INVARIANT(frame_size_ >= 1 && frame_size_ <= (1 << 15),
                   "Gen2 frame size out of the Q-clamped range");
  slot_in_round_ = 0;
  // Query command opens the round; tags powered *now* draw slot counters.
  now_s_ += timing_.queryS();
  if (powered_batch_) {
    powered_scratch_.resize(num_tags_);
    powered_batch_(now_s_, powered_scratch_.data(), num_tags_);
  }
  order_.clear();
  for (std::uint32_t i = 0; i < num_tags_; ++i) {
    // The batched check answers exactly what powered_(i, now) would; the
    // RNG draw order (powered tags ascending) is identical either way.
    const bool on =
        powered_batch_ ? powered_scratch_[i] != 0 : powered_(i, now_s_);
    counters_[i] =
        on ? static_cast<int>(rng_.uniformInt(0, frame_size_ - 1)) : -1;
    RFIPAD_INVARIANT(counters_[i] >= -1 && counters_[i] < frame_size_,
                     "tag slot counter outside the current frame");
    if (counters_[i] >= 0) order_.emplace_back(counters_[i], i);
  }
  // (slot, tag) keys are unique, so this order is total and deterministic;
  // within a slot tags come out ascending, like the scan they replace.
  // A stable counting placement by slot yields exactly (slot asc, tag asc)
  // because tags were pushed ascending; it beats std::sort whenever the
  // frame is in the Q-adapted regime (a small multiple of the tag count).
  // An over-provisioned frame would make the O(frame) bucket pass the cost,
  // so fall back to the comparison sort there — the output is identical.
  if (static_cast<std::size_t>(frame_size_) <= 4 * order_.size() + 64) {
    slot_starts_.assign(static_cast<std::size_t>(frame_size_) + 1, 0);
    for (const auto& e : order_) ++slot_starts_[static_cast<std::size_t>(e.first) + 1];
    for (int s = 0; s < frame_size_; ++s)
      slot_starts_[static_cast<std::size_t>(s) + 1] +=
          slot_starts_[static_cast<std::size_t>(s)];
    order_scratch_.resize(order_.size());
    for (const auto& e : order_)
      order_scratch_[slot_starts_[static_cast<std::size_t>(e.first)]++] = e;
    order_.swap(order_scratch_);
  } else {
    std::sort(order_.begin(), order_.end());
  }
  cursor_ = 0;
}

void InventorySimulator::run(double until_s, const ReadSink& sink) {
  while (now_s_ < until_s) {
    if (slot_in_round_ >= frame_size_) startRound();
    if (now_s_ >= until_s) break;

    // Identify responders for this slot: the pre-sorted round schedule
    // hands over exactly the tags whose counter sits at this slot.
    const std::size_t begin = cursor_;
    while (cursor_ < order_.size() && order_[cursor_].first == slot_in_round_)
      ++cursor_;
    std::uint32_t responder = 0;
    int responders = 0;
    for (std::size_t e = begin; e < cursor_; ++e) {
      const std::uint32_t i = order_[e].second;
      // A tag that lost power between Query and its slot stays silent.
      if (powered_(i, now_s_)) {
        responder = i;
        ++responders;
      } else {
        counters_[i] = -1;
      }
    }

    ++stats_.slots;
    if (responders == 0) {
      now_s_ += timing_.emptySlotS();
      q_.onEmptySlot();
    } else if (responders > 1) {
      now_s_ += timing_.collisionSlotS();
      q_.onCollisionSlot();
      // Collided tags back off until next round.
      for (std::size_t e = begin; e < cursor_; ++e)
        counters_[order_[e].second] = -1;
      ++stats_.collisions;
    } else {
      // Single responder: RN16 → ACK → EPC, unless the backscatter is too
      // weak for the reader to decode.
      const double epc_done = now_s_ + timing_.successSlotS();
      if (decodable_(responder, now_s_) && powered_(responder, epc_done)) {
        now_s_ = epc_done;
        q_.onSuccessSlot();
        ++stats_.successes;
        counters_[responder] = -1;
        sink(Singulation{responder, now_s_, round_, slot_in_round_});
      } else {
        // Reply lost: reader sees noise → treats like a collision-ish slot.
        now_s_ += timing_.collisionSlotS();
        ++stats_.lost_replies;
        counters_[responder] = -1;
      }
    }
    if (responders == 0) ++stats_.empties;
    ++slot_in_round_;
  }
}

}  // namespace rfipad::gen2
