// Dynamic frame-size adaptation (the Gen2 "Q algorithm").
//
// Readers adjust the slot-count exponent Q between rounds so the expected
// frame size tracks the responding population: collisions push Q up, empty
// slots pull it down.  We implement the floating-point variant from Annex D
// of the Gen2 spec, which is what commercial readers approximate.
#pragma once

namespace rfipad::gen2 {

struct QConfig {
  double initial_q = 4.0;
  /// Increment applied on a collision slot.  The spec allows 0.1–0.5.
  double c_collision = 0.35;
  /// Decrement applied on an empty slot.
  double c_empty = 0.15;
  int min_q = 0;
  int max_q = 15;
};

class QAlgorithm {
 public:
  explicit QAlgorithm(QConfig config = {});

  /// Q to use for the next inventory round.
  int roundQ() const;
  /// Number of slots in the next round: 2^Q.
  int frameSize() const;

  void onEmptySlot();
  void onCollisionSlot();
  void onSuccessSlot();  // no-op on Qfp, kept for symmetry/metrics

  double qfp() const { return qfp_; }
  void reset();

 private:
  QConfig config_;
  double qfp_;
};

}  // namespace rfipad::gen2
