// EPC Class-1 Generation-2 air-interface timing.
//
// The paper's system is "fully compatible with industrial standards, i.e.
// EPC Global C1G2" and its throughput ceiling — the undersampling that makes
// fast hand motions hard (Fig. 21, §VI "Low throughput") — comes straight
// from Gen2 slot durations.  This module computes those durations from the
// physical-layer parameters (Tari, backscatter link frequency, Miller
// factor) the way the standard derives them, so per-tag read rates in the
// simulator are realistic rather than assumed.
#pragma once

#include <string>

namespace rfipad::gen2 {

/// Tag-to-reader encoding.
enum class TagEncoding { kFM0 = 1, kMiller2 = 2, kMiller4 = 4, kMiller8 = 8 };

struct LinkProfile {
  std::string name = "autoset-dense-m4";
  /// Reader data-0 symbol length, seconds (6.25, 12.5 or 25 µs).
  double tari_s = 25e-6;
  /// Backscatter link frequency, Hz.
  double blf_hz = 250e3;
  TagEncoding encoding = TagEncoding::kMiller4;
  /// Pilot tone / extended preamble on tag replies (TRext).
  bool trext = true;
};

/// Impinj-style reader modes.
LinkProfile denseReaderM4();     ///< robust, ~250 reads/s aggregate
LinkProfile hybridM2();          ///< balanced, ~450 reads/s
LinkProfile maxThroughputFm0();  ///< fast, ~900 reads/s, fragile links

/// All Gen2 frame durations needed by the MAC simulator, in seconds.
class Gen2Timing {
 public:
  explicit Gen2Timing(const LinkProfile& profile);

  const LinkProfile& profile() const { return profile_; }

  // Reader command durations (including preamble / frame-sync).
  double queryS() const { return query_s_; }
  double queryRepS() const { return query_rep_s_; }
  double queryAdjustS() const { return query_adjust_s_; }
  double ackS() const { return ack_s_; }

  // Tag reply durations.
  double rn16S() const { return rn16_s_; }
  double epcReplyS() const { return epc_reply_s_; }

  // Link turn-around times.
  double t1S() const { return t1_s_; }
  double t2S() const { return t2_s_; }
  double t3S() const { return t3_s_; }

  // Composite slot durations (starting from the QueryRep that opens the
  // slot).  These are what the inventory loop advances time by.
  double emptySlotS() const;
  double collisionSlotS() const;
  double successSlotS() const;

  /// Upper bound on aggregate singulation rate (reads/s) if every slot were
  /// a success — useful for sanity checks and capacity planning.
  double maxReadRateHz() const { return 1.0 / successSlotS(); }

 private:
  double readerBitsS(int bits) const;
  double tagBitsS(int bits) const;

  LinkProfile profile_;
  double reader_bit_s_;
  double tag_bit_s_;
  double preamble_s_;
  double frame_sync_s_;
  double query_s_;
  double query_rep_s_;
  double query_adjust_s_;
  double ack_s_;
  double rn16_s_;
  double epc_reply_s_;
  double t1_s_;
  double t2_s_;
  double t3_s_;
};

}  // namespace rfipad::gen2
